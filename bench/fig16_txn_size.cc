/**
 * @file
 * Figure 16 — sensitivity to transaction size.
 *
 * SCA runtime normalized to the ideal design while the number of cache
 * lines committed per transaction grows (paper: 1 to 64 lines). The
 * overhead of the counter-atomic commit write amortizes: the paper
 * reports ~7.5% at small transactions falling under 1% at page-sized
 * ones.
 */

#include "bench/bench_util.hh"

using namespace cnvm;
using namespace cnvm::bench;

int
main()
{
    const std::vector<unsigned> batches = {1, 2, 4, 8, 16, 32};

    std::printf("Figure 16: SCA runtime normalized to Ideal vs "
                "transaction size (lower is better)\n");
    std::printf("each column is a mutation batch per transaction; the "
                "measured lines/txn are shown per workload\n\n");

    std::vector<std::string> columns;
    for (unsigned b : batches)
        columns.push_back("b=" + std::to_string(b));
    printHeader("Workload", columns);
    printRule(batches.size());

    for (WorkloadKind w : allWorkloadKinds()) {
        std::vector<double> row;
        std::vector<double> lines;
        for (unsigned batch : batches) {
            SystemConfig sca = paperConfig(w, DesignPoint::SCA, 1, 150);
            sca.wl.batch = batch;
            // Large batches log many lines per transaction (a B-tree
            // insert can touch several nodes plus splits).
            sca.wl.logLines = 512;
            SystemConfig ideal = sca;
            ideal.design = DesignPoint::Ideal;
            RunMetrics m_sca = runOnce(sca);
            RunMetrics m_ideal = runOnce(ideal);
            row.push_back(m_sca.runtimeNs / m_ideal.runtimeNs);
            lines.push_back(m_sca.linesPerTxn);
        }
        printRow(workloadKindName(w), row);
        printRow("  (lines/txn)", lines, "%10.1f");
    }

    std::printf("\npaper shape: the SCA-over-Ideal overhead shrinks "
                "monotonically as transactions grow (the single "
                "counter-atomic commit write amortizes).\n");
    return 0;
}
