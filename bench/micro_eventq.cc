/**
 * @file
 * Micro-benchmarks for the discrete-event kernel: scheduling and
 * processing throughput, which bounds how fast the whole simulator can
 * run.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "sim/eventq.hh"
#include "sim/one_shot.hh"

using namespace cnvm;

namespace
{

void
BM_ScheduleProcess(benchmark::State &state)
{
    const int batch = static_cast<int>(state.range(0));
    std::uint64_t processed = 0;
    for (auto _ : state) {
        EventQueue eq;
        for (int i = 0; i < batch; ++i)
            scheduleAt(eq, static_cast<Tick>(i) * 10,
                       [&]() { ++processed; });
        eq.run();
    }
    benchmark::DoNotOptimize(processed);
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ScheduleProcess)->Arg(16)->Arg(256)->Arg(4096);

void
BM_MemberEventReschedule(benchmark::State &state)
{
    class Tickless : public Event
    {
      public:
        void process() override {}
    } event;

    EventQueue eq;
    Tick when = 1;
    for (auto _ : state) {
        eq.reschedule(event, when++);
        eq.step();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemberEventReschedule);

void
BM_ScheduleDeschedule(benchmark::State &state)
{
    // Deschedule-heavy traffic: the lazy-deletion path of the heap
    // (and formerly the std::set erase). Half the batch is cancelled
    // before the run.
    const int batch = static_cast<int>(state.range(0));
    std::uint64_t processed = 0;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (int i = 0; i < batch; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [&]() { ++processed; }, "bench-event"));
    }
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t rng = 0x9e3779b97f4a7c15ull;
        for (int i = 0; i < batch; ++i) {
            rng = rng * 6364136223846793005ull + 1442695040888963407ull;
            eq.schedule(*events[i], (rng >> 33) % 100000);
        }
        for (int i = 0; i < batch; i += 2)
            eq.deschedule(*events[i]);
        eq.run();
    }
    benchmark::DoNotOptimize(processed);
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ScheduleDeschedule)->Arg(256)->Arg(4096);

void
BM_SelfChainingEvent(benchmark::State &state)
{
    // The typical model pattern: each event schedules the next.
    const int chain = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        int remaining = chain;
        std::function<void()> step = [&]() {
            if (--remaining > 0)
                scheduleAfter(eq, 250, step);
        };
        scheduleAt(eq, 0, step);
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * chain);
}
BENCHMARK(BM_SelfChainingEvent)->Arg(1024);

} // anonymous namespace

BENCHMARK_MAIN();
