/**
 * @file
 * Shared helpers for the figure-reproduction harnesses: run a
 * configured System, collect metrics, print aligned tables.
 *
 * Every harness prints the parameters it actually ran with: the benches
 * scale operation counts and footprints down from the paper's gem5
 * testbed (see DESIGN.md section 6) while preserving the ratios that
 * drive the result shapes.
 */

#ifndef CNVM_BENCH_BENCH_UTIL_HH
#define CNVM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "core/system.hh"

namespace cnvm::bench
{

/** Metrics of one simulated run. */
struct RunMetrics
{
    double runtimeNs = 0;
    double txnPerSec = 0;
    double bytesWritten = 0;
    double bytesRead = 0;
    double ccMissRate = 0;
    double linesPerTxn = 0;
};

/** Builds, runs, and measures one configuration. */
inline RunMetrics
runOnce(const SystemConfig &cfg)
{
    System sys(cfg);
    sys.run();
    RunMetrics m;
    m.runtimeNs = sys.runtimeNs();
    m.txnPerSec = sys.throughputTxnPerSec();
    m.bytesWritten = static_cast<double>(sys.nvmBytesWritten());
    m.bytesRead = static_cast<double>(sys.nvmBytesRead());
    m.ccMissRate = sys.counterCacheMissRate();
    std::uint64_t txns = 0, lines = 0;
    for (unsigned i = 0; i < sys.numCores(); ++i) {
        txns += sys.workload(i).txnsIssued();
        lines += sys.workload(i).totalLinesLogged();
    }
    m.linesPerTxn = txns ? static_cast<double>(lines) / txns : 0;
    return m;
}

/** The paper's evaluation baseline configuration (Table 2, scaled). */
inline SystemConfig
paperConfig(WorkloadKind workload, DesignPoint design,
            unsigned cores = 1, unsigned txns_per_core = 300)
{
    SystemConfig cfg;
    cfg.design = design;
    cfg.workload = workload;
    cfg.numCores = cores;
    cfg.wl.regionBytes = 6ull << 20;  // per-core footprint
    cfg.wl.txnTarget = txns_per_core;
    cfg.wl.batch = 1;
    cfg.wl.computePerTxn = 1000;
    cfg.wl.setupFill = 0.5;
    return cfg;
}

/** Prints one row of right-aligned cells after a left label. */
inline void
printRow(const std::string &label, const std::vector<double> &cells,
         const char *fmt = "%10.3f")
{
    std::printf("%-22s", label.c_str());
    for (double v : cells)
        std::printf(fmt, v);
    std::printf("\n");
}

inline void
printHeader(const std::string &label,
            const std::vector<std::string> &columns, int width = 10)
{
    std::printf("%-22s", label.c_str());
    for (const std::string &c : columns)
        std::printf("%*s", width, c.c_str());
    std::printf("\n");
}

inline void
printRule(std::size_t columns, int width = 10)
{
    for (std::size_t i = 0; i < 22 + columns * width; ++i)
        std::printf("-");
    std::printf("\n");
}

/** Arithmetic mean across rows for the Average line. */
inline std::vector<double>
columnAverages(const std::vector<std::vector<double>> &rows)
{
    std::vector<double> avg;
    if (rows.empty())
        return avg;
    avg.assign(rows[0].size(), 0.0);
    for (const auto &row : rows)
        for (std::size_t i = 0; i < row.size(); ++i)
            avg[i] += row[i];
    for (double &v : avg)
        v /= static_cast<double>(rows.size());
    return avg;
}

} // namespace cnvm::bench

#endif // CNVM_BENCH_BENCH_UTIL_HH
