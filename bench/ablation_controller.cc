/**
 * @file
 * Ablation study of the memory-controller mechanisms DESIGN.md calls
 * out: each row disables or sweeps one mechanism and reports SCA
 * runtime against the default configuration, quantifying why the
 * mechanism exists.
 *
 *  - write combining in the write queues (hot undo-log lines)
 *  - PCM write pausing (reads preempting cell programming)
 *  - the ready-bit pairing handshake latency
 *  - counter write queue depth (the proposal's only new structure)
 *  - NVM bank parallelism
 */

#include "bench/bench_util.hh"

using namespace cnvm;
using namespace cnvm::bench;

namespace
{

double
runtimeOf(SystemConfig cfg)
{
    System sys(cfg);
    sys.run();
    return sys.runtimeNs();
}

} // anonymous namespace

int
main()
{
    const WorkloadKind workload = WorkloadKind::HashTable;
    SystemConfig base = paperConfig(workload, DesignPoint::SCA, 1, 250);
    double base_ns = runtimeOf(base);

    std::printf("Ablation: controller mechanisms (SCA, %s, runtime "
                "vs default)\n\n", workloadKindName(workload));
    printHeader("mechanism", {"runtime/us", "vs base"});
    printRule(2);
    printRow("default", {base_ns / 1000.0, 1.0});

    {
        SystemConfig cfg = base;
        cfg.memctl.writeCombining = false;
        double ns = runtimeOf(cfg);
        printRow("no write combining", {ns / 1000.0, ns / base_ns});
    }
    {
        SystemConfig cfg = base;
        cfg.nvm.writePause = false;
        double ns = runtimeOf(cfg);
        printRow("no PCM write pausing", {ns / 1000.0, ns / base_ns});
    }
    for (double pair_ns : {0.0, 15.0, 40.0, 80.0}) {
        SystemConfig cfg = base;
        cfg.memctl.pairLatency = nsToTicks(pair_ns);
        double ns = runtimeOf(cfg);
        std::string label = "pair handshake "
            + std::to_string(static_cast<int>(pair_ns)) + " ns";
        printRow(label, {ns / 1000.0, ns / base_ns});
    }
    for (unsigned entries : {4u, 8u, 16u, 64u}) {
        SystemConfig cfg = base;
        cfg.memctl.ctrWqEntries = entries;
        double ns = runtimeOf(cfg);
        std::string label = "counter WQ " + std::to_string(entries)
            + " entries";
        printRow(label, {ns / 1000.0, ns / base_ns});
    }
    for (unsigned banks : {8u, 16u, 32u, 64u}) {
        SystemConfig cfg = base;
        cfg.nvm.numBanks = banks;
        double ns = runtimeOf(cfg);
        std::string label = std::to_string(banks) + " NVM banks";
        printRow(label, {ns / 1000.0, ns / base_ns});
    }

    std::printf("\nEach mechanism is documented in DESIGN.md section "
                "5b with the physical grounding for its default.\n");
    return 0;
}
