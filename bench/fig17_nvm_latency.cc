/**
 * @file
 * Figure 17 — sensitivity to NVM latency.
 *
 * Average SCA speedup over the co-located design (section 3.2.1) while
 * scaling (a) the read latency and (b) the write latency from 10x
 * slower than PCM to 4x faster. The paper reports 29.3%-75.6% for the
 * read sweep and 38.9%-74% for the write sweep: faster reads make the
 * co-located design's serialized decryption relatively costlier, and
 * faster writes relieve SCA's counter-write bandwidth.
 */

#include "bench/bench_util.hh"

using namespace cnvm;
using namespace cnvm::bench;

namespace
{

struct LatencyPoint
{
    const char *label;
    double mult;
};

const std::vector<LatencyPoint> sweep = {
    {"10x slower", 10.0}, {"5x slower", 5.0}, {"3x slower", 3.0},
    {"PCM", 1.0},         {"2x faster", 0.5}, {"4x faster", 0.25},
};

double
averageSpeedup(bool scale_read, double mult)
{
    double total = 0;
    for (WorkloadKind w : allWorkloadKinds()) {
        SystemConfig sca = cnvm::bench::paperConfig(w, DesignPoint::SCA,
                                                    1, 150);
        sca.nvm = scale_read ? NvmTiming::pcm().scaled(mult, 1.0)
                             : NvmTiming::pcm().scaled(1.0, mult);
        SystemConfig colo = sca;
        colo.design = DesignPoint::Colocated;
        total += runOnce(colo).runtimeNs / runOnce(sca).runtimeNs;
    }
    return total / allWorkloadKinds().size();
}

} // anonymous namespace

int
main()
{
    std::printf("Figure 17: average SCA speedup over the co-located "
                "design vs NVM latency (higher is better)\n\n");

    std::printf("(a) read latency sweep (write latency fixed at PCM)\n");
    printHeader("Latency", {"speedup"});
    printRule(1);
    for (const LatencyPoint &p : sweep)
        printRow(p.label, {averageSpeedup(true, p.mult)});

    std::printf("\n(b) write latency sweep (read latency fixed at "
                "PCM)\n");
    printHeader("Latency", {"speedup"});
    printRule(1);
    for (const LatencyPoint &p : sweep)
        printRow(p.label, {averageSpeedup(false, p.mult)});

    std::printf("\npaper shape: the speedup grows as the read latency "
                "falls (serialized decryption dominates the co-located "
                "design) and as the write latency falls (counter "
                "writes leave SCA's critical path).\n");
    return 0;
}
