/**
 * @file
 * Figure 12 — single-core performance comparison.
 *
 * Runtime of each design point on the five workloads, normalized to the
 * no-encryption design (lower is better). The paper reports that SCA is
 * ~11.7% slower than no encryption, ~6.3% faster than FCA, within ~1%
 * of the co-located design with a counter cache, and that the plain
 * co-located design (serialized decryption) is far slower.
 */

#include "bench/bench_util.hh"

using namespace cnvm;
using namespace cnvm::bench;

int
main()
{
    const std::vector<DesignPoint> designs = {
        DesignPoint::SCA, DesignPoint::FCA, DesignPoint::Colocated,
        DesignPoint::ColocatedCC, DesignPoint::Ideal,
    };

    std::printf("Figure 12: single-core runtime normalized to "
                "NoEncryption (lower is better)\n");
    SystemConfig sample = paperConfig(WorkloadKind::ArraySwap,
                                      DesignPoint::SCA);
    std::printf("config: %u txns, %llu MB footprint, 1 core\n\n",
                sample.wl.txnTarget,
                static_cast<unsigned long long>(
                    sample.wl.regionBytes >> 20));

    std::vector<std::string> columns;
    for (DesignPoint d : designs)
        columns.push_back(designName(d));
    printHeader("Workload", {"SCA", "FCA", "Co-loc", "Co-loc+C$",
                             "Ideal"});
    printRule(designs.size());

    std::vector<std::vector<double>> rows;
    for (WorkloadKind w : allWorkloadKinds()) {
        double base =
            runOnce(paperConfig(w, DesignPoint::NoEncryption)).runtimeNs;
        std::vector<double> row;
        for (DesignPoint d : designs)
            row.push_back(runOnce(paperConfig(w, d)).runtimeNs / base);
        printRow(workloadKindName(w), row);
        rows.push_back(row);
    }
    printRule(designs.size());
    printRow("Average", columnAverages(rows));

    std::printf("\npaper shape: SCA ~1.12x, FCA ~1.19x, Co-located ~2x,"
                " Co-located w/ C-Cache ~1.11x\n");
    return 0;
}
