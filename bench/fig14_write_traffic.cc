/**
 * @file
 * Figure 14 — write traffic to NVMM.
 *
 * Bytes written, normalized to the no-encryption design (lower is
 * better). The paper reports SCA writing ~8.1% less than FCA (counter
 * updates coalesce in the counter cache until the end of a transaction
 * stage) and ~6.6% less than the co-located designs (which carry a
 * counter with every data write).
 */

#include "bench/bench_util.hh"

using namespace cnvm;
using namespace cnvm::bench;

int
main()
{
    const std::vector<DesignPoint> designs = {
        DesignPoint::SCA, DesignPoint::FCA, DesignPoint::Colocated,
        DesignPoint::ColocatedCC,
    };

    std::printf("Figure 14: bytes written to NVMM normalized to "
                "NoEncryption (lower is better)\n\n");
    printHeader("Workload", {"SCA", "FCA", "Co-loc", "Co-loc+C$"});
    printRule(designs.size());

    std::vector<std::vector<double>> rows;
    for (WorkloadKind w : allWorkloadKinds()) {
        double base = runOnce(paperConfig(w, DesignPoint::NoEncryption))
                          .bytesWritten;
        std::vector<double> row;
        for (DesignPoint d : designs)
            row.push_back(runOnce(paperConfig(w, d)).bytesWritten / base);
        printRow(workloadKindName(w), row);
        rows.push_back(row);
    }
    printRule(designs.size());
    std::vector<double> avg = columnAverages(rows);
    printRow("Average", avg);

    std::printf("\nSCA vs FCA: %.1f%% less traffic "
                "(paper: 8.1%%); SCA vs co-located: %.1f%% less "
                "(paper: 6.6%%)\n",
                (1.0 - avg[0] / avg[1]) * 100.0,
                (1.0 - avg[0] / avg[2]) * 100.0);
    return 0;
}
