/**
 * @file
 * Section 6.3.3 companion + ablation: NVM lifetime.
 *
 * The paper argues SCA's reduced write traffic improves NVMM lifetime
 * by ~6.6% "assuming a uniform wear-leveling technique" [38]. This
 * harness makes both halves measurable:
 *
 *  (a) under the uniform assumption, relative lifetime is inversely
 *      proportional to total bytes written — reported per design;
 *  (b) the uniformity assumption itself: the per-line write trace is
 *      captured from the device and replayed through a Start-Gap
 *      remapper, showing how rotation flattens the undo log's hot
 *      lines (wear uniformity = mean/max per-line writes).
 */

#include "bench/bench_util.hh"
#include "nvm/wear_leveling.hh"

using namespace cnvm;
using namespace cnvm::bench;

namespace
{

struct LifetimeResult
{
    double bytesWritten = 0;
    WearStats rawWear;
    WearStats leveledWear;
};

LifetimeResult
measure(DesignPoint design, WorkloadKind workload)
{
    SystemConfig cfg = paperConfig(workload, design, 1, 250);
    System sys(cfg);

    // Start-Gap over the whole observed address range, per 4 K-line
    // (256 KB) region like the reference design.
    WearTracker raw;
    std::vector<std::unique_ptr<StartGapRemapper>> regions;
    std::unordered_map<Addr, std::size_t> region_of;
    WearTracker leveled;

    // The reference design rotates once per ~100 writes over multi-
    // billion-write lifetimes; this trace is ~10^4 writes, so region
    // size and gap interval are scaled down proportionally to make the
    // rotation visible (the mechanism, not the constants, is the
    // point).
    constexpr std::uint64_t region_lines = 256;
    constexpr std::uint64_t region_bytes = region_lines * lineBytes;

    sys.nvm().setWriteTraceHook([&](Addr line, unsigned) {
        raw.record(line);
        Addr region_base = line / region_bytes * region_bytes;
        auto [it, inserted] = region_of.try_emplace(region_base,
                                                    regions.size());
        if (inserted) {
            regions.push_back(std::make_unique<StartGapRemapper>(
                region_base, region_lines, 2));
        }
        leveled.record(regions[it->second]->translateWrite(line));
    });

    sys.run();

    LifetimeResult out;
    out.bytesWritten = static_cast<double>(sys.nvmBytesWritten());
    out.rawWear = raw.stats();
    out.leveledWear = leveled.stats();
    return out;
}

} // anonymous namespace

int
main()
{
    std::printf("Ablation: NVM lifetime (paper section 6.3.3)\n\n");

    std::printf("(a) relative lifetime under uniform wear leveling "
                "(inverse of bytes written; SCA = 1.0)\n");
    printHeader("Workload", {"SCA", "FCA", "Co-loc", "NoEnc"});
    printRule(4);

    const std::vector<DesignPoint> designs = {
        DesignPoint::SCA, DesignPoint::FCA, DesignPoint::Colocated,
        DesignPoint::NoEncryption,
    };

    std::vector<std::vector<double>> rows;
    std::map<DesignPoint, LifetimeResult> last;
    for (WorkloadKind w : allWorkloadKinds()) {
        std::vector<double> bytes;
        for (DesignPoint d : designs) {
            LifetimeResult r = measure(d, w);
            bytes.push_back(r.bytesWritten);
            last[d] = r;
        }
        std::vector<double> row;
        for (double b : bytes)
            row.push_back(bytes[0] / b); // lifetime relative to SCA
        printRow(workloadKindName(w), row);
        rows.push_back(row);
    }
    printRule(4);
    std::vector<double> avg = columnAverages(rows);
    printRow("Average", avg);
    std::printf("\nSCA lifetime vs FCA: +%.1f%%; vs co-located: "
                "+%.1f%% (paper: +6.6%% vs the co-located designs)\n",
                (1.0 / avg[1] - 1.0) * 100.0,
                (1.0 / avg[2] - 1.0) * 100.0);

    std::printf("\n(b) wear uniformity (mean/max per-line writes, "
                "higher is better), SCA, last workload\n");
    const LifetimeResult &sca = last[DesignPoint::SCA];
    std::printf("%-28s %10.4f (hottest line absorbs %llu of %llu "
                "writes)\n", "raw trace",
                sca.rawWear.uniformity(),
                static_cast<unsigned long long>(sca.rawWear.maxWrites),
                static_cast<unsigned long long>(sca.rawWear.totalWrites));
    std::printf("%-28s %10.4f\n", "with Start-Gap leveling",
                sca.leveledWear.uniformity());
    std::printf("\nthe undo log's header line dominates raw wear; "
                "Start-Gap rotation spreads it across its region, "
                "supporting the paper's uniform-wear assumption.\n");
    return 0;
}
