/**
 * @file
 * Micro-benchmarks for the memory controller, plus a small write-queue
 * timeline experiment mirroring the paper's Figures 7/8: the time to
 * push a burst of dependent writes through each design's queues.
 */

#include <benchmark/benchmark.h>

#include "memctl/mem_controller.hh"
#include "sim/one_shot.hh"

using namespace cnvm;

namespace
{

/** Host-side throughput of simulating one full write (accept+drain). */
void
BM_SimulatedWriteDrain(benchmark::State &state)
{
    DesignPoint design = static_cast<DesignPoint>(state.range(0));
    EventQueue eq;
    NvmDevice nvm(NvmTiming::pcm(), nullptr);
    MemCtlConfig cfg;
    cfg.design = design;
    MemController ctl(eq, nvm, cfg, nullptr);

    Addr addr = 0x40000;
    for (auto _ : state) {
        WriteReq req;
        req.addr = addr;
        req.data = LineData{};
        req.counterAtomic = true;
        addr += lineBytes;
        while (!ctl.tryWrite(req))
            eq.step();
        eq.run();
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(designName(design));
}
BENCHMARK(BM_SimulatedWriteDrain)
    ->Arg(static_cast<int>(DesignPoint::NoEncryption))
    ->Arg(static_cast<int>(DesignPoint::FCA))
    ->Arg(static_cast<int>(DesignPoint::SCA));

/** Host-side throughput of simulating one read. */
void
BM_SimulatedRead(benchmark::State &state)
{
    EventQueue eq;
    NvmDevice nvm(NvmTiming::pcm(), nullptr);
    MemCtlConfig cfg;
    cfg.design = DesignPoint::SCA;
    MemController ctl(eq, nvm, cfg, nullptr);

    Addr addr = 0x40000;
    for (auto _ : state) {
        bool done = false;
        ctl.issueRead(addr, 0, [&]() { done = true; });
        eq.run();
        benchmark::DoNotOptimize(done);
        addr += lineBytes;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedRead);

/**
 * Figure 7/8 companion: simulated time (ns) for a burst of writes that
 * alternate between two lines of the same counter-line group — the
 * dependent-write pattern the paper uses to illustrate full
 * counter-atomicity's serialization. Reported as the "ns_simulated"
 * counter (lower is better).
 */
void
BM_DependentWriteBurst(benchmark::State &state)
{
    DesignPoint design = static_cast<DesignPoint>(state.range(0));
    double total_ns = 0;
    std::uint64_t bursts = 0;
    for (auto _ : state) {
        EventQueue eq;
        NvmDevice nvm(NvmTiming::pcm(), nullptr);
        MemCtlConfig cfg;
        cfg.design = design;
        MemController ctl(eq, nvm, cfg, nullptr);

        unsigned accepted = 0;
        for (int i = 0; i < 8; ++i) {
            WriteReq req;
            req.addr = 0x40000 + (i % 2) * lineBytes;
            req.data = LineData{};
            req.data[0] = static_cast<std::uint8_t>(i);
            req.counterAtomic = true;
            req.accepted = [&]() { ++accepted; };
            while (!ctl.tryWrite(req))
                eq.step();
        }
        eq.run();
        benchmark::DoNotOptimize(accepted);
        total_ns += static_cast<double>(eq.curTick()) / ticksPerNs;
        ++bursts;
    }
    state.counters["ns_simulated"] =
        benchmark::Counter(total_ns / static_cast<double>(bursts));
    state.SetLabel(designName(design));
}
BENCHMARK(BM_DependentWriteBurst)
    ->Arg(static_cast<int>(DesignPoint::Ideal))
    ->Arg(static_cast<int>(DesignPoint::SCA))
    ->Arg(static_cast<int>(DesignPoint::FCA));

/**
 * Queue-pressure kernel: bursts deep enough to fill the data write
 * queue with reads interleaved against the occupied queue — the state
 * where every per-entry lookup (forwarding, combining, pair blocking,
 * completion) is hottest. Arg(1) uses the indexed lookups, Arg(0) the
 * reference linear scans, so the two rows show the index win directly.
 */
void
BM_WriteReadBurstQueuePressure(benchmark::State &state)
{
    constexpr unsigned writesPerBurst = 224;
    constexpr unsigned readsPerBurst = 32;
    constexpr Addr base = 0x40000;
    constexpr unsigned lineSpan = 4096;

    EventQueue eq;
    NvmDevice nvm(NvmTiming::pcm(), nullptr);
    MemCtlConfig cfg;
    cfg.design = DesignPoint::SCA;
    cfg.dataWqEntries = 256;
    cfg.ctrWqEntries = 64;
    cfg.useQueueIndex = state.range(0) != 0;
    MemController ctl(eq, nvm, cfg, nullptr);

    std::uint64_t it = 0;
    std::uint64_t readsDone = 0;
    for (auto _ : state) {
        auto lineAt = [&](std::uint64_t i) {
            return base + ((it * writesPerBurst + i) % lineSpan) * lineBytes;
        };
        for (unsigned i = 0; i < writesPerBurst; ++i) {
            WriteReq req;
            req.addr = lineAt(i);
            req.data = LineData{};
            req.data[0] = static_cast<std::uint8_t>(i);
            req.counterAtomic = true;
            while (!ctl.tryWrite(req))
                eq.step();
        }
        for (unsigned r = 0; r < readsPerBurst; ++r)
            ctl.issueRead(lineAt(r * 3 % writesPerBurst), 0,
                          [&]() { ++readsDone; });
        eq.run();
        ++it;
    }
    benchmark::DoNotOptimize(readsDone);
    state.SetItemsProcessed(state.iterations()
                            * (writesPerBurst + readsPerBurst));
    state.SetLabel(cfg.useQueueIndex ? "indexed" : "reference");
}
BENCHMARK(BM_WriteReadBurstQueuePressure)->Arg(1)->Arg(0);

} // anonymous namespace

BENCHMARK_MAIN();
