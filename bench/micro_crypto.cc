/**
 * @file
 * Component micro-benchmarks: the AES-128 cipher and the counter-mode
 * engine (host-side throughput; the simulated engine latency is a
 * model parameter, not this).
 */

#include <benchmark/benchmark.h>

#include "crypto/aes128.hh"
#include "crypto/ctr_engine.hh"

using namespace cnvm;
using namespace cnvm::crypto;

namespace
{

void
BM_AesBlockEncrypt(benchmark::State &state)
{
    std::uint8_t key[16] = {1, 2, 3, 4};
    Aes128 aes(key);
    std::uint8_t block[16] = {};
    for (auto _ : state) {
        aes.encryptBlock(block, block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesBlockEncrypt);

void
BM_KeyExpansion(benchmark::State &state)
{
    std::uint8_t key[16] = {1, 2, 3, 4};
    for (auto _ : state) {
        Aes128 aes(key);
        benchmark::DoNotOptimize(aes);
    }
}
BENCHMARK(BM_KeyExpansion);

void
BM_LineEncrypt(benchmark::State &state)
{
    CtrEngine engine;
    LineData plain{};
    std::uint64_t counter = 0;
    for (auto _ : state) {
        LineData cipher = engine.encrypt(0x1000, ++counter, plain);
        benchmark::DoNotOptimize(cipher);
    }
    state.SetBytesProcessed(state.iterations() * lineBytes);
}
BENCHMARK(BM_LineEncrypt);

void
BM_PadGeneration(benchmark::State &state)
{
    CtrEngine engine;
    std::uint64_t counter = 0;
    for (auto _ : state) {
        LineData pad = engine.makePad(0x1000, ++counter);
        benchmark::DoNotOptimize(pad);
    }
    state.SetBytesProcessed(state.iterations() * lineBytes);
}
BENCHMARK(BM_PadGeneration);

} // anonymous namespace

BENCHMARK_MAIN();
