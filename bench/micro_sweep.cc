/**
 * @file
 * Micro-benchmark for the crash-point sweep's Execute phase: host time
 * per crash point in Replay mode (one dedicated crashed simulation per
 * point) versus Fork mode (one trunk run, K captured persistent-state
 * forks classified off-trunk), at growing K on the queue workload.
 *
 * Replay's per-point cost is a full simulation to the crash tick, so
 * ns/point stays roughly flat in K. Fork amortizes the one trunk run
 * over all K points, leaving only a recovery per point — its ns/point
 * falls as K grows, which is the whole argument for the mode.
 */

#include <benchmark/benchmark.h>

#include "core/crash_sweep.hh"

using namespace cnvm;

namespace
{

SystemConfig
sweepConfig()
{
    SystemConfig cfg;
    cfg.design = DesignPoint::SCA;
    cfg.workload = WorkloadKind::Queue;
    cfg.wl.regionBytes = 256u << 10;
    cfg.wl.txnTarget = 30;
    cfg.wl.computePerTxn = 100;
    cfg.wl.recordDigests = true;
    cfg.wl.setupFill = 0.3;
    cfg.memctl.counterCacheBytes = 16u << 10;
    return cfg;
}

void
runSweepBench(benchmark::State &state, SweepMode mode)
{
    SystemConfig cfg = sweepConfig();
    SweepOptions opt;
    opt.points = static_cast<unsigned>(state.range(0));
    opt.mode = mode;
    // jobs = 1 isolates the algorithmic cost: no thread scheduling in
    // the measurement, and Replay vs Fork differ only in work done.
    opt.jobs = 1;

    std::uint64_t points = 0;
    for (auto _ : state) {
        SweepResult result = runSweep(cfg, opt);
        points += result.points.size();
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(points));
    state.SetLabel(sweepModeName(mode));
}

void
BM_SweepReplay(benchmark::State &state)
{
    runSweepBench(state, SweepMode::Replay);
}
BENCHMARK(BM_SweepReplay)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void
BM_SweepFork(benchmark::State &state)
{
    runSweepBench(state, SweepMode::Fork);
}
BENCHMARK(BM_SweepFork)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
