/**
 * @file
 * Figure 13 — multi-core throughput.
 *
 * Transactions per second on 1/2/4/8 cores (each core running the same
 * operations on its own structure), normalized to the single-core
 * no-encryption design (higher is better). The paper's headline: SCA
 * improves over FCA by 6.3/11.5/21.8/40.3% at 1/2/4/8 cores and stays
 * within ~4.7% of the ideal design.
 */

#include "bench/bench_util.hh"

using namespace cnvm;
using namespace cnvm::bench;

int
main()
{
    const std::vector<DesignPoint> designs = {
        DesignPoint::NoEncryption, DesignPoint::Ideal, DesignPoint::SCA,
        DesignPoint::FCA, DesignPoint::Colocated, DesignPoint::ColocatedCC,
    };
    const std::vector<unsigned> core_counts = {1, 2, 4, 8};
    const unsigned txns_per_core = 150;

    std::printf("Figure 13: throughput normalized to 1-core "
                "NoEncryption (higher is better)\n");
    std::printf("config: %u txns/core, 6 MB footprint/core\n", txns_per_core);

    for (WorkloadKind w : allWorkloadKinds()) {
        std::printf("\n-- %s --\n", workloadKindName(w));
        printHeader("cores", {"NoEnc", "Ideal", "SCA", "FCA", "Co-loc",
                              "Co-loc+C$"});
        printRule(designs.size());

        double base = runOnce(paperConfig(w, DesignPoint::NoEncryption,
                                          1, txns_per_core)).txnPerSec;
        double sca_vs_fca_8 = 0;
        for (unsigned cores : core_counts) {
            std::vector<double> row;
            double sca = 0, fca = 0;
            for (DesignPoint d : designs) {
                double tput =
                    runOnce(paperConfig(w, d, cores, txns_per_core))
                        .txnPerSec;
                row.push_back(tput / base);
                if (d == DesignPoint::SCA)
                    sca = tput;
                if (d == DesignPoint::FCA)
                    fca = tput;
            }
            printRow(std::to_string(cores), row);
            if (cores == 8 && fca > 0)
                sca_vs_fca_8 = sca / fca;
        }
        std::printf("SCA/FCA at 8 cores: %.3f\n", sca_vs_fca_8);
    }

    std::printf("\npaper shape: SCA tracks Ideal closely; the SCA-over-"
                "FCA gap grows with core count (to ~1.4x at 8 cores);\n"
                "Queue and RB-Tree scale worst for SCA (high fraction "
                "of counter-atomic writes).\n");
    return 0;
}
