/**
 * @file
 * Figure 15 — sensitivity to counter cache size.
 *
 * SCA speedup over the smallest counter cache (a) and counter cache
 * read miss rate (b), for several workload footprints. The paper
 * sweeps 128 KB - 8 MB caches against 100 - 1000 MB footprints; this
 * harness preserves the footprint : cache-coverage ratios at laptop
 * scale (each 64 B counter line covers 512 B of data, so a cache of
 * size S covers 8*S of footprint).
 */

#include "bench/bench_util.hh"

using namespace cnvm;
using namespace cnvm::bench;

int
main()
{
    // Scaled sweep. Coverage ratios footprint/(8*cc) span ~24 down to
    // ~0.4, bracketing the paper's 100MB/1MB-cache .. 100MB/8MB-cache
    // span of 12.5 .. 1.56. The counter cache is warmed (steady state),
    // so the sweep isolates capacity misses as the paper's does.
    const std::vector<std::uint64_t> cc_bytes = {
        32ull << 10, 64ull << 10, 128ull << 10, 256ull << 10,
        512ull << 10,
    };
    const std::vector<std::uint64_t> footprints = {
        1536ull << 10, 3ull << 20, 6ull << 20,
    };
    const std::vector<WorkloadKind> workloads = {
        WorkloadKind::ArraySwap, WorkloadKind::HashTable,
    };

    std::printf("Figure 15: SCA sensitivity to counter cache size\n");
    std::printf("(paper sweeps 128KB-8MB caches x 100-1000MB footprints;"
                " scaled here preserving footprint:coverage ratios)\n\n");

    std::vector<std::string> columns;
    for (std::uint64_t s : cc_bytes)
        columns.push_back(std::to_string(s >> 10) + "K");

    std::printf("(a) average speedup over the %lluK counter cache "
                "(higher is better)\n",
                static_cast<unsigned long long>(cc_bytes[0] >> 10));
    printHeader("Footprint", columns);
    printRule(cc_bytes.size());

    std::vector<std::vector<std::vector<double>>> missrates;
    for (std::uint64_t footprint : footprints) {
        std::vector<double> speedup(cc_bytes.size(), 0.0);
        std::vector<std::vector<double>> rates(cc_bytes.size());
        for (WorkloadKind w : workloads) {
            double base_runtime = 0;
            for (std::size_t i = 0; i < cc_bytes.size(); ++i) {
                SystemConfig cfg = paperConfig(w, DesignPoint::SCA, 1,
                                               400);
                cfg.wl.regionBytes = footprint;
                cfg.wl.batch = 4;
                cfg.memctl.counterCacheBytes = cc_bytes[i];
                RunMetrics m = runOnce(cfg);
                if (i == 0)
                    base_runtime = m.runtimeNs;
                speedup[i] += base_runtime / m.runtimeNs;
                rates[i].push_back(m.ccMissRate);
            }
        }
        std::vector<double> row;
        for (double s : speedup)
            row.push_back(s / workloads.size());
        printRow(std::to_string(footprint >> 20) + "MB", row);
        missrates.push_back(rates);
    }

    std::printf("\n(b) average counter cache miss rate "
                "(lower is better)\n");
    printHeader("Footprint", columns);
    printRule(cc_bytes.size());
    for (std::size_t f = 0; f < footprints.size(); ++f) {
        std::vector<double> row;
        for (std::size_t i = 0; i < cc_bytes.size(); ++i) {
            double sum = 0;
            for (double r : missrates[f][i])
                sum += r;
            row.push_back(sum / missrates[f][i].size());
        }
        printRow(std::to_string(footprints[f] >> 20) + "MB", row);
    }

    std::printf("\npaper shape: larger caches help; the benefit (and "
                "the miss-rate drop) shrinks as the footprint grows "
                "past the cache coverage.\n");
    return 0;
}
