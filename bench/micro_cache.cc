/**
 * @file
 * Micro-benchmarks for the structural caches (data cache and counter
 * cache): lookup and allocation throughput.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "mem/cache.hh"
#include "memctl/counter_cache.hh"

using namespace cnvm;

namespace
{

void
BM_CacheHitLookup(benchmark::State &state)
{
    Cache cache("bench", 2 << 20, 8);
    for (Addr a = 0; a < (2 << 20); a += lineBytes)
        cache.allocate(a, LineData{});
    Random rng(1);
    for (auto _ : state) {
        Addr addr = lineAlign(rng.below(2 << 20));
        benchmark::DoNotOptimize(cache.access(addr));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHitLookup);

void
BM_CacheMissLookup(benchmark::State &state)
{
    Cache cache("bench", 64 << 10, 8);
    Random rng(2);
    for (auto _ : state) {
        // Addresses beyond the cache: always a miss.
        Addr addr = lineAlign((1ull << 30) + rng.below(1 << 26));
        benchmark::DoNotOptimize(cache.access(addr));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheMissLookup);

void
BM_CacheAllocateEvict(benchmark::State &state)
{
    Cache cache("bench", 64 << 10, 8);
    Addr next = 0;
    for (auto _ : state) {
        auto victim = cache.allocate(next, LineData{});
        benchmark::DoNotOptimize(victim);
        next += lineBytes;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAllocateEvict);

void
BM_CounterCacheAccess(benchmark::State &state)
{
    CounterCache cc(1 << 20, 16, nullptr);
    for (Addr a = 0; a < (1 << 20); a += lineBytes)
        cc.install(a, CounterLine{}, 0);
    Random rng(3);
    for (auto _ : state) {
        Addr addr = lineAlign(rng.below(1 << 20));
        benchmark::DoNotOptimize(cc.access(addr));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterCacheAccess);

} // anonymous namespace

BENCHMARK_MAIN();
