/**
 * @file
 * cnvm_sim — command-line driver for the simulator.
 *
 * Runs one configuration end to end, optionally injects a power
 * failure and recovers, and dumps metrics or the full stat registry.
 *
 *   cnvm_sim --design SCA --workload btree --cores 4 --txns 500
 *   cnvm_sim --design Unsafe --crash-at-frac 0.5 --verify
 *   cnvm_sim --list
 *   cnvm_sim --stats --read-mult 5 --write-mult 5
 *
 * Exit status: 0 on success (and consistent recovery when --verify),
 * 1 on inconsistent recovery, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/crash_sweep.hh"
#include "core/recovery_crash.hh"
#include "core/system.hh"
#include "runner/runner.hh"
#include "tool_args.hh"

using namespace cnvm;

namespace
{

struct Options
{
    SystemConfig cfg;
    double crashFrac = -1.0;  //!< <0: no crash
    unsigned sweepPoints = 0; //!< 0: no sweep
    unsigned jobs = 0;        //!< sweep concurrency; 0 = hardware
    unsigned recoveryJobs = 1;    //!< recovery pre-scan concurrency
    unsigned recoveryCrashes = 0; //!< >0: crash-during-recovery sweep
    SweepMode sweepMode = SweepMode::Replay;
    bool faults = false;
    bool replays = false;
    bool integrity = false;
    bool integrityTree = false;
    bool faultSeedSet = false;
    std::uint64_t faultSeed = 1;
    bool verify = false;
    bool dumpStats = false;
    bool quiet = false;
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(code == 0 ? stdout : stderr, R"(cnvm_sim — encrypted crash-consistent NVMM simulator

options:
  --design NAME        NoEncryption | Ideal | Colocated | ColocatedCC |
                       FCA | SCA (default) | Unsafe
  --workload NAME      array | queue | hash | btree | rbtree
  --cores N            number of cores (default 1)
  --channels N         memory channels sharding the address space
                       (power of two; default 1)
  --sim-jobs N         partition the simulation kernel — one event
                       queue per channel plus a coordinator — and run
                       the channel queues on N host threads (1 = the
                       partitioned-serial reference; max 64; default:
                       the classic single-queue kernel; partitioned
                       results are byte-identical at any N)
  --txns N             transactions per core (default 300)
  --batch N            mutations per transaction (default 1)
  --footprint-mb N     per-core region size (default 6)
  --cc-kb N            total counter cache KB, split evenly across the
                       channels (default 1024)
  --compute N          compute cycles per transaction (default 1000)
  --seed N             workload seed (default 1)
  --read-mult X        scale NVM read latency (default 1.0)
  --write-mult X       scale NVM write latency (default 1.0)
  --cold-cc            do not pre-warm the counter cache
  --crash-at-frac F    inject a power failure at F of the expected
                       runtime (two runs: probe, then crash)
  --crash-sweep K      sweep K crash points (ticks plus semantic
                       controller-event triggers), recover and classify
                       each; generalizes --crash-at-frac from one
                       runtime fraction to the whole controller state
                       space (see cnvm_crash_sweep for the full matrix)
  --jobs N             worker threads for --crash-sweep (default:
                       hardware concurrency; 1 = serial; results are
                       identical at any N)
  --sweep-mode M       --crash-sweep Execute strategy: replay (one
                       crashed simulation per point; default) or fork
                       (one trunk run, classify captured forks —
                       same fingerprint, much faster at large K)
  --recovery-jobs N    worker threads inside each recovery: the
                       integrity pre-scan shards over them (used by
                       --verify and the sweeps; default 1 = serial;
                       recovery output is byte-identical at any N)
  --recovery-crashes R run the crash-during-recovery sweep: capture
                       --crash-sweep K crashed images, interrupt
                       write-back recovery at R planned steps, re-run
                       it, and gate on idempotence (requires
                       --crash-sweep)
  --faults             dose every --crash-sweep point with media faults
                       (torn writes, bit flips, counter corruption, ADR
                       energy loss; requires --crash-sweep)
  --fault-seed N       base seed of the per-point fault RNG streams
                       (default 1; requires --faults)
  --replays            add a replay dose to every faulted point: whole
                       stale (ciphertext, counter, MAC) triples are
                       re-installed (requires --faults)
  --integrity          arm per-line integrity MACs: recovery verifies,
                       repairs counters by trial re-decryption, and
                       quarantines unrepairable lines
  --integrity-tree     arm the counter integrity tree on top of the
                       MACs (implies --integrity): recovery verifies
                       the tree root first and catches replayed
                       counters per line
  --verify             recover after the crash and verify consistency
  --stats              dump the full stat registry
  --quiet              suppress the metric summary
  --list               list designs and workloads, then exit
  --help               this text
)");
    std::exit(code);
}

DesignPoint
parseDesign(const std::string &name)
{
    for (DesignPoint d : {DesignPoint::NoEncryption, DesignPoint::Ideal,
                          DesignPoint::Colocated, DesignPoint::ColocatedCC,
                          DesignPoint::FCA, DesignPoint::SCA,
                          DesignPoint::Unsafe}) {
        if (name == designName(d))
            return d;
    }
    if (name == "Colocated" || name == "colocated")
        return DesignPoint::Colocated;
    if (name == "ColocatedCC" || name == "colocatedcc")
        return DesignPoint::ColocatedCC;
    if (name == "NoEnc" || name == "noenc")
        return DesignPoint::NoEncryption;
    if (name == "ideal")
        return DesignPoint::Ideal;
    if (name == "sca")
        return DesignPoint::SCA;
    if (name == "fca")
        return DesignPoint::FCA;
    if (name == "unsafe")
        return DesignPoint::Unsafe;
    std::fprintf(stderr, "unknown design '%s'\n", name.c_str());
    usage(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    double read_mult = 1.0, write_mult = 1.0;

    auto need_value = [&](int &i) -> const char * {
        return toolargs::needValue(argc, argv, i, usage);
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg == "--list") {
            std::printf("designs:");
            for (DesignPoint d :
                 {DesignPoint::NoEncryption, DesignPoint::Ideal,
                  DesignPoint::Colocated, DesignPoint::ColocatedCC,
                  DesignPoint::FCA, DesignPoint::SCA,
                  DesignPoint::Unsafe})
                std::printf(" %s", designName(d));
            std::printf("\nworkloads:");
            for (WorkloadKind w : allWorkloadKinds())
                std::printf(" %s", workloadKindName(w));
            std::printf("\n");
            std::exit(0);
        } else if (arg == "--design") {
            opt.cfg.design = parseDesign(need_value(i));
        } else if (arg == "--workload") {
            opt.cfg.workload = workloadKindFromName(need_value(i));
        } else if (arg == "--cores") {
            opt.cfg.numCores =
                static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (arg == "--channels") {
            opt.cfg.numChannels = toolargs::parsePowerOfTwo(
                "--channels", need_value(i), usage);
        } else if (arg == "--sim-jobs") {
            opt.cfg.simJobs = toolargs::parseBounded(
                "--sim-jobs", need_value(i), 64, usage);
        } else if (arg == "--txns") {
            opt.cfg.wl.txnTarget =
                static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (arg == "--batch") {
            opt.cfg.wl.batch =
                static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (arg == "--footprint-mb") {
            opt.cfg.wl.regionBytes =
                std::strtoull(need_value(i), nullptr, 10) << 20;
        } else if (arg == "--cc-kb") {
            opt.cfg.memctl.counterCacheBytes =
                std::strtoull(need_value(i), nullptr, 10) << 10;
        } else if (arg == "--compute") {
            opt.cfg.wl.computePerTxn =
                std::strtoull(need_value(i), nullptr, 10);
        } else if (arg == "--seed") {
            opt.cfg.wl.seed = std::strtoull(need_value(i), nullptr, 10);
        } else if (arg == "--read-mult") {
            read_mult = std::atof(need_value(i));
        } else if (arg == "--write-mult") {
            write_mult = std::atof(need_value(i));
        } else if (arg == "--cold-cc") {
            opt.cfg.warmCounterCache = false;
        } else if (arg == "--crash-at-frac") {
            opt.crashFrac = std::atof(need_value(i));
        } else if (arg == "--crash-sweep") {
            opt.sweepPoints = toolargs::parsePositive("--crash-sweep",
                                                      need_value(i),
                                                      usage);
        } else if (arg == "--jobs") {
            opt.jobs =
                toolargs::parsePositive("--jobs", need_value(i), usage);
        } else if (arg == "--recovery-jobs") {
            opt.recoveryJobs = toolargs::parsePositive("--recovery-jobs",
                                                       need_value(i),
                                                       usage);
        } else if (arg == "--recovery-crashes") {
            opt.recoveryCrashes = toolargs::parsePositive(
                "--recovery-crashes", need_value(i), usage);
        } else if (arg == "--sweep-mode") {
            std::string name = need_value(i);
            if (name == "replay") {
                opt.sweepMode = SweepMode::Replay;
            } else if (name == "fork") {
                opt.sweepMode = SweepMode::Fork;
            } else {
                std::fprintf(stderr, "unknown sweep mode '%s'\n",
                             name.c_str());
                usage(2);
            }
        } else if (arg == "--faults") {
            opt.faults = true;
        } else if (arg == "--fault-seed") {
            opt.faultSeed =
                toolargs::parseU64("--fault-seed", need_value(i), usage);
            opt.faultSeedSet = true;
        } else if (arg == "--replays") {
            opt.replays = true;
        } else if (arg == "--integrity") {
            opt.integrity = true;
        } else if (arg == "--integrity-tree") {
            opt.integrityTree = true;
            opt.integrity = true;
        } else if (arg == "--verify") {
            opt.verify = true;
        } else if (arg == "--stats") {
            opt.dumpStats = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(2);
        }
    }

    if (read_mult != 1.0 || write_mult != 1.0)
        opt.cfg.nvm = NvmTiming::pcm().scaled(read_mult, write_mult);
    if (opt.verify || opt.crashFrac >= 0 || opt.sweepPoints > 0)
        opt.cfg.wl.recordDigests = true;
    opt.cfg.memctl.integrityMac = opt.integrity;
    opt.cfg.memctl.integrityTree = opt.integrityTree;
    toolargs::enforceFlagRules(
        {{opt.faults, opt.sweepPoints > 0, "--faults", "--crash-sweep"},
         {opt.recoveryCrashes > 0, opt.sweepPoints > 0,
          "--recovery-crashes", "--crash-sweep"},
         {opt.faultSeedSet, opt.faults, "--fault-seed", "--faults"},
         {opt.replays, opt.faults, "--replays", "--faults"}},
        usage);
    return opt;
}

/** --recovery-crashes: crash-during-recovery idempotence sweep. */
int
runRecoveryCrashes(const Options &opt)
{
    RecoveryCrashOptions rc_opt;
    rc_opt.points = opt.recoveryCrashes;
    rc_opt.images = opt.sweepPoints;
    rc_opt.recoveryJobs = opt.recoveryJobs;
    rc_opt.jobs = opt.jobs == 0 ? WorkPool::hardwareJobs() : opt.jobs;
    if (opt.faults)
        rc_opt.faults = opt.replays
            ? FaultSpec::allKindsWithReplays(opt.faultSeed)
            : FaultSpec::allKinds(opt.faultSeed);

    if (!opt.quiet)
        std::printf("crash-during-recovery sweep: %u images, %u "
                    "interruption points (%u jobs, %u recovery "
                    "jobs%s%s): %s\n",
                    rc_opt.images, rc_opt.points, rc_opt.jobs,
                    rc_opt.recoveryJobs,
                    opt.faults ? ", media faults" : "",
                    opt.integrity ? ", integrity MACs" : "",
                    System(opt.cfg).describe().c_str());

    RecoveryCrashResult result = runRecoveryCrashSweep(opt.cfg, rc_opt);
    if (!opt.quiet) {
        for (const RecoveryCrashPoint &p : result.points)
            std::printf("  img%-3zu %-18s %s%s%s%s\n", p.imageIndex,
                        p.spec.describe().c_str(),
                        p.fired ? "fired " : "unfired ",
                        p.divergent ? "DIVERGENT" : "converged",
                        p.detail.empty() ? "" : " : ",
                        p.detail.c_str());
    }
    std::printf("%u captured image(s), %zu interruption point(s): "
                "%u fired, %u divergent\n",
                result.images, result.points.size(),
                result.firedPoints(), result.divergentPoints());
    return !result.points.empty() && result.divergentPoints() == 0
        ? 0 : 1;
}

/** --crash-sweep: K-point sweep of this one configuration. */
int
runCrashSweep(const Options &opt)
{
    SweepOptions sweep_opt;
    sweep_opt.points = opt.sweepPoints;
    sweep_opt.jobs = opt.jobs == 0 ? WorkPool::hardwareJobs() : opt.jobs;
    sweep_opt.mode = opt.sweepMode;
    sweep_opt.recoveryJobs = opt.recoveryJobs;
    if (opt.faults)
        sweep_opt.faults = opt.replays
            ? FaultSpec::allKindsWithReplays(opt.faultSeed)
            : FaultSpec::allKinds(opt.faultSeed);

    if (!opt.quiet)
        std::printf("sweeping %u crash points (%u jobs, %s mode%s%s): %s\n",
                    opt.sweepPoints, sweep_opt.jobs,
                    sweepModeName(sweep_opt.mode),
                    opt.faults ? ", media faults" : "",
                    opt.integrity ? ", integrity MACs" : "",
                    System(opt.cfg).describe().c_str());

    SweepResult result = runSweep(opt.cfg, sweep_opt);
    for (const SweepPoint &p : result.points) {
        if (!opt.quiet) {
            std::printf("  %-20s %s\n", p.spec.describe().c_str(),
                        p.crashed ? crashClassName(p.cls) : "unreached");
        }
    }
    std::printf("%u points: %u reached, %u consistent, %u inconsistent "
                "(%u counter-data mismatches)\n",
                static_cast<unsigned>(result.points.size()),
                static_cast<unsigned>(result.points.size()) -
                    result.unreachedPoints(),
                result.countOf(CrashClass::Consistent),
                result.inconsistentPoints(), result.mismatchPoints());
    if (opt.faults) {
        std::printf("faults: %llu faulted lines, %llu detected, "
                    "%llu repaired, %llu unrecoverable; %u detected "
                    "point(s), %u silent point(s)\n",
                    static_cast<unsigned long long>(
                        result.totalOf(&SweepPoint::faultedLines)),
                    static_cast<unsigned long long>(
                        result.totalOf(&SweepPoint::detectedCorruptions)),
                    static_cast<unsigned long long>(
                        result.totalOf(&SweepPoint::repairedLines)),
                    static_cast<unsigned long long>(
                        result.totalOf(&SweepPoint::unrecoverableLines)),
                    result.detectedPoints(), result.silentPoints());
        if (opt.replays)
            std::printf("replays: %llu replayed lines, %llu caught; "
                        "%u replay-detected point(s), %u silent-replay "
                        "point(s)\n",
                        static_cast<unsigned long long>(
                            result.totalOf(&SweepPoint::replayedLines)),
                        static_cast<unsigned long long>(
                            result.totalOf(&SweepPoint::replaysDetected)),
                        result.replayDetectedPoints(),
                        result.silentReplayPoints());
        // With integrity armed the invariant is zero silent points —
        // extended to zero silent replays when the tree is on too;
        // without integrity the sweep is informational (the failures
        // are the expected behavior of unprotected media).
        if (!opt.integrity)
            return 0;
        if (result.silentPoints() != 0)
            return 1;
        if (opt.integrityTree && result.silentReplayPoints() != 0)
            return 1;
        return 0;
    }
    return result.inconsistentPoints() == 0 ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    if (opt.recoveryCrashes > 0)
        return runRecoveryCrashes(opt);
    if (opt.sweepPoints > 0)
        return runCrashSweep(opt);

    Tick crash_tick = 0;
    if (opt.crashFrac >= 0) {
        // Probe run to learn the total runtime.
        System probe(opt.cfg);
        Tick total = probe.run().endTick;
        crash_tick = static_cast<Tick>(
            static_cast<double>(total) * opt.crashFrac);
    }

    System sys(opt.cfg);
    if (!opt.quiet)
        std::printf("running: %s\n", sys.describe().c_str());

    RunResult result = opt.crashFrac >= 0
        ? sys.runWithCrashAt(crash_tick)
        : sys.run();

    if (!opt.quiet) {
        std::printf("%s after %.1f us, %llu txns, %.0f txn/s\n",
                    result.crashed ? "power failed" : "completed",
                    sys.runtimeNs() / 1000.0,
                    static_cast<unsigned long long>(result.txnsIssued),
                    sys.throughputTxnPerSec());
        std::printf("NVM: %.1f KB written, %.1f KB read, "
                    "counter-cache miss %.1f%%\n",
                    sys.nvmBytesWritten() / 1024.0,
                    sys.nvmBytesRead() / 1024.0,
                    sys.counterCacheMissRate() * 100.0);
    }

    int status = 0;
    if (opt.verify) {
        if (!result.crashed && opt.crashFrac >= 0) {
            std::printf("run completed before the crash point; "
                        "nothing to verify\n");
        } else {
            if (result.crashed == false)
                sys.crashChannels(); // clean-shutdown image check
            auto reports = sys.recoverAll(opt.recoveryJobs);
            for (unsigned c = 0; c < reports.size(); ++c) {
                const RecoveryReport &r = reports[c];
                if (r.consistent) {
                    std::printf("core %u: consistent (committed %llu"
                                "%s)\n", c,
                                static_cast<unsigned long long>(
                                    r.committedTxns),
                                r.rolledBack ? ", rolled back" : "");
                } else {
                    std::printf("core %u: INCONSISTENT: %s\n", c,
                                r.detail.c_str());
                    status = 1;
                }
            }
        }
    }

    if (opt.dumpStats)
        sys.statsRegistry().dump(std::cout);
    return status;
}
