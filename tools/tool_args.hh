/**
 * @file
 * Shared command-line argument validation for the cnvm tools.
 *
 * The three CLIs (cnvm_sim, cnvm_crash_sweep, cnvm_bench) grew their
 * option parsers independently, and the validation drifted: one tool
 * rejected `--jobs 0` while another accepted it, and cnvm_crash_sweep
 * silently accepted `--fault-seed` without `--faults` (quietly turning
 * the seed flag into an implicit dose switch). This header is the one
 * place the rules live:
 *
 *  - needValue():  a flag's mandatory value, or usage-to-stderr/exit 2;
 *  - parsePositive(): a strictly positive integer value, fully
 *    consumed, or usage-to-stderr/exit 2;
 *  - parseU64():   any unsigned 64-bit value, fully consumed, ditto;
 *  - FlagRule / enforceFlagRules(): cross-flag prerequisites
 *    ("--fault-seed requires --faults"), checked after parsing with a
 *    uniform diagnostic.
 *
 * Every helper takes the tool's own [[noreturn]] usage(int) so the
 * diagnostics land next to that tool's option summary.
 */

#ifndef CNVM_TOOLS_TOOL_ARGS_HH
#define CNVM_TOOLS_TOOL_ARGS_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <limits>

namespace cnvm
{
namespace toolargs
{

/** The mandatory value following argv[i], advancing i past it. */
template <typename UsageFn>
const char *
needValue(int argc, char **argv, int &i, UsageFn &&usage)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        usage(2);
    }
    return argv[++i];
}

/** @p text as an unsigned 64-bit integer; rejects trailing garbage
 *  and negative numbers instead of atoi-style silent truncation. */
template <typename UsageFn>
std::uint64_t
parseU64(const char *flag, const char *text, UsageFn &&usage)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || text[0] == '-') {
        std::fprintf(stderr, "%s needs an unsigned integer, got '%s'\n",
                     flag, text);
        usage(2);
    }
    return v;
}

/** @p text as a strictly positive integer fitting in unsigned. */
template <typename UsageFn>
unsigned
parsePositive(const char *flag, const char *text, UsageFn &&usage)
{
    std::uint64_t v = parseU64(flag, text, usage);
    if (v == 0 || v > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr, "%s needs a positive integer, got '%s'\n",
                     flag, text);
        usage(2);
    }
    return static_cast<unsigned>(v);
}

/** @p text as a positive power-of-two fitting in unsigned; the
 *  interleave math (`addr & (channels - 1)`) is only valid for
 *  powers of two, so 0, 3, 6, ... are usage errors, not truncations. */
template <typename UsageFn>
unsigned
parsePowerOfTwo(const char *flag, const char *text, UsageFn &&usage)
{
    std::uint64_t v = parseU64(flag, text, usage);
    if (v == 0 || (v & (v - 1)) != 0 ||
        v > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr,
                     "%s needs a power-of-two integer, got '%s'\n",
                     flag, text);
        usage(2);
    }
    return static_cast<unsigned>(v);
}

/** @p text as a positive integer in [1, @p max_value]; for knobs like
 *  --sim-jobs where an absurd value is a typo (or a fork bomb), not a
 *  request — 0 and over-bound are usage errors. */
template <typename UsageFn>
unsigned
parseBounded(const char *flag, const char *text, unsigned max_value,
             UsageFn &&usage)
{
    std::uint64_t v = parseU64(flag, text, usage);
    if (v == 0 || v > max_value) {
        std::fprintf(stderr, "%s needs an integer in [1, %u], got '%s'\n",
                     flag, max_value, text);
        usage(2);
    }
    return static_cast<unsigned>(v);
}

/**
 * One cross-flag prerequisite: @p flag was given (set) but only makes
 * sense alongside @p needs (prereq). A flag that merely *tunes*
 * another flag's behavior must not silently enable it.
 */
struct FlagRule
{
    bool set = false;
    bool prereq = false;
    const char *flag = "";
    const char *needs = "";
};

/** Checks every rule; the first violation prints a uniform
 *  "<flag> requires <needs>" to stderr and exits 2 via @p usage. */
template <typename UsageFn>
void
enforceFlagRules(std::initializer_list<FlagRule> rules, UsageFn &&usage)
{
    for (const FlagRule &r : rules) {
        if (r.set && !r.prereq) {
            std::fprintf(stderr, "%s requires %s\n", r.flag, r.needs);
            usage(2);
        }
    }
}

} // namespace toolargs
} // namespace cnvm

#endif // CNVM_TOOLS_TOOL_ARGS_HH
