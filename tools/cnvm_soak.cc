/**
 * @file
 * cnvm_soak — crash-chain soak: the crash→recover→resume lifecycle,
 * cycled with cumulative fault dosing.
 *
 * Where cnvm_crash_sweep asks "is every single crash point
 * recoverable?", cnvm_soak asks the operational question: does the
 * machine stay consistent across a *chain* of lifecycles, where each
 * recovered image is resumed as the next run's starting state and
 * faults accumulate dose after dose?
 *
 *   cnvm_soak --design SCA --cycles 50
 *   cnvm_soak --cycles 25 --faults --replays --integrity-tree
 *   cnvm_soak --design SCA --cycles 10 --chains 4 --jobs 4 --fingerprint
 *
 * Every chain is a pure function of (config, options): same crash
 * points, same doses, same per-cycle classifications, byte-identical
 * fingerprint at any --jobs / --recovery-jobs / --sim-jobs value.
 *
 * Exit status: 0 when every design behaved as designed, 1 otherwise,
 * 2 on usage errors. "As designed" splits on the protection/dose
 * combination (soakChainExpectedOk):
 *
 *   - positive rows (crash-consistent designs, or any design with the
 *     matching integrity metadata armed for the dose): the chain must
 *     complete ok — every cycle loud, cumulative invariants held, the
 *     final examination fully consistent at target;
 *   - Unsafe without --integrity is the Figure-4 negative control: its
 *     chain must fail, and fail loudly (zero silent cycles — the torn
 *     counter is *detected*);
 *   - --faults without --integrity must demonstrate at least one
 *     silent cycle somewhere in the matrix (the dose bites, and bites
 *     silently when unprotected);
 *   - --replays without --integrity-tree must demonstrate at least one
 *     silent-replay cycle somewhere (stale triples verify per line).
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/soak.hh"
#include "runner/runner.hh"
#include "stats/stats.hh"
#include "tool_args.hh"

using namespace cnvm;

namespace
{

struct Options
{
    SystemConfig cfg;
    std::vector<DesignPoint> designs;
    SoakOptions soak;
    bool verbose = false;
    bool printFingerprint = false;
    bool printStats = false;
    bool faults = false;
    bool replays = false;
    bool integrity = false;
    bool integrityTree = false;
    bool faultSeedSet = false;
    bool faultPeriodSet = false;
    std::uint64_t faultSeed = 1;
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(code == 0 ? stdout : stderr,
                 R"(cnvm_soak — crash-chain soak over the design space

options:
  --design NAME     soak one design (default: all of them)
  --cycles K        crash→recover→resume cycles per chain, before the
                    final resume-and-complete examination (default 20,
                    max 4096)
  --txns-per-cycle N
                    committed-target growth per cycle (default 12)
  --chains N        independent chains per design, seeds derived from
                    --seed (default 1)
  --jobs N          worker threads fanning the chains (default 1; the
                    fingerprint is identical at any N)
  --recovery-jobs N worker threads inside every cycle's recovery
                    (default 1; chain outcomes identical at any N)
  --recovery-crashes R
                    per cycle, run R interrupted write-back recovery
                    attempts on a throwaway image copy and gate on
                    convergence with the committing pass (default 0)
  --workload NAME   array | queue | hash | btree | rbtree (default array)
  --cores N         number of cores (default 1)
  --channels N      memory channels sharding the address space
                    (power of two; default 1)
  --sim-jobs N      partition the simulation kernel per channel and run
                    it on N host threads inside every cycle (max 64)
  --footprint-kb N  per-core region size (default 256)
  --cc-kb N         total counter cache KB (default 16)
  --seed N          chain planning seed (default 1)
  --ticks-only      plan only absolute-tick crash points
  --faults          dose cycles with media faults (torn lines, bit
                    flips, counter corruption/rollback, ADR loss);
                    per-cycle spec derived with FaultSpec::forPoint
  --fault-period N  dose every Nth cycle (default 2; requires --faults)
  --fault-seed N    base seed of the fault dose (default 1; requires
                    --faults)
  --replays         add a replay dose: whole stale (ciphertext,
                    counter, MAC) triples re-installed (requires
                    --faults)
  --integrity       arm the per-line integrity MACs (quarantine +
                    window repair; also what lets the Unsafe design
                    survive its own clean shutdowns)
  --integrity-tree  arm the counter integrity tree on top of the MACs
                    (implies --integrity)
  --stats           print the per-cycle stat snapshots (the reset
                    view) with accumulated totals, and the soak.*
                    registry
  --verbose         print every cycle of every chain
  --fingerprint     print each design's deterministic chain fingerprint
  --help            this text
)");
    std::exit(code);
}

const char *
shortDesignName(DesignPoint d)
{
    switch (d) {
      case DesignPoint::Colocated: return "Colocated";
      case DesignPoint::ColocatedCC: return "ColocatedCC";
      default: return designName(d);
    }
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    opt.cfg.wl.regionBytes = 256u << 10;
    opt.cfg.wl.computePerTxn = 100;
    opt.cfg.wl.recordDigests = true;
    opt.cfg.wl.setupFill = 0.3;
    opt.cfg.memctl.counterCacheBytes = 16u << 10;

    auto need_value = [&](int &i) -> const char * {
        return toolargs::needValue(argc, argv, i, usage);
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg == "--design") {
            std::string name = need_value(i);
            auto d = designFromName(name);
            if (!d) {
                std::fprintf(stderr, "unknown design '%s'\n", name.c_str());
                usage(2);
            }
            opt.designs.push_back(*d);
        } else if (arg == "--cycles") {
            opt.soak.cycles = toolargs::parseBounded(
                "--cycles", need_value(i), 4096, usage);
        } else if (arg == "--txns-per-cycle") {
            opt.soak.txnsPerCycle = toolargs::parsePositive(
                "--txns-per-cycle", need_value(i), usage);
        } else if (arg == "--chains") {
            opt.soak.chains = toolargs::parsePositive(
                "--chains", need_value(i), usage);
        } else if (arg == "--jobs") {
            opt.soak.jobs =
                toolargs::parsePositive("--jobs", need_value(i), usage);
        } else if (arg == "--recovery-jobs") {
            opt.soak.recoveryJobs = toolargs::parsePositive(
                "--recovery-jobs", need_value(i), usage);
        } else if (arg == "--recovery-crashes") {
            opt.soak.recoveryCrashes = toolargs::parsePositive(
                "--recovery-crashes", need_value(i), usage);
        } else if (arg == "--workload") {
            opt.cfg.workload = workloadKindFromName(need_value(i));
        } else if (arg == "--cores") {
            opt.cfg.numCores =
                static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (arg == "--channels") {
            opt.cfg.numChannels = toolargs::parsePowerOfTwo(
                "--channels", need_value(i), usage);
        } else if (arg == "--sim-jobs") {
            opt.cfg.simJobs = toolargs::parseBounded(
                "--sim-jobs", need_value(i), 64, usage);
        } else if (arg == "--footprint-kb") {
            opt.cfg.wl.regionBytes =
                std::strtoull(need_value(i), nullptr, 10) << 10;
        } else if (arg == "--cc-kb") {
            opt.cfg.memctl.counterCacheBytes =
                std::strtoull(need_value(i), nullptr, 10) << 10;
        } else if (arg == "--seed") {
            opt.soak.seed =
                toolargs::parseU64("--seed", need_value(i), usage);
        } else if (arg == "--ticks-only") {
            opt.soak.semanticTriggers = false;
        } else if (arg == "--faults") {
            opt.faults = true;
        } else if (arg == "--fault-period") {
            opt.soak.faultPeriod = toolargs::parsePositive(
                "--fault-period", need_value(i), usage);
            opt.faultPeriodSet = true;
        } else if (arg == "--fault-seed") {
            opt.faultSeed =
                toolargs::parseU64("--fault-seed", need_value(i), usage);
            opt.faultSeedSet = true;
        } else if (arg == "--replays") {
            opt.replays = true;
        } else if (arg == "--integrity") {
            opt.integrity = true;
        } else if (arg == "--integrity-tree") {
            opt.integrityTree = true;
            opt.integrity = true;
        } else if (arg == "--stats") {
            opt.printStats = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--fingerprint") {
            opt.printFingerprint = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(2);
        }
    }

    toolargs::enforceFlagRules(
        {{opt.faultSeedSet, opt.faults, "--fault-seed", "--faults"},
         {opt.faultPeriodSet, opt.faults, "--fault-period", "--faults"},
         {opt.replays, opt.faults, "--replays", "--faults"}},
        usage);
    if (opt.faults)
        opt.soak.faults = opt.replays
            ? FaultSpec::allKindsWithReplays(opt.faultSeed)
            : FaultSpec::allKinds(opt.faultSeed);
    if (opt.designs.empty()) {
        for (DesignPoint d : allDesignPoints())
            opt.designs.push_back(d);
    }
    return opt;
}

/** Matrix-level tallies the negative-control gates read. */
struct MatrixTotals
{
    unsigned silentCycles = 0;       //!< SilentCorruption cycles
    unsigned silentReplayCycles = 0; //!< SilentReplay cycles
};

/** Per-cycle stat snapshot table of one chain: the reset view, with
 *  the accumulated totals (the sum over snapshots) as the last row. */
void
printCycleStats(DesignPoint d, const SoakChainResult &chain)
{
    std::printf("  per-cycle stats (%s, chain %u): each cycle runs on "
                "a freshly built System, so every snapshot is a reset "
                "view; accumulate = sum\n",
                shortDesignName(d), chain.chainIndex);
    std::printf("  %5s %8s %12s %12s %12s\n", "cycle", "txns",
                "nvm-wr-KB", "nvm-rd-KB", "data-inserts");
    CycleStats total;
    for (const SoakCycle &c : chain.cycles) {
        std::printf("  %5u %8llu %12.1f %12.1f %12llu\n", c.cycle,
                    static_cast<unsigned long long>(c.stats.txnsIssued),
                    c.stats.nvmBytesWritten / 1024.0,
                    c.stats.nvmBytesRead / 1024.0,
                    static_cast<unsigned long long>(c.stats.dataInserts));
        total.txnsIssued += c.stats.txnsIssued;
        total.nvmBytesWritten += c.stats.nvmBytesWritten;
        total.nvmBytesRead += c.stats.nvmBytesRead;
        total.dataInserts += c.stats.dataInserts;
    }
    std::printf("  %5s %8llu %12.1f %12.1f %12llu\n", "accum",
                static_cast<unsigned long long>(total.txnsIssued),
                total.nvmBytesWritten / 1024.0,
                total.nvmBytesRead / 1024.0,
                static_cast<unsigned long long>(total.dataInserts));
}

/** Soaks one design; returns whether it behaved as designed and adds
 *  its silent-cycle tallies into @p totals. */
bool
soakDesign(const Options &opt, DesignPoint design, WorkPool &pool,
           MatrixTotals &totals, stats::Scalar &cycles_stat)
{
    SystemConfig cfg = opt.cfg;
    cfg.design = design;
    cfg.memctl.integrityMac = opt.integrity;
    cfg.memctl.integrityTree = opt.integrityTree;

    SoakResult result = runSoak(cfg, opt.soak, &pool);

    unsigned silent = 0, silent_replay = 0, detected = 0, rp_det = 0;
    unsigned crashed = 0, dosed = 0, resets = 0, interrupts = 0;
    std::uint64_t final_q = 0;
    bool final_at_target = true;
    for (const SoakChainResult &chain : result.chains) {
        cycles_stat += chain.cycles.size();
        crashed += chain.crashedCycles();
        dosed += chain.dosedCycles();
        resets += chain.totalResets();
        final_q += chain.finalQuarantined;
        for (const SoakCycle &c : chain.cycles) {
            silent += c.worst == CrashClass::SilentCorruption;
            silent_replay += c.worst == CrashClass::SilentReplay;
            detected += c.detectedCorruptions > 0;
            rp_det += c.replaysDetected > 0;
            interrupts += c.recoveryInterrupts;
        }
        for (std::uint64_t committed : chain.finalCommitted)
            final_at_target =
                final_at_target && committed == chain.finalTxnTarget;
        if (opt.verbose) {
            for (const SoakCycle &c : chain.cycles)
                std::printf("  chain%u %s\n", chain.chainIndex,
                            c.describe().c_str());
            if (!chain.ok)
                std::printf("  chain%u FAILED: %s\n", chain.chainIndex,
                            chain.failure.c_str());
        }
    }
    totals.silentCycles += silent;
    totals.silentReplayCycles += silent_replay;

    bool expected_ok = soakChainExpectedOk(design, opt.integrity,
                                           opt.integrityTree, opt.faults,
                                           opt.replays);
    std::printf("%-13s %7u %8u %8u %7u %7u %7u %8u %7u %8llu  %s\n",
                shortDesignName(design),
                static_cast<unsigned>(result.chains.size()),
                result.totalCycles(), crashed, dosed, resets,
                silent + silent_replay, detected, rp_det,
                static_cast<unsigned long long>(final_q),
                result.allOk()            ? "ok"
                    : expected_ok         ? "FAILED"
                                          : "failed (negative control)");
    if (!result.allOk() && (opt.verbose || expected_ok))
        std::printf("  ^^ %s\n", result.firstFailure().c_str());

    if (opt.printFingerprint)
        std::printf("  fingerprint(%s):\n%s\n", shortDesignName(design),
                    result.fingerprint().c_str());
    if (opt.printStats && !result.chains.empty())
        printCycleStats(design, result.chains.front());

    if (expected_ok)
        return result.allOk() && final_at_target
            && (opt.soak.recoveryCrashes == 0 || interrupts > 0);
    // Negative-control rows must fail — and fail loudly when the
    // failure is the design's own (the Unsafe clean-chain control:
    // the torn counter is detected, never consumed). Dosed negative
    // controls are allowed to fail silently; that is their point, and
    // the matrix-level gates in main() require that they actually do.
    if (!result.allOk() && !opt.faults)
        return silent + silent_replay == 0;
    return !result.allOk();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    WorkPool pool(opt.soak.jobs);

    stats::StatRegistry registry;
    stats::Scalar cycles_stat("soak.cycles",
                              "crash→recover→resume cycles executed "
                              "(including each chain's final "
                              "examination)");
    registry.registerStat(cycles_stat);

    std::printf("crash-chain soak: %u cycle(s)/chain + final exam, "
                "%u chain(s)/design, +%u txns/cycle, workload %s, "
                "%u core(s), seed %llu, %u job(s), "
                "%u recovery job(s)%s%s%s%s\n",
                opt.soak.cycles, opt.soak.chains, opt.soak.txnsPerCycle,
                workloadKindName(opt.cfg.workload), opt.cfg.numCores,
                static_cast<unsigned long long>(opt.soak.seed),
                pool.jobs(), opt.soak.recoveryJobs,
                opt.faults ? ", media faults" : "",
                opt.replays ? " + replays" : "",
                opt.soak.recoveryCrashes > 0 ? ", recovery-crash probe"
                                             : "",
                opt.integrityTree ? ", integrity tree"
                    : opt.integrity ? ", integrity MACs" : "");
    std::printf("%-13s %7s %8s %8s %7s %7s %7s %8s %7s %8s\n", "design",
                "chains", "cycles", "crashed", "dosed", "resets",
                "silent", "detected", "rp-det", "final-q");

    bool all_ok = true;
    MatrixTotals totals;
    for (DesignPoint d : opt.designs) {
        if (!soakDesign(opt, d, pool, totals, cycles_stat)) {
            all_ok = false;
            std::printf("  ^^ %s did not behave as designed\n",
                        shortDesignName(d));
        }
    }

    if (opt.faults && !opt.integrity) {
        // Negative control: without integrity metadata the dose must
        // demonstrate at least one silent cycle somewhere — otherwise
        // the zero-silent gate of the armed runs proves nothing.
        // (If this trips on a short run, raise --cycles.)
        if (totals.silentCycles + totals.silentReplayCycles == 0) {
            all_ok = false;
            std::printf("^^ no silent cycle anywhere: the fault dose "
                        "did not demonstrate the unprotected failure "
                        "mode\n");
        } else {
            std::printf("negative control: %u silent cycle(s) without "
                        "integrity metadata\n",
                        totals.silentCycles + totals.silentReplayCycles);
        }
    }
    if (opt.replays && opt.integrity && !opt.integrityTree) {
        // Negative control: MAC-only, at least one replayed triple
        // must be consumed silently somewhere in the matrix.
        if (totals.silentReplayCycles == 0) {
            all_ok = false;
            std::printf("^^ no silent replay anywhere: the replay dose "
                        "did not demonstrate the MAC-only failure "
                        "mode\n");
        } else {
            std::printf("negative control: %u silent-replay cycle(s) "
                        "without the integrity tree\n",
                        totals.silentReplayCycles);
        }
    }

    if (opt.printStats) {
        std::ostringstream os;
        registry.dump(os);
        std::printf("%s", os.str().c_str());
    }
    return all_ok ? 0 : 1;
}
