#!/usr/bin/env bash
# CI entry point: sanitized build, full test suite, a crash-point
# sweep across every design (20 points each, fixed seed), and a
# Release bench smoke.
#
#   tools/ci.sh [build-dir] [release-build-dir]
#
# The sanitizers matter here: the crash paths tear down controller
# state with events still in flight, which is exactly where use-after-
# free and leaked one-shot events would hide.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-ci}"
release="${2:-$repo/build-ci-rel}"

cmake -B "$build" -S "$repo" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"

cmake --build "$build" -j "$(nproc)"

ctest --test-dir "$build" --output-on-failure -j "$(nproc)"

"$build/tools/cnvm_crash_sweep" --points 20

# Bench smoke in Release: cnvm_bench runs each kernel a few iterations
# and, more importantly, exits non-zero if the indexed queue lookups
# diverge from the reference linear scans (byte-compared stats dumps
# and crash-sweep fingerprints), or if any kernel drops work.
cmake -B "$release" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$release" -j "$(nproc)"
"$release/tools/cnvm_bench" --quick --repeat 1
