#!/usr/bin/env bash
# CI entry point: sanitized build, full test suite, and a crash-point
# sweep across every design (20 points each, fixed seed).
#
#   tools/ci.sh [build-dir]
#
# The sanitizers matter here: the crash paths tear down controller
# state with events still in flight, which is exactly where use-after-
# free and leaked one-shot events would hide.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-ci}"

cmake -B "$build" -S "$repo" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"

cmake --build "$build" -j "$(nproc)"

ctest --test-dir "$build" --output-on-failure -j "$(nproc)"

"$build/tools/cnvm_crash_sweep" --points 20
