#!/usr/bin/env bash
# CI entry point: AddressSanitizer+UBSan build, full test suite, a
# crash-point sweep across every design (20 points each, fixed seed,
# parallel Execute phase), fault-injection and replay-dosed
# integrity-tree sweeps under the same sanitizers — single- and
# multi-channel (--channels 4) — parallel-recovery and
# crash-during-recovery sweeps, crash-chain soak smokes in both gate
# directions, CLI usage-contract smokes, a
# ThreadSanitizer pass over the parallel sweep and recovery paths
# (replay-dosed pre-scan and the 4-channel fork capture included), and
# a Release bench smoke.
#
#   tools/ci.sh [build-dir] [release-build-dir] [tsan-build-dir]
#
# The sanitizers matter here: the crash paths tear down controller
# state with events still in flight, which is exactly where use-after-
# free and leaked one-shot events would hide — and the work pool runs
# whole Systems on worker threads, which is exactly where an unnoticed
# mutable global would race. The fault-injection paths corrupt and
# quarantine persisted lines, which is exactly where an out-of-bounds
# torn-write prefix or a stale MAC pointer would hide.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-ci}"
release="${2:-$repo/build-ci-rel}"
tsan="${3:-$repo/build-ci-tsan}"

# build-ci is the ASan+UBSan configuration (address + undefined, no
# recovery: any finding is fatal). Everything ctest runs, runs under it.
cmake -B "$build" -S "$repo" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"

cmake --build "$build" -j "$(nproc)"

ctest --test-dir "$build" --output-on-failure -j "$(nproc)"

# CLI usage contract: every tool prints usage and exits 0 on --help,
# and prints usage to stderr and exits 2 on an unknown flag.
for tool in cnvm_sim cnvm_crash_sweep cnvm_soak cnvm_bench; do
    "$build/tools/$tool" --help > /dev/null
    if "$build/tools/$tool" --no-such-flag > /dev/null 2>&1; then
        echo "FAIL: $tool accepted an unknown flag" >&2
        exit 1
    elif [ $? -ne 2 ]; then
        echo "FAIL: $tool should exit 2 on an unknown flag" >&2
        exit 1
    fi
done

# Sweep smoke with the pooled Execute phase: --jobs 4 regardless of
# host width — the point is to exercise the parallel path, and the
# fingerprint-identity checks in cnvm_bench and the test suite pin its
# results to the serial reference.
"$build/tools/cnvm_crash_sweep" --points 20 --jobs 4

# Fault-injection smoke under ASan+UBSan, both gate directions: with
# integrity MACs the sweep must stay free of silent corruption; without
# them the same dose must demonstrate at least one silent point (both
# are part of the tool's exit status).
"$build/tools/cnvm_crash_sweep" --points 12 --jobs 4 --mode fork \
    --faults --integrity \
    --design ColocatedCC --design FCA --design SCA --design Unsafe
"$build/tools/cnvm_crash_sweep" --points 12 --jobs 4 --mode fork \
    --faults \
    --design ColocatedCC --design FCA --design SCA --design Unsafe

# Replay-attack smoke under ASan+UBSan, both gate directions: with the
# integrity tree, a replay-dosed sweep must classify zero points silent
# of any kind and catch at least one replay; MAC-only, the same dose
# must demonstrate at least one silent replay. The tree paths hash and
# rebuild persisted node maps at crash capture and during recovery —
# exactly where an off-by-one leaf index or a stale root pointer would
# hide.
"$build/tools/cnvm_crash_sweep" --points 12 --jobs 4 --mode fork \
    --faults --replays --integrity-tree \
    --design ColocatedCC --design FCA --design SCA --design Unsafe
"$build/tools/cnvm_crash_sweep" --points 12 --jobs 4 --mode fork \
    --faults --replays --integrity \
    --design ColocatedCC --design FCA --design SCA --design Unsafe

# Crash-chain soak smoke under ASan+UBSan, both gate directions: an
# armed (MAC + tree) fault- and replay-dosed chain of crash → recover
# → resume cycles per design must stay consistent with zero silent
# cycles; the same dose with the MAC disarmed must demonstrate at
# least one silent cycle (both are part of the tool's exit status).
# The resume constructor re-seeds live controllers from a recovered
# image — exactly where a counter store aliased into the new System
# instead of deep-copied, or a stale quarantine pointer, would hide.
"$build/tools/cnvm_soak" --cycles 8 --chains 2 --jobs 2 \
    --faults --replays --integrity-tree \
    --design ColocatedCC --design FCA --design SCA --design Unsafe
"$build/tools/cnvm_soak" --cycles 8 --faults \
    --design ColocatedCC --design FCA --design SCA --design Unsafe

# The unified argument checker: a tuning flag without its prerequisite
# is a usage error (exit 2), not a silent enable.
if "$build/tools/cnvm_crash_sweep" --points 10 --fault-seed 5 \
        > /dev/null 2>&1; then
    echo "FAIL: cnvm_crash_sweep accepted --fault-seed without --faults" >&2
    exit 1
elif [ $? -ne 2 ]; then
    echo "FAIL: --fault-seed without --faults should exit 2" >&2
    exit 1
fi

# ... and the channel count is an address mask, so a non-power-of-two
# is a usage error (exit 2), never a silently degenerate interleave.
for bad in 0 3; do
    if "$build/tools/cnvm_crash_sweep" --points 10 --channels "$bad" \
            > /dev/null 2>&1; then
        echo "FAIL: cnvm_crash_sweep accepted --channels $bad" >&2
        exit 1
    elif [ $? -ne 2 ]; then
        echo "FAIL: --channels $bad should exit 2" >&2
        exit 1
    fi
done

# Multi-channel sweep under ASan+UBSan: the sharded controllers, the
# global ADR cut at crash capture, and the root-persists-last tree
# rebuild over the merged image — exactly where a per-channel keep
# prefix walking off its queue tail or a tree rebuilt over a partial
# drain would hide.
"$build/tools/cnvm_crash_sweep" --points 12 --channels 4 --jobs 4 \
    --mode fork --faults --replays --integrity-tree \
    --design ColocatedCC --design FCA --design SCA --design Unsafe

# Parallel recovery under ASan+UBSan: the sharded integrity pre-scan
# (--recovery-jobs) inside a pooled fork-mode sweep, and the
# crash-during-recovery idempotence family (interrupted write-back
# attempts re-run to convergence). The write-back paths re-encrypt and
# re-persist lines — exactly where a stale cache iterator or an
# out-of-bounds MAC write would hide.
"$build/tools/cnvm_crash_sweep" --points 10 --jobs 4 --mode fork \
    --recovery-jobs 4 --faults --integrity \
    --design SCA --design Unsafe
"$build/tools/cnvm_crash_sweep" --points 8 --recovery-crashes 16 \
    --jobs 4 --recovery-jobs 2 --faults --integrity \
    --design ColocatedCC --design FCA --design SCA --design Unsafe

# ThreadSanitizer over the concurrent paths: the runner unit tests and
# a parallel multi-design sweep in both Execute modes. Fork mode is
# the sharper TSan target: workers classify captured forks while the
# trunk simulation is still mutating its own state on the owner
# thread, so any capture that aliases live trunk state instead of
# deep-copying it shows up as a race here. ASan/TSan cannot share a
# build, so this is its own configuration; only the needed targets are
# built.
cmake -B "$tsan" -S "$repo" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
cmake --build "$tsan" -j "$(nproc)" \
    --target cnvm_crash_sweep runner_test
"$tsan/tests/runner_test"
"$tsan/tools/cnvm_crash_sweep" --points 8 --jobs 4
"$tsan/tools/cnvm_crash_sweep" --points 8 --jobs 4 --mode fork
# Fault capture happens on the trunk thread while workers classify
# earlier (faulted) forks — the dose must stay on each fork's copy.
"$tsan/tools/cnvm_crash_sweep" --points 8 --jobs 4 --mode fork \
    --faults --integrity --design SCA --design Unsafe
# Parallel recovery under TSan: pre-scan shards verify lines on worker
# threads against the shared immutable source/engine (any hidden
# mutability in verifyLine races here), nested inside pooled point
# classification; then the recovery-crash family, whose points run
# concurrent interrupted recoveries against per-point image copies.
"$tsan/tools/cnvm_crash_sweep" --points 8 --jobs 4 --mode fork \
    --recovery-jobs 4 --faults --integrity --design SCA
"$tsan/tools/cnvm_crash_sweep" --points 6 --recovery-crashes 10 \
    --jobs 4 --recovery-jobs 4 --faults --integrity \
    --design SCA --design Unsafe
# Replay-dosed parallel pre-scan under TSan: shards produce quarantine
# AND replay verdicts concurrently against the shared tree nodes; the
# quarantine-race regression test pins the same path at unit scale.
cmake --build "$tsan" -j "$(nproc)" --target integrity_tree_test
"$tsan/tests/integrity_tree_test" \
    --gtest_filter='QuarantineRace.*:ReplaySweep.*'
"$tsan/tools/cnvm_crash_sweep" --points 8 --jobs 4 --mode fork \
    --recovery-jobs 4 --faults --replays --integrity-tree \
    --design SCA --design Unsafe
# Multi-channel sweep under TSan: fork capture drains four channels'
# queues and rebuilds the tree globally while workers classify earlier
# forks — any channel state aliased into a fork instead of deep-copied
# races here.
"$tsan/tools/cnvm_crash_sweep" --points 8 --channels 4 --jobs 4 \
    --mode fork --faults --integrity-tree --design SCA --design Unsafe
# Partitioned-kernel simulation under TSan: channel event queues run
# on pinned crew threads between window barriers, draining into the
# shared NVM device (atomic stats, image mutex) while the coordinator
# owns the front-end. A plain multi-channel run first, then a dosed
# sweep whose every point is itself a partitioned multi-threaded
# simulation nested under the pooled Execute phase.
cmake --build "$tsan" -j "$(nproc)" --target cnvm_sim_cli
"$tsan/tools/cnvm_sim" --design SCA --txns 25 --footprint-mb 1 \
    --channels 4 --sim-jobs 4 --crash-at-frac 0.5 --verify --quiet
"$tsan/tools/cnvm_crash_sweep" --points 8 --channels 4 --sim-jobs 2 \
    --jobs 2 --faults --integrity-tree --design SCA --design Unsafe
# Crash-chain soak under TSan: parallel chains run whole
# crash → recover → resume lifecycles on worker threads, each chain
# repeatedly tearing down a System and re-seeding the next incarnation
# from the recovered image — any resume state aliased across chains
# (or into the pool) races here.
cmake --build "$tsan" -j "$(nproc)" --target cnvm_soak
"$tsan/tools/cnvm_soak" --cycles 6 --chains 4 --jobs 4 \
    --faults --replays --integrity-tree --design SCA --design Unsafe

# Bench smoke in Release: cnvm_bench runs each kernel a few iterations
# and, more importantly, exits non-zero if the indexed queue lookups
# diverge from the reference linear scans, if the parallel sweep's
# fingerprint diverges from the serial loop's at any --jobs value, if
# the fork-based Execute mode's fingerprint diverges from the replay
# reference on any design, or if any kernel drops work. The fork-mode
# sweep smoke exercises the single-pass Execute end to end in Release.
cmake -B "$release" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$release" -j "$(nproc)"
"$release/tools/cnvm_crash_sweep" --points 20 --jobs 4 --mode fork
"$release/tools/cnvm_crash_sweep" --points 20 --channels 4 --jobs 4 \
    --mode fork
"$release/tools/cnvm_bench" --quick --repeat 1 --jobs 4
