/**
 * @file
 * cnvm_bench — machine-readable performance harness.
 *
 * Times the simulator's hot paths with the same access patterns as the
 * google-benchmark micros (bench/micro_eventq.cc, bench/micro_memctl.cc)
 * plus one figure-style System run, and emits a JSON report:
 *
 *   - ns/op of each micro kernel (host time per simulated operation),
 *   - simulated-ticks-per-host-second of a full System run,
 *   - host wall time of every section.
 *
 * The committed BENCH_PR<N>.json files are produced by this tool in a
 * Release build; each one extends the perf trajectory the ROADMAP asks
 * for. A previous report can be embedded for comparison with
 * --baseline FILE (the file's JSON object is inlined verbatim).
 *
 *   tools/cnvm_bench --out BENCH_PR2.json [--quick] [--baseline PRE.json]
 *
 * Exit status: 0 on success, 1 if any self-check fails (the
 * behavior-preservation checks added with the queue indexes; the
 * fault-matrix gates: with integrity MACs armed, a media-fault sweep
 * must classify zero points as silent corruption; without them, the
 * same sweep must demonstrate at least one; the tree-matrix gates:
 * with the counter integrity tree armed, a replay-dosed sweep must
 * classify zero points silent of any kind while catching at least one
 * replay, and MAC-only must let at least one replay slip silently;
 * the recovery gates:
 * recovery output byte-identical at any --recovery-jobs value, and
 * the crash-during-recovery sweep idempotent — zero divergent points
 * over every design), 2 on usage errors.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.hh"
#include "core/crash_sweep.hh"
#include "core/recovery_crash.hh"
#include "core/soak.hh"
#include "core/system.hh"
#include "memctl/mem_controller.hh"
#include "runner/runner.hh"
#include "sim/one_shot.hh"
#include "tool_args.hh"

using namespace cnvm;

namespace
{

using Clock = std::chrono::steady_clock;

[[noreturn]] void
usage(int code)
{
    std::fprintf(code == 0 ? stdout : stderr,
                 R"(cnvm_bench — machine-readable performance harness

options:
  --out FILE       write the JSON report to FILE (default: stdout)
  --baseline FILE  inline FILE's JSON verbatim under "baseline"
  --quick          smaller kernels and sweeps (CI smoke; the committed
                   BENCH_PR<N>.json files are full runs)
  --repeat N       repetitions per timed kernel, fastest kept (default 3)
  --jobs N         worker threads for the untimed checks and the fault
                   matrix (default: hardware concurrency)
  --sim-jobs N     host threads of the partitioned simulation kernel in
                   the sim_jobs_scaling section (max 64; default 2; the
                   serial side is always the partitioned-serial
                   reference at 1)
  --help           this text
)");
    std::exit(code);
}

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/** One measured kernel: ns per simulated operation. */
struct KernelResult
{
    std::string name;
    double nsPerOp = 0;
    std::uint64_t ops = 0;
    double hostMs = 0;
};

/** One measured System run: simulation rate. */
struct SystemResult
{
    std::string name;
    double simTicksPerSec = 0;
    std::uint64_t simTicks = 0;
    std::uint64_t txns = 0;
    double hostMs = 0;
};

// ----------------------------------------------------------------------
// micro_eventq kernels
// ----------------------------------------------------------------------

/**
 * Schedule a batch of preallocated events at scattered ticks, run.
 * Events are preallocated so the kernel times the queue itself, not
 * the one-shot allocator (which both implementations pay identically).
 */
KernelResult
benchEventqScheduleProcess(unsigned iters)
{
    constexpr int batch = 256;
    std::uint64_t sink = 0;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    events.reserve(batch);
    for (int i = 0; i < batch; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [&]() { ++sink; }, "bench-event"));
    }
    auto start = Clock::now();
    for (unsigned it = 0; it < iters; ++it) {
        EventQueue eq;
        // Deterministic scattered ticks (LCG) to avoid in-order bias.
        std::uint64_t state = 0x123456789abcdef5ull + it;
        for (int i = 0; i < batch; ++i) {
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            eq.schedule(*events[i], (state >> 33) % 1000000);
        }
        eq.run();
    }
    KernelResult r;
    r.name = "micro_eventq.schedule_process";
    r.hostMs = msSince(start);
    r.ops = static_cast<std::uint64_t>(iters) * batch;
    r.nsPerOp = r.hostMs * 1e6 / static_cast<double>(r.ops);
    if (sink != r.ops)
        std::fprintf(stderr, "eventq kernel dropped events!\n");
    return r;
}

/** Mirror of BM_MemberEventReschedule. */
KernelResult
benchEventqReschedule(std::uint64_t ops)
{
    class Tickless : public Event
    {
      public:
        void process() override {}
    } event;

    EventQueue eq;
    Tick when = 1;
    auto start = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        eq.reschedule(event, when++);
        eq.step();
    }
    KernelResult r;
    r.name = "micro_eventq.reschedule";
    r.hostMs = msSince(start);
    r.ops = ops;
    r.nsPerOp = r.hostMs * 1e6 / static_cast<double>(r.ops);
    return r;
}

/** Schedule a batch, deschedule every other event, run the rest. */
KernelResult
benchEventqDeschedule(unsigned iters)
{
    constexpr int batch = 256;
    std::uint64_t processed = 0;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    events.reserve(batch);
    for (int i = 0; i < batch; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [&]() { ++processed; }, "bench-event"));
    }
    auto start = Clock::now();
    for (unsigned it = 0; it < iters; ++it) {
        EventQueue eq;
        // Deterministic scattered ticks (LCG) to avoid in-order bias.
        std::uint64_t state = 0x9e3779b97f4a7c15ull + it;
        for (int i = 0; i < batch; ++i) {
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            eq.schedule(*events[i], (state >> 33) % 100000);
        }
        for (int i = 0; i < batch; i += 2)
            eq.deschedule(*events[i]);
        eq.run();
    }
    KernelResult r;
    r.name = "micro_eventq.sched_desched";
    r.hostMs = msSince(start);
    r.ops = static_cast<std::uint64_t>(iters) * batch;
    r.nsPerOp = r.hostMs * 1e6 / static_cast<double>(r.ops);
    if (processed != r.ops / 2)
        std::fprintf(stderr, "deschedule kernel miscounted!\n");
    return r;
}

/**
 * Single-queue baseline of the quantum ping-pong: one self-propagating
 * event chain stepping `quantum` ticks per hop on one queue. Each op is
 * one hop, so ns/op is the single-kernel cost of advancing a quantum.
 */
KernelResult
benchEventqQuantumSingle(std::uint64_t hops)
{
    constexpr Tick quantum = 1000;
    EventQueue eq;
    std::uint64_t done = 0;
    std::function<void()> hop = [&]() {
        if (++done < hops)
            scheduleAt(eq, eq.curTick() + quantum, hop);
    };
    auto start = Clock::now();
    scheduleAt(eq, quantum / 2, hop);
    eq.run();
    KernelResult r;
    r.name = "micro_eventq.quantum_hop_single";
    r.hostMs = msSince(start);
    r.ops = hops;
    r.nsPerOp = r.hostMs * 1e6 / static_cast<double>(r.ops);
    if (done != hops)
        std::fprintf(stderr, "quantum-hop baseline lost hops!\n");
    return r;
}

/**
 * Partitioned twin of the quantum ping-pong: the chain hops between
 * four domains of a ParallelKernel, so every hop crosses a mailbox and
 * every quantum ends in a window barrier (one event, one message per
 * window — the worst case for synchronization overhead). ns/op minus
 * the single-queue baseline is the mailbox + barrier cost per quantum.
 * Runs at jobs=1 deliberately: this measures the protocol, not host
 * parallelism.
 */
KernelResult
benchEventqQuantumBarrier(std::uint64_t hops)
{
    constexpr Tick quantum = 1000;
    constexpr std::size_t ndomains = 4;
    ParallelKernel pk(quantum, 1);
    std::vector<std::unique_ptr<EventQueue>> queues;
    for (std::size_t d = 0; d < ndomains; ++d) {
        queues.push_back(std::make_unique<EventQueue>());
        pk.addDomain(queues.back().get());
    }
    std::uint64_t done = 0;
    std::function<void(std::size_t)> hop = [&](std::size_t d) {
        if (++done >= hops)
            return;
        std::size_t to = (d + 1) % ndomains;
        pk.post(d, to, pk.domain(d).curTick() + quantum,
                Event::DefaultPriority, [&hop, to]() { hop(to); });
    };
    auto start = Clock::now();
    scheduleAt(pk.domain(0), quantum / 2, [&hop]() { hop(0); });
    pk.run();
    KernelResult r;
    r.name = "micro_eventq.quantum_hop_barrier";
    r.hostMs = msSince(start);
    r.ops = hops;
    r.nsPerOp = r.hostMs * 1e6 / static_cast<double>(r.ops);
    if (done != hops || pk.messageCount() + 1 != hops)
        std::fprintf(stderr, "quantum-barrier kernel lost hops!\n");
    return r;
}

// ----------------------------------------------------------------------
// micro_memctl kernel
// ----------------------------------------------------------------------

MemCtlConfig
benchMemctlConfig()
{
    MemCtlConfig cfg;
    cfg.design = DesignPoint::SCA;
    return cfg;
}

/**
 * Queue-pressure companion of BM_SimulatedWriteDrain: bursts of
 * counter-atomic writes pushed through the occupied data write queue,
 * with reads against it (the forward path) interleaved. Exercises the
 * whole accept/encrypt/land/drain pipeline, so it moves with the event
 * queue and cipher as well as with the per-entry queue lookups.
 */
KernelResult
benchMemctlWriteReadBurst(unsigned iters)
{
    constexpr unsigned writesPerBurst = 48;
    constexpr unsigned readsPerBurst = 16;
    constexpr Addr base = 0x40000;
    constexpr unsigned lineSpan = 4096; // footprint: 4096 lines

    EventQueue eq;
    NvmDevice nvm(NvmTiming::pcm(), nullptr);
    MemCtlConfig cfg = benchMemctlConfig();
    MemController ctl(eq, nvm, cfg, nullptr);

    std::uint64_t readsDone = 0;
    auto start = Clock::now();
    for (unsigned it = 0; it < iters; ++it) {
        auto lineAt = [&](std::uint64_t i) {
            std::uint64_t n =
                (static_cast<std::uint64_t>(it) * writesPerBurst + i)
                % lineSpan;
            return base + n * lineBytes;
        };
        for (unsigned i = 0; i < writesPerBurst; ++i) {
            WriteReq req;
            req.addr = lineAt(i);
            req.data = LineData{};
            req.data[0] = static_cast<std::uint8_t>(i);
            req.counterAtomic = true;
            while (!ctl.tryWrite(req))
                eq.step();
        }
        // Reads against the occupied queue: most hit a queued line
        // (forward path), the rest take the full read path.
        for (unsigned r = 0; r < readsPerBurst; ++r) {
            ctl.issueRead(lineAt(r * 3 % writesPerBurst), 0,
                          [&]() { ++readsDone; });
        }
        eq.run();
    }
    KernelResult r;
    r.name = "micro_memctl.write_read_burst";
    r.hostMs = msSince(start);
    r.ops = static_cast<std::uint64_t>(iters)
          * (writesPerBurst + readsPerBurst);
    r.nsPerOp = r.hostMs * 1e6 / static_cast<double>(r.ops);
    if (readsDone != static_cast<std::uint64_t>(iters) * readsPerBurst)
        std::fprintf(stderr, "memctl kernel lost reads!\n");
    return r;
}

// ----------------------------------------------------------------------
// Figure-style System run
// ----------------------------------------------------------------------

SystemConfig
figConfig(unsigned txns)
{
    SystemConfig cfg;
    cfg.design = DesignPoint::SCA;
    cfg.workload = WorkloadKind::ArraySwap;
    cfg.numCores = 1;
    cfg.wl.regionBytes = 2ull << 20;
    cfg.wl.txnTarget = txns;
    cfg.wl.batch = 1;
    cfg.wl.computePerTxn = 1000;
    cfg.wl.setupFill = 0.5;
    cfg.wl.seed = 1;
    return cfg;
}

/** One fig12-style single-core SCA run; reports the simulation rate. */
SystemResult
benchFigRun(unsigned txns)
{
    auto start = Clock::now();
    System sys(figConfig(txns));
    RunResult result = sys.run();
    SystemResult r;
    r.name = "fig12_single_core.sca_arrayswap";
    r.hostMs = msSince(start);
    r.simTicks = result.endTick;
    r.txns = result.txnsIssued;
    r.simTicksPerSec =
        static_cast<double>(r.simTicks) / (r.hostMs / 1e3);
    return r;
}

// ----------------------------------------------------------------------
// Behavior-preservation checks
// ----------------------------------------------------------------------

struct CheckResult
{
    std::string name;
    bool ok = true;
};

SystemConfig faultMatrixConfig(bool quick); // defined with the matrix

/**
 * The indexed queue lookups (MemCtlConfig::useQueueIndex) must be
 * observably identical to the reference linear scans, the parallel
 * sweep Execute phase must be byte-identical to the serial loop, and
 * the fork-based Execute mode must be byte-identical to the replay
 * reference. Per design: a byte-identical stats dump over a fixed-seed
 * System run, a byte-identical crash-sweep fingerprint across the
 * index modes, a byte-identical fingerprint across --jobs values, and
 * a byte-identical fingerprint across --mode fork/replay.
 *
 * The checks themselves are independent per-design runs, so they fan
 * out over the pool; each closure writes only its own slot.
 */
std::vector<CheckResult>
runEquivalenceChecks(bool quick, WorkPool &pool)
{
    std::vector<std::function<CheckResult()>> probes;

    for (DesignPoint d : {DesignPoint::SCA, DesignPoint::FCA}) {
        probes.push_back([d, quick]() {
            CheckResult c;
            c.name = std::string("stats_identity.") + designName(d);
            std::string dumps[2];
            for (int pass = 0; pass < 2; ++pass) {
                SystemConfig cfg = figConfig(quick ? 20 : 60);
                cfg.design = d;
                cfg.memctl.useQueueIndex = pass == 0;
                System sys(cfg);
                RunResult result = sys.run();
                std::ostringstream os;
                sys.statsRegistry().dump(os);
                os << "endTick=" << result.endTick
                   << " txns=" << result.txnsIssued << "\n";
                dumps[pass] = os.str();
            }
            c.ok = dumps[0] == dumps[1];
            if (!c.ok)
                std::fprintf(stderr,
                             "CHECK FAILED: %s — indexed and reference "
                             "stats dumps differ\n", c.name.c_str());
            return c;
        });
    }

    for (DesignPoint d : {DesignPoint::SCA, DesignPoint::Unsafe}) {
        probes.push_back([d, quick]() {
            CheckResult c;
            c.name = std::string("sweep_fingerprint.") + designName(d);
            unsigned points = quick ? 6 : 12;
            std::string fps[2];
            for (int pass = 0; pass < 2; ++pass) {
                SystemConfig cfg = figConfig(quick ? 15 : 40);
                cfg.design = d;
                cfg.memctl.useQueueIndex = pass == 0;
                fps[pass] = runSweep(cfg, points).fingerprint();
            }
            c.ok = fps[0] == fps[1];
            if (!c.ok)
                std::fprintf(stderr,
                             "CHECK FAILED: %s — crash-sweep "
                             "fingerprints differ\n  indexed:   %s\n"
                             "  reference: %s\n",
                             c.name.c_str(), fps[0].c_str(),
                             fps[1].c_str());
            return c;
        });
    }

    // The fork-mode gate: for every design whose crash behavior
    // differs, the fork-based Execute must reproduce the replay
    // reference fingerprint byte-for-byte, serial and pipelined alike.
    for (DesignPoint d : {DesignPoint::ColocatedCC, DesignPoint::FCA,
                          DesignPoint::SCA, DesignPoint::Unsafe}) {
        probes.push_back([d, quick]() {
            CheckResult c;
            c.name = std::string("sweep_mode_identity.") + designName(d);
            SystemConfig cfg = figConfig(quick ? 15 : 40);
            cfg.design = d;
            SweepOptions replay, fork1, fork4;
            replay.points = fork1.points = fork4.points = quick ? 6 : 12;
            fork1.mode = fork4.mode = SweepMode::Fork;
            fork1.jobs = 1;
            fork4.jobs = 4;
            std::string ref = runSweep(cfg, replay).fingerprint();
            std::string f1 = runSweep(cfg, fork1).fingerprint();
            std::string f4 = runSweep(cfg, fork4).fingerprint();
            c.ok = !ref.empty() && ref == f1 && ref == f4;
            if (!c.ok)
                std::fprintf(stderr,
                             "CHECK FAILED: %s — fork and replay sweep "
                             "fingerprints differ\n  replay:      %s\n"
                             "  fork jobs=1: %s\n  fork jobs=4: %s\n",
                             c.name.c_str(), ref.c_str(), f1.c_str(),
                             f4.c_str());
            return c;
        });
    }

    // The recovery-parallelism gate: with media faults dosed and
    // integrity MACs armed, every design's recovery must be
    // byte-identical at --recovery-jobs 1/2/8 — both the sweep
    // fingerprint (class + detected/repaired/unrecoverable accounting)
    // and the recovered digests themselves (the recovery-crash
    // reference fingerprint embeds each region's digest in hex).
    for (DesignPoint d : {DesignPoint::ColocatedCC, DesignPoint::FCA,
                          DesignPoint::SCA, DesignPoint::Unsafe}) {
        probes.push_back([d, quick]() {
            CheckResult c;
            c.name = std::string("recovery_jobs_identity.")
                + designName(d);
            SystemConfig cfg = faultMatrixConfig(quick);
            cfg.design = d;
            cfg.memctl.integrityMac = true;

            std::string sweep_fp[3], digest_fp[3];
            const unsigned jobs_of[3] = {1, 2, 8};
            for (int pass = 0; pass < 3; ++pass) {
                SweepOptions opt;
                opt.points = quick ? 6 : 12;
                opt.mode = SweepMode::Fork;
                opt.faults = FaultSpec::allKinds(1);
                opt.recoveryJobs = jobs_of[pass];
                sweep_fp[pass] = runSweep(cfg, opt).fingerprint();

                RecoveryCrashOptions ropt;
                ropt.points = 0; // references only: digest identity
                ropt.images = quick ? 4 : 6;
                ropt.faults = FaultSpec::allKinds(1);
                ropt.recoveryJobs = jobs_of[pass];
                digest_fp[pass] =
                    runRecoveryCrashSweep(cfg, ropt).fingerprint();
            }
            c.ok = !sweep_fp[0].empty() && !digest_fp[0].empty()
                && sweep_fp[0] == sweep_fp[1]
                && sweep_fp[0] == sweep_fp[2]
                && digest_fp[0] == digest_fp[1]
                && digest_fp[0] == digest_fp[2];
            if (!c.ok)
                std::fprintf(stderr,
                             "CHECK FAILED: %s — recovery differs across "
                             "--recovery-jobs 1/2/8\n  sweep:  %s | %s | "
                             "%s\n  digest: %s | %s | %s\n",
                             c.name.c_str(), sweep_fp[0].c_str(),
                             sweep_fp[1].c_str(), sweep_fp[2].c_str(),
                             digest_fp[0].c_str(), digest_fp[1].c_str(),
                             digest_fp[2].c_str());
            return c;
        });
    }

    // The partitioned-kernel gate: for a multi-channel system, the
    // full stats dump — every counter on every channel — must be
    // byte-identical at --sim-jobs 1/2/4. This is the tentpole
    // invariant: simulated behavior is a pure function of simulated
    // time, never of the host thread count.
    for (DesignPoint d : {DesignPoint::SCA, DesignPoint::FCA}) {
        probes.push_back([d, quick]() {
            CheckResult c;
            c.name = std::string("sim_jobs_identity.") + designName(d);
            const unsigned jobs_of[3] = {1, 2, 4};
            std::string dumps[3];
            for (int pass = 0; pass < 3; ++pass) {
                SystemConfig cfg = figConfig(quick ? 15 : 40);
                cfg.design = d;
                cfg.numCores = 2;
                cfg.numChannels = 4;
                cfg.simJobs = jobs_of[pass];
                System sys(cfg);
                RunResult result = sys.run();
                std::ostringstream os;
                sys.statsRegistry().dump(os);
                os << "endTick=" << result.endTick
                   << " txns=" << result.txnsIssued << "\n";
                dumps[pass] = os.str();
            }
            c.ok = dumps[0] == dumps[1] && dumps[0] == dumps[2];
            if (!c.ok)
                std::fprintf(stderr,
                             "CHECK FAILED: %s — stats dumps differ "
                             "across --sim-jobs 1/2/4\n", c.name.c_str());
            return c;
        });
    }

    // And the partitioned sweep gate: crash-sweep fingerprints under
    // the partitioned kernel must match across job counts and across
    // the Replay/Fork Execute modes — crash capture at a window
    // barrier commutes with both.
    for (DesignPoint d : {DesignPoint::SCA, DesignPoint::Unsafe}) {
        probes.push_back([d, quick]() {
            CheckResult c;
            c.name = std::string("sim_jobs_sweep_identity.")
                + designName(d);
            SystemConfig cfg = figConfig(quick ? 15 : 40);
            cfg.design = d;
            cfg.numChannels = 4;
            SweepOptions opt;
            opt.points = quick ? 6 : 12;
            cfg.simJobs = 1;
            std::string fp1 = runSweep(cfg, opt).fingerprint();
            cfg.simJobs = 4;
            std::string fp4 = runSweep(cfg, opt).fingerprint();
            opt.mode = SweepMode::Fork;
            std::string fpF = runSweep(cfg, opt).fingerprint();
            c.ok = !fp1.empty() && fp1 == fp4 && fp1 == fpF;
            if (!c.ok)
                std::fprintf(stderr,
                             "CHECK FAILED: %s — partitioned sweep "
                             "fingerprints differ\n  sim-jobs=1: %s\n"
                             "  sim-jobs=4: %s\n  fork:       %s\n",
                             c.name.c_str(), fp1.c_str(), fp4.c_str(),
                             fpF.c_str());
            return c;
        });
    }

    for (DesignPoint d : {DesignPoint::SCA, DesignPoint::Unsafe}) {
        probes.push_back([d, quick]() {
            CheckResult c;
            c.name = std::string("sweep_jobs_identity.") + designName(d);
            SystemConfig cfg = figConfig(quick ? 15 : 40);
            cfg.design = d;
            SweepOptions serial, parallel;
            serial.points = parallel.points = quick ? 6 : 12;
            serial.jobs = 1;
            parallel.jobs = 4;
            std::string fp1 = runSweep(cfg, serial).fingerprint();
            std::string fpN = runSweep(cfg, parallel).fingerprint();
            c.ok = fp1 == fpN;
            if (!c.ok)
                std::fprintf(stderr,
                             "CHECK FAILED: %s — serial and parallel "
                             "sweep fingerprints differ\n  jobs=1: %s\n"
                             "  jobs=4: %s\n",
                             c.name.c_str(), fp1.c_str(), fpN.c_str());
            return c;
        });
    }

    return pool.map<CheckResult>(
        probes.size(), [&](std::size_t i) { return probes[i](); });
}

// ----------------------------------------------------------------------
// Sweep scaling: serial vs parallel Execute-phase wall clock
// ----------------------------------------------------------------------

struct SweepScalingResult
{
    unsigned points = 0;
    unsigned jobs = 0;
    unsigned hostConcurrency = 0;
    double serialMs = 0;
    double parallelMs = 0;
    double speedup = 0;
    bool identical = false; //!< fingerprints byte-identical
};

/**
 * Times the same SCA sweep with the serial reference loop and with the
 * pooled Execute phase. The fingerprints must match byte-for-byte; the
 * wall-clock ratio is the recorded speedup. On a host with a single
 * hardware thread the ratio is expected to hover around 1.0 —
 * host_concurrency is recorded alongside so the number can be read in
 * context.
 */
SweepScalingResult
benchSweepScaling(bool quick, unsigned jobs)
{
    SweepScalingResult r;
    r.points = quick ? 8 : 24;
    r.jobs = jobs;
    r.hostConcurrency = WorkPool::hardwareJobs();

    SystemConfig cfg = figConfig(quick ? 20 : 60);
    cfg.design = DesignPoint::SCA;

    SweepOptions opt;
    opt.points = r.points;

    opt.jobs = 1;
    auto t0 = Clock::now();
    std::string fp1 = runSweep(cfg, opt).fingerprint();
    r.serialMs = msSince(t0);

    opt.jobs = jobs;
    auto t1 = Clock::now();
    std::string fpN = runSweep(cfg, opt).fingerprint();
    r.parallelMs = msSince(t1);

    r.speedup = r.parallelMs > 0 ? r.serialMs / r.parallelMs : 0;
    r.identical = fp1 == fpN;
    return r;
}

// ----------------------------------------------------------------------
// Sim-jobs scaling: partitioned-kernel wall clock, serial vs threaded
// ----------------------------------------------------------------------

struct SimJobsScalingResult
{
    unsigned cores = 0;
    unsigned channels = 0;
    unsigned jobs = 0;            //!< the parallel side's --sim-jobs
    unsigned hostConcurrency = 0;
    std::uint64_t barriers = 0;   //!< window barriers of the run
    std::uint64_t messages = 0;   //!< cross-domain mailbox messages
    double serialMs = 0;          //!< partitioned-serial (sim-jobs 1)
    double parallelMs = 0;        //!< sim-jobs = jobs
    double speedup = 0;
    bool identical = false;       //!< full stats dumps byte-identical
};

/**
 * Times the same memory-bound multi-channel run under the partitioned
 * kernel at sim-jobs 1 (the partitioned-serial reference) and at
 * sim-jobs N, and requires the full stats dumps to be byte-identical.
 * The identity is the gate; the wall-clock ratio is informational: on
 * a host with a single hardware thread (host_concurrency 1) the
 * threaded run only adds synchronization cost and the ratio is
 * expected at or below 1.0.
 */
SimJobsScalingResult
benchSimJobsScaling(bool quick, unsigned jobs)
{
    SimJobsScalingResult r;
    r.cores = 4;
    r.channels = 4;
    r.jobs = jobs;
    r.hostConcurrency = WorkPool::hardwareJobs();

    SystemConfig cfg = figConfig(quick ? 30 : 120);
    cfg.numCores = r.cores;
    cfg.numChannels = r.channels;
    cfg.wl.computePerTxn = 0; // memory-bound: channel work dominates

    auto dumpOf = [&](unsigned sim_jobs, double &ms) {
        SystemConfig c = cfg;
        c.simJobs = sim_jobs;
        auto t0 = Clock::now();
        System sys(c);
        RunResult result = sys.run();
        ms = msSince(t0);
        if (const ParallelKernel *pk = sys.parallelKernel()) {
            r.barriers = pk->barrierCount();
            r.messages = pk->messageCount();
        }
        std::ostringstream os;
        sys.statsRegistry().dump(os);
        os << "endTick=" << result.endTick
           << " txns=" << result.txnsIssued << "\n";
        return os.str();
    };
    std::string serial_dump = dumpOf(1, r.serialMs);
    std::string parallel_dump = dumpOf(jobs, r.parallelMs);
    r.speedup = r.parallelMs > 0 ? r.serialMs / r.parallelMs : 0;
    r.identical = serial_dump == parallel_dump;
    return r;
}

// ----------------------------------------------------------------------
// Channel scaling: simulated throughput, 1 vs N memory channels
// ----------------------------------------------------------------------

struct ChannelScalingResult
{
    unsigned cores = 0;
    unsigned channels = 0;  //!< the multi-channel point
    double txnPerSec1 = 0;  //!< simulated txn/s at 1 channel
    double txnPerSecN = 0;  //!< simulated txn/s at @ref channels
    double speedup = 0;     //!< simulated-time ratio (not host time)
    double hostMs = 0;
    bool identical = false; //!< channels=N sweep fingerprints across jobs
    bool scalesUp = false;  //!< txnPerSecN >= txnPerSec1

    bool ok() const { return identical && scalesUp; }
};

/**
 * Runs a memory-bound contended multi-core SCA workload at 1 and at
 * @p channels channels and compares *simulated* transaction throughput
 * — the speedup is architectural (more banks and busses in flight), so
 * unlike the host-side jobs-scaling ratios it is meaningful even on a
 * single-hardware-thread host. Two gates fold into checks_ok: the
 * multi-channel system must not be slower than the single-channel one
 * in simulated time, and (when @p fingerprint_check) a faulted
 * channels=N sweep must keep the byte-identical fingerprint across
 * Execute-phase jobs counts.
 */
ChannelScalingResult
benchChannelScaling(bool quick, unsigned cores, unsigned channels,
                    bool fingerprint_check)
{
    ChannelScalingResult r;
    r.cores = cores;
    r.channels = channels;

    auto start = Clock::now();
    SystemConfig cfg = figConfig(quick ? 30 : 120);
    cfg.numCores = r.cores;
    cfg.wl.computePerTxn = 0; // memory-bound: contention is the point

    auto txnRate = [&](unsigned nch) {
        SystemConfig c = cfg;
        c.numChannels = nch;
        System sys(c);
        sys.run();
        return sys.throughputTxnPerSec();
    };
    r.txnPerSec1 = txnRate(1);
    r.txnPerSecN = txnRate(r.channels);
    r.speedup = r.txnPerSec1 > 0 ? r.txnPerSecN / r.txnPerSec1 : 0;
    r.scalesUp = r.txnPerSecN >= r.txnPerSec1;

    r.identical = true;
    if (fingerprint_check) {
        SystemConfig sweep_cfg = figConfig(quick ? 15 : 40);
        sweep_cfg.numChannels = r.channels;
        SweepOptions opt;
        opt.points = quick ? 8 : 16;
        opt.faults = FaultSpec::allKinds(1);
        opt.jobs = 1;
        std::string fp1 = runSweep(sweep_cfg, opt).fingerprint();
        opt.jobs = 4;
        std::string fp4 = runSweep(sweep_cfg, opt).fingerprint();
        r.identical = fp1 == fp4;
    }

    r.hostMs = msSince(start);
    return r;
}

// ----------------------------------------------------------------------
// Fork vs replay: the algorithmic speedup of the single-pass sweep
// ----------------------------------------------------------------------

struct SweepForkSpeedupResult
{
    unsigned points = 0;
    unsigned jobs = 0;
    unsigned hostConcurrency = 0;
    double replayMs = 0;
    double forkMs = 0;
    double speedup = 0;
    bool identical = false; //!< fingerprints byte-identical
};

/**
 * Times the same SCA sweep in Replay mode (K dedicated crashed
 * simulations) and in Fork mode (one trunk run plus K off-trunk
 * recoveries), both over the same pool. Unlike the jobs-scaling ratio,
 * this speedup is algorithmic — work is removed, not just spread — so
 * it holds even on a single-hardware-thread host.
 */
SweepForkSpeedupResult
benchSweepForkSpeedup(bool quick, unsigned jobs)
{
    SweepForkSpeedupResult r;
    r.points = quick ? 12 : 32;
    r.jobs = jobs;
    r.hostConcurrency = WorkPool::hardwareJobs();

    SystemConfig cfg = figConfig(quick ? 20 : 60);
    cfg.design = DesignPoint::SCA;

    SweepOptions opt;
    opt.points = r.points;
    opt.jobs = jobs;

    opt.mode = SweepMode::Replay;
    auto t0 = Clock::now();
    std::string fpReplay = runSweep(cfg, opt).fingerprint();
    r.replayMs = msSince(t0);

    opt.mode = SweepMode::Fork;
    auto t1 = Clock::now();
    std::string fpFork = runSweep(cfg, opt).fingerprint();
    r.forkMs = msSince(t1);

    r.speedup = r.forkMs > 0 ? r.replayMs / r.forkMs : 0;
    r.identical = fpReplay == fpFork;
    return r;
}

// ----------------------------------------------------------------------
// Fault matrix: media faults × integrity metadata
// ----------------------------------------------------------------------

/** One design × integrity-mode cell of the fault-injection matrix. */
struct FaultCell
{
    DesignPoint design = DesignPoint::SCA;
    bool integrity = false;
    unsigned points = 0;
    unsigned reached = 0;
    unsigned detectedPoints = 0;
    unsigned silentPoints = 0;
    std::uint64_t faultedLines = 0;
    std::uint64_t detected = 0;
    std::uint64_t repaired = 0;
    std::uint64_t unrecoverable = 0;
    double hostMs = 0;
};

struct FaultMatrixResult
{
    std::vector<FaultCell> cells;
    unsigned pointsPerCell = 0;
    unsigned integrityReached = 0; //!< reached points, integrity armed
    unsigned integritySilent = 0;
    unsigned noIntegritySilent = 0;

    /** The headline invariant: with integrity metadata, no injected
     *  fault over the whole matrix was ever silent. */
    bool zeroSilentWithIntegrity = false;

    /** The negative control: without it, at least one fault was. */
    bool silentWithoutIntegrity = false;

    bool ok() const
    { return zeroSilentWithIntegrity && silentWithoutIntegrity; }
};

/** Small-footprint config so the per-point MAC scans stay cheap. */
SystemConfig
faultMatrixConfig(bool quick)
{
    SystemConfig cfg;
    cfg.workload = WorkloadKind::ArraySwap;
    cfg.numCores = 1;
    cfg.wl.regionBytes = 256u << 10;
    cfg.wl.txnTarget = quick ? 20 : 40;
    cfg.wl.computePerTxn = 100;
    cfg.wl.recordDigests = true;
    cfg.wl.setupFill = 0.3;
    cfg.wl.seed = 1;
    cfg.memctl.counterCacheBytes = 16u << 10;
    return cfg;
}

/**
 * Runs the media-fault sweep over every crash-handling design, with
 * and without the per-line integrity MACs, and gates both directions:
 * the integrity-on half must contain zero silent-corruption points
 * (in the full run that is 4 designs x 60 points = 240 >= the 200 the
 * experiment plan calls for), and the integrity-off half must contain
 * at least one — proving the dose bites and bites silently when
 * unprotected.
 */
FaultMatrixResult
runFaultMatrix(bool quick, WorkPool &pool)
{
    FaultMatrixResult m;
    m.pointsPerCell = quick ? 16 : 60;
    for (DesignPoint d : {DesignPoint::ColocatedCC, DesignPoint::FCA,
                          DesignPoint::SCA, DesignPoint::Unsafe}) {
        for (bool integrity : {true, false}) {
            auto start = Clock::now();
            SystemConfig cfg = faultMatrixConfig(quick);
            cfg.design = d;
            cfg.memctl.integrityMac = integrity;

            SweepOptions opt;
            opt.points = m.pointsPerCell;
            opt.mode = SweepMode::Fork;
            opt.faults = FaultSpec::allKinds(1);
            SweepResult r = runSweep(cfg, opt, &pool);

            FaultCell c;
            c.design = d;
            c.integrity = integrity;
            c.points = static_cast<unsigned>(r.points.size());
            c.reached = c.points - r.unreachedPoints();
            c.detectedPoints = r.detectedPoints();
            c.silentPoints = r.silentPoints();
            c.faultedLines = r.totalOf(&SweepPoint::faultedLines);
            c.detected = r.totalOf(&SweepPoint::detectedCorruptions);
            c.repaired = r.totalOf(&SweepPoint::repairedLines);
            c.unrecoverable = r.totalOf(&SweepPoint::unrecoverableLines);
            c.hostMs = msSince(start);
            if (integrity) {
                m.integrityReached += c.reached;
                m.integritySilent += c.silentPoints;
            } else {
                m.noIntegritySilent += c.silentPoints;
            }
            m.cells.push_back(c);
        }
    }
    m.zeroSilentWithIntegrity =
        m.integrityReached > 0 && m.integritySilent == 0;
    m.silentWithoutIntegrity = m.noIntegritySilent >= 1;
    return m;
}

// ----------------------------------------------------------------------
// Tree matrix: replay-dosed faults × integrity tree
// ----------------------------------------------------------------------

/** One design × tree-mode cell of the replay matrix. */
struct TreeCell
{
    DesignPoint design = DesignPoint::SCA;
    bool tree = false; //!< false = MAC-only control
    unsigned points = 0;
    unsigned reached = 0;
    unsigned silentPoints = 0;
    unsigned replayDetectedPoints = 0;
    unsigned silentReplayPoints = 0;
    std::uint64_t replayedLines = 0;
    std::uint64_t replaysCaught = 0;
    double hostMs = 0;
};

struct TreeMatrixResult
{
    std::vector<TreeCell> cells;
    unsigned pointsPerCell = 0;
    unsigned treeReached = 0;    //!< reached points, tree armed
    unsigned treeSilent = 0;     //!< silent corruption + silent replay
    std::uint64_t treeReplaysCaught = 0;
    unsigned macOnlySilentReplays = 0;

    /** The headline invariant: with the tree armed, nothing in the
     *  replay-dosed matrix was silent — no corruption, no replay —
     *  and the dose demonstrably bit (>= 1 replay caught). */
    bool zeroSilentWithTree = false;

    /** The negative control: MAC-only, at least one replayed line was
     *  consumed silently. */
    bool replaysSlipWithoutTree = false;

    bool ok() const
    { return zeroSilentWithTree && replaysSlipWithoutTree; }
};

/**
 * Runs the replay-dosed fault sweep over every crash-handling design,
 * with the counter integrity tree armed and with per-line MACs alone,
 * and gates both directions: the tree half must classify zero points
 * silent of any kind while catching at least one replay, and the
 * MAC-only half must let at least one replay through silently —
 * proving the attack defeats per-line MACs and the tree stops it.
 */
TreeMatrixResult
runTreeMatrix(bool quick, WorkPool &pool)
{
    TreeMatrixResult m;
    m.pointsPerCell = quick ? 16 : 60;
    for (DesignPoint d : {DesignPoint::ColocatedCC, DesignPoint::FCA,
                          DesignPoint::SCA, DesignPoint::Unsafe}) {
        for (bool tree : {true, false}) {
            auto start = Clock::now();
            SystemConfig cfg = faultMatrixConfig(quick);
            cfg.design = d;
            cfg.memctl.integrityMac = true;
            cfg.memctl.integrityTree = tree;

            SweepOptions opt;
            opt.points = m.pointsPerCell;
            opt.mode = SweepMode::Fork;
            opt.faults = FaultSpec::allKindsWithReplays(1);
            SweepResult r = runSweep(cfg, opt, &pool);

            TreeCell c;
            c.design = d;
            c.tree = tree;
            c.points = static_cast<unsigned>(r.points.size());
            c.reached = c.points - r.unreachedPoints();
            c.silentPoints = r.silentPoints();
            c.replayDetectedPoints = r.replayDetectedPoints();
            c.silentReplayPoints = r.silentReplayPoints();
            c.replayedLines = r.totalOf(&SweepPoint::replayedLines);
            c.replaysCaught = r.totalOf(&SweepPoint::replaysDetected);
            c.hostMs = msSince(start);
            if (tree) {
                m.treeReached += c.reached;
                m.treeSilent += c.silentPoints + c.silentReplayPoints;
                m.treeReplaysCaught += c.replaysCaught;
            } else {
                m.macOnlySilentReplays += c.silentReplayPoints;
            }
            m.cells.push_back(c);
        }
    }
    m.zeroSilentWithTree = m.treeReached > 0 && m.treeSilent == 0
        && m.treeReplaysCaught >= 1;
    m.replaysSlipWithoutTree = m.macOnlySilentReplays >= 1;
    return m;
}

// ----------------------------------------------------------------------
// Tree overhead: lazy tree maintenance vs MAC-only runtime and traffic
// ----------------------------------------------------------------------

/** One design's tree-on vs MAC-only full-run comparison. */
struct TreeOverheadRow
{
    DesignPoint design = DesignPoint::SCA;
    std::uint64_t macTicks = 0;
    std::uint64_t treeTicks = 0;
    double macKbWritten = 0;
    double treeKbWritten = 0;
    double tickOverheadPct = 0;
    double writeOverheadPct = 0;
    std::uint64_t leafUpdates = 0;
    std::uint64_t coalesces = 0;
    std::uint64_t nodeWrites = 0;
    std::uint64_t flushes = 0;
    double hostMs = 0;
};

/**
 * Measures what the lazy epoch-batched tree write-back actually costs
 * on a full fixed-seed run: simulated runtime and NVM write traffic,
 * tree-on vs MAC-only, per design. The coalesce counter is the point
 * of the laziness — every coalesced leaf update is a tree write the
 * eager scheme would have issued.
 */
std::vector<TreeOverheadRow>
benchTreeOverhead(bool quick)
{
    std::vector<TreeOverheadRow> rows;
    for (DesignPoint d : {DesignPoint::FCA, DesignPoint::SCA}) {
        auto start = Clock::now();
        TreeOverheadRow row;
        row.design = d;
        for (bool tree : {false, true}) {
            SystemConfig cfg = figConfig(quick ? 30 : 100);
            cfg.design = d;
            cfg.memctl.integrityMac = true;
            cfg.memctl.integrityTree = tree;
            System sys(cfg);
            RunResult result = sys.run();
            if (tree) {
                row.treeTicks = result.endTick;
                row.treeKbWritten = sys.nvmBytesWritten() / 1024.0;
                const MemController &ctl = sys.controller();
                row.leafUpdates = static_cast<std::uint64_t>(
                    ctl.treeLeafUpdates.value());
                row.coalesces = static_cast<std::uint64_t>(
                    ctl.treeCoalesces.value());
                row.nodeWrites = static_cast<std::uint64_t>(
                    ctl.treeNodeWrites.value());
                row.flushes = static_cast<std::uint64_t>(
                    ctl.treeFlushes.value());
            } else {
                row.macTicks = result.endTick;
                row.macKbWritten = sys.nvmBytesWritten() / 1024.0;
            }
        }
        row.tickOverheadPct = row.macTicks > 0
            ? 100.0 * (static_cast<double>(row.treeTicks)
                       / static_cast<double>(row.macTicks) - 1.0)
            : 0;
        row.writeOverheadPct = row.macKbWritten > 0
            ? 100.0 * (row.treeKbWritten / row.macKbWritten - 1.0)
            : 0;
        row.hostMs = msSince(start);
        rows.push_back(row);
    }
    return rows;
}

// ----------------------------------------------------------------------
// Recovery scaling: crash-to-fully-recovered wall clock vs region size
// ----------------------------------------------------------------------

/** One region size's serial-vs-parallel recovery timing. */
struct RecoveryScalingRow
{
    unsigned regionKb = 0;
    double serialMs = 0;
    double parallelMs = 0;
    double speedup = 0;
    bool identical = false; //!< reports byte-identical across jobs
};

struct RecoveryScalingResult
{
    std::vector<RecoveryScalingRow> rows;
    unsigned jobs = 0;
    unsigned hostConcurrency = 0;

    bool
    allIdentical() const
    {
        bool ok = !rows.empty();
        for (const RecoveryScalingRow &r : rows)
            ok = ok && r.identical;
        return ok;
    }
};

/**
 * Times crash-to-fully-recovered for growing region sizes, serial vs
 * pooled pre-scan. With integrity MACs armed the recovery cost is
 * dominated by the per-line verify pass over the whole region, which
 * is exactly what RecoveryOptions::jobs shards — so the speedup grows
 * with the region while the reports stay byte-identical.
 */
RecoveryScalingResult
benchRecoveryScaling(bool quick, unsigned jobs)
{
    RecoveryScalingResult result;
    result.jobs = jobs;
    result.hostConcurrency = WorkPool::hardwareJobs();

    std::vector<unsigned> sizesKb =
        quick ? std::vector<unsigned>{256, 1024}
              : std::vector<unsigned>{512, 2048, 8192};
    for (unsigned kb : sizesKb) {
        SystemConfig cfg;
        cfg.design = DesignPoint::SCA;
        cfg.workload = WorkloadKind::ArraySwap;
        cfg.numCores = 1;
        cfg.wl.regionBytes = static_cast<std::uint64_t>(kb) << 10;
        cfg.wl.txnTarget = quick ? 20 : 40;
        cfg.wl.computePerTxn = 100;
        cfg.wl.setupFill = 0.5;
        cfg.wl.seed = 1;
        cfg.memctl.integrityMac = true;

        System probe(cfg);
        Tick total = probe.run().endTick;

        System sys(cfg);
        sys.runWithCrashAt(std::max<Tick>(total / 2, 1));

        auto t0 = Clock::now();
        std::vector<RecoveryReport> serial = sys.recoverAll(1);
        double serial_ms = msSince(t0);

        auto t1 = Clock::now();
        std::vector<RecoveryReport> parallel = sys.recoverAll(jobs);
        double parallel_ms = msSince(t1);

        RecoveryScalingRow row;
        row.regionKb = kb;
        row.serialMs = serial_ms;
        row.parallelMs = parallel_ms;
        row.speedup = parallel_ms > 0 ? serial_ms / parallel_ms : 0;
        row.identical = serial.size() == parallel.size();
        for (std::size_t c = 0; row.identical && c < serial.size(); ++c) {
            const RecoveryReport &a = serial[c], &b = parallel[c];
            row.identical = convergenceOf(a) == convergenceOf(b)
                && a.rolledBack == b.rolledBack
                && a.detectedCorruptions == b.detectedCorruptions
                && a.repairedLines == b.repairedLines;
        }
        result.rows.push_back(row);
    }
    return result;
}

// ----------------------------------------------------------------------
// Crash-during-recovery: the idempotence sweep, gated per design
// ----------------------------------------------------------------------

/** One design's crash-during-recovery sweep outcome. */
struct RecrashCell
{
    DesignPoint design = DesignPoint::SCA;
    unsigned images = 0;
    unsigned points = 0;
    unsigned fired = 0;
    unsigned divergent = 0;
    double hostMs = 0;
};

struct RecrashResult
{
    std::vector<RecrashCell> cells;
    unsigned pointsPerDesign = 0;

    /** The gate: every design ran points, interrupted at least one
     *  attempt for real, and saw zero divergence from its reference. */
    bool
    ok() const
    {
        bool good = !cells.empty();
        for (const RecrashCell &c : cells)
            good = good && c.points > 0 && c.fired > 0
                && c.divergent == 0;
        return good;
    }
};

/**
 * Runs the crash-during-recovery sweep (fault-dosed, integrity MACs
 * armed, parallel pre-scan) over every crash-handling design and gates
 * the idempotence invariant: interrupted-and-rerun recovery must
 * converge to the uninterrupted reference at every planned point. The
 * full run is 4 designs x 40 interruption points.
 */
RecrashResult
runRecrashSweeps(bool quick, WorkPool &pool)
{
    RecrashResult result;
    result.pointsPerDesign = quick ? 10 : 40;
    for (DesignPoint d : {DesignPoint::ColocatedCC, DesignPoint::FCA,
                          DesignPoint::SCA, DesignPoint::Unsafe}) {
        auto start = Clock::now();
        SystemConfig cfg = faultMatrixConfig(quick);
        cfg.design = d;
        cfg.memctl.integrityMac = true;

        RecoveryCrashOptions opt;
        opt.points = result.pointsPerDesign;
        opt.images = quick ? 6 : 10;
        opt.recoveryJobs = 2;
        opt.faults = FaultSpec::allKinds(1);
        RecoveryCrashResult r = runRecoveryCrashSweep(cfg, opt, &pool);

        RecrashCell c;
        c.design = d;
        c.images = r.images;
        c.points = static_cast<unsigned>(r.points.size());
        c.fired = r.firedPoints();
        c.divergent = r.divergentPoints();
        c.hostMs = msSince(start);
        result.cells.push_back(c);
    }
    return result;
}

// ----------------------------------------------------------------------
// Soak matrix: crash→recover→resume chains with cumulative dosing
// ----------------------------------------------------------------------

/** One design's fault-dosed soak chain (integrity tree armed). */
struct SoakCell
{
    DesignPoint design = DesignPoint::SCA;
    unsigned cycles = 0;   //!< executed cycles incl. final examination
    unsigned crashed = 0;
    unsigned dosed = 0;
    unsigned resets = 0;
    unsigned silent = 0;
    std::uint64_t detected = 0;
    std::uint64_t replaysDetected = 0;
    std::uint64_t finalQuarantined = 0;
    bool ok = false;
    double hostMs = 0;
};

struct SoakMatrixResult
{
    std::vector<SoakCell> cells;
    unsigned cyclesPerChain = 0;
    unsigned totalCycles = 0;
    unsigned totalSilent = 0;

    /** The clean-chain identity control: a zero-fault SCA chain ends
     *  at the committed count and recovered-content digest of an
     *  uninterrupted run of the same target. */
    bool cleanIdentity = false;

    /** The headline soak gate: every fault-dosed chain completed with
     *  every cumulative invariant held and zero silent cycles. */
    bool
    zeroSilentCumulative() const
    {
        bool good = !cells.empty() && totalSilent == 0;
        for (const SoakCell &c : cells)
            good = good && c.ok && c.dosed > 0;
        return good;
    }

    bool ok() const { return zeroSilentCumulative() && cleanIdentity; }
};

/**
 * Runs one fault-and-replay-dosed soak chain per crash-handling design
 * with the full integrity stack armed — in the full run that is
 * 4 designs x 27 cycles = 108 >= the 100 crash→recover→resume cycles
 * the experiment plan calls for — and gates on zero silent cycles with
 * every cumulative SoakOracle invariant held. A fifth, zero-fault SCA
 * chain is the identity control: its final image must carry exactly
 * the committed-transaction count and recovered-content digest of an
 * uninterrupted run to the same target.
 */
SoakMatrixResult
runSoakMatrix(bool quick, WorkPool &pool)
{
    SoakMatrixResult m;
    m.cyclesPerChain = quick ? 6 : 26;

    const DesignPoint designs[] = {DesignPoint::ColocatedCC,
                                   DesignPoint::FCA, DesignPoint::SCA,
                                   DesignPoint::Unsafe};
    m.cells = pool.map<SoakCell>(4, [&](std::size_t i) {
        auto start = Clock::now();
        SystemConfig cfg = faultMatrixConfig(quick);
        cfg.design = designs[i];
        cfg.memctl.integrityMac = true;
        cfg.memctl.integrityTree = true;

        SoakOptions opt;
        opt.cycles = m.cyclesPerChain;
        opt.faults = FaultSpec::allKindsWithReplays(1);
        SoakChainResult chain = runSoakChain(cfg, opt);

        SoakCell c;
        c.design = designs[i];
        c.cycles = static_cast<unsigned>(chain.cycles.size());
        c.crashed = chain.crashedCycles();
        c.dosed = chain.dosedCycles();
        c.resets = chain.totalResets();
        c.silent = chain.silentCycles();
        c.finalQuarantined = chain.finalQuarantined;
        for (const SoakCycle &cy : chain.cycles) {
            c.detected += cy.detectedCorruptions;
            c.replaysDetected += cy.replaysDetected;
        }
        c.ok = chain.ok;
        if (!chain.ok)
            std::fprintf(stderr, "soak matrix %s FAILED: %s\n",
                         designName(designs[i]), chain.failure.c_str());
        c.hostMs = msSince(start);
        return c;
    });
    for (const SoakCell &c : m.cells) {
        m.totalCycles += c.cycles;
        m.totalSilent += c.silent;
    }

    // The identity control (integrity MACs stay armed so the design
    // set could include Unsafe; SCA keeps it cheap).
    SystemConfig cfg = faultMatrixConfig(quick);
    cfg.design = DesignPoint::SCA;
    cfg.memctl.integrityMac = true;
    SoakOptions clean;
    clean.cycles = quick ? 3 : 6;
    SoakChainResult chain = runSoakChain(cfg, clean);
    m.cleanIdentity = chain.ok && chain.totalResets() == 0
        && chain.finalQuarantined == 0;
    if (m.cleanIdentity) {
        cfg.wl.txnTarget = chain.finalTxnTarget;
        System control(cfg);
        control.run();
        control.crashChannels();
        std::vector<RecoveryReport> reports = control.recoverAll();
        std::uint64_t digest = 0;
        bool consistent = true;
        for (std::size_t i = 0; i < reports.size(); ++i) {
            consistent = consistent && reports[i].consistent
                && reports[i].committedTxns == chain.finalTxnTarget;
            digest = fnv1aU64(reports[i].recoveredDigest,
                              i == 0 ? fnvOffsetBasis : digest);
        }
        m.cleanIdentity = consistent && digest == chain.finalDigest;
    }
    if (!m.cleanIdentity)
        std::fprintf(stderr, "soak matrix clean-chain identity control "
                             "FAILED\n");
    return m;
}

// ----------------------------------------------------------------------
// Soak scaling: chain fan-out wall clock, fingerprint identity gate
// ----------------------------------------------------------------------

struct SoakScalingResult
{
    unsigned chains = 0;
    unsigned cycles = 0;
    unsigned jobs = 0;
    unsigned hostConcurrency = 0;
    double serialMs = 0;
    double parallelMs = 0;
    double speedup = 0;
    bool identical = false; //!< fleet fingerprints byte-identical
};

/**
 * Times the same fault-dosed soak fleet at jobs=1 and jobs=N and
 * requires the fleet fingerprint — every cycle's spec, classification
 * and final digest of every chain — to be byte-identical. Chains are
 * seed-deterministic and independent, so fan-out must not change a
 * single verdict.
 */
SoakScalingResult
benchSoakScaling(bool quick, unsigned jobs)
{
    SoakScalingResult r;
    r.chains = 4;
    r.cycles = quick ? 4 : 8;
    r.jobs = jobs;
    r.hostConcurrency = WorkPool::hardwareJobs();

    SystemConfig cfg = faultMatrixConfig(quick);
    cfg.design = DesignPoint::SCA;
    cfg.memctl.integrityMac = true;

    SoakOptions opt;
    opt.cycles = r.cycles;
    opt.chains = r.chains;
    opt.faults = FaultSpec::allKinds(1);

    opt.jobs = 1;
    auto t0 = Clock::now();
    std::string fp1 = runSoak(cfg, opt).fingerprint();
    r.serialMs = msSince(t0);

    opt.jobs = jobs;
    auto t1 = Clock::now();
    std::string fpN = runSoak(cfg, opt).fingerprint();
    r.parallelMs = msSince(t1);

    r.speedup = r.parallelMs > 0 ? r.serialMs / r.parallelMs : 0;
    r.identical = !fp1.empty() && fp1 == fpN;
    return r;
}

// ----------------------------------------------------------------------
// Repetition: the host is shared and noisy, so each kernel runs
// --repeat times and the fastest run is kept (noise only adds time).
// ----------------------------------------------------------------------

template <typename Fn>
KernelResult
bestKernel(unsigned repeat, Fn fn)
{
    KernelResult best = fn();
    for (unsigned i = 1; i < repeat; ++i) {
        KernelResult r = fn();
        if (r.nsPerOp < best.nsPerOp)
            best = r;
    }
    return best;
}

template <typename Fn>
SystemResult
bestSystem(unsigned repeat, Fn fn)
{
    SystemResult best = fn();
    for (unsigned i = 1; i < repeat; ++i) {
        SystemResult r = fn();
        if (r.simTicksPerSec > best.simTicksPerSec)
            best = r;
    }
    return best;
}

// ----------------------------------------------------------------------
// JSON emission
// ----------------------------------------------------------------------

void
emitJson(std::ostream &os, const std::vector<KernelResult> &kernels,
         const std::vector<SystemResult> &systems, bool quick,
         const std::string &baseline_json,
         const std::vector<CheckResult> &checks, bool checks_ok,
         const SweepScalingResult &scaling,
         const SweepForkSpeedupResult &fork_speedup,
         const ChannelScalingResult &chscaling,
         const ChannelScalingResult &chscaling16,
         const SimJobsScalingResult &sjscaling,
         const FaultMatrixResult &faults,
         const TreeMatrixResult &tree,
         const std::vector<TreeOverheadRow> &tree_overhead,
         const RecoveryScalingResult &rscaling,
         const RecrashResult &recrash,
         const SoakMatrixResult &soak,
         const SoakScalingResult &soak_scaling)
{
    char buf[256];
    os << "{\n";
    os << "  \"bench\": \"cnvm_bench\",\n";
    os << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
    os << "  \"checks_ok\": " << (checks_ok ? "true" : "false") << ",\n";
    os << "  \"fault_matrix\": {\n";
    std::snprintf(buf, sizeof(buf),
                  "    \"points_per_cell\": %u, "
                  "\"integrity_reached_points\": %u,\n"
                  "    \"zero_silent_with_integrity\": %s, "
                  "\"silent_points_without_integrity\": %u,\n",
                  faults.pointsPerCell, faults.integrityReached,
                  faults.zeroSilentWithIntegrity ? "true" : "false",
                  faults.noIntegritySilent);
    os << buf;
    os << "    \"cells\": [\n";
    for (std::size_t i = 0; i < faults.cells.size(); ++i) {
        const FaultCell &c = faults.cells[i];
        std::snprintf(buf, sizeof(buf),
                      "      {\"design\": \"%s\", \"integrity\": %s, "
                      "\"reached\": %u, \"detected_points\": %u, "
                      "\"silent_points\": %u, \"faulted_lines\": %llu, "
                      "\"detected\": %llu, \"repaired\": %llu, "
                      "\"unrecoverable\": %llu, \"host_ms\": %.2f}%s\n",
                      designName(c.design),
                      c.integrity ? "true" : "false", c.reached,
                      c.detectedPoints, c.silentPoints,
                      static_cast<unsigned long long>(c.faultedLines),
                      static_cast<unsigned long long>(c.detected),
                      static_cast<unsigned long long>(c.repaired),
                      static_cast<unsigned long long>(c.unrecoverable),
                      c.hostMs,
                      i + 1 < faults.cells.size() ? "," : "");
        os << buf;
    }
    os << "    ]\n  },\n";
    os << "  \"tree_matrix\": {\n";
    std::snprintf(buf, sizeof(buf),
                  "    \"points_per_cell\": %u, "
                  "\"tree_reached_points\": %u,\n"
                  "    \"zero_silent_with_tree\": %s, "
                  "\"tree_replays_caught\": %llu,\n"
                  "    \"mac_only_silent_replay_points\": %u, "
                  "\"replays_slip_without_tree\": %s,\n",
                  tree.pointsPerCell, tree.treeReached,
                  tree.zeroSilentWithTree ? "true" : "false",
                  static_cast<unsigned long long>(tree.treeReplaysCaught),
                  tree.macOnlySilentReplays,
                  tree.replaysSlipWithoutTree ? "true" : "false");
    os << buf;
    os << "    \"cells\": [\n";
    for (std::size_t i = 0; i < tree.cells.size(); ++i) {
        const TreeCell &c = tree.cells[i];
        std::snprintf(buf, sizeof(buf),
                      "      {\"design\": \"%s\", \"tree\": %s, "
                      "\"reached\": %u, \"silent_points\": %u, "
                      "\"replay_detected_points\": %u, "
                      "\"silent_replay_points\": %u, "
                      "\"replayed_lines\": %llu, "
                      "\"replays_caught\": %llu, "
                      "\"host_ms\": %.2f}%s\n",
                      designName(c.design), c.tree ? "true" : "false",
                      c.reached, c.silentPoints, c.replayDetectedPoints,
                      c.silentReplayPoints,
                      static_cast<unsigned long long>(c.replayedLines),
                      static_cast<unsigned long long>(c.replaysCaught),
                      c.hostMs, i + 1 < tree.cells.size() ? "," : "");
        os << buf;
    }
    os << "    ]\n  },\n";
    os << "  \"tree_overhead\": [\n";
    for (std::size_t i = 0; i < tree_overhead.size(); ++i) {
        const TreeOverheadRow &r = tree_overhead[i];
        std::snprintf(buf, sizeof(buf),
                      "    {\"design\": \"%s\", \"mac_ticks\": %llu, "
                      "\"tree_ticks\": %llu, \"tick_overhead_pct\": %.2f,\n"
                      "     \"mac_kb_written\": %.1f, "
                      "\"tree_kb_written\": %.1f, "
                      "\"write_overhead_pct\": %.2f,\n",
                      designName(r.design),
                      static_cast<unsigned long long>(r.macTicks),
                      static_cast<unsigned long long>(r.treeTicks),
                      r.tickOverheadPct, r.macKbWritten, r.treeKbWritten,
                      r.writeOverheadPct);
        os << buf;
        std::snprintf(buf, sizeof(buf),
                      "     \"leaf_updates\": %llu, \"coalesces\": %llu, "
                      "\"node_writes\": %llu, \"flushes\": %llu, "
                      "\"host_ms\": %.2f}%s\n",
                      static_cast<unsigned long long>(r.leafUpdates),
                      static_cast<unsigned long long>(r.coalesces),
                      static_cast<unsigned long long>(r.nodeWrites),
                      static_cast<unsigned long long>(r.flushes),
                      r.hostMs,
                      i + 1 < tree_overhead.size() ? "," : "");
        os << buf;
    }
    os << "  ],\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"recovery_scaling\": {\"jobs\": %u, "
                  "\"host_concurrency\": %u, \"reports_identical\": %s,\n"
                  "    \"rows\": [\n",
                  rscaling.jobs, rscaling.hostConcurrency,
                  rscaling.allIdentical() ? "true" : "false");
    os << buf;
    for (std::size_t i = 0; i < rscaling.rows.size(); ++i) {
        const RecoveryScalingRow &r = rscaling.rows[i];
        std::snprintf(buf, sizeof(buf),
                      "      {\"region_kb\": %u, \"serial_ms\": %.2f, "
                      "\"parallel_ms\": %.2f, \"speedup\": %.2f, "
                      "\"identical\": %s}%s\n",
                      r.regionKb, r.serialMs, r.parallelMs, r.speedup,
                      r.identical ? "true" : "false",
                      i + 1 < rscaling.rows.size() ? "," : "");
        os << buf;
    }
    os << "    ]\n  },\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"recovery_recrash\": {\"points_per_design\": %u, "
                  "\"ok\": %s,\n    \"cells\": [\n",
                  recrash.pointsPerDesign,
                  recrash.ok() ? "true" : "false");
    os << buf;
    for (std::size_t i = 0; i < recrash.cells.size(); ++i) {
        const RecrashCell &c = recrash.cells[i];
        std::snprintf(buf, sizeof(buf),
                      "      {\"design\": \"%s\", \"images\": %u, "
                      "\"points\": %u, \"fired\": %u, \"divergent\": %u, "
                      "\"host_ms\": %.2f}%s\n",
                      designName(c.design), c.images, c.points, c.fired,
                      c.divergent, c.hostMs,
                      i + 1 < recrash.cells.size() ? "," : "");
        os << buf;
    }
    os << "    ]\n  },\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"soak_matrix\": {\"cycles_per_chain\": %u, "
                  "\"total_cycles\": %u, \"total_silent\": %u,\n"
                  "    \"zero_silent_cumulative\": %s, "
                  "\"clean_chain_identity\": %s,\n    \"cells\": [\n",
                  soak.cyclesPerChain, soak.totalCycles,
                  soak.totalSilent,
                  soak.zeroSilentCumulative() ? "true" : "false",
                  soak.cleanIdentity ? "true" : "false");
    os << buf;
    for (std::size_t i = 0; i < soak.cells.size(); ++i) {
        const SoakCell &c = soak.cells[i];
        std::snprintf(buf, sizeof(buf),
                      "      {\"design\": \"%s\", \"cycles\": %u, "
                      "\"crashed\": %u, \"dosed\": %u, \"resets\": %u, "
                      "\"silent\": %u, \"detected\": %llu, "
                      "\"replays_detected\": %llu, "
                      "\"final_quarantined\": %llu, \"ok\": %s, "
                      "\"host_ms\": %.2f}%s\n",
                      designName(c.design), c.cycles, c.crashed,
                      c.dosed, c.resets, c.silent,
                      static_cast<unsigned long long>(c.detected),
                      static_cast<unsigned long long>(c.replaysDetected),
                      static_cast<unsigned long long>(
                          c.finalQuarantined),
                      c.ok ? "true" : "false", c.hostMs,
                      i + 1 < soak.cells.size() ? "," : "");
        os << buf;
    }
    os << "    ]\n  },\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"soak_scaling\": {\"chains\": %u, \"cycles\": %u, "
                  "\"jobs\": %u, \"host_concurrency\": %u, "
                  "\"serial_ms\": %.2f, \"parallel_ms\": %.2f, "
                  "\"speedup\": %.2f, \"fingerprints_identical\": %s},\n",
                  soak_scaling.chains, soak_scaling.cycles,
                  soak_scaling.jobs, soak_scaling.hostConcurrency,
                  soak_scaling.serialMs, soak_scaling.parallelMs,
                  soak_scaling.speedup,
                  soak_scaling.identical ? "true" : "false");
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"sweep_scaling\": {\"points\": %u, \"jobs\": %u, "
                  "\"host_concurrency\": %u, \"serial_ms\": %.2f, "
                  "\"parallel_ms\": %.2f, \"speedup\": %.2f, "
                  "\"fingerprints_identical\": %s},\n",
                  scaling.points, scaling.jobs, scaling.hostConcurrency,
                  scaling.serialMs, scaling.parallelMs, scaling.speedup,
                  scaling.identical ? "true" : "false");
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"sweep_fork_speedup\": {\"points\": %u, \"jobs\": %u, "
                  "\"host_concurrency\": %u, \"replay_ms\": %.2f, "
                  "\"fork_ms\": %.2f, \"speedup\": %.2f, "
                  "\"fingerprints_identical\": %s},\n",
                  fork_speedup.points, fork_speedup.jobs,
                  fork_speedup.hostConcurrency, fork_speedup.replayMs,
                  fork_speedup.forkMs, fork_speedup.speedup,
                  fork_speedup.identical ? "true" : "false");
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"channel_scaling\": {\"cores\": %u, "
                  "\"channels\": %u, \"txn_per_sec_1ch\": %.0f, "
                  "\"txn_per_sec_%uch\": %.0f, \"sim_speedup\": %.2f,\n"
                  "    \"scales_up\": %s, "
                  "\"fingerprints_identical\": %s, "
                  "\"host_ms\": %.2f},\n",
                  chscaling.cores, chscaling.channels,
                  chscaling.txnPerSec1, chscaling.channels,
                  chscaling.txnPerSecN, chscaling.speedup,
                  chscaling.scalesUp ? "true" : "false",
                  chscaling.identical ? "true" : "false",
                  chscaling.hostMs);
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"channel_scaling_16c\": {\"cores\": %u, "
                  "\"channels\": %u, \"txn_per_sec_1ch\": %.0f, "
                  "\"txn_per_sec_%uch\": %.0f, \"sim_speedup\": %.2f,\n"
                  "    \"scales_up\": %s, \"host_ms\": %.2f},\n",
                  chscaling16.cores, chscaling16.channels,
                  chscaling16.txnPerSec1, chscaling16.channels,
                  chscaling16.txnPerSecN, chscaling16.speedup,
                  chscaling16.scalesUp ? "true" : "false",
                  chscaling16.hostMs);
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"sim_jobs_scaling\": {\"cores\": %u, "
                  "\"channels\": %u, \"jobs\": %u, "
                  "\"host_concurrency\": %u,\n"
                  "    \"serial_ms\": %.2f, \"parallel_ms\": %.2f, "
                  "\"speedup\": %.2f, \"barriers\": %llu, "
                  "\"messages\": %llu, \"stats_identical\": %s},\n",
                  sjscaling.cores, sjscaling.channels, sjscaling.jobs,
                  sjscaling.hostConcurrency, sjscaling.serialMs,
                  sjscaling.parallelMs, sjscaling.speedup,
                  static_cast<unsigned long long>(sjscaling.barriers),
                  static_cast<unsigned long long>(sjscaling.messages),
                  sjscaling.identical ? "true" : "false");
    os << buf;
    os << "  \"checks\": {";
    for (std::size_t i = 0; i < checks.size(); ++i) {
        os << "\"" << checks[i].name << "\": "
           << (checks[i].ok ? "true" : "false")
           << (i + 1 < checks.size() ? ", " : "");
    }
    os << "},\n";
    os << "  \"kernels\": {\n";
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const KernelResult &k = kernels[i];
        std::snprintf(buf, sizeof(buf),
                      "    \"%s\": {\"ns_per_op\": %.2f, \"ops\": %llu, "
                      "\"host_ms\": %.2f}%s\n",
                      k.name.c_str(), k.nsPerOp,
                      static_cast<unsigned long long>(k.ops), k.hostMs,
                      i + 1 < kernels.size() ? "," : "");
        os << buf;
    }
    os << "  },\n";
    os << "  \"systems\": {\n";
    for (std::size_t i = 0; i < systems.size(); ++i) {
        const SystemResult &s = systems[i];
        std::snprintf(buf, sizeof(buf),
                      "    \"%s\": {\"sim_ticks_per_sec\": %.0f, "
                      "\"sim_ticks\": %llu, \"txns\": %llu, "
                      "\"host_ms\": %.2f}%s\n",
                      s.name.c_str(), s.simTicksPerSec,
                      static_cast<unsigned long long>(s.simTicks),
                      static_cast<unsigned long long>(s.txns), s.hostMs,
                      i + 1 < systems.size() ? "," : "");
        os << buf;
    }
    os << "  }";
    if (!baseline_json.empty())
        os << ",\n  \"baseline\": " << baseline_json;
    os << "\n}\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    std::string baseline_path;
    bool quick = false;
    unsigned repeat = 3;
    unsigned jobs = 0; // 0 = hardware concurrency
    unsigned sim_jobs = 2; // partitioned-kernel threads, scaling section

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto need_value = [&]() -> const char * {
            return toolargs::needValue(argc, argv, i, usage);
        };
        if (arg == "--out") {
            out_path = need_value();
        } else if (arg == "--baseline") {
            baseline_path = need_value();
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--repeat") {
            repeat = toolargs::parsePositive("--repeat", need_value(),
                                            usage);
        } else if (arg == "--jobs") {
            jobs = toolargs::parsePositive("--jobs", need_value(), usage);
        } else if (arg == "--sim-jobs") {
            sim_jobs = toolargs::parseBounded("--sim-jobs", need_value(),
                                              64, usage);
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(2);
        }
    }

    std::string baseline_json;
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        if (!in) {
            std::fprintf(stderr, "cannot read baseline '%s'\n",
                         baseline_path.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        baseline_json = ss.str();
        // Strip the trailing newline so the embedding stays tidy.
        while (!baseline_json.empty()
               && (baseline_json.back() == '\n'
                   || baseline_json.back() == '\r'))
            baseline_json.pop_back();
    }

    // The timed kernels and System runs stay serial — they measure
    // host-side speed and concurrent timing would only add noise. The
    // pool runs the untimed per-design equivalence checks.
    WorkPool pool(jobs);

    std::vector<KernelResult> kernels;
    kernels.push_back(bestKernel(repeat, [&]() {
        return benchEventqScheduleProcess(quick ? 200 : 2000); }));
    kernels.push_back(bestKernel(repeat, [&]() {
        return benchEventqReschedule(quick ? 100000 : 2000000); }));
    kernels.push_back(bestKernel(repeat, [&]() {
        return benchEventqDeschedule(quick ? 200 : 2000); }));
    kernels.push_back(bestKernel(repeat, [&]() {
        return benchEventqQuantumSingle(quick ? 20000 : 100000); }));
    kernels.push_back(bestKernel(repeat, [&]() {
        return benchEventqQuantumBarrier(quick ? 20000 : 100000); }));
    kernels.push_back(bestKernel(repeat, [&]() {
        return benchMemctlWriteReadBurst(quick ? 100 : 1000); }));

    std::vector<SystemResult> systems;
    systems.push_back(bestSystem(repeat, [&]() {
        return benchFigRun(quick ? 40 : 200); }));

    std::vector<CheckResult> checks = runEquivalenceChecks(quick, pool);
    bool checks_ok = true;
    for (const CheckResult &c : checks) {
        checks_ok = checks_ok && c.ok;
        std::printf("check %-32s %s\n", c.name.c_str(),
                    c.ok ? "ok" : "FAILED");
    }

    SweepScalingResult scaling = benchSweepScaling(quick, 4);
    checks_ok = checks_ok && scaling.identical;
    std::printf("sweep scaling: %u points, serial %.1f ms, "
                "jobs=%u %.1f ms (%.2fx, host concurrency %u, "
                "fingerprints %s)\n",
                scaling.points, scaling.serialMs, scaling.jobs,
                scaling.parallelMs, scaling.speedup,
                scaling.hostConcurrency,
                scaling.identical ? "identical" : "DIFFER");

    SweepForkSpeedupResult fork_speedup = benchSweepForkSpeedup(quick, 4);
    checks_ok = checks_ok && fork_speedup.identical;
    std::printf("sweep fork speedup: %u points, replay %.1f ms, "
                "fork %.1f ms (%.2fx, jobs=%u, host concurrency %u, "
                "fingerprints %s)\n",
                fork_speedup.points, fork_speedup.replayMs,
                fork_speedup.forkMs, fork_speedup.speedup,
                fork_speedup.jobs, fork_speedup.hostConcurrency,
                fork_speedup.identical ? "identical" : "DIFFER");

    ChannelScalingResult chscaling = benchChannelScaling(quick, 4, 4,
                                                         true);
    checks_ok = checks_ok && chscaling.ok();
    std::printf("channel scaling: %u cores, %.0f txn/s at 1 channel, "
                "%.0f txn/s at %u channels (%.2fx simulated, "
                "fingerprints %s)\n",
                chscaling.cores, chscaling.txnPerSec1,
                chscaling.txnPerSecN, chscaling.channels,
                chscaling.speedup,
                chscaling.identical ? "identical" : "DIFFER");

    ChannelScalingResult chscaling16 = benchChannelScaling(quick, 16, 8,
                                                           false);
    checks_ok = checks_ok && chscaling16.ok();
    std::printf("channel scaling: %u cores, %.0f txn/s at 1 channel, "
                "%.0f txn/s at %u channels (%.2fx simulated)\n",
                chscaling16.cores, chscaling16.txnPerSec1,
                chscaling16.txnPerSecN, chscaling16.channels,
                chscaling16.speedup);

    SimJobsScalingResult sjscaling = benchSimJobsScaling(quick, sim_jobs);
    checks_ok = checks_ok && sjscaling.identical;
    std::printf("sim-jobs scaling: %u cores, %u channels, "
                "serial %.1f ms, sim-jobs=%u %.1f ms (%.2fx, host "
                "concurrency %u, %llu barriers, %llu messages, "
                "stats %s)\n",
                sjscaling.cores, sjscaling.channels, sjscaling.serialMs,
                sjscaling.jobs, sjscaling.parallelMs, sjscaling.speedup,
                sjscaling.hostConcurrency,
                static_cast<unsigned long long>(sjscaling.barriers),
                static_cast<unsigned long long>(sjscaling.messages),
                sjscaling.identical ? "identical" : "DIFFER");

    RecoveryScalingResult rscaling = benchRecoveryScaling(quick, 4);
    checks_ok = checks_ok && rscaling.allIdentical();
    for (const RecoveryScalingRow &r : rscaling.rows)
        std::printf("recovery scaling: %5u KB region, serial %.1f ms, "
                    "jobs=%u %.1f ms (%.2fx, host concurrency %u, "
                    "reports %s)\n",
                    r.regionKb, r.serialMs, rscaling.jobs, r.parallelMs,
                    r.speedup, rscaling.hostConcurrency,
                    r.identical ? "identical" : "DIFFER");

    RecrashResult recrash = runRecrashSweeps(quick, pool);
    checks_ok = checks_ok && recrash.ok();
    for (const RecrashCell &c : recrash.cells)
        std::printf("recovery recrash %-13s images=%u points=%u "
                    "fired=%u divergent=%u (%.1f ms) %s\n",
                    designName(c.design), c.images, c.points, c.fired,
                    c.divergent, c.hostMs,
                    c.points > 0 && c.fired > 0 && c.divergent == 0
                        ? "ok" : "FAILED");

    FaultMatrixResult fault_matrix = runFaultMatrix(quick, pool);
    checks_ok = checks_ok && fault_matrix.ok();
    for (const FaultCell &c : fault_matrix.cells)
        std::printf("fault matrix %-13s integrity=%-3s reached=%u "
                    "detected-pts=%u silent-pts=%u repaired=%llu "
                    "unrecoverable=%llu (%.1f ms)\n",
                    designName(c.design), c.integrity ? "on" : "off",
                    c.reached, c.detectedPoints, c.silentPoints,
                    static_cast<unsigned long long>(c.repaired),
                    static_cast<unsigned long long>(c.unrecoverable),
                    c.hostMs);
    std::printf("fault matrix: %u integrity-armed points, silent with "
                "integrity: %u (%s), silent without: %u (%s)\n",
                fault_matrix.integrityReached,
                fault_matrix.integritySilent,
                fault_matrix.zeroSilentWithIntegrity ? "ok" : "FAILED",
                fault_matrix.noIntegritySilent,
                fault_matrix.silentWithoutIntegrity ? "ok" : "FAILED");

    TreeMatrixResult tree_matrix = runTreeMatrix(quick, pool);
    checks_ok = checks_ok && tree_matrix.ok();
    for (const TreeCell &c : tree_matrix.cells)
        std::printf("tree matrix %-13s tree=%-3s reached=%u "
                    "silent-pts=%u rp-det-pts=%u rp-sil-pts=%u "
                    "replayed=%llu caught=%llu (%.1f ms)\n",
                    designName(c.design), c.tree ? "on" : "off",
                    c.reached, c.silentPoints, c.replayDetectedPoints,
                    c.silentReplayPoints,
                    static_cast<unsigned long long>(c.replayedLines),
                    static_cast<unsigned long long>(c.replaysCaught),
                    c.hostMs);
    std::printf("tree matrix: %u tree-armed points, silent with tree: "
                "%u, replays caught: %llu (%s), silent replays "
                "mac-only: %u (%s)\n",
                tree_matrix.treeReached, tree_matrix.treeSilent,
                static_cast<unsigned long long>(
                    tree_matrix.treeReplaysCaught),
                tree_matrix.zeroSilentWithTree ? "ok" : "FAILED",
                tree_matrix.macOnlySilentReplays,
                tree_matrix.replaysSlipWithoutTree ? "ok" : "FAILED");

    SoakMatrixResult soak_matrix = runSoakMatrix(quick, pool);
    checks_ok = checks_ok && soak_matrix.ok();
    for (const SoakCell &c : soak_matrix.cells)
        std::printf("soak matrix %-13s cycles=%u crashed=%u dosed=%u "
                    "resets=%u silent=%u detected=%llu rp-det=%llu "
                    "final-q=%llu (%.1f ms) %s\n",
                    designName(c.design), c.cycles, c.crashed, c.dosed,
                    c.resets, c.silent,
                    static_cast<unsigned long long>(c.detected),
                    static_cast<unsigned long long>(c.replaysDetected),
                    static_cast<unsigned long long>(c.finalQuarantined),
                    c.hostMs, c.ok ? "ok" : "FAILED");
    std::printf("soak matrix: %u cycles total, silent: %u (%s), "
                "clean-chain identity: %s\n",
                soak_matrix.totalCycles, soak_matrix.totalSilent,
                soak_matrix.zeroSilentCumulative() ? "ok" : "FAILED",
                soak_matrix.cleanIdentity ? "ok" : "FAILED");

    SoakScalingResult soak_scaling = benchSoakScaling(quick, 4);
    checks_ok = checks_ok && soak_scaling.identical;
    std::printf("soak scaling: %u chains x %u cycles, serial %.1f ms, "
                "jobs=%u %.1f ms (%.2fx, host concurrency %u, "
                "fingerprints %s)\n",
                soak_scaling.chains, soak_scaling.cycles,
                soak_scaling.serialMs, soak_scaling.jobs,
                soak_scaling.parallelMs, soak_scaling.speedup,
                soak_scaling.hostConcurrency,
                soak_scaling.identical ? "identical" : "DIFFER");

    std::vector<TreeOverheadRow> tree_overhead = benchTreeOverhead(quick);
    for (const TreeOverheadRow &r : tree_overhead)
        std::printf("tree overhead %-13s ticks +%.2f%% writes +%.2f%% "
                    "(leaf=%llu coalesced=%llu node-writes=%llu "
                    "flushes=%llu, %.1f ms)\n",
                    designName(r.design), r.tickOverheadPct,
                    r.writeOverheadPct,
                    static_cast<unsigned long long>(r.leafUpdates),
                    static_cast<unsigned long long>(r.coalesces),
                    static_cast<unsigned long long>(r.nodeWrites),
                    static_cast<unsigned long long>(r.flushes),
                    r.hostMs);

    for (const KernelResult &k : kernels)
        std::printf("%-34s %10.2f ns/op  (%llu ops, %.1f ms)\n",
                    k.name.c_str(), k.nsPerOp,
                    static_cast<unsigned long long>(k.ops), k.hostMs);
    for (const SystemResult &s : systems)
        std::printf("%-34s %10.3g sim-ticks/s (%llu txns, %.1f ms)\n",
                    s.name.c_str(), s.simTicksPerSec,
                    static_cast<unsigned long long>(s.txns), s.hostMs);

    if (out_path.empty()) {
        emitJson(std::cout, kernels, systems, quick, baseline_json,
                 checks, checks_ok, scaling, fork_speedup, chscaling,
                 chscaling16, sjscaling, fault_matrix, tree_matrix,
                 tree_overhead, rscaling, recrash, soak_matrix,
                 soak_scaling);
    } else {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
            return 2;
        }
        emitJson(out, kernels, systems, quick, baseline_json, checks,
                 checks_ok, scaling, fork_speedup, chscaling,
                 chscaling16, sjscaling, fault_matrix, tree_matrix,
                 tree_overhead, rscaling, recrash, soak_matrix,
                 soak_scaling);
        std::printf("wrote %s\n", out_path.c_str());
    }
    return checks_ok ? 0 : 1;
}
