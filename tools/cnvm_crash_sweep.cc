/**
 * @file
 * cnvm_crash_sweep — crash-point sweep and recoverability matrix.
 *
 * Sweeps K power-failure points (absolute ticks plus semantic
 * controller-event triggers) across one design or all of them, runs
 * recovery at every point, and classifies each post-crash image with
 * the crash oracle:
 *
 *   cnvm_crash_sweep --design SCA --points 50
 *   cnvm_crash_sweep --design Unsafe --points 50 --verbose
 *   cnvm_crash_sweep --points 20            # matrix over every design
 *   cnvm_crash_sweep --points 50 --faults --integrity
 *
 * The sweep is deterministic for a fixed --seed: same points, same
 * classifications, same fingerprint. With --faults the same holds for
 * a fixed --fault-seed: every point receives the same media-fault dose
 * with a per-point RNG stream, identical across Execute modes and job
 * counts.
 *
 * Exit status: 0 when every design behaved as designed, 1 otherwise,
 * 2 on usage errors. "As designed" means:
 *
 *   - clean sweep: crash-consistent designs recovered at every reached
 *     point; Unsafe (the negative control, when swept) exhibited at
 *     least one counter/data mismatch;
 *   - --faults --integrity: NO point anywhere classified as
 *     silent-corruption (the headline integrity invariant), and every
 *     recovery failure of a crash-consistent design is a detected one;
 *   - --faults without --integrity: the matrix as a whole must
 *     demonstrate at least one silent-corruption point — this is the
 *     negative control proving the faults bite and that, without the
 *     integrity metadata, they bite silently.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/crash_sweep.hh"
#include "core/recovery_crash.hh"
#include "core/soak.hh"
#include "runner/runner.hh"
#include "tool_args.hh"

using namespace cnvm;

namespace
{

struct Options
{
    SystemConfig cfg;
    std::vector<DesignPoint> designs;
    unsigned points = 20;
    unsigned jobs = 0; //!< 0 = hardware concurrency
    unsigned recoveryJobs = 1;     //!< per-point recovery concurrency
    unsigned recoveryCrashes = 0;  //!< >0: crash-during-recovery sweep
    unsigned soakCycles = 0;       //!< >0: crash-chain soak instead
    SweepMode mode = SweepMode::Replay;
    bool semanticTriggers = true;
    bool verbose = false;
    bool printFingerprint = false;
    bool faults = false;
    bool replays = false;
    bool integrity = false;
    bool integrityTree = false;
    bool faultSeedSet = false;
    std::uint64_t faultSeed = 1;
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(code == 0 ? stdout : stderr,
                 R"(cnvm_crash_sweep — crash-point sweep over the design space

options:
  --design NAME     sweep one design (default: all of them)
  --points K        crash points per design (default 20)
  --jobs N          worker threads for the Execute phase (default:
                    hardware concurrency; 1 = the serial reference
                    loop; results are identical at any N)
  --mode M          Execute strategy: replay (one crashed simulation
                    per point, the reference; default) or fork (one
                    trunk run, capture persistent-state forks and
                    classify them off-trunk — same fingerprint, K
                    recoveries instead of K simulations)
  --recovery-jobs N worker threads *inside* each point's recovery: the
                    integrity pre-scan shards over them (default 1 =
                    the serial reference; recovery output is
                    byte-identical at any N)
  --recovery-crashes R
                    run the crash-during-recovery sweep instead: per
                    design, capture --points crashed images, then
                    interrupt write-back recovery at R planned steps
                    (mid-pre-scan, mid-rollback, around the log
                    invalidation), re-run it, and gate on idempotence —
                    every interrupted-then-completed recovery must
                    converge to the single-shot digest and report
  --soak N          run the crash-chain soak instead: per design, one
                    chain of N crash→recover→resume cycles (faults
                    dosed per the flags below, recovered image resumed
                    as the next cycle's state) plus a final
                    resume-and-complete integrity examination, gated on
                    the cumulative SoakOracle invariants (max 4096; see
                    cnvm_soak for the full-featured harness)
  --workload NAME   array | queue | hash | btree | rbtree (default array)
  --cores N         number of cores (default 1)
  --channels N      memory channels sharding the address space
                    (power of two; default 1)
  --sim-jobs N      partition the simulation kernel per channel and run
                    it on N host threads inside every swept simulation
                    (1 = the partitioned-serial reference; max 64;
                    default: the classic single-queue kernel;
                    partitioned fingerprints are identical at any N)
  --txns N          transactions per core (default 40)
  --footprint-kb N  per-core region size (default 256)
  --cc-kb N         total counter cache KB, split evenly across the
                    channels (default 16; small, so dirty evictions
                    are reachable crash states)
  --seed N          workload seed (default 1)
  --ticks-only      plan only absolute-tick points (no semantic triggers)
  --faults          dose every crash point with media faults (torn line
                    writes, bit flips, counter corruption/rollback, ADR
                    energy loss); deterministic per --fault-seed
  --fault-seed N    base seed of the per-point fault RNG streams
                    (default 1; requires --faults)
  --replays         add a replay dose to every faulted point: whole
                    stale (ciphertext, counter, MAC) triples are
                    re-installed — internally consistent, so per-line
                    MACs verify (requires --faults)
  --integrity       arm the per-line integrity MACs: recovery verifies
                    every line, repairs counters by bounded trial
                    re-decryption, and quarantines what it cannot fix.
                    With --faults the sweep gates on the headline
                    invariant — zero silent-corruption points
  --integrity-tree  arm the counter integrity tree on top of the MACs
                    (implies --integrity): recovery verifies the tree
                    root first and catches replayed counters per line.
                    With --faults --replays the gate extends to zero
                    silent-replay points
  --verbose         print every crash point, not just the matrix row
  --fingerprint     print the deterministic sweep fingerprint
  --help            this text
)");
    std::exit(code);
}

const char *
shortDesignName(DesignPoint d)
{
    switch (d) {
      case DesignPoint::Colocated: return "Colocated";
      case DesignPoint::ColocatedCC: return "ColocatedCC";
      default: return designName(d);
    }
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    opt.cfg.wl.regionBytes = 256u << 10;
    opt.cfg.wl.txnTarget = 40;
    opt.cfg.wl.computePerTxn = 100;
    opt.cfg.wl.recordDigests = true;
    opt.cfg.wl.setupFill = 0.3;
    opt.cfg.memctl.counterCacheBytes = 16u << 10;

    auto need_value = [&](int &i) -> const char * {
        return toolargs::needValue(argc, argv, i, usage);
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (arg == "--design") {
            std::string name = need_value(i);
            auto d = designFromName(name);
            if (!d) {
                std::fprintf(stderr, "unknown design '%s'\n", name.c_str());
                usage(2);
            }
            opt.designs.push_back(*d);
        } else if (arg == "--points") {
            opt.points =
                toolargs::parsePositive("--points", need_value(i), usage);
        } else if (arg == "--jobs") {
            opt.jobs =
                toolargs::parsePositive("--jobs", need_value(i), usage);
        } else if (arg == "--recovery-jobs") {
            opt.recoveryJobs = toolargs::parsePositive("--recovery-jobs",
                                                       need_value(i),
                                                       usage);
        } else if (arg == "--recovery-crashes") {
            opt.recoveryCrashes = toolargs::parsePositive(
                "--recovery-crashes", need_value(i), usage);
        } else if (arg == "--soak") {
            opt.soakCycles = toolargs::parseBounded(
                "--soak", need_value(i), 4096, usage);
        } else if (arg == "--mode") {
            std::string name = need_value(i);
            if (name == "replay") {
                opt.mode = SweepMode::Replay;
            } else if (name == "fork") {
                opt.mode = SweepMode::Fork;
            } else {
                std::fprintf(stderr, "unknown mode '%s'\n", name.c_str());
                usage(2);
            }
        } else if (arg == "--workload") {
            opt.cfg.workload = workloadKindFromName(need_value(i));
        } else if (arg == "--cores") {
            opt.cfg.numCores =
                static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (arg == "--channels") {
            opt.cfg.numChannels = toolargs::parsePowerOfTwo(
                "--channels", need_value(i), usage);
        } else if (arg == "--sim-jobs") {
            opt.cfg.simJobs = toolargs::parseBounded(
                "--sim-jobs", need_value(i), 64, usage);
        } else if (arg == "--txns") {
            opt.cfg.wl.txnTarget =
                static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (arg == "--footprint-kb") {
            opt.cfg.wl.regionBytes =
                std::strtoull(need_value(i), nullptr, 10) << 10;
        } else if (arg == "--cc-kb") {
            opt.cfg.memctl.counterCacheBytes =
                std::strtoull(need_value(i), nullptr, 10) << 10;
        } else if (arg == "--seed") {
            opt.cfg.wl.seed =
                toolargs::parseU64("--seed", need_value(i), usage);
        } else if (arg == "--ticks-only") {
            opt.semanticTriggers = false;
        } else if (arg == "--faults") {
            opt.faults = true;
        } else if (arg == "--fault-seed") {
            opt.faultSeed =
                toolargs::parseU64("--fault-seed", need_value(i), usage);
            opt.faultSeedSet = true;
        } else if (arg == "--replays") {
            opt.replays = true;
        } else if (arg == "--integrity") {
            opt.integrity = true;
        } else if (arg == "--integrity-tree") {
            opt.integrityTree = true;
            opt.integrity = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--fingerprint") {
            opt.printFingerprint = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(2);
        }
    }

    toolargs::enforceFlagRules(
        {{opt.faultSeedSet, opt.faults, "--fault-seed", "--faults"},
         {opt.replays, opt.faults, "--replays", "--faults"}},
        usage);
    if (opt.designs.empty()) {
        for (DesignPoint d : allDesignPoints())
            opt.designs.push_back(d);
    }
    return opt;
}

/** Matrix-level tallies the per-design sweeps accumulate into. */
struct MatrixTotals
{
    unsigned silent = 0;       //!< silent-corruption points
    unsigned silentReplay = 0; //!< silent-replay points
    std::uint64_t replaysCaught = 0; //!< replayed lines recovery caught
};

/** Sweeps one design; returns whether it behaved as designed and adds
 *  its silent/replay points into @p totals. */
bool
sweepDesign(const Options &opt, DesignPoint design, WorkPool &pool,
            MatrixTotals &totals)
{
    SystemConfig cfg = opt.cfg;
    cfg.design = design;
    cfg.memctl.integrityMac = opt.integrity;
    cfg.memctl.integrityTree = opt.integrityTree;

    SweepOptions sweep_opt;
    sweep_opt.points = opt.points;
    sweep_opt.semanticTriggers = opt.semanticTriggers;
    sweep_opt.mode = opt.mode;
    sweep_opt.recoveryJobs = opt.recoveryJobs;
    if (opt.faults)
        sweep_opt.faults = opt.replays
            ? FaultSpec::allKindsWithReplays(opt.faultSeed)
            : FaultSpec::allKinds(opt.faultSeed);
    SweepResult result = runSweep(cfg, sweep_opt, &pool);

    if (opt.verbose) {
        for (const SweepPoint &p : result.points) {
            if (!p.crashed) {
                std::printf("  %-20s unreached (run completed first)\n",
                            p.spec.describe().c_str());
                continue;
            }
            std::printf("  %-20s %-22s tick=%llu q=%u/%u pipe=%u "
                        "mismatched=%llu committed=%llu",
                        p.spec.describe().c_str(), crashClassName(p.cls),
                        static_cast<unsigned long long>(p.snapshot.tick),
                        p.snapshot.dataQueue, p.snapshot.ctrQueue,
                        p.snapshot.pipeline,
                        static_cast<unsigned long long>(p.mismatchedLines),
                        static_cast<unsigned long long>(p.committedTxns));
            if (opt.faults)
                std::printf(" faulted=%llu det=%llu rep=%llu unrec=%llu",
                            static_cast<unsigned long long>(p.faultedLines),
                            static_cast<unsigned long long>(
                                p.detectedCorruptions),
                            static_cast<unsigned long long>(p.repairedLines),
                            static_cast<unsigned long long>(
                                p.unrecoverableLines));
            if (opt.replays)
                std::printf(" replayed=%llu caught=%llu",
                            static_cast<unsigned long long>(
                                p.replayedLines),
                            static_cast<unsigned long long>(
                                p.replaysDetected));
            std::printf("%s%s\n", p.detail.empty() ? "" : " : ",
                        p.detail.c_str());
        }
    }

    unsigned reached =
        static_cast<unsigned>(result.points.size()) -
        result.unreachedPoints();
    std::printf("%-13s %7u %8u %11u %10u %9u %9u %9u %9u %7u %7u %7u\n",
                shortDesignName(design),
                static_cast<unsigned>(result.points.size()), reached,
                result.countOf(CrashClass::Consistent),
                result.countOf(CrashClass::TornData),
                result.countOf(CrashClass::TornCounter) +
                    result.countOf(CrashClass::CounterDataMismatch),
                result.countOf(CrashClass::Inconsistent),
                result.inconsistentPoints(),
                result.countOf(CrashClass::DetectedCorruption),
                result.silentPoints(),
                result.replayDetectedPoints(),
                result.silentReplayPoints());

    if (opt.printFingerprint)
        std::printf("  fingerprint(%s): %s\n", shortDesignName(design),
                    result.fingerprint().c_str());

    totals.silent += result.silentPoints();
    totals.silentReplay += result.silentReplayPoints();
    totals.replaysCaught += result.totalOf(&SweepPoint::replaysDetected);

    if (opt.faults && opt.integrity) {
        // The headline invariant: with integrity metadata armed, no
        // injected fault is ever silent — and with the tree on top,
        // no replay is either. Crash-consistent designs may fail
        // recovery under media faults, but only detectably; the
        // negative control must still demonstrate *some* failure.
        if (result.silentPoints() != 0)
            return false;
        if (opt.integrityTree && result.silentReplayPoints() != 0)
            return false;
        // MAC-only replays are *expected* to slip: the stale triple
        // verifies. They count as accounted-for failures here and the
        // matrix-level gate in main() requires they actually occur.
        unsigned accounted =
            result.countOf(CrashClass::DetectedCorruption)
            + result.replayDetectedPoints();
        if (!opt.integrityTree)
            accounted += result.silentReplayPoints();
        if (designCrashConsistent(design))
            return result.inconsistentPoints() == accounted;
        return result.mismatchPoints() + accounted >= 1;
    }
    if (opt.faults) {
        // Integrity off: nothing to assert per design — recovery may
        // fail any which way. The matrix-level negative gate in main()
        // requires at least one silent point across the sweep.
        return true;
    }

    if (designCrashConsistent(design))
        return result.inconsistentPoints() == 0;
    // The negative control must demonstrate the Figure-4 failure:
    // at least one reached point with a counter/data mismatch.
    return result.mismatchPoints() >= 1;
}

/**
 * Crash-chain soak of one design (--soak): one chain of
 * crash→recover→resume cycles with the configured dose, gated on the
 * cumulative SoakOracle invariants. Positive rows must complete ok;
 * negative-control combinations (see soakChainExpectedOk) must fail —
 * loudly when undosed. cnvm_soak is the full-featured harness; this
 * mode keeps the soak reachable from the sweep tool's flag set.
 */
bool
soakDesign(const Options &opt, DesignPoint design)
{
    SystemConfig cfg = opt.cfg;
    cfg.design = design;
    cfg.memctl.integrityMac = opt.integrity;
    cfg.memctl.integrityTree = opt.integrityTree;

    SoakOptions soak;
    soak.cycles = opt.soakCycles;
    soak.recoveryJobs = opt.recoveryJobs;
    soak.semanticTriggers = opt.semanticTriggers;
    soak.seed = opt.cfg.wl.seed;
    if (opt.faults)
        soak.faults = opt.replays
            ? FaultSpec::allKindsWithReplays(opt.faultSeed)
            : FaultSpec::allKinds(opt.faultSeed);

    SoakChainResult chain = runSoakChain(cfg, soak);

    if (opt.verbose) {
        for (const SoakCycle &c : chain.cycles)
            std::printf("  %s\n", c.describe().c_str());
        if (!chain.ok)
            std::printf("  FAILED: %s\n", chain.failure.c_str());
    }

    std::printf("%-13s %7u %8u %8u %7u %7u %8llu  %s\n",
                shortDesignName(design),
                static_cast<unsigned>(chain.cycles.size()),
                chain.crashedCycles(), chain.dosedCycles(),
                chain.totalResets(), chain.silentCycles(),
                static_cast<unsigned long long>(chain.finalQuarantined),
                chain.ok ? "ok" : "failed");

    if (opt.printFingerprint)
        std::printf("  fingerprint(%s): %s\n", shortDesignName(design),
                    chain.fingerprint().c_str());

    bool expected_ok = soakChainExpectedOk(design, opt.integrity,
                                           opt.integrityTree, opt.faults,
                                           opt.replays);
    if (expected_ok)
        return chain.ok;
    if (!opt.faults)
        return !chain.ok && chain.silentCycles() == 0;
    return !chain.ok;
}

/** Crash-during-recovery sweep of one design; true iff idempotent. */
bool
recrashDesign(const Options &opt, DesignPoint design, WorkPool &pool)
{
    SystemConfig cfg = opt.cfg;
    cfg.design = design;
    cfg.memctl.integrityMac = opt.integrity;
    cfg.memctl.integrityTree = opt.integrityTree;

    RecoveryCrashOptions rc_opt;
    rc_opt.points = opt.recoveryCrashes;
    rc_opt.images = opt.points;
    rc_opt.recoveryJobs = opt.recoveryJobs;
    rc_opt.semanticTriggers = opt.semanticTriggers;
    if (opt.faults)
        rc_opt.faults = opt.replays
            ? FaultSpec::allKindsWithReplays(opt.faultSeed)
            : FaultSpec::allKinds(opt.faultSeed);

    RecoveryCrashResult result = runRecoveryCrashSweep(cfg, rc_opt,
                                                       &pool);

    if (opt.verbose) {
        for (const RecoveryCrashPoint &p : result.points) {
            std::printf("  img%-3zu %-18s %s%s%s\n", p.imageIndex,
                        p.spec.describe().c_str(),
                        p.fired ? "fired " : "unfired ",
                        p.divergent ? "DIVERGENT" : "converged",
                        p.detail.empty() ? "" : (" : "
                            + p.detail).c_str());
        }
    }

    std::printf("%-13s %7u %8u %11zu %10u %9u\n",
                shortDesignName(design), opt.points, result.images,
                result.points.size(), result.firedPoints(),
                result.divergentPoints());

    if (opt.printFingerprint)
        std::printf("  fingerprint(%s): %s\n", shortDesignName(design),
                    result.fingerprint().c_str());

    // The gate: interruptions actually happened, and every
    // interrupted-then-completed recovery converged.
    return !result.points.empty() && result.firedPoints() > 0
        && result.divergentPoints() == 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    // One pool, reused across every design's Execute phase.
    WorkPool pool(opt.jobs);

    if (opt.soakCycles > 0) {
        std::printf("crash-chain soak: %u cycle(s)/design + final exam, "
                    "workload %s, %u core(s), seed %llu, "
                    "%u recovery job(s)%s%s%s\n",
                    opt.soakCycles, workloadKindName(opt.cfg.workload),
                    opt.cfg.numCores,
                    static_cast<unsigned long long>(opt.cfg.wl.seed),
                    opt.recoveryJobs,
                    opt.faults ? ", media faults" : "",
                    opt.replays ? " + replays" : "",
                    opt.integrityTree ? ", integrity tree"
                        : opt.integrity ? ", integrity MACs" : "");
        std::printf("%-13s %7s %8s %8s %7s %7s %8s\n", "design",
                    "cycles", "crashed", "dosed", "resets", "silent",
                    "final-q");
        bool all_ok = true;
        for (DesignPoint d : opt.designs) {
            if (!soakDesign(opt, d)) {
                all_ok = false;
                std::printf("  ^^ %s did not behave as designed\n",
                            shortDesignName(d));
            }
        }
        return all_ok ? 0 : 1;
    }

    if (opt.recoveryCrashes > 0) {
        std::printf("crash-during-recovery sweep: %u images/design, "
                    "%u interruption points/design, workload %s, "
                    "%u core(s), %u txns, seed %llu, %u job(s), "
                    "%u recovery job(s)%s%s\n",
                    opt.points, opt.recoveryCrashes,
                    workloadKindName(opt.cfg.workload), opt.cfg.numCores,
                    opt.cfg.wl.txnTarget,
                    static_cast<unsigned long long>(opt.cfg.wl.seed),
                    pool.jobs(), opt.recoveryJobs,
                    opt.faults ? ", media faults" : "",
                    opt.integrityTree ? ", integrity tree"
                        : opt.integrity ? ", integrity MACs" : "");
        std::printf("%-13s %7s %8s %11s %10s %9s\n", "design", "images",
                    "captured", "points", "fired", "divergent");
        bool all_ok = true;
        for (DesignPoint d : opt.designs) {
            if (!recrashDesign(opt, d, pool)) {
                all_ok = false;
                std::printf("  ^^ %s: interrupted recovery diverged "
                            "from the single-shot result\n",
                            shortDesignName(d));
            }
        }
        return all_ok ? 0 : 1;
    }

    std::printf("crash-point sweep: %u points/design, workload %s, "
                "%u core(s), %u txns, seed %llu, %u job(s), %s mode"
                "%s%s%s%s\n",
                opt.points, workloadKindName(opt.cfg.workload),
                opt.cfg.numCores, opt.cfg.wl.txnTarget,
                static_cast<unsigned long long>(opt.cfg.wl.seed),
                pool.jobs(), sweepModeName(opt.mode),
                opt.semanticTriggers ? "" : ", ticks only",
                opt.faults ? ", media faults" : "",
                opt.replays ? " + replays" : "",
                opt.integrityTree ? ", integrity tree"
                    : opt.integrity ? ", integrity MACs" : "");
    std::printf("%-13s %7s %8s %11s %10s %9s %9s %9s %9s %7s %7s %7s\n",
                "design", "points", "reached", "consistent", "torn-data",
                "torn-ctr", "other", "inconsist", "detected", "silent",
                "rp-det", "rp-sil");

    bool all_ok = true;
    MatrixTotals totals;
    for (DesignPoint d : opt.designs) {
        if (!sweepDesign(opt, d, pool, totals)) {
            all_ok = false;
            std::printf("  ^^ %s did not behave as designed\n",
                        shortDesignName(d));
        }
    }
    unsigned total_silent = totals.silent;

    if (opt.replays) {
        if (opt.integrityTree) {
            // The replay dose must bite *and* be caught: across the
            // matrix, recovery caught at least one replayed line.
            // (A dose nothing detects would make the zero-silent gate
            // above vacuous.)
            if (totals.replaysCaught == 0) {
                all_ok = false;
                std::printf("^^ no replay caught anywhere: the replay "
                            "dose did not bite\n");
            } else {
                std::printf("replay control: %llu replayed line(s) "
                            "caught by the integrity tree\n",
                            static_cast<unsigned long long>(
                                totals.replaysCaught));
            }
        } else {
            // Negative control: without the tree, replayed triples
            // verify per line and at least one point must consume one
            // silently — proving the attack works against MACs alone.
            if (totals.silentReplay == 0) {
                all_ok = false;
                std::printf("^^ no silent replay anywhere: the replay "
                            "dose did not demonstrate the MAC-only "
                            "failure mode\n");
            } else {
                std::printf("negative control: %u silent-replay "
                            "point(s) without the integrity tree\n",
                            totals.silentReplay);
            }
        }
    }

    if (opt.faults && !opt.integrity) {
        // Negative control: without integrity metadata, the injected
        // faults must produce at least one silent corruption somewhere
        // in the matrix — otherwise the fault model is toothless and
        // the zero-silent gate above proves nothing.
        if (total_silent == 0) {
            all_ok = false;
            std::printf("^^ no silent corruption anywhere: the fault "
                        "dose did not demonstrate the unprotected "
                        "failure mode\n");
        } else {
            std::printf("negative control: %u silent-corruption "
                        "point(s) without integrity metadata\n",
                        total_silent);
        }
    }
    return all_ok ? 0 : 1;
}
