file(REMOVE_RECURSE
  "CMakeFiles/cnvm_sim_cli.dir/cnvm_sim.cc.o"
  "CMakeFiles/cnvm_sim_cli.dir/cnvm_sim.cc.o.d"
  "cnvm_sim"
  "cnvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
