# Empty compiler generated dependencies file for cnvm_sim_cli.
# This may be replaced when dependencies are built.
