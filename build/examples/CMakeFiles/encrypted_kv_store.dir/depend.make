# Empty dependencies file for encrypted_kv_store.
# This may be replaced when dependencies are built.
