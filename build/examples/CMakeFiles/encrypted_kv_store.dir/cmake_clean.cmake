file(REMOVE_RECURSE
  "CMakeFiles/encrypted_kv_store.dir/encrypted_kv_store.cpp.o"
  "CMakeFiles/encrypted_kv_store.dir/encrypted_kv_store.cpp.o.d"
  "encrypted_kv_store"
  "encrypted_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
