file(REMOVE_RECURSE
  "CMakeFiles/cpu_core_test.dir/cpu_core_test.cc.o"
  "CMakeFiles/cpu_core_test.dir/cpu_core_test.cc.o.d"
  "cpu_core_test"
  "cpu_core_test.pdb"
  "cpu_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
