# Empty compiler generated dependencies file for eventq_test.
# This may be replaced when dependencies are built.
