
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nvm_test.cc" "tests/CMakeFiles/nvm_test.dir/nvm_test.cc.o" "gcc" "tests/CMakeFiles/nvm_test.dir/nvm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cnvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cnvm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/cnvm_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/cnvm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/memctl/CMakeFiles/cnvm_memctl.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/cnvm_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cnvm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cnvm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cnvm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cnvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cnvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
