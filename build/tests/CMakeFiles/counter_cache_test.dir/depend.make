# Empty dependencies file for counter_cache_test.
# This may be replaced when dependencies are built.
