file(REMOVE_RECURSE
  "CMakeFiles/counter_cache_test.dir/counter_cache_test.cc.o"
  "CMakeFiles/counter_cache_test.dir/counter_cache_test.cc.o.d"
  "counter_cache_test"
  "counter_cache_test.pdb"
  "counter_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
