# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/eventq_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/counter_cache_test[1]_include.cmake")
include("/root/repo/build/tests/nvm_test[1]_include.cmake")
include("/root/repo/build/tests/core_mem_path_test[1]_include.cmake")
include("/root/repo/build/tests/memctl_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/crash_consistency_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_core_test[1]_include.cmake")
include("/root/repo/build/tests/persist_test[1]_include.cmake")
include("/root/repo/build/tests/wear_leveling_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
add_test(cli_sca_crash_verify "/root/repo/build/tools/cnvm_sim" "--design" "SCA" "--workload" "rbtree" "--txns" "30" "--footprint-mb" "1" "--crash-at-frac" "0.5" "--verify" "--quiet")
set_tests_properties(cli_sca_crash_verify PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;31;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_fca_crash_verify "/root/repo/build/tools/cnvm_sim" "--design" "FCA" "--workload" "queue" "--txns" "30" "--footprint-mb" "1" "--crash-at-frac" "0.5" "--verify" "--quiet")
set_tests_properties(cli_fca_crash_verify PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;35;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_unsafe_crash_fails "/root/repo/build/tools/cnvm_sim" "--design" "Unsafe" "--workload" "array" "--txns" "30" "--footprint-mb" "1" "--crash-at-frac" "0.5" "--verify" "--quiet")
set_tests_properties(cli_unsafe_crash_fails PROPERTIES  TIMEOUT "300" WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;39;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart" "SCA" "hash" "40")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_kv_store "/root/repo/build/examples/encrypted_kv_store")
set_tests_properties(example_kv_store PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;46;add_test;/root/repo/tests/CMakeLists.txt;0;")
