file(REMOVE_RECURSE
  "CMakeFiles/fig17_nvm_latency.dir/fig17_nvm_latency.cc.o"
  "CMakeFiles/fig17_nvm_latency.dir/fig17_nvm_latency.cc.o.d"
  "fig17_nvm_latency"
  "fig17_nvm_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_nvm_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
