# Empty compiler generated dependencies file for fig17_nvm_latency.
# This may be replaced when dependencies are built.
