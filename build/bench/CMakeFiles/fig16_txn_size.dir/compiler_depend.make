# Empty compiler generated dependencies file for fig16_txn_size.
# This may be replaced when dependencies are built.
