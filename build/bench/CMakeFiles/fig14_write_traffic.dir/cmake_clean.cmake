file(REMOVE_RECURSE
  "CMakeFiles/fig14_write_traffic.dir/fig14_write_traffic.cc.o"
  "CMakeFiles/fig14_write_traffic.dir/fig14_write_traffic.cc.o.d"
  "fig14_write_traffic"
  "fig14_write_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_write_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
