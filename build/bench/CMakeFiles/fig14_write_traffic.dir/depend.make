# Empty dependencies file for fig14_write_traffic.
# This may be replaced when dependencies are built.
