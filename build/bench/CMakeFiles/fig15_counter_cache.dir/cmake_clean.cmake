file(REMOVE_RECURSE
  "CMakeFiles/fig15_counter_cache.dir/fig15_counter_cache.cc.o"
  "CMakeFiles/fig15_counter_cache.dir/fig15_counter_cache.cc.o.d"
  "fig15_counter_cache"
  "fig15_counter_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_counter_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
