# Empty dependencies file for fig12_single_core.
# This may be replaced when dependencies are built.
