# Empty dependencies file for micro_eventq.
# This may be replaced when dependencies are built.
