file(REMOVE_RECURSE
  "CMakeFiles/micro_eventq.dir/micro_eventq.cc.o"
  "CMakeFiles/micro_eventq.dir/micro_eventq.cc.o.d"
  "micro_eventq"
  "micro_eventq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_eventq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
