# Empty dependencies file for micro_memctl.
# This may be replaced when dependencies are built.
