file(REMOVE_RECURSE
  "CMakeFiles/micro_memctl.dir/micro_memctl.cc.o"
  "CMakeFiles/micro_memctl.dir/micro_memctl.cc.o.d"
  "micro_memctl"
  "micro_memctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_memctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
