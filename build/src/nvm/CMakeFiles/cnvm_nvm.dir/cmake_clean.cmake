file(REMOVE_RECURSE
  "CMakeFiles/cnvm_nvm.dir/nvm_device.cc.o"
  "CMakeFiles/cnvm_nvm.dir/nvm_device.cc.o.d"
  "CMakeFiles/cnvm_nvm.dir/wear_leveling.cc.o"
  "CMakeFiles/cnvm_nvm.dir/wear_leveling.cc.o.d"
  "libcnvm_nvm.a"
  "libcnvm_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
