file(REMOVE_RECURSE
  "libcnvm_nvm.a"
)
