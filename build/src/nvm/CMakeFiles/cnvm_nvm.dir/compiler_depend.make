# Empty compiler generated dependencies file for cnvm_nvm.
# This may be replaced when dependencies are built.
