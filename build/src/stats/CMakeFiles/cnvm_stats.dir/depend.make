# Empty dependencies file for cnvm_stats.
# This may be replaced when dependencies are built.
