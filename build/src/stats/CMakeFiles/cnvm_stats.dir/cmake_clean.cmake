file(REMOVE_RECURSE
  "CMakeFiles/cnvm_stats.dir/stats.cc.o"
  "CMakeFiles/cnvm_stats.dir/stats.cc.o.d"
  "libcnvm_stats.a"
  "libcnvm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
