# Empty dependencies file for cnvm_crypto.
# This may be replaced when dependencies are built.
