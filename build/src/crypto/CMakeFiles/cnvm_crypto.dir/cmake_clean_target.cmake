file(REMOVE_RECURSE
  "libcnvm_crypto.a"
)
