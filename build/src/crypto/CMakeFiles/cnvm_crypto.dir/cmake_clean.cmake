file(REMOVE_RECURSE
  "CMakeFiles/cnvm_crypto.dir/aes128.cc.o"
  "CMakeFiles/cnvm_crypto.dir/aes128.cc.o.d"
  "CMakeFiles/cnvm_crypto.dir/ctr_engine.cc.o"
  "CMakeFiles/cnvm_crypto.dir/ctr_engine.cc.o.d"
  "libcnvm_crypto.a"
  "libcnvm_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
