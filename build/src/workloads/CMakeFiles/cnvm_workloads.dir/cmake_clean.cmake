file(REMOVE_RECURSE
  "CMakeFiles/cnvm_workloads.dir/array_swap.cc.o"
  "CMakeFiles/cnvm_workloads.dir/array_swap.cc.o.d"
  "CMakeFiles/cnvm_workloads.dir/btree.cc.o"
  "CMakeFiles/cnvm_workloads.dir/btree.cc.o.d"
  "CMakeFiles/cnvm_workloads.dir/factory.cc.o"
  "CMakeFiles/cnvm_workloads.dir/factory.cc.o.d"
  "CMakeFiles/cnvm_workloads.dir/hash_table.cc.o"
  "CMakeFiles/cnvm_workloads.dir/hash_table.cc.o.d"
  "CMakeFiles/cnvm_workloads.dir/queue.cc.o"
  "CMakeFiles/cnvm_workloads.dir/queue.cc.o.d"
  "CMakeFiles/cnvm_workloads.dir/rbtree.cc.o"
  "CMakeFiles/cnvm_workloads.dir/rbtree.cc.o.d"
  "CMakeFiles/cnvm_workloads.dir/workload.cc.o"
  "CMakeFiles/cnvm_workloads.dir/workload.cc.o.d"
  "libcnvm_workloads.a"
  "libcnvm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
