# Empty compiler generated dependencies file for cnvm_workloads.
# This may be replaced when dependencies are built.
