
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/array_swap.cc" "src/workloads/CMakeFiles/cnvm_workloads.dir/array_swap.cc.o" "gcc" "src/workloads/CMakeFiles/cnvm_workloads.dir/array_swap.cc.o.d"
  "/root/repo/src/workloads/btree.cc" "src/workloads/CMakeFiles/cnvm_workloads.dir/btree.cc.o" "gcc" "src/workloads/CMakeFiles/cnvm_workloads.dir/btree.cc.o.d"
  "/root/repo/src/workloads/factory.cc" "src/workloads/CMakeFiles/cnvm_workloads.dir/factory.cc.o" "gcc" "src/workloads/CMakeFiles/cnvm_workloads.dir/factory.cc.o.d"
  "/root/repo/src/workloads/hash_table.cc" "src/workloads/CMakeFiles/cnvm_workloads.dir/hash_table.cc.o" "gcc" "src/workloads/CMakeFiles/cnvm_workloads.dir/hash_table.cc.o.d"
  "/root/repo/src/workloads/queue.cc" "src/workloads/CMakeFiles/cnvm_workloads.dir/queue.cc.o" "gcc" "src/workloads/CMakeFiles/cnvm_workloads.dir/queue.cc.o.d"
  "/root/repo/src/workloads/rbtree.cc" "src/workloads/CMakeFiles/cnvm_workloads.dir/rbtree.cc.o" "gcc" "src/workloads/CMakeFiles/cnvm_workloads.dir/rbtree.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/cnvm_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/cnvm_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/cnvm_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/cnvm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cnvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cnvm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cnvm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cnvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cnvm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
