# Empty compiler generated dependencies file for cnvm_txn.
# This may be replaced when dependencies are built.
