file(REMOVE_RECURSE
  "CMakeFiles/cnvm_txn.dir/shadow_mem.cc.o"
  "CMakeFiles/cnvm_txn.dir/shadow_mem.cc.o.d"
  "CMakeFiles/cnvm_txn.dir/undo_log.cc.o"
  "CMakeFiles/cnvm_txn.dir/undo_log.cc.o.d"
  "libcnvm_txn.a"
  "libcnvm_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
