file(REMOVE_RECURSE
  "CMakeFiles/cnvm_sim.dir/eventq.cc.o"
  "CMakeFiles/cnvm_sim.dir/eventq.cc.o.d"
  "libcnvm_sim.a"
  "libcnvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
