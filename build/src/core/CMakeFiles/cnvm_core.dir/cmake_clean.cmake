file(REMOVE_RECURSE
  "CMakeFiles/cnvm_core.dir/recovery.cc.o"
  "CMakeFiles/cnvm_core.dir/recovery.cc.o.d"
  "CMakeFiles/cnvm_core.dir/system.cc.o"
  "CMakeFiles/cnvm_core.dir/system.cc.o.d"
  "libcnvm_core.a"
  "libcnvm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
