# Empty dependencies file for cnvm_core.
# This may be replaced when dependencies are built.
