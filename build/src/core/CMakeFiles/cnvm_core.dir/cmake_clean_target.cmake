file(REMOVE_RECURSE
  "libcnvm_core.a"
)
