# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("stats")
subdirs("crypto")
subdirs("mem")
subdirs("nvm")
subdirs("memctl")
subdirs("cpu")
subdirs("persist")
subdirs("txn")
subdirs("workloads")
subdirs("core")
