# Empty dependencies file for cnvm_memctl.
# This may be replaced when dependencies are built.
