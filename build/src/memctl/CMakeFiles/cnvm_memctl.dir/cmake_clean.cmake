file(REMOVE_RECURSE
  "CMakeFiles/cnvm_memctl.dir/counter_cache.cc.o"
  "CMakeFiles/cnvm_memctl.dir/counter_cache.cc.o.d"
  "CMakeFiles/cnvm_memctl.dir/mem_controller.cc.o"
  "CMakeFiles/cnvm_memctl.dir/mem_controller.cc.o.d"
  "libcnvm_memctl.a"
  "libcnvm_memctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_memctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
