file(REMOVE_RECURSE
  "libcnvm_memctl.a"
)
