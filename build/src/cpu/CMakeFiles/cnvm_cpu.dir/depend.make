# Empty dependencies file for cnvm_cpu.
# This may be replaced when dependencies are built.
