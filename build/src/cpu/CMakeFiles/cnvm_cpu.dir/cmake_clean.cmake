file(REMOVE_RECURSE
  "CMakeFiles/cnvm_cpu.dir/core.cc.o"
  "CMakeFiles/cnvm_cpu.dir/core.cc.o.d"
  "libcnvm_cpu.a"
  "libcnvm_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
