file(REMOVE_RECURSE
  "libcnvm_cpu.a"
)
