# Empty compiler generated dependencies file for cnvm_mem.
# This may be replaced when dependencies are built.
