file(REMOVE_RECURSE
  "libcnvm_mem.a"
)
