file(REMOVE_RECURSE
  "CMakeFiles/cnvm_mem.dir/cache.cc.o"
  "CMakeFiles/cnvm_mem.dir/cache.cc.o.d"
  "CMakeFiles/cnvm_mem.dir/core_mem_path.cc.o"
  "CMakeFiles/cnvm_mem.dir/core_mem_path.cc.o.d"
  "libcnvm_mem.a"
  "libcnvm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
