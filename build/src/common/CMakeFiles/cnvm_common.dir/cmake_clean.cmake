file(REMOVE_RECURSE
  "CMakeFiles/cnvm_common.dir/logging.cc.o"
  "CMakeFiles/cnvm_common.dir/logging.cc.o.d"
  "CMakeFiles/cnvm_common.dir/random.cc.o"
  "CMakeFiles/cnvm_common.dir/random.cc.o.d"
  "libcnvm_common.a"
  "libcnvm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
