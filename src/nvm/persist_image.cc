#include "nvm/persist_image.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cnvm
{

void
PersistImage::drainData(Addr line_addr, const LineData &ciphertext,
                        std::uint64_t cipher_counter)
{
    cnvm_assert(isLineAligned(line_addr));
    // Record the superseded triple before overwriting: a persistence-
    // based replay attack needs a *complete* stale (cipher, counter,
    // MAC) snapshot, and this is the only moment it exists. The MAC
    // drained with the old burst is still in macStore here — drainMac()
    // for the new burst only lands after drainData().
    auto it = cipherImage.find(line_addr);
    if (it != cipherImage.end()) {
        auto cc = cipherCounterOf.find(line_addr);
        const std::uint64_t prev =
            cc == cipherCounterOf.end() ? 0 : cc->second;
        if (prev != cipher_counter) {
            StaleTriple &stale = staleTriples[line_addr];
            stale.cipher = it->second;
            stale.counter = prev;
            auto mac = macStore.find(line_addr);
            stale.hasMac = mac != macStore.end();
            stale.mac = stale.hasMac ? mac->second : 0;
        }
    }
    cipherImage[line_addr] = ciphertext;
    cipherCounterOf[line_addr] = cipher_counter;
}

void
PersistImage::drainCounters(Addr ctr_line_addr, const CounterLine &values)
{
    cnvm_assert(isLineAligned(ctr_line_addr));
    counterStore[ctr_line_addr] = values;
}

const LineData *
PersistImage::persistedLine(Addr line_addr) const
{
    auto it = cipherImage.find(line_addr);
    return it == cipherImage.end() ? nullptr : &it->second;
}

CounterLine
PersistImage::persistedCounters(Addr ctr_line_addr) const
{
    auto it = counterStore.find(ctr_line_addr);
    if (it == counterStore.end())
        return CounterLine{};
    return it->second;
}

std::uint64_t
PersistImage::persistedCipherCounter(Addr line_addr) const
{
    auto it = cipherCounterOf.find(line_addr);
    return it == cipherCounterOf.end() ? 0 : it->second;
}

void
PersistImage::drainMac(Addr line_addr, std::uint64_t mac)
{
    cnvm_assert(isLineAligned(line_addr));
    macStore[line_addr] = mac;
}

const std::uint64_t *
PersistImage::persistedMac(Addr line_addr) const
{
    auto it = macStore.find(line_addr);
    return it == macStore.end() ? nullptr : &it->second;
}

void
PersistImage::drainTreeNode(unsigned level, std::uint64_t index,
                            std::uint64_t hash)
{
    cnvm_assert(index < (std::uint64_t(1) << 32));
    treeStore[treeKey(level, index)] = hash;
}

void
PersistImage::drainTreeRoot(std::uint64_t hash)
{
    treeRoot = hash;
    treeRootPresent = true;
}

const std::uint64_t *
PersistImage::persistedTreeNode(unsigned level, std::uint64_t index) const
{
    auto it = treeStore.find(treeKey(level, index));
    return it == treeStore.end() ? nullptr : &it->second;
}

const std::uint64_t *
PersistImage::persistedTreeRoot() const
{
    return treeRootPresent ? &treeRoot : nullptr;
}

std::vector<std::uint64_t>
PersistImage::persistedTreeLeafIndices() const
{
    std::vector<std::uint64_t> indices;
    for (const auto &[key, hash] : treeStore)
        if ((key >> 32) == 1)
            indices.push_back(key & 0xffffffffull);
    std::sort(indices.begin(), indices.end());
    return indices;
}

void
PersistImage::corruptDataLine(Addr line_addr, const LineData &corrupted)
{
    auto it = cipherImage.find(line_addr);
    cnvm_assert(it != cipherImage.end());
    it->second = corrupted;
    faulted.insert(line_addr);
}

void
PersistImage::corruptCounterSlot(Addr ctr_line_addr, unsigned slot,
                                 std::uint64_t value, Addr data_line_addr)
{
    cnvm_assert(slot < countersPerLine);
    counterStore[ctr_line_addr][slot] = value;
    faulted.insert(data_line_addr);
}

bool
PersistImage::lineFaulted(Addr line_addr) const
{
    return faulted.count(line_addr) > 0;
}

bool
PersistImage::lineReplayed(Addr line_addr) const
{
    return replayed.count(line_addr) > 0;
}

bool
PersistImage::replayLine(Addr line_addr, Addr ctr_line_addr,
                         unsigned slot)
{
    cnvm_assert(slot < countersPerLine);
    auto it = staleTriples.find(line_addr);
    if (it == staleTriples.end())
        return false;
    auto cs = counterStore.find(ctr_line_addr);
    const std::uint64_t stored =
        cs == counterStore.end() ? 0 : cs->second[slot];
    // A "replay" to the value already stored would change nothing —
    // undetectable because there is nothing to detect. Skip it so the
    // replayed ground truth only marks lines that really rolled back.
    if (it->second.counter == stored)
        return false;
    cipherImage[line_addr] = it->second.cipher;
    cipherCounterOf[line_addr] = it->second.counter;
    if (it->second.hasMac)
        macStore[line_addr] = it->second.mac;
    else
        macStore.erase(line_addr);
    counterStore[ctr_line_addr][slot] = it->second.counter;
    replayed.insert(line_addr);
    return true;
}

std::vector<Addr>
PersistImage::replayableLineAddrs() const
{
    std::vector<Addr> addrs;
    addrs.reserve(staleTriples.size());
    for (const auto &[addr, stale] : staleTriples)
        addrs.push_back(addr);
    std::sort(addrs.begin(), addrs.end());
    return addrs;
}

std::vector<Addr>
PersistImage::dataLineAddrs() const
{
    std::vector<Addr> addrs;
    addrs.reserve(cipherImage.size());
    for (const auto &[addr, line] : cipherImage)
        addrs.push_back(addr);
    std::sort(addrs.begin(), addrs.end());
    return addrs;
}

std::vector<Addr>
PersistImage::counterLineAddrs() const
{
    std::vector<Addr> addrs;
    addrs.reserve(counterStore.size());
    for (const auto &[addr, values] : counterStore)
        addrs.push_back(addr);
    std::sort(addrs.begin(), addrs.end());
    return addrs;
}

} // namespace cnvm
