#include "nvm/persist_image.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cnvm
{

void
PersistImage::drainData(Addr line_addr, const LineData &ciphertext,
                        std::uint64_t cipher_counter)
{
    cnvm_assert(isLineAligned(line_addr));
    cipherImage[line_addr] = ciphertext;
    cipherCounterOf[line_addr] = cipher_counter;
}

void
PersistImage::drainCounters(Addr ctr_line_addr, const CounterLine &values)
{
    cnvm_assert(isLineAligned(ctr_line_addr));
    counterStore[ctr_line_addr] = values;
}

const LineData *
PersistImage::persistedLine(Addr line_addr) const
{
    auto it = cipherImage.find(line_addr);
    return it == cipherImage.end() ? nullptr : &it->second;
}

CounterLine
PersistImage::persistedCounters(Addr ctr_line_addr) const
{
    auto it = counterStore.find(ctr_line_addr);
    if (it == counterStore.end())
        return CounterLine{};
    return it->second;
}

std::uint64_t
PersistImage::persistedCipherCounter(Addr line_addr) const
{
    auto it = cipherCounterOf.find(line_addr);
    return it == cipherCounterOf.end() ? 0 : it->second;
}

void
PersistImage::drainMac(Addr line_addr, std::uint64_t mac)
{
    cnvm_assert(isLineAligned(line_addr));
    macStore[line_addr] = mac;
}

const std::uint64_t *
PersistImage::persistedMac(Addr line_addr) const
{
    auto it = macStore.find(line_addr);
    return it == macStore.end() ? nullptr : &it->second;
}

void
PersistImage::corruptDataLine(Addr line_addr, const LineData &corrupted)
{
    auto it = cipherImage.find(line_addr);
    cnvm_assert(it != cipherImage.end());
    it->second = corrupted;
    faulted.insert(line_addr);
}

void
PersistImage::corruptCounterSlot(Addr ctr_line_addr, unsigned slot,
                                 std::uint64_t value, Addr data_line_addr)
{
    cnvm_assert(slot < countersPerLine);
    counterStore[ctr_line_addr][slot] = value;
    faulted.insert(data_line_addr);
}

bool
PersistImage::lineFaulted(Addr line_addr) const
{
    return faulted.count(line_addr) > 0;
}

std::vector<Addr>
PersistImage::dataLineAddrs() const
{
    std::vector<Addr> addrs;
    addrs.reserve(cipherImage.size());
    for (const auto &[addr, line] : cipherImage)
        addrs.push_back(addr);
    std::sort(addrs.begin(), addrs.end());
    return addrs;
}

} // namespace cnvm
