#include "nvm/persist_image.hh"

#include "common/logging.hh"

namespace cnvm
{

void
PersistImage::drainData(Addr line_addr, const LineData &ciphertext,
                        std::uint64_t cipher_counter)
{
    cnvm_assert(isLineAligned(line_addr));
    cipherImage[line_addr] = ciphertext;
    cipherCounterOf[line_addr] = cipher_counter;
}

void
PersistImage::drainCounters(Addr ctr_line_addr, const CounterLine &values)
{
    cnvm_assert(isLineAligned(ctr_line_addr));
    counterStore[ctr_line_addr] = values;
}

const LineData *
PersistImage::persistedLine(Addr line_addr) const
{
    auto it = cipherImage.find(line_addr);
    return it == cipherImage.end() ? nullptr : &it->second;
}

CounterLine
PersistImage::persistedCounters(Addr ctr_line_addr) const
{
    auto it = counterStore.find(ctr_line_addr);
    if (it == counterStore.end())
        return CounterLine{};
    return it->second;
}

std::uint64_t
PersistImage::persistedCipherCounter(Addr line_addr) const
{
    auto it = cipherCounterOf.find(line_addr);
    return it == cipherCounterOf.end() ? 0 : it->second;
}

} // namespace cnvm
