#include "nvm/wear_leveling.hh"

#include "common/logging.hh"

namespace cnvm
{

WearStats
WearTracker::stats() const
{
    WearStats s;
    s.linesTouched = writes.size();
    for (const auto &[addr, count] : writes) {
        s.totalWrites += count;
        s.maxWrites = std::max(s.maxWrites, count);
    }
    s.meanWrites = s.linesTouched == 0
        ? 0.0
        : static_cast<double>(s.totalWrites)
              / static_cast<double>(s.linesTouched);
    return s;
}

StartGapRemapper::StartGapRemapper(Addr region_base,
                                   std::uint64_t num_lines,
                                   unsigned gap_interval)
    : base(region_base), lines(num_lines), interval(gap_interval),
      gap(num_lines) // the gap starts past the last logical line
{
    cnvm_assert(isLineAligned(region_base));
    cnvm_assert(num_lines > 0);
    cnvm_assert(gap_interval > 0);
}

Addr
StartGapRemapper::translate(Addr logical_line) const
{
    Addr aligned = lineAlign(logical_line);
    cnvm_assert(aligned >= base);
    std::uint64_t logical = (aligned - base) / lineBytes;
    cnvm_assert(logical < lines);

    std::uint64_t frames = lines + 1;
    std::uint64_t physical = (logical + start) % frames;
    // Frames at or past the gap are shifted by one: the gap is empty.
    if (physical >= gap)
        physical = (physical + 1) % frames;
    return base + physical * lineBytes;
}

Addr
StartGapRemapper::translateWrite(Addr logical_line)
{
    Addr physical = translate(logical_line);
    maybeMoveGap();
    return physical;
}

void
StartGapRemapper::maybeMoveGap()
{
    if (++writesSinceMove < interval)
        return;
    writesSinceMove = 0;

    // The gap walks downward one frame; after visiting every frame the
    // whole mapping has rotated by one line.
    if (gap == 0) {
        gap = lines;
        start = (start + 1) % (lines + 1);
        ++fullRotations;
    } else {
        --gap;
    }
}

} // namespace cnvm
