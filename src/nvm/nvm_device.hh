/**
 * @file
 * The non-volatile main memory device.
 *
 * Two concerns live here:
 *
 *  1. Timing — a banked PCM behind a DDR3-style channel. The memory
 *     controller asks the device to schedule individual line transfers;
 *     the device serializes them over the shared data bus and the
 *     per-bank busy windows and returns completion ticks.
 *
 *  2. Function — three views of memory contents:
 *       - the live plaintext view (program-order state used for fills),
 *       - the persisted ciphertext image, updated only when writes drain
 *         from the controller's queues, and
 *       - the persisted counter store, updated when counter-line writes
 *         drain.
 *     After a simulated power failure, only the latter two survive, and
 *     recovery must decrypt the image with the stored counters
 *     (paper section 2.2.2).
 */

#ifndef CNVM_NVM_NVM_DEVICE_HH
#define CNVM_NVM_NVM_DEVICE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "crypto/ctr_engine.hh"
#include "mem/channel_map.hh"
#include "nvm/nvm_timing.hh"
#include "nvm/persist_image.hh"
#include "stats/stats.hh"

namespace cnvm
{

class NvmDevice
{
  public:
    /**
     * @param timing   per-channel bank timing
     * @param registry stat registry (may be null in unit tests)
     * @param map      address interleaving; each channel gets its own
     *                 bank group of timing.numBanks banks and its own
     *                 data bus. The default single-channel map keeps
     *                 the device timing-identical to the pre-channel
     *                 device.
     */
    explicit NvmDevice(NvmTiming timing,
                       stats::StatRegistry *registry = nullptr,
                       ChannelMap map = ChannelMap{});

    // ------------------------------------------------------------------
    // Timing path
    // ------------------------------------------------------------------

    /**
     * Schedules a line read beginning no earlier than @p now.
     * @return the tick at which read data is available on-chip.
     */
    Tick scheduleRead(Addr addr, Tick now);

    /**
     * Schedules a line write beginning no earlier than @p now.
     * @param bytes payload size on the bus (64, or 72 for the
     *              co-located wide-bus designs)
     * @return the tick at which the burst completes (the drain point:
     *         the write-queue entry may be freed; the bank stays busy
     *         for tWR beyond this).
     */
    Tick scheduleWrite(Addr addr, Tick now, unsigned bytes);

    // ------------------------------------------------------------------
    // Functional: live plaintext view
    // ------------------------------------------------------------------

    /** Current program-order plaintext of a line (zeros if untouched). */
    LineData livePlainRead(Addr line_addr) const;

    /** Program-order plaintext update. */
    void livePlainStore(Addr byte_addr, unsigned size,
                        const std::uint8_t *bytes);

    // ------------------------------------------------------------------
    // Functional: persisted state
    // ------------------------------------------------------------------

    /** @copydoc PersistImage::drainData */
    void
    drainData(Addr line_addr, const LineData &ciphertext,
              std::uint64_t cipher_counter = 0)
    {
        persisted.drainData(line_addr, ciphertext, cipher_counter);
    }

    /** Applies a drained counter-line write to the counter store. */
    void
    drainCounters(Addr ctr_line_addr, const CounterLine &values)
    {
        persisted.drainCounters(ctr_line_addr, values);
    }

    /** @copydoc PersistSource::persistedLine */
    const LineData *
    persistedLine(Addr line_addr) const
    {
        return persisted.persistedLine(line_addr);
    }

    /** @copydoc PersistSource::persistedCounters */
    CounterLine
    persistedCounters(Addr ctr_line_addr) const
    {
        return persisted.persistedCounters(ctr_line_addr);
    }

    /** @copydoc PersistImage::counterLines */
    const std::unordered_map<Addr, CounterLine> &
    persistedCounterLines() const
    {
        return persisted.counterLines();
    }

    /** @copydoc PersistSource::persistedCipherCounter */
    std::uint64_t
    persistedCipherCounter(Addr line_addr) const
    {
        return persisted.persistedCipherCounter(line_addr);
    }

    /** Number of distinct lines present in the persisted image. */
    std::size_t persistedLineCount() const
    { return persisted.lineCount(); }

    /**
     * The whole persisted half of the device, as one object.
     *
     * The const view is the fork-capture entry point: copying it (a
     * sparse copy — cost scales with the touched footprint) plus the
     * controller's ADR overlay is exactly the state recovery may rely
     * on after a power failure at this instant. The accessor has no
     * side effects: no stats counters move and no timing state is
     * touched, so capturing a fork cannot perturb the trunk run.
     */
    const PersistImage &persistedState() const { return persisted; }

    /** Mutable persisted state (the drain paths and the crash path). */
    PersistImage &persistedState() { return persisted; }

    /**
     * Replaces the functional state with a recovered image: the
     * persisted half becomes @p image and the live plaintext view is
     * cleared. The resume path reinstalls the live view from the
     * fast-forwarded workload shadows afterwards — the decrypted image
     * is not authoritative for it, because cache fills merge live-view
     * bytes into partially-persisted lines. Timing state (bank/bus
     * windows) is untouched: a resumed system starts at tick 0 with
     * cold banks, exactly like a freshly built one.
     */
    void
    installPersistedState(PersistImage image)
    {
        persisted = std::move(image);
        livePlain.clear();
    }

    /**
     * Guards the persisted image under the partitioned kernel, where
     * per-channel controller threads drain into the shared device
     * concurrently. Lines interleave across channels at block
     * granularity within the same unordered_map, so concurrent drains
     * can rehash under each other — controllers take this lock around
     * every runtime persisted-image access. The classic single-queue
     * kernel takes it too (uncontended) rather than branch per access.
     */
    std::mutex &imageMutex() const { return imgMutex; }

    /** True if the bank serving @p addr can start a new access now. */
    bool
    bankFree(Addr addr, Tick now) const
    {
        return bankFreeAt[bankOf(addr)] <= now;
    }

    /** Tick at which the bank serving @p addr becomes free. */
    Tick
    bankFreeTick(Addr addr) const
    {
        return bankFreeAt[bankOf(addr)];
    }

    const NvmTiming &timing() const { return params; }
    const ChannelMap &channelMap() const { return chanMap; }

    /**
     * Optional observer invoked for every line write the device
     * services (address, payload bytes). Used by the wear-leveling
     * study to capture write traces without perturbing timing.
     */
    void
    setWriteTraceHook(std::function<void(Addr, unsigned)> hook)
    {
        writeTraceHook = std::move(hook);
    }

    /** Total bytes moved, for the figure-14 write-traffic experiment. */
    std::uint64_t bytesWritten() const
    { return static_cast<std::uint64_t>(writeBytes.value()); }
    std::uint64_t bytesRead() const
    { return static_cast<std::uint64_t>(readBytes.value()); }

  private:
    NvmTiming params;
    ChannelMap chanMap;

    /** Next tick each bank is free to start a new column access
     *  (channel-major: channel * numBanks + bank). */
    std::vector<Tick> bankFreeAt;

    /**
     * Start of each bank's pausable write-recovery window: the busy
     * interval [pausableFrom, bankFreeAt) may be preempted by a read
     * when write pausing is enabled.
     */
    std::vector<Tick> pausableFrom;

    /** Next tick each channel's data bus is free. */
    std::vector<Tick> busFreeAt;

    /** Whether each channel's last bus transfer was a write (tWTR).
     *  One byte per channel, not vector<bool>: per-channel worker
     *  threads write their own element, and bit-packing would turn
     *  those disjoint writes into a data race. */
    std::vector<std::uint8_t> lastWasWrite;

    std::unordered_map<Addr, LineData> livePlain;

    /** Everything that survives a power failure (paper section 2.2.2). */
    PersistImage persisted;

    stats::Scalar readBytes;
    stats::Scalar writeBytes;
    stats::Scalar readsIssued;
    stats::Scalar writesIssued;

    std::function<void(Addr, unsigned)> writeTraceHook;

    /** See imageMutex(). */
    mutable std::mutex imgMutex;

    unsigned bankOf(Addr addr) const;
};

} // namespace cnvm

#endif // CNVM_NVM_NVM_DEVICE_HH
