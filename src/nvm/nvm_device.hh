/**
 * @file
 * The non-volatile main memory device.
 *
 * Two concerns live here:
 *
 *  1. Timing — a banked PCM behind a DDR3-style channel. The memory
 *     controller asks the device to schedule individual line transfers;
 *     the device serializes them over the shared data bus and the
 *     per-bank busy windows and returns completion ticks.
 *
 *  2. Function — three views of memory contents:
 *       - the live plaintext view (program-order state used for fills),
 *       - the persisted ciphertext image, updated only when writes drain
 *         from the controller's queues, and
 *       - the persisted counter store, updated when counter-line writes
 *         drain.
 *     After a simulated power failure, only the latter two survive, and
 *     recovery must decrypt the image with the stored counters
 *     (paper section 2.2.2).
 */

#ifndef CNVM_NVM_NVM_DEVICE_HH
#define CNVM_NVM_NVM_DEVICE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "crypto/ctr_engine.hh"
#include "nvm/nvm_timing.hh"
#include "stats/stats.hh"

namespace cnvm
{

/** Values of one persisted counter line (8 counters of 8 B). */
using CounterLine = std::array<std::uint64_t, countersPerLine>;

class NvmDevice
{
  public:
    /**
     * @param timing   channel/bank timing
     * @param registry stat registry (may be null in unit tests)
     */
    explicit NvmDevice(NvmTiming timing,
                       stats::StatRegistry *registry = nullptr);

    // ------------------------------------------------------------------
    // Timing path
    // ------------------------------------------------------------------

    /**
     * Schedules a line read beginning no earlier than @p now.
     * @return the tick at which read data is available on-chip.
     */
    Tick scheduleRead(Addr addr, Tick now);

    /**
     * Schedules a line write beginning no earlier than @p now.
     * @param bytes payload size on the bus (64, or 72 for the
     *              co-located wide-bus designs)
     * @return the tick at which the burst completes (the drain point:
     *         the write-queue entry may be freed; the bank stays busy
     *         for tWR beyond this).
     */
    Tick scheduleWrite(Addr addr, Tick now, unsigned bytes);

    // ------------------------------------------------------------------
    // Functional: live plaintext view
    // ------------------------------------------------------------------

    /** Current program-order plaintext of a line (zeros if untouched). */
    LineData livePlainRead(Addr line_addr) const;

    /** Program-order plaintext update. */
    void livePlainStore(Addr byte_addr, unsigned size,
                        const std::uint8_t *bytes);

    // ------------------------------------------------------------------
    // Functional: persisted state
    // ------------------------------------------------------------------

    /**
     * Applies a drained data write to the persisted ciphertext image.
     *
     * @param cipher_counter the counter the ciphertext was encrypted
     *        with (0 for unencrypted designs). Simulator-only ground
     *        truth: the crash oracle compares it against the persisted
     *        counter store to detect counter/data divergence without
     *        having to guess from garbage plaintext.
     */
    void drainData(Addr line_addr, const LineData &ciphertext,
                   std::uint64_t cipher_counter = 0);

    /** Applies a drained counter-line write to the counter store. */
    void drainCounters(Addr ctr_line_addr, const CounterLine &values);

    /**
     * Persisted ciphertext of a line, or nullptr if never written
     * (never-written lines decrypt as all-zero plaintext at counter 0).
     */
    const LineData *persistedLine(Addr line_addr) const;

    /** Persisted counter-line values (zeros if never written). */
    CounterLine persistedCounters(Addr ctr_line_addr) const;

    /**
     * The whole persisted counter store. The controller's crash path
     * models recovery's counter-region scan with it, rebuilding the
     * encryption engine's volatile counter registers from persistent
     * state only.
     */
    const std::unordered_map<Addr, CounterLine> &
    persistedCounterLines() const
    {
        return counterStore;
    }

    /**
     * Ground truth for the crash oracle: the counter the persisted
     * ciphertext of @p line_addr was encrypted with (0 if the line was
     * never drained). A recovered line is decryptable iff this equals
     * the matching slot of persistedCounters().
     */
    std::uint64_t persistedCipherCounter(Addr line_addr) const;

    /** Number of distinct lines present in the persisted image. */
    std::size_t persistedLineCount() const { return cipherImage.size(); }

    /** True if the bank serving @p addr can start a new access now. */
    bool
    bankFree(Addr addr, Tick now) const
    {
        return bankFreeAt[bankOf(addr)] <= now;
    }

    /** Tick at which the bank serving @p addr becomes free. */
    Tick
    bankFreeTick(Addr addr) const
    {
        return bankFreeAt[bankOf(addr)];
    }

    const NvmTiming &timing() const { return params; }

    /**
     * Optional observer invoked for every line write the device
     * services (address, payload bytes). Used by the wear-leveling
     * study to capture write traces without perturbing timing.
     */
    void
    setWriteTraceHook(std::function<void(Addr, unsigned)> hook)
    {
        writeTraceHook = std::move(hook);
    }

    /** Total bytes moved, for the figure-14 write-traffic experiment. */
    std::uint64_t bytesWritten() const
    { return static_cast<std::uint64_t>(writeBytes.value()); }
    std::uint64_t bytesRead() const
    { return static_cast<std::uint64_t>(readBytes.value()); }

  private:
    NvmTiming params;

    /** Next tick each bank is free to start a new column access. */
    std::vector<Tick> bankFreeAt;

    /**
     * Start of each bank's pausable write-recovery window: the busy
     * interval [pausableFrom, bankFreeAt) may be preempted by a read
     * when write pausing is enabled.
     */
    std::vector<Tick> pausableFrom;

    /** Next tick the shared data bus is free. */
    Tick busFreeAt = 0;

    /** Whether the last bus transfer was a write (for tWTR). */
    bool lastWasWrite = false;

    std::unordered_map<Addr, LineData> livePlain;
    std::unordered_map<Addr, LineData> cipherImage;
    std::unordered_map<Addr, CounterLine> counterStore;

    /** Counter each persisted ciphertext was encrypted with (oracle
     *  ground truth, not an architectural structure). */
    std::unordered_map<Addr, std::uint64_t> cipherCounterOf;

    stats::Scalar readBytes;
    stats::Scalar writeBytes;
    stats::Scalar readsIssued;
    stats::Scalar writesIssued;

    std::function<void(Addr, unsigned)> writeTraceHook;

    unsigned bankOf(Addr addr) const;
};

} // namespace cnvm

#endif // CNVM_NVM_NVM_DEVICE_HH
