/**
 * @file
 * The persisted half of the NVM device, separated from the timing
 * model so it can be snapshotted.
 *
 * By the paper's recovery model (section 2.2.2), a power failure
 * discards every volatile structure; what recovery works from is
 * exactly the persisted ciphertext image, the persisted counter store,
 * and (simulator-only) the ground-truth record of which counter each
 * ciphertext was encrypted with. PersistImage bundles those three maps
 * behind the PersistSource interface that the recovery engine and the
 * crash oracle consume, so the same classification code runs against
 * the live device after an in-place crash *and* against a PersistFork
 * captured from a still-running trunk simulation.
 */

#ifndef CNVM_NVM_PERSIST_IMAGE_HH
#define CNVM_NVM_PERSIST_IMAGE_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace cnvm
{

/** Values of one persisted counter line (8 counters of 8 B). */
using CounterLine = std::array<std::uint64_t, countersPerLine>;

/**
 * Read-only view of persisted NVM state, sufficient for post-crash
 * recovery and classification. Implemented by PersistImage (and hence
 * by the live device and by captured forks alike).
 */
class PersistSource
{
  public:
    virtual ~PersistSource() = default;

    /**
     * Persisted ciphertext of a line, or nullptr if never written
     * (never-written lines decrypt as all-zero plaintext at counter 0).
     */
    virtual const LineData *persistedLine(Addr line_addr) const = 0;

    /** Persisted counter-line values (zeros if never written). */
    virtual CounterLine persistedCounters(Addr ctr_line_addr) const = 0;

    /**
     * Ground truth for the crash oracle: the counter the persisted
     * ciphertext of @p line_addr was encrypted with (0 if the line was
     * never drained). A recovered line is decryptable iff this equals
     * the matching slot of persistedCounters().
     */
    virtual std::uint64_t persistedCipherCounter(Addr line_addr) const = 0;

    /**
     * Persisted integrity MAC of a line, or nullptr when none was
     * stored (integrity metadata disabled, or the line never drained).
     * Modeled as ECC-spare-bit storage updated atomically with the
     * line's own write burst, so it costs no extra bus traffic.
     */
    virtual const std::uint64_t *persistedMac(Addr line_addr) const = 0;

    /**
     * Simulator-only ground truth: true when an injected media fault
     * corrupted this data line (its ciphertext, or the counter word
     * covering it). Recovery code must never consult this — it exists
     * so the oracle can tell silent corruption from detected.
     */
    virtual bool lineFaulted(Addr line_addr) const = 0;

    /**
     * Simulator-only ground truth: true when an injected replay fault
     * re-installed a stale-but-valid triple on this data line. Like
     * lineFaulted(), recovery code must never consult this — the
     * oracle uses it to tell a silent replay from a detected one.
     */
    virtual bool lineReplayed(Addr line_addr) const = 0;

    /**
     * Every persisted counter-line address, sorted. Recovery's
     * verify-root-first step scans the counter region with it —
     * architecturally legitimate, the counter store is persistent
     * state recovery already walks to rebuild the engine registers.
     */
    virtual std::vector<Addr> counterLineAddrs() const = 0;

    /**
     * Persisted integrity-tree node at (@p level, @p index), or
     * nullptr when none was written (tree disabled, or the subtree
     * untouched — an absent subtree hashes to its zero constant).
     */
    virtual const std::uint64_t *
    persistedTreeNode(unsigned level, std::uint64_t index) const = 0;

    /** Persisted tree root, or nullptr when never flushed. */
    virtual const std::uint64_t *persistedTreeRoot() const = 0;
};

/**
 * The state that survives a power failure: ciphertext image, counter
 * store, and the oracle's cipher-counter record. Copyable — the maps
 * hold only lines ever drained, so a copy is sparse in the region
 * size: its cost scales with the touched footprint, not the address
 * space.
 */
class PersistImage final : public PersistSource
{
  public:
    // ------------------------------------------------------------------
    // Drain-time mutation
    // ------------------------------------------------------------------

    /**
     * Applies a drained data write to the persisted ciphertext image.
     *
     * @param cipher_counter the counter the ciphertext was encrypted
     *        with (0 for unencrypted designs). Simulator-only ground
     *        truth: the crash oracle compares it against the persisted
     *        counter store to detect counter/data divergence without
     *        having to guess from garbage plaintext.
     */
    void drainData(Addr line_addr, const LineData &ciphertext,
                   std::uint64_t cipher_counter = 0);

    /** Applies a drained counter-line write to the counter store. */
    void drainCounters(Addr ctr_line_addr, const CounterLine &values);

    /**
     * Stores the integrity MAC persisted alongside a line's write
     * burst (ECC spare bits). Called by the controller right after
     * drainData() when integrity metadata is enabled.
     */
    void drainMac(Addr line_addr, std::uint64_t mac);

    /**
     * Stores one integrity-tree node (the controller's lazy epoch
     * write-back, the crash flush, or recovery's reconstruction).
     */
    void drainTreeNode(unsigned level, std::uint64_t index,
                       std::uint64_t hash);

    /** Stores the integrity-tree root — always written last. */
    void drainTreeRoot(std::uint64_t hash);

    // ------------------------------------------------------------------
    // Fault injection (FaultModel only)
    // ------------------------------------------------------------------

    /**
     * Replaces a persisted line's ciphertext with corrupted bits and
     * marks the line faulted. The MAC and the oracle's cipher-counter
     * record are left alone: media corruption changes the stored
     * cells, not the history of what was written to them.
     */
    void corruptDataLine(Addr line_addr, const LineData &corrupted);

    /**
     * Overwrites one counter-store word and marks the covered data
     * line (@p data_line_addr) faulted.
     */
    void corruptCounterSlot(Addr ctr_line_addr, unsigned slot,
                            std::uint64_t value, Addr data_line_addr);

    /**
     * Re-installs the stale-but-valid triple recorded the last time
     * @p line_addr was overwritten at a new counter: the old
     * ciphertext, the old MAC, and the old counter value written back
     * into the store word (@p ctr_line_addr / @p slot). The whole
     * triple is internally consistent, so the per-line MAC verifies —
     * only the integrity tree can tell the counter was rolled back.
     *
     * Returns false (and changes nothing) when the line was never
     * overwritten, or when the recorded counter equals the currently
     * stored one — a no-op replay would be undetectable *and*
     * harmless, so the fault model skips it. The line is deliberately
     * NOT marked faulted: a replay is the stealthy case the faulted
     * ground truth must not conflate with media corruption.
     */
    bool replayLine(Addr line_addr, Addr ctr_line_addr, unsigned slot);

    /**
     * Every data line with a recorded stale triple, sorted — the
     * fault model's replay-victim candidate list.
     */
    std::vector<Addr> replayableLineAddrs() const;

    // ------------------------------------------------------------------
    // PersistSource
    // ------------------------------------------------------------------

    const LineData *persistedLine(Addr line_addr) const override;
    CounterLine persistedCounters(Addr ctr_line_addr) const override;
    std::uint64_t persistedCipherCounter(Addr line_addr) const override;
    const std::uint64_t *persistedMac(Addr line_addr) const override;
    bool lineFaulted(Addr line_addr) const override;
    bool lineReplayed(Addr line_addr) const override;
    std::vector<Addr> counterLineAddrs() const override;
    const std::uint64_t *
    persistedTreeNode(unsigned level, std::uint64_t index) const override;
    const std::uint64_t *persistedTreeRoot() const override;

    /** Sorted indices of the persisted level-1 (counter-block) tree
     *  nodes — rebuildTree()'s interior recomputation domain. */
    std::vector<std::uint64_t> persistedTreeLeafIndices() const;

    /** Number of data lines an injected replay rolled back. */
    std::size_t replayedLineCount() const { return replayed.size(); }

    /**
     * The whole persisted counter store. The controller's crash path
     * models recovery's counter-region scan with it, rebuilding the
     * encryption engine's volatile counter registers from persistent
     * state only.
     */
    const std::unordered_map<Addr, CounterLine> &
    counterLines() const
    {
        return counterStore;
    }

    /** Number of distinct lines present in the persisted image. */
    std::size_t lineCount() const { return cipherImage.size(); }

    /** Number of data lines an injected fault corrupted. */
    std::size_t faultedLineCount() const { return faulted.size(); }

    /**
     * Forgets the fault-injection ground truth (the faulted/replayed
     * marks), keeping the stored bytes exactly as the faults left
     * them. The soak driver calls this when a recovered image becomes
     * the next cycle's resume state: each cycle's oracle verdict must
     * attribute only that cycle's dose, not re-litigate corruption an
     * earlier recovery already detected, repaired or tombstoned. The
     * stale-triple attack surface is deliberately kept — replay
     * attacks may span crash cycles.
     */
    void
    clearFaultGroundTruth()
    {
        faulted.clear();
        replayed.clear();
    }

    /**
     * Every persisted data-line address, sorted. The fault model draws
     * victims from this list — hash-map iteration order would make
     * fault placement differ between otherwise identical sweeps.
     */
    std::vector<Addr> dataLineAddrs() const;

  private:
    /** The triple a data line held before its last overwrite at a new
     *  counter — the replay attack's raw material. */
    struct StaleTriple
    {
        LineData cipher{};
        std::uint64_t counter = 0;
        std::uint64_t mac = 0;
        bool hasMac = false;
    };

    /** Packed (level, index) key of one persisted tree node. */
    static std::uint64_t
    treeKey(unsigned level, std::uint64_t index)
    {
        return (static_cast<std::uint64_t>(level) << 32) | index;
    }

    std::unordered_map<Addr, LineData> cipherImage;
    std::unordered_map<Addr, CounterLine> counterStore;

    /** Counter each persisted ciphertext was encrypted with (oracle
     *  ground truth, not an architectural structure). */
    std::unordered_map<Addr, std::uint64_t> cipherCounterOf;

    /** Per-line integrity MACs (ECC spare bits), when enabled. */
    std::unordered_map<Addr, std::uint64_t> macStore;

    /** Persisted integrity-tree nodes, keyed by treeKey(). */
    std::unordered_map<std::uint64_t, std::uint64_t> treeStore;

    /** Persisted integrity-tree root (valid iff treeRootPresent). */
    std::uint64_t treeRoot = 0;
    bool treeRootPresent = false;

    /** Data lines corrupted by injected faults (oracle ground truth). */
    std::unordered_set<Addr> faulted;

    /** Last superseded triple per overwritten line (attack surface). */
    std::unordered_map<Addr, StaleTriple> staleTriples;

    /** Data lines an injected replay rolled back (oracle ground
     *  truth — recovery code must never consult it). */
    std::unordered_set<Addr> replayed;
};

} // namespace cnvm

#endif // CNVM_NVM_PERSIST_IMAGE_HH
