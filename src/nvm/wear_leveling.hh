/**
 * @file
 * NVM lifetime modelling: per-line wear tracking and Start-Gap wear
 * leveling (Qureshi et al., MICRO 2009 — the paper's reference [38]).
 *
 * Section 6.3.3 of the paper argues that reducing write traffic
 * improves NVMM lifetime "assuming a uniform wear-leveling technique".
 * This module makes that claim measurable: a WearTracker accumulates
 * per-line write counts from the device's write trace, and a
 * StartGapRemapper shows how rotation flattens a skewed trace (such as
 * the undo log's hot header line) toward the uniform assumption.
 */

#ifndef CNVM_NVM_WEAR_LEVELING_HH
#define CNVM_NVM_WEAR_LEVELING_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace cnvm
{

/** Aggregate wear statistics over a set of lines. */
struct WearStats
{
    std::uint64_t linesTouched = 0;
    std::uint64_t totalWrites = 0;
    std::uint64_t maxWrites = 0;
    double meanWrites = 0;

    /**
     * Endurance-limited lifetime relative to a perfectly uniform
     * spread: mean/max. 1.0 means no hot spot; small values mean a few
     * lines wear out long before the rest.
     */
    double
    uniformity() const
    {
        return maxWrites == 0 ? 1.0 : meanWrites / maxWrites;
    }
};

/** Accumulates per-line write counts. */
class WearTracker
{
  public:
    /** Records one line write. */
    void
    record(Addr line_addr)
    {
        ++writes[lineAlign(line_addr)];
    }

    /** Writes observed for one line. */
    std::uint64_t
    writesTo(Addr line_addr) const
    {
        auto it = writes.find(lineAlign(line_addr));
        return it == writes.end() ? 0 : it->second;
    }

    WearStats stats() const;

    void clear() { writes.clear(); }

  private:
    std::unordered_map<Addr, std::uint64_t> writes;
};

/**
 * Start-Gap wear leveling over one region of N lines.
 *
 * The region owns N + 1 physical line frames; one is the gap. Every
 * `gapInterval` writes, the gap moves one slot, rotating the
 * logical-to-physical mapping by one line over time. Combined with a
 * static randomization of the start, this spreads hot logical lines
 * over all physical frames. The algebraic mapping below is the
 * classical formulation:
 *
 *   physical(l) = (l + start) mod (N + 1), skipping the gap frame.
 */
class StartGapRemapper
{
  public:
    /**
     * @param region_base  first logical line address
     * @param num_lines    region size in lines (N)
     * @param gap_interval writes between gap movements (paper [38]
     *                     uses 100)
     */
    StartGapRemapper(Addr region_base, std::uint64_t num_lines,
                     unsigned gap_interval = 100);

    /**
     * Translates a logical line address and accounts for one write
     * (which may move the gap).
     */
    Addr translateWrite(Addr logical_line);

    /** Translation without wear accounting (reads). */
    Addr translate(Addr logical_line) const;

    /** Number of completed full rotations of the gap. */
    std::uint64_t rotations() const { return fullRotations; }

    std::uint64_t gapPosition() const { return gap; }
    std::uint64_t startOffset() const { return start; }

  private:
    Addr base;
    std::uint64_t lines;      //!< N logical lines over N+1 frames
    unsigned interval;
    std::uint64_t writesSinceMove = 0;
    std::uint64_t gap;        //!< physical frame index of the gap
    std::uint64_t start = 0;  //!< rotation offset
    std::uint64_t fullRotations = 0;

    void maybeMoveGap();
};

} // namespace cnvm

#endif // CNVM_NVM_WEAR_LEVELING_HH
