#include "nvm/fault_model.hh"

#include <algorithm>
#include <sstream>

#include "common/hash.hh"
#include "common/logging.hh"

namespace cnvm
{

FaultSpec
FaultSpec::forPoint(std::size_t plan_index) const
{
    FaultSpec s = *this;
    s.seed = fnv1aU64(static_cast<std::uint64_t>(plan_index) + 1,
                      fnv1aU64(seed));
    return s;
}

std::string
FaultSpec::describe() const
{
    if (!any())
        return "";
    std::ostringstream os;
    os << " +f(t" << tornWrites << ",b" << bitFlips << ",c"
       << counterFaults << ",a" << adrDrops;
    if (replays > 0)
        os << ",p" << replays;
    os << ",s" << seed << ")";
    return os.str();
}

FaultSpec
FaultSpec::allKinds(std::uint64_t seed)
{
    FaultSpec s;
    s.tornWrites = 1;
    s.bitFlips = 1;
    s.counterFaults = 1;
    s.adrDrops = 4;
    s.seed = seed;
    return s;
}

FaultSpec
FaultSpec::allKindsWithReplays(std::uint64_t seed)
{
    FaultSpec s = allKinds(seed);
    s.replays = 2;
    return s;
}

FaultModel::FaultModel(const FaultSpec &spec, Addr counter_region_base)
    : spec(spec), counterRegionBase(counter_region_base), rng(spec.seed)
{
}

unsigned
FaultModel::adrDropCount(unsigned ready_entries)
{
    if (spec.adrDrops == 0)
        return 0;
    // Draw before clamping so the RNG stream does not depend on queue
    // occupancy — Replay and Fork capture the same instant, but keeping
    // the draw unconditional makes the invariant obvious.
    auto drop = static_cast<unsigned>(rng.below(spec.adrDrops + 1));
    return std::min(drop, ready_entries);
}

void
FaultModel::applyMediaFaults(PersistImage &img)
{
    if (spec.tornWrites == 0 && spec.bitFlips == 0
        && spec.counterFaults == 0 && spec.replays == 0)
        return;

    // Victims come from the sorted persisted-line list: unordered_map
    // iteration order would break Replay/Fork fingerprint identity.
    std::vector<Addr> lines = img.dataLineAddrs();
    if (lines.empty())
        return;

    auto victim = [&]() { return lines[rng.below(lines.size())]; };

    // Torn intra-line writes: a word prefix persisted, the tail holds
    // stale bits (modeled as uniform garbage — the previous cell
    // contents are not tracked at this granularity).
    constexpr unsigned wordsPerLine = lineBytes / 8;
    for (unsigned n = 0; n < spec.tornWrites; ++n) {
        Addr addr = victim();
        LineData torn = *img.persistedLine(addr);
        auto persisted_words =
            1 + static_cast<unsigned>(rng.below(wordsPerLine - 1));
        for (unsigned b = persisted_words * 8; b < lineBytes; ++b)
            torn[b] = static_cast<std::uint8_t>(rng.next());
        img.corruptDataLine(addr, torn);
    }

    // Media bit flips: 1-3 cells of a line flip.
    for (unsigned n = 0; n < spec.bitFlips; ++n) {
        Addr addr = victim();
        LineData flipped = *img.persistedLine(addr);
        auto flips = 1 + static_cast<unsigned>(rng.below(3));
        for (unsigned f = 0; f < flips; ++f) {
            auto bit = static_cast<unsigned>(rng.below(lineBytes * 8));
            flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
        img.corruptDataLine(addr, flipped);
    }

    // Counter-store faults: the word covering a victim data line either
    // rolls back (an older value reappears) or turns to garbage. Both
    // leave the ciphertext current, so decryption with the stored
    // counter yields garbage plaintext (paper equation 4) with nothing
    // in the data line itself to betray it. Skipped when the design
    // persists no counters (nothing to corrupt).
    if (!img.counterLines().empty()) {
        for (unsigned n = 0; n < spec.counterFaults; ++n) {
            Addr addr = victim();
            std::uint64_t line_index = addr / lineBytes;
            Addr ctr_addr = counterRegionBase
                + line_index / countersPerLine * lineBytes;
            auto slot =
                static_cast<unsigned>(line_index % countersPerLine);
            std::uint64_t cur = img.persistedCounters(ctr_addr)[slot];

            bool rollback = cur > 0 && rng.chancePct(50);
            std::uint64_t bad = rollback
                ? cur - rng.range(1, std::min<std::uint64_t>(cur, 4))
                : (rng.next() | 1);
            img.corruptCounterSlot(ctr_addr, slot, bad, addr);
        }
    }

    // Replay faults, drawn strictly after the media kinds so a
    // replay-free spec consumes exactly the historical RNG stream.
    // Victims come from the sorted list of lines with a recorded stale
    // triple; from each draw the model probes forward (wrapping) for a
    // line where the replay actually lands — skipping already-faulted
    // lines (a replay atop media corruption is not stealthy) and
    // no-op replays replayLine() refuses.
    if (spec.replays > 0) {
        std::vector<Addr> candidates = img.replayableLineAddrs();
        if (candidates.empty())
            return;
        for (unsigned n = 0; n < spec.replays; ++n) {
            const std::size_t start = rng.below(candidates.size());
            for (std::size_t probe = 0; probe < candidates.size();
                 ++probe) {
                const Addr addr =
                    candidates[(start + probe) % candidates.size()];
                if (img.lineFaulted(addr) || img.lineReplayed(addr))
                    continue;
                const std::uint64_t line_index = addr / lineBytes;
                const Addr ctr_addr = counterRegionBase
                    + line_index / countersPerLine * lineBytes;
                const auto slot = static_cast<unsigned>(
                    line_index % countersPerLine);
                if (img.replayLine(addr, ctr_addr, slot))
                    break;
            }
        }
    }
}

} // namespace cnvm
