/**
 * @file
 * Media-fault injection beneath the crash model.
 *
 * Every crash the sweep explores is, by default, a *clean* power
 * failure: the ADR drain completes perfectly and every persisted bit is
 * exact. Real NVM dies are not that polite — capacitance budgets run
 * out mid-drain, cells flip, and counter-store words land torn — and
 * the paper's counter-atomicity argument only covers the clean case.
 * The fault model injects the dirty cases at crash capture time:
 *
 *  - torn intra-line writes: only a prefix of a line's 8 B words
 *    persists; the tail holds stale bits,
 *  - media bit-flips in persisted data lines,
 *  - counter-store corruption and rollback (a counter word holds
 *    garbage, or an old value, while its ciphertext is current),
 *  - dropped ADR entries: the energy budget dies before the drain
 *    finishes, losing the tail of the ready-entry drain order.
 *
 * Faults are seeded and deterministic per plan point: the same
 * FaultSpec applied to the same persisted image mutates it
 * identically, in Replay and Fork sweep modes alike, at any job
 * count. Victim lines are chosen from the *sorted* persisted address
 * list, never from hash-map iteration order, which is what makes the
 * sweep fingerprint reproducible.
 *
 * Injected corruptions are recorded in the image as simulator-only
 * ground truth (PersistImage::lineFaulted), which is how the crash
 * oracle can tell a *silent* corruption (recovery saw nothing) from a
 * detected one. ADR drops are deliberately not marked: losing a ready
 * entry is a legitimate persistence outcome whose divergence the
 * counter census and the integrity scan already surface.
 */

#ifndef CNVM_NVM_FAULT_MODEL_HH
#define CNVM_NVM_FAULT_MODEL_HH

#include <cstdint>
#include <string>

#include "common/random.hh"
#include "common/types.hh"
#include "nvm/persist_image.hh"

namespace cnvm
{

/**
 * One crash point's fault dose. Default-constructed = no faults (the
 * clean power failure every existing test and fingerprint assumes).
 */
struct FaultSpec
{
    /** Persisted data lines whose tail words are torn off. */
    unsigned tornWrites = 0;

    /** Persisted data lines taking 1-3 random bit flips. */
    unsigned bitFlips = 0;

    /** Counter-store words corrupted (garbage) or rolled back. */
    unsigned counterFaults = 0;

    /** Upper bound of ready ADR entries lost off the drain tail
     *  (the model draws the actual loss uniformly from [0, adrDrops]). */
    unsigned adrDrops = 0;

    /**
     * Persisted data lines whose last superseded (cipher, counter,
     * MAC) triple is re-installed whole — the persistence-based
     * replay attack. The triple is internally consistent, so per-line
     * MACs verify; only the integrity tree can catch it.
     */
    unsigned replays = 0;

    /** Seed of the point's private fault RNG. */
    std::uint64_t seed = 0;

    /** True when any fault kind is enabled. */
    bool
    any() const
    {
        return tornWrites > 0 || bitFlips > 0 || counterFaults > 0
            || adrDrops > 0 || replays > 0;
    }

    /**
     * The per-point spec: same dose, private seed derived from the
     * base seed and the plan index, so points draw independent fault
     * streams while the whole sweep stays a pure function of
     * (config, base seed).
     */
    FaultSpec forPoint(std::size_t plan_index) const;

    /** " +f(t..,b..,c..,a..,s..)" — empty when !any(), and the replay
     *  field ",p.." appears only when replays are dosed. Appended to
     *  CrashSpec::describe(), so fault sweeps fingerprint distinctly
     *  while clean and replay-free sweeps keep their historical
     *  fingerprints byte for byte. */
    std::string describe() const;

    /** Every fault kind at a moderate dose (the CLI's --faults all). */
    static FaultSpec allKinds(std::uint64_t seed);

    /** allKinds() plus a replay dose (the CLI's --replays). */
    static FaultSpec allKindsWithReplays(std::uint64_t seed);
};

/**
 * Applies one FaultSpec to one captured persisted image. The two
 * entry points must be called in a fixed order — adrDropCount() first,
 * then applyMediaFaults() — because they share the RNG stream; the
 * System crash and fork-capture paths both follow it.
 */
class FaultModel
{
  public:
    /**
     * @param spec the dose and seed
     * @param counter_region_base the controller's counter address-space
     *        base, needed to map a victim data line to its counter
     *        store word (MemCtlConfig::counterRegionBase)
     */
    FaultModel(const FaultSpec &spec, Addr counter_region_base);

    /**
     * Number of ready ADR entries the dying energy budget fails to
     * drain, uniform in [0, spec.adrDrops] clamped to @p ready_entries.
     * Call exactly once, before applyMediaFaults().
     */
    unsigned adrDropCount(unsigned ready_entries);

    /**
     * Mutates @p img in place: torn tails, bit flips and counter
     * faults on victims drawn from the sorted persisted line list.
     * Corrupted lines are marked as ground truth for the oracle.
     */
    void applyMediaFaults(PersistImage &img);

  private:
    FaultSpec spec;
    Addr counterRegionBase;
    Random rng;
};

} // namespace cnvm

#endif // CNVM_NVM_FAULT_MODEL_HH
