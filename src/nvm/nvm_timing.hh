/**
 * @file
 * Timing parameters of the simulated PCM main memory (paper Table 2).
 */

#ifndef CNVM_NVM_NVM_TIMING_HH
#define CNVM_NVM_NVM_TIMING_HH

#include "common/types.hh"

namespace cnvm
{

/**
 * DDR3-interface PCM timing. All values in ticks (ps).
 *
 * Table 2: 8 GB PCM at 533 MHz, tRCD/tCL/tCWD/tFAW/tWTR/tWR =
 * 48/15/13/50/7.5/300 ns.
 */
struct NvmTiming
{
    Tick tRCD = nsToTicks(48);   //!< row activate to column command
    Tick tCL = nsToTicks(15);    //!< column command to first data beat
    Tick tCWD = nsToTicks(13);   //!< write command to first data beat
    Tick tFAW = nsToTicks(50);   //!< four-activate window (approximated)
    Tick tWTR = nsToTicks(7.5);  //!< write-to-read bus turnaround
    Tick tWR = nsToTicks(300);   //!< PCM write recovery (cell programming)
    Tick tBurst = nsToTicks(7.5);//!< 8-beat burst of one line

    /**
     * Bank-level parallelism of the DIMM: 8 GB over four ranks of
     * eight banks. PCM writes occupy a bank for tWR, so this is the
     * write-bandwidth knob.
     */
    unsigned numBanks = 32;

    /**
     * PCM write pausing: a read may interrupt a bank's in-progress
     * write recovery (cell programming) after this re-arbitration
     * delay; the paused recovery resumes afterwards. Standard for PCM
     * controllers, and what keeps write latency off the read critical
     * path (paper section 6.3.6 notes writes are "usually not on the
     * critical path").
     */
    bool writePause = true;
    Tick tPause = nsToTicks(7.5);

    /** Table 2 defaults. */
    static NvmTiming pcm() { return NvmTiming{}; }

    /**
     * Scales the array read path (tRCD + tCL) and the write path
     * (tCWD + tWR) for the figure-17 latency sweeps.
     */
    NvmTiming
    scaled(double read_mult, double write_mult) const
    {
        NvmTiming t = *this;
        t.tRCD = static_cast<Tick>(tRCD * read_mult);
        t.tCL = static_cast<Tick>(tCL * read_mult);
        t.tCWD = static_cast<Tick>(tCWD * write_mult);
        t.tWR = static_cast<Tick>(tWR * write_mult);
        return t;
    }
};

} // namespace cnvm

#endif // CNVM_NVM_NVM_TIMING_HH
