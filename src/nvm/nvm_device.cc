#include "nvm/nvm_device.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace cnvm
{

NvmDevice::NvmDevice(NvmTiming timing, stats::StatRegistry *registry,
                     ChannelMap map)
    : params(timing),
      chanMap(map),
      bankFreeAt(std::size_t(map.channels) * timing.numBanks, 0),
      pausableFrom(std::size_t(map.channels) * timing.numBanks, 0),
      busFreeAt(map.channels, 0),
      lastWasWrite(map.channels, false),
      readBytes("nvm.bytes_read", "bytes read from NVMM"),
      writeBytes("nvm.bytes_written", "bytes written to NVMM"),
      readsIssued("nvm.reads", "line reads issued to NVMM"),
      writesIssued("nvm.writes", "line writes issued to NVMM")
{
    cnvm_assert(timing.numBanks > 0);
    cnvm_assert(isPowerOfTwo(map.channels));
    if (registry != nullptr) {
        registry->registerStat(readBytes);
        registry->registerStat(writeBytes);
        registry->registerStat(readsIssued);
        registry->registerStat(writesIssued);
    }
}

unsigned
NvmDevice::bankOf(Addr addr) const
{
    unsigned bank =
        static_cast<unsigned>((addr / lineBytes) % params.numBanks);
    return chanMap.channelOf(addr) * params.numBanks + bank;
}

Tick
NvmDevice::scheduleRead(Addr addr, Tick now)
{
    unsigned bank = bankOf(addr);
    unsigned ch = bank / params.numBanks;

    // A bank busy with write recovery may be paused after tPause; the
    // suspended programming resumes once the read completes.
    Tick bank_avail = bankFreeAt[bank];
    bool paused = false;
    if (params.writePause && bank_avail > now) {
        Tick pause_entry =
            std::max(now, pausableFrom[bank]) + params.tPause;
        if (pause_entry < bank_avail) {
            bank_avail = pause_entry;
            paused = true;
        }
    }

    Tick start = std::max(now, bank_avail);
    Tick data_ready = start + params.tRCD + params.tCL;
    // Write-to-read turnaround penalty on the channel's shared bus.
    Tick bus_earliest =
        busFreeAt[ch] + (lastWasWrite[ch] ? params.tWTR : 0);
    Tick burst_start = std::max(data_ready, bus_earliest);
    Tick done = burst_start + params.tBurst;

    busFreeAt[ch] = done;
    if (paused) {
        // The interrupted recovery still owes its remaining time.
        bankFreeAt[bank] += done - start;
        // The resumed programming is pausable again only after it has
        // run for tPause past this read; leaving the old (already
        // elapsed) mark in place would let back-to-back reads preempt
        // the same write with no re-entry delay at all.
        pausableFrom[bank] = done;
    } else {
        bankFreeAt[bank] = done;
        pausableFrom[bank] = done;
    }
    lastWasWrite[ch] = false;

    ++readsIssued;
    readBytes += lineBytes;
    return done;
}

Tick
NvmDevice::scheduleWrite(Addr addr, Tick now, unsigned bytes)
{
    unsigned bank = bankOf(addr);
    unsigned ch = bank / params.numBanks;

    Tick start = std::max(now, bankFreeAt[bank]);
    Tick burst_start = std::max(start + params.tCWD, busFreeAt[ch]);
    // DDR bursts are fixed-length (BL8): even a partial counter-line
    // write occupies a full burst frame on the bus, although only the
    // touched bytes count as traffic and programming effort.
    Tick burst_end = burst_start + params.tBurst;

    busFreeAt[ch] = burst_end;
    // The PCM cell programming keeps the bank busy well past the
    // burst; that recovery window is pausable by reads. Programming
    // time scales with the payload: PCM writes proceed in
    // power-budget-limited chunks, so a partial counter-line write
    // programs fewer cells.
    Tick recovery = std::max<Tick>(params.tWR * bytes / lineBytes,
                                   params.tWR / 8);
    bankFreeAt[bank] = burst_end + recovery;
    pausableFrom[bank] = burst_end;
    lastWasWrite[ch] = true;

    ++writesIssued;
    writeBytes += bytes;
    if (writeTraceHook)
        writeTraceHook(lineAlign(addr), bytes);
    return burst_end;
}

LineData
NvmDevice::livePlainRead(Addr line_addr) const
{
    cnvm_assert(isLineAligned(line_addr));
    auto it = livePlain.find(line_addr);
    if (it == livePlain.end())
        return LineData{};
    return it->second;
}

void
NvmDevice::livePlainStore(Addr byte_addr, unsigned size,
                          const std::uint8_t *bytes)
{
    Addr line_addr = lineAlign(byte_addr);
    cnvm_assert(byte_addr + size <= line_addr + lineBytes);
    LineData &line = livePlain[line_addr];
    std::memcpy(line.data() + (byte_addr - line_addr), bytes, size);
}

} // namespace cnvm
