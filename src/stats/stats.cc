#include "stats/stats.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cnvm::stats
{

void
Stat::dump(std::ostream &os) const
{
    os << _name << " " << value() << " # " << _desc << "\n";
}

Histogram::Histogram(std::string name, std::string desc,
                     std::uint64_t bucket_width, std::size_t num_buckets)
    : Stat(std::move(name), std::move(desc)),
      width(bucket_width),
      buckets(num_buckets + 1, 0)
{
    cnvm_assert(bucket_width > 0);
    cnvm_assert(num_buckets > 0);
}

void
Histogram::sample(std::uint64_t v)
{
    std::size_t idx = std::min<std::size_t>(v / width, buckets.size() - 1);
    ++buckets[idx];
    ++samples;
    sum += static_cast<double>(v);
    if (samples == 1) {
        minv = maxv = v;
    } else {
        minv = std::min(minv, v);
        maxv = std::max(maxv, v);
    }
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    samples = 0;
    sum = 0;
    minv = 0;
    maxv = 0;
}

void
Histogram::dump(std::ostream &os) const
{
    os << name() << "::count " << samples << " # " << desc() << "\n";
    os << name() << "::mean " << mean() << "\n";
    // An unsampled histogram has no extremes: dump "-" instead of a
    // fabricated 0 (indistinguishable from a real zero-valued sample).
    if (samples == 0) {
        os << name() << "::min -\n";
        os << name() << "::max -\n";
    } else {
        os << name() << "::min " << minValue() << "\n";
        os << name() << "::max " << maxValue() << "\n";
    }
    // Per-bucket counts, the actual distribution; the saturating last
    // bucket dumps as ::overflow.
    for (std::size_t i = 0; i + 1 < buckets.size(); ++i) {
        os << name() << "::bucket_" << i << " " << buckets[i] << " # ["
           << i * width << ", " << (i + 1) * width << ")\n";
    }
    os << name() << "::overflow " << buckets.back() << " # [>= "
       << (buckets.size() - 1) * width << "]\n";
}

void
StatRegistry::registerStat(Stat &stat)
{
    auto [it, inserted] = byName.emplace(stat.name(), &stat);
    if (!inserted)
        cnvm_panic("duplicate stat name '%s'", stat.name().c_str());
    order.push_back(&stat);
}

void
StatRegistry::registerAlias(const std::string &alias,
                            const std::string &target)
{
    auto tgt = byName.find(target);
    if (tgt == byName.end())
        cnvm_panic("alias '%s' targets unknown stat '%s'", alias.c_str(),
                   target.c_str());
    auto [it, inserted] = byName.emplace(alias, tgt->second);
    if (!inserted)
        cnvm_panic("duplicate stat name '%s'", alias.c_str());
}

void
StatRegistry::aliasPrefix(const std::string &canonical_prefix,
                          const std::string &alias_prefix)
{
    // Collect first: inserting aliases while walking byName would
    // revisit them.
    std::vector<const Stat *> matches;
    for (const Stat *stat : order) {
        if (stat->name().rfind(canonical_prefix, 0) == 0)
            matches.push_back(stat);
    }
    for (const Stat *stat : matches) {
        registerAlias(
            alias_prefix + stat->name().substr(canonical_prefix.size()),
            stat->name());
    }
}

const Stat *
StatRegistry::find(const std::string &name) const
{
    auto it = byName.find(name);
    return it == byName.end() ? nullptr : it->second;
}

double
StatRegistry::lookup(const std::string &name) const
{
    const Stat *stat = find(name);
    if (stat == nullptr)
        cnvm_fatal("unknown stat '%s'", name.c_str());
    return stat->value();
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const Stat *stat : order)
        stat->dump(os);
}

void
StatRegistry::resetAll()
{
    for (Stat *stat : order)
        stat->reset();
}

} // namespace cnvm::stats
