/**
 * @file
 * Lightweight statistics package.
 *
 * Models own their stats as member objects and register them with the
 * system's StatRegistry; benches and tests read them back by name.
 */

#ifndef CNVM_STATS_STATS_HH
#define CNVM_STATS_STATS_HH

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace cnvm::stats
{

class StatRegistry;

/** Base class: a named, self-describing statistic. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Primary numeric value of the stat (counters: the count). */
    virtual double value() const = 0;

    /** Resets the stat to its initial state. */
    virtual void reset() = 0;

    /** Writes "name value # desc" style lines. */
    virtual void dump(std::ostream &os) const;

  private:
    std::string _name;
    std::string _desc;
};

/**
 * A monotonically adjustable scalar counter.
 *
 * Accumulates in a uint64/double split: whole non-negative increments
 * land in an exact 64-bit integer, everything else in a double
 * remainder. A pure counter therefore never loses increments to
 * floating-point rounding — a double accumulator silently absorbs ++
 * once it passes 2^53 — while fractional adds keep their historical
 * behavior. value() (and hence dump()) still reports the combined
 * double, so the text format is unchanged.
 *
 * The integer half is a relaxed atomic: the partitioned kernel
 * (--sim-jobs) increments shared-device counters (e.g. the NVM byte
 * totals) from per-channel worker threads. Integer addition commutes,
 * so the final counts are independent of host interleaving — reads
 * happen either single-threaded or at barriers where workers are
 * quiescent. Fractional adds stay non-atomic; they only occur on
 * coordinator-owned stats.
 */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &
    operator++()
    {
        whole.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }

    Scalar &
    operator+=(double v)
    {
        // Integer fast path: exact accumulation for counter-style
        // adds. 2^64 is the largest increment the integer half can
        // take without overflowing on its own.
        double ip;
        if (v >= 0 && std::modf(v, &ip) == 0.0 && ip < 18446744073709551616.0)
            whole.fetch_add(static_cast<std::uint64_t>(ip),
                            std::memory_order_relaxed);
        else
            frac += v;
        return *this;
    }

    void
    set(double v)
    {
        whole.store(0, std::memory_order_relaxed);
        frac = 0;
        *this += v;
    }

    double
    value() const override
    {
        return static_cast<double>(whole.load(std::memory_order_relaxed))
               + frac;
    }

    /**
     * The exact integer accumulation. For a stat only ever touched by
     * ++ and whole-valued +=, this is the exact count even past 2^53,
     * where value()'s double correctly rounds.
     */
    std::uint64_t
    exactCount() const
    {
        return whole.load(std::memory_order_relaxed);
    }

    void
    reset() override
    {
        whole.store(0, std::memory_order_relaxed);
        frac = 0;
    }

  private:
    std::atomic<std::uint64_t> whole{0};
    double frac = 0;
};

/** A derived value computed on demand from other stats. */
class Formula : public Stat
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> compute)
        : Stat(std::move(name), std::move(desc)),
          compute(std::move(compute))
    {}

    double value() const override { return compute(); }
    void reset() override {}

  private:
    std::function<double()> compute;
};

/**
 * Fixed-width linear histogram with saturating overflow bucket;
 * also tracks count / sum / min / max for mean and extremes.
 */
class Histogram : public Stat
{
  public:
    /**
     * @param bucket_width width of each bucket
     * @param num_buckets  number of regular buckets before the overflow one
     */
    Histogram(std::string name, std::string desc,
              std::uint64_t bucket_width, std::size_t num_buckets);

    /** Records one sample. */
    void sample(std::uint64_t v);

    std::uint64_t count() const { return samples; }
    double mean() const { return samples ? sum / samples : 0.0; }
    std::uint64_t minValue() const { return samples ? minv : 0; }
    std::uint64_t maxValue() const { return maxv; }

    /** Count in bucket @p i (the last bucket collects overflow). */
    std::uint64_t bucketCount(std::size_t i) const { return buckets.at(i); }
    std::size_t numBuckets() const { return buckets.size(); }

    double value() const override { return mean(); }
    void reset() override;
    void dump(std::ostream &os) const override;

  private:
    std::uint64_t width;
    std::vector<std::uint64_t> buckets;
    std::uint64_t samples = 0;
    double sum = 0;
    std::uint64_t minv = 0;
    std::uint64_t maxv = 0;
};

/**
 * Owner of a system's stats. Stats register on construction via
 * registerStat() and must outlive the registry's last use.
 */
class StatRegistry
{
  public:
    /** Adds a stat; the name must be unique within the registry. */
    void registerStat(Stat &stat);

    /**
     * Registers @p alias as an alternate lookup name for an
     * already-registered stat named @p target. Aliases resolve through
     * find()/lookup() but never appear in dump() or all() — dumps show
     * canonical names only.
     */
    void registerAlias(const std::string &alias, const std::string &target);

    /**
     * Registers a legacy-prefix alias for every stat whose canonical
     * name starts with @p canonical_prefix: the prefix is rewritten to
     * @p alias_prefix. Used to keep the historical flat channel-0 stat
     * names (e.g. "memctl.data_inserts") resolvable now that dumps use
     * the uniform "memctl.ch0." form.
     */
    void aliasPrefix(const std::string &canonical_prefix,
                     const std::string &alias_prefix);

    /** Finds a stat by exact name; returns nullptr if absent. */
    const Stat *find(const std::string &name) const;

    /** Value of a named stat; fatal if the stat does not exist. */
    double lookup(const std::string &name) const;

    /** Dumps all stats in registration order. */
    void dump(std::ostream &os) const;

    /** Resets every registered stat. */
    void resetAll();

    const std::vector<Stat *> &all() const { return order; }

  private:
    std::map<std::string, Stat *> byName;
    std::vector<Stat *> order;
};

} // namespace cnvm::stats

#endif // CNVM_STATS_STATS_HH
