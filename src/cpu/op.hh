/**
 * @file
 * The operation stream a simulated core executes.
 *
 * Workloads are trace-driven with functional payloads: the data
 * structure logic runs host-side and emits a stream of memory
 * operations (with real store bytes) that the timing model executes.
 */

#ifndef CNVM_CPU_OP_HH
#define CNVM_CPU_OP_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace cnvm
{

/** Kinds of operations a core can execute. */
enum class OpType
{
    Load,     //!< blocking line read
    Store,    //!< write-allocate store of 1..64 bytes within a line
    Clwb,     //!< cache-line writeback (no invalidate), non-blocking
    CtrWb,    //!< counter_cache_writeback() for the covering counter line
    Fence,    //!< sfence: wait for outstanding Clwb/CtrWb acceptance
    Compute,  //!< spend N core cycles
};

/** One operation. */
struct Op
{
    OpType type = OpType::Compute;
    Addr addr = 0;
    unsigned size = 0;
    bool counterAtomic = false;
    Cycles cycles = 0;
    std::array<std::uint8_t, lineBytes> bytes{};

    static Op
    load(Addr addr)
    {
        Op op;
        op.type = OpType::Load;
        op.addr = addr;
        return op;
    }

    static Op
    store(Addr addr, const void *data, unsigned size, bool ca = false)
    {
        cnvm_assert(size > 0 && size <= lineBytes);
        cnvm_assert(lineAlign(addr) == lineAlign(addr + size - 1));
        Op op;
        op.type = OpType::Store;
        op.addr = addr;
        op.size = size;
        op.counterAtomic = ca;
        std::memcpy(op.bytes.data(), data, size);
        return op;
    }

    static Op
    clwb(Addr addr)
    {
        Op op;
        op.type = OpType::Clwb;
        op.addr = addr;
        return op;
    }

    static Op
    ctrwb(Addr addr)
    {
        Op op;
        op.type = OpType::CtrWb;
        op.addr = addr;
        return op;
    }

    static Op
    fence()
    {
        Op op;
        op.type = OpType::Fence;
        return op;
    }

    static Op
    compute(Cycles cycles)
    {
        Op op;
        op.type = OpType::Compute;
        op.cycles = cycles;
        return op;
    }
};

/**
 * Produces the operation stream for one core, one batch (typically one
 * transaction) at a time.
 */
class OpSource
{
  public:
    virtual ~OpSource() = default;

    /**
     * Appends the next batch of operations to @p out.
     * @return false when the stream is exhausted (nothing appended).
     */
    virtual bool next(std::vector<Op> &out) = 0;
};

} // namespace cnvm

#endif // CNVM_CPU_OP_HH
