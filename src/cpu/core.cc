#include "cpu/core.hh"

#include "common/logging.hh"
#include "sim/one_shot.hh"

namespace cnvm
{

namespace
{

std::string
statName(unsigned core, const char *leaf)
{
    return "core" + std::to_string(core) + "." + leaf;
}

} // anonymous namespace

Core::Core(EventQueue &eq, ClockDomain clock, CoreMemPath &mem,
           OpSource &source, unsigned core_id,
           stats::StatRegistry *registry)
    : Clocked(eq, clock),
      loads(statName(core_id, "loads"), "load operations executed"),
      stores(statName(core_id, "stores"), "store operations executed"),
      clwbs(statName(core_id, "clwbs"), "clwb operations executed"),
      ctrwbs(statName(core_id, "ctrwbs"),
             "counter_cache_writeback operations executed"),
      fences(statName(core_id, "fences"), "sfence operations executed"),
      computeOps(statName(core_id, "compute_ops"),
                 "compute delay operations executed"),
      fenceStallTicks(statName(core_id, "fence_stall_ticks"),
                      "ticks spent blocked at sfences"),
      mem(mem),
      source(source),
      id(core_id)
{
    if (registry != nullptr) {
        registry->registerStat(loads);
        registry->registerStat(stores);
        registry->registerStat(clwbs);
        registry->registerStat(ctrwbs);
        registry->registerStat(fences);
        registry->registerStat(computeOps);
        registry->registerStat(fenceStallTicks);
    }
}

std::function<void()>
Core::guarded(std::function<void()> fn)
{
    std::uint64_t captured = epoch;
    return [this, captured, fn = std::move(fn)]() {
        if (!halted && captured == epoch)
            fn();
    };
}

void
Core::start()
{
    scheduleAt(eventq, curTick(), guarded([this]() { step(); }));
}

void
Core::halt()
{
    halted = true;
    ++epoch;
}

void
Core::advance(Cycles cycles)
{
    scheduleAfter(eventq, cyclesToTicks(cycles),
                  guarded([this]() { step(); }));
}

void
Core::persistDone()
{
    cnvm_assert(outstandingPersists > 0);
    --outstandingPersists;
    if (outstandingPersists == 0) {
        if (fenceBlocked) {
            fenceBlocked = false;
            fenceStallTicks += static_cast<double>(curTick()
                                                   - fenceStallStart);
            advance(1);
        } else {
            maybeFinish();
        }
    }
}

void
Core::maybeFinish()
{
    if (!isFinished && sourceDone && pending.empty()
        && outstandingPersists == 0) {
        isFinished = true;
        finishTick = curTick();
        if (onFinished)
            onFinished();
    }
}

void
Core::step()
{
    if (halted || isFinished)
        return;

    if (pending.empty()) {
        std::vector<Op> batch;
        if (!source.next(batch)) {
            sourceDone = true;
            maybeFinish();
            return;
        }
        cnvm_assert(!batch.empty());
        pending.insert(pending.end(), batch.begin(), batch.end());
    }

    Op op = pending.front();
    pending.pop_front();

    switch (op.type) {
      case OpType::Load:
        ++loads;
        mem.load(op.addr, guarded([this]() { advance(1); }));
        return;

      case OpType::Store:
        ++stores;
        mem.store(op.addr, op.size, op.bytes.data(), op.counterAtomic,
                  guarded([this]() { advance(1); }));
        return;

      case OpType::Clwb:
        ++clwbs;
        ++outstandingPersists;
        mem.clwb(op.addr, guarded([this]() { persistDone(); }));
        advance(1);
        return;

      case OpType::CtrWb:
        ++ctrwbs;
        ++outstandingPersists;
        mem.ctrwb(op.addr, guarded([this]() { persistDone(); }));
        advance(1);
        return;

      case OpType::Fence:
        ++fences;
        if (outstandingPersists == 0) {
            advance(1);
        } else {
            fenceBlocked = true;
            fenceStallStart = curTick();
        }
        return;

      case OpType::Compute:
        ++computeOps;
        advance(op.cycles > 0 ? op.cycles : 1);
        return;
    }
    cnvm_panic("unhandled op type");
}

} // namespace cnvm
