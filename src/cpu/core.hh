/**
 * @file
 * A simple in-order core executing an operation stream.
 *
 * Loads and store misses block; stores retire into the L1 in one cycle
 * on a hit; clwb and counter_cache_writeback are issued asynchronously
 * and tracked so that an sfence blocks until every outstanding persist
 * has been accepted into the ADR domain (Intel persistency semantics,
 * paper section 6.1).
 */

#ifndef CNVM_CPU_CORE_HH
#define CNVM_CPU_CORE_HH

#include <deque>
#include <functional>

#include "cpu/op.hh"
#include "mem/core_mem_path.hh"
#include "sim/clocked.hh"
#include "stats/stats.hh"

namespace cnvm
{

class Core : public Clocked
{
  public:
    Core(EventQueue &eq, ClockDomain clock, CoreMemPath &mem,
         OpSource &source, unsigned core_id,
         stats::StatRegistry *registry);

    /** Begins executing the op stream. */
    void start();

    /** True once the op stream is exhausted and all persists accepted. */
    bool finished() const { return isFinished; }

    /** Invoked once when the core finishes. */
    void setOnFinished(std::function<void()> cb) { onFinished = cb; }

    /** Stops execution immediately (power failure). */
    void halt();

    /** Tick at which the core finished (valid once finished()). */
    Tick finishedAt() const { return finishTick; }

    unsigned coreId() const { return id; }

    stats::Scalar loads;
    stats::Scalar stores;
    stats::Scalar clwbs;
    stats::Scalar ctrwbs;
    stats::Scalar fences;
    stats::Scalar computeOps;
    stats::Scalar fenceStallTicks;

  private:
    CoreMemPath &mem;
    OpSource &source;
    unsigned id;

    std::deque<Op> pending;
    unsigned outstandingPersists = 0;
    bool fenceBlocked = false;
    Tick fenceStallStart = 0;
    bool halted = false;
    bool isFinished = false;
    bool sourceDone = false;
    Tick finishTick = 0;

    /**
     * Invalidation token: callbacks captured before a halt() compare
     * against this and become no-ops afterwards.
     */
    std::uint64_t epoch = 0;

    std::function<void()> onFinished;

    void step();
    void advance(Cycles cycles);
    void persistDone();
    void maybeFinish();

    /** Wraps a continuation so it is dropped after halt(). */
    std::function<void()> guarded(std::function<void()> fn);
};

} // namespace cnvm

#endif // CNVM_CPU_CORE_HH
