/**
 * @file
 * Arming power failures at arbitrary controller states.
 *
 * The paper's claim is about crashes at *any* memory-controller state,
 * but a runtime-fraction crash point can only ever hit states that are
 * long-lived. The injector closes that gap: a CrashSpec names either an
 * absolute tick or the Nth occurrence of a semantic controller event
 * (Nth data-queue drain, Nth dirty counter eviction, a write sitting in
 * the encryption pipeline, the Nth ready-bit pairing), and the injector
 * fires the system's power-failure path exactly there.
 *
 * Firing is deferred through the event queue at minimum priority: the
 * hook that observes the triggering event runs deep inside controller
 * code, and tearing the controller down under its own feet would
 * corrupt the very state the sweep wants to examine. Scheduling at the
 * current tick crashes "immediately after the triggering action",
 * before any other pending model activity of the same tick.
 */

#ifndef CNVM_CORE_CRASH_INJECTOR_HH
#define CNVM_CORE_CRASH_INJECTOR_HH

#include <functional>
#include <optional>
#include <string>

#include "memctl/mem_controller.hh"
#include "sim/eventq.hh"
#include "sim/trigger.hh"

namespace cnvm
{

/** How a crash point is addressed. */
enum class CrashTriggerKind
{
    AtTick,        //!< power failure at an absolute tick
    PipelineEnter, //!< as the Nth write enters the encryption pipeline
    PairAction,    //!< right after the Nth ready-bit pairing action
    DirtyEviction, //!< at the Nth dirty counter-cache eviction
    DataDrain,     //!< after the Nth data write-queue drain
    CtrDrain,      //!< after the Nth counter write-queue drain
};

const char *crashTriggerName(CrashTriggerKind kind);

/** The controller event a semantic trigger kind watches (none for
 *  AtTick). */
std::optional<CtlEvent> ctlEventFor(CrashTriggerKind kind);

/** One crash point. */
struct CrashSpec
{
    CrashTriggerKind kind = CrashTriggerKind::AtTick;

    /** Crash tick (AtTick only). */
    Tick tick = 0;

    /** Occurrence ordinal, 1-based (semantic kinds only). */
    std::uint64_t count = 1;

    static CrashSpec
    atTick(Tick t)
    {
        CrashSpec s;
        s.kind = CrashTriggerKind::AtTick;
        s.tick = t;
        return s;
    }

    static CrashSpec
    atEvent(CrashTriggerKind kind, std::uint64_t nth)
    {
        CrashSpec s;
        s.kind = kind;
        s.count = nth;
        return s;
    }

    /** "tick 123456" / "pair-action #7", for reports and fingerprints. */
    std::string describe() const;
};

/**
 * Arms one CrashSpec against one run. The owning System wires
 * onCtlEvent() into MemController::setEventHook() for semantic specs
 * and calls start() before the run; the injector invokes the supplied
 * fire callback (System::doCrash) at most once.
 */
class CrashInjector
{
  public:
    CrashInjector(EventQueue &eq, const CrashSpec &spec,
                  std::function<void()> fire);

    /** Schedules the tick trigger (no-op for semantic specs). */
    void start();

    /** Observer for MemController semantic events. */
    void onCtlEvent(CtlEvent ev);

    /** Cancels a not-yet-fired crash (run completed first). */
    void disarm();

    /** True once the power failure has been delivered. */
    bool fired() const { return didFire; }

    const CrashSpec &spec() const { return armedSpec; }

  private:
    /** Schedules the failure for the current tick (idempotent). */
    void fireSoon();

    EventQueue &eventq;
    CrashSpec armedSpec;
    std::function<void()> fire;
    CountdownTrigger trigger;
    EventFunctionWrapper crashEvent;
    bool didFire = false;
};

} // namespace cnvm

#endif // CNVM_CORE_CRASH_INJECTOR_HH
