/**
 * @file
 * Arming power failures at arbitrary controller states.
 *
 * The paper's claim is about crashes at *any* memory-controller state,
 * but a runtime-fraction crash point can only ever hit states that are
 * long-lived. The injector closes that gap: a CrashSpec names either an
 * absolute tick or the Nth occurrence of a semantic controller event
 * (Nth data-queue drain, Nth dirty counter eviction, a write sitting in
 * the encryption pipeline, the Nth ready-bit pairing), and the injector
 * fires the system's power-failure path exactly there.
 *
 * One injector arms any number of CrashSpecs against a single run. The
 * classic use is one spec whose fire callback tears the system down
 * (System::doCrash); the fork-based sweep instead arms the *whole
 * plan* and fires a side-effect-free capture callback per spec, so the
 * run keeps going — each spec still fires at exactly the tick and
 * ordinal it would have fired at alone, because observing events and
 * capturing forks perturbs nothing.
 *
 * Firing is deferred through the event queue at minimum priority: the
 * hook that observes the triggering event runs deep inside controller
 * code, and tearing the controller down (or snapshotting it) under its
 * own feet would corrupt the very state the sweep wants to examine.
 * Scheduling at the current tick crashes "immediately after the
 * triggering action", before any other pending model activity of the
 * same tick.
 */

#ifndef CNVM_CORE_CRASH_INJECTOR_HH
#define CNVM_CORE_CRASH_INJECTOR_HH

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "memctl/mem_controller.hh"
#include "nvm/fault_model.hh"
#include "sim/eventq.hh"

namespace cnvm
{

/** How a crash point is addressed. */
enum class CrashTriggerKind
{
    AtTick,        //!< power failure at an absolute tick
    PipelineEnter, //!< as the Nth write enters the encryption pipeline
    PairAction,    //!< right after the Nth ready-bit pairing action
    DirtyEviction, //!< at the Nth dirty counter-cache eviction
    DataDrain,     //!< after the Nth data write-queue drain
    CtrDrain,      //!< after the Nth counter write-queue drain
};

const char *crashTriggerName(CrashTriggerKind kind);

/** The controller event a semantic trigger kind watches (none for
 *  AtTick). */
std::optional<CtlEvent> ctlEventFor(CrashTriggerKind kind);

/** One crash point. */
struct CrashSpec
{
    CrashTriggerKind kind = CrashTriggerKind::AtTick;

    /** Crash tick (AtTick only). */
    Tick tick = 0;

    /** Occurrence ordinal, 1-based (semantic kinds only). */
    std::uint64_t count = 1;

    /**
     * Persistence faults injected at this crash point (none by
     * default — the clean power failure). Applied by the System's
     * crash and fork-capture paths, never by the injector itself.
     */
    FaultSpec faults;

    static CrashSpec
    atTick(Tick t)
    {
        CrashSpec s;
        s.kind = CrashTriggerKind::AtTick;
        s.tick = t;
        return s;
    }

    static CrashSpec
    atEvent(CrashTriggerKind kind, std::uint64_t nth)
    {
        CrashSpec s;
        s.kind = kind;
        s.count = nth;
        return s;
    }

    /** "tick 123456" / "pair-action #7", for reports and fingerprints. */
    std::string describe() const;
};

/**
 * Arms one or more CrashSpecs against one run. The owning System wires
 * onCtlEvent() into MemController::setEventHook() when any spec is
 * semantic and calls start() before the run; the injector invokes the
 * supplied fire callback (with the index of the triggering spec) at
 * most once per spec. Specs are independent: each fires at its own
 * tick/ordinal regardless of how many others fired first.
 */
class CrashInjector
{
  public:
    /** Per-spec fire callback: receives the index into specs(). */
    using FireFn = std::function<void(std::size_t)>;

    CrashInjector(EventQueue &eq, std::vector<CrashSpec> specs,
                  FireFn fire);

    /** Single-spec convenience (the classic teardown use). */
    CrashInjector(EventQueue &eq, const CrashSpec &spec,
                  std::function<void()> fire);

    /** Schedules the tick triggers (no-op for semantic specs). */
    void start();

    /**
     * Immediate-fire mode for the partitioned kernel: semantic
     * triggers invoke the fire callback synchronously instead of
     * scheduling a deferred event. The partitioned System replays
     * controller events at window barriers — the controllers are
     * already quiescent there, so the deferral that protects the
     * in-loop case is unnecessary, and scheduling at the coordinator's
     * (stale) current tick would be wrong.
     */
    void setImmediateFire(bool on) { immediateFire = on; }

    /** Observer for MemController semantic events. */
    void onCtlEvent(CtlEvent ev);

    /** Cancels every not-yet-fired spec (run completed first). */
    void disarm();

    /** True once any spec's power failure has been delivered. */
    bool fired() const { return firedCount > 0; }

    /** True once spec @p i has been delivered. */
    bool fired(std::size_t i) const { return armed.at(i).didFire; }

    /** Number of specs that have been delivered. */
    std::size_t deliveredCount() const { return firedCount; }

    /** True when any armed spec watches semantic controller events. */
    bool wantsCtlEvents() const { return semanticSpecs > 0; }

    std::size_t specCount() const { return armed.size(); }
    const CrashSpec &spec(std::size_t i = 0) const
    { return armed.at(i).spec; }

  private:
    /** One armed spec and its deferred-firing event. */
    struct Armed
    {
        CrashSpec spec;
        std::unique_ptr<EventFunctionWrapper> fireEvent;
        bool didFire = false;
    };

    /** Schedules spec @p i's failure for the current tick. */
    void fireSoon(std::size_t i);

    EventQueue &eventq;
    FireFn fire;
    std::vector<Armed> armed;
    std::size_t firedCount = 0;
    std::size_t semanticSpecs = 0;
    bool disarmed = false;
    bool immediateFire = false;

    /** Occurrences of each CtlEvent observed so far. */
    std::array<std::uint64_t, numCtlEvents> seen{};

    /**
     * Pending semantic specs, per watched event: ordinal -> spec
     * index. A multimap because a plan may legitimately contain
     * duplicate points (kind and ordinal both equal); each duplicate
     * fires once, at the same instant.
     */
    std::array<std::multimap<std::uint64_t, std::size_t>, numCtlEvents>
        pendingByEvent;
};

} // namespace cnvm

#endif // CNVM_CORE_CRASH_INJECTOR_HH
