#include "core/recovery.hh"

#include <algorithm>
#include <cstring>
#include <memory>

#include "common/logging.hh"
#include "core/recovery_crash.hh"
#include "integrity/integrity_tree.hh"
#include "runner/runner.hh"

namespace cnvm
{

RecoveredImage::RecoveredImage(const PersistSource &src,
                               const MemController &ctl)
    : src(src), ctl(ctl)
{
    // Verify-root-first: one bottom-up recomputation of the tree root
    // from the persisted counter store, compared against the persisted
    // root. The per-line replay check below is armed only on a
    // mismatch, so the clean-crash fast path pays one scan and zero
    // per-line tree lookups.
    if (ctl.config().integrityTree) {
        const std::uint64_t *root = src.persistedTreeRoot();
        treeArmed = root != nullptr;
        treeMismatch = treeArmed
            && computeTreeRoot(src, ctl.config().counterRegionBase)
                   != *root;
    }
}

RecoveredImage::RecoveredImage(const NvmDevice &nvm,
                               const MemController &ctl)
    : RecoveredImage(nvm.persistedState(), ctl)
{
}

RecoveredImage::VerifiedLine
RecoveredImage::verifyLine(Addr line_addr) const
{
    const LineData *cipher = src.persistedLine(line_addr);
    const bool encrypted = ctl.design() != DesignPoint::NoEncryption;
    VerifiedLine v;

    // A cell that was never written holds the all-zero plaintext
    // encrypted at counter 0.
    LineData cipher_bytes;
    if (cipher != nullptr) {
        cipher_bytes = *cipher;
    } else if (encrypted) {
        cipher_bytes = ctl.engine().encrypt(line_addr, 0, LineData{});
    } else {
        cipher_bytes = LineData{};
    }

    std::uint64_t counter = !encrypted ? 0
        : src.persistedCounters(ctl.counterLineAddr(line_addr))
              [ctl.counterSlot(line_addr)];

    // Verify before trusting: when integrity metadata is persisted,
    // the stored MAC must accept the (stored counter, ciphertext)
    // pair. Never-drained lines carry no MAC and nothing persisted to
    // corrupt, so they are exempt.
    if (ctl.config().integrityMac && cipher != nullptr) {
        const std::uint64_t *node = !treeArmed ? nullptr
            : src.persistedTreeNode(0, line_addr / lineBytes);
        const std::uint64_t *mac = src.persistedMac(line_addr);
        if (mac != nullptr
            && ctl.engine().lineMac(line_addr, counter, cipher_bytes)
                   != *mac) {
            v.detected = true;
            // Osiris-style repair: the true counter is usually near
            // the stored one (a rolled-back counter word, or a torn
            // pair whose ciphertext is a few generations off), so
            // trial-verify a bounded window around the stored value.
            // The search is multi-match aware — the MAC is truncated,
            // so two window counters can collide; when they do, the
            // integrity tree's level-0 node arbitrates, and with no
            // tree to ask the line is quarantined rather than repaired
            // to a guess (see repairCounterWindow).
            auto verifies = [&](std::uint64_t c) {
                return ctl.engine().lineMac(line_addr, c, cipher_bytes)
                    == *mac;
            };
            std::function<bool(std::uint64_t)> confirms;
            if (node != nullptr)
                confirms = [node](std::uint64_t c) {
                    return treeSlotHash(c) == *node;
                };
            std::optional<std::uint64_t> fixed = repairCounterWindow(
                counter, ctl.config().macRepairWindow, verifies,
                confirms);
            if (!fixed) {
                // Unrepairable (or ambiguous): quarantine — the line
                // reads as zeros, and recovery reports it rather than
                // consuming garbage. An undo-log rollback may yet
                // restore it.
                v.quarantined = true;
                return v;
            }
            counter = *fixed;
            v.repaired = true;
        } else if (treeMismatch && node != nullptr
                   && treeSlotHash(counter) != *node) {
            // The MAC verified but the tree rejects the stored
            // counter: a stale-but-valid triple was re-installed
            // whole — a replay, which no per-line check can see.
            // Quarantine it like a corruption; an intact log backup
            // may still restore the line.
            v.replayed = true;
            v.quarantined = true;
            return v;
        }
    }

    if (!encrypted) {
        v.plain = cipher_bytes;
        return v;
    }

    // Equation 3: plaintext = OTP(addr, stored counter) xor ciphertext.
    // If the stored counter does not match the counter the data was
    // encrypted with, this produces garbage (equation 4).
    v.plain = ctl.engine().decrypt(line_addr, counter, cipher_bytes);
    return v;
}

std::unordered_map<Addr, LineData>::iterator
RecoveredImage::install(Addr line_addr, const VerifiedLine &v) const
{
    detected += v.detected;
    repaired += v.repaired;
    replays += v.replayed;
    if (v.quarantined)
        quarantine.insert(line_addr);
    return cache.emplace(line_addr, v.plain).first;
}

void
RecoveredImage::preScan(Addr base, Addr end, WorkPool *pool,
                        RecoveryCrashInjector *crash) const
{
    const std::size_t nlines =
        static_cast<std::size_t>((end - base) / lineBytes);

    // Fixed shard size, independent of the job count: the shard
    // boundaries (and with them every merge decision) are a property
    // of the region alone, so jobs=1 and jobs=N walk identical state.
    constexpr std::size_t shardLines = 256;
    const std::size_t nshards = (nlines + shardLines - 1) / shardLines;

    auto scanShard = [&](std::size_t s) {
        const std::size_t lo = s * shardLines;
        const std::size_t hi = std::min(nlines, lo + shardLines);
        std::vector<VerifiedLine> out;
        out.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i)
            out.push_back(verifyLine(base + i * lineBytes));
        return out;
    };

    std::vector<std::vector<VerifiedLine>> shards;
    if (pool != nullptr && pool->jobs() > 1) {
        shards = pool->map<std::vector<VerifiedLine>>(nshards, scanShard);
    } else {
        shards.reserve(nshards);
        for (std::size_t s = 0; s < nshards; ++s)
            shards.push_back(scanShard(s));
    }

    // Merge in shard order — address order — exactly as the serial
    // loop would have: same counters, same quarantine set, same cache
    // contents, same injector event sequence at any job count.
    std::size_t i = 0;
    for (const std::vector<VerifiedLine> &shard : shards) {
        for (const VerifiedLine &v : shard) {
            install(base + i * lineBytes, v);
            ++i;
            if (crash != nullptr)
                crash->onEvent(RecoveryEvent::PreScanLine);
        }
    }
}

LineData &
RecoveredImage::cachedLine(Addr line_addr) const
{
    auto it = cache.find(line_addr);
    if (it == cache.end())
        it = install(line_addr, verifyLine(line_addr));
    return it->second;
}

void
RecoveredImage::read(Addr addr, unsigned size, void *out) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (size > 0) {
        Addr line_addr = lineAlign(addr);
        unsigned offset = static_cast<unsigned>(addr - line_addr);
        unsigned chunk = std::min(size, lineBytes - offset);
        std::memcpy(dst, cachedLine(line_addr).data() + offset, chunk);
        dst += chunk;
        addr += chunk;
        size -= chunk;
    }
}

void
RecoveredImage::write(Addr addr, const void *data, unsigned size)
{
    const auto *src = static_cast<const std::uint8_t *>(data);
    while (size > 0) {
        Addr line_addr = lineAlign(addr);
        unsigned offset = static_cast<unsigned>(addr - line_addr);
        unsigned chunk = std::min(size, lineBytes - offset);
        std::memcpy(cachedLine(line_addr).data() + offset, src, chunk);
        src += chunk;
        addr += chunk;
        size -= chunk;
    }
}

LineData
RecoveredImage::line(Addr line_addr) const
{
    return cachedLine(lineAlign(line_addr));
}

std::vector<Addr>
RecoveredImage::quarantinedLineAddrs() const
{
    std::vector<Addr> out(quarantine.begin(), quarantine.end());
    std::sort(out.begin(), out.end());
    return out;
}

RecoveryEngine::RecoveryEngine(const PersistSource &src,
                               const MemController &ctl)
    : src(src), ctl(ctl)
{
}

RecoveryEngine::RecoveryEngine(const NvmDevice &nvm,
                               const MemController &ctl)
    : RecoveryEngine(nvm.persistedState(), ctl)
{
}

const char *
recoveryFailureName(RecoveryFailure reason)
{
    switch (reason) {
      case RecoveryFailure::None: return "none";
      case RecoveryFailure::LogHeaderUnreadable:
        return "log-header-unreadable";
      case RecoveryFailure::TornCommitFlag: return "torn-commit-flag";
      case RecoveryFailure::LogDescriptorInvalid:
        return "log-descriptor-invalid";
      case RecoveryFailure::QuarantinedLines:
        return "quarantined-lines";
      case RecoveryFailure::StructureInvalid:
        return "structure-invalid";
      case RecoveryFailure::NoCommittedPrefix:
        return "no-committed-prefix";
    }
    return "?";
}

void
RecoveryEngine::persistLine(const RecoveredImage &image, Addr line_addr,
                            PersistImage &out) const
{
    const LineData plain = image.line(line_addr);
    const bool encrypted = ctl.design() != DesignPoint::NoEncryption;

    // Re-encrypt at the line's *stored* counter: the counter store is
    // never advanced by recovery, so a re-run derives the same
    // (counter, ciphertext, MAC) triple and rewrites identical bytes
    // — the property the interrupted-recovery idempotence gate pins.
    std::uint64_t counter = 0;
    LineData cipher = plain;
    if (encrypted) {
        counter = src.persistedCounters(ctl.counterLineAddr(line_addr))
                      [ctl.counterSlot(line_addr)];
        cipher = ctl.engine().encrypt(line_addr, counter, plain);
    }
    out.drainData(line_addr, cipher, counter);
    if (ctl.config().integrityMac)
        out.drainMac(line_addr,
                     ctl.engine().lineMac(line_addr, counter, cipher));
    // Refresh the line's level-0 tree node to match the stored counter
    // the restoration re-encrypted at. Without this, a replayed line
    // restored by rollback keeps tree evidence against its (now
    // legitimate) content, and a recovery re-run after an interrupted
    // tree reconstruction would re-quarantine it with the log already
    // invalidated — breaking idempotence.
    if (ctl.config().integrityTree)
        out.drainTreeNode(0, line_addr / lineBytes,
                          treeSlotHash(counter));
}

RecoveryReport
RecoveryEngine::recover(const Workload &workload,
                        const std::vector<std::uint64_t> *digests_in,
                        const RecoveryOptions &opt)
{
    RecoveryReport report;
    RecoveredImage image(src, ctl);

    // Integrity pre-scan: verify every region line's MAC up front, so
    // no corruption can hide in a line the log/validate/digest pipeline
    // happens not to read. Mismatches repair or quarantine here; the
    // later stages then run on a verified (or explicitly degraded)
    // image. Sharded over the pool when one is configured.
    if (ctl.config().integrityMac) {
        WorkPool *pool = opt.pool;
        std::unique_ptr<WorkPool> local;
        if (pool == nullptr && opt.jobs != 1) {
            local = std::make_unique<WorkPool>(opt.jobs);
            pool = local.get();
        }
        image.preScan(workload.regionBase(), workload.regionEnd(), pool,
                      opt.crash);
    }

    runRecovery(image, workload, digests_in, opt, report);

    // Corruption accounting. A detected line counts as repaired
    // whether the counter-window search fixed it or a rollback
    // restored it from an intact backup — whatever is *still*
    // quarantined at the end is unrecoverable. Replayed lines are
    // quarantined too, so they join the same arithmetic.
    report.detectedCorruptions = image.detectedCorruptions();
    report.replaysDetected = image.replaysDetected();
    report.unrecoverableLines = image.quarantinedCount();
    report.repairedLines = report.detectedCorruptions
        + report.replaysDetected - report.unrecoverableLines;
    report.quarantinedLines = image.quarantinedLineAddrs();
    return report;
}

void
RecoveryEngine::runRecovery(RecoveredImage &image,
                            const Workload &workload,
                            const std::vector<std::uint64_t> *digests_in,
                            const RecoveryOptions &opt,
                            RecoveryReport &report) const
{
    const LogLayout &log = workload.log();

    auto fail = [&report](RecoveryFailure reason, std::string detail) {
        report.reason = reason;
        report.detail = std::move(detail);
    };

    // --- Step 1: examine the undo log header -------------------------
    std::uint64_t magic = image.readU64(log.magicAddr());
    if (magic != LogLayout::kMagic) {
        return fail(RecoveryFailure::LogHeaderUnreadable,
                    image.isQuarantined(log.magicAddr())
                        ? "log header quarantined (unrepairable "
                          "corruption on the header line)"
                        : "log header undecryptable (data/counter "
                          "out of sync on the header line)");
    }

    std::uint64_t valid = image.readU64(log.validAddr());
    if (valid == LogLayout::kValid) {
        std::uint64_t txn_id = image.readU64(log.txnIdAddr());
        std::uint64_t count = image.readU64(log.countAddr());
        std::uint64_t stored_sum = image.readU64(log.checksumAddr());

        if (count <= log.maxLines
            && logChecksum(image, log, txn_id, count) == stored_sum) {
            // Complete backup: the transaction may have mutated data in
            // place; roll every logged line back.
            for (unsigned i = 0; i < count; ++i) {
                Addr target = image.readU64(log.descAddr(i));
                if (!workload.inRegion(target)
                    || !isLineAligned(target)) {
                    return fail(RecoveryFailure::LogDescriptorInvalid,
                                "log descriptor outside the region");
                }
                // Read the backup *before* consulting the quarantine:
                // the read is what lazily verifies the backup line and
                // quarantines it if it is corrupt. (Asking first and
                // reading second let the first touch of a corrupt
                // backup slip past the check, and the stale verdict
                // then wrongly lifted the target's quarantine.)
                LineData backup = image.line(log.backupAddr(i));
                bool backup_bad =
                    image.isQuarantined(log.backupAddr(i));
                if (!backup_bad) {
                    // Rolling an intact backup over a quarantined
                    // target restores it.
                    image.write(target, backup.data(), lineBytes);
                    image.clearQuarantine(target);
                    if (opt.commitTo != nullptr)
                        persistLine(image, target, *opt.commitTo);
                }
                // A quarantined *backup* restores nothing: the target
                // keeps its own (possibly quarantined) content, and
                // nothing is persisted — zeros must never land on
                // media under a fresh MAC.
                if (opt.crash != nullptr)
                    opt.crash->onEvent(RecoveryEvent::RollbackWrite);
            }
            report.rolledBack = true;

            if (opt.commitTo != nullptr) {
                // Write-back epilogue: invalidate the log so a re-run
                // (or a later crash) does not redo the rollback. The
                // invariant either way: redoing it would rewrite the
                // very same bytes.
                if (opt.crash != nullptr)
                    opt.crash->onEvent(RecoveryEvent::BeforeValidClear);
                std::uint64_t inval = LogLayout::kInvalid;
                image.write(log.validAddr(), &inval, sizeof(inval));
                persistLine(image, lineAlign(log.validAddr()),
                            *opt.commitTo);
                if (opt.crash != nullptr)
                    opt.crash->onEvent(RecoveryEvent::AfterValidClear);
            }
        }
        // Checksum mismatch: the prepare stage had not finished, so the
        // in-place data was never touched; ignore the log.
    } else if (valid != LogLayout::kInvalid) {
        return fail(RecoveryFailure::TornCommitFlag,
                    "log valid flag holds garbage (torn "
                    "counter-atomic commit write)");
    }

    // --- Step 1b: quarantine gate --------------------------------------
    // Detected-but-unrepairable lines survive to here only if the
    // rollback could not restore them. By default, degrade gracefully:
    // report the loss precisely instead of validating a region known
    // to hold zeroed-out garbage.
    if (image.quarantinedCount() > 0) {
        if (!opt.degraded) {
            return fail(RecoveryFailure::QuarantinedLines,
                        std::to_string(image.quarantinedCount())
                            + " unrepairable corrupt line(s) "
                              "quarantined");
        }
        // Degraded mode (the resume lifecycle): keep going with the
        // quarantined lines reading as zeros, but first tombstone each
        // of them in the write-back image — replace the stored MAC
        // with a value derived from, but never equal to, the MAC of
        // the stored triple. This is the in-model equivalent of a
        // persistent bad-line marker: every later recovery of this
        // image re-detects the line (the tombstone MAC verifies at no
        // counter in the repair window) and re-quarantines it, so a
        // quarantine can never silently evaporate between soak cycles.
        // Without the tombstone, a *replayed* quarantined line would
        // do exactly that: its stale triple is self-consistent, and
        // once step 1c rebuilds the tree over the stored counters the
        // replay evidence is gone — the next cycle would silently read
        // stale plaintext. The write is deterministic for a fixed
        // image, so interrupted attempts rewrite identical bytes.
        if (opt.commitTo != nullptr && ctl.config().integrityMac) {
            constexpr std::uint64_t kTombstone = 0x51A5'0BAD'51A5'0BADull;
            for (Addr qa : image.quarantinedLineAddrs()) {
                const LineData *cipher = src.persistedLine(qa);
                if (cipher == nullptr)
                    continue; // never-drained lines carry no MAC
                std::uint64_t counter =
                    src.persistedCounters(ctl.counterLineAddr(qa))
                        [ctl.counterSlot(qa)];
                opt.commitTo->drainMac(
                    qa, ctl.engine().lineMac(qa, counter, *cipher)
                            ^ kTombstone);
            }
        }
    }

    // --- Step 1c: integrity-tree reconstruction ------------------------
    // Every line in the region now verifies (the gate above) or
    // carries a tombstoned MAC (degraded mode), so the persisted tree
    // nodes backing the region can be rebuilt from the counter store
    // — leaves for this region's counter lines only,
    // interior levels from the *persisted* level-1 nodes, root last.
    // Regional scope matters in write-back mode: a global rebuild
    // would bless another, not-yet-recovered region's replayed slots
    // and erase the evidence its own recovery needs. Root-last keeps
    // an interrupted reconstruction detectable and re-runnable.
    if (opt.commitTo != nullptr && ctl.config().integrityTree
        && image.treeRootMismatch()) {
        const Addr ctr_lo = ctl.counterLineAddr(workload.regionBase());
        const Addr ctr_hi =
            ctl.counterLineAddr(workload.regionEnd() - lineBytes)
            + lineBytes;
        rebuildTree(*opt.commitTo, ctl.config().counterRegionBase,
                    ctr_lo, ctr_hi, [&opt] {
                        if (opt.crash != nullptr)
                            opt.crash->onEvent(
                                RecoveryEvent::TreeRebuildLeaf);
                    });
    }

    // --- Step 2: structural invariants --------------------------------
    ValidationResult validation = workload.validate(image);
    if (!validation.ok) {
        return fail(RecoveryFailure::StructureInvalid,
                    "structure invalid after recovery: "
                        + validation.why);
    }

    // --- Step 3: committed-prefix check -------------------------------
    // The digest is computed whenever recovery reaches a structurally
    // valid image — it is the convergence witness of the
    // crash-during-recovery idempotence gate even when no committed
    // log exists to search.
    std::uint64_t recovered_digest = workload.digest(image);
    report.digestComputed = true;
    report.recoveredDigest = recovered_digest;

    const auto &digests =
        digests_in != nullptr ? *digests_in : workload.digests();
    if (!digests.empty()) {
        report.digestChecked = true;
        bool matched = false;
        // Search newest-first: the recovered state is usually at or
        // near the last issued transaction.
        for (std::size_t k = digests.size(); k-- > 0;) {
            if (digests[k] == recovered_digest) {
                report.committedTxns = k;
                matched = true;
                break;
            }
        }
        if (!matched) {
            return fail(RecoveryFailure::NoCommittedPrefix,
                        "recovered state matches no committed prefix");
        }
    }

    report.consistent = true;
    report.degradedConsistent =
        opt.degraded && image.quarantinedCount() > 0;
}

} // namespace cnvm
