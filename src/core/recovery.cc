#include "core/recovery.hh"

#include <cstring>

#include "common/logging.hh"

namespace cnvm
{

RecoveredImage::RecoveredImage(const PersistSource &src,
                               const MemController &ctl)
    : src(src), ctl(ctl)
{
}

RecoveredImage::RecoveredImage(const NvmDevice &nvm,
                               const MemController &ctl)
    : RecoveredImage(nvm.persistedState(), ctl)
{
}

LineData
RecoveredImage::decryptLine(Addr line_addr) const
{
    const LineData *cipher = src.persistedLine(line_addr);
    const bool encrypted = ctl.design() != DesignPoint::NoEncryption;

    // A cell that was never written holds the all-zero plaintext
    // encrypted at counter 0.
    LineData cipher_bytes;
    if (cipher != nullptr) {
        cipher_bytes = *cipher;
    } else if (encrypted) {
        cipher_bytes = ctl.engine().encrypt(line_addr, 0, LineData{});
    } else {
        cipher_bytes = LineData{};
    }

    std::uint64_t counter = !encrypted ? 0
        : src.persistedCounters(ctl.counterLineAddr(line_addr))
              [ctl.counterSlot(line_addr)];

    // Verify before trusting: when integrity metadata is persisted,
    // the stored MAC must accept the (stored counter, ciphertext)
    // pair. Never-drained lines carry no MAC and nothing persisted to
    // corrupt, so they are exempt.
    if (ctl.config().integrityMac && cipher != nullptr) {
        const std::uint64_t *mac = src.persistedMac(line_addr);
        if (mac != nullptr
            && ctl.engine().lineMac(line_addr, counter, cipher_bytes)
                   != *mac) {
            ++detected;
            // Osiris-style repair: the true counter is usually near
            // the stored one (a rolled-back counter word, or a torn
            // pair whose ciphertext is a few generations off), so
            // trial-verify a bounded window around it.
            const unsigned window = ctl.config().macRepairWindow;
            std::uint64_t lo = counter > window ? counter - window : 0;
            bool fixed = false;
            for (std::uint64_t c = lo; c <= counter + window; ++c) {
                if (c == counter)
                    continue;
                if (ctl.engine().lineMac(line_addr, c, cipher_bytes)
                        == *mac) {
                    counter = c;
                    fixed = true;
                    break;
                }
            }
            if (!fixed) {
                // Unrepairable: quarantine — the line reads as zeros,
                // and recovery reports it rather than consuming
                // garbage. An undo-log rollback may yet restore it.
                quarantine.insert(line_addr);
                return LineData{};
            }
            ++repaired;
        }
    }

    if (!encrypted)
        return cipher_bytes;

    // Equation 3: plaintext = OTP(addr, stored counter) xor ciphertext.
    // If the stored counter does not match the counter the data was
    // encrypted with, this produces garbage (equation 4).
    return ctl.engine().decrypt(line_addr, counter, cipher_bytes);
}

LineData &
RecoveredImage::cachedLine(Addr line_addr) const
{
    auto it = cache.find(line_addr);
    if (it == cache.end())
        it = cache.emplace(line_addr, decryptLine(line_addr)).first;
    return it->second;
}

void
RecoveredImage::read(Addr addr, unsigned size, void *out) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (size > 0) {
        Addr line_addr = lineAlign(addr);
        unsigned offset = static_cast<unsigned>(addr - line_addr);
        unsigned chunk = std::min(size, lineBytes - offset);
        std::memcpy(dst, cachedLine(line_addr).data() + offset, chunk);
        dst += chunk;
        addr += chunk;
        size -= chunk;
    }
}

void
RecoveredImage::write(Addr addr, const void *data, unsigned size)
{
    const auto *src = static_cast<const std::uint8_t *>(data);
    while (size > 0) {
        Addr line_addr = lineAlign(addr);
        unsigned offset = static_cast<unsigned>(addr - line_addr);
        unsigned chunk = std::min(size, lineBytes - offset);
        std::memcpy(cachedLine(line_addr).data() + offset, src, chunk);
        src += chunk;
        addr += chunk;
        size -= chunk;
    }
}

LineData
RecoveredImage::line(Addr line_addr) const
{
    return cachedLine(lineAlign(line_addr));
}

RecoveryEngine::RecoveryEngine(const PersistSource &src,
                               const MemController &ctl)
    : src(src), ctl(ctl)
{
}

RecoveryEngine::RecoveryEngine(const NvmDevice &nvm,
                               const MemController &ctl)
    : RecoveryEngine(nvm.persistedState(), ctl)
{
}

const char *
recoveryFailureName(RecoveryFailure reason)
{
    switch (reason) {
      case RecoveryFailure::None: return "none";
      case RecoveryFailure::LogHeaderUnreadable:
        return "log-header-unreadable";
      case RecoveryFailure::TornCommitFlag: return "torn-commit-flag";
      case RecoveryFailure::LogDescriptorInvalid:
        return "log-descriptor-invalid";
      case RecoveryFailure::QuarantinedLines:
        return "quarantined-lines";
      case RecoveryFailure::StructureInvalid:
        return "structure-invalid";
      case RecoveryFailure::NoCommittedPrefix:
        return "no-committed-prefix";
    }
    return "?";
}

RecoveryReport
RecoveryEngine::recover(const Workload &workload,
                        const std::vector<std::uint64_t> *digests_in)
{
    RecoveryReport report;
    RecoveredImage image(src, ctl);

    // Integrity pre-scan: verify every region line's MAC up front, so
    // no corruption can hide in a line the log/validate/digest pipeline
    // happens not to read. Mismatches repair or quarantine here; the
    // later stages then run on a verified (or explicitly degraded)
    // image.
    if (ctl.config().integrityMac) {
        for (Addr a = workload.regionBase(); a < workload.regionEnd();
             a += lineBytes) {
            image.line(a);
        }
    }

    runRecovery(image, workload, digests_in, report);

    // Corruption accounting. A detected line counts as repaired
    // whether the counter-window search fixed it or a rollback
    // restored it from an intact backup — whatever is *still*
    // quarantined at the end is unrecoverable.
    report.detectedCorruptions = image.detectedCorruptions();
    report.unrecoverableLines = image.quarantinedCount();
    report.repairedLines =
        report.detectedCorruptions - report.unrecoverableLines;
    return report;
}

void
RecoveryEngine::runRecovery(RecoveredImage &image,
                            const Workload &workload,
                            const std::vector<std::uint64_t> *digests_in,
                            RecoveryReport &report) const
{
    const LogLayout &log = workload.log();

    auto fail = [&report](RecoveryFailure reason, std::string detail) {
        report.reason = reason;
        report.detail = std::move(detail);
    };

    // --- Step 1: examine the undo log header -------------------------
    std::uint64_t magic = image.readU64(log.magicAddr());
    if (magic != LogLayout::kMagic) {
        return fail(RecoveryFailure::LogHeaderUnreadable,
                    image.isQuarantined(log.magicAddr())
                        ? "log header quarantined (unrepairable "
                          "corruption on the header line)"
                        : "log header undecryptable (data/counter "
                          "out of sync on the header line)");
    }

    std::uint64_t valid = image.readU64(log.validAddr());
    if (valid == LogLayout::kValid) {
        std::uint64_t txn_id = image.readU64(log.txnIdAddr());
        std::uint64_t count = image.readU64(log.countAddr());
        std::uint64_t stored_sum = image.readU64(log.checksumAddr());

        if (count <= log.maxLines
            && logChecksum(image, log, txn_id, count) == stored_sum) {
            // Complete backup: the transaction may have mutated data in
            // place; roll every logged line back.
            for (unsigned i = 0; i < count; ++i) {
                Addr target = image.readU64(log.descAddr(i));
                if (!workload.inRegion(target)
                    || !isLineAligned(target)) {
                    return fail(RecoveryFailure::LogDescriptorInvalid,
                                "log descriptor outside the region");
                }
                bool backup_bad =
                    image.isQuarantined(log.backupAddr(i));
                LineData backup = image.line(log.backupAddr(i));
                image.write(target, backup.data(), lineBytes);
                // Rolling an intact backup over a quarantined target
                // restores it; a quarantined *backup* restores
                // nothing (the target now holds zeros from it).
                if (!backup_bad)
                    image.clearQuarantine(target);
            }
            report.rolledBack = true;
        }
        // Checksum mismatch: the prepare stage had not finished, so the
        // in-place data was never touched; ignore the log.
    } else if (valid != LogLayout::kInvalid) {
        return fail(RecoveryFailure::TornCommitFlag,
                    "log valid flag holds garbage (torn "
                    "counter-atomic commit write)");
    }

    // --- Step 1b: quarantine gate --------------------------------------
    // Detected-but-unrepairable lines survive to here only if the
    // rollback could not restore them. Degrade gracefully: report the
    // loss precisely instead of validating a region known to hold
    // zeroed-out garbage.
    if (image.quarantinedCount() > 0) {
        return fail(RecoveryFailure::QuarantinedLines,
                    std::to_string(image.quarantinedCount())
                        + " unrepairable corrupt line(s) quarantined");
    }

    // --- Step 2: structural invariants --------------------------------
    ValidationResult validation = workload.validate(image);
    if (!validation.ok) {
        return fail(RecoveryFailure::StructureInvalid,
                    "structure invalid after recovery: "
                        + validation.why);
    }

    // --- Step 3: committed-prefix check -------------------------------
    const auto &digests =
        digests_in != nullptr ? *digests_in : workload.digests();
    if (!digests.empty()) {
        report.digestChecked = true;
        std::uint64_t recovered_digest = workload.digest(image);
        bool matched = false;
        // Search newest-first: the recovered state is usually at or
        // near the last issued transaction.
        for (std::size_t k = digests.size(); k-- > 0;) {
            if (digests[k] == recovered_digest) {
                report.committedTxns = k;
                matched = true;
                break;
            }
        }
        if (!matched) {
            return fail(RecoveryFailure::NoCommittedPrefix,
                        "recovered state matches no committed prefix");
        }
    }

    report.consistent = true;
}

} // namespace cnvm
