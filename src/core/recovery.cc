#include "core/recovery.hh"

#include <cstring>

#include "common/logging.hh"

namespace cnvm
{

RecoveredImage::RecoveredImage(const PersistSource &src,
                               const MemController &ctl)
    : src(src), ctl(ctl)
{
}

RecoveredImage::RecoveredImage(const NvmDevice &nvm,
                               const MemController &ctl)
    : RecoveredImage(nvm.persistedState(), ctl)
{
}

LineData
RecoveredImage::decryptLine(Addr line_addr) const
{
    const LineData *cipher = src.persistedLine(line_addr);

    if (ctl.design() == DesignPoint::NoEncryption)
        return cipher != nullptr ? *cipher : LineData{};

    // A cell that was never written holds the all-zero plaintext
    // encrypted at counter 0.
    LineData cipher_bytes;
    if (cipher != nullptr) {
        cipher_bytes = *cipher;
    } else {
        cipher_bytes = ctl.engine().encrypt(line_addr, 0, LineData{});
    }

    std::uint64_t counter =
        src.persistedCounters(ctl.counterLineAddr(line_addr))
            [ctl.counterSlot(line_addr)];

    // Equation 3: plaintext = OTP(addr, stored counter) xor ciphertext.
    // If the stored counter does not match the counter the data was
    // encrypted with, this produces garbage (equation 4).
    return ctl.engine().decrypt(line_addr, counter, cipher_bytes);
}

LineData &
RecoveredImage::cachedLine(Addr line_addr) const
{
    auto it = cache.find(line_addr);
    if (it == cache.end())
        it = cache.emplace(line_addr, decryptLine(line_addr)).first;
    return it->second;
}

void
RecoveredImage::read(Addr addr, unsigned size, void *out) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (size > 0) {
        Addr line_addr = lineAlign(addr);
        unsigned offset = static_cast<unsigned>(addr - line_addr);
        unsigned chunk = std::min(size, lineBytes - offset);
        std::memcpy(dst, cachedLine(line_addr).data() + offset, chunk);
        dst += chunk;
        addr += chunk;
        size -= chunk;
    }
}

void
RecoveredImage::write(Addr addr, const void *data, unsigned size)
{
    const auto *src = static_cast<const std::uint8_t *>(data);
    while (size > 0) {
        Addr line_addr = lineAlign(addr);
        unsigned offset = static_cast<unsigned>(addr - line_addr);
        unsigned chunk = std::min(size, lineBytes - offset);
        std::memcpy(cachedLine(line_addr).data() + offset, src, chunk);
        src += chunk;
        addr += chunk;
        size -= chunk;
    }
}

LineData
RecoveredImage::line(Addr line_addr) const
{
    return cachedLine(lineAlign(line_addr));
}

RecoveryEngine::RecoveryEngine(const PersistSource &src,
                               const MemController &ctl)
    : src(src), ctl(ctl)
{
}

RecoveryEngine::RecoveryEngine(const NvmDevice &nvm,
                               const MemController &ctl)
    : RecoveryEngine(nvm.persistedState(), ctl)
{
}

RecoveryReport
RecoveryEngine::recover(const Workload &workload,
                        const std::vector<std::uint64_t> *digests_in)
{
    RecoveryReport report;
    RecoveredImage image(src, ctl);
    const LogLayout &log = workload.log();

    // --- Step 1: examine the undo log header -------------------------
    std::uint64_t magic = image.readU64(log.magicAddr());
    if (magic != LogLayout::kMagic) {
        report.detail = "log header undecryptable (data/counter "
                        "out of sync on the header line)";
        return report;
    }

    std::uint64_t valid = image.readU64(log.validAddr());
    if (valid == LogLayout::kValid) {
        std::uint64_t txn_id = image.readU64(log.txnIdAddr());
        std::uint64_t count = image.readU64(log.countAddr());
        std::uint64_t stored_sum = image.readU64(log.checksumAddr());

        if (count <= log.maxLines
            && logChecksum(image, log, txn_id, count) == stored_sum) {
            // Complete backup: the transaction may have mutated data in
            // place; roll every logged line back.
            for (unsigned i = 0; i < count; ++i) {
                Addr target = image.readU64(log.descAddr(i));
                if (!workload.inRegion(target)
                    || !isLineAligned(target)) {
                    report.detail = "log descriptor outside the region";
                    return report;
                }
                LineData backup = image.line(log.backupAddr(i));
                image.write(target, backup.data(), lineBytes);
            }
            report.rolledBack = true;
        }
        // Checksum mismatch: the prepare stage had not finished, so the
        // in-place data was never touched; ignore the log.
    } else if (valid != LogLayout::kInvalid) {
        report.detail = "log valid flag holds garbage (torn "
                        "counter-atomic commit write)";
        return report;
    }

    // --- Step 2: structural invariants --------------------------------
    ValidationResult validation = workload.validate(image);
    if (!validation.ok) {
        report.detail = "structure invalid after recovery: "
                      + validation.why;
        return report;
    }

    // --- Step 3: committed-prefix check -------------------------------
    const auto &digests =
        digests_in != nullptr ? *digests_in : workload.digests();
    if (!digests.empty()) {
        report.digestChecked = true;
        std::uint64_t recovered_digest = workload.digest(image);
        bool matched = false;
        // Search newest-first: the recovered state is usually at or
        // near the last issued transaction.
        for (std::size_t k = digests.size(); k-- > 0;) {
            if (digests[k] == recovered_digest) {
                report.committedTxns = k;
                matched = true;
                break;
            }
        }
        if (!matched) {
            report.detail =
                "recovered state matches no committed prefix";
            return report;
        }
    }

    report.consistent = true;
    return report;
}

} // namespace cnvm
