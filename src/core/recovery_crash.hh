/**
 * @file
 * Crash-during-recovery: interrupt recovery itself at planned points
 * and prove it is idempotent.
 *
 * The paper treats recovery as the crash-consistency story, and Osiris
 * (PAPERS.md) makes the sharper point that counter recovery must
 * tolerate being interrupted and re-run: a machine that lost power
 * once can lose power again while recovery is still writing the image
 * back. The scenario family here makes that a first-class, sweepable
 * property:
 *
 *  - RecoveryEngine::recover() in write-back mode
 *    (RecoveryOptions::commitTo) persists every restoration it makes,
 *    and announces each step to a RecoveryCrashInjector;
 *
 *  - the injector interrupts the attempt at a planned step (the Nth
 *    pre-scan line, the Nth rollback descriptor, before/after the
 *    valid-flag invalidation) by throwing RecoveryInterrupted — the
 *    recovery-side model of a second power failure;
 *
 *  - runRecoveryCrashSweep() captures crashed images (fork capture,
 *    optionally fault-dosed), recovers each once uninterrupted for
 *    reference, then for every planned interruption point runs one or
 *    more interrupted attempts on a copy of the image followed by one
 *    complete attempt, and compares the *convergent* fields of the
 *    final RecoveryReport against the reference.
 *
 * The idempotence invariant: any number of interrupted write-back
 * attempts followed by one complete attempt converges to the same
 * recovered digest and the same consistency verdict
 * (consistent/reason/committedTxns/unrecoverableLines) as a single
 * uninterrupted recovery. Fields that measure *work done by this
 * attempt* (rolledBack, detectedCorruptions, repairedLines) are
 * legitimately smaller after a partial attempt already persisted some
 * restorations, and are excluded — see RecoveryConvergence.
 */

#ifndef CNVM_CORE_RECOVERY_CRASH_HH
#define CNVM_CORE_RECOVERY_CRASH_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/recovery.hh"
#include "core/system.hh"
#include "nvm/fault_model.hh"
#include "runner/runner.hh"

namespace cnvm
{

/** Steps of a write-back recovery attempt an injector can observe. */
enum class RecoveryEvent
{
    PreScanLine,      //!< one region line integrity-verified (merged)
    RollbackWrite,    //!< one undo-log descriptor rolled back
    BeforeValidClear, //!< rollback done, valid flag still set
    AfterValidClear,  //!< log invalidation persisted
    TreeRebuildLeaf,  //!< one counter line's tree leaves reconstructed
};

constexpr unsigned numRecoveryEvents = 5;

const char *recoveryEventName(RecoveryEvent ev);

/** One planned interruption: die at the Nth occurrence of a step. */
struct RecoveryCrashSpec
{
    RecoveryEvent kind = RecoveryEvent::PreScanLine;

    /** 1-based occurrence that fires; 0 never fires (pure observer). */
    std::uint64_t nth = 0;

    /** "prescan#12", "rollback#3", "valid-clear#1", ... */
    std::string describe() const;
};

/**
 * Thrown by RecoveryCrashInjector::onEvent() when the armed spec
 * fires: the recovery process dies here. Deliberately not derived
 * from std::exception — nothing may handle it by accident.
 */
struct RecoveryInterrupted
{
    RecoveryCrashSpec spec;
};

/**
 * Counts recovery steps and interrupts the attempt when the armed
 * spec's occurrence is reached. A default-constructed injector never
 * fires and doubles as the observer that teaches the planner which
 * steps an image's recovery actually reaches (and how often).
 */
class RecoveryCrashInjector
{
  public:
    /** Pure observer: counts events, never fires. */
    RecoveryCrashInjector() = default;

    explicit RecoveryCrashInjector(const RecoveryCrashSpec &spec)
        : spec(spec)
    {}

    /** Called by the recovery pipeline at each step. Throws
     *  RecoveryInterrupted when the armed occurrence is reached. */
    void
    onEvent(RecoveryEvent ev)
    {
        std::uint64_t n = ++counts[static_cast<unsigned>(ev)];
        if (spec.nth != 0 && ev == spec.kind && n == spec.nth) {
            hasFired = true;
            throw RecoveryInterrupted{spec};
        }
    }

    std::uint64_t countOf(RecoveryEvent ev) const
    { return counts[static_cast<unsigned>(ev)]; }

    /** Whether the armed spec interrupted an attempt. */
    bool fired() const { return hasFired; }

  private:
    RecoveryCrashSpec spec;
    std::array<std::uint64_t, numRecoveryEvents> counts{};
    bool hasFired = false;
};

/** How to run a crash-during-recovery sweep. */
struct RecoveryCrashOptions
{
    /** Interruption points, distributed over the captured images. */
    unsigned points = 40;

    /** Crashed images to capture (fork mode, one trunk run). */
    unsigned images = 8;

    /** Interrupted attempts per point before the completing one. An
     *  attempt whose trigger turns out unreachable on the partially
     *  recovered image simply completes — extra convergence data. */
    unsigned attempts = 2;

    /** Pre-scan concurrency of every recovery attempt (1 = serial). */
    unsigned recoveryJobs = 1;

    /** Point-level Execute concurrency (merged in plan order; the
     *  outcome is identical at any value). */
    unsigned jobs = 1;

    /** Media-fault dose for the captured images (per-point seeds, as
     *  in SweepOptions::faults). Default: clean crashes. */
    FaultSpec faults;

    bool semanticTriggers = true;
};

/** Convergent fields of one region's recovery (see file header). */
struct RecoveryConvergence
{
    bool consistent = false;
    RecoveryFailure reason = RecoveryFailure::None;
    std::uint64_t committedTxns = 0;
    std::uint64_t unrecoverableLines = 0;
    bool digestComputed = false;
    std::uint64_t recoveredDigest = 0;

    bool operator==(const RecoveryConvergence &) const = default;

    /** "ok@5/d123..." / "quarantined-lines/u2" — fingerprint atom. */
    std::string describe() const;
};

RecoveryConvergence convergenceOf(const RecoveryReport &report);

/** Outcome of one interruption point. */
struct RecoveryCrashPoint
{
    /** Which captured image this point interrupted. */
    std::size_t imageIndex = 0;

    RecoveryCrashSpec spec;

    /** Whether any attempt was actually interrupted (an unreachable
     *  occurrence means every attempt completed — still checked). */
    bool fired = false;

    /** Final attempt's per-region convergent fields. */
    std::vector<RecoveryConvergence> converged;

    /** True when `converged` differs from the image's reference. */
    bool divergent = false;

    /** What diverged (empty when convergent). */
    std::string detail;
};

/** Aggregate crash-during-recovery sweep outcome. */
struct RecoveryCrashResult
{
    /** Captured (reached) crashed images. */
    unsigned images = 0;

    /** Per-image reference convergence (plan order). */
    std::vector<std::vector<RecoveryConvergence>> reference;

    std::vector<RecoveryCrashPoint> points;

    unsigned
    divergentPoints() const
    {
        unsigned n = 0;
        for (const RecoveryCrashPoint &p : points)
            n += p.divergent;
        return n;
    }

    unsigned
    firedPoints() const
    {
        unsigned n = 0;
        for (const RecoveryCrashPoint &p : points)
            n += p.fired;
        return n;
    }

    /** Deterministic one-line digest of every point's spec/outcome. */
    std::string fingerprint() const;
};

/**
 * Captures @p opt.images crashed images of @p cfg (one fork-capture
 * trunk run), recovers each once for reference, then executes
 * @p opt.points interruption points: interrupted write-back attempts
 * followed by a completing one, gated on convergence. Deterministic
 * for fixed seeds at any jobs value; when @p pool is given it runs
 * the point phase (its jobs() overrides opt.jobs).
 */
RecoveryCrashResult runRecoveryCrashSweep(const SystemConfig &cfg,
                                          const RecoveryCrashOptions &opt,
                                          WorkPool *pool = nullptr);

} // namespace cnvm

#endif // CNVM_CORE_RECOVERY_CRASH_HH
