/**
 * @file
 * Whole-system configuration (paper Table 2 defaults).
 */

#ifndef CNVM_CORE_CONFIG_HH
#define CNVM_CORE_CONFIG_HH

#include "mem/core_mem_path.hh"
#include "memctl/mem_controller.hh"
#include "nvm/nvm_timing.hh"
#include "workloads/factory.hh"

namespace cnvm
{

struct SystemConfig
{
    DesignPoint design = DesignPoint::SCA;

    unsigned numCores = 1;

    /**
     * Memory channels sharding the address space (power of two). Each
     * channel gets its own controller — counter cache, write queues,
     * encryption engine, integrity-tree mirror — and its own NVM bank
     * group and bus; cross-channel persist ordering goes through the
     * shared PersistSequencer.
     */
    unsigned numChannels = 1;

    /** Core clock (Table 2: 4.0 GHz out-of-order; modelled in-order). */
    double cpuGHz = 4.0;

    /** Private L1/L2 per core (Table 2). */
    CachePathConfig cache;

    /**
     * Controller geometry. counterCacheBytes is the explicit *total*
     * counter-cache capacity of the system, split evenly across the
     * channels at build time. (It is deliberately not scaled by core
     * count any more: the old `per-core × numCores` rule silently
     * inflated capacity as cores grew, washing out the FCA/SCA gap at
     * scale.)
     */
    MemCtlConfig memctl;

    /** PCM timing (Table 2), scalable for the figure-17 sweeps. */
    NvmTiming nvm = NvmTiming::pcm();

    WorkloadKind workload = WorkloadKind::ArraySwap;

    /** Per-core workload parameters; regionBase is assigned per core. */
    WorkloadParams wl;

    /** Base of the data region; per-core regions are laid out above. */
    Addr dataRegionBase = Addr(256) * 1024 * 1024;

    /**
     * Pre-warm the counter cache with the initialized lines' counter
     * lines, modelling a steady-state region of interest (the paper
     * reports warmed-up gem5 measurements, not cold-start ones).
     */
    bool warmCounterCache = true;

    /**
     * Host threads for the partitioned simulation kernel. 0 (default)
     * keeps the classic single-queue kernel. >= 1 partitions the
     * simulation — one event queue per channel plus a coordinator
     * queue — and runs the channel queues on that many pinned host
     * threads; 1 is the partitioned-serial reference. Every
     * partitioned run is byte-identical to every other at any job
     * count; the classic kernel is a separate timing configuration
     * (the partition adds channelHopLatency per cross-domain hop).
     */
    unsigned simJobs = 0;

    /**
     * Simulated latency of a coordinator<->channel hop under the
     * partitioned kernel; also its conservative synchronization
     * quantum (the lookahead). Must stay <= every cross-domain
     * latency, which holds trivially because all hops use exactly
     * this value.
     */
    Tick channelHopLatency = nsToTicks(5);

    /** Deterministic per-core seed derivation. */
    std::uint64_t
    coreSeed(unsigned core) const
    {
        return wl.seed * 0x9e3779b97f4a7c15ull + core + 1;
    }
};

} // namespace cnvm

#endif // CNVM_CORE_CONFIG_HH
