#include "core/crash_injector.hh"

#include <sstream>

#include "common/logging.hh"

namespace cnvm
{

const char *
crashTriggerName(CrashTriggerKind kind)
{
    switch (kind) {
      case CrashTriggerKind::AtTick: return "tick";
      case CrashTriggerKind::PipelineEnter: return "pipeline-enter";
      case CrashTriggerKind::PairAction: return "pair-action";
      case CrashTriggerKind::DirtyEviction: return "dirty-eviction";
      case CrashTriggerKind::DataDrain: return "data-drain";
      case CrashTriggerKind::CtrDrain: return "ctr-drain";
    }
    return "?";
}

std::optional<CtlEvent>
ctlEventFor(CrashTriggerKind kind)
{
    switch (kind) {
      case CrashTriggerKind::AtTick: return std::nullopt;
      case CrashTriggerKind::PipelineEnter:
        return CtlEvent::PipelineEnter;
      case CrashTriggerKind::PairAction: return CtlEvent::PairAction;
      case CrashTriggerKind::DirtyEviction:
        return CtlEvent::DirtyEviction;
      case CrashTriggerKind::DataDrain: return CtlEvent::DataDrain;
      case CrashTriggerKind::CtrDrain: return CtlEvent::CtrDrain;
    }
    return std::nullopt;
}

std::string
CrashSpec::describe() const
{
    std::ostringstream os;
    if (kind == CrashTriggerKind::AtTick)
        os << "tick " << tick;
    else
        os << crashTriggerName(kind) << " #" << count;
    // Clean crash points keep their historical description (and hence
    // sweep fingerprints); fault doses annotate themselves.
    os << faults.describe();
    return os.str();
}

CrashInjector::CrashInjector(EventQueue &eq, std::vector<CrashSpec> specs,
                             FireFn fire_fn)
    : eventq(eq),
      fire(std::move(fire_fn))
{
    armed.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        Armed a;
        a.spec = specs[i];
        a.fireEvent = std::make_unique<EventFunctionWrapper>(
            [this, i]() {
                armed[i].didFire = true;
                ++firedCount;
                fire(i);
            },
            "power-failure", Event::MinPriority);
        armed.push_back(std::move(a));

        auto watched = ctlEventFor(specs[i].kind);
        if (watched) {
            cnvm_assert(specs[i].count >= 1);
            ++semanticSpecs;
            pendingByEvent[static_cast<std::size_t>(*watched)]
                .emplace(specs[i].count, i);
        }
    }
}

CrashInjector::CrashInjector(EventQueue &eq, const CrashSpec &spec,
                             std::function<void()> fire_fn)
    : CrashInjector(eq, std::vector<CrashSpec>{spec},
                    [fn = std::move(fire_fn)](std::size_t) { fn(); })
{
}

void
CrashInjector::start()
{
    for (Armed &a : armed)
        if (a.spec.kind == CrashTriggerKind::AtTick)
            eventq.schedule(*a.fireEvent, a.spec.tick);
}

void
CrashInjector::onCtlEvent(CtlEvent ev)
{
    auto &pending = pendingByEvent[static_cast<std::size_t>(ev)];
    std::uint64_t nth = ++seen[static_cast<std::size_t>(ev)];
    if (pending.empty())
        return;
    // All specs armed on this event's Nth occurrence fire now; the
    // multimap keeps later ordinals pending.
    auto range = pending.equal_range(nth);
    for (auto it = range.first; it != range.second; ++it)
        fireSoon(it->second);
    pending.erase(range.first, range.second);
}

void
CrashInjector::fireSoon(std::size_t i)
{
    Armed &a = armed[i];
    if (disarmed || a.didFire || a.fireEvent->scheduled())
        return;
    if (immediateFire) {
        // Barrier replay (see setImmediateFire): the controllers are
        // quiescent, so fire in place.
        a.didFire = true;
        ++firedCount;
        fire(i);
        return;
    }
    // MinPriority: the failure observes the triggering controller state
    // before any other model event pending for this tick runs.
    eventq.schedule(*a.fireEvent, eventq.curTick());
}

void
CrashInjector::disarm()
{
    disarmed = true;
    for (auto &pending : pendingByEvent)
        pending.clear();
    for (Armed &a : armed)
        if (a.fireEvent->scheduled())
            eventq.deschedule(*a.fireEvent);
}

} // namespace cnvm
