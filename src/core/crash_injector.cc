#include "core/crash_injector.hh"

#include <sstream>

namespace cnvm
{

const char *
crashTriggerName(CrashTriggerKind kind)
{
    switch (kind) {
      case CrashTriggerKind::AtTick: return "tick";
      case CrashTriggerKind::PipelineEnter: return "pipeline-enter";
      case CrashTriggerKind::PairAction: return "pair-action";
      case CrashTriggerKind::DirtyEviction: return "dirty-eviction";
      case CrashTriggerKind::DataDrain: return "data-drain";
      case CrashTriggerKind::CtrDrain: return "ctr-drain";
    }
    return "?";
}

std::optional<CtlEvent>
ctlEventFor(CrashTriggerKind kind)
{
    switch (kind) {
      case CrashTriggerKind::AtTick: return std::nullopt;
      case CrashTriggerKind::PipelineEnter:
        return CtlEvent::PipelineEnter;
      case CrashTriggerKind::PairAction: return CtlEvent::PairAction;
      case CrashTriggerKind::DirtyEviction:
        return CtlEvent::DirtyEviction;
      case CrashTriggerKind::DataDrain: return CtlEvent::DataDrain;
      case CrashTriggerKind::CtrDrain: return CtlEvent::CtrDrain;
    }
    return std::nullopt;
}

std::string
CrashSpec::describe() const
{
    std::ostringstream os;
    if (kind == CrashTriggerKind::AtTick)
        os << "tick " << tick;
    else
        os << crashTriggerName(kind) << " #" << count;
    return os.str();
}

CrashInjector::CrashInjector(EventQueue &eq, const CrashSpec &spec,
                             std::function<void()> fire_fn)
    : eventq(eq),
      armedSpec(spec),
      fire(std::move(fire_fn)),
      crashEvent([this]() {
                     didFire = true;
                     fire();
                 },
                 "power-failure", Event::MinPriority)
{
    if (armedSpec.kind != CrashTriggerKind::AtTick)
        trigger.arm(armedSpec.count, [this]() { fireSoon(); });
}

void
CrashInjector::start()
{
    if (armedSpec.kind == CrashTriggerKind::AtTick)
        eventq.schedule(crashEvent, armedSpec.tick);
}

void
CrashInjector::onCtlEvent(CtlEvent ev)
{
    auto watched = ctlEventFor(armedSpec.kind);
    if (watched && ev == *watched)
        trigger.observe();
}

void
CrashInjector::fireSoon()
{
    if (didFire || crashEvent.scheduled())
        return;
    // MinPriority: the failure observes the triggering controller state
    // before any other model event pending for this tick runs.
    eventq.schedule(crashEvent, eventq.curTick());
}

void
CrashInjector::disarm()
{
    trigger.disarm();
    if (crashEvent.scheduled())
        eventq.deschedule(crashEvent);
}

} // namespace cnvm
