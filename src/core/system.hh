/**
 * @file
 * Top-level system: wires cores, caches, the memory controller and the
 * NVM device for one design point, runs workloads, injects crashes, and
 * drives recovery.
 *
 * This is the library's primary entry point:
 *
 *   SystemConfig cfg;
 *   cfg.design = DesignPoint::SCA;
 *   cfg.workload = WorkloadKind::BTree;
 *   System sys(cfg);
 *   sys.run();
 *   std::cout << sys.runtimeNs() << " ns\n";
 */

#ifndef CNVM_CORE_SYSTEM_HH
#define CNVM_CORE_SYSTEM_HH

#include <memory>
#include <vector>

#include "core/config.hh"
#include "core/crash_injector.hh"
#include "core/crash_oracle.hh"
#include "core/persist_fork.hh"
#include "core/recovery.hh"
#include "cpu/core.hh"
#include "mem/channel_port.hh"
#include "mem/channel_router.hh"
#include "mem/core_mem_path.hh"
#include "memctl/mem_controller.hh"
#include "memctl/persist_sequencer.hh"
#include "nvm/nvm_device.hh"
#include "sim/eventq.hh"
#include "sim/parallel_kernel.hh"
#include "stats/stats.hh"

namespace cnvm
{

/** Outcome of a simulation run. */
struct RunResult
{
    /** Last tick of interest: crash tick, or the latest core finish. */
    Tick endTick = 0;

    /** Whether the run was terminated by an injected power failure. */
    bool crashed = false;

    /** Transactions issued across all cores by the end of the run. */
    std::uint64_t txnsIssued = 0;
};

/**
 * Everything a live system needs to continue where a write-back
 * recovery left off — the output side of one soak cycle and the input
 * side of the next (see SoakDriver and DESIGN.md section 4i).
 */
struct ResumeState
{
    /** The write-back-committed recovered image: rolled-back lines
     *  re-persisted at their stored counters, log invalidated,
     *  integrity tree rebuilt, quarantined lines MAC-tombstoned. */
    PersistImage image;

    /** Per-core committed transaction counts the recovery matched
     *  (RecoveryReport::committedTxns) — the exact point each
     *  workload's deterministic replay fast-forwards to. */
    std::vector<std::uint64_t> committedTxns;

    /** Per-core quarantined line addresses (RecoveryReport::
     *  quarantinedLines): these read as zeros in the resumed system
     *  until the workload legitimately rewrites them. */
    std::vector<std::vector<Addr>> quarantined;

    /**
     * Per-core fresh-incarnation flags (empty means every core
     * resumes). A set flag marks a core whose committed state was
     * unrecoverably damaged — its recovery failed even in degraded
     * mode — so the core restarts its workload from scratch over the
     * surviving media: setup re-initializes its region exactly as a
     * first boot would, and its committedTxns/quarantined entries are
     * ignored. Counter allocation continues above every persisted
     * value (the channel re-seed runs first), so the fresh incarnation
     * never reuses an (address, counter) pair and the old
     * incarnation's residue is just dead-but-verifiable free space.
     */
    std::vector<std::uint8_t> fresh;
};

class System
{
  public:
    explicit System(const SystemConfig &cfg);

    /**
     * Resume-after-recovery construction: builds the same machine as
     * System(cfg), but instead of installing fresh initial state it
     * re-seeds from @p resume — the recovered image becomes the
     * persisted state, each workload deterministically fast-forwards
     * to its committed transaction count (regenerating its digest log
     * and shadow exactly as the pre-crash run produced them), the
     * live plaintext view is rebuilt from the fast-forwarded shadows
     * with quarantined lines reading as zeros, and every channel's
     * controller rebuilds its counter state from the persisted store
     * exactly as crash() does. Works under any numChannels/simJobs
     * configuration. cfg.wl.txnTarget must exceed every core's
     * committed count, or the resumed run has nothing left to do.
     */
    System(const SystemConfig &cfg, const ResumeState &resume);

    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Runs every core's workload to completion. */
    RunResult run();

    /**
     * Runs until @p crash_tick, then models a power failure: cores
     * halt, caches and unready queue entries are lost, ADR drains the
     * ready entries. If all cores finish first, no crash happens.
     */
    RunResult runWithCrashAt(Tick crash_tick);

    /**
     * Runs with a power failure armed at an arbitrary crash point —
     * an absolute tick or the Nth semantic controller event (see
     * CrashSpec). If the workloads finish before the trigger fires,
     * no crash happens.
     */
    RunResult runWithCrash(const CrashSpec &spec);

    /** Consumer of captured forks: (plan index, the fork). */
    using ForkSink = std::function<void(std::size_t, PersistFork)>;

    /**
     * The trunk side of a fork-based crash sweep: arms *all* of
     * @p specs against this one run, and whenever one fires, hands a
     * self-contained PersistFork to @p sink instead of crashing —
     * the run continues to completion. Each fork carries exactly the
     * persisted state an in-place crash at that point would have left
     * behind (ADR drain included), so classifying it off-trunk is
     * equivalent to a dedicated replay crash there. Capture is
     * side-effect free: the run's timing, stats and results are
     * byte-identical to an unarmed run(). Specs that never trigger
     * (workloads finish first) are simply never delivered — the same
     * "unreached" semantics a replay run has.
     */
    RunResult runWithForkCapture(const std::vector<CrashSpec> &specs,
                                 ForkSink sink);

    /** Controller state at the power-failure instant (valid=false when
     *  the run completed without crashing). */
    const CrashSnapshot &crashSnapshot() const { return snapshot; }

    /** Recovers and verifies every core's region after a crash.
     *  @param recovery_jobs integrity pre-scan concurrency (1 =
     *  serial reference; results are identical at any value). */
    std::vector<RecoveryReport> recoverAll(unsigned recovery_jobs = 1);

    /** Recovers and classifies every core's region (crash oracle). */
    std::vector<OracleReport> examineAll(unsigned recovery_jobs = 1);

    /** Aggregate: true iff every region recovered consistently. */
    bool recoveredConsistently(std::string *first_failure = nullptr);

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    /** Wall time of the run: latest core finish (or crash) tick. */
    Tick runtimeTicks() const { return lastResult.endTick; }
    double runtimeNs() const
    { return static_cast<double>(lastResult.endTick) / ticksPerNs; }

    /** Committed transactions per second of simulated time. */
    double throughputTxnPerSec() const;

    std::uint64_t nvmBytesWritten() const { return nvmDev.bytesWritten(); }
    std::uint64_t nvmBytesRead() const { return nvmDev.bytesRead(); }

    /** Counter cache read miss rate (0 for designs without one). */
    double counterCacheMissRate() const;

    stats::StatRegistry &statsRegistry() { return registry; }

    /** Channel 0's controller — the configuration reference every
     *  channel shares (recovery and the oracle read only immutable
     *  config and address-space helpers from it). */
    MemController &controller() { return *memCtls.front(); }
    const MemController &controller() const { return *memCtls.front(); }

    /** A specific channel's controller. */
    MemController &controller(unsigned channel)
    { return *memCtls.at(channel); }
    const MemController &controller(unsigned channel) const
    { return *memCtls.at(channel); }

    unsigned numChannels() const { return cfg.numChannels; }

    /**
     * Installs a semantic-event observer on *every* channel (events
     * from all channels funnel into one hook). Under the classic
     * kernel the single-threaded event loop keeps their order
     * deterministic; under the partitioned kernel each channel logs
     * its events locally and the merged log is replayed into the hook
     * at every window barrier in (tick, channel, index) order — the
     * same deterministic order at any --sim-jobs. The sweep's probe
     * census and the crash injector go through here — hooking only
     * channel 0 would blind them to the other channels' activity.
     */
    void setCtlEventHook(std::function<void(CtlEvent)> hook);

    /**
     * Models a power failure across all channels right now, outside
     * the event loop: computes the global ADR cut over every
     * channel's ready entries, drains each channel's keep-prefix, and
     * (with the integrity tree on) rebuilds the tree over the merged
     * image last — the cross-channel "root persists last globally"
     * contract. The clean-shutdown image check in the CLI uses this
     * with the default full budget.
     *
     * @param adr_drop_tail ready entries lost off the tail of the
     *        global drain order (energy exhaustion), as for
     *        MemController::crash().
     */
    void crashChannels(unsigned adr_drop_tail = 0);

    NvmDevice &nvm() { return nvmDev; }
    const NvmDevice &nvm() const { return nvmDev; }
    Workload &workload(unsigned core) { return *workloads.at(core); }
    const Workload &workload(unsigned core) const
    { return *workloads.at(core); }
    unsigned numCores() const { return cfg.numCores; }
    const SystemConfig &config() const { return cfg; }
    EventQueue &eventQueue() { return eventq; }

    /** The partitioned kernel, or null under the classic single-queue
     *  kernel. Benches read its barrier/message counters. */
    ParallelKernel *parallelKernel() { return kernel.get(); }

    /** One-line description of the configured design point. */
    std::string describe() const;

  private:
    SystemConfig cfg;
    EventQueue eventq;
    stats::StatRegistry registry;
    NvmDevice nvmDev;

    /** Shared persist-order source across every channel's queues
     *  (classic kernel only; partitioned channels own stamped
     *  sequencers instead). */
    PersistSequencer sequencer;

    // --- partitioned kernel (cfg.simJobs > 0) ---

    /** Per-channel event queues; the coordinator queue is eventq. */
    std::vector<std::unique_ptr<EventQueue>> chanQueues;

    /** Per-channel tick-stamped sequencers. */
    std::vector<std::unique_ptr<PersistSequencer>> chanSequencers;

    /** Coordinator-side proxies carrying the cross-domain traffic. */
    std::vector<std::unique_ptr<ChannelPort>> chanPorts;

    std::unique_ptr<ParallelKernel> kernel;
    std::size_t coordDomain = 0;

    /** One channel's semantic event, logged at its local tick. */
    struct ChanEvent
    {
        Tick tick;
        CtlEvent ev;
    };

    /** Per-channel single-writer event logs, merged at barriers. */
    std::vector<std::vector<ChanEvent>> chanEventLogs;

    /** The observer the merged barrier replay feeds. */
    std::function<void(CtlEvent)> userCtlHook;

    /** Spec indices whose power failure fired this window; processed
     *  at the barrier, in record order. */
    std::vector<std::size_t> pendingFires;

    /** What a fired spec does at the barrier (teardown or capture). */
    std::function<void(std::size_t)> fireAction;

    // --- end partitioned kernel ---

    /** One controller per channel; index == channel id. */
    std::vector<std::unique_ptr<MemController>> memCtls;

    /** Address-interleaved fan-out (only built when numChannels > 1;
     *  a single channel wires the paths straight to the controller
     *  or its port). */
    std::unique_ptr<ChannelRouter> router;

    std::vector<std::unique_ptr<Workload>> workloads;
    std::vector<std::unique_ptr<CoreMemPath>> memPaths;
    std::vector<std::unique_ptr<Core>> cores;

    unsigned finishedCores = 0;
    RunResult lastResult;
    CrashSnapshot snapshot;
    std::unique_ptr<CrashInjector> injector;

    /** The spec runWithCrash() armed — doCrash() reads its fault dose. */
    CrashSpec activeSpec;

    void build(const ResumeState *resume);
    void doCrash();
    RunResult runInternal();

    bool partitioned() const { return kernel != nullptr; }

    /** Window-barrier hook of the partitioned kernel: replays the
     *  merged semantic-event log and processes pending crash/fork
     *  fires while every channel is quiescent. */
    void onBarrier(Tick barrier_tick);

    /** The tick crash/fork state is captured at: the barrier tick
     *  under the partitioned kernel, the current tick otherwise. */
    Tick captureTick() const;

    /** Ready (ADR-eligible) entries across every channel. */
    unsigned totalReadyEntries() const;

    /** The global ADR cut for @p drop lost entries, per channel. */
    std::vector<AdrCut> adrCuts(unsigned drop) const;

    /** Fork-capture twin of crashChannels(): overlays each channel's
     *  keep-prefix drain on @p img, then rebuilds the tree globally. */
    void captureChannels(PersistImage &img, unsigned drop) const;

    /** Deep-copies the crash closure of the current instant (see
     *  PersistFork): persisted image + ADR overlay + @p spec's fault
     *  dose, controller snapshot, per-core digest logs. const — the
     *  faults land on the fork's image copy, never the trunk's. */
    PersistFork captureFork(const CrashSpec &spec) const;
};

} // namespace cnvm

#endif // CNVM_CORE_SYSTEM_HH
