/**
 * @file
 * Post-crash recoverability oracle.
 *
 * After a simulated power failure, the oracle does two independent
 * things per workload region and combines them into a classification:
 *
 *  1. Recovery: runs the real recovery path (decrypt with the persisted
 *     counters, roll back the undo log, validate invariants, match a
 *     committed digest prefix) — what actual recovery software can do.
 *
 *  2. Census: compares, line by line, the counter each persisted
 *     ciphertext was encrypted with against the persisted counter store
 *     — ground truth only the simulator has. A divergence means the
 *     line decrypts to garbage (paper equation 4); the direction tells
 *     which half of the pair the failure tore off.
 *
 * A consistent recovery with mismatched lines is normal for SCA: torn
 * mutate-stage lines are exactly what the undo log rolls back (paper
 * section 4.2). An inconsistent recovery is then classified by what the
 * census shows, which is how the sweep separates the Unsafe design's
 * counter-atomicity violations from any plain software bug.
 */

#ifndef CNVM_CORE_CRASH_ORACLE_HH
#define CNVM_CORE_CRASH_ORACLE_HH

#include "core/recovery.hh"
#include "memctl/mem_controller.hh"
#include "nvm/nvm_device.hh"
#include "workloads/workload.hh"

namespace cnvm
{

/** Classification of one post-crash region. */
enum class CrashClass
{
    /** Recovered to a committed prefix of the transaction history. */
    Consistent,

    /** Inconsistent; persisted counters ran ahead of their data (the
     *  data half of a pair was torn off — paper Figure 4). */
    TornData,

    /** Inconsistent; persisted data ran ahead of its counters (the
     *  deferred counter update was lost — the Unsafe failure mode). */
    TornCounter,

    /** Inconsistent with counter/data divergence in both directions. */
    CounterDataMismatch,

    /** Inconsistent with a clean counter census (software-level torn
     *  state the transaction mechanism failed to mask). */
    Inconsistent,

    /** Inconsistent, but recovery *saw* the corruption: integrity
     *  metadata rejected at least one line (repaired, quarantined, or
     *  degraded — never trusted). The acceptable outcome of a media
     *  fault. */
    DetectedCorruption,

    /** Inconsistent under injected media faults with recovery none the
     *  wiser — no MAC rejection, garbage consumed as if it were data.
     *  The failure mode integrity metadata exists to eliminate: with
     *  integrityMac on, no sweep point may ever land here. */
    SilentCorruption,

    /** Recovery *caught* at least one replayed line: its MAC verified
     *  but the integrity tree rejected the stored counter. The
     *  acceptable outcome of a replay dose (when the log could not
     *  also restore the line). */
    ReplayDetected,

    /** A replayed line landed in the region and recovery never
     *  noticed — the stale-but-valid triple passed every check it had
     *  and was consumed as current state (whether or not the final
     *  verdict came back consistent: an old committed prefix is the
     *  attack succeeding). Per-line MACs alone always land here; with
     *  integrityTree on, no sweep point may ever. */
    SilentReplay,
};

const char *crashClassName(CrashClass cls);

/** True for every inconsistent class caused by counter/data skew. */
inline bool
isCounterDataMismatch(CrashClass cls)
{
    return cls == CrashClass::TornData || cls == CrashClass::TornCounter
        || cls == CrashClass::CounterDataMismatch;
}

/** Everything the oracle learned about one region. */
struct OracleReport
{
    RecoveryReport recovery;
    CrashClass cls = CrashClass::Consistent;

    /** Census scope and findings. */
    std::uint64_t linesChecked = 0;
    std::uint64_t tornDataLines = 0;    //!< persisted counter > cipher
    std::uint64_t tornCounterLines = 0; //!< persisted counter < cipher
    std::uint64_t logHeaderMismatches = 0;

    /** Region lines an injected media fault corrupted (simulator
     *  ground truth — what separates Silent from plain Inconsistent). */
    std::uint64_t faultedLines = 0;

    /** Region lines a replay dose rolled back whole (simulator ground
     *  truth — what separates SilentReplay from everything else). */
    std::uint64_t replayedLines = 0;

    std::uint64_t mismatchedLines() const
    { return tornDataLines + tornCounterLines; }
};

/**
 * Classifies crashed images for workloads of one system. Like the
 * recovery engine it works against any PersistSource — the live device
 * after an in-place crash, or a PersistFork's captured image — and
 * reads only immutable configuration from the controller.
 */
class CrashOracle
{
  public:
    CrashOracle(const PersistSource &src, const MemController &ctl);

    /** Convenience: examine the live device's persisted state. */
    CrashOracle(const NvmDevice &nvm, const MemController &ctl);

    /**
     * Recovers and classifies one workload's region.
     *
     * @param digests optional committed-digest log override for the
     *        recovery step (see RecoveryEngine::recover).
     * @param ropt recovery options — pre-scan concurrency and friends
     *        (see RecoveryOptions); the classification is identical
     *        at any jobs value.
     */
    OracleReport examine(const Workload &workload,
                         const std::vector<std::uint64_t> *digests
                             = nullptr,
                         const RecoveryOptions &ropt = {}) const;

  private:
    const PersistSource &src;
    const MemController &ctl;
};

} // namespace cnvm

#endif // CNVM_CORE_CRASH_ORACLE_HH
