/**
 * @file
 * Deterministic crash-point sweep.
 *
 * One sweep answers "does this design recover from a power failure at
 * *any* controller state?" for one configuration:
 *
 *  1. Probe: run the configuration once to completion, counting every
 *     semantic controller event and noting the end tick.
 *
 *  2. Plan: distribute K crash points round-robin over the reachable
 *     trigger kinds — absolute ticks spread across the probed runtime,
 *     plus every semantic kind the probe observed at least once, with
 *     ordinals spread across its observed total. Semantic points pin
 *     the crash to states (mid-pipeline, mid-pairing, mid-eviction)
 *     that tick-fraction sampling hits only by luck.
 *
 *  3. Execute, in one of two modes (SweepOptions::mode):
 *
 *     - Replay (the reference): one fresh System per point, same seed,
 *       crash armed at that point, then recover and classify with the
 *       CrashOracle. Each point owns its System, CrashInjector and
 *       CrashOracle, so points are independent and the Execute phase
 *       fans out over a WorkPool (SweepOptions::jobs); results are
 *       merged in plan order, so the outcome is byte-identical to the
 *       serial loop at any job count.
 *
 *     - Fork: ONE trunk System runs with every planned spec armed at
 *       once; each firing captures a PersistFork (persisted image with
 *       the ADR drain overlaid, controller snapshot, frozen digest
 *       logs) and the trunk keeps going. Forks are classified
 *       off-trunk by classifyFork(), pipelined over the WorkPool
 *       while the trunk is still producing. K points cost one
 *       simulation plus K recoveries instead of K simulations — yet
 *       because recovery depends only on persisted state (paper
 *       section 2.2.2) and capture is side-effect free, the
 *       fingerprint is byte-identical to Replay's. The one Replay
 *       feature fork mode cannot offer is collectStatsDumps: a
 *       per-point stats dump is the property of a full dedicated run.
 *
 * Everything is derived from the configuration and the probe, so a
 * sweep is exactly reproducible for a fixed seed — fingerprint()
 * collapses the outcome into one comparable string.
 */

#ifndef CNVM_CORE_CRASH_SWEEP_HH
#define CNVM_CORE_CRASH_SWEEP_HH

#include <array>
#include <string>
#include <vector>

#include "core/crash_injector.hh"
#include "core/crash_oracle.hh"
#include "core/system.hh"
#include "runner/runner.hh"

namespace cnvm
{

/** What the probe run observed. */
struct SweepProbe
{
    Tick endTick = 0;
    std::uint64_t txnsIssued = 0;

    /** Occurrences of each CtlEvent over the whole run. */
    std::array<std::uint64_t, numCtlEvents> eventCounts{};

    std::uint64_t
    countOf(CtlEvent ev) const
    {
        return eventCounts[static_cast<unsigned>(ev)];
    }
};

/** Outcome of one crash point. */
struct SweepPoint
{
    CrashSpec spec;

    /** False when the workloads finished before the trigger fired. */
    bool crashed = false;

    CrashSnapshot snapshot;

    /** Worst classification over all per-core regions. */
    CrashClass cls = CrashClass::Consistent;

    /** First inconsistent region's failure detail (empty if none). */
    std::string detail;

    std::uint64_t mismatchedLines = 0;
    std::uint64_t committedTxns = 0;

    /** Corruption accounting over all regions (fault sweeps). */
    std::uint64_t faultedLines = 0;
    std::uint64_t detectedCorruptions = 0;
    std::uint64_t repairedLines = 0;
    std::uint64_t unrecoverableLines = 0;

    /** Replay accounting over all regions (replay-dosed sweeps):
     *  ground-truth replayed lines vs. replays recovery caught. */
    std::uint64_t replayedLines = 0;
    std::uint64_t replaysDetected = 0;

    /** Full stats dump of the point's System, collected only when
     *  SweepOptions::collectStatsDumps is set (determinism checks). */
    std::string statsDump;
};

/** Execute-phase strategy (see the file header). */
enum class SweepMode
{
    Replay, //!< one dedicated crashed simulation per point (reference)
    Fork,   //!< one trunk run; capture persistent-state forks, classify
            //!< them off-trunk
};

const char *sweepModeName(SweepMode mode);

/** How to run a sweep (step 2 shape and step 3 execution). */
struct SweepOptions
{
    unsigned points = 20;

    /** False restricts the plan to absolute ticks (legacy sampling). */
    bool semanticTriggers = true;

    /** Execute-phase strategy. Fork is the fast path; Replay the
     *  reference it is regression-tested against. */
    SweepMode mode = SweepMode::Replay;

    /**
     * Concurrency of the Execute phase. 1 is the serial reference
     * loop; 0 asks for WorkPool::hardwareJobs(). Results are merged
     * in plan order, so fingerprints and stats are identical at any
     * value.
     */
    unsigned jobs = 1;

    /** Capture each point's full stats dump into SweepPoint.
     *  Replay mode only: a fork has no dedicated System to dump, so
     *  fork-mode points leave statsDump empty. */
    bool collectStatsDumps = false;

    /**
     * Concurrency of each point's recovery (the integrity pre-scan
     * shards over a pool of this size). 1 is the serial reference;
     * recovery output is byte-identical at any value. Orthogonal to
     * `jobs`: that fans out *points*, this fans out the work *inside*
     * one point's recovery.
     */
    unsigned recoveryJobs = 1;

    /**
     * Base fault dose. When any() is set, every planned point gets
     * this dose with a per-point seed derived from faults.seed and
     * the plan index (FaultSpec::forPoint) — deterministic across
     * Replay/Fork modes and any job count. Default: clean crashes.
     */
    FaultSpec faults;
};

/** Aggregate sweep outcome. */
struct SweepResult
{
    SweepProbe probe;
    std::vector<SweepPoint> points;

    unsigned
    countOf(CrashClass cls) const
    {
        unsigned n = 0;
        for (const SweepPoint &p : points)
            n += p.crashed && p.cls == cls;
        return n;
    }

    /** Crash points whose recovery failed, any class. */
    unsigned
    inconsistentPoints() const
    {
        unsigned n = 0;
        for (const SweepPoint &p : points)
            n += p.crashed && p.cls != CrashClass::Consistent;
        return n;
    }

    /** Failed points attributable to counter/data divergence. */
    unsigned
    mismatchPoints() const
    {
        unsigned n = 0;
        for (const SweepPoint &p : points)
            n += p.crashed && isCounterDataMismatch(p.cls);
        return n;
    }

    /** Points whose trigger never fired (run completed first). */
    unsigned
    unreachedPoints() const
    {
        unsigned n = 0;
        for (const SweepPoint &p : points)
            n += !p.crashed;
        return n;
    }

    /** Points where injected corruption went entirely unnoticed.
     *  Deliberately excludes SilentReplay, which has its own counter —
     *  callers gating MAC-only fault sweeps keep meaning what they
     *  always meant. */
    unsigned silentPoints() const
    { return countOf(CrashClass::SilentCorruption); }

    /** Points where a replayed line was consumed unnoticed. */
    unsigned silentReplayPoints() const
    { return countOf(CrashClass::SilentReplay); }

    /** Points where recovery caught a replay (integrity tree). */
    unsigned replayDetectedPoints() const
    { return countOf(CrashClass::ReplayDetected); }

    /** Points where recovery saw corruption (integrity metadata). */
    unsigned
    detectedPoints() const
    {
        unsigned n = 0;
        for (const SweepPoint &p : points)
            n += p.crashed && p.detectedCorruptions > 0;
        return n;
    }

    /** Sum of a per-point corruption counter over reached points. */
    std::uint64_t
    totalOf(std::uint64_t SweepPoint::*field) const
    {
        std::uint64_t n = 0;
        for (const SweepPoint &p : points)
            n += p.crashed ? p.*field : 0;
        return n;
    }

    /** Deterministic one-line digest of every point's spec and class. */
    std::string fingerprint() const;
};

/** Probes one configuration (step 1). */
SweepProbe probeRun(const SystemConfig &cfg);

/**
 * Plans @p points crash specs from a probe (step 2). Set
 * @p semantic_triggers false to restrict the plan to absolute ticks
 * (the legacy tick-fraction sampling, for comparison).
 */
std::vector<CrashSpec> planSweep(const SweepProbe &probe, unsigned points,
                                 bool semantic_triggers = true);

/** Executes one planned crash point against a fresh System (step 3,
 *  Replay mode). */
SweepPoint runSweepPoint(const SystemConfig &cfg, const CrashSpec &spec,
                         bool collect_stats = false,
                         unsigned recovery_jobs = 1);

/**
 * Classifies one captured crash point off-trunk (step 3, Fork mode):
 * recovery + oracle census over the fork's persisted image and frozen
 * digest logs. Reads only immutable configuration from @p trunk (the
 * controller's design/layout/engine and each workload's region
 * layout), so it is safe to call from a worker thread while the trunk
 * is still simulating. Produces the same SweepPoint a Replay-mode
 * runSweepPoint() of @p spec would.
 */
SweepPoint classifyFork(const System &trunk, const CrashSpec &spec,
                        const PersistFork &fork,
                        unsigned recovery_jobs = 1);

/**
 * Probe + plan + execute. When @p pool is given it runs the Execute
 * phase (its jobs() overrides @p opt.jobs); otherwise a pool is
 * created per SweepOptions::jobs, with jobs == 1 staying the plain
 * serial loop.
 */
SweepResult runSweep(const SystemConfig &cfg, const SweepOptions &opt,
                     WorkPool *pool = nullptr);

/** Convenience overload with serial execution (jobs == 1). */
SweepResult runSweep(const SystemConfig &cfg, unsigned points,
                     bool semantic_triggers = true);

} // namespace cnvm

#endif // CNVM_CORE_CRASH_SWEEP_HH
