/**
 * @file
 * Crash-chain soak harness: the resume-after-recovery lifecycle, run
 * in anger.
 *
 * A crash sweep (crash_sweep.hh) answers "is every single crash point
 * recoverable?" — one crash, one recovery, one verdict, state
 * discarded. The soak harness answers the harder operational
 * question: does the machine stay consistent across a *chain* of
 * lifecycles, where each recovered image becomes the next run's
 * starting state and faults accumulate dose after dose?
 *
 *   cycle c:  resume(state[c-1]) → run toward a grown transaction
 *             target → planned crash (or clean shutdown when the
 *             target is reached first) → optional media/replay dose →
 *             degraded write-back recovery → oracle checks →
 *             state[c]
 *
 * Each cycle's crash point is drawn deterministically from the chain
 * seed (rotating over absolute ticks and the semantic trigger kinds a
 * probe run observed), and fault doses are derived per cycle with
 * FaultSpec::forPoint — the whole chain is a pure function of
 * (config, options), byte-identical at any worker count.
 *
 * The SoakOracle carries state *across* cycles — exactly what a
 * single-crash sweep cannot check:
 *
 *  - the committed-transaction count per core never decreases within
 *    an incarnation (a loud, counted incarnation reset is allowed
 *    only when a cycle's recovery failed even in degraded mode);
 *  - the quarantine never silently shrinks: a line may only leave
 *    quarantine when its persisted (cipher, counter, MAC) triple
 *    changed — i.e. something legitimately rewrote the media;
 *  - no cycle ever classifies SilentCorruption or SilentReplay;
 *  - the final image, after one last resume and a run to completion,
 *    passes a full integrity examination with every region
 *    consistent.
 *
 * See DESIGN.md section 4i for the re-seed equivalence argument that
 * makes resuming from a write-back-committed image sound.
 */

#ifndef CNVM_CORE_SOAK_HH
#define CNVM_CORE_SOAK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/crash_injector.hh"
#include "core/crash_oracle.hh"
#include "core/system.hh"
#include "nvm/fault_model.hh"
#include "runner/runner.hh"

namespace cnvm
{

/** How to run one soak chain (or a fleet of them). */
struct SoakOptions
{
    /** Crash→recover→resume cycles per chain (the final resume-and-
     *  complete examination runs in addition, as cycle `cycles`). */
    unsigned cycles = 20;

    /** Committed-target growth per cycle: cycle c runs toward
     *  (max committed so far) + txnsPerCycle transactions per core. */
    unsigned txnsPerCycle = 12;

    /** Base fault dose; dosed cycles derive a private spec with
     *  FaultSpec::forPoint(cycle). Default: clean chains. */
    FaultSpec faults;

    /** Dose every Nth cycle (cycles N-1, 2N-1, ... get the dose);
     *  0 = never, even when `faults` is non-empty. */
    unsigned faultPeriod = 2;

    /** Pre-scan concurrency of every recovery (1 = serial reference;
     *  chain outcomes are identical at any value). */
    unsigned recoveryJobs = 1;

    /** Interrupted write-back recovery attempts per cycle, run on a
     *  throwaway image copy and gated on convergence with the
     *  committing pass — crash-during-recovery idempotence, checked
     *  inside the chain. 0 disables the probe. */
    unsigned recoveryCrashes = 0;

    /** Chain planning seed (crash points, injector ordinals). */
    std::uint64_t seed = 1;

    /** Rotate over semantic trigger kinds as well as absolute ticks. */
    bool semanticTriggers = true;

    /** Independent chains to run (each with a derived seed). */
    unsigned chains = 1;

    /** Chain-level concurrency when runSoak() builds its own pool. */
    unsigned jobs = 1;
};

/** Point-in-time counters captured from one cycle's System before it
 *  is torn down. Each cycle runs on a freshly built System, so every
 *  memctl.chN.* / core / nvm stat is per-cycle (reset) by
 *  construction; the accumulate view is the sum over these
 *  snapshots. */
struct CycleStats
{
    std::uint64_t txnsIssued = 0;
    std::uint64_t nvmBytesWritten = 0;
    std::uint64_t nvmBytesRead = 0;
    std::uint64_t dataInserts = 0;
};

/** Outcome of one crash→recover→resume cycle. */
struct SoakCycle
{
    unsigned cycle = 0;

    /** The planned crash point (ignore for the final examination
     *  cycle, which always runs to completion). */
    CrashSpec spec;

    /** False when the target was reached first: the cycle ended in a
     *  clean shutdown instead of a power failure (still recovered,
     *  still checked). */
    bool crashed = false;

    /** Whether this cycle's image took a fault dose. */
    bool dosed = false;

    Tick endTick = 0;

    /** Worst per-core classification this cycle. */
    CrashClass worst = CrashClass::Consistent;

    /** Per-core committed transaction counts after recovery (zero for
     *  a core entering a fresh incarnation). */
    std::vector<std::uint64_t> committed;

    /** Lines still quarantined after this cycle's recovery. */
    std::uint64_t quarantined = 0;

    std::uint64_t detectedCorruptions = 0;
    std::uint64_t replaysDetected = 0;
    std::uint64_t repairedLines = 0;

    /** Cores entering the next cycle as fresh incarnations (recovery
     *  failed even degraded — loud, counted, never silent). */
    unsigned resets = 0;

    /** Any core completed only degraded (residual quarantine). */
    bool degraded = false;

    /** Interrupted write-back attempts the idempotence probe fired. */
    unsigned recoveryInterrupts = 0;

    CycleStats stats;

    /** True when the cycle classified silently — the outcome the soak
     *  gate forbids. */
    bool
    silent() const
    {
        return worst == CrashClass::SilentCorruption
            || worst == CrashClass::SilentReplay;
    }

    /** Deterministic fingerprint atom, e.g.
     *  "c3:tick 12345!f cls=consistent q2 r0 t36". */
    std::string describe() const;
};

/**
 * Carries the cumulative invariants across cycles. Exposed so
 * directed tests can drive it; runSoakChain() owns one per chain.
 */
class SoakOracle
{
  public:
    explicit SoakOracle(unsigned num_cores);

    /**
     * Checks one cycle's post-recovery state against the cumulative
     * invariants and updates the carried state.
     *
     * @param reports   per-core oracle reports (recovery ran in
     *        degraded write-back mode against @p img).
     * @param img       the write-back-committed recovered image.
     * @param ctl       address-space reference (any channel).
     * @param fresh_out filled with per-core fresh-incarnation flags:
     *        set for cores whose recovery failed even degraded and
     *        which must restart from scratch next cycle.
     * @return empty string when every invariant holds, else a
     *         description of the first violation.
     */
    std::string observe(const std::vector<OracleReport> &reports,
                        const PersistImage &img,
                        const MemController &ctl,
                        std::vector<std::uint8_t> &fresh_out);

    /** Total incarnation resets observed so far. */
    unsigned resets() const { return resetCount; }

    /** Lines currently tracked as quarantined. */
    std::size_t quarantinedCount() const { return quarantineHash.size(); }

  private:
    /** Per-core carried state. */
    struct CoreState
    {
        std::uint64_t committed = 0;
        unsigned incarnation = 0;
    };

    std::vector<CoreState> coreState;

    /** Quarantined line -> fnv1a hash of its persisted (cipher,
     *  counter, MAC) triple at quarantine time. A line may leave this
     *  map only when the stored triple changed. */
    std::unordered_map<Addr, std::uint64_t> quarantineHash;

    unsigned resetCount = 0;
};

/** Outcome of one chain. */
struct SoakChainResult
{
    unsigned chainIndex = 0;

    /** Every invariant held through every cycle and the final
     *  examination. */
    bool ok = false;

    /** First violation (empty when ok). */
    std::string failure;

    /** One entry per executed cycle, plus the final examination as
     *  cycle `opt.cycles` (its crashed flag is always false). */
    std::vector<SoakCycle> cycles;

    /** The transaction target the final completion run used — the
     *  uninterrupted control run a clean-chain identity test compares
     *  against must use exactly this txnTarget. */
    unsigned finalTxnTarget = 0;

    /** Per-core committed counts of the final examination (equal to
     *  finalTxnTarget for every core when ok). */
    std::vector<std::uint64_t> finalCommitted;

    /** fnv1a fold of the final examination's per-core recovered
     *  (logical-content) digests — the clean-chain identity anchor:
     *  ciphertexts and counters legitimately differ from an
     *  uninterrupted run's, the decrypted committed content must
     *  not. */
    std::uint64_t finalDigest = 0;

    /** Lines still quarantined in the final image. */
    std::uint64_t finalQuarantined = 0;

    unsigned
    silentCycles() const
    {
        unsigned n = 0;
        for (const SoakCycle &c : cycles)
            n += c.silent();
        return n;
    }

    unsigned
    totalResets() const
    {
        unsigned n = 0;
        for (const SoakCycle &c : cycles)
            n += c.resets;
        return n;
    }

    unsigned
    crashedCycles() const
    {
        unsigned n = 0;
        for (const SoakCycle &c : cycles)
            n += c.crashed;
        return n;
    }

    unsigned
    dosedCycles() const
    {
        unsigned n = 0;
        for (const SoakCycle &c : cycles)
            n += c.dosed;
        return n;
    }

    /** Deterministic digest of every cycle's spec and outcome —
     *  byte-identical for the same (config, options) at any worker
     *  count. */
    std::string fingerprint() const;
};

/** Aggregate over a fleet of chains. */
struct SoakResult
{
    std::vector<SoakChainResult> chains;

    bool
    allOk() const
    {
        if (chains.empty())
            return false;
        for (const SoakChainResult &c : chains)
            if (!c.ok)
                return false;
        return true;
    }

    /** First failing chain's failure string (empty when allOk). */
    std::string firstFailure() const;

    unsigned
    totalCycles() const
    {
        unsigned n = 0;
        for (const SoakChainResult &c : chains)
            n += static_cast<unsigned>(c.cycles.size());
        return n;
    }

    unsigned
    totalResets() const
    {
        unsigned n = 0;
        for (const SoakChainResult &c : chains)
            n += c.totalResets();
        return n;
    }

    unsigned
    totalSilent() const
    {
        unsigned n = 0;
        for (const SoakChainResult &c : chains)
            n += c.silentCycles();
        return n;
    }

    /** Concatenation of every chain's fingerprint, in chain order. */
    std::string fingerprint() const;
};

/**
 * Whether a soak chain under this design/protection/dose combination
 * is expected to complete ok — every cycle classified loud and the
 * final examination fully consistent at target. The remaining
 * combinations are negative controls, expected to fail (and the CLI
 * gates check that they fail the right way):
 *
 *  - a fault dose without integrity MACs can corrupt silently;
 *  - a replay dose without the integrity tree slips past per-line
 *    MACs (the stale triple verifies);
 *  - Unsafe without MACs tears even a clean shutdown: its deferred
 *    counter write-backs are lost past the ADR drain, so the log
 *    header decrypts with a stale counter. With MACs armed the
 *    window repair restores the torn counter and Unsafe soaks like
 *    the rest.
 */
inline bool
soakChainExpectedOk(DesignPoint d, bool integrity_mac,
                    bool integrity_tree, bool faults, bool replays)
{
    if (faults && !integrity_mac)
        return false;
    if (replays && !integrity_tree)
        return false;
    if (!designCrashConsistent(d) && !integrity_mac)
        return false;
    return true;
}

/**
 * Runs one seed-deterministic soak chain: `opt.cycles`
 * crash→recover→resume cycles followed by a final resume, a run to
 * completion, a clean shutdown and a full integrity examination.
 * Pure function of (cfg, opt) — identical at any recoveryJobs and
 * under any cfg.numChannels / cfg.simJobs configuration.
 */
SoakChainResult runSoakChain(const SystemConfig &cfg,
                             const SoakOptions &opt);

/**
 * Fans `opt.chains` independent chains (seeds derived from opt.seed)
 * over @p pool — or a private WorkPool(opt.jobs) when @p pool is
 * null. Chains are independent and each is deterministic, so the
 * result (and its fingerprint) is byte-identical at any jobs value.
 */
SoakResult runSoak(const SystemConfig &cfg, const SoakOptions &opt,
                   WorkPool *pool = nullptr);

} // namespace cnvm

#endif // CNVM_CORE_SOAK_HH
