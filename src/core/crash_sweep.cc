#include "core/crash_sweep.hh"

#include <memory>
#include <sstream>

#include "common/logging.hh"

namespace cnvm
{

namespace
{

/** Severity order for aggregating per-region classes into one. */
unsigned
severity(CrashClass cls)
{
    switch (cls) {
      case CrashClass::Consistent: return 0;
      case CrashClass::Inconsistent: return 1;
      case CrashClass::TornData: return 2;
      case CrashClass::TornCounter: return 3;
      case CrashClass::CounterDataMismatch: return 4;
      case CrashClass::DetectedCorruption: return 5;
      case CrashClass::ReplayDetected: return 6;
      case CrashClass::SilentCorruption: return 7;
      case CrashClass::SilentReplay: return 8;
    }
    return 0;
}

/** Folds one region's oracle report into its point's aggregate. */
void
accumulate(SweepPoint &point, const OracleReport &report)
{
    if (severity(report.cls) > severity(point.cls)) {
        point.cls = report.cls;
        point.detail = report.recovery.detail;
    }
    point.mismatchedLines += report.mismatchedLines();
    point.committedTxns += report.recovery.committedTxns;
    point.faultedLines += report.faultedLines;
    point.replayedLines += report.replayedLines;
    point.detectedCorruptions += report.recovery.detectedCorruptions;
    point.replaysDetected += report.recovery.replaysDetected;
    point.repairedLines += report.recovery.repairedLines;
    point.unrecoverableLines += report.recovery.unrecoverableLines;
}

/** Semantic kinds in planning order. */
constexpr CrashTriggerKind semanticKinds[] = {
    CrashTriggerKind::DataDrain,
    CrashTriggerKind::PipelineEnter,
    CrashTriggerKind::CtrDrain,
    CrashTriggerKind::PairAction,
    CrashTriggerKind::DirtyEviction,
};

} // anonymous namespace

const char *
sweepModeName(SweepMode mode)
{
    switch (mode) {
      case SweepMode::Replay: return "replay";
      case SweepMode::Fork: return "fork";
    }
    return "?";
}

SweepProbe
probeRun(const SystemConfig &cfg)
{
    System sys(cfg);
    SweepProbe probe;
    sys.setCtlEventHook([&probe](CtlEvent ev) {
        ++probe.eventCounts[static_cast<unsigned>(ev)];
    });
    RunResult result = sys.run();
    probe.endTick = result.endTick;
    probe.txnsIssued = result.txnsIssued;
    return probe;
}

std::vector<CrashSpec>
planSweep(const SweepProbe &probe, unsigned points, bool semantic_triggers)
{
    cnvm_assert(probe.endTick > 0);

    // Candidate kinds: ticks always; each semantic kind only if the
    // probe saw it at all (an FCA run has no dirty evictions to crash
    // at, an unencrypted one no pairings).
    std::vector<CrashTriggerKind> kinds{CrashTriggerKind::AtTick};
    if (semantic_triggers) {
        for (CrashTriggerKind kind : semanticKinds) {
            auto ev = ctlEventFor(kind);
            if (ev && probe.countOf(*ev) > 0)
                kinds.push_back(kind);
        }
    }

    // Round-robin the budget over the kinds, then spread each kind's
    // share evenly over its domain (runtime, or observed ordinals).
    std::vector<unsigned> share(kinds.size(), 0);
    for (unsigned i = 0; i < points; ++i)
        ++share[i % kinds.size()];

    std::vector<CrashSpec> specs;
    specs.reserve(points);
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        CrashTriggerKind kind = kinds[k];
        unsigned n = share[k];
        if (kind == CrashTriggerKind::AtTick) {
            for (unsigned i = 0; i < n; ++i) {
                Tick t = probe.endTick
                    * static_cast<std::uint64_t>(i + 1) / (n + 1);
                specs.push_back(CrashSpec::atTick(std::max<Tick>(t, 1)));
            }
        } else {
            std::uint64_t total = probe.countOf(*ctlEventFor(kind));
            for (unsigned i = 0; i < n; ++i) {
                std::uint64_t nth = 1 + total * i / n;
                specs.push_back(CrashSpec::atEvent(kind, nth));
            }
        }
    }
    return specs;
}

SweepPoint
runSweepPoint(const SystemConfig &cfg, const CrashSpec &spec,
              bool collect_stats, unsigned recovery_jobs)
{
    SweepPoint point;
    point.spec = spec;

    System sys(cfg);
    RunResult result = sys.runWithCrash(spec);
    point.crashed = result.crashed;
    point.snapshot = sys.crashSnapshot();

    if (point.crashed) {
        for (const OracleReport &report : sys.examineAll(recovery_jobs))
            accumulate(point, report);
    }

    if (collect_stats) {
        std::ostringstream os;
        sys.statsRegistry().dump(os);
        point.statsDump = os.str();
    }
    return point;
}

SweepPoint
classifyFork(const System &trunk, const CrashSpec &spec,
             const PersistFork &fork, unsigned recovery_jobs)
{
    SweepPoint point;
    point.spec = spec;
    point.crashed = true;
    point.snapshot = fork.snapshot;

    // An inner pool for the recovery pre-scan, when asked for: a
    // fork-mode worker thread classifying this fork may itself shard
    // the per-line MAC verification.
    std::unique_ptr<WorkPool> pool;
    RecoveryOptions ropt;
    if (recovery_jobs != 1) {
        pool = std::make_unique<WorkPool>(recovery_jobs);
        ropt.pool = pool.get();
    }

    CrashOracle oracle(fork.image, trunk.controller());
    for (unsigned c = 0; c < trunk.numCores(); ++c) {
        OracleReport report = oracle.examine(
            trunk.workload(c), &fork.coreDigests.at(c), ropt);
        accumulate(point, report);
    }
    return point;
}

namespace
{

/**
 * Fork-mode Execute: arm the whole plan on one trunk System; every
 * firing spec captures a PersistFork and is classified off-trunk on
 * the pool, pipelined with the still-running trunk. Points whose
 * trigger never fires keep their preset unreached state — the same
 * semantics a Replay run that completes before its trigger has.
 */
void
executeForkSweep(const SystemConfig &cfg,
                 const std::vector<CrashSpec> &plan, WorkPool &pool,
                 unsigned recovery_jobs, SweepResult &result)
{
    result.points.resize(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i)
        result.points[i].spec = plan[i];

    System trunk(cfg);
    trunk.runWithForkCapture(
        plan, [&](std::size_t i, PersistFork fork) {
            // The fork moves into shared ownership: the capture
            // callback returns (the trunk resumes) while a worker may
            // still be classifying.
            auto owned = std::make_shared<PersistFork>(std::move(fork));
            pool.submit([&trunk, &plan, &result, i, owned,
                         recovery_jobs]() {
                result.points[i] = classifyFork(trunk, plan[i], *owned,
                                                recovery_jobs);
            });
        });
    // The trunk has finished; drain the classification tail before it
    // goes out of scope (classifyFork reads its immutable config).
    pool.waitSubmitted();
}

} // anonymous namespace

SweepResult
runSweep(const SystemConfig &cfg, const SweepOptions &opt, WorkPool *pool)
{
    SweepResult result;
    result.probe = probeRun(cfg);
    std::vector<CrashSpec> plan =
        planSweep(result.probe, opt.points, opt.semanticTriggers);

    // Fault sweeps dose every point identically but seed each point's
    // fault RNG from (base seed, plan index), so the whole sweep is a
    // pure function of the configuration and the base seed — in both
    // Execute modes, at any job count.
    if (opt.faults.any()) {
        for (std::size_t i = 0; i < plan.size(); ++i)
            plan[i].faults = opt.faults.forPoint(i);
    }

    if (opt.mode == SweepMode::Fork) {
        if (pool != nullptr) {
            executeForkSweep(cfg, plan, *pool, opt.recoveryJobs, result);
        } else {
            WorkPool local(opt.jobs);
            executeForkSweep(cfg, plan, local, opt.recoveryJobs, result);
        }
        return result;
    }

    if (pool == nullptr && opt.jobs == 1) {
        // Serial reference path: identical to the historical loop.
        result.points.reserve(plan.size());
        for (const CrashSpec &spec : plan)
            result.points.push_back(
                runSweepPoint(cfg, spec, opt.collectStatsDumps,
                              opt.recoveryJobs));
        return result;
    }

    // Each point owns its System/CrashInjector/CrashOracle, so the
    // Execute phase is embarrassingly parallel; map() collects each
    // SweepPoint into its plan-order slot, keeping fingerprint()
    // byte-identical to the serial path at any job count.
    auto execute = [&](WorkPool &p) {
        result.points = p.map<SweepPoint>(plan.size(), [&](std::size_t i) {
            return runSweepPoint(cfg, plan[i], opt.collectStatsDumps,
                                 opt.recoveryJobs);
        });
    };
    if (pool != nullptr) {
        execute(*pool);
    } else {
        WorkPool local(opt.jobs);
        execute(local);
    }
    return result;
}

SweepResult
runSweep(const SystemConfig &cfg, unsigned points, bool semantic_triggers)
{
    SweepOptions opt;
    opt.points = points;
    opt.semanticTriggers = semantic_triggers;
    return runSweep(cfg, opt);
}

std::string
SweepResult::fingerprint() const
{
    std::ostringstream os;
    for (const SweepPoint &p : points) {
        os << p.spec.describe() << "=";
        if (!p.crashed) {
            os << "unreached";
        } else {
            os << crashClassName(p.cls) << "@" << p.snapshot.tick << "/"
               << p.mismatchedLines;
            // Fault points append their corruption accounting; clean
            // points keep the historical fingerprint format.
            if (p.spec.faults.any()) {
                os << "/f" << p.faultedLines << "d"
                   << p.detectedCorruptions << "r" << p.repairedLines
                   << "u" << p.unrecoverableLines;
                // Replay accounting appears only when replays were
                // dosed, so replay-free fault sweeps keep their
                // historical fingerprints.
                if (p.spec.faults.replays > 0)
                    os << "p" << p.replayedLines << "k"
                       << p.replaysDetected;
            }
        }
        os << ";";
    }
    return os.str();
}

} // namespace cnvm
