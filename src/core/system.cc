#include "core/system.hh"

#include <algorithm>
#include <sstream>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "integrity/integrity_tree.hh"
#include "runner/runner.hh"

namespace cnvm
{

namespace
{

/** Per-core bank-stagger step (see build(): 33 lines, coprime to the
 *  bank-interleave period). */
constexpr Addr bankStaggerStep = Addr(33) * lineBytes;

/**
 * Stride between per-core regions, rounded for clean bank mapping and
 * padded so that every core's staggered region still fits inside its
 * own slot: core i's region starts bankStaggerStep * i past its slot
 * base, so the slot must absorb the largest stagger or the last cores
 * would bleed into their neighbours' slots.
 */
Addr
regionStride(const WorkloadParams &wl, unsigned num_cores)
{
    Addr max_stagger = Addr(num_cores - 1) * bankStaggerStep;
    return roundUp(wl.regionBytes + max_stagger, 1ull << 20);
}

/** Validated interleave map for the configured channel count. */
ChannelMap
makeChannelMap(const SystemConfig &cfg)
{
    if (!isPowerOfTwo(cfg.numChannels))
        cnvm_fatal("numChannels must be a nonzero power of two, got %u",
                   cfg.numChannels);
    return ChannelMap(cfg.numChannels, cfg.memctl.counterRegionBase);
}

} // anonymous namespace

System::System(const SystemConfig &cfg_in)
    : cfg(cfg_in),
      nvmDev(cfg_in.nvm, &registry, makeChannelMap(cfg_in))
{
    cnvm_assert(cfg.numCores >= 1);
    build(nullptr);
}

System::System(const SystemConfig &cfg_in, const ResumeState &resume)
    : cfg(cfg_in),
      nvmDev(cfg_in.nvm, &registry, makeChannelMap(cfg_in))
{
    cnvm_assert(cfg.numCores >= 1);
    cnvm_assert(resume.committedTxns.size() == cfg.numCores);
    cnvm_assert(resume.quarantined.size() == cfg.numCores);
    build(&resume);
}

System::~System() = default;

void
System::build(const ResumeState *resume)
{
    if (cfg.simJobs > 0) {
        // Partitioned kernel: one domain per channel plus the
        // coordinator (CPU/cache/workload) domain, synchronized in
        // windows of the cross-domain hop latency. The channel
        // domains come first so domain index == channel id.
        kernel = std::make_unique<ParallelKernel>(cfg.channelHopLatency,
                                                  cfg.simJobs);
        for (unsigned ch = 0; ch < cfg.numChannels; ++ch) {
            chanQueues.push_back(std::make_unique<EventQueue>());
            auto seq = std::make_unique<PersistSequencer>();
            seq->enableStamped(ch);
            chanSequencers.push_back(std::move(seq));
            kernel->addDomain(chanQueues.back().get());
        }
        coordDomain = kernel->addDomain(&eventq);
        chanEventLogs.resize(cfg.numChannels);
        kernel->setBarrierHook([this](Tick t) { onBarrier(t); });
    }

    MemCtlConfig mc = cfg.memctl;
    mc.design = cfg.design;
    mc.numChannels = cfg.numChannels;
    // The configured counter-cache capacity is the explicit system
    // total; each channel owns an equal slice of it.
    if (cfg.memctl.counterCacheBytes % cfg.numChannels != 0) {
        cnvm_fatal("counter cache (%llu B) does not split evenly over "
                   "%u channels",
                   static_cast<unsigned long long>(
                       cfg.memctl.counterCacheBytes),
                   cfg.numChannels);
    }
    mc.counterCacheBytes = cfg.memctl.counterCacheBytes / cfg.numChannels;
    for (unsigned ch = 0; ch < cfg.numChannels; ++ch) {
        mc.channelId = ch;
        // Partitioned: the controller lives on its channel's queue and
        // stamps sequence numbers from its own simulated clock, making
        // global persist order a pure function of simulated time.
        EventQueue &ctl_eq = partitioned() ? *chanQueues[ch] : eventq;
        PersistSequencer *seq =
            partitioned() ? chanSequencers[ch].get() : &sequencer;
        memCtls.push_back(std::make_unique<MemController>(
            ctl_eq, nvmDev, mc, &registry, seq));
        if (partitioned()) {
            // Record semantic events locally (single-writer log);
            // onBarrier() merges and replays them deterministically.
            memCtls.back()->setEventHook([this, ch](CtlEvent ev) {
                chanEventLogs[ch].push_back(
                    ChanEvent{chanQueues[ch]->curTick(), ev});
            });
        }
    }

    MemBackend *backend;
    if (partitioned()) {
        for (unsigned ch = 0; ch < cfg.numChannels; ++ch) {
            chanPorts.push_back(std::make_unique<ChannelPort>(
                *kernel, coordDomain, ch, *memCtls[ch],
                cfg.channelHopLatency));
        }
        backend = chanPorts.front().get();
        if (cfg.numChannels > 1) {
            std::vector<MemBackend *> chans;
            chans.reserve(chanPorts.size());
            for (auto &port : chanPorts)
                chans.push_back(port.get());
            router = std::make_unique<ChannelRouter>(std::move(chans),
                                                     nvmDev.channelMap());
            backend = router.get();
        }
    } else {
        backend = memCtls.front().get();
        if (cfg.numChannels > 1) {
            std::vector<MemBackend *> chans;
            chans.reserve(memCtls.size());
            for (auto &ctl : memCtls)
                chans.push_back(ctl.get());
            router = std::make_unique<ChannelRouter>(std::move(chans),
                                                     nvmDev.channelMap());
            backend = router.get();
        }
    }

    ClockDomain cpu_clock(static_cast<Tick>(1000.0 / cfg.cpuGHz));

    Addr prev_region_end = 0;
    for (unsigned i = 0; i < cfg.numCores; ++i) {
        WorkloadParams wl = cfg.wl;
        // The stagger keeps different cores' hot lines (log headers,
        // metadata) off the same NVM banks: a plain power-of-two
        // stride is a multiple of the bank-interleave period, which
        // would pile every core's log area onto one bank.
        Addr bank_stagger = Addr(i) * bankStaggerStep;
        wl.regionBase = cfg.dataRegionBase
                      + i * regionStride(cfg.wl, cfg.numCores)
                      + bank_stagger;
        // Layout guards: a region that reaches into its neighbour (or
        // past the data half of the address space into the counter
        // store) would silently corrupt another core's state long
        // before any crash machinery could notice.
        if (wl.regionBase < prev_region_end) {
            cnvm_fatal("core %u region [%#llx, %#llx) overlaps core %u "
                       "(stride too small for the bank stagger)",
                       i,
                       static_cast<unsigned long long>(wl.regionBase),
                       static_cast<unsigned long long>(wl.regionBase
                                                       + wl.regionBytes),
                       i - 1);
        }
        prev_region_end = wl.regionBase + wl.regionBytes;
        if (prev_region_end > cfg.memctl.counterRegionBase) {
            cnvm_fatal("core %u region [%#llx, %#llx) overflows into "
                       "the counter region at %#llx",
                       i,
                       static_cast<unsigned long long>(wl.regionBase),
                       static_cast<unsigned long long>(prev_region_end),
                       static_cast<unsigned long long>(
                           cfg.memctl.counterRegionBase));
        }
        wl.seed = cfg.coreSeed(i);
        workloads.push_back(makeWorkload(cfg.workload, wl));

        memPaths.push_back(std::make_unique<CoreMemPath>(
            eventq, cpu_clock, *backend, cfg.cache, i, &registry));
        cores.push_back(std::make_unique<Core>(
            eventq, cpu_clock, *memPaths.back(), *workloads.back(), i,
            &registry));
        cores.back()->setOnFinished([this]() {
            ++finishedCores;
            if (finishedCores == cfg.numCores) {
                if (injector)
                    injector->disarm();
                // Partitioned: no stop — the kernel runs on to
                // natural quiescence, which is the settle phase.
                if (!partitioned())
                    eventq.requestStop();
            }
        });
    }

    const ChannelMap &map = nvmDev.channelMap();
    if (resume == nullptr) {
        // Install each workload's initial state consistently: live
        // view, encrypted image and counters, as a freshly booted
        // system. Setup routes each line to its owning channel so the
        // per-channel counter engines see exactly their shard.
        for (auto &wl : workloads) {
            wl->setup([this](Addr a, const void *d, unsigned s) {
                nvmDev.livePlainStore(
                    a, s, static_cast<const std::uint8_t *>(d));
            });
            wl->shadowMem().forEachLine(
                [this, &map](Addr addr, const LineData &data) {
                    memCtls[map.channelOf(addr)]->initLine(addr, data);
                });
        }
    } else {
        // Resume-after-recovery: the recovered image is the persisted
        // truth — nothing is re-initialized on media. Each workload
        // replays its deterministic history host-side (setup with a
        // no-op writer, then fast-forward to the committed count),
        // which regenerates its shadow, RNG, allocator state and
        // digest log byte-identically to the pre-crash run's — the
        // digest log in particular must cover [0, K] so the *next*
        // recovery can match any prefix.
        nvmDev.installPersistedState(resume->image);
        // Channel counter state rebuilds from the persisted store
        // first, exactly as crash() leaves it — the re-seed
        // equivalence argument of DESIGN.md section 4i. Order matters:
        // a fresh-incarnation core below allocates new counters
        // through initLine(), which must continue above every
        // persisted value so no (address, counter) pair is reused.
        for (auto &ctl : memCtls)
            ctl->reseedFromPersistedImage();
        for (unsigned i = 0; i < cfg.numCores; ++i) {
            Workload &wl = *workloads[i];
            if (i < resume->fresh.size() && resume->fresh[i]) {
                // Unrecoverable core: restart its workload from
                // scratch over the surviving media, as a first boot
                // would. The old incarnation's untouched lines stay
                // verifiable free space; its quarantined lines keep
                // their tombstones until setup or the new run drains
                // fresh triples over them.
                wl.setup([this](Addr a, const void *d, unsigned s) {
                    nvmDev.livePlainStore(
                        a, s, static_cast<const std::uint8_t *>(d));
                });
                wl.shadowMem().forEachLine(
                    [this, &map](Addr addr, const LineData &data) {
                        memCtls[map.channelOf(addr)]->initLine(addr,
                                                               data);
                    });
                continue;
            }
            wl.setup([](Addr, const void *, unsigned) {});
            if (resume->committedTxns[i] >= cfg.wl.txnTarget) {
                cnvm_fatal("resume: core %u committed %llu txns but "
                           "txnTarget is %u — nothing left to run",
                           i,
                           static_cast<unsigned long long>(
                               resume->committedTxns[i]),
                           cfg.wl.txnTarget);
            }
            std::vector<Op> discard;
            for (std::uint64_t k = 0; k < resume->committedTxns[i];
                 ++k) {
                discard.clear();
                bool more = wl.next(discard);
                cnvm_assert(more);
            }
            // Quarantined lines read as zeros everywhere the resumed
            // machine can see them: shadow first (it is the
            // program-order truth the digest log and validation walk),
            // then the live view below inherits the zeros. The media
            // keeps the tombstoned triple until a legitimate rewrite
            // drains fresh (cipher, counter, MAC) over it.
            LineData zeros{};
            for (Addr qa : resume->quarantined[i])
                wl.shadowMem().write(qa, zeros.data(), lineBytes);
            // Live plaintext view := the fast-forwarded shadow. The
            // shadow, not the decrypted image, is authoritative here:
            // cache write-allocate fills merge live-view bytes into
            // partially-stored lines, so the live view must equal the
            // program-order content the shadow carries.
            wl.shadowMem().forEachLine(
                [this](Addr addr, const LineData &data) {
                    nvmDev.livePlainStore(addr, lineBytes, data.data());
                });
        }
    }
    if (cfg.warmCounterCache) {
        // Separate pass: warming during installation would capture
        // counter lines whose neighbouring slots are not yet
        // initialized, and a later flush of that stale (clean) copy
        // would regress the persisted counters.
        for (auto &wl : workloads) {
            wl->shadowMem().forEachLine(
                [this, &map](Addr addr, const LineData &) {
                    memCtls[map.channelOf(addr)]->warmCounterLine(addr);
                });
        }
    }
}

RunResult
System::runInternal()
{
    for (auto &core : cores)
        core->start();

    if (partitioned()) {
        // The kernel runs to global quiescence (or a crash stop at a
        // barrier) — the settle phase is built in.
        kernel->run();
    } else {
        eventq.run();
    }

    RunResult result;
    result.crashed = lastResult.crashed;
    if (result.crashed) {
        result.endTick = lastResult.endTick;
    } else {
        Tick latest = 0;
        for (auto &core : cores)
            latest = std::max(latest, core->finishedAt());
        result.endTick = latest;
        // Let outstanding queue drains settle for accurate traffic
        // accounting.
        if (!partitioned())
            eventq.run();
    }
    for (auto &wl : workloads)
        result.txnsIssued += wl->txnsIssued();
    lastResult = result;
    return result;
}

void
System::setCtlEventHook(std::function<void(CtlEvent)> hook)
{
    if (partitioned()) {
        // The per-channel recorders are installed at build time; the
        // barrier replay feeds this observer.
        userCtlHook = std::move(hook);
        return;
    }
    for (auto &ctl : memCtls)
        ctl->setEventHook(hook);
}

Tick
System::captureTick() const
{
    return partitioned() ? kernel->barrierTick() : eventq.curTick();
}

void
System::onBarrier(Tick barrier_tick)
{
    (void)barrier_tick;
    // Replay the window's semantic events into the observer in
    // (tick, channel, log index) order. Within-tick cross-channel
    // order has no simulated happens-before — the channel id is the
    // deterministic tie-break, fixed at any host thread count.
    if (userCtlHook) {
        struct Tagged
        {
            Tick tick;
            unsigned ch;
            std::size_t idx;
        };
        std::vector<Tagged> merged;
        for (unsigned c = 0; c < chanEventLogs.size(); ++c) {
            for (std::size_t i = 0; i < chanEventLogs[c].size(); ++i)
                merged.push_back(Tagged{chanEventLogs[c][i].tick, c, i});
        }
        std::sort(merged.begin(), merged.end(),
                  [](const Tagged &a, const Tagged &b) {
                      if (a.tick != b.tick)
                          return a.tick < b.tick;
                      if (a.ch != b.ch)
                          return a.ch < b.ch;
                      return a.idx < b.idx;
                  });
        for (const Tagged &t : merged)
            userCtlHook(chanEventLogs[t.ch][t.idx].ev);
    }
    for (auto &log : chanEventLogs)
        log.clear();

    // Process the power failures recorded this window — tick triggers
    // that fired on the coordinator queue plus semantic triggers the
    // replay above just delivered. Every channel is quiescent here, so
    // teardown/capture sees a settled, deterministic state. A Replay
    // teardown stops the kernel; later fires of the same window (fork
    // plans only arm capture, so this only guards the single-spec
    // replay case) are dropped with it.
    if (!pendingFires.empty()) {
        std::vector<std::size_t> fires;
        fires.swap(pendingFires);
        for (std::size_t i : fires) {
            if (lastResult.crashed)
                break;
            if (fireAction)
                fireAction(i);
        }
    }
}

RunResult
System::run()
{
    return runInternal();
}

unsigned
System::totalReadyEntries() const
{
    unsigned n = 0;
    for (const auto &ctl : memCtls)
        n += ctl->readyEntryCount();
    return n;
}

std::vector<AdrCut>
System::adrCuts(unsigned drop) const
{
    std::vector<ChannelReady> ready(memCtls.size());
    for (std::size_t c = 0; c < memCtls.size(); ++c) {
        ready[c].dataSeqs = memCtls[c]->readyDataSeqs();
        ready[c].ctrSeqs = memCtls[c]->readyCtrSeqs();
    }
    return computeDrainKeeps(ready, drop);
}

void
System::crashChannels(unsigned adr_drop_tail)
{
    // Global ADR drain: translate the drop into per-channel keep
    // prefixes of the shared sequence order, drain each channel, then
    // rebuild the integrity tree once over the merged image — the
    // root persists last *globally*, after every channel's counters.
    std::vector<AdrCut> cuts = adrCuts(adr_drop_tail);
    for (std::size_t c = 0; c < memCtls.size(); ++c)
        memCtls[c]->crashWithCut(cuts[c]);
    if (controller().config().integrityTree) {
        rebuildTree(nvmDev.persistedState(),
                    controller().config().counterRegionBase, 0,
                    ~Addr(0));
    }
}

void
System::captureChannels(PersistImage &img, unsigned drop) const
{
    std::vector<AdrCut> cuts = adrCuts(drop);
    for (std::size_t c = 0; c < memCtls.size(); ++c)
        memCtls[c]->captureCrashStateWithCut(img, cuts[c]);
    if (controller().config().integrityTree) {
        rebuildTree(img, controller().config().counterRegionBase, 0,
                    ~Addr(0));
    }
}

void
System::doCrash()
{
    lastResult.crashed = true;
    lastResult.endTick = captureTick();

    snapshot.valid = true;
    snapshot.tick = captureTick();
    snapshot.dataQueue = 0;
    snapshot.ctrQueue = 0;
    snapshot.landing = 0;
    snapshot.pipeline = 0;
    snapshot.inflight = 0;
    snapshot.outstandingReads = 0;
    for (const auto &ctl : memCtls) {
        snapshot.dataQueue += ctl->dataQueueOccupancy();
        snapshot.ctrQueue += ctl->ctrQueueOccupancy();
        snapshot.landing += ctl->landingDepth();
        snapshot.pipeline += ctl->pipelineDepth();
        snapshot.inflight += ctl->inflightDepth();
        snapshot.outstandingReads += ctl->outstandingReadCount();
    }

    for (auto &core : cores)
        core->halt();
    for (auto &path : memPaths)
        path->dropAll();
    if (activeSpec.faults.any()) {
        // Same order as fork capture: draw the ADR energy loss over
        // the global ready population, drain under that budget, then
        // corrupt the persisted image.
        FaultModel fm(activeSpec.faults,
                      controller().config().counterRegionBase);
        unsigned drop = fm.adrDropCount(totalReadyEntries());
        crashChannels(drop);
        fm.applyMediaFaults(nvmDev.persistedState());
    } else {
        crashChannels();
    }
    if (partitioned())
        kernel->requestStop();
    else
        eventq.requestStop();
}

RunResult
System::runWithCrashAt(Tick crash_tick)
{
    return runWithCrash(CrashSpec::atTick(crash_tick));
}

RunResult
System::runWithCrash(const CrashSpec &spec)
{
    activeSpec = spec;
    if (partitioned()) {
        // Fires are recorded when triggered and processed at the next
        // window barrier, where every channel is quiescent — Replay
        // teardown and Fork capture both happen at barriers, so they
        // see identical state (keeping Replay ≡ Fork).
        fireAction = [this](std::size_t) { doCrash(); };
        injector = std::make_unique<CrashInjector>(
            eventq, std::vector<CrashSpec>{spec},
            [this](std::size_t i) { pendingFires.push_back(i); });
        injector->setImmediateFire(true);
    } else {
        injector = std::make_unique<CrashInjector>(
            eventq, spec, [this]() { doCrash(); });
    }
    if (ctlEventFor(spec.kind)) {
        setCtlEventHook(
            [this](CtlEvent ev) { injector->onCtlEvent(ev); });
    }
    injector->start();
    return runInternal();
}

PersistFork
System::captureFork(const CrashSpec &spec) const
{
    PersistFork fork;
    fork.snapshot.valid = true;
    fork.snapshot.tick = captureTick();
    fork.snapshot.dataQueue = 0;
    fork.snapshot.ctrQueue = 0;
    fork.snapshot.landing = 0;
    fork.snapshot.pipeline = 0;
    fork.snapshot.inflight = 0;
    fork.snapshot.outstandingReads = 0;
    for (const auto &ctl : memCtls) {
        fork.snapshot.dataQueue += ctl->dataQueueOccupancy();
        fork.snapshot.ctrQueue += ctl->ctrQueueOccupancy();
        fork.snapshot.landing += ctl->landingDepth();
        fork.snapshot.pipeline += ctl->pipelineDepth();
        fork.snapshot.inflight += ctl->inflightDepth();
        fork.snapshot.outstandingReads += ctl->outstandingReadCount();
    }

    // Persisted state as a crash here would leave it: the device's
    // image, then the global ADR drain of every channel's ready queue
    // entries overlaid on the copy, then the spec's fault dose — the
    // same draw order as doCrash(), so Replay and Fork corrupt
    // identically. The trunk's own image stays untouched.
    fork.image = nvmDev.persistedState();
    if (spec.faults.any()) {
        FaultModel fm(spec.faults,
                      controller().config().counterRegionBase);
        unsigned drop = fm.adrDropCount(totalReadyEntries());
        captureChannels(fork.image, drop);
        fm.applyMediaFaults(fork.image);
    } else {
        captureChannels(fork.image, 0);
    }

    // Digest logs snapshot: the trunk keeps committing after the
    // capture, and the committed-prefix search must not see the fork's
    // future.
    fork.coreDigests.reserve(workloads.size());
    for (const auto &wl : workloads)
        fork.coreDigests.push_back(wl->digests());
    return fork;
}

RunResult
System::runWithForkCapture(const std::vector<CrashSpec> &specs,
                           ForkSink sink)
{
    bool semantic = false;
    for (const CrashSpec &spec : specs)
        semantic = semantic || ctlEventFor(spec.kind).has_value();

    if (partitioned()) {
        // Capture at the barrier, where every channel is quiescent —
        // the same instant a Replay teardown of the same spec would
        // capture at, so fork and replay fingerprints stay identical.
        fireAction = [this, specs, sink](std::size_t i) {
            PersistFork fork = captureFork(specs[i]);
            fork.planIndex = i;
            sink(i, std::move(fork));
        };
        injector = std::make_unique<CrashInjector>(
            eventq, specs,
            [this](std::size_t i) { pendingFires.push_back(i); });
        injector->setImmediateFire(true);
    } else {
        injector = std::make_unique<CrashInjector>(
            eventq, specs,
            [this, specs, sink = std::move(sink)](std::size_t i) {
                PersistFork fork = captureFork(specs[i]);
                fork.planIndex = i;
                sink(i, std::move(fork));
            });
    }
    if (semantic) {
        setCtlEventHook(
            [this](CtlEvent ev) { injector->onCtlEvent(ev); });
    }
    injector->start();
    return runInternal();
}

std::vector<RecoveryReport>
System::recoverAll(unsigned recovery_jobs)
{
    // One pool shared across the per-core recoveries (the pre-scan
    // within each recovery is what parallelizes; cores stay in order).
    std::unique_ptr<WorkPool> pool;
    RecoveryOptions ropt;
    if (recovery_jobs != 1) {
        pool = std::make_unique<WorkPool>(recovery_jobs);
        ropt.pool = pool.get();
    }

    RecoveryEngine engine(nvmDev, controller());
    std::vector<RecoveryReport> reports;
    reports.reserve(workloads.size());
    for (auto &wl : workloads)
        reports.push_back(engine.recover(*wl, nullptr, ropt));
    return reports;
}

std::vector<OracleReport>
System::examineAll(unsigned recovery_jobs)
{
    std::unique_ptr<WorkPool> pool;
    RecoveryOptions ropt;
    if (recovery_jobs != 1) {
        pool = std::make_unique<WorkPool>(recovery_jobs);
        ropt.pool = pool.get();
    }

    CrashOracle oracle(nvmDev, controller());
    std::vector<OracleReport> reports;
    reports.reserve(workloads.size());
    for (auto &wl : workloads)
        reports.push_back(oracle.examine(*wl, nullptr, ropt));
    return reports;
}

bool
System::recoveredConsistently(std::string *first_failure)
{
    for (const RecoveryReport &report : recoverAll()) {
        if (!report.consistent) {
            if (first_failure != nullptr)
                *first_failure = report.detail;
            return false;
        }
    }
    return true;
}

double
System::throughputTxnPerSec() const
{
    if (lastResult.endTick == 0)
        return 0.0;
    double seconds = static_cast<double>(lastResult.endTick) * 1e-12;
    return static_cast<double>(lastResult.txnsIssued) / seconds;
}

double
System::counterCacheMissRate() const
{
    double hit_count = 0.0;
    double miss_count = 0.0;
    bool found = false;
    for (unsigned c = 0; c < cfg.numChannels; ++c) {
        std::string prefix = "ctrcache.ch" + std::to_string(c) + ".";
        const stats::Stat *hits = registry.find(prefix + "read_hits");
        const stats::Stat *misses = registry.find(prefix + "read_misses");
        if (hits == nullptr || misses == nullptr)
            continue;
        found = true;
        hit_count += hits->value();
        miss_count += misses->value();
    }
    if (!found)
        return 0.0;
    double total = hit_count + miss_count;
    return total == 0.0 ? 0.0 : miss_count / total;
}

std::string
System::describe() const
{
    std::ostringstream os;
    os << designName(cfg.design) << ", " << cfg.numCores << " core(s), "
       << cfg.numChannels << " channel(s), "
       << workloadKindName(cfg.workload) << ", "
       << (cfg.memctl.counterCacheBytes >> 10)
       << "KB counter cache total, "
       << cfg.memctl.dataWqEntries << "/" << cfg.memctl.ctrWqEntries
       << " data/counter WQ entries";
    return os.str();
}

} // namespace cnvm
