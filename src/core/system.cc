#include "core/system.hh"

#include <sstream>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "runner/runner.hh"

namespace cnvm
{

namespace
{

/** Stride between per-core regions, rounded for clean bank mapping. */
Addr
regionStride(const WorkloadParams &wl)
{
    return roundUp(wl.regionBytes, 1ull << 20);
}

} // anonymous namespace

System::System(const SystemConfig &cfg_in)
    : cfg(cfg_in),
      nvmDev(cfg_in.nvm, &registry)
{
    cnvm_assert(cfg.numCores >= 1);
    build();
}

System::~System() = default;

void
System::build()
{
    // Table 2: the counter cache is sized per core.
    MemCtlConfig mc = cfg.memctl;
    mc.design = cfg.design;
    mc.counterCacheBytes = cfg.memctl.counterCacheBytes * cfg.numCores;
    memCtl = std::make_unique<MemController>(eventq, nvmDev, mc,
                                             &registry);

    ClockDomain cpu_clock(static_cast<Tick>(1000.0 / cfg.cpuGHz));

    for (unsigned i = 0; i < cfg.numCores; ++i) {
        WorkloadParams wl = cfg.wl;
        // The stagger keeps different cores' hot lines (log headers,
        // metadata) off the same NVM banks: a plain power-of-two
        // stride is a multiple of the bank-interleave period, which
        // would pile every core's log area onto one bank.
        Addr bank_stagger = Addr(i) * 33 * lineBytes;
        wl.regionBase = cfg.dataRegionBase + i * regionStride(cfg.wl)
                      + bank_stagger;
        wl.seed = cfg.coreSeed(i);
        workloads.push_back(makeWorkload(cfg.workload, wl));

        memPaths.push_back(std::make_unique<CoreMemPath>(
            eventq, cpu_clock, *memCtl, cfg.cache, i, &registry));
        cores.push_back(std::make_unique<Core>(
            eventq, cpu_clock, *memPaths.back(), *workloads.back(), i,
            &registry));
        cores.back()->setOnFinished([this]() {
            ++finishedCores;
            if (finishedCores == cfg.numCores) {
                if (injector)
                    injector->disarm();
                eventq.requestStop();
            }
        });
    }

    // Install each workload's initial state consistently: live view,
    // encrypted image and counters, as a freshly booted system.
    for (auto &wl : workloads) {
        wl->setup([this](Addr a, const void *d, unsigned s) {
            nvmDev.livePlainStore(
                a, s, static_cast<const std::uint8_t *>(d));
        });
        wl->shadowMem().forEachLine(
            [this](Addr addr, const LineData &data) {
                memCtl->initLine(addr, data);
            });
    }
    if (cfg.warmCounterCache) {
        // Separate pass: warming during installation would capture
        // counter lines whose neighbouring slots are not yet
        // initialized, and a later flush of that stale (clean) copy
        // would regress the persisted counters.
        for (auto &wl : workloads) {
            wl->shadowMem().forEachLine(
                [this](Addr addr, const LineData &) {
                    memCtl->warmCounterLine(addr);
                });
        }
    }
}

RunResult
System::runInternal()
{
    for (auto &core : cores)
        core->start();

    eventq.run();

    RunResult result;
    result.crashed = lastResult.crashed;
    if (result.crashed) {
        result.endTick = lastResult.endTick;
    } else {
        Tick latest = 0;
        for (auto &core : cores)
            latest = std::max(latest, core->finishedAt());
        result.endTick = latest;
        // Let outstanding queue drains settle for accurate traffic
        // accounting.
        eventq.run();
    }
    for (auto &wl : workloads)
        result.txnsIssued += wl->txnsIssued();
    lastResult = result;
    return result;
}

RunResult
System::run()
{
    return runInternal();
}

void
System::doCrash()
{
    lastResult.crashed = true;
    lastResult.endTick = eventq.curTick();

    snapshot.valid = true;
    snapshot.tick = eventq.curTick();
    snapshot.dataQueue = memCtl->dataQueueOccupancy();
    snapshot.ctrQueue = memCtl->ctrQueueOccupancy();
    snapshot.landing = memCtl->landingDepth();
    snapshot.pipeline = memCtl->pipelineDepth();
    snapshot.inflight = memCtl->inflightDepth();
    snapshot.outstandingReads = memCtl->outstandingReadCount();

    for (auto &core : cores)
        core->halt();
    for (auto &path : memPaths)
        path->dropAll();
    if (activeSpec.faults.any()) {
        // Same order as fork capture: draw the ADR energy loss, drain
        // under that budget, then corrupt the persisted image.
        FaultModel fm(activeSpec.faults,
                      memCtl->config().counterRegionBase);
        unsigned drop = fm.adrDropCount(memCtl->readyEntryCount());
        memCtl->crash(drop);
        fm.applyMediaFaults(nvmDev.persistedState());
    } else {
        memCtl->crash();
    }
    eventq.requestStop();
}

RunResult
System::runWithCrashAt(Tick crash_tick)
{
    return runWithCrash(CrashSpec::atTick(crash_tick));
}

RunResult
System::runWithCrash(const CrashSpec &spec)
{
    activeSpec = spec;
    injector = std::make_unique<CrashInjector>(eventq, spec,
                                               [this]() { doCrash(); });
    if (ctlEventFor(spec.kind)) {
        memCtl->setEventHook(
            [this](CtlEvent ev) { injector->onCtlEvent(ev); });
    }
    injector->start();
    return runInternal();
}

PersistFork
System::captureFork(const CrashSpec &spec) const
{
    PersistFork fork;
    fork.snapshot.valid = true;
    fork.snapshot.tick = eventq.curTick();
    fork.snapshot.dataQueue = memCtl->dataQueueOccupancy();
    fork.snapshot.ctrQueue = memCtl->ctrQueueOccupancy();
    fork.snapshot.landing = memCtl->landingDepth();
    fork.snapshot.pipeline = memCtl->pipelineDepth();
    fork.snapshot.inflight = memCtl->inflightDepth();
    fork.snapshot.outstandingReads = memCtl->outstandingReadCount();

    // Persisted state as a crash here would leave it: the device's
    // image, then the ADR drain of the controller's ready queue
    // entries overlaid on the copy, then the spec's fault dose — the
    // same draw order as doCrash(), so Replay and Fork corrupt
    // identically. The trunk's own image stays untouched.
    fork.image = nvmDev.persistedState();
    if (spec.faults.any()) {
        FaultModel fm(spec.faults, memCtl->config().counterRegionBase);
        unsigned drop = fm.adrDropCount(memCtl->readyEntryCount());
        memCtl->captureCrashState(fork.image, drop);
        fm.applyMediaFaults(fork.image);
    } else {
        memCtl->captureCrashState(fork.image);
    }

    // Digest logs snapshot: the trunk keeps committing after the
    // capture, and the committed-prefix search must not see the fork's
    // future.
    fork.coreDigests.reserve(workloads.size());
    for (const auto &wl : workloads)
        fork.coreDigests.push_back(wl->digests());
    return fork;
}

RunResult
System::runWithForkCapture(const std::vector<CrashSpec> &specs,
                           ForkSink sink)
{
    bool semantic = false;
    for (const CrashSpec &spec : specs)
        semantic = semantic || ctlEventFor(spec.kind).has_value();

    injector = std::make_unique<CrashInjector>(
        eventq, specs,
        [this, specs, sink = std::move(sink)](std::size_t i) {
            PersistFork fork = captureFork(specs[i]);
            fork.planIndex = i;
            sink(i, std::move(fork));
        });
    if (semantic) {
        memCtl->setEventHook(
            [this](CtlEvent ev) { injector->onCtlEvent(ev); });
    }
    injector->start();
    return runInternal();
}

std::vector<RecoveryReport>
System::recoverAll(unsigned recovery_jobs)
{
    // One pool shared across the per-core recoveries (the pre-scan
    // within each recovery is what parallelizes; cores stay in order).
    std::unique_ptr<WorkPool> pool;
    RecoveryOptions ropt;
    if (recovery_jobs != 1) {
        pool = std::make_unique<WorkPool>(recovery_jobs);
        ropt.pool = pool.get();
    }

    RecoveryEngine engine(nvmDev, *memCtl);
    std::vector<RecoveryReport> reports;
    reports.reserve(workloads.size());
    for (auto &wl : workloads)
        reports.push_back(engine.recover(*wl, nullptr, ropt));
    return reports;
}

std::vector<OracleReport>
System::examineAll(unsigned recovery_jobs)
{
    std::unique_ptr<WorkPool> pool;
    RecoveryOptions ropt;
    if (recovery_jobs != 1) {
        pool = std::make_unique<WorkPool>(recovery_jobs);
        ropt.pool = pool.get();
    }

    CrashOracle oracle(nvmDev, *memCtl);
    std::vector<OracleReport> reports;
    reports.reserve(workloads.size());
    for (auto &wl : workloads)
        reports.push_back(oracle.examine(*wl, nullptr, ropt));
    return reports;
}

bool
System::recoveredConsistently(std::string *first_failure)
{
    for (const RecoveryReport &report : recoverAll()) {
        if (!report.consistent) {
            if (first_failure != nullptr)
                *first_failure = report.detail;
            return false;
        }
    }
    return true;
}

double
System::throughputTxnPerSec() const
{
    if (lastResult.endTick == 0)
        return 0.0;
    double seconds = static_cast<double>(lastResult.endTick) * 1e-12;
    return static_cast<double>(lastResult.txnsIssued) / seconds;
}

double
System::counterCacheMissRate() const
{
    const stats::Stat *hits = registry.find("ctrcache.read_hits");
    const stats::Stat *misses = registry.find("ctrcache.read_misses");
    if (hits == nullptr || misses == nullptr)
        return 0.0;
    double total = hits->value() + misses->value();
    return total == 0.0 ? 0.0 : misses->value() / total;
}

std::string
System::describe() const
{
    std::ostringstream os;
    os << designName(cfg.design) << ", " << cfg.numCores << " core(s), "
       << workloadKindName(cfg.workload) << ", "
       << (cfg.memctl.counterCacheBytes >> 10) << "KB counter cache/core, "
       << cfg.memctl.dataWqEntries << "/" << cfg.memctl.ctrWqEntries
       << " data/counter WQ entries";
    return os.str();
}

} // namespace cnvm
