/**
 * @file
 * Crash-chain soak harness implementation (see soak.hh).
 */

#include "core/soak.hh"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <unordered_set>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "core/crash_sweep.hh"
#include "core/recovery_crash.hh"

namespace cnvm
{

namespace
{

/** fnv1a over a quarantined line's persisted (cipher, counter, MAC)
 *  triple — the identity a line must shed before it may legitimately
 *  leave quarantine. A never-drained line folds cipher-absence
 *  instead of bytes. */
std::uint64_t
tripleHash(const PersistImage &img, const MemController &ctl, Addr qa)
{
    std::uint64_t h = fnvOffsetBasis;
    const LineData *cipher = img.persistedLine(qa);
    if (cipher != nullptr)
        h = fnv1a(cipher->data(), cipher->size(), h);
    else
        h = fnv1aU64(0x4e4f4e45ull, h); // "NONE"
    std::uint64_t counter =
        img.persistedCounters(ctl.counterLineAddr(qa))[ctl.counterSlot(qa)];
    h = fnv1aU64(counter, h);
    const std::uint64_t *mac = img.persistedMac(qa);
    h = fnv1aU64(mac != nullptr ? *mac : 0, h);
    return h;
}

/** Severity rank for the per-cycle worst classification. */
unsigned
classRank(CrashClass cls)
{
    switch (cls) {
      case CrashClass::Consistent:          return 0;
      case CrashClass::ReplayDetected:      return 1;
      case CrashClass::DetectedCorruption:  return 2;
      case CrashClass::TornData:            return 3;
      case CrashClass::TornCounter:         return 3;
      case CrashClass::CounterDataMismatch: return 3;
      case CrashClass::Inconsistent:        return 3;
      case CrashClass::SilentCorruption:    return 4;
      case CrashClass::SilentReplay:        return 5;
    }
    return 0;
}

/**
 * Draws one cycle's crash point from the chain RNG: an absolute tick
 * in [25%, 75%] of the probe's end tick, or the Nth occurrence of a
 * semantic trigger kind the probe actually observed. Ordinals are
 * drawn from the probe's per-cycle census, so some specs land beyond
 * what a shorter resumed cycle reaches — those cycles simply complete
 * and shut down cleanly, which is itself a lifecycle worth soaking.
 */
CrashSpec
planCycleSpec(const SweepProbe &probe, Random &rng, bool semantic)
{
    std::vector<CrashTriggerKind> kinds{CrashTriggerKind::AtTick};
    if (semantic) {
        for (CrashTriggerKind k : {CrashTriggerKind::DataDrain,
                                   CrashTriggerKind::CtrDrain,
                                   CrashTriggerKind::PipelineEnter,
                                   CrashTriggerKind::PairAction,
                                   CrashTriggerKind::DirtyEviction}) {
            if (probe.countOf(*ctlEventFor(k)) > 0)
                kinds.push_back(k);
        }
    }
    CrashTriggerKind kind =
        kinds[static_cast<std::size_t>(rng.below(kinds.size()))];
    if (kind == CrashTriggerKind::AtTick) {
        Tick t = 1
            + probe.endTick * (25 + rng.below(51)) / 100;
        return CrashSpec::atTick(t);
    }
    std::uint64_t n = probe.countOf(*ctlEventFor(kind));
    return CrashSpec::atEvent(kind, 1 + rng.below(std::max<std::uint64_t>(
                                          std::uint64_t{1}, n)));
}

std::string
u64str(std::uint64_t v)
{
    return std::to_string(static_cast<unsigned long long>(v));
}

} // namespace

// ----------------------------------------------------------------------
// SoakCycle
// ----------------------------------------------------------------------

std::string
SoakCycle::describe() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : committed)
        total += c;
    std::string s = "c" + std::to_string(cycle) + ":"
        + spec.describe() + (crashed ? "!" : ".")
        + " cls=" + crashClassName(worst)
        + " q" + u64str(quarantined)
        + " r" + std::to_string(resets)
        + " t" + u64str(total);
    if (degraded)
        s += " deg";
    if (recoveryInterrupts > 0)
        s += " ri" + std::to_string(recoveryInterrupts);
    return s;
}

// ----------------------------------------------------------------------
// SoakOracle
// ----------------------------------------------------------------------

SoakOracle::SoakOracle(unsigned num_cores) : coreState(num_cores) {}

std::string
SoakOracle::observe(const std::vector<OracleReport> &reports,
                    const PersistImage &img, const MemController &ctl,
                    std::vector<std::uint8_t> &fresh_out)
{
    cnvm_assert(reports.size() == coreState.size());
    fresh_out.assign(coreState.size(), 0);

    // Invariant 1: no cycle ever classifies silently. Everything else
    // is downstream of this — a silent verdict means ground-truth
    // damage was consumed as if it were data.
    for (std::size_t i = 0; i < reports.size(); ++i) {
        CrashClass cls = reports[i].cls;
        if (cls == CrashClass::SilentCorruption
            || cls == CrashClass::SilentReplay) {
            return "core " + std::to_string(i) + " classified "
                + crashClassName(cls);
        }
    }

    // Invariant 2: within an incarnation, the committed-transaction
    // count is monotone. A core whose recovery failed even in
    // degraded mode restarts as a fresh incarnation — loud and
    // counted, never a silent rollback of history.
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const RecoveryReport &r = reports[i].recovery;
        if (r.consistent) {
            if (r.committedTxns < coreState[i].committed) {
                return "core " + std::to_string(i)
                    + " committed count shrank: "
                    + u64str(r.committedTxns) + " < "
                    + u64str(coreState[i].committed);
            }
            coreState[i].committed = r.committedTxns;
        } else {
            fresh_out[i] = 1;
            ++resetCount;
            ++coreState[i].incarnation;
            coreState[i].committed = 0;
        }
    }

    // Invariant 3: the quarantine never silently shrinks. A tracked
    // line may leave only when its persisted triple changed — i.e.
    // something legitimately drained fresh (cipher, counter, MAC)
    // over the tombstone.
    std::unordered_set<Addr> now;
    for (const OracleReport &rep : reports)
        for (Addr qa : rep.recovery.quarantinedLines)
            now.insert(qa);

    std::vector<Addr> tracked;
    tracked.reserve(quarantineHash.size());
    for (const auto &[qa, hash] : quarantineHash)
        tracked.push_back(qa);
    std::sort(tracked.begin(), tracked.end());
    for (Addr qa : tracked) {
        if (now.count(qa) != 0)
            continue;
        if (tripleHash(img, ctl, qa) == quarantineHash.at(qa)) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "0x%llx",
                          static_cast<unsigned long long>(qa));
            return std::string("line ") + buf
                + " left quarantine with its stored triple unchanged";
        }
        quarantineHash.erase(qa);
    }
    for (Addr qa : now)
        quarantineHash[qa] = tripleHash(img, ctl, qa);

    return "";
}

// ----------------------------------------------------------------------
// SoakChainResult / SoakResult
// ----------------------------------------------------------------------

std::string
SoakChainResult::fingerprint() const
{
    std::string fp = "soak[" + std::to_string(chainIndex) + "]";
    for (const SoakCycle &c : cycles)
        fp += ";" + c.describe();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(finalDigest));
    fp += "|d" + std::string(buf) + " q" + u64str(finalQuarantined)
        + (ok ? " ok" : " FAIL");
    return fp;
}

std::string
SoakResult::firstFailure() const
{
    for (const SoakChainResult &c : chains)
        if (!c.ok)
            return "chain " + std::to_string(c.chainIndex) + ": "
                + (c.failure.empty() ? "no cycles" : c.failure);
    return "";
}

std::string
SoakResult::fingerprint() const
{
    std::string fp;
    for (const SoakChainResult &c : chains) {
        if (!fp.empty())
            fp += "\n";
        fp += c.fingerprint();
    }
    return fp;
}

// ----------------------------------------------------------------------
// Chain driver
// ----------------------------------------------------------------------

namespace
{

/** Captures the per-cycle stat snapshot before the System dies. */
CycleStats
snapshotStats(System &sys, const RunResult &r)
{
    CycleStats st;
    st.txnsIssued = r.txnsIssued;
    st.nvmBytesWritten = sys.nvmBytesWritten();
    st.nvmBytesRead = sys.nvmBytesRead();
    for (unsigned ch = 0; ch < sys.numChannels(); ++ch) {
        const stats::Stat *s = sys.statsRegistry().find(
            "memctl.ch" + std::to_string(ch) + ".data_inserts");
        if (s != nullptr)
            st.dataInserts += static_cast<std::uint64_t>(s->value());
    }
    return st;
}

/**
 * Crash-during-recovery idempotence, probed inside the chain: on a
 * throwaway copy of the crashed image, run `attempts` interrupted
 * write-back attempts per core followed by one completing attempt,
 * and require the convergent fields to match the committing pass the
 * chain actually resumes from. Returns a violation string, or empty.
 */
std::string
probeRecoveryIdempotence(System &sys, const std::vector<OracleReport> &ref,
                         const SoakOptions &opt, Random &rng,
                         unsigned *interrupts)
{
    PersistImage img = sys.nvm().persistedState();
    RecoveryOptions ropt;
    ropt.jobs = opt.recoveryJobs;
    ropt.degraded = true;
    ropt.commitTo = &img;

    constexpr RecoveryEvent kinds[] = {
        RecoveryEvent::PreScanLine,
        RecoveryEvent::RollbackWrite,
        RecoveryEvent::BeforeValidClear,
        RecoveryEvent::TreeRebuildLeaf,
    };

    for (unsigned i = 0; i < sys.numCores(); ++i) {
        for (unsigned a = 0; a < opt.recoveryCrashes; ++a) {
            RecoveryCrashSpec rcs;
            rcs.kind = kinds[rng.below(4)];
            rcs.nth = rcs.kind == RecoveryEvent::PreScanLine
                ? 1 + rng.below(64)
                : 1 + rng.below(4);
            RecoveryCrashInjector inj(rcs);
            RecoveryOptions iopt = ropt;
            iopt.crash = &inj;
            RecoveryEngine eng(img, sys.controller());
            try {
                eng.recover(sys.workload(i), nullptr, iopt);
            } catch (const RecoveryInterrupted &) {
                ++*interrupts;
            }
        }
        RecoveryEngine eng(img, sys.controller());
        RecoveryReport fin = eng.recover(sys.workload(i), nullptr, ropt);
        if (convergenceOf(fin) != convergenceOf(ref[i].recovery)) {
            return "core " + std::to_string(i)
                + " recovery not idempotent after interruption: "
                + convergenceOf(fin).describe() + " vs "
                + convergenceOf(ref[i].recovery).describe();
        }
    }
    return "";
}

} // namespace

SoakChainResult
runSoakChain(const SystemConfig &base, const SoakOptions &opt)
{
    SystemConfig cfg = base;
    cfg.wl.recordDigests = true;

    // One probe run per chain teaches the planner what a cycle's
    // worth of work looks like: its end tick and semantic-event
    // census. Resumed cycles do a similar amount of fresh work
    // (txnsPerCycle transactions past the committed point), so probe
    // ordinals mostly land — and the ones that do not yield clean
    // completion cycles by design.
    SystemConfig pcfg = cfg;
    pcfg.wl.txnTarget = opt.txnsPerCycle;
    SweepProbe probe = probeRun(pcfg);

    Random rng(fnv1aU64(opt.seed, fnv1aU64(0x534f414bull))); // "SOAK"
    SoakOracle oracle(cfg.numCores);
    SoakChainResult res;

    ResumeState state;
    bool haveState = false;
    unsigned target = opt.txnsPerCycle;

    for (unsigned c = 0; c < opt.cycles; ++c) {
        cfg.wl.txnTarget = target;

        SoakCycle cyc;
        cyc.cycle = c;
        cyc.spec = planCycleSpec(probe, rng, opt.semanticTriggers);
        cyc.dosed = opt.faultPeriod > 0 && opt.faults.any()
            && c % opt.faultPeriod == opt.faultPeriod - 1;
        if (cyc.dosed)
            cyc.spec.faults = opt.faults.forPoint(c);

        auto sys = haveState ? std::make_unique<System>(cfg, state)
                             : std::make_unique<System>(cfg);
        RunResult r = sys->runWithCrash(cyc.spec);
        cyc.crashed = r.crashed;
        cyc.endTick = r.endTick;
        if (!r.crashed) {
            // Target reached before the spec fired: model a clean
            // shutdown (full ADR budget, tree flushed), then land the
            // cycle's media dose on the shut-down image — dosing
            // pressure must not depend on whether the spec was
            // reachable. The adrDropCount(0) call keeps the fault
            // RNG's fixed draw order with nothing to drop.
            sys->crashChannels();
            if (cyc.dosed) {
                FaultModel fm(cyc.spec.faults,
                              sys->controller().config().counterRegionBase);
                fm.adrDropCount(0);
                fm.applyMediaFaults(sys->nvm().persistedState());
            }
        }

        // One pass classifies and write-back-recovers: the oracle
        // reads the image copy it also commits restorations to
        // (reads cache before writes land, so the view is coherent).
        PersistImage img = sys->nvm().persistedState();
        RecoveryOptions ropt;
        ropt.jobs = opt.recoveryJobs;
        ropt.degraded = true;
        ropt.commitTo = &img;
        CrashOracle ocl(img, sys->controller());

        std::vector<OracleReport> reports;
        reports.reserve(cfg.numCores);
        for (unsigned i = 0; i < cfg.numCores; ++i)
            reports.push_back(ocl.examine(sys->workload(i), nullptr, ropt));

        if (opt.recoveryCrashes > 0) {
            std::string viol = probeRecoveryIdempotence(
                *sys, reports, opt, rng, &cyc.recoveryInterrupts);
            if (!viol.empty()) {
                cyc.stats = snapshotStats(*sys, r);
                res.cycles.push_back(cyc);
                res.failure = "cycle " + std::to_string(c) + ": " + viol;
                return res;
            }
        }

        std::vector<std::uint8_t> fresh;
        std::string viol =
            oracle.observe(reports, img, sys->controller(), fresh);

        for (unsigned i = 0; i < cfg.numCores; ++i) {
            const OracleReport &rep = reports[i];
            if (classRank(rep.cls) > classRank(cyc.worst))
                cyc.worst = rep.cls;
            cyc.committed.push_back(fresh[i] != 0
                                        ? 0
                                        : rep.recovery.committedTxns);
            cyc.quarantined += rep.recovery.quarantinedLines.size();
            cyc.detectedCorruptions += rep.recovery.detectedCorruptions;
            cyc.replaysDetected += rep.recovery.replaysDetected;
            cyc.repairedLines += rep.recovery.repairedLines;
            cyc.degraded = cyc.degraded || rep.recovery.degradedConsistent;
            cyc.resets += fresh[i] != 0;
        }
        cyc.stats = snapshotStats(*sys, r);
        res.cycles.push_back(cyc);

        if (!viol.empty()) {
            res.failure = "cycle " + std::to_string(c) + ": " + viol;
            return res;
        }

        // The recovered image becomes the next cycle's starting
        // state. Its fault ground truth is cleared — the next verdict
        // must attribute only the next dose — while the stale-triple
        // attack surface is deliberately kept alive across cycles.
        img.clearFaultGroundTruth();
        state = ResumeState{};
        state.image = std::move(img);
        std::uint64_t max_committed = 0;
        for (unsigned i = 0; i < cfg.numCores; ++i) {
            state.committedTxns.push_back(cyc.committed[i]);
            state.quarantined.push_back(
                reports[i].recovery.quarantinedLines);
            max_committed = std::max(max_committed, cyc.committed[i]);
        }
        state.fresh = fresh;
        haveState = true;
        target = static_cast<unsigned>(max_committed) + opt.txnsPerCycle;
    }

    // Final examination: one last resume, a run all the way to the
    // target, a clean shutdown, and a full-integrity look at the
    // image. Every region must come back consistent at exactly the
    // target — the chain's cumulative end state equals a committed,
    // verifiable history.
    cfg.wl.txnTarget = target;
    res.finalTxnTarget = target;
    {
        SoakCycle fin;
        fin.cycle = opt.cycles;

        auto sys = haveState ? std::make_unique<System>(cfg, state)
                             : std::make_unique<System>(cfg);
        RunResult r = sys->run();
        fin.endTick = r.endTick;
        sys->crashChannels();

        PersistImage img = sys->nvm().persistedState();
        RecoveryOptions ropt;
        ropt.jobs = opt.recoveryJobs;
        ropt.degraded = true;
        ropt.commitTo = &img;
        CrashOracle ocl(img, sys->controller());

        std::vector<OracleReport> reports;
        reports.reserve(cfg.numCores);
        for (unsigned i = 0; i < cfg.numCores; ++i)
            reports.push_back(ocl.examine(sys->workload(i), nullptr, ropt));

        std::vector<std::uint8_t> fresh;
        std::string viol =
            oracle.observe(reports, img, sys->controller(), fresh);

        for (unsigned i = 0; i < cfg.numCores; ++i) {
            const OracleReport &rep = reports[i];
            if (classRank(rep.cls) > classRank(fin.worst))
                fin.worst = rep.cls;
            fin.committed.push_back(rep.recovery.committedTxns);
            fin.quarantined += rep.recovery.quarantinedLines.size();
            fin.degraded = fin.degraded || rep.recovery.degradedConsistent;
            fin.resets += fresh[i] != 0;
            res.finalCommitted.push_back(rep.recovery.committedTxns);
            res.finalDigest =
                fnv1aU64(rep.recovery.recoveredDigest,
                         i == 0 ? fnvOffsetBasis : res.finalDigest);
            res.finalQuarantined += rep.recovery.quarantinedLines.size();
        }
        fin.stats = snapshotStats(*sys, r);
        res.cycles.push_back(fin);

        if (!viol.empty()) {
            res.failure = "final examination: " + viol;
            return res;
        }
        for (unsigned i = 0; i < cfg.numCores; ++i) {
            const RecoveryReport &rr = reports[i].recovery;
            if (!rr.consistent || reports[i].cls != CrashClass::Consistent) {
                res.failure = "final examination: core "
                    + std::to_string(i) + " "
                    + crashClassName(reports[i].cls)
                    + (rr.detail.empty() ? "" : " (" + rr.detail + ")");
                return res;
            }
            if (rr.committedTxns != target) {
                res.failure = "final examination: core "
                    + std::to_string(i) + " committed "
                    + u64str(rr.committedTxns) + " != target "
                    + std::to_string(target);
                return res;
            }
            if (fresh[i] != 0) {
                res.failure = "final examination: core "
                    + std::to_string(i) + " reset on a clean run";
                return res;
            }
        }
    }

    res.ok = true;
    return res;
}

SoakResult
runSoak(const SystemConfig &cfg, const SoakOptions &opt, WorkPool *pool)
{
    std::unique_ptr<WorkPool> owned;
    if (pool == nullptr) {
        owned = std::make_unique<WorkPool>(opt.jobs == 0 ? 1 : opt.jobs);
        pool = owned.get();
    }

    SoakResult res;
    res.chains = pool->map<SoakChainResult>(
        opt.chains, [&](std::size_t i) {
            SoakOptions copt = opt;
            copt.seed = opt.seed * 0x9e3779b97f4a7c15ull + i + 1;
            SoakChainResult r = runSoakChain(cfg, copt);
            r.chainIndex = static_cast<unsigned>(i);
            return r;
        });
    return res;
}

} // namespace cnvm
