/**
 * @file
 * Post-crash recovery: decryption of the persisted image and
 * undo-log-based rollback, followed by workload-level verification.
 *
 * This is where counter-atomicity violations become visible: a line
 * whose persisted data and counter are out of sync decrypts to garbage
 * (paper equation 4), which the log checks and structure validators
 * detect.
 */

#ifndef CNVM_CORE_RECOVERY_HH
#define CNVM_CORE_RECOVERY_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "memctl/mem_controller.hh"
#include "nvm/nvm_device.hh"
#include "nvm/persist_image.hh"
#include "workloads/workload.hh"

namespace cnvm
{

/**
 * A decrypted, mutable view of the persisted NVM image, as recovery
 * software would see it after a power failure.
 *
 * Works against any PersistSource: the live device after an in-place
 * crash, or a PersistFork's image captured from a running trunk. The
 * controller reference supplies only immutable configuration (design
 * point, counter layout, encryption engine) — never volatile state,
 * which a real crash would have destroyed anyway.
 *
 * When the controller persists integrity metadata
 * (MemCtlConfig::integrityMac), every decryption is *verified before
 * it is trusted*: the stored per-line MAC is checked against
 * (address, stored counter, ciphertext). On a mismatch the image
 * attempts Osiris-style counter repair — trial-verifying counters in
 * a bounded window around the stored value, which recovers from
 * counter-store rollback and from data/counter pairs the crash tore
 * apart — and quarantines the line (it reads as zeros) when no
 * counter in the window verifies. Rollback may later overwrite a
 * quarantined line from an intact log backup, clearing the
 * quarantine; whatever remains quarantined at the end of recovery is
 * unrecoverable and reported, never silently consumed.
 */
class RecoveredImage : public ByteReader
{
  public:
    RecoveredImage(const PersistSource &src, const MemController &ctl);

    /** Convenience: recover from the live device's persisted state. */
    RecoveredImage(const NvmDevice &nvm, const MemController &ctl);

    void read(Addr addr, unsigned size, void *out) const override;

    /** Recovery-side write (rollback), full-byte overlay. */
    void write(Addr addr, const void *data, unsigned size);

    /** Decrypted content of a line. */
    LineData line(Addr line_addr) const;

    /** MAC mismatches found so far (integrity metadata only). */
    std::uint64_t detectedCorruptions() const { return detected; }

    /** Mismatches the counter-window search repaired. */
    std::uint64_t windowRepairs() const { return repaired; }

    /** Lines currently quarantined (undecryptable, read as zeros). */
    std::size_t quarantinedCount() const { return quarantine.size(); }

    /** True when @p line_addr is quarantined. */
    bool isQuarantined(Addr line_addr) const
    { return quarantine.count(lineAlign(line_addr)) > 0; }

    /** Lifts a line's quarantine (rollback restored it from an intact
     *  backup). */
    void clearQuarantine(Addr line_addr)
    { quarantine.erase(lineAlign(line_addr)); }

  private:
    const PersistSource &src;
    const MemController &ctl;

    /** Decrypted lines plus rollback overlays. */
    mutable std::unordered_map<Addr, LineData> cache;

    /** Integrity bookkeeping (populated lazily as lines decrypt). */
    mutable std::uint64_t detected = 0;
    mutable std::uint64_t repaired = 0;
    mutable std::unordered_set<Addr> quarantine;

    LineData &cachedLine(Addr line_addr) const;
    LineData decryptLine(Addr line_addr) const;
};

/**
 * Machine-checkable reason a recovery came back inconsistent. The
 * human-readable RecoveryReport::detail string conflated distinct
 * failure modes ("undecryptable" vs "structurally invalid" vs "no
 * committed prefix"); tests and tools switch on this enum instead of
 * parsing prose.
 */
enum class RecoveryFailure
{
    None,                //!< consistent
    LogHeaderUnreadable, //!< header magic garbage (torn/corrupt/quarantined)
    TornCommitFlag,      //!< log valid flag holds garbage
    LogDescriptorInvalid,//!< rollback descriptor points outside the region
    QuarantinedLines,    //!< unrepairable corrupt lines remain in the region
    StructureInvalid,    //!< structure invariants fail after rollback
    NoCommittedPrefix,   //!< digest matches no committed prefix
};

const char *recoveryFailureName(RecoveryFailure reason);

/** Result of recovering one workload's region. */
struct RecoveryReport
{
    /** The region decrypted and validated, and (when digests were
     *  recorded) matches a committed prefix of the transaction
     *  history. */
    bool consistent = false;

    /** Machine-checkable failure reason (None when consistent). */
    RecoveryFailure reason = RecoveryFailure::None;

    /** Human-readable failure reason when inconsistent. */
    std::string detail;

    /** Whether a live undo-log entry was rolled back. */
    bool rolledBack = false;

    /** Matched committed-transaction count (when digests recorded). */
    std::uint64_t committedTxns = 0;

    /** Whether the committed-prefix digest search was performed. */
    bool digestChecked = false;

    // --- integrity metadata findings (zero when integrityMac is off) --

    /** Lines whose stored MAC rejected the (counter, ciphertext) pair:
     *  corruption recovery *saw*, whatever happened next. */
    std::uint64_t detectedCorruptions = 0;

    /** Detected lines restored — by the counter-window search or by an
     *  undo-log rollback from an intact backup. */
    std::uint64_t repairedLines = 0;

    /** Detected lines nothing could restore: still quarantined when
     *  recovery finished (graceful degradation, never silent). */
    std::uint64_t unrecoverableLines = 0;
};

/** Runs recovery for workloads against one crashed system image. */
class RecoveryEngine
{
  public:
    RecoveryEngine(const PersistSource &src, const MemController &ctl);

    /** Convenience: recover from the live device's persisted state. */
    RecoveryEngine(const NvmDevice &nvm, const MemController &ctl);

    /**
     * Recovers one workload's region: decrypt, roll back the undo log
     * if a valid entry exists, validate structure invariants, and (when
     * digests were recorded) match against a committed prefix.
     *
     * @param digests when non-null, the committed-digest log to match
     *        against instead of the workload's own — a PersistFork's
     *        snapshot, frozen at the capture tick while the workload's
     *        live log keeps growing on the trunk.
     */
    RecoveryReport recover(const Workload &workload,
                           const std::vector<std::uint64_t> *digests
                               = nullptr);

  private:
    const PersistSource &src;
    const MemController &ctl;

    /** The log/validate/digest pipeline; the public wrapper adds the
     *  integrity pre-scan before it and the corruption accounting
     *  after it. */
    void runRecovery(RecoveredImage &image, const Workload &workload,
                     const std::vector<std::uint64_t> *digests,
                     RecoveryReport &report) const;
};

} // namespace cnvm

#endif // CNVM_CORE_RECOVERY_HH
