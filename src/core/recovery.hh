/**
 * @file
 * Post-crash recovery: decryption of the persisted image and
 * undo-log-based rollback, followed by workload-level verification.
 *
 * This is where counter-atomicity violations become visible: a line
 * whose persisted data and counter are out of sync decrypts to garbage
 * (paper equation 4), which the log checks and structure validators
 * detect.
 */

#ifndef CNVM_CORE_RECOVERY_HH
#define CNVM_CORE_RECOVERY_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "memctl/mem_controller.hh"
#include "nvm/nvm_device.hh"
#include "nvm/persist_image.hh"
#include "workloads/workload.hh"

namespace cnvm
{

class WorkPool;
class RecoveryCrashInjector;

/**
 * A decrypted, mutable view of the persisted NVM image, as recovery
 * software would see it after a power failure.
 *
 * Works against any PersistSource: the live device after an in-place
 * crash, or a PersistFork's image captured from a running trunk. The
 * controller reference supplies only immutable configuration (design
 * point, counter layout, encryption engine) — never volatile state,
 * which a real crash would have destroyed anyway.
 *
 * When the controller persists integrity metadata
 * (MemCtlConfig::integrityMac), every decryption is *verified before
 * it is trusted*: the stored per-line MAC is checked against
 * (address, stored counter, ciphertext). On a mismatch the image
 * attempts Osiris-style counter repair — trial-verifying counters in
 * a bounded window around the stored value, which recovers from
 * counter-store rollback and from data/counter pairs the crash tore
 * apart — and quarantines the line (it reads as zeros) when no
 * counter in the window verifies. Rollback may later overwrite a
 * quarantined line from an intact log backup, clearing the
 * quarantine; whatever remains quarantined at the end of recovery is
 * unrecoverable and reported, never silently consumed.
 *
 * When the controller additionally maintains the counter integrity
 * tree (MemCtlConfig::integrityTree), construction runs the
 * verify-root-first step: recompute the tree root bottom-up from the
 * persisted counter store (Phoenix-style) and compare it against the
 * persisted root. On a mismatch, every line verification also checks
 * the stored counter's hash against its persisted level-0 tree node,
 * which is what distinguishes a *replayed* line — stale-but-valid
 * triple, MAC verifies, tree disagrees — from a *corrupted* one (MAC
 * disagrees). Replayed lines are quarantined like corrupt ones; an
 * intact log backup may restore them.
 */
class RecoveredImage : public ByteReader
{
  public:
    RecoveredImage(const PersistSource &src, const MemController &ctl);

    /** Convenience: recover from the live device's persisted state. */
    RecoveredImage(const NvmDevice &nvm, const MemController &ctl);

    void read(Addr addr, unsigned size, void *out) const override;

    /** Recovery-side write (rollback), full-byte overlay. */
    void write(Addr addr, const void *data, unsigned size);

    /** Decrypted content of a line. */
    LineData line(Addr line_addr) const;

    /**
     * Integrity pre-scan over [base, end): decrypt-and-verify every
     * line up front, so no corruption can hide in a line the later
     * pipeline happens not to read.
     *
     * The scan shards the range into fixed-size line runs; when
     * @p pool has more than one job the shards are verified
     * concurrently (verifyLine() is pure: it touches only the
     * immutable source and controller) and merged into the cache in
     * shard order — address order — so the detected/repaired counters,
     * the quarantine set, and every cached plaintext byte are
     * identical at any job count. @p crash, when non-null, observes
     * one PreScanLine step per merged line (and may interrupt there).
     */
    void preScan(Addr base, Addr end, WorkPool *pool,
                 RecoveryCrashInjector *crash) const;

    /** MAC mismatches found so far (integrity metadata only). */
    std::uint64_t detectedCorruptions() const { return detected; }

    /** Mismatches the counter-window search repaired. */
    std::uint64_t windowRepairs() const { return repaired; }

    /** Lines whose MAC verified but whose stored counter the
     *  integrity tree rejected — detected replays. */
    std::uint64_t replaysDetected() const { return replays; }

    /** True when the tree is armed and the root recomputed from the
     *  counter store disagreed with the persisted root. */
    bool treeRootMismatch() const { return treeMismatch; }

    /** Lines currently quarantined (undecryptable, read as zeros). */
    std::size_t quarantinedCount() const { return quarantine.size(); }

    /** True when @p line_addr is quarantined. */
    bool isQuarantined(Addr line_addr) const
    { return quarantine.count(lineAlign(line_addr)) > 0; }

    /** The quarantined line addresses, sorted — deterministic however
     *  the pre-scan shards landed them. */
    std::vector<Addr> quarantinedLineAddrs() const;

    /** Lifts a line's quarantine (rollback restored it from an intact
     *  backup). */
    void clearQuarantine(Addr line_addr)
    { quarantine.erase(lineAlign(line_addr)); }

  private:
    const PersistSource &src;
    const MemController &ctl;

    /** Decrypted lines plus rollback overlays. */
    mutable std::unordered_map<Addr, LineData> cache;

    /**
     * Integrity bookkeeping (populated lazily as lines decrypt).
     * Mutated ONLY through install(), which runs on the owner thread:
     * serially on lazy reads, and at the post-barrier merge of
     * preScan(). Worker threads produce immutable VerifiedLine values
     * and never touch these members — quarantine insertions in
     * particular happen per shard, in address order, at the merge.
     */
    mutable std::uint64_t detected = 0;
    mutable std::uint64_t repaired = 0;
    mutable std::uint64_t replays = 0;
    mutable std::unordered_set<Addr> quarantine;

    /** Verify-root-first outcome, fixed at construction (the counter
     *  store never changes during recovery). */
    bool treeArmed = false;
    bool treeMismatch = false;

    /** Outcome of verifying one line, before it touches the image's
     *  bookkeeping — the unit of work pre-scan shards exchange. */
    struct VerifiedLine
    {
        LineData plain{}; //!< zeros when quarantined
        bool detected = false;
        bool repaired = false;
        bool replayed = false;
        bool quarantined = false;
    };

    /** Decrypts and verifies one line. Pure: reads only the immutable
     *  source/controller, mutates nothing — safe to call from worker
     *  threads. */
    VerifiedLine verifyLine(Addr line_addr) const;

    /** Folds a verified line into the cache and the bookkeeping. */
    std::unordered_map<Addr, LineData>::iterator
    install(Addr line_addr, const VerifiedLine &v) const;

    LineData &cachedLine(Addr line_addr) const;
};

/**
 * Machine-checkable reason a recovery came back inconsistent. The
 * human-readable RecoveryReport::detail string conflated distinct
 * failure modes ("undecryptable" vs "structurally invalid" vs "no
 * committed prefix"); tests and tools switch on this enum instead of
 * parsing prose.
 */
enum class RecoveryFailure
{
    None,                //!< consistent
    LogHeaderUnreadable, //!< header magic garbage (torn/corrupt/quarantined)
    TornCommitFlag,      //!< log valid flag holds garbage
    LogDescriptorInvalid,//!< rollback descriptor points outside the region
    QuarantinedLines,    //!< unrepairable corrupt lines remain in the region
    StructureInvalid,    //!< structure invariants fail after rollback
    NoCommittedPrefix,   //!< digest matches no committed prefix
};

const char *recoveryFailureName(RecoveryFailure reason);

/** Result of recovering one workload's region. */
struct RecoveryReport
{
    /** The region decrypted and validated, and (when digests were
     *  recorded) matches a committed prefix of the transaction
     *  history. */
    bool consistent = false;

    /** Machine-checkable failure reason (None when consistent). */
    RecoveryFailure reason = RecoveryFailure::None;

    /** Human-readable failure reason when inconsistent. */
    std::string detail;

    /** Whether a live undo-log entry was rolled back. */
    bool rolledBack = false;

    /** Matched committed-transaction count (when digests recorded). */
    std::uint64_t committedTxns = 0;

    /** Whether the committed-prefix digest search was performed. */
    bool digestChecked = false;

    /** Digest of the recovered region content. Computed whenever
     *  recovery got far enough to validate structure (digestComputed),
     *  independently of whether a committed-digest log existed to
     *  search — it is what the crash-during-recovery idempotence check
     *  compares across interrupted and complete attempts. */
    bool digestComputed = false;
    std::uint64_t recoveredDigest = 0;

    // --- integrity metadata findings (zero when integrityMac is off) --

    /** Lines whose stored MAC rejected the (counter, ciphertext) pair:
     *  corruption recovery *saw*, whatever happened next. */
    std::uint64_t detectedCorruptions = 0;

    /** Lines whose MAC verified but whose stored counter the integrity
     *  tree rejected — replays recovery *caught* (zero when the tree
     *  is off; a replayed line then decrypts cleanly to stale
     *  plaintext and never shows up here). */
    std::uint64_t replaysDetected = 0;

    /** Detected lines restored — by the counter-window search or by an
     *  undo-log rollback from an intact backup. */
    std::uint64_t repairedLines = 0;

    /** Detected lines nothing could restore: still quarantined when
     *  recovery finished (graceful degradation, never silent). */
    std::uint64_t unrecoverableLines = 0;

    /**
     * Line addresses still quarantined when recovery finished, sorted
     * (the same population unrecoverableLines counts). The resume
     * path needs the exact set to keep those lines reading as zeros
     * in the resumed system, and the soak oracle needs it to assert
     * the quarantine never silently shrinks across cycles.
     */
    std::vector<Addr> quarantinedLines;

    /**
     * True when recovery completed *despite* residual quarantined
     * lines (degraded mode): structure validated and the digest
     * matched a committed prefix with the quarantined lines reading
     * as zeros — i.e. the lost lines were free space the committed
     * state never reached. Always false outside degraded mode.
     */
    bool degradedConsistent = false;
};

/**
 * How to run one recovery. The default value is the historical
 * behavior: serial, in-memory only, uninterruptible.
 */
struct RecoveryOptions
{
    /** Integrity pre-scan concurrency: 1 is the serial reference,
     *  0 asks for WorkPool::hardwareJobs(). The outcome is
     *  byte-identical at any value (see RecoveredImage::preScan). */
    unsigned jobs = 1;

    /** Optional external pool for the pre-scan; overrides jobs. */
    WorkPool *pool = nullptr;

    /**
     * Write-back mode: persist every restoration recovery makes —
     * rolled-back lines re-encrypted at their stored counters (MAC
     * refreshed when integrity metadata is on) and the undo log
     * invalidated after a completed rollback. This is what makes an
     * interrupted recovery attempt leave a *resumable* image behind;
     * quarantined content is never persisted. Typically the same
     * PersistImage the engine is reading (reads are cached before
     * writes land, so the view stays coherent).
     */
    PersistImage *commitTo = nullptr;

    /** When non-null, observes each recovery step and may interrupt
     *  the attempt by throwing RecoveryInterrupted. */
    RecoveryCrashInjector *crash = nullptr;

    /**
     * Degraded-completion mode, for the resume-after-recovery
     * lifecycle. By default residual quarantined lines fail recovery
     * outright (RecoveryFailure::QuarantinedLines) — the safe answer
     * for a one-shot examination, but it leaves the committed prefix
     * unknown, so a soak chain could never resume past an
     * unrecoverable fault. With degraded set, recovery keeps going:
     * quarantined lines read as zeros, structure validation and the
     * committed-prefix digest search run against that degraded view,
     * and the report lists the surviving quarantine set
     * (RecoveryReport::quarantinedLines) with degradedConsistent set
     * when the digest still matches — meaning the lost lines were
     * outside the committed state. Unrecoverable damage to committed
     * state still fails (the digest matches no prefix), never
     * silently.
     */
    bool degraded = false;
};

/** Runs recovery for workloads against one crashed system image. */
class RecoveryEngine
{
  public:
    RecoveryEngine(const PersistSource &src, const MemController &ctl);

    /** Convenience: recover from the live device's persisted state. */
    RecoveryEngine(const NvmDevice &nvm, const MemController &ctl);

    /**
     * Recovers one workload's region: decrypt, roll back the undo log
     * if a valid entry exists, validate structure invariants, and (when
     * digests were recorded) match against a committed prefix.
     *
     * @param digests when non-null, the committed-digest log to match
     *        against instead of the workload's own — a PersistFork's
     *        snapshot, frozen at the capture tick while the workload's
     *        live log keeps growing on the trunk.
     * @param opt pre-scan concurrency, write-back target, injector
     *        (see RecoveryOptions).
     */
    RecoveryReport recover(const Workload &workload,
                           const std::vector<std::uint64_t> *digests
                               = nullptr,
                           const RecoveryOptions &opt = {});

  private:
    const PersistSource &src;
    const MemController &ctl;

    /** The log/validate/digest pipeline; the public wrapper adds the
     *  integrity pre-scan before it and the corruption accounting
     *  after it. */
    void runRecovery(RecoveredImage &image, const Workload &workload,
                     const std::vector<std::uint64_t> *digests,
                     const RecoveryOptions &opt,
                     RecoveryReport &report) const;

    /** Write-back: re-encrypts @p line_addr's recovered plaintext at
     *  its stored counter and persists it (MAC included when
     *  integrity metadata is on). Deterministic for a fixed image, so
     *  re-running an interrupted rollback rewrites identical bytes. */
    void persistLine(const RecoveredImage &image, Addr line_addr,
                     PersistImage &out) const;
};

} // namespace cnvm

#endif // CNVM_CORE_RECOVERY_HH
