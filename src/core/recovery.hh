/**
 * @file
 * Post-crash recovery: decryption of the persisted image and
 * undo-log-based rollback, followed by workload-level verification.
 *
 * This is where counter-atomicity violations become visible: a line
 * whose persisted data and counter are out of sync decrypts to garbage
 * (paper equation 4), which the log checks and structure validators
 * detect.
 */

#ifndef CNVM_CORE_RECOVERY_HH
#define CNVM_CORE_RECOVERY_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "memctl/mem_controller.hh"
#include "nvm/nvm_device.hh"
#include "nvm/persist_image.hh"
#include "workloads/workload.hh"

namespace cnvm
{

/**
 * A decrypted, mutable view of the persisted NVM image, as recovery
 * software would see it after a power failure.
 *
 * Works against any PersistSource: the live device after an in-place
 * crash, or a PersistFork's image captured from a running trunk. The
 * controller reference supplies only immutable configuration (design
 * point, counter layout, encryption engine) — never volatile state,
 * which a real crash would have destroyed anyway.
 */
class RecoveredImage : public ByteReader
{
  public:
    RecoveredImage(const PersistSource &src, const MemController &ctl);

    /** Convenience: recover from the live device's persisted state. */
    RecoveredImage(const NvmDevice &nvm, const MemController &ctl);

    void read(Addr addr, unsigned size, void *out) const override;

    /** Recovery-side write (rollback), full-byte overlay. */
    void write(Addr addr, const void *data, unsigned size);

    /** Decrypted content of a line. */
    LineData line(Addr line_addr) const;

  private:
    const PersistSource &src;
    const MemController &ctl;

    /** Decrypted lines plus rollback overlays. */
    mutable std::unordered_map<Addr, LineData> cache;

    LineData &cachedLine(Addr line_addr) const;
    LineData decryptLine(Addr line_addr) const;
};

/** Result of recovering one workload's region. */
struct RecoveryReport
{
    /** The region decrypted and validated, and (when digests were
     *  recorded) matches a committed prefix of the transaction
     *  history. */
    bool consistent = false;

    /** Human-readable failure reason when inconsistent. */
    std::string detail;

    /** Whether a live undo-log entry was rolled back. */
    bool rolledBack = false;

    /** Matched committed-transaction count (when digests recorded). */
    std::uint64_t committedTxns = 0;

    /** Whether the committed-prefix digest search was performed. */
    bool digestChecked = false;
};

/** Runs recovery for workloads against one crashed system image. */
class RecoveryEngine
{
  public:
    RecoveryEngine(const PersistSource &src, const MemController &ctl);

    /** Convenience: recover from the live device's persisted state. */
    RecoveryEngine(const NvmDevice &nvm, const MemController &ctl);

    /**
     * Recovers one workload's region: decrypt, roll back the undo log
     * if a valid entry exists, validate structure invariants, and (when
     * digests were recorded) match against a committed prefix.
     *
     * @param digests when non-null, the committed-digest log to match
     *        against instead of the workload's own — a PersistFork's
     *        snapshot, frozen at the capture tick while the workload's
     *        live log keeps growing on the trunk.
     */
    RecoveryReport recover(const Workload &workload,
                           const std::vector<std::uint64_t> *digests
                               = nullptr);

  private:
    const PersistSource &src;
    const MemController &ctl;
};

} // namespace cnvm

#endif // CNVM_CORE_RECOVERY_HH
