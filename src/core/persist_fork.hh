/**
 * @file
 * Persistent-state forks: everything a crash point needs, captured
 * from a still-running trunk simulation.
 *
 * The paper's recovery model (section 2.2.2) is the enabling insight:
 * a power failure discards all volatile state, so recovery — and hence
 * crash classification — depends only on what had persisted by the
 * failure instant. A PersistFork is exactly that closure: the device's
 * persisted image with the controller's ADR drain already overlaid,
 * the controller-state snapshot for reporting, and the per-core
 * committed-transaction digests as of the capture tick. Classifying a
 * fork off-trunk (core/crash_sweep.hh, classifyFork()) is therefore
 * equivalent to crashing a dedicated replay run at the same point,
 * without paying for the replay.
 */

#ifndef CNVM_CORE_PERSIST_FORK_HH
#define CNVM_CORE_PERSIST_FORK_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "nvm/persist_image.hh"

namespace cnvm
{

/**
 * Controller state at the instant the power failed, captured before
 * crash() tears it down (or, for a fork, at the capture instant while
 * the trunk keeps running). Lets tests assert that a semantic trigger
 * really crashed in the intended state (non-empty pipeline, occupied
 * landing queue, ...), and feeds the sweep report.
 */
struct CrashSnapshot
{
    bool valid = false; //!< a crash actually happened
    Tick tick = 0;
    unsigned dataQueue = 0;
    unsigned ctrQueue = 0;
    std::size_t landing = 0;
    unsigned pipeline = 0;
    unsigned inflight = 0;
    unsigned outstandingReads = 0;
};

/**
 * One captured crash point. Self-contained deep copy: mutating the
 * trunk after capture (it keeps simulating) cannot change a fork's
 * classification, and forks from one trunk may be classified
 * concurrently on worker threads.
 */
struct PersistFork
{
    /** Index of the fired CrashSpec in the sweep plan. */
    std::size_t planIndex = 0;

    /** Controller state at the capture instant. */
    CrashSnapshot snapshot;

    /**
     * Persisted NVM state at the capture instant with the ADR drain of
     * the ready queue entries applied — what recovery would find.
     */
    PersistImage image;

    /**
     * Per-core committed-transaction digests as of the capture tick
     * (digests()[k] is the digest after k commits). Copied because the
     * trunk keeps committing: the committed-prefix search must not see
     * transactions from the fork's future.
     */
    std::vector<std::vector<std::uint64_t>> coreDigests;
};

} // namespace cnvm

#endif // CNVM_CORE_PERSIST_FORK_HH
