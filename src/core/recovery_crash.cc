#include "core/recovery_crash.hh"

#include <memory>
#include <sstream>

#include "common/logging.hh"
#include "core/crash_sweep.hh"
#include "core/persist_fork.hh"

namespace cnvm
{

const char *
recoveryEventName(RecoveryEvent ev)
{
    switch (ev) {
      case RecoveryEvent::PreScanLine: return "prescan";
      case RecoveryEvent::RollbackWrite: return "rollback";
      case RecoveryEvent::BeforeValidClear: return "pre-invalidate";
      case RecoveryEvent::AfterValidClear: return "post-invalidate";
      case RecoveryEvent::TreeRebuildLeaf: return "treeleaf";
    }
    return "?";
}

std::string
RecoveryCrashSpec::describe() const
{
    return std::string(recoveryEventName(kind)) + "#"
        + std::to_string(nth);
}

RecoveryConvergence
convergenceOf(const RecoveryReport &report)
{
    RecoveryConvergence c;
    c.consistent = report.consistent;
    c.reason = report.reason;
    c.committedTxns = report.committedTxns;
    c.unrecoverableLines = report.unrecoverableLines;
    c.digestComputed = report.digestComputed;
    c.recoveredDigest = report.recoveredDigest;
    return c;
}

std::string
RecoveryConvergence::describe() const
{
    std::ostringstream os;
    os << (consistent ? "ok" : recoveryFailureName(reason)) << "/c"
       << committedTxns << "/u" << unrecoverableLines;
    if (digestComputed)
        os << "/d" << std::hex << recoveredDigest << std::dec;
    return os.str();
}

namespace
{

constexpr RecoveryEvent allRecoveryEvents[] = {
    RecoveryEvent::PreScanLine,
    RecoveryEvent::RollbackWrite,
    RecoveryEvent::BeforeValidClear,
    RecoveryEvent::AfterValidClear,
    RecoveryEvent::TreeRebuildLeaf,
};

/**
 * One write-back recovery pass over every core of the trunk's
 * configuration, against (and into) @p work. Returns false when the
 * injector interrupted the pass — the recovery process died there,
 * with whatever it had persisted so far left on the image.
 */
bool
recoveryAttempt(PersistImage &work, const System &trunk,
                const PersistFork &fork, unsigned recovery_jobs,
                RecoveryCrashInjector *inj,
                std::vector<RecoveryReport> *reports_out)
{
    RecoveryEngine engine(work, trunk.controller());
    RecoveryOptions opt;
    opt.jobs = recovery_jobs;
    opt.commitTo = &work;
    opt.crash = inj;
    try {
        for (unsigned c = 0; c < trunk.numCores(); ++c) {
            RecoveryReport r = engine.recover(
                trunk.workload(c), &fork.coreDigests.at(c), opt);
            if (reports_out != nullptr)
                reports_out->push_back(std::move(r));
        }
    } catch (const RecoveryInterrupted &) {
        return false;
    }
    return true;
}

/** Reference pass outcome for one captured image. */
struct ImageReference
{
    std::vector<RecoveryConvergence> converged;

    /** How often each recovery step occurred — the planning domain. */
    std::array<std::uint64_t, numRecoveryEvents> eventCounts{};
};

struct PlannedPoint
{
    std::size_t imageIndex = 0;
    RecoveryCrashSpec spec;
};

/**
 * Distributes @p points interruption specs: round-robin over the
 * images that reach at least one step, within an image round-robin
 * over its reachable steps, with occurrences spread over each step's
 * observed total — the same shape planSweep() gives crash ticks.
 */
std::vector<PlannedPoint>
planPoints(const std::vector<ImageReference> &refs, unsigned points)
{
    std::vector<std::size_t> reachable;
    for (std::size_t i = 0; i < refs.size(); ++i) {
        for (RecoveryEvent ev : allRecoveryEvents) {
            if (refs[i].eventCounts[static_cast<unsigned>(ev)] > 0) {
                reachable.push_back(i);
                break;
            }
        }
    }
    std::vector<PlannedPoint> plan;
    if (reachable.empty())
        return plan;

    std::vector<unsigned> share(reachable.size(), 0);
    for (unsigned p = 0; p < points; ++p)
        ++share[p % reachable.size()];

    for (std::size_t r = 0; r < reachable.size(); ++r) {
        const std::size_t img = reachable[r];
        const ImageReference &ref = refs[img];
        std::vector<RecoveryEvent> kinds;
        for (RecoveryEvent ev : allRecoveryEvents)
            if (ref.eventCounts[static_cast<unsigned>(ev)] > 0)
                kinds.push_back(ev);

        std::vector<unsigned> kshare(kinds.size(), 0);
        for (unsigned j = 0; j < share[r]; ++j)
            ++kshare[j % kinds.size()];

        for (std::size_t k = 0; k < kinds.size(); ++k) {
            const std::uint64_t total =
                ref.eventCounts[static_cast<unsigned>(kinds[k])];
            for (unsigned j = 0; j < kshare[k]; ++j) {
                RecoveryCrashSpec spec;
                spec.kind = kinds[k];
                spec.nth = 1 + total * j / kshare[k];
                plan.push_back({img, spec});
            }
        }
    }
    return plan;
}

/** Executes one interruption point against a fresh image copy. */
RecoveryCrashPoint
runPoint(const System &trunk, const PersistFork &fork,
         const PlannedPoint &planned, const ImageReference &ref,
         const RecoveryCrashOptions &opt)
{
    RecoveryCrashPoint point;
    point.imageIndex = planned.imageIndex;
    point.spec = planned.spec;

    PersistImage work = fork.image;

    // Interrupted attempts: each dies at the planned step (or, once
    // earlier attempts persisted enough that the step is no longer
    // reached, simply completes — that completion is checked too).
    for (unsigned t = 0; t < opt.attempts; ++t) {
        RecoveryCrashInjector inj(planned.spec);
        recoveryAttempt(work, trunk, fork, opt.recoveryJobs, &inj,
                        nullptr);
        point.fired = point.fired || inj.fired();
    }

    // The completing attempt.
    std::vector<RecoveryReport> reports;
    bool completed = recoveryAttempt(work, trunk, fork,
                                     opt.recoveryJobs, nullptr, &reports);
    cnvm_assert(completed); // no injector: nothing can interrupt it

    for (const RecoveryReport &r : reports)
        point.converged.push_back(convergenceOf(r));

    // The idempotence gate: the convergent fields must match the
    // uninterrupted reference, core for core.
    if (point.converged.size() != ref.converged.size()) {
        point.divergent = true;
        point.detail = "region count diverged from reference";
        return point;
    }
    for (std::size_t c = 0; c < ref.converged.size(); ++c) {
        if (point.converged[c] == ref.converged[c])
            continue;
        point.divergent = true;
        point.detail = "core " + std::to_string(c) + ": expected "
            + ref.converged[c].describe() + ", got "
            + point.converged[c].describe();
        return point;
    }
    return point;
}

} // anonymous namespace

RecoveryCrashResult
runRecoveryCrashSweep(const SystemConfig &cfg,
                      const RecoveryCrashOptions &opt, WorkPool *pool)
{
    RecoveryCrashResult result;

    // Capture the crashed images: probe, plan, one fork-capture trunk
    // run — the same machinery (and the same per-point fault seeding)
    // as a fork-mode crash sweep.
    SweepProbe probe = probeRun(cfg);
    std::vector<CrashSpec> plan =
        planSweep(probe, opt.images, opt.semanticTriggers);
    if (opt.faults.any())
        for (std::size_t i = 0; i < plan.size(); ++i)
            plan[i].faults = opt.faults.forPoint(i);

    std::vector<std::shared_ptr<PersistFork>> captured(plan.size());
    System trunk(cfg);
    trunk.runWithForkCapture(plan, [&](std::size_t i, PersistFork fork) {
        captured[i] =
            std::make_shared<PersistFork>(std::move(fork));
    });

    // Compact to the reached images, in plan order.
    std::vector<std::shared_ptr<PersistFork>> images;
    for (auto &fork : captured)
        if (fork != nullptr)
            images.push_back(std::move(fork));
    result.images = static_cast<unsigned>(images.size());
    if (images.empty())
        return result;

    auto execute = [&](WorkPool &p) {
        // Phase A — reference: one uninterrupted write-back recovery
        // per image (on its own copy), with an observer recording how
        // often each recovery step occurs. Images are independent;
        // map() keeps the merge in plan order.
        std::vector<ImageReference> refs = p.map<ImageReference>(
            images.size(), [&](std::size_t i) {
                ImageReference ref;
                PersistImage work = images[i]->image;
                RecoveryCrashInjector observer;
                std::vector<RecoveryReport> reports;
                bool done = recoveryAttempt(work, trunk, *images[i],
                                            opt.recoveryJobs, &observer,
                                            &reports);
                cnvm_assert(done); // observers never fire
                for (const RecoveryReport &r : reports)
                    ref.converged.push_back(convergenceOf(r));
                for (RecoveryEvent ev : allRecoveryEvents)
                    ref.eventCounts[static_cast<unsigned>(ev)] =
                        observer.countOf(ev);
                return ref;
            });
        for (ImageReference &ref : refs)
            result.reference.push_back(ref.converged);

        // Phase B — the interruption points.
        std::vector<PlannedPoint> pplan = planPoints(refs, opt.points);
        result.points = p.map<RecoveryCrashPoint>(
            pplan.size(), [&](std::size_t i) {
                const PlannedPoint &pp = pplan[i];
                return runPoint(trunk, *images[pp.imageIndex], pp,
                                refs[pp.imageIndex], opt);
            });
    };
    if (pool != nullptr) {
        execute(*pool);
    } else {
        WorkPool local(opt.jobs);
        execute(local);
    }
    return result;
}

std::string
RecoveryCrashResult::fingerprint() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        os << "ref" << i << "=";
        for (const RecoveryConvergence &c : reference[i])
            os << c.describe() << "+";
        os << ";";
    }
    for (const RecoveryCrashPoint &p : points) {
        os << "img" << p.imageIndex << ":" << p.spec.describe() << "="
           << (p.fired ? "" : "unfired~");
        for (const RecoveryConvergence &c : p.converged)
            os << c.describe() << "+";
        if (p.divergent)
            os << "DIVERGENT";
        os << ";";
    }
    return os.str();
}

} // namespace cnvm
