#include "core/crash_oracle.hh"

namespace cnvm
{

const char *
crashClassName(CrashClass cls)
{
    switch (cls) {
      case CrashClass::Consistent: return "consistent";
      case CrashClass::TornData: return "torn-data";
      case CrashClass::TornCounter: return "torn-counter";
      case CrashClass::CounterDataMismatch: return "counter-data-mismatch";
      case CrashClass::Inconsistent: return "inconsistent";
      case CrashClass::DetectedCorruption: return "detected-corruption";
      case CrashClass::SilentCorruption: return "silent-corruption";
      case CrashClass::ReplayDetected: return "replay-detected";
      case CrashClass::SilentReplay: return "silent-replay";
    }
    return "?";
}

CrashOracle::CrashOracle(const PersistSource &src,
                         const MemController &ctl)
    : src(src), ctl(ctl)
{
}

CrashOracle::CrashOracle(const NvmDevice &nvm, const MemController &ctl)
    : CrashOracle(nvm.persistedState(), ctl)
{
}

OracleReport
CrashOracle::examine(const Workload &workload,
                     const std::vector<std::uint64_t> *digests,
                     const RecoveryOptions &ropt) const
{
    OracleReport report;

    RecoveryEngine engine(src, ctl);
    report.recovery = engine.recover(workload, digests, ropt);

    // Counter census. Unencrypted lines have no counter to diverge
    // from; the census trivially passes (cipher counters are recorded
    // as 0 and the counter store is never populated). The faulted-line
    // census runs for every design: bit flips corrupt plaintext lines
    // just as happily as ciphertext ones.
    for (Addr addr = workload.regionBase(); addr < workload.regionEnd();
         addr += lineBytes) {
        report.faultedLines += src.lineFaulted(addr);
        report.replayedLines += src.lineReplayed(addr);
        if (ctl.design() == DesignPoint::NoEncryption)
            continue;
        ++report.linesChecked;
        std::uint64_t cc = src.persistedCipherCounter(addr);
        std::uint64_t pc =
            src.persistedCounters(ctl.counterLineAddr(addr))
                [ctl.counterSlot(addr)];
        if (pc == cc)
            continue;
        if (pc > cc)
            ++report.tornDataLines;
        else
            ++report.tornCounterLines;
        if (workload.classifyAddr(addr) == RegionPart::LogHeader)
            ++report.logHeaderMismatches;
    }

    // Classification is recoverability-first: mismatched lines under a
    // consistent recovery are torn mutate-stage writes the undo log
    // rolled back, not a failure (common for SCA, which defers dirty
    // counter persistence to evictions) — and detected-then-handled
    // corruptions under a consistent recovery are likewise not a
    // failure. For inconsistent recoveries, detection trumps the
    // census: integrity metadata rejecting a line means recovery knew,
    // whatever tore it. An undetected inconsistency with injected
    // corruption in the region is the headline failure: silent.
    //
    // Replays are the one exception to recoverability-first: a
    // *consistent* verdict on a region holding an unnoticed replayed
    // line is the attack succeeding (the stale triple decrypts
    // cleanly and matches an older committed prefix), so ground truth
    // overrides the verdict and the point is SilentReplay.
    const bool silentReplay = report.replayedLines > 0
        && report.recovery.replaysDetected == 0;
    if (report.recovery.consistent) {
        report.cls = silentReplay ? CrashClass::SilentReplay
                                  : CrashClass::Consistent;
    } else if (silentReplay) {
        report.cls = CrashClass::SilentReplay;
    } else if (report.recovery.replaysDetected > 0) {
        report.cls = CrashClass::ReplayDetected;
    } else if (report.recovery.detectedCorruptions > 0) {
        report.cls = CrashClass::DetectedCorruption;
    } else if (report.faultedLines > 0) {
        report.cls = CrashClass::SilentCorruption;
    } else if (report.tornDataLines && report.tornCounterLines) {
        report.cls = CrashClass::CounterDataMismatch;
    } else if (report.tornCounterLines) {
        report.cls = CrashClass::TornCounter;
    } else if (report.tornDataLines) {
        report.cls = CrashClass::TornData;
    } else {
        report.cls = CrashClass::Inconsistent;
    }

    return report;
}

} // namespace cnvm
