/**
 * @file
 * Conservative parallel discrete-event kernel (the --sim-jobs engine).
 *
 * The simulation is partitioned into domains, each owning a private
 * EventQueue: one domain per memory channel plus a coordinator domain
 * for the CPU/cache/workload front end. Domains advance in lockstep
 * windows of a fixed quantum Q on a fixed tick grid: within a window
 * [W, W+Q) every domain processes its own events concurrently (one
 * pinned host thread per crew slot), and all cross-domain traffic is
 * posted into per-(sender, receiver) mailboxes instead of the target
 * queue.
 *
 * Determinism is conservative-lookahead (Chandy–Misra–Bryant): every
 * cross-domain hop carries at least Q of simulated latency, and every
 * event processed inside the window has tick >= W (the window is
 * chosen so its grid-aligned start is <= the globally earliest
 * pending event), so every message posted during the window is due at
 * tick >= W + Q — strictly after the window. No domain can ever
 * receive a message for a tick it has already simulated, at any host
 * thread count. At the window barrier the mailboxes are drained in
 * deterministic (due tick, priority, sender domain, sequence) order
 * into the target queues, so the insertion order — and therefore the
 * tie-break order of same-(tick, priority) events — is a pure
 * function of simulated time, never of host interleaving.
 *
 * Mailboxes are single-writer by construction: domain d is pinned to
 * one host thread per round (PinnedCrew), and only code running as
 * domain d posts with sender d. The crew's round-start/round-end
 * synchronization publishes the boxes between worker threads and the
 * barrier without per-message locking.
 */

#ifndef CNVM_SIM_PARALLEL_KERNEL_HH
#define CNVM_SIM_PARALLEL_KERNEL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "runner/runner.hh"
#include "sim/eventq.hh"

namespace cnvm
{

class ParallelKernel
{
  public:
    /**
     * @param quantum lookahead: the minimum simulated latency of any
     *                cross-domain hop; every post() must be due at
     *                least this far after the tick it was posted at
     * @param jobs    host threads (including the caller); 1 is the
     *                partitioned-serial reference — same windows, same
     *                barriers, one thread
     */
    ParallelKernel(Tick quantum, unsigned jobs);

    /** Registers a domain; returns its index. All domains must be
     *  added before the first run(). */
    std::size_t addDomain(EventQueue *q);

    std::size_t numDomains() const { return domains.size(); }

    EventQueue &domain(std::size_t d) { return *domains[d]; }

    /**
     * Posts a cross-domain message: @p fn runs as an event on domain
     * @p to at tick @p due with event priority @p priority. Must be
     * called from domain @p from's pinned thread during a window (or
     * from the owner between windows); @p due must be >= the current
     * window's end.
     */
    void post(std::size_t from, std::size_t to, Tick due, int priority,
              std::function<void()> fn);

    /**
     * Hook invoked at every window barrier (all domains quiescent,
     * mailboxes drained), with the barrier tick. Crash capture and
     * fork capture run here.
     */
    void setBarrierHook(std::function<void(Tick)> hook)
    {
        barrierHook = std::move(hook);
    }

    /** Stops run() at the next barrier (checked after the hook). */
    void requestStop() { stopFlag = true; }

    /** Tick of the most recent window barrier. */
    Tick barrierTick() const { return lastBarrier; }

    /** Number of window barriers crossed since construction. */
    std::uint64_t barrierCount() const { return barriers; }

    /** Number of cross-domain messages delivered since construction. */
    std::uint64_t messageCount() const { return messages; }

    /**
     * Runs windows until every domain queue and every mailbox is empty,
     * or requestStop() was called. @return the last barrier tick.
     */
    Tick run();

  private:
    struct Msg
    {
        Tick due;
        int prio;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    /** One sender→receiver channel; written only by the sender's
     *  pinned thread, drained only at barriers. */
    struct Mailbox
    {
        std::vector<Msg> msgs;
        std::uint64_t nextSeq = 0;
    };

    Mailbox &box(std::size_t from, std::size_t to)
    {
        return boxes[from * domains.size() + to];
    }

    /** Drains every mailbox into its target queue in deterministic
     *  (due, priority, sender, seq) order. */
    void drainMailboxes();

    Tick quantum;
    PinnedCrew crew;
    std::vector<EventQueue *> domains;
    std::vector<Mailbox> boxes; //!< indexed [from * N + to]
    std::function<void(Tick)> barrierHook;
    bool stopFlag = false;
    bool running = false;
    Tick windowEnd = 0;
    Tick lastBarrier = 0;
    std::uint64_t barriers = 0;
    std::uint64_t messages = 0;
};

} // namespace cnvm

#endif // CNVM_SIM_PARALLEL_KERNEL_HH
