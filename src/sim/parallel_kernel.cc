#include "sim/parallel_kernel.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/one_shot.hh"

namespace cnvm
{

ParallelKernel::ParallelKernel(Tick quantum, unsigned jobs)
    : quantum(quantum), crew(jobs)
{
    cnvm_assert(quantum > 0);
}

std::size_t
ParallelKernel::addDomain(EventQueue *q)
{
    cnvm_assert(!running);
    domains.push_back(q);
    boxes.clear();
    boxes.resize(domains.size() * domains.size());
    return domains.size() - 1;
}

void
ParallelKernel::post(std::size_t from, std::size_t to, Tick due,
                     int priority, std::function<void()> fn)
{
    cnvm_assert(from < domains.size() && to < domains.size());
    // The conservative-lookahead contract: a message may never be due
    // inside the window it was posted from — the receiver may already
    // have simulated past that tick.
    cnvm_assert(due >= windowEnd);
    Mailbox &b = box(from, to);
    b.msgs.push_back(Msg{due, priority, b.nextSeq++, std::move(fn)});
}

void
ParallelKernel::drainMailboxes()
{
    struct Tagged
    {
        Tick due;
        int prio;
        std::size_t from;
        std::uint64_t seq;
        std::function<void()> *fn;
        std::size_t to;
    };

    std::vector<Tagged> pending;
    for (std::size_t from = 0; from < domains.size(); ++from) {
        for (std::size_t to = 0; to < domains.size(); ++to) {
            for (Msg &m : box(from, to).msgs)
                pending.push_back(
                    Tagged{m.due, m.prio, from, m.seq, &m.fn, to});
        }
    }
    if (pending.empty())
        return;

    // The deterministic delivery order. Schedule order decides the
    // target queue's insertion sequence — the tie-break among
    // same-(tick, priority) events — so sorting here makes that
    // sequence a pure function of simulated time and sender identity.
    std::sort(pending.begin(), pending.end(),
              [](const Tagged &a, const Tagged &b) {
                  if (a.due != b.due)
                      return a.due < b.due;
                  if (a.prio != b.prio)
                      return a.prio < b.prio;
                  if (a.from != b.from)
                      return a.from < b.from;
                  return a.seq < b.seq;
              });

    for (Tagged &t : pending) {
        scheduleAt(*domains[t.to], t.due, std::move(*t.fn), t.prio);
        ++messages;
    }
    for (Mailbox &b : boxes)
        b.msgs.clear();
}

Tick
ParallelKernel::run()
{
    cnvm_assert(!domains.empty());
    running = true;
    stopFlag = false;

    for (;;) {
        Tick next = maxTick;
        for (EventQueue *q : domains)
            next = std::min(next, q->nextEventTick());
        if (next == maxTick)
            break; // every queue and mailbox is empty: quiescence

        // Fixed-grid window covering the earliest pending event:
        // windows always end on a quantum multiple, so the set of
        // barriers — and everything captured at them — is independent
        // of which domain happened to host that event.
        windowEnd = (next / quantum + 1) * quantum;

        crew.runRound(domains.size(), [&](std::size_t d) {
            domains[d]->run(windowEnd - 1);
        });

        lastBarrier = windowEnd - 1;
        ++barriers;
        drainMailboxes();
        if (barrierHook)
            barrierHook(lastBarrier);
        if (stopFlag)
            break;
    }

    running = false;
    return lastBarrier;
}

} // namespace cnvm
