/**
 * @file
 * Fire-and-forget event scheduling.
 */

#ifndef CNVM_SIM_ONE_SHOT_HH
#define CNVM_SIM_ONE_SHOT_HH

#include <functional>
#include <utility>

#include "sim/eventq.hh"

namespace cnvm
{

/**
 * Schedules @p fn to run at absolute tick @p when; the underlying event
 * owns itself and is destroyed after running. Use for callback chains
 * where allocating a named member event per step would be noise.
 */
inline void
scheduleAt(EventQueue &eq, Tick when, std::function<void()> fn,
           int priority = Event::DefaultPriority)
{
    class SelfDeletingEvent : public Event
    {
      public:
        SelfDeletingEvent(std::function<void()> fn, int priority)
            : Event("one-shot", priority), fn(std::move(fn))
        {
            setSelfOwned();
        }

        void
        process() override
        {
            auto f = std::move(fn);
            delete this;
            f();
        }

      private:
        std::function<void()> fn;
    };

    auto *event = new SelfDeletingEvent(std::move(fn), priority);
    eq.schedule(*event, when);
}

/** Schedules @p fn @p delta ticks from now. */
inline void
scheduleAfter(EventQueue &eq, Tick delta, std::function<void()> fn,
              int priority = Event::DefaultPriority)
{
    scheduleAt(eq, eq.curTick() + delta, std::move(fn), priority);
}

} // namespace cnvm

#endif // CNVM_SIM_ONE_SHOT_HH
