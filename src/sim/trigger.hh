/**
 * @file
 * One-shot occurrence-count triggers.
 *
 * A CountdownTrigger observes a stream of occurrences of some model
 * event and fires a callback exactly once, on the Nth occurrence. The
 * crash injector uses one per semantic crash point ("power fails at the
 * Nth counter eviction"); the same utility suits sampling hooks.
 */

#ifndef CNVM_SIM_TRIGGER_HH
#define CNVM_SIM_TRIGGER_HH

#include <cstdint>
#include <functional>
#include <utility>

#include "common/logging.hh"

namespace cnvm
{

class CountdownTrigger
{
  public:
    CountdownTrigger() = default;

    /** Arms the trigger to fire on the @p count -th observe() call. */
    void
    arm(std::uint64_t count, std::function<void()> fn)
    {
        cnvm_assert(count > 0);
        remaining = count;
        callback = std::move(fn);
        didFire = false;
    }

    /** Records one occurrence; fires (once) when the count is reached. */
    void
    observe()
    {
        ++seen;
        if (remaining == 0 || didFire)
            return;
        if (--remaining == 0) {
            didFire = true;
            // Move out first: the callback may re-arm this trigger.
            auto fn = std::move(callback);
            callback = nullptr;
            if (fn)
                fn();
        }
    }

    /** Cancels a pending firing; occurrence counting continues. */
    void
    disarm()
    {
        remaining = 0;
        callback = nullptr;
    }

    bool armed() const { return remaining > 0; }
    bool fired() const { return didFire; }

    /** Occurrences observed over the trigger's lifetime. */
    std::uint64_t observed() const { return seen; }

  private:
    std::uint64_t remaining = 0;
    std::uint64_t seen = 0;
    bool didFire = false;
    std::function<void()> callback;
};

} // namespace cnvm

#endif // CNVM_SIM_TRIGGER_HH
