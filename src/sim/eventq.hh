/**
 * @file
 * Discrete-event simulation kernel.
 *
 * An EventQueue orders Event objects by (tick, priority, insertion
 * sequence) and processes them in order. Events are owned by their
 * creators (typically as member objects of model classes); the queue only
 * references them, mirroring gem5's design.
 */

#ifndef CNVM_SIM_EVENTQ_HH
#define CNVM_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <set>
#include <string>

#include "common/types.hh"

namespace cnvm
{

class EventQueue;

/**
 * Base class for all schedulable work. Derived classes implement
 * process(), which runs when simulated time reaches the scheduled tick.
 */
class Event
{
  public:
    /**
     * Priorities break ties between events scheduled for the same tick;
     * lower values run first.
     */
    enum Priority : int
    {
        /** Drain/maintenance activity that should observe a settled state. */
        MaxPriority = 100,
        /** Normal model activity. */
        DefaultPriority = 50,
        /** Clock-edge style activity that should run before models react. */
        MinPriority = 0,
    };

    explicit Event(std::string name = "event",
                   int priority = DefaultPriority);
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the event queue when the event's tick arrives. */
    virtual void process() = 0;

    /** True while the event sits in an event queue. */
    bool scheduled() const { return queue != nullptr; }

    /** The tick this event is (or was last) scheduled for. */
    Tick when() const { return _when; }

    /** Human-readable name for diagnostics. */
    const std::string &name() const { return _name; }

    int priority() const { return _priority; }

    /**
     * Marks this event as owned by whichever queue holds it: if the
     * queue is destroyed while the event is still pending, the queue
     * deletes it. Used by fire-and-forget events (sim/one_shot.hh) so
     * that a run cut short — e.g. by a simulated power failure — does
     * not leak its in-flight callbacks.
     */
    void setSelfOwned() { _selfOwned = true; }

  private:
    friend class EventQueue;

    std::string _name;
    int _priority;
    Tick _when = 0;
    std::uint64_t _seq = 0;
    bool _selfOwned = false;
    EventQueue *queue = nullptr;
};

/**
 * Convenience event that runs a std::function; the idiomatic way for a
 * model to define its callbacks without one subclass per action.
 */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback,
                         std::string name = "event",
                         int priority = DefaultPriority)
        : Event(std::move(name), priority), callback(std::move(callback))
    {}

    void process() override { callback(); }

  private:
    std::function<void()> callback;
};

/**
 * The event queue: a total order over pending events and the simulated
 * clock. One queue drives one simulated system (no cross-queue sync).
 */
class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /**
     * Schedules @p event at absolute tick @p when (>= curTick()).
     * The event must not already be scheduled.
     */
    void schedule(Event &event, Tick when);

    /** Removes a scheduled event from the queue. */
    void deschedule(Event &event);

    /** Deschedules (if needed) and schedules at the new tick. */
    void reschedule(Event &event, Tick when);

    /** Number of pending events. */
    std::size_t size() const { return events.size(); }

    bool empty() const { return events.empty(); }

    /** Processes a single event; returns false if the queue was empty. */
    bool step();

    /**
     * Runs until the queue empties or curTick() would exceed @p limit.
     * @return the tick of the last processed event.
     */
    Tick run(Tick limit = maxTick);

    /** Asks a running run() loop to return after the current event. */
    void requestStop() { stopRequested = true; }

    /** Total number of events processed since construction. */
    std::uint64_t processedCount() const { return processed; }

  private:
    struct Compare
    {
        bool
        operator()(const Event *a, const Event *b) const
        {
            if (a->_when != b->_when)
                return a->_when < b->_when;
            if (a->_priority != b->_priority)
                return a->_priority < b->_priority;
            return a->_seq < b->_seq;
        }
    };

    Tick _curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t processed = 0;
    bool stopRequested = false;
    std::set<Event *, Compare> events;
};

} // namespace cnvm

#endif // CNVM_SIM_EVENTQ_HH
