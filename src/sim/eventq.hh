/**
 * @file
 * Discrete-event simulation kernel.
 *
 * An EventQueue orders Event objects by (tick, priority, insertion
 * sequence) and processes them in order. Events are owned by their
 * creators (typically as member objects of model classes); the queue only
 * references them, mirroring gem5's design.
 */

#ifndef CNVM_SIM_EVENTQ_HH
#define CNVM_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cnvm
{

class EventQueue;

/**
 * Base class for all schedulable work. Derived classes implement
 * process(), which runs when simulated time reaches the scheduled tick.
 */
class Event
{
  public:
    /**
     * Priorities break ties between events scheduled for the same tick;
     * lower values run first.
     */
    enum Priority : int
    {
        /** Drain/maintenance activity that should observe a settled state. */
        MaxPriority = 100,
        /** Normal model activity. */
        DefaultPriority = 50,
        /** Clock-edge style activity that should run before models react. */
        MinPriority = 0,
    };

    explicit Event(std::string name = "event",
                   int priority = DefaultPriority);
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the event queue when the event's tick arrives. */
    virtual void process() = 0;

    /** True while the event sits in an event queue. */
    bool scheduled() const { return queue != nullptr; }

    /** The tick this event is (or was last) scheduled for. */
    Tick when() const { return _when; }

    /** Human-readable name for diagnostics. */
    const std::string &name() const { return _name; }

    int priority() const { return _priority; }

    /**
     * Marks this event as owned by whichever queue holds it: if the
     * queue is destroyed while the event is still pending, the queue
     * deletes it. Used by fire-and-forget events (sim/one_shot.hh) so
     * that a run cut short — e.g. by a simulated power failure — does
     * not leak its in-flight callbacks.
     */
    void setSelfOwned() { _selfOwned = true; }

  private:
    friend class EventQueue;

    std::string _name;
    int _priority;
    Tick _when = 0;
    std::uint64_t _seq = 0;
    bool _selfOwned = false;
    EventQueue *queue = nullptr;

    /** Slot in the owning queue's heap, maintained by the queue. */
    std::size_t _heapIndex = 0;
};

/**
 * Convenience event that runs a std::function; the idiomatic way for a
 * model to define its callbacks without one subclass per action.
 */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback,
                         std::string name = "event",
                         int priority = DefaultPriority)
        : Event(std::move(name), priority), callback(std::move(callback))
    {}

    void process() override { callback(); }

  private:
    std::function<void()> callback;
};

/**
 * The event queue: a total order over pending events and the simulated
 * clock. One queue drives one simulated system (no cross-queue sync).
 *
 * Internally a binary min-heap over (tick, priority, sequence) — the
 * dominant operations, schedule and pop-next, are O(log n) with no
 * per-event allocation (unlike the former std::set, which paid one node
 * allocation per insert). Deschedule is O(1) lazy deletion: the heap
 * slot is disowned in place and discarded when it surfaces; each event
 * tracks its slot, so no stale Event pointer is ever dereferenced (a
 * descheduled event may be destroyed immediately). A compaction pass
 * rebuilds the heap when disowned slots outnumber live ones.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /**
     * Schedules @p event at absolute tick @p when (>= curTick()).
     * The event must not already be scheduled.
     */
    void schedule(Event &event, Tick when);

    /** Removes a scheduled event from the queue. */
    void deschedule(Event &event);

    /** Deschedules (if needed) and schedules at the new tick. */
    void reschedule(Event &event, Tick when);

    /** Number of pending events. */
    std::size_t size() const { return heap.size() - stale; }

    bool empty() const { return size() == 0; }

    /** Processes a single event; returns false if the queue was empty. */
    bool step();

    /**
     * Runs until the queue empties or curTick() would exceed @p limit.
     * @return the tick of the last processed event.
     */
    Tick run(Tick limit = maxTick);

    /** Asks a running run() loop to return after the current event. */
    void requestStop() { stopRequested = true; }

    /**
     * Tick of the earliest pending event, or maxTick when the queue is
     * empty. The partitioned kernel uses this to pick the next
     * synchronization window without popping anything.
     */
    Tick nextEventTick();

    /** Total number of events processed since construction. */
    std::uint64_t processedCount() const { return processed; }

  private:
    /**
     * One heap slot. The ordering key is copied out of the event at
     * schedule time so that a lazily-deleted slot (ev == nullptr)
     * keeps its position without touching the — possibly destroyed —
     * event object.
     */
    struct HeapEntry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Event *ev;
    };

    static bool
    before(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq < b.seq;
    }

    /** Writes @p e into slot @p i and updates the event's back-link. */
    void
    place(std::size_t i, const HeapEntry &e)
    {
        heap[i] = e;
        if (e.ev != nullptr)
            e.ev->_heapIndex = i;
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    /** Removes the root slot (heap must be non-empty). */
    void popTop();

    /** Discards lazily-deleted slots that have surfaced at the root. */
    void purgeStale();

    /** Rebuilds the heap from its live slots only. */
    void compact();

    Tick _curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t processed = 0;
    bool stopRequested = false;
    std::vector<HeapEntry> heap;

    /** Number of disowned (lazily-deleted) slots still in the heap. */
    std::size_t stale = 0;
};

} // namespace cnvm

#endif // CNVM_SIM_EVENTQ_HH
