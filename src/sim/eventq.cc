#include "sim/eventq.hh"

#include "common/logging.hh"

namespace cnvm
{

Event::Event(std::string name, int priority)
    : _name(std::move(name)), _priority(priority)
{
}

Event::~Event()
{
    if (queue != nullptr)
        queue->deschedule(*this);
}

EventQueue::~EventQueue()
{
    // Orphan any still-scheduled events so their destructors do not
    // touch a dead queue; self-owned (fire-and-forget) events have no
    // other owner and are deleted here.
    for (const HeapEntry &entry : heap) {
        if (entry.ev == nullptr)
            continue;
        entry.ev->queue = nullptr;
        if (entry.ev->_selfOwned)
            delete entry.ev;
    }
}

void
EventQueue::siftUp(std::size_t i)
{
    HeapEntry e = heap[i];
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!before(e, heap[parent]))
            break;
        place(i, heap[parent]);
        i = parent;
    }
    place(i, e);
}

void
EventQueue::siftDown(std::size_t i)
{
    HeapEntry e = heap[i];
    const std::size_t n = heap.size();
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && before(heap[child + 1], heap[child]))
            ++child;
        if (!before(heap[child], e))
            break;
        place(i, heap[child]);
        i = child;
    }
    place(i, e);
}

void
EventQueue::popTop()
{
    if (heap.size() > 1) {
        place(0, heap.back());
        heap.pop_back();
        siftDown(0);
    } else {
        heap.pop_back();
    }
}

void
EventQueue::purgeStale()
{
    while (!heap.empty() && heap.front().ev == nullptr) {
        popTop();
        --stale;
    }
}

void
EventQueue::compact()
{
    std::size_t live = 0;
    for (std::size_t i = 0; i < heap.size(); ++i) {
        if (heap[i].ev != nullptr)
            heap[live++] = heap[i];
    }
    heap.resize(live);
    stale = 0;
    // Floyd heapify; place() restores every event's back-link.
    for (std::size_t i = live; i-- > 0;)
        siftDown(i);
}

void
EventQueue::schedule(Event &event, Tick when)
{
    cnvm_assert(event.queue == nullptr);
    if (when < _curTick) {
        cnvm_panic("scheduling event '%s' in the past (%llu < %llu)",
                   event.name().c_str(),
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(_curTick));
    }
    event._when = when;
    event._seq = nextSeq++;
    event.queue = this;
    heap.push_back(HeapEntry{when, event._priority, event._seq, &event});
    event._heapIndex = heap.size() - 1;
    siftUp(heap.size() - 1);
}

void
EventQueue::deschedule(Event &event)
{
    cnvm_assert(event.queue == this);
    cnvm_assert(event._heapIndex < heap.size()
                && heap[event._heapIndex].ev == &event);
    // Lazy deletion: disown the slot in place — its ordering key stays
    // valid, and the slot is discarded when it surfaces at the root.
    heap[event._heapIndex].ev = nullptr;
    ++stale;
    event.queue = nullptr;
    // Keep memory bounded under deschedule-heavy load.
    if (stale > 64 && stale * 2 > heap.size())
        compact();
}

void
EventQueue::reschedule(Event &event, Tick when)
{
    if (event.queue != nullptr)
        deschedule(event);
    schedule(event, when);
}

bool
EventQueue::step()
{
    purgeStale();
    if (heap.empty())
        return false;

    Event *event = heap.front().ev;
    popTop();
    event->queue = nullptr;

    _curTick = event->_when;
    ++processed;
    event->process();
    return true;
}

Tick
EventQueue::nextEventTick()
{
    purgeStale();
    return heap.empty() ? maxTick : heap.front().when;
}

Tick
EventQueue::run(Tick limit)
{
    stopRequested = false;
    for (;;) {
        purgeStale();
        if (heap.empty() || stopRequested)
            break;
        if (heap.front().when > limit)
            break;
        step();
    }
    return _curTick;
}

} // namespace cnvm
