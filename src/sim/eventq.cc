#include "sim/eventq.hh"

#include "common/logging.hh"

namespace cnvm
{

Event::Event(std::string name, int priority)
    : _name(std::move(name)), _priority(priority)
{
}

Event::~Event()
{
    if (queue != nullptr)
        queue->deschedule(*this);
}

EventQueue::~EventQueue()
{
    // Orphan any still-scheduled events so their destructors do not
    // touch a dead queue; self-owned (fire-and-forget) events have no
    // other owner and are deleted here.
    for (Event *event : events) {
        event->queue = nullptr;
        if (event->_selfOwned)
            delete event;
    }
}

void
EventQueue::schedule(Event &event, Tick when)
{
    cnvm_assert(event.queue == nullptr);
    if (when < _curTick) {
        cnvm_panic("scheduling event '%s' in the past (%llu < %llu)",
                   event.name().c_str(),
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(_curTick));
    }
    event._when = when;
    event._seq = nextSeq++;
    event.queue = this;
    events.insert(&event);
}

void
EventQueue::deschedule(Event &event)
{
    cnvm_assert(event.queue == this);
    events.erase(&event);
    event.queue = nullptr;
}

void
EventQueue::reschedule(Event &event, Tick when)
{
    if (event.queue != nullptr)
        deschedule(event);
    schedule(event, when);
}

bool
EventQueue::step()
{
    if (events.empty())
        return false;

    auto it = events.begin();
    Event *event = *it;
    events.erase(it);
    event->queue = nullptr;

    _curTick = event->_when;
    ++processed;
    event->process();
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    stopRequested = false;
    while (!events.empty() && !stopRequested) {
        Event *head = *events.begin();
        if (head->_when > limit)
            break;
        step();
    }
    return _curTick;
}

} // namespace cnvm
