/**
 * @file
 * Helper mixin that binds a model to a clock domain.
 */

#ifndef CNVM_SIM_CLOCKED_HH
#define CNVM_SIM_CLOCKED_HH

#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "sim/eventq.hh"

namespace cnvm
{

/** A clock frequency expressed as a tick period. */
class ClockDomain
{
  public:
    /** @param period_ticks ticks per cycle; must be non-zero. */
    explicit ClockDomain(Tick period_ticks) : period(period_ticks)
    {
        cnvm_assert(period != 0);
    }

    /** Constructs a domain from a frequency in MHz. */
    static ClockDomain
    fromMHz(double mhz)
    {
        return ClockDomain(static_cast<Tick>(1e6 / mhz));
    }

    Tick periodTicks() const { return period; }

    /** Converts a cycle count into ticks. */
    Tick cyclesToTicks(Cycles cycles) const { return cycles * period; }

    /** Converts a tick duration to whole cycles, rounding up. */
    Cycles ticksToCycles(Tick ticks) const { return divCeil(ticks, period); }

  private:
    Tick period;
};

/**
 * Mixin for models that operate on clock edges: provides the next clock
 * edge at or after the current tick, plus cycle/tick conversion.
 */
class Clocked
{
  public:
    Clocked(EventQueue &eq, ClockDomain domain)
        : eventq(eq), clock(domain)
    {}

    /** Current simulated time. */
    Tick curTick() const { return eventq.curTick(); }

    /** The first clock edge at least @p cycles cycles in the future. */
    Tick
    clockEdge(Cycles cycles = 0) const
    {
        Tick period = clock.periodTicks();
        Tick edge = roundUp(curTick(), 1) ; // curTick itself
        Tick aligned = divCeil(edge, period) * period;
        return aligned + cycles * period;
    }

    Tick cyclesToTicks(Cycles cycles) const
    { return clock.cyclesToTicks(cycles); }

    EventQueue &eventQueue() const { return eventq; }

  protected:
    EventQueue &eventq;
    ClockDomain clock;
};

} // namespace cnvm

#endif // CNVM_SIM_CLOCKED_HH
