/**
 * @file
 * Per-core memory path: a private L1 + L2 pair in front of the shared
 * memory controller, with the timing orchestration for loads, stores,
 * clwb-style writebacks and counter_cache_writeback() requests.
 *
 * The evaluated workloads operate on disjoint per-core data (paper
 * section 6.3.2: "each thread performs the same operations on different
 * cores"), so no coherence protocol is modelled; contention is captured
 * where the paper's effects live — in the shared memory controller and
 * the NVM device.
 */

#ifndef CNVM_MEM_CORE_MEM_PATH_HH
#define CNVM_MEM_CORE_MEM_PATH_HH

#include <deque>
#include <functional>
#include <string>

#include "mem/cache.hh"
#include "mem/mem_backend.hh"
#include "sim/clocked.hh"
#include "stats/stats.hh"

namespace cnvm
{

/** Geometry and latency of the private cache levels. */
struct CachePathConfig
{
    std::uint64_t l1Bytes = 64 * 1024;
    unsigned l1Assoc = 8;
    Cycles l1Cycles = 4;

    std::uint64_t l2Bytes = 2 * 1024 * 1024;
    unsigned l2Assoc = 8;
    Cycles l2Cycles = 20;
};

/**
 * The L1/L2 pair of one core. Inclusive hierarchy (L1 subset of L2);
 * L2 evictions back-invalidate L1, merging any newer L1 data first.
 */
class CoreMemPath : public Clocked
{
  public:
    CoreMemPath(EventQueue &eq, ClockDomain cpu_clock,
                MemBackend &backend, const CachePathConfig &cfg,
                unsigned core_id, stats::StatRegistry *registry);

    /** Line-granularity load; @p done fires when data is usable. */
    void load(Addr addr, std::function<void()> done);

    /**
     * Store of @p size bytes at @p addr (must not cross a line).
     * Write-allocate: a miss fetches the line first.
     *
     * @param counter_atomic the store carries the CounterAtomic
     *        annotation; the line's eventual writeback must pair data
     *        and counter persistence.
     */
    void store(Addr addr, unsigned size, const std::uint8_t *bytes,
               bool counter_atomic, std::function<void()> done);

    /**
     * clwb: writes the line back without invalidating; @p done fires
     * when the write is accepted into the persistence domain (or at
     * once if the line is clean everywhere).
     */
    void clwb(Addr addr, std::function<void()> done);

    /**
     * counter_cache_writeback() for the counter line covering
     * @p addr; @p done fires on ADR acceptance.
     */
    void ctrwb(Addr addr, std::function<void()> done);

    /** Models power failure: every volatile line is lost. */
    void dropAll();

    /** Reads current plaintext as the core would see it (functional). */
    LineData functionalRead(Addr addr) const;

    /** Writes waiting for controller space (retry queue depth). */
    std::size_t stalledDepth() const { return stalled.size(); }

    unsigned coreId() const { return id; }

  private:
    MemBackend &backend;
    Cache l1;
    Cache l2;
    CachePathConfig cfg;
    unsigned id;

    /** Deferred writes waiting for controller space, retried in order. */
    std::deque<std::function<bool()>> stalled;
    bool retryRegistered = false;

    stats::Scalar l1Hits;
    stats::Scalar l1Misses;
    stats::Scalar l2Hits;
    stats::Scalar l2Misses;
    stats::Scalar writebacks;
    stats::Scalar evictions;
    stats::Histogram loadTicks;

    /** Runs @p fn after @p cycles core cycles. */
    void after(Cycles cycles, std::function<void()> fn);

    /**
     * Brings @p addr into L2 and L1 (data from @p fill), handling the
     * eviction chain, then runs @p done. Either level may already hold
     * the line.
     */
    void fillBoth(Addr addr, const LineData &fill,
                  std::function<void()> done);

    /** Installs into L1 only, handling an L1 victim (merge into L2). */
    void fillL1(Addr addr, const LineData &fill);

    /**
     * Sends a dirty line to the controller, queueing behind earlier
     * stalled writes if the controller is full; @p then (optional) runs
     * once the write has been handed over.
     */
    void writebackToMem(Addr addr, const LineData &data, bool ca,
                        std::function<void()> accepted);

    /** Attempts the stalled queue front-to-back; re-arms the retry. */
    void drainStalled();

    /** Pushes one deferred attempt and arms the controller retry. */
    void pushStalled(std::function<bool()> attempt);

    void missToMemory(Addr addr, std::function<void()> done);
};

} // namespace cnvm

#endif // CNVM_MEM_CORE_MEM_PATH_HH
