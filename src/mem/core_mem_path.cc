#include "mem/core_mem_path.hh"

#include <cstring>

#include "common/logging.hh"
#include "sim/one_shot.hh"

namespace cnvm
{

namespace
{

std::string
statName(unsigned core, const char *leaf)
{
    return "core" + std::to_string(core) + ".mem." + leaf;
}

} // anonymous namespace

CoreMemPath::CoreMemPath(EventQueue &eq, ClockDomain cpu_clock,
                         MemBackend &backend, const CachePathConfig &cfg,
                         unsigned core_id, stats::StatRegistry *registry)
    : Clocked(eq, cpu_clock),
      backend(backend),
      l1("core" + std::to_string(core_id) + ".l1", cfg.l1Bytes, cfg.l1Assoc),
      l2("core" + std::to_string(core_id) + ".l2", cfg.l2Bytes, cfg.l2Assoc),
      cfg(cfg),
      id(core_id),
      l1Hits(statName(core_id, "l1_hits"), "L1 hits"),
      l1Misses(statName(core_id, "l1_misses"), "L1 misses"),
      l2Hits(statName(core_id, "l2_hits"), "L2 hits"),
      l2Misses(statName(core_id, "l2_misses"), "L2 misses"),
      writebacks(statName(core_id, "writebacks"),
                 "clwb-induced writebacks sent to the controller"),
      evictions(statName(core_id, "evictions"),
                "dirty evictions sent to the controller"),
      loadTicks(statName(core_id, "load_ticks"),
                "load completion latency (ticks)", nsToTicks(10), 100)
{
    if (registry != nullptr) {
        registry->registerStat(l1Hits);
        registry->registerStat(l1Misses);
        registry->registerStat(l2Hits);
        registry->registerStat(l2Misses);
        registry->registerStat(writebacks);
        registry->registerStat(evictions);
        registry->registerStat(loadTicks);
    }
}

void
CoreMemPath::after(Cycles cycles, std::function<void()> fn)
{
    scheduleAfter(eventq, cyclesToTicks(cycles), std::move(fn));
}

void
CoreMemPath::load(Addr addr, std::function<void()> done)
{
    addr = lineAlign(addr);
    Tick start = curTick();
    done = [this, start, done = std::move(done)]() {
        loadTicks.sample(curTick() - start);
        done();
    };
    after(cfg.l1Cycles, [this, addr, done = std::move(done)]() mutable {
        if (l1.access(addr) != nullptr) {
            ++l1Hits;
            done();
            return;
        }
        ++l1Misses;
        after(cfg.l2Cycles, [this, addr, done = std::move(done)]() mutable {
            CacheLine *line = l2.access(addr);
            if (line != nullptr) {
                ++l2Hits;
                fillL1(addr, line->data);
                done();
                return;
            }
            ++l2Misses;
            missToMemory(addr, std::move(done));
        });
    });
}

void
CoreMemPath::missToMemory(Addr addr, std::function<void()> done)
{
    backend.issueRead(addr, id,
        [this, addr, done = std::move(done)]() mutable {
            LineData data = backend.functionalRead(addr);
            fillBoth(addr, data, std::move(done));
        });
}

void
CoreMemPath::store(Addr addr, unsigned size, const std::uint8_t *bytes,
                   bool counter_atomic, std::function<void()> done)
{
    Addr line_addr = lineAlign(addr);
    cnvm_assert(size > 0 && size <= lineBytes);
    cnvm_assert(addr + size <= line_addr + lineBytes);

    // Capture the payload by value; the caller's buffer may not outlive
    // the cache latency.
    LineData payload{};
    std::memcpy(payload.data(), bytes, size);
    unsigned offset = static_cast<unsigned>(addr - line_addr);

    auto apply = [this, line_addr, offset, size, payload, counter_atomic,
                  done = std::move(done)]() mutable {
        CacheLine *line = l1.access(line_addr);
        cnvm_assert(line != nullptr);
        std::memcpy(line->data.data() + offset, payload.data(), size);
        line->dirty = true;
        line->counterAtomic |= counter_atomic;
        backend.functionalStore(line_addr + offset, size, payload.data());
        done();
    };

    after(cfg.l1Cycles, [this, line_addr, apply = std::move(apply)]() mutable {
        if (l1.access(line_addr) != nullptr) {
            ++l1Hits;
            apply();
            return;
        }
        ++l1Misses;
        // Write-allocate: fetch the line, then apply the merge.
        after(cfg.l2Cycles,
              [this, line_addr, apply = std::move(apply)]() mutable {
            CacheLine *line = l2.access(line_addr);
            if (line != nullptr) {
                ++l2Hits;
                fillL1(line_addr, line->data);
                apply();
                return;
            }
            ++l2Misses;
            missToMemory(line_addr, std::move(apply));
        });
    });
}

void
CoreMemPath::clwb(Addr addr, std::function<void()> done)
{
    Addr line_addr = lineAlign(addr);
    after(cfg.l1Cycles, [this, line_addr, done = std::move(done)]() mutable {
        // Push any newer L1 data down into L2 (clwb does not invalidate).
        CacheLine *l1_line = l1.peek(line_addr);
        if (l1_line != nullptr && l1_line->dirty) {
            CacheLine *l2_line = l2.access(line_addr);
            // Inclusive hierarchy: the L2 copy must exist.
            cnvm_assert(l2_line != nullptr);
            l2_line->data = l1_line->data;
            l2_line->dirty = true;
            l2_line->counterAtomic |= l1_line->counterAtomic;
            l1_line->dirty = false;
            l1_line->counterAtomic = false;
        }

        after(cfg.l2Cycles,
              [this, line_addr, done = std::move(done)]() mutable {
            CacheLine *l2_line = l2.peek(line_addr);
            if (l2_line == nullptr || !l2_line->dirty) {
                // Clean (or already evicted, i.e. already written back):
                // nothing to persist.
                done();
                return;
            }
            ++writebacks;
            LineData data = l2_line->data;
            bool ca = l2_line->counterAtomic;
            l2_line->dirty = false;
            l2_line->counterAtomic = false;
            writebackToMem(line_addr, data, ca, std::move(done));
        });
    });
}

void
CoreMemPath::ctrwb(Addr addr, std::function<void()> done)
{
    Addr line_addr = lineAlign(addr);
    // The request travels the same pipeline as writebacks so that a
    // counter_cache_writeback() issued after a clwb in program order
    // reaches the controller after that clwb's write and flushes the
    // freshly updated counters, not stale ones.
    after(cfg.l1Cycles + cfg.l2Cycles,
          [this, line_addr, done = std::move(done)]() mutable {
        auto attempt = [this, line_addr, done]() {
            return backend.tryCtrWriteback(line_addr, done);
        };
        if (!stalled.empty() || !attempt())
            pushStalled(attempt);
    });
}

void
CoreMemPath::writebackToMem(Addr addr, const LineData &data, bool ca,
                            std::function<void()> accepted)
{
    WriteReq req;
    req.addr = addr;
    req.data = data;
    req.counterAtomic = ca;
    req.coreId = id;
    req.accepted = std::move(accepted);

    auto attempt = [this, req]() { return backend.tryWrite(req); };
    if (!stalled.empty() || !attempt())
        pushStalled(attempt);
}

void
CoreMemPath::pushStalled(std::function<bool()> attempt)
{
    stalled.push_back(std::move(attempt));
    if (!retryRegistered) {
        retryRegistered = true;
        backend.registerRetry([this]() {
            retryRegistered = false;
            drainStalled();
        });
    }
}

void
CoreMemPath::drainStalled()
{
    while (!stalled.empty()) {
        if (!stalled.front()()) {
            // Still no space; wait for the next notification.
            if (!retryRegistered) {
                retryRegistered = true;
                backend.registerRetry([this]() {
                    retryRegistered = false;
                    drainStalled();
                });
            }
            return;
        }
        stalled.pop_front();
    }
}

void
CoreMemPath::fillL1(Addr addr, const LineData &fill)
{
    if (l1.peek(addr) != nullptr)
        return;
    auto victim = l1.allocate(addr, fill);
    if (victim && victim->dirty) {
        // Merge newer L1 data into the (inclusive) L2 copy.
        CacheLine *l2_line = l2.access(victim->addr);
        cnvm_assert(l2_line != nullptr);
        l2_line->data = victim->data;
        l2_line->dirty = true;
        l2_line->counterAtomic |= victim->counterAtomic;
    }
}

void
CoreMemPath::fillBoth(Addr addr, const LineData &fill,
                      std::function<void()> done)
{
    if (l2.peek(addr) == nullptr) {
        auto victim = l2.allocate(addr, fill);
        if (victim) {
            // Maintain inclusion: pull any newer L1 copy into the victim.
            auto l1_copy = l1.invalidate(victim->addr);
            if (l1_copy && l1_copy->dirty) {
                victim->data = l1_copy->data;
                victim->dirty = true;
                victim->counterAtomic |= l1_copy->counterAtomic;
            }
            if (victim->dirty) {
                ++evictions;
                writebackToMem(victim->addr, victim->data,
                               victim->counterAtomic, nullptr);
            }
        }
    }
    fillL1(addr, fill);
    done();
}

void
CoreMemPath::dropAll()
{
    l1.reset();
    l2.reset();
    stalled.clear();
}

LineData
CoreMemPath::functionalRead(Addr addr) const
{
    addr = lineAlign(addr);
    if (const CacheLine *line = l1.peek(addr))
        return line->data;
    if (const CacheLine *line = l2.peek(addr))
        return line->data;
    return backend.functionalRead(addr);
}

} // namespace cnvm
