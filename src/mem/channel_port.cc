#include "mem/channel_port.hh"

#include <utility>

#include "common/logging.hh"

namespace cnvm
{

ChannelPort::ChannelPort(ParallelKernel &kernel, std::size_t coord_dom,
                         std::size_t chan_dom, MemBackend &ctl, Tick hop,
                         unsigned credit_pool)
    : kernel(kernel),
      coordDom(coord_dom),
      chanDom(chan_dom),
      ctl(ctl),
      hop(hop),
      credits(credit_pool)
{
    cnvm_assert(credit_pool > 0);
}

void
ChannelPort::toChannel(std::function<void()> fn)
{
    Tick now = kernel.domain(coordDom).curTick();
    kernel.post(coordDom, chanDom, now + hop, Event::DefaultPriority,
                std::move(fn));
}

void
ChannelPort::toCoordinator(std::function<void()> fn)
{
    Tick now = kernel.domain(chanDom).curTick();
    kernel.post(chanDom, coordDom, now + hop, Event::DefaultPriority,
                std::move(fn));
}

void
ChannelPort::issueRead(Addr addr, unsigned core_id, ReadCallback done)
{
    toChannel([this, addr, core_id, done = std::move(done)]() mutable {
        ctl.issueRead(addr, core_id,
                      [this, done = std::move(done)]() mutable {
                          toCoordinator(std::move(done));
                      });
    });
}

void
ChannelPort::chanArmRetry()
{
    if (chanRetryArmed)
        return;
    chanRetryArmed = true;
    ctl.registerRetry([this]() {
        chanRetryArmed = false;
        chanDrainParked();
    });
}

void
ChannelPort::chanDrainParked()
{
    while (!parked.empty()) {
        if (!parked.front()()) {
            chanArmRetry();
            return;
        }
        parked.pop_front();
    }
}

void
ChannelPort::chanSubmit(std::function<bool()> attempt)
{
    // Arrival order is the admission order the coordinator saw; a new
    // request may not overtake parked ones even if it would fit.
    if (parked.empty() && attempt())
        return;
    parked.push_back(std::move(attempt));
    chanArmRetry();
}

void
ChannelPort::refundCredit()
{
    ++credits;
    if (retryCallbacks.empty())
        return;
    std::vector<std::function<void()>> cbs;
    cbs.swap(retryCallbacks);
    for (auto &cb : cbs)
        cb();
}

bool
ChannelPort::tryWrite(const WriteReq &req)
{
    if (credits == 0)
        return false;
    --credits;
    WriteReq fwd = req;
    // The accepted callback fires on the channel domain (landing /
    // pairing completion); hop it home before the fence logic sees it.
    if (fwd.accepted) {
        fwd.accepted = [this, orig = std::move(fwd.accepted)]() {
            toCoordinator(orig);
        };
    }
    toChannel([this, fwd = std::move(fwd)]() {
        chanSubmit([this, fwd]() {
            if (!ctl.tryWrite(fwd))
                return false;
            toCoordinator([this]() { refundCredit(); });
            return true;
        });
    });
    return true;
}

bool
ChannelPort::tryCtrWriteback(Addr data_line_addr,
                             std::function<void()> accepted)
{
    if (credits == 0)
        return false;
    --credits;
    std::function<void()> acc;
    if (accepted) {
        acc = [this, orig = std::move(accepted)]() {
            toCoordinator(orig);
        };
    }
    toChannel([this, data_line_addr, acc = std::move(acc)]() {
        chanSubmit([this, data_line_addr, acc]() {
            if (!ctl.tryCtrWriteback(data_line_addr, acc))
                return false;
            toCoordinator([this]() { refundCredit(); });
            return true;
        });
    });
    return true;
}

void
ChannelPort::registerRetry(std::function<void()> retry)
{
    retryCallbacks.push_back(std::move(retry));
}

LineData
ChannelPort::functionalRead(Addr addr) const
{
    return ctl.functionalRead(addr);
}

void
ChannelPort::functionalStore(Addr addr, unsigned size,
                             const std::uint8_t *bytes)
{
    ctl.functionalStore(addr, size, bytes);
}

} // namespace cnvm
