/**
 * @file
 * Address-to-channel interleaving map for the multi-channel memory
 * system.
 *
 * The address space is interleaved across N channels (N a power of
 * two) at *counter-block* granularity: one counter line covers
 * countersPerLine consecutive data lines (512 B), and the whole block
 * maps to one channel. Interleaving at plain cache-line granularity
 * would split a counter line's eight data lines across channels, so a
 * single counter-atomic pair would straddle controllers and every
 * counter write-back would have to be mirrored. With block-granule
 * interleaving each counter line, its eight data lines, and the MACs
 * over them are owned by exactly one channel — the cross-channel
 * ordering problem reduces to ordering *between* blocks, which the
 * shared PersistSequencer solves.
 *
 * Region layout (addresses are absolute):
 *   [0, counterRegionBase)                       data
 *   [counterRegionBase, 2*counterRegionBase)     counter store
 *   [2*counterRegionBase, ...)                   integrity-tree nodes
 *
 * A counter line at counterRegionBase + k*lineBytes covers the data
 * block at k*countersPerLine*lineBytes, and both map to channel
 * k & (channels-1): the map is co-location preserving by construction.
 */

#ifndef CNVM_MEM_CHANNEL_MAP_HH
#define CNVM_MEM_CHANNEL_MAP_HH

#include "common/logging.hh"
#include "common/types.hh"

namespace cnvm
{

/** Returns true when @p v is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

struct ChannelMap
{
    unsigned channels = 1;
    Addr counterRegionBase = Addr(1) << 33;

    ChannelMap() = default;

    ChannelMap(unsigned channels_in, Addr counter_region_base)
        : channels(channels_in), counterRegionBase(counter_region_base)
    {
        cnvm_assert(isPowerOfTwo(channels));
        cnvm_assert(isLineAligned(counterRegionBase));
    }

    /** Bytes of one interleave granule in the data region. */
    static constexpr Addr dataGranule = Addr(countersPerLine) * lineBytes;

    /** The channel owning @p addr (data, counter, or tree region). */
    unsigned
    channelOf(Addr addr) const
    {
        if (channels == 1)
            return 0;
        if (addr >= counterRegionBase * 2) {
            // Tree-node region: line interleave above the region base.
            return static_cast<unsigned>(
                ((addr - counterRegionBase * 2) / lineBytes)
                & (channels - 1));
        }
        if (addr >= counterRegionBase) {
            // Counter line k covers data block k: same index, so the
            // same channel as the data it protects.
            return static_cast<unsigned>(
                ((addr - counterRegionBase) / lineBytes)
                & (channels - 1));
        }
        return static_cast<unsigned>((addr / dataGranule)
                                     & (channels - 1));
    }

    /**
     * The address a channel's integrity-tree epoch flush is billed to.
     * Distinct per channel so per-channel flush traffic lands on that
     * channel's own bank group.
     */
    Addr
    treeFlushAddr(unsigned channel) const
    {
        cnvm_assert(channel < channels);
        return counterRegionBase * 2 + Addr(channel) * lineBytes;
    }
};

} // namespace cnvm

#endif // CNVM_MEM_CHANNEL_MAP_HH
