#include "mem/cache.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace cnvm
{

Cache::Cache(std::string name, std::uint64_t size_bytes, unsigned assoc)
    : cacheName(std::move(name)), ways(assoc)
{
    cnvm_assert(assoc > 0);
    cnvm_assert(size_bytes % (static_cast<std::uint64_t>(assoc) * lineBytes)
                == 0);
    numSets = size_bytes / (static_cast<std::uint64_t>(assoc) * lineBytes);
    if (!isPowerOf2(numSets))
        cnvm_fatal("cache '%s': set count %llu is not a power of two",
                   cacheName.c_str(),
                   static_cast<unsigned long long>(numSets));
    lines.resize(numSets * ways);
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr / lineBytes) & (numSets - 1);
}

CacheLine *
Cache::setBase(std::uint64_t set)
{
    return &lines[set * ways];
}

CacheLine *
Cache::peek(Addr addr)
{
    addr = lineAlign(addr);
    CacheLine *base = setBase(setIndex(addr));
    for (unsigned w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].addr == addr)
            return &base[w];
    }
    return nullptr;
}

const CacheLine *
Cache::peek(Addr addr) const
{
    return const_cast<Cache *>(this)->peek(addr);
}

CacheLine *
Cache::access(Addr addr)
{
    CacheLine *line = peek(addr);
    if (line != nullptr)
        line->lruStamp = nextStamp++;
    return line;
}

std::optional<Eviction>
Cache::allocate(Addr addr, const LineData &fill)
{
    addr = lineAlign(addr);
    cnvm_assert(peek(addr) == nullptr);

    CacheLine *base = setBase(setIndex(addr));
    CacheLine *victim = nullptr;
    for (unsigned w = 0; w < ways; ++w) {
        CacheLine &cand = base[w];
        if (!cand.valid) {
            victim = &cand;
            break;
        }
        if (victim == nullptr || cand.lruStamp < victim->lruStamp)
            victim = &cand;
    }

    std::optional<Eviction> evicted;
    if (victim->valid) {
        evicted = Eviction{victim->addr, victim->dirty,
                           victim->counterAtomic, victim->data};
    }

    victim->addr = addr;
    victim->valid = true;
    victim->dirty = false;
    victim->counterAtomic = false;
    victim->lruStamp = nextStamp++;
    victim->data = fill;
    return evicted;
}

std::optional<Eviction>
Cache::invalidate(Addr addr)
{
    CacheLine *line = peek(addr);
    if (line == nullptr)
        return std::nullopt;
    Eviction out{line->addr, line->dirty, line->counterAtomic, line->data};
    line->valid = false;
    line->dirty = false;
    line->counterAtomic = false;
    return out;
}

std::uint64_t
Cache::validCount() const
{
    std::uint64_t n = 0;
    for (const CacheLine &line : lines)
        n += line.valid ? 1 : 0;
    return n;
}

void
Cache::reset()
{
    for (CacheLine &line : lines) {
        line.valid = false;
        line.dirty = false;
        line.counterAtomic = false;
    }
    nextStamp = 1;
}

} // namespace cnvm
