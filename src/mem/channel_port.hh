/**
 * @file
 * Cross-domain proxy for one memory channel (the --sim-jobs issue path).
 *
 * Under the partitioned kernel the CPU/cache front end (coordinator
 * domain) and each channel's MemController (channel domain) live on
 * different event queues, so the synchronous MemBackend calls the
 * caches make cannot reach the controller directly. A ChannelPort
 * implements MemBackend on the coordinator side and forwards every
 * timing-path call through kernel mailboxes, one hop of simulated
 * latency each way:
 *
 *  - issueRead: forwarded to the channel; the completion callback is
 *    wrapped to hop back to the coordinator. Reads are always
 *    accepted, as in the direct backend.
 *  - tryWrite / tryCtrWriteback: the synchronous accept/reject
 *    decision cannot cross an asynchronous boundary, so the port
 *    answers it locally with a credit pool modelling its request
 *    buffer: a request is admitted (true) while credits remain and
 *    refused (false) otherwise — the caller's existing retry
 *    machinery handles refusal exactly as it handles a full write
 *    queue. Admitted requests hop to the channel, where an ingress
 *    FIFO replays them into the controller in arrival order, parking
 *    on controller back-pressure and re-attempting on the
 *    controller's retry notifications. When the controller takes a
 *    request its credit hops back and pending coordinator retries
 *    fire.
 *  - functionalRead / functionalStore: zero-time live-plaintext
 *    accesses, called only from the coordinator; they short-circuit
 *    to the controller directly (the channel thread never touches the
 *    live view).
 *
 * All hops use the kernel's quantum as their latency, so the
 * conservative-lookahead contract holds and delivery order is
 * deterministic at any --sim-jobs. Relative to the classic
 * single-queue backend the port adds one hop of latency each
 * direction — the partitioned kernel is its own (internally
 * consistent and deterministic) timing configuration, compared
 * against the classic one only through the partitioned-serial
 * reference (--sim-jobs 1).
 */

#ifndef CNVM_MEM_CHANNEL_PORT_HH
#define CNVM_MEM_CHANNEL_PORT_HH

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "mem/mem_backend.hh"
#include "sim/parallel_kernel.hh"

namespace cnvm
{

class ChannelPort : public MemBackend
{
  public:
    /**
     * @param kernel      the partitioned kernel carrying the mailboxes
     * @param coord_dom   coordinator domain index
     * @param chan_dom    this channel's domain index
     * @param ctl         the channel's controller (as a MemBackend)
     * @param hop         cross-domain hop latency (>= kernel quantum)
     * @param credit_pool admission credits for writes + ctr writebacks
     */
    ChannelPort(ParallelKernel &kernel, std::size_t coord_dom,
                std::size_t chan_dom, MemBackend &ctl, Tick hop,
                unsigned credit_pool = 32);

    void issueRead(Addr addr, unsigned core_id, ReadCallback done) override;
    bool tryWrite(const WriteReq &req) override;
    bool tryCtrWriteback(Addr data_line_addr,
                         std::function<void()> accepted) override;
    void registerRetry(std::function<void()> retry) override;
    LineData functionalRead(Addr addr) const override;
    void functionalStore(Addr addr, unsigned size,
                         const std::uint8_t *bytes) override;

  private:
    /** Runs on the channel domain: attempt the request now or park it
     *  behind earlier parked ones (arrival order is preserved). */
    void chanSubmit(std::function<bool()> attempt);

    /** Replays parked attempts in order until one refuses again. */
    void chanDrainParked();

    /** Arms a one-shot controller retry to drain the parked FIFO. */
    void chanArmRetry();

    /** Runs on the coordinator domain: return one credit and kick any
     *  registered retry callbacks. */
    void refundCredit();

    /** Posts @p fn from the coordinator to the channel domain. */
    void toChannel(std::function<void()> fn);

    /** Posts @p fn from the channel to the coordinator domain. */
    void toCoordinator(std::function<void()> fn);

    ParallelKernel &kernel;
    std::size_t coordDom;
    std::size_t chanDom;
    MemBackend &ctl;
    Tick hop;

    // --- coordinator-domain state ---
    unsigned credits;
    std::vector<std::function<void()>> retryCallbacks;

    // --- channel-domain state ---
    std::deque<std::function<bool()>> parked;
    bool chanRetryArmed = false;
};

} // namespace cnvm

#endif // CNVM_MEM_CHANNEL_PORT_HH
