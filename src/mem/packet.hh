/**
 * @file
 * Request types exchanged between the cache hierarchy and the memory
 * controller.
 */

#ifndef CNVM_MEM_PACKET_HH
#define CNVM_MEM_PACKET_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "crypto/ctr_engine.hh"

namespace cnvm
{

/**
 * A full-line write travelling from a cache to the memory controller,
 * either a clwb-induced writeback or a dirty eviction.
 */
struct WriteReq
{
    /** Line-aligned address of the data line. */
    Addr addr = 0;

    /** Plaintext contents of the line at writeback time. */
    LineData data{};

    /**
     * True when the line holds a CounterAtomic-annotated update: its
     * data and counter must persist atomically (paper section 4.3).
     */
    bool counterAtomic = false;

    /** Issuing core, for stats attribution. */
    unsigned coreId = 0;

    /**
     * Invoked when the write has been accepted into the ADR-protected
     * persistence domain; for counter-atomic writes this additionally
     * requires the ready-bit pairing to have completed. May be empty
     * (dirty evictions do not gate any fence).
     */
    std::function<void()> accepted;
};

/** Completion callback for a read: fires when decrypted data is ready. */
using ReadCallback = std::function<void()>;

} // namespace cnvm

#endif // CNVM_MEM_PACKET_HH
