/**
 * @file
 * Fans a core's memory traffic out to the owning memory channel.
 *
 * One router instance sits between all CoreMemPaths and the N
 * per-channel MemControllers; every request is forwarded to the
 * channel that owns its address under the ChannelMap, so a channel
 * never sees an address outside its shard. Retry registrations are
 * collected here and pumped by whichever channel notifies first: a
 * stalled path cannot know which channel will free space first, and
 * CoreMemPath::drainStalled() is a no-op when nothing is stalled, so
 * a kick from the "wrong" channel is harmless. The router arms at
 * most one one-shot pump per channel rather than copying every
 * callback into every channel — a channel that never notifies (e.g.
 * one whose drain is saturated) must not accumulate an unbounded
 * backlog of stale registrations.
 */

#ifndef CNVM_MEM_CHANNEL_ROUTER_HH
#define CNVM_MEM_CHANNEL_ROUTER_HH

#include <vector>

#include "mem/channel_map.hh"
#include "mem/mem_backend.hh"

namespace cnvm
{

class ChannelRouter : public MemBackend
{
  public:
    ChannelRouter(std::vector<MemBackend *> channels_in, ChannelMap map);

    void issueRead(Addr addr, unsigned core_id,
                   ReadCallback done) override;
    bool tryWrite(const WriteReq &req) override;
    bool tryCtrWriteback(Addr data_line_addr,
                         std::function<void()> accepted) override;
    void registerRetry(std::function<void()> retry) override;
    LineData functionalRead(Addr addr) const override;
    void functionalStore(Addr addr, unsigned size,
                         const std::uint8_t *bytes) override;

  private:
    std::vector<MemBackend *> channels;
    ChannelMap map;

    /** Callbacks waiting for any channel to free queue space. */
    std::vector<std::function<void()>> retryCbs;
    /** Which channels currently hold an armed pump for @ref retryCbs. */
    std::vector<bool> pumpArmed;

    MemBackend &channelFor(Addr addr) const;
    void pumpRetries(std::size_t channel);
};

} // namespace cnvm

#endif // CNVM_MEM_CHANNEL_ROUTER_HH
