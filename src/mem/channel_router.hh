/**
 * @file
 * Fans a core's memory traffic out to the owning memory channel.
 *
 * One router instance sits between all CoreMemPaths and the N
 * per-channel MemControllers; every request is forwarded to the
 * channel that owns its address under the ChannelMap, so a channel
 * never sees an address outside its shard. Retry registrations are
 * forwarded to every channel: CoreMemPath::drainStalled() is a no-op
 * when nothing is stalled and re-registers itself while the head
 * still fails, so a retry kick from the "wrong" channel is harmless —
 * and a stalled path cannot know which channel will free space first.
 */

#ifndef CNVM_MEM_CHANNEL_ROUTER_HH
#define CNVM_MEM_CHANNEL_ROUTER_HH

#include <vector>

#include "mem/channel_map.hh"
#include "mem/mem_backend.hh"

namespace cnvm
{

class ChannelRouter : public MemBackend
{
  public:
    ChannelRouter(std::vector<MemBackend *> channels_in, ChannelMap map);

    void issueRead(Addr addr, unsigned core_id,
                   ReadCallback done) override;
    bool tryWrite(const WriteReq &req) override;
    bool tryCtrWriteback(Addr data_line_addr,
                         std::function<void()> accepted) override;
    void registerRetry(std::function<void()> retry) override;
    LineData functionalRead(Addr addr) const override;
    void functionalStore(Addr addr, unsigned size,
                         const std::uint8_t *bytes) override;

  private:
    std::vector<MemBackend *> channels;
    ChannelMap map;

    MemBackend &channelFor(Addr addr) const;
};

} // namespace cnvm

#endif // CNVM_MEM_CHANNEL_ROUTER_HH
