/**
 * @file
 * Set-associative writeback cache with the line state needed for
 * persistent-memory semantics: a dirty bit, and a counter-atomic bit
 * recording that the line's pending update carries the CounterAtomic
 * annotation (paper section 4.3) so that its eventual writeback is
 * enforced as counter-atomic by the memory controller.
 *
 * This class is purely structural (tags, data, LRU); all timing lives in
 * the CoreMemPath orchestration layer.
 */

#ifndef CNVM_MEM_CACHE_HH
#define CNVM_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "crypto/ctr_engine.hh"

namespace cnvm
{

/** One resident cache line. */
struct CacheLine
{
    Addr addr = 0;          //!< line-aligned address (tag + index)
    bool valid = false;
    bool dirty = false;
    /** Pending update must be written back counter-atomically. */
    bool counterAtomic = false;
    std::uint64_t lruStamp = 0;
    LineData data{};
};

/** A victim line removed to make room for an allocation. */
struct Eviction
{
    Addr addr = 0;
    bool dirty = false;
    bool counterAtomic = false;
    LineData data{};
};

/**
 * Structural set-associative cache, LRU replacement, 64 B lines.
 */
class Cache
{
  public:
    /**
     * @param name        diagnostic name
     * @param size_bytes  total capacity; must be a multiple of
     *                    assoc * lineBytes and index count a power of two
     * @param assoc       number of ways
     */
    Cache(std::string name, std::uint64_t size_bytes, unsigned assoc);

    /** Looks a line up without touching LRU state. */
    CacheLine *peek(Addr addr);
    const CacheLine *peek(Addr addr) const;

    /** Looks a line up and, on hit, makes it most recently used. */
    CacheLine *access(Addr addr);

    /**
     * Allocates a frame for @p addr (which must not be resident),
     * evicting the LRU victim of the set if every way is valid.
     *
     * @return the victim, when one had to be displaced.
     */
    std::optional<Eviction> allocate(Addr addr, const LineData &fill);

    /** Invalidates a line if present; returns its prior content. */
    std::optional<Eviction> invalidate(Addr addr);

    /** Number of valid lines currently resident. */
    std::uint64_t validCount() const;

    std::uint64_t sizeBytes() const { return numSets * ways * lineBytes; }
    unsigned associativity() const { return ways; }
    std::uint64_t sets() const { return numSets; }
    const std::string &name() const { return cacheName; }

    /** Drops every line (used when modelling a power failure). */
    void reset();

  private:
    std::string cacheName;
    std::uint64_t numSets;
    unsigned ways;
    std::uint64_t nextStamp = 1;
    std::vector<CacheLine> lines;   //!< numSets * ways, set-major

    std::uint64_t setIndex(Addr addr) const;
    CacheLine *setBase(std::uint64_t set);
};

} // namespace cnvm

#endif // CNVM_MEM_CACHE_HH
