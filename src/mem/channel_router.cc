#include "mem/channel_router.hh"

#include <utility>

#include "common/logging.hh"

namespace cnvm
{

ChannelRouter::ChannelRouter(std::vector<MemBackend *> channels_in,
                             ChannelMap map_in)
    : channels(std::move(channels_in)), map(map_in),
      pumpArmed(channels.size(), false)
{
    cnvm_assert(!channels.empty());
    cnvm_assert(channels.size() == map.channels);
    for (MemBackend *ch : channels)
        cnvm_assert(ch != nullptr);
}

MemBackend &
ChannelRouter::channelFor(Addr addr) const
{
    return *channels[map.channelOf(addr)];
}

void
ChannelRouter::issueRead(Addr addr, unsigned core_id, ReadCallback done)
{
    channelFor(addr).issueRead(addr, core_id, std::move(done));
}

bool
ChannelRouter::tryWrite(const WriteReq &req)
{
    return channelFor(req.addr).tryWrite(req);
}

bool
ChannelRouter::tryCtrWriteback(Addr data_line_addr,
                               std::function<void()> accepted)
{
    // The counter line covering a data line is owned by the same
    // channel as the data line (ChannelMap co-location), so routing
    // by the data address reaches the right counter shard.
    return channelFor(data_line_addr)
        .tryCtrWriteback(data_line_addr, std::move(accepted));
}

void
ChannelRouter::registerRetry(std::function<void()> retry)
{
    // Park the callback here and arm (at most) one pump per channel:
    // whichever channel frees queue space first drains the shared
    // list, and the other pumps fire later as cheap no-ops. Copying
    // every callback into every channel instead would let a channel
    // that never notifies — one whose drain is saturated by a hot
    // counter line, say — accumulate stale registrations without
    // bound while the stalled paths retry.
    retryCbs.push_back(std::move(retry));
    for (std::size_t i = 0; i < channels.size(); ++i) {
        if (pumpArmed[i])
            continue;
        pumpArmed[i] = true;
        channels[i]->registerRetry([this, i]() { pumpRetries(i); });
    }
}

void
ChannelRouter::pumpRetries(std::size_t channel)
{
    pumpArmed[channel] = false;
    if (retryCbs.empty())
        return; // another channel's pump already drained the list
    std::vector<std::function<void()>> pending;
    pending.swap(retryCbs);
    // Registration order, exactly as the per-channel fan-out would
    // have delivered them: the order stalled paths re-attempt is part
    // of the deterministic schedule.
    for (auto &cb : pending)
        cb();
}

LineData
ChannelRouter::functionalRead(Addr addr) const
{
    return channelFor(addr).functionalRead(addr);
}

void
ChannelRouter::functionalStore(Addr addr, unsigned size,
                               const std::uint8_t *bytes)
{
    channelFor(addr).functionalStore(addr, size, bytes);
}

} // namespace cnvm
