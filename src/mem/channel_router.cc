#include "mem/channel_router.hh"

#include <utility>

#include "common/logging.hh"

namespace cnvm
{

ChannelRouter::ChannelRouter(std::vector<MemBackend *> channels_in,
                             ChannelMap map_in)
    : channels(std::move(channels_in)), map(map_in)
{
    cnvm_assert(!channels.empty());
    cnvm_assert(channels.size() == map.channels);
    for (MemBackend *ch : channels)
        cnvm_assert(ch != nullptr);
}

MemBackend &
ChannelRouter::channelFor(Addr addr) const
{
    return *channels[map.channelOf(addr)];
}

void
ChannelRouter::issueRead(Addr addr, unsigned core_id, ReadCallback done)
{
    channelFor(addr).issueRead(addr, core_id, std::move(done));
}

bool
ChannelRouter::tryWrite(const WriteReq &req)
{
    return channelFor(req.addr).tryWrite(req);
}

bool
ChannelRouter::tryCtrWriteback(Addr data_line_addr,
                               std::function<void()> accepted)
{
    // The counter line covering a data line is owned by the same
    // channel as the data line (ChannelMap co-location), so routing
    // by the data address reaches the right counter shard.
    return channelFor(data_line_addr)
        .tryCtrWriteback(data_line_addr, std::move(accepted));
}

void
ChannelRouter::registerRetry(std::function<void()> retry)
{
    // Fan the kick out: whichever channel frees queue space first
    // wakes the path. Spurious wakeups are no-ops by the retry
    // protocol's contract.
    for (std::size_t i = 0; i + 1 < channels.size(); ++i)
        channels[i]->registerRetry(retry);
    channels.back()->registerRetry(std::move(retry));
}

LineData
ChannelRouter::functionalRead(Addr addr) const
{
    return channelFor(addr).functionalRead(addr);
}

void
ChannelRouter::functionalStore(Addr addr, unsigned size,
                               const std::uint8_t *bytes)
{
    channelFor(addr).functionalStore(addr, size, bytes);
}

} // namespace cnvm
