/**
 * @file
 * Abstract interface the cache hierarchy uses to talk to main memory.
 *
 * The concrete implementation is memctl::MemController; tests substitute
 * simple fakes.
 */

#ifndef CNVM_MEM_MEM_BACKEND_HH
#define CNVM_MEM_MEM_BACKEND_HH

#include <functional>

#include "mem/packet.hh"

namespace cnvm
{

/**
 * Downstream memory interface with bounded write acceptance.
 *
 * Writes may be refused when the controller's write queues are full;
 * the caller registers a retry callback and tries again once notified.
 * Reads are always accepted (cores block on loads, so the read queue
 * can never be oversubscribed in this system).
 */
class MemBackend
{
  public:
    virtual ~MemBackend() = default;

    /**
     * Issues a line read; @p done fires when decrypted data is
     * available to fill the cache.
     */
    virtual void issueRead(Addr addr, unsigned core_id,
                           ReadCallback done) = 0;

    /**
     * Attempts to hand a line write to the controller.
     * @return false when the controller cannot take the write now; the
     *         caller should register a retry callback.
     */
    virtual bool tryWrite(const WriteReq &req) = 0;

    /**
     * Attempts to issue a counter_cache_writeback() for the counter
     * line covering @p data_line_addr (paper section 4.3).
     * @return false when the counter write queue cannot take it.
     */
    virtual bool tryCtrWriteback(Addr data_line_addr,
                                 std::function<void()> accepted) = 0;

    /**
     * Registers a one-shot callback invoked when write-queue space may
     * have become available.
     */
    virtual void registerRetry(std::function<void()> retry) = 0;

    /**
     * Functional (zero-time) read of the newest program-order plaintext
     * of a line. Used to source cache fills. This is the live view; the
     * persisted (crash-visible) state is tracked separately by the
     * controller's queues and the NVM image.
     */
    virtual LineData functionalRead(Addr addr) const = 0;

    /**
     * Functional (zero-time) program-order plaintext update, invoked
     * when a store retires into the cache. Keeps the live view that
     * functionalRead() serves coherent with the caches.
     */
    virtual void functionalStore(Addr addr, unsigned size,
                                 const std::uint8_t *bytes) = 0;
};

} // namespace cnvm

#endif // CNVM_MEM_MEM_BACKEND_HH
