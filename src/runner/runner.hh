/**
 * @file
 * Fixed-size work pool over an indexed task queue.
 *
 * The crash-point sweep's Execute phase runs K independent System
 * instances — one per planned crash point — and the bench harness runs
 * independent per-design probes. Both are embarrassingly parallel, but
 * both must stay byte-identical to their serial reference loops: sweep
 * fingerprints and stats dumps are diffed across runs. The pool
 * therefore hands out *indices* from a shared cursor and callers
 * collect each result into its own slot, so the merged output is in
 * plan order no matter which worker finished first.
 *
 * jobs() == 1 runs every index inline on the calling thread with no
 * worker threads at all: the serial reference path.
 *
 * Next to the indexed batch mode there is a pipelined mode —
 * submit()/waitSubmitted() — for producers that discover work
 * incrementally: the fork-based sweep's trunk simulation emits a
 * classification task per captured crash point, and workers chew
 * through them *while the trunk is still running*.
 *
 * A pool is reusable — forEachIndex()/map() and
 * submit()/waitSubmitted() cycles may be called any number of times —
 * but is single-owner: only one batch or submission cycle may be in
 * flight at a time, driven from one thread.
 */

#ifndef CNVM_RUNNER_RUNNER_HH
#define CNVM_RUNNER_RUNNER_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace cnvm
{

class WorkPool
{
  public:
    /** @param jobs concurrency (including the caller); 0 picks
     *  hardwareJobs(). */
    explicit WorkPool(unsigned jobs = 0);
    ~WorkPool();

    WorkPool(const WorkPool &) = delete;
    WorkPool &operator=(const WorkPool &) = delete;

    /** Concurrency of the pool, always >= 1. */
    unsigned jobs() const { return njobs; }

    /** std::thread::hardware_concurrency(), never 0. */
    static unsigned hardwareJobs();

    /**
     * Runs task(i) for every i in [0, n), blocking until the batch is
     * complete. The calling thread participates, so jobs() == 1 is a
     * plain serial loop. If a task throws, no *new* indices are
     * claimed (in-flight ones finish), and after the batch settles the
     * exception from the lowest-numbered failed index is rethrown.
     */
    void forEachIndex(std::size_t n,
                      const std::function<void(std::size_t)> &task);

    /**
     * forEachIndex() that collects task(i) into slot i of the result:
     * deterministic in-order collection at any jobs() value.
     */
    template <typename R>
    std::vector<R>
    map(std::size_t n, const std::function<R(std::size_t)> &task)
    {
        std::vector<R> out(n);
        forEachIndex(n, [&](std::size_t i) { out[i] = task(i); });
        return out;
    }

    /**
     * Pipelined mode: hands @p task to the pool and returns
     * immediately; workers run submitted tasks while the caller keeps
     * producing more. With jobs() == 1 the task runs inline right here
     * (the serial reference), with any exception deferred to
     * waitSubmitted() — identical semantics at every jobs() value.
     * Unlike batch mode, an earlier task's failure does not cancel
     * later submissions: submitted tasks are independent and all of
     * them run.
     */
    void submit(std::function<void()> task);

    /**
     * Completes a submission cycle: the caller joins in draining the
     * remaining queue, blocks until every submitted task has finished,
     * and rethrows the exception of the earliest-submitted failed task
     * (if any). Resets the cycle — the pool is reusable afterwards.
     */
    void waitSubmitted();

  private:
    /** One in-flight batch: an indexed queue [0, n) plus completion
     *  and error state, all guarded by mtx. */
    struct Batch
    {
        std::size_t n = 0;
        const std::function<void(std::size_t)> *task = nullptr;
        std::size_t next = 0; //!< next unclaimed index
        std::size_t done = 0; //!< indices finished (ok or thrown)
        unsigned active = 0;  //!< workers currently attached
        std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
    };

    unsigned njobs;
    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable wake; //!< workers: a batch arrived / stop
    std::condition_variable idle; //!< owner: the batch completed
    Batch *batch = nullptr;       //!< current batch (null when idle)
    std::uint64_t generation = 0; //!< bumped when a batch is posted
    bool stopping = false;

    /** Submission-cycle state (pipelined mode), guarded by mtx. */
    std::deque<std::pair<std::size_t, std::function<void()>>> subQ;
    std::size_t subSubmitted = 0; //!< tasks submitted this cycle
    std::size_t subDone = 0;      //!< tasks finished (ok or thrown)
    std::vector<std::pair<std::size_t, std::exception_ptr>> subErrors;

    void workerLoop();

    /** Claims and runs indices until the batch (or its error cutoff)
     *  is exhausted; returns with mtx unlocked. */
    void drainBatch(Batch &b);

    /** Pops and runs one submitted task; false when the queue was
     *  empty. */
    bool runOneSubmitted();
};

/**
 * Long-lived crew of *pinned* workers for round-based execution.
 *
 * The partitioned simulation kernel runs the same set of per-channel
 * event queues once per synchronization window — thousands of short
 * rounds over the same domains. Unlike WorkPool's indexed batches,
 * the domain→thread assignment here is static: domain d always runs
 * on worker d % jobs() (the caller is worker 0), so a domain's event
 * queue is only ever touched by one host thread across all rounds and
 * never migrates. That makes the queues' unsynchronized internals
 * safe without locks, and keeps whatever cache locality the domains
 * have.
 *
 * jobs() == 1 runs every domain inline on the calling thread in
 * domain order: the serial reference. A worker exception is captured
 * and rethrown on the caller after the round settles (lowest domain
 * wins), matching WorkPool semantics.
 */
class PinnedCrew
{
  public:
    /** @param jobs concurrency (including the caller); must be >= 1. */
    explicit PinnedCrew(unsigned jobs);
    ~PinnedCrew();

    PinnedCrew(const PinnedCrew &) = delete;
    PinnedCrew &operator=(const PinnedCrew &) = delete;

    unsigned jobs() const { return njobs; }

    /**
     * Runs task(d) for every domain d in [0, ndomains), blocking until
     * all domains finish. Domain d runs on worker d % jobs().
     */
    void runRound(std::size_t ndomains,
                  const std::function<void(std::size_t)> &task);

  private:
    unsigned njobs;
    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable wake; //!< workers: a round arrived / stop
    std::condition_variable done; //!< owner: all workers finished
    std::uint64_t generation = 0; //!< bumped when a round is posted
    unsigned remaining = 0;       //!< workers still in the round
    std::size_t roundDomains = 0;
    const std::function<void(std::size_t)> *roundTask = nullptr;
    bool stopping = false;
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors;

    void workerLoop(unsigned self);

    /** Runs this worker's share of the round (d = self, self+jobs, ...),
     *  capturing any exception into errors. */
    void runShare(unsigned self, std::size_t ndomains,
                  const std::function<void(std::size_t)> &task);
};

} // namespace cnvm

#endif // CNVM_RUNNER_RUNNER_HH
