/**
 * @file
 * Fixed-size work pool over an indexed task queue.
 *
 * The crash-point sweep's Execute phase runs K independent System
 * instances — one per planned crash point — and the bench harness runs
 * independent per-design probes. Both are embarrassingly parallel, but
 * both must stay byte-identical to their serial reference loops: sweep
 * fingerprints and stats dumps are diffed across runs. The pool
 * therefore hands out *indices* from a shared cursor and callers
 * collect each result into its own slot, so the merged output is in
 * plan order no matter which worker finished first.
 *
 * jobs() == 1 runs every index inline on the calling thread with no
 * worker threads at all: the serial reference path.
 *
 * A pool is reusable — forEachIndex()/map() may be called any number
 * of times — but is single-owner: only one batch may be in flight at a
 * time, driven from one thread.
 */

#ifndef CNVM_RUNNER_RUNNER_HH
#define CNVM_RUNNER_RUNNER_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace cnvm
{

class WorkPool
{
  public:
    /** @param jobs concurrency (including the caller); 0 picks
     *  hardwareJobs(). */
    explicit WorkPool(unsigned jobs = 0);
    ~WorkPool();

    WorkPool(const WorkPool &) = delete;
    WorkPool &operator=(const WorkPool &) = delete;

    /** Concurrency of the pool, always >= 1. */
    unsigned jobs() const { return njobs; }

    /** std::thread::hardware_concurrency(), never 0. */
    static unsigned hardwareJobs();

    /**
     * Runs task(i) for every i in [0, n), blocking until the batch is
     * complete. The calling thread participates, so jobs() == 1 is a
     * plain serial loop. If a task throws, no *new* indices are
     * claimed (in-flight ones finish), and after the batch settles the
     * exception from the lowest-numbered failed index is rethrown.
     */
    void forEachIndex(std::size_t n,
                      const std::function<void(std::size_t)> &task);

    /**
     * forEachIndex() that collects task(i) into slot i of the result:
     * deterministic in-order collection at any jobs() value.
     */
    template <typename R>
    std::vector<R>
    map(std::size_t n, const std::function<R(std::size_t)> &task)
    {
        std::vector<R> out(n);
        forEachIndex(n, [&](std::size_t i) { out[i] = task(i); });
        return out;
    }

  private:
    /** One in-flight batch: an indexed queue [0, n) plus completion
     *  and error state, all guarded by mtx. */
    struct Batch
    {
        std::size_t n = 0;
        const std::function<void(std::size_t)> *task = nullptr;
        std::size_t next = 0; //!< next unclaimed index
        std::size_t done = 0; //!< indices finished (ok or thrown)
        unsigned active = 0;  //!< workers currently attached
        std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
    };

    unsigned njobs;
    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable wake; //!< workers: a batch arrived / stop
    std::condition_variable idle; //!< owner: the batch completed
    Batch *batch = nullptr;       //!< current batch (null when idle)
    std::uint64_t generation = 0; //!< bumped when a batch is posted
    bool stopping = false;

    void workerLoop();

    /** Claims and runs indices until the batch (or its error cutoff)
     *  is exhausted; returns with mtx unlocked. */
    void drainBatch(Batch &b);
};

} // namespace cnvm

#endif // CNVM_RUNNER_RUNNER_HH
