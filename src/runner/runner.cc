#include "runner/runner.hh"

#include <algorithm>

namespace cnvm
{

unsigned
WorkPool::hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

WorkPool::WorkPool(unsigned jobs)
    : njobs(jobs == 0 ? hardwareJobs() : jobs)
{
    // The calling thread participates in every batch, so a pool of N
    // jobs needs N - 1 workers; jobs == 1 spawns none and stays a
    // purely serial inline loop.
    workers.reserve(njobs - 1);
    for (unsigned i = 1; i < njobs; ++i)
        workers.emplace_back([this]() { workerLoop(); });
}

WorkPool::~WorkPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
WorkPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        Batch *b = nullptr;
        {
            std::unique_lock<std::mutex> lock(mtx);
            wake.wait(lock, [&]() {
                return stopping
                    || (batch != nullptr && generation != seen)
                    || !subQ.empty();
            });
            if (stopping)
                return;
            if (batch != nullptr && generation != seen) {
                seen = generation;
                b = batch;
                // Attach before unlocking: the owner must not retire
                // the batch (a stack object of forEachIndex) while any
                // worker still holds a pointer to it.
                ++b->active;
            }
        }
        if (b != nullptr) {
            drainBatch(*b);
            std::lock_guard<std::mutex> lock(mtx);
            if (--b->active == 0)
                idle.notify_all();
        } else {
            // Woken for a submitted task; another worker may have
            // beaten us to it, in which case this is a no-op and we
            // go back to sleep.
            runOneSubmitted();
        }
    }
}

bool
WorkPool::runOneSubmitted()
{
    std::pair<std::size_t, std::function<void()>> item;
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (subQ.empty())
            return false;
        item = std::move(subQ.front());
        subQ.pop_front();
    }
    std::exception_ptr err;
    try {
        item.second();
    } catch (...) {
        err = std::current_exception();
    }
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (err)
            subErrors.emplace_back(item.first, err);
        // subSubmitted may still grow (the owner keeps producing);
        // waitSubmitted() re-checks the predicate on every wakeup.
        if (++subDone == subSubmitted)
            idle.notify_all();
    }
    return true;
}

void
WorkPool::submit(std::function<void()> task)
{
    if (njobs == 1) {
        // Serial reference: run inline, defer any error so that the
        // caller sees identical semantics at every jobs() value.
        std::size_t index = subSubmitted++;
        try {
            task();
        } catch (...) {
            subErrors.emplace_back(index, std::current_exception());
        }
        ++subDone;
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mtx);
        subQ.emplace_back(subSubmitted++, std::move(task));
    }
    wake.notify_one();
}

void
WorkPool::waitSubmitted()
{
    // The owner joins the drain: with every worker busy on earlier
    // tasks, the queue tail would otherwise wait for a free worker.
    while (runOneSubmitted()) {
    }

    std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
    {
        std::unique_lock<std::mutex> lock(mtx);
        idle.wait(lock, [&]() { return subDone == subSubmitted; });
        errors.swap(subErrors);
        subSubmitted = 0;
        subDone = 0;
    }

    if (!errors.empty()) {
        auto lowest = std::min_element(
            errors.begin(), errors.end(),
            [](const auto &a, const auto &c) { return a.first < c.first; });
        std::rethrow_exception(lowest->second);
    }
}

void
WorkPool::drainBatch(Batch &b)
{
    for (;;) {
        std::size_t i;
        {
            std::lock_guard<std::mutex> lock(mtx);
            // A thrown task stops the claim cursor: the batch settles
            // with in-flight work only, and the error is rethrown by
            // the owner once everyone is done.
            if (!b.errors.empty() || b.next >= b.n)
                return;
            i = b.next++;
        }
        std::exception_ptr err;
        try {
            (*b.task)(i);
        } catch (...) {
            err = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (err)
                b.errors.emplace_back(i, err);
            // A transient done == next mid-batch notifies the owner
            // while it is still claiming; the extra wakeup is benign
            // because the owner re-checks the predicate.
            if (++b.done == b.next)
                idle.notify_all();
        }
    }
}

PinnedCrew::PinnedCrew(unsigned jobs)
    : njobs(jobs == 0 ? 1 : jobs)
{
    workers.reserve(njobs - 1);
    for (unsigned i = 1; i < njobs; ++i)
        workers.emplace_back([this, i]() { workerLoop(i); });
}

PinnedCrew::~PinnedCrew()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
PinnedCrew::runShare(unsigned self, std::size_t ndomains,
                     const std::function<void(std::size_t)> &task)
{
    for (std::size_t d = self; d < ndomains; d += njobs) {
        try {
            task(d);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mtx);
            errors.emplace_back(d, std::current_exception());
        }
    }
}

void
PinnedCrew::workerLoop(unsigned self)
{
    std::uint64_t seen = 0;
    for (;;) {
        std::size_t n;
        const std::function<void(std::size_t)> *task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            wake.wait(lock,
                      [&]() { return stopping || generation != seen; });
            if (stopping)
                return;
            seen = generation;
            n = roundDomains;
            task = roundTask;
        }
        runShare(self, n, *task);
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (--remaining == 0)
                done.notify_all();
        }
    }
}

void
PinnedCrew::runRound(std::size_t ndomains,
                     const std::function<void(std::size_t)> &task)
{
    if (njobs == 1 || ndomains <= 1) {
        // Serial reference: domain order on this thread; the first
        // throw is necessarily the lowest failed domain.
        for (std::size_t d = 0; d < ndomains; ++d)
            task(d);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mtx);
        roundDomains = ndomains;
        roundTask = &task;
        remaining = njobs - 1;
        ++generation;
    }
    wake.notify_all();

    // The caller is pinned worker 0.
    runShare(0, ndomains, task);

    std::vector<std::pair<std::size_t, std::exception_ptr>> errs;
    {
        std::unique_lock<std::mutex> lock(mtx);
        done.wait(lock, [&]() { return remaining == 0; });
        roundTask = nullptr;
        errs.swap(errors);
    }

    if (!errs.empty()) {
        auto lowest = std::min_element(
            errs.begin(), errs.end(),
            [](const auto &a, const auto &c) { return a.first < c.first; });
        std::rethrow_exception(lowest->second);
    }
}

void
WorkPool::forEachIndex(std::size_t n,
                       const std::function<void(std::size_t)> &task)
{
    if (n == 0)
        return;

    Batch b;
    b.n = n;
    b.task = &task;

    if (njobs == 1 || n == 1) {
        // Serial reference path: run in index order on this thread.
        // The first throw propagates directly — it is necessarily the
        // lowest failed index, matching the parallel semantics.
        for (std::size_t i = 0; i < n; ++i)
            task(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mtx);
        batch = &b;
        ++generation;
    }
    wake.notify_all();

    // The owner claims indices too, then waits for stragglers — both
    // for every claimed index to finish and for every attached worker
    // to drop its pointer to this stack frame's batch.
    drainBatch(b);
    {
        std::unique_lock<std::mutex> lock(mtx);
        idle.wait(lock,
                  [&]() { return b.done == b.next && b.active == 0; });
        batch = nullptr;
    }

    if (!b.errors.empty()) {
        auto lowest = std::min_element(
            b.errors.begin(), b.errors.end(),
            [](const auto &a, const auto &c) { return a.first < c.first; });
        std::rethrow_exception(lowest->second);
    }
}

} // namespace cnvm
