#include "runner/runner.hh"

#include <algorithm>

namespace cnvm
{

unsigned
WorkPool::hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

WorkPool::WorkPool(unsigned jobs)
    : njobs(jobs == 0 ? hardwareJobs() : jobs)
{
    // The calling thread participates in every batch, so a pool of N
    // jobs needs N - 1 workers; jobs == 1 spawns none and stays a
    // purely serial inline loop.
    workers.reserve(njobs - 1);
    for (unsigned i = 1; i < njobs; ++i)
        workers.emplace_back([this]() { workerLoop(); });
}

WorkPool::~WorkPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
WorkPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        Batch *b = nullptr;
        {
            std::unique_lock<std::mutex> lock(mtx);
            wake.wait(lock, [&]() {
                return stopping || (batch != nullptr && generation != seen);
            });
            if (stopping)
                return;
            seen = generation;
            b = batch;
            // Attach before unlocking: the owner must not retire the
            // batch (a stack object of forEachIndex) while any worker
            // still holds a pointer to it.
            ++b->active;
        }
        drainBatch(*b);
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (--b->active == 0)
                idle.notify_all();
        }
    }
}

void
WorkPool::drainBatch(Batch &b)
{
    for (;;) {
        std::size_t i;
        {
            std::lock_guard<std::mutex> lock(mtx);
            // A thrown task stops the claim cursor: the batch settles
            // with in-flight work only, and the error is rethrown by
            // the owner once everyone is done.
            if (!b.errors.empty() || b.next >= b.n)
                return;
            i = b.next++;
        }
        std::exception_ptr err;
        try {
            (*b.task)(i);
        } catch (...) {
            err = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (err)
                b.errors.emplace_back(i, err);
            // A transient done == next mid-batch notifies the owner
            // while it is still claiming; the extra wakeup is benign
            // because the owner re-checks the predicate.
            if (++b.done == b.next)
                idle.notify_all();
        }
    }
}

void
WorkPool::forEachIndex(std::size_t n,
                       const std::function<void(std::size_t)> &task)
{
    if (n == 0)
        return;

    Batch b;
    b.n = n;
    b.task = &task;

    if (njobs == 1 || n == 1) {
        // Serial reference path: run in index order on this thread.
        // The first throw propagates directly — it is necessarily the
        // lowest failed index, matching the parallel semantics.
        for (std::size_t i = 0; i < n; ++i)
            task(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mtx);
        batch = &b;
        ++generation;
    }
    wake.notify_all();

    // The owner claims indices too, then waits for stragglers — both
    // for every claimed index to finish and for every attached worker
    // to drop its pointer to this stack frame's batch.
    drainBatch(b);
    {
        std::unique_lock<std::mutex> lock(mtx);
        idle.wait(lock,
                  [&]() { return b.done == b.next && b.active == 0; });
        batch = nullptr;
    }

    if (!b.errors.empty()) {
        auto lowest = std::min_element(
            b.errors.begin(), b.errors.end(),
            [](const auto &a, const auto &c) { return a.first < c.first; });
        std::rethrow_exception(lowest->second);
    }
}

} // namespace cnvm
