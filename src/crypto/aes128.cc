#include "crypto/aes128.hh"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define CNVM_AES_NI_POSSIBLE 1
#include <immintrin.h>
#endif

namespace cnvm::crypto
{

namespace
{

/** The AES S-box (FIPS-197 Figure 7). */
const std::uint8_t sbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
    0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc,
    0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a,
    0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85,
    0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17,
    0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88,
    0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9,
    0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6,
    0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94,
    0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68,
    0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
};

/** Round constants for key expansion. */
const std::uint8_t rcon[10] = {
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36,
};

/** Multiplication by x in GF(2^8) with the AES polynomial. */
inline std::uint8_t
xtime(std::uint8_t v)
{
    return static_cast<std::uint8_t>((v << 1) ^ ((v >> 7) * 0x1b));
}

#ifdef CNVM_AES_NI_POSSIBLE

/**
 * One full AES-128 encryption with the AESENC instructions. The state
 * bytes load in memory order, which is exactly the FIPS-197 column-
 * major state layout, so the result is bit-identical to the portable
 * path. Compiled with a target attribute so the translation unit
 * itself needs no -maes; the caller guards on cpuid.
 */
__attribute__((target("aes,sse2"))) inline __m128i
encryptStateNi(const std::uint8_t *rk, __m128i s)
{
    s = _mm_xor_si128(
        s, _mm_loadu_si128(reinterpret_cast<const __m128i *>(rk)));
    for (unsigned r = 1; r < Aes128::rounds; ++r) {
        s = _mm_aesenc_si128(
            s, _mm_loadu_si128(
                   reinterpret_cast<const __m128i *>(rk + 16 * r)));
    }
    return _mm_aesenclast_si128(
        s, _mm_loadu_si128(reinterpret_cast<const __m128i *>(
               rk + 16 * Aes128::rounds)));
}

__attribute__((target("aes,sse2"))) void
encryptBlockNi(const std::uint8_t *rk, const std::uint8_t in[16],
               std::uint8_t out[16])
{
    __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i *>(in));
    s = encryptStateNi(rk, s);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out), s);
}

/** Four independent blocks interleaved to hide the aesenc latency. */
__attribute__((target("aes,sse2"))) void
encryptBlocks4Ni(const std::uint8_t *rk, const std::uint8_t in[64],
                 std::uint8_t out[64])
{
    const __m128i *src = reinterpret_cast<const __m128i *>(in);
    __m128i s0 = _mm_loadu_si128(src + 0);
    __m128i s1 = _mm_loadu_si128(src + 1);
    __m128i s2 = _mm_loadu_si128(src + 2);
    __m128i s3 = _mm_loadu_si128(src + 3);

    __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i *>(rk));
    s0 = _mm_xor_si128(s0, k);
    s1 = _mm_xor_si128(s1, k);
    s2 = _mm_xor_si128(s2, k);
    s3 = _mm_xor_si128(s3, k);
    for (unsigned r = 1; r < Aes128::rounds; ++r) {
        k = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(rk + 16 * r));
        s0 = _mm_aesenc_si128(s0, k);
        s1 = _mm_aesenc_si128(s1, k);
        s2 = _mm_aesenc_si128(s2, k);
        s3 = _mm_aesenc_si128(s3, k);
    }
    k = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(rk + 16 * Aes128::rounds));
    s0 = _mm_aesenclast_si128(s0, k);
    s1 = _mm_aesenclast_si128(s1, k);
    s2 = _mm_aesenclast_si128(s2, k);
    s3 = _mm_aesenclast_si128(s3, k);

    __m128i *dst = reinterpret_cast<__m128i *>(out);
    _mm_storeu_si128(dst + 0, s0);
    _mm_storeu_si128(dst + 1, s1);
    _mm_storeu_si128(dst + 2, s2);
    _mm_storeu_si128(dst + 3, s3);
}

/**
 * Runtime backend choice, probed exactly once. The magic static makes
 * the CPUID probe init-once and thread-safe no matter which thread
 * encrypts first (the parallel crash sweep constructs Systems — and
 * hence ciphers — on pool workers) and independent of static
 * initialization order across translation units.
 */
bool
haveAesNi()
{
    static const bool have =
        __builtin_cpu_supports("aes") && __builtin_cpu_supports("sse2");
    return have;
}

#endif // CNVM_AES_NI_POSSIBLE

} // anonymous namespace

bool
Aes128::usingHardwareAes()
{
#ifdef CNVM_AES_NI_POSSIBLE
    return haveAesNi();
#else
    return false;
#endif
}

Aes128::Aes128()
{
    const std::uint8_t zero[keyBytes] = {};
    expandKey(zero);
}

Aes128::Aes128(const std::uint8_t key[keyBytes])
{
    expandKey(key);
}

void
Aes128::setKey(const std::uint8_t key[keyBytes])
{
    expandKey(key);
}

void
Aes128::expandKey(const std::uint8_t key[keyBytes])
{
    std::memcpy(roundKeys.data(), key, keyBytes);

    // Each iteration derives one 4-byte word from the previous ones
    // (FIPS-197 section 5.2).
    for (unsigned i = 4; i < 4 * (rounds + 1); ++i) {
        std::uint8_t temp[4];
        std::memcpy(temp, &roundKeys[(i - 1) * 4], 4);

        if (i % 4 == 0) {
            // RotWord + SubWord + Rcon.
            std::uint8_t t0 = temp[0];
            temp[0] = static_cast<std::uint8_t>(
                sbox[temp[1]] ^ rcon[i / 4 - 1]);
            temp[1] = sbox[temp[2]];
            temp[2] = sbox[temp[3]];
            temp[3] = sbox[t0];
        }

        for (unsigned b = 0; b < 4; ++b) {
            roundKeys[i * 4 + b] =
                static_cast<std::uint8_t>(roundKeys[(i - 4) * 4 + b] ^
                                          temp[b]);
        }
    }
}

void
Aes128::encryptBlock(const std::uint8_t in[blockBytes],
                     std::uint8_t out[blockBytes]) const
{
#ifdef CNVM_AES_NI_POSSIBLE
    if (haveAesNi()) {
        encryptBlockNi(roundKeys.data(), in, out);
        return;
    }
#endif
    encryptBlockPortable(in, out);
}

void
Aes128::encryptBlocks4(const std::uint8_t in[4 * blockBytes],
                       std::uint8_t out[4 * blockBytes]) const
{
#ifdef CNVM_AES_NI_POSSIBLE
    if (haveAesNi()) {
        encryptBlocks4Ni(roundKeys.data(), in, out);
        return;
    }
#endif
    for (unsigned b = 0; b < 4; ++b)
        encryptBlockPortable(in + b * blockBytes, out + b * blockBytes);
}

void
Aes128::encryptBlockPortable(const std::uint8_t in[blockBytes],
                             std::uint8_t out[blockBytes]) const
{
    // State is column-major per FIPS-197; a flat byte array with the
    // standard index mapping state[r + 4c] = in[r + 4c] works because we
    // apply ShiftRows by explicit index shuffles.
    std::uint8_t state[blockBytes];
    for (unsigned i = 0; i < blockBytes; ++i)
        state[i] = static_cast<std::uint8_t>(in[i] ^ roundKeys[i]);

    for (unsigned round = 1; round <= rounds; ++round) {
        // SubBytes.
        for (auto &byte : state)
            byte = sbox[byte];

        // ShiftRows: row r rotates left by r. With column-major layout,
        // row r occupies indices {r, r+4, r+8, r+12}.
        std::uint8_t t = state[1];
        state[1] = state[5];
        state[5] = state[9];
        state[9] = state[13];
        state[13] = t;

        std::swap(state[2], state[10]);
        std::swap(state[6], state[14]);

        t = state[15];
        state[15] = state[11];
        state[11] = state[7];
        state[7] = state[3];
        state[3] = t;

        // MixColumns (skipped in the final round).
        if (round != rounds) {
            for (unsigned c = 0; c < 4; ++c) {
                std::uint8_t *col = &state[4 * c];
                std::uint8_t a0 = col[0], a1 = col[1];
                std::uint8_t a2 = col[2], a3 = col[3];
                std::uint8_t all = static_cast<std::uint8_t>(
                    a0 ^ a1 ^ a2 ^ a3);
                col[0] ^= static_cast<std::uint8_t>(
                    all ^ xtime(static_cast<std::uint8_t>(a0 ^ a1)));
                col[1] ^= static_cast<std::uint8_t>(
                    all ^ xtime(static_cast<std::uint8_t>(a1 ^ a2)));
                col[2] ^= static_cast<std::uint8_t>(
                    all ^ xtime(static_cast<std::uint8_t>(a2 ^ a3)));
                col[3] ^= static_cast<std::uint8_t>(
                    all ^ xtime(static_cast<std::uint8_t>(a3 ^ a0)));
            }
        }

        // AddRoundKey.
        for (unsigned i = 0; i < blockBytes; ++i)
            state[i] ^= roundKeys[round * blockBytes + i];
    }

    std::memcpy(out, state, blockBytes);
}

} // namespace cnvm::crypto
