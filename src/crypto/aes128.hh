/**
 * @file
 * AES-128 block cipher (FIPS-197), encryption direction only.
 *
 * Counter-mode encryption never decrypts with the block cipher — both
 * directions XOR the same one-time pad — so only the forward cipher is
 * implemented. Two backends produce bit-identical output: a portable
 * byte-oriented implementation, and an AES-NI path selected at runtime
 * when the host CPU supports it. The simulator models the engine's
 * 40 ns latency separately, so cipher throughput here only affects
 * host-side simulation speed — but it dominates the host profile, since
 * every simulated line store and fill runs through the pad.
 */

#ifndef CNVM_CRYPTO_AES128_HH
#define CNVM_CRYPTO_AES128_HH

#include <array>
#include <cstdint>

namespace cnvm::crypto
{

/** AES-128: 128-bit key, 128-bit block, 10 rounds. */
class Aes128
{
  public:
    static constexpr unsigned blockBytes = 16;
    static constexpr unsigned keyBytes = 16;
    static constexpr unsigned rounds = 10;

    /** Constructs with the all-zero key (still a valid cipher). */
    Aes128();

    /** Constructs and expands the given 16-byte key. */
    explicit Aes128(const std::uint8_t key[keyBytes]);

    /** Replaces the key and recomputes the key schedule. */
    void setKey(const std::uint8_t key[keyBytes]);

    /** Encrypts one 16-byte block; @p in and @p out may alias. */
    void encryptBlock(const std::uint8_t in[blockBytes],
                      std::uint8_t out[blockBytes]) const;

    /**
     * Encrypts four independent 16-byte blocks; @p in and @p out may
     * alias. On the AES-NI backend the four blocks run through the
     * cipher pipeline together, hiding the aesenc latency — this is the
     * shape of a one-time-pad generation for a 64-byte line.
     */
    void encryptBlocks4(const std::uint8_t in[4 * blockBytes],
                        std::uint8_t out[4 * blockBytes]) const;

    /**
     * The portable byte-oriented cipher, always available regardless of
     * backend selection. Exposed so tests can cross-check the
     * accelerated path against it.
     */
    void encryptBlockPortable(const std::uint8_t in[blockBytes],
                              std::uint8_t out[blockBytes]) const;

    /** True when encryptBlock dispatches to the AES-NI backend. */
    static bool usingHardwareAes();

  private:
    /** Expanded key schedule: (rounds + 1) 16-byte round keys. */
    std::array<std::uint8_t, (rounds + 1) * blockBytes> roundKeys;

    void expandKey(const std::uint8_t key[keyBytes]);
};

} // namespace cnvm::crypto

#endif // CNVM_CRYPTO_AES128_HH
