/**
 * @file
 * AES-128 block cipher (FIPS-197), encryption direction only.
 *
 * Counter-mode encryption never decrypts with the block cipher — both
 * directions XOR the same one-time pad — so only the forward cipher is
 * implemented. This is a straightforward byte-oriented implementation;
 * the simulator models the engine's 40 ns latency separately, so cipher
 * throughput here only affects host-side simulation speed.
 */

#ifndef CNVM_CRYPTO_AES128_HH
#define CNVM_CRYPTO_AES128_HH

#include <array>
#include <cstdint>

namespace cnvm::crypto
{

/** AES-128: 128-bit key, 128-bit block, 10 rounds. */
class Aes128
{
  public:
    static constexpr unsigned blockBytes = 16;
    static constexpr unsigned keyBytes = 16;
    static constexpr unsigned rounds = 10;

    /** Constructs with the all-zero key (still a valid cipher). */
    Aes128();

    /** Constructs and expands the given 16-byte key. */
    explicit Aes128(const std::uint8_t key[keyBytes]);

    /** Replaces the key and recomputes the key schedule. */
    void setKey(const std::uint8_t key[keyBytes]);

    /** Encrypts one 16-byte block; @p in and @p out may alias. */
    void encryptBlock(const std::uint8_t in[blockBytes],
                      std::uint8_t out[blockBytes]) const;

  private:
    /** Expanded key schedule: (rounds + 1) 16-byte round keys. */
    std::array<std::uint8_t, (rounds + 1) * blockBytes> roundKeys;

    void expandKey(const std::uint8_t key[keyBytes]);
};

} // namespace cnvm::crypto

#endif // CNVM_CRYPTO_AES128_HH
