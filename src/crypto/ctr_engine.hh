/**
 * @file
 * Counter-mode (CTR) encryption engine for 64-byte cache lines.
 *
 * Implements the paper's equations 1-3:
 *
 *   OTP                = En(address | counter, key)           (1)
 *   EncryptedCacheLine = OTP xor plaintext                    (2)
 *   plaintext          = OTP xor EncryptedCacheLine           (3)
 *
 * A 64 B line spans four AES blocks, so the pad for block i is generated
 * from the tweak (line_address + 16 * i, counter). Encryption and
 * decryption are the same XOR; decrypting with a counter that does not
 * match the one used to encrypt yields uncorrelated garbage, which is how
 * the recovery checks detect counter-atomicity violations (equation 4).
 */

#ifndef CNVM_CRYPTO_CTR_ENGINE_HH
#define CNVM_CRYPTO_CTR_ENGINE_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "crypto/aes128.hh"

namespace cnvm::crypto
{

/** Counter-mode engine bound to one AES key. */
class CtrEngine
{
  public:
    /** Constructs with the all-zero key. */
    CtrEngine() = default;

    /** Constructs with a specific 16-byte key. */
    explicit CtrEngine(const std::uint8_t key[Aes128::keyBytes])
        : cipher(key)
    {}

    /** Replaces the key. */
    void setKey(const std::uint8_t key[Aes128::keyBytes])
    { cipher.setKey(key); }

    /**
     * Generates the 64-byte one-time pad for (line address, counter).
     *
     * @param addr    line-aligned physical address
     * @param counter per-line write counter value
     */
    LineData makePad(Addr addr, std::uint64_t counter) const;

    /** Equation 2: ciphertext = pad(addr, counter) xor plaintext. */
    LineData encrypt(Addr addr, std::uint64_t counter,
                     const LineData &plaintext) const;

    /** Equation 3: plaintext = pad(addr, counter) xor ciphertext. */
    LineData decrypt(Addr addr, std::uint64_t counter,
                     const LineData &ciphertext) const;

    /**
     * Truncated keyed integrity MAC binding (address, counter,
     * ciphertext) — the per-line metadata the hardened recovery path
     * verifies before trusting a decryption. 56 bits: the tag lives in
     * the line's ECC spare bits, and one byte of spare capacity stays
     * reserved for the ECC code itself.
     *
     * Construction: the ciphertext is compressed to 64 bits, then
     * bound to the address and counter through two chained AES
     * invocations under the engine key. Deterministic, keyed, and
     * sensitive to every input bit — which is what the simulator
     * needs; it does not claim production-MAC security margins.
     */
    std::uint64_t lineMac(Addr addr, std::uint64_t counter,
                          const LineData &ciphertext) const;

  private:
    Aes128 cipher;
};

} // namespace cnvm::crypto

#endif // CNVM_CRYPTO_CTR_ENGINE_HH
