#include "crypto/ctr_engine.hh"

#include "common/logging.hh"

namespace cnvm::crypto
{

LineData
CtrEngine::makePad(Addr addr, std::uint64_t counter) const
{
    cnvm_assert(isLineAligned(addr));

    LineData pad;
    for (unsigned block = 0; block < lineBytes / Aes128::blockBytes;
         ++block) {
        // Tweak block: little-endian (address of this 16 B sub-block,
        // per-line write counter).
        std::uint8_t input[Aes128::blockBytes];
        std::uint64_t tweak_addr = addr + block * Aes128::blockBytes;
        for (unsigned i = 0; i < 8; ++i) {
            input[i] = static_cast<std::uint8_t>(tweak_addr >> (8 * i));
            input[8 + i] = static_cast<std::uint8_t>(counter >> (8 * i));
        }
        cipher.encryptBlock(input, &pad[block * Aes128::blockBytes]);
    }
    return pad;
}

LineData
CtrEngine::encrypt(Addr addr, std::uint64_t counter,
                   const LineData &plaintext) const
{
    LineData out = makePad(addr, counter);
    for (unsigned i = 0; i < lineBytes; ++i)
        out[i] ^= plaintext[i];
    return out;
}

LineData
CtrEngine::decrypt(Addr addr, std::uint64_t counter,
                   const LineData &ciphertext) const
{
    // XOR with the same pad; identical to encrypt by construction.
    return encrypt(addr, counter, ciphertext);
}

} // namespace cnvm::crypto
