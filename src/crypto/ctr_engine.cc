#include "crypto/ctr_engine.hh"

#include "common/logging.hh"

namespace cnvm::crypto
{

LineData
CtrEngine::makePad(Addr addr, std::uint64_t counter) const
{
    cnvm_assert(isLineAligned(addr));

    static_assert(lineBytes == 4 * Aes128::blockBytes,
                  "pad generation assumes a four-block line");

    // Tweak blocks: little-endian (address of each 16 B sub-block,
    // per-line write counter). All four run through the cipher together
    // so the hardware path can pipeline them.
    LineData input;
    for (unsigned block = 0; block < lineBytes / Aes128::blockBytes;
         ++block) {
        std::uint8_t *tweak = &input[block * Aes128::blockBytes];
        std::uint64_t tweak_addr = addr + block * Aes128::blockBytes;
        for (unsigned i = 0; i < 8; ++i) {
            tweak[i] = static_cast<std::uint8_t>(tweak_addr >> (8 * i));
            tweak[8 + i] = static_cast<std::uint8_t>(counter >> (8 * i));
        }
    }
    LineData pad;
    cipher.encryptBlocks4(input.data(), pad.data());
    return pad;
}

LineData
CtrEngine::encrypt(Addr addr, std::uint64_t counter,
                   const LineData &plaintext) const
{
    LineData out = makePad(addr, counter);
    for (unsigned i = 0; i < lineBytes; ++i)
        out[i] ^= plaintext[i];
    return out;
}

LineData
CtrEngine::decrypt(Addr addr, std::uint64_t counter,
                   const LineData &ciphertext) const
{
    // XOR with the same pad; identical to encrypt by construction.
    return encrypt(addr, counter, ciphertext);
}

} // namespace cnvm::crypto
