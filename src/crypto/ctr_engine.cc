#include "crypto/ctr_engine.hh"

#include "common/logging.hh"

namespace cnvm::crypto
{

LineData
CtrEngine::makePad(Addr addr, std::uint64_t counter) const
{
    cnvm_assert(isLineAligned(addr));

    static_assert(lineBytes == 4 * Aes128::blockBytes,
                  "pad generation assumes a four-block line");

    // Tweak blocks: little-endian (address of each 16 B sub-block,
    // per-line write counter). All four run through the cipher together
    // so the hardware path can pipeline them.
    LineData input;
    for (unsigned block = 0; block < lineBytes / Aes128::blockBytes;
         ++block) {
        std::uint8_t *tweak = &input[block * Aes128::blockBytes];
        std::uint64_t tweak_addr = addr + block * Aes128::blockBytes;
        for (unsigned i = 0; i < 8; ++i) {
            tweak[i] = static_cast<std::uint8_t>(tweak_addr >> (8 * i));
            tweak[8 + i] = static_cast<std::uint8_t>(counter >> (8 * i));
        }
    }
    LineData pad;
    cipher.encryptBlocks4(input.data(), pad.data());
    return pad;
}

LineData
CtrEngine::encrypt(Addr addr, std::uint64_t counter,
                   const LineData &plaintext) const
{
    LineData out = makePad(addr, counter);
    for (unsigned i = 0; i < lineBytes; ++i)
        out[i] ^= plaintext[i];
    return out;
}

LineData
CtrEngine::decrypt(Addr addr, std::uint64_t counter,
                   const LineData &ciphertext) const
{
    // XOR with the same pad; identical to encrypt by construction.
    return encrypt(addr, counter, ciphertext);
}

std::uint64_t
CtrEngine::lineMac(Addr addr, std::uint64_t counter,
                   const LineData &ciphertext) const
{
    cnvm_assert(isLineAligned(addr));

    // Compress the 64 B ciphertext to one word, then chain two AES
    // blocks over (addr | digest) and (counter | chain), so every
    // input bit diffuses through the keyed permutation.
    std::uint64_t digest = 0;
    for (unsigned i = 0; i < lineBytes; ++i) {
        digest ^= ciphertext[i];
        digest *= 0x100000001b3ull; // FNV-1a fold over the line
    }

    std::uint8_t block[Aes128::blockBytes];
    for (unsigned i = 0; i < 8; ++i) {
        block[i] = static_cast<std::uint8_t>(addr >> (8 * i));
        block[8 + i] = static_cast<std::uint8_t>(digest >> (8 * i));
    }
    cipher.encryptBlock(block, block);
    for (unsigned i = 0; i < 8; ++i)
        block[i] ^= static_cast<std::uint8_t>(counter >> (8 * i));
    cipher.encryptBlock(block, block);

    std::uint64_t tag = 0;
    for (unsigned i = 0; i < 8; ++i)
        tag |= static_cast<std::uint64_t>(block[i]) << (8 * i);
    return tag & 0x00ffffffffffffffull; // 56-bit truncation
}

} // namespace cnvm::crypto
