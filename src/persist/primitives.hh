/**
 * @file
 * The selective counter-atomicity programming interface
 * (paper section 4.3).
 *
 * The paper extends Intel's persistency support with two primitives:
 *
 *  - CounterAtomic variables: any variable whose update immediately
 *    affects the recoverability of the underlying structure must be
 *    annotated; the hardware then writes the encrypted value and its
 *    counter back atomically (the ready-bit pairing in the memory
 *    controller).
 *
 *  - counter_cache_writeback(): writes the dirty counters covering a
 *    given address back to NVMM on demand, so that deferred counter
 *    updates persist before the point in the program where they start
 *    affecting recoverability (typically just before a persist
 *    barrier).
 *
 * In this trace-driven simulator, "programs" are operation streams, so
 * the primitives surface as Op constructors plus the helpers below.
 * UndoTx (txn/undo_log.hh) is the expert-crafted library the paper
 * anticipates: it places the annotations and writebacks so that regular
 * code never touches these primitives directly.
 */

#ifndef CNVM_PERSIST_PRIMITIVES_HH
#define CNVM_PERSIST_PRIMITIVES_HH

#include <set>
#include <vector>

#include "cpu/op.hh"

namespace cnvm::persist
{

/**
 * A store to a CounterAtomic variable: the value and its encryption
 * counter must persist atomically.
 */
inline Op
counterAtomicStore(Addr addr, const void *data, unsigned size)
{
    return Op::store(addr, data, size, /*ca=*/true);
}

/** counter_cache_writeback() for the counter line covering @p addr. */
inline Op
counterCacheWriteback(Addr addr)
{
    return Op::ctrwb(addr);
}

/**
 * persist_barrier (paper Figure 9): clwb for every given line, then an
 * sfence that retires only when all of them are accepted into the ADR
 * persistence domain.
 */
inline void
persistBarrier(std::vector<Op> &out, const std::vector<Addr> &lines)
{
    for (Addr a : lines)
        out.push_back(Op::clwb(a));
    out.push_back(Op::fence());
}

/**
 * The selective-counter-atomicity barrier: clwb for every line,
 * counter_cache_writeback() for each distinct covering counter line,
 * then the fence. This is the sequence the prepare and mutate stages of
 * an undo-logging transaction use (paper Figure 9, lines 9-15).
 */
inline void
selectiveBarrier(std::vector<Op> &out, const std::vector<Addr> &lines)
{
    for (Addr a : lines)
        out.push_back(Op::clwb(a));
    std::set<Addr> groups;
    for (Addr a : lines) {
        Addr group = (a / lineBytes) / countersPerLine;
        if (groups.insert(group).second)
            out.push_back(Op::ctrwb(a));
    }
    out.push_back(Op::fence());
}

} // namespace cnvm::persist

#endif // CNVM_PERSIST_PRIMITIVES_HH
