/**
 * @file
 * The evaluated design points (paper section 6.1).
 */

#ifndef CNVM_MEMCTL_DESIGN_HH
#define CNVM_MEMCTL_DESIGN_HH

#include <array>
#include <cctype>
#include <optional>
#include <string>

namespace cnvm
{

/**
 * Memory-system design points evaluated by the paper, plus an extra
 * negative control (Unsafe) used to demonstrate the Figure-4
 * inconsistency.
 */
enum class DesignPoint
{
    /** Plaintext NVMM; no counters, no encryption engine. */
    NoEncryption,

    /**
     * Counter-mode encryption whose counter persistence is free: no
     * counter write traffic, no atomicity stalls, yet always crash
     * consistent. Upper bound (paper "Ideal").
     */
    Ideal,

    /**
     * Data and counter co-located in a 72 B line over a 72-bit bus; no
     * counter cache, so decryption is serialized after every read
     * (paper section 3.2.1, Figure 5a).
     */
    Colocated,

    /**
     * Co-located design plus a counter cache, so decryption overlaps
     * the read on a counter hit (paper Figure 5b).
     */
    ColocatedCC,

    /**
     * Full counter-atomicity: separate counter address space on the
     * stock 64-bit bus; every write pairs a data and a counter-line
     * write via the ready-bit protocol, and the write queues drain
     * strictly in order (paper section 3.2.2).
     */
    FCA,

    /**
     * Selective counter-atomicity (the proposal): only
     * CounterAtomic-annotated writes pair; all other counter updates
     * stay dirty in the counter cache until counter_cache_writeback()
     * or eviction (paper section 4).
     */
    SCA,

    /**
     * Counter-mode encryption with no counter-atomicity at all:
     * annotations ignored. Crash-unsafe by construction; recovers
     * inconsistently when a counter-atomic window is torn.
     */
    Unsafe,
};

/** Short display name, matching the paper's figure legends. */
inline const char *
designName(DesignPoint d)
{
    switch (d) {
      case DesignPoint::NoEncryption: return "NoEncryption";
      case DesignPoint::Ideal: return "Ideal";
      case DesignPoint::Colocated: return "Co-located";
      case DesignPoint::ColocatedCC: return "Co-located w/ C-Cache";
      case DesignPoint::FCA: return "FCA";
      case DesignPoint::SCA: return "SCA";
      case DesignPoint::Unsafe: return "Unsafe";
    }
    return "?";
}

/** Every design point, in evaluation order. */
inline std::array<DesignPoint, 7>
allDesignPoints()
{
    return {DesignPoint::NoEncryption, DesignPoint::Ideal,
            DesignPoint::Colocated, DesignPoint::ColocatedCC,
            DesignPoint::FCA, DesignPoint::SCA, DesignPoint::Unsafe};
}

/**
 * Parses a design name as the CLI tools accept it: the canonical
 * designName() (case-insensitively) or the short aliases
 * NoEnc / Colocated / ColocatedCC.
 */
inline std::optional<DesignPoint>
designFromName(const std::string &name)
{
    auto fold = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '-' || c == '/' || c == ' ' || c == '.')
                continue;
            out.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
        }
        return out;
    };
    std::string want = fold(name);
    for (DesignPoint d : allDesignPoints()) {
        if (want == fold(designName(d)))
            return d;
    }
    if (want == "noenc")
        return DesignPoint::NoEncryption;
    if (want == "colocated")
        return DesignPoint::Colocated;
    if (want == "colocatedcc" || want == "colocatedwccache")
        return DesignPoint::ColocatedCC;
    return std::nullopt;
}

/** True for designs that encrypt memory at all. */
inline bool
designEncrypts(DesignPoint d)
{
    return d != DesignPoint::NoEncryption;
}

/** True for designs that keep counters in a separate address space. */
inline bool
designSeparateCounters(DesignPoint d)
{
    switch (d) {
      case DesignPoint::Ideal:
      case DesignPoint::FCA:
      case DesignPoint::SCA:
      case DesignPoint::Unsafe:
        return true;
      default:
        return false;
    }
}

/** True for designs with an on-chip counter cache. */
inline bool
designHasCounterCache(DesignPoint d)
{
    return designSeparateCounters(d) || d == DesignPoint::ColocatedCC;
}

/** True for designs guaranteed to recover consistently after a crash. */
inline bool
designCrashConsistent(DesignPoint d)
{
    return d != DesignPoint::Unsafe;
}

} // namespace cnvm

#endif // CNVM_MEMCTL_DESIGN_HH
