/**
 * @file
 * The on-chip counter cache (paper sections 2.2.1 and 5.2.1).
 *
 * Buffers counter lines (8 counters of 8 B covering 8 consecutive data
 * lines) so that OTP generation can overlap the memory read. Tracks a
 * dirty bit per line; in the SCA design dirty counter lines are the
 * updates whose persistence has been deferred.
 */

#ifndef CNVM_MEMCTL_COUNTER_CACHE_HH
#define CNVM_MEMCTL_COUNTER_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "nvm/nvm_device.hh"
#include "stats/stats.hh"

namespace cnvm
{

/** One resident counter line. */
struct CounterCacheLine
{
    Addr addr = 0;          //!< counter-line address
    bool valid = false;
    bool dirty = false;
    /** Which of the eight counters carry unpersisted updates. */
    std::uint8_t dirtyMask = 0;
    std::uint64_t lruStamp = 0;
    CounterLine values{};
};

/** A dirty counter line displaced by an allocation. */
struct CounterEviction
{
    Addr addr = 0;
    /** Which of the eight counters carry unpersisted updates. */
    std::uint8_t dirtyMask = 0;
    CounterLine values{};
};

/** Set-associative, LRU counter cache. */
class CounterCache
{
  public:
    /**
     * @param size_bytes  capacity; each entry models lineBytes of
     *                    counter storage
     * @param assoc       ways (paper: 16)
     * @param stat_prefix stat-name prefix; per-channel caches register
     *                    under distinct prefixes ("ctrcache.ch1." ...)
     * @param index_shift line-index bits dropped before set selection.
     *                    A channel-sharded cache only ever sees line
     *                    indices whose low log2(channels) bits equal
     *                    its channel id; indexing with them in place
     *                    would strand all but numSets/channels sets.
     *                    Pass log2(channels) to fold the constant bits
     *                    out (0 for an unsharded cache).
     */
    CounterCache(std::uint64_t size_bytes, unsigned assoc,
                 stats::StatRegistry *registry,
                 const std::string &stat_prefix = "ctrcache.",
                 unsigned index_shift = 0);

    /** Looks up a counter line; on hit refreshes LRU. */
    CounterCacheLine *access(Addr ctr_line_addr);

    /** Looks up without LRU update. */
    CounterCacheLine *peek(Addr ctr_line_addr);

    /**
     * Installs a counter line (must not be resident), returning the
     * dirty victim if one was displaced.
     *
     * @param dirty_mask which of the eight counters carry unpersisted
     *                   updates; 0 installs the line clean. The mask is
     *                   what a later eviction writes back, so it must
     *                   be exact at install time — a dirty writeback
     *                   sized by a stale mask inflates counter traffic.
     */
    std::optional<CounterEviction>
    install(Addr ctr_line_addr, const CounterLine &values,
            std::uint8_t dirty_mask);

    /** Drops all contents (power failure). */
    void reset();

    std::uint64_t validCount() const;
    std::uint64_t dirtyCount() const;

    // Stats are public so the controller can attribute hits/misses by
    // access type.
    stats::Scalar readHits;
    stats::Scalar readMisses;
    stats::Scalar writeHits;
    stats::Scalar writeMisses;
    stats::Scalar dirtyEvictions;

  private:
    std::uint64_t numSets;
    unsigned ways;
    unsigned indexShift = 0;
    std::uint64_t nextStamp = 1;
    std::vector<CounterCacheLine> lines;

    std::uint64_t setIndex(Addr addr) const;
};

} // namespace cnvm

#endif // CNVM_MEMCTL_COUNTER_CACHE_HH
