#include "memctl/mem_controller.hh"

#include <algorithm>
#include <bit>
#include <mutex>

#include "common/logging.hh"
#include "integrity/integrity_tree.hh"
#include "sim/one_shot.hh"

namespace cnvm
{

namespace
{

/**
 * Stat-name prefix for a channel. Every channel — including channel 0 —
 * uses the canonical "memctl.chN." form, so bench/tool parsers handle
 * all channels uniformly; the constructor registers the legacy flat
 * "memctl." names as lookup aliases for channel 0.
 */
std::string
ctlStatPrefix(const MemCtlConfig &cfg)
{
    return "memctl.ch" + std::to_string(cfg.channelId) + ".";
}

std::string
ccStatPrefix(const MemCtlConfig &cfg)
{
    return "ctrcache.ch" + std::to_string(cfg.channelId) + ".";
}

} // namespace

MemController::MemController(EventQueue &eq, NvmDevice &nvm,
                             const MemCtlConfig &cfg,
                             stats::StatRegistry *registry,
                             PersistSequencer *sequencer_in)
    : dataInserts(ctlStatPrefix(cfg) + "data_inserts",
                  "data write-queue insertions"),
      ctrInserts(ctlStatPrefix(cfg) + "ctr_inserts",
                 "counter write-queue insertions"),
      ctrCoalesces(ctlStatPrefix(cfg) + "ctr_coalesces",
                   "counter writes merged into pending entries"),
      dataCoalesces(ctlStatPrefix(cfg) + "data_coalesces",
                    "data writes merged into pending entries"),
      writeRejects(ctlStatPrefix(cfg) + "write_rejects",
                   "writes refused for lack of queue space"),
      readForwards(ctlStatPrefix(cfg) + "read_forwards",
                   "reads served from the data write queue"),
      atomicPairs(ctlStatPrefix(cfg) + "atomic_pairs",
                  "counter-atomic data/counter pairs enforced"),
      pairBlocks(ctlStatPrefix(cfg) + "pair_blocks",
                 "writes blocked behind an incomplete pair on the same "
                 "counter line (Figure 7a serialization)"),
      ccFillReads(ctlStatPrefix(cfg) + "cc_fill_reads",
                  "NVM reads issued to fill the counter cache"),
      crashDroppedData(ctlStatPrefix(cfg) + "crash_dropped_data",
                       "unready data entries dropped at power failure"),
      crashDroppedCtr(ctlStatPrefix(cfg) + "crash_dropped_ctr",
                      "unready counter entries dropped at power failure"),
      ctrwbNoops(ctlStatPrefix(cfg) + "ctrwb_noops",
                 "counter_cache_writeback calls that had nothing to do"),
      treeLeafUpdates(ctlStatPrefix(cfg) + "tree_leaf_updates",
                      "integrity-tree leaves dirtied by counter persists"),
      treeCoalesces(ctlStatPrefix(cfg) + "tree_coalesces",
                    "leaf updates absorbed by an already-dirty node"),
      treeNodeWrites(ctlStatPrefix(cfg) + "tree_node_writes",
                     "integrity-tree nodes written back to the device"),
      treeFlushes(ctlStatPrefix(cfg) + "tree_flushes",
                  "batched epoch write-backs of the dirty tree set"),
      eventq(eq),
      nvm(nvm),
      cfg(cfg),
      ctrEngine(cfg.key.data()),
      sequencer(sequencer_in != nullptr ? sequencer_in : &ownSequencer),
      maxInflightWrites(nvm.timing().numBanks)
{
    // The tree authenticates the counter store; without the per-line
    // MAC there would be nothing tying ciphertext to those counters,
    // so the tree axis implies the MAC axis.
    if (this->cfg.integrityTree)
        this->cfg.integrityMac = true;
    cnvm_assert(isPowerOfTwo(cfg.numChannels));
    cnvm_assert(cfg.channelId < cfg.numChannels);
    if (designHasCounterCache(cfg.design)) {
        // Fold the channel-id bits out of the set index: this shard
        // only sees counter-line indices ≡ channelId (mod channels),
        // and indexing with those constant bits in place would strand
        // all but numSets/channels of the sets.
        unsigned index_shift = 0;
        while ((1u << index_shift) < cfg.numChannels)
            ++index_shift;
        counterCache = std::make_unique<CounterCache>(
            cfg.counterCacheBytes, cfg.counterCacheAssoc, registry,
            ccStatPrefix(cfg), index_shift);
    }
    // The queue indexes are bounded by the queue capacities; sizing
    // their tables up front keeps rehashing out of the hot path.
    dataBySeq.reserve(cfg.dataWqEntries * 2);
    dataByAddr.reserve(cfg.dataWqEntries * 2);
    ctrBySeq.reserve(cfg.ctrWqEntries * 2);
    ctrByAddr.reserve(cfg.ctrWqEntries * 2);
    if (registry != nullptr) {
        registry->registerStat(dataInserts);
        registry->registerStat(ctrInserts);
        registry->registerStat(ctrCoalesces);
        registry->registerStat(dataCoalesces);
        registry->registerStat(writeRejects);
        registry->registerStat(readForwards);
        registry->registerStat(atomicPairs);
        registry->registerStat(pairBlocks);
        registry->registerStat(ccFillReads);
        registry->registerStat(crashDroppedData);
        registry->registerStat(crashDroppedCtr);
        registry->registerStat(ctrwbNoops);
        registry->registerStat(treeLeafUpdates);
        registry->registerStat(treeCoalesces);
        registry->registerStat(treeNodeWrites);
        registry->registerStat(treeFlushes);
        // Channel 0 historically dumped flat "memctl." / "ctrcache."
        // names; keep them resolvable (find/lookup only, not dumped).
        if (cfg.channelId == 0) {
            registry->aliasPrefix("memctl.ch0.", "memctl.");
            registry->aliasPrefix("ctrcache.ch0.", "ctrcache.");
        }
    }
}

// ----------------------------------------------------------------------
// Address-space helpers
// ----------------------------------------------------------------------

Addr
MemController::counterLineAddr(Addr data_line_addr) const
{
    std::uint64_t line_index = data_line_addr / lineBytes;
    return cfg.counterRegionBase + (line_index / countersPerLine) * lineBytes;
}

unsigned
MemController::counterSlot(Addr data_line_addr) const
{
    return static_cast<unsigned>((data_line_addr / lineBytes)
                                 % countersPerLine);
}

unsigned
MemController::ctrLineChannel(Addr ctr_line_addr) const
{
    return static_cast<unsigned>(
        ((ctr_line_addr - cfg.counterRegionBase) / lineBytes)
        & (cfg.numChannels - 1));
}

// ----------------------------------------------------------------------
// Functional views
// ----------------------------------------------------------------------

LineData
MemController::functionalRead(Addr addr) const
{
    return nvm.livePlainRead(lineAlign(addr));
}

void
MemController::functionalStore(Addr addr, unsigned size,
                               const std::uint8_t *bytes)
{
    nvm.livePlainStore(addr, size, bytes);
}

// ----------------------------------------------------------------------
// Queue indexes
// ----------------------------------------------------------------------

void
MemController::indexDataEntry(DataIter it)
{
    dataBySeq.emplace(it->seq, it);
    dataByAddr[it->addr].push_back(it);
}

void
MemController::unindexDataEntry(DataIter it)
{
    dataBySeq.erase(it->seq);
    auto vec_it = dataByAddr.find(it->addr);
    cnvm_assert(vec_it != dataByAddr.end());
    auto &vec = vec_it->second;
    vec.erase(std::find(vec.begin(), vec.end(), it));
    if (vec.empty())
        dataByAddr.erase(vec_it);
}

void
MemController::indexCtrEntry(CtrIter it)
{
    ctrBySeq.emplace(it->seq, it);
    ctrByAddr[it->addr].push_back(it);
}

void
MemController::unindexCtrEntry(CtrIter it)
{
    ctrBySeq.erase(it->seq);
    auto vec_it = ctrByAddr.find(it->addr);
    cnvm_assert(vec_it != ctrByAddr.end());
    auto &vec = vec_it->second;
    vec.erase(std::find(vec.begin(), vec.end(), it));
    if (vec.empty())
        ctrByAddr.erase(vec_it);
}

MemController::DataIter
MemController::locateDataEntry(std::uint64_t seq)
{
    if (cfg.useQueueIndex) {
        auto map_it = dataBySeq.find(seq);
        DataIter found =
            map_it == dataBySeq.end() ? dataQ.end() : map_it->second;
#ifndef NDEBUG
        DataIter ref = dataQ.begin();
        while (ref != dataQ.end() && ref->seq != seq)
            ++ref;
        cnvm_assert(found == ref);
#endif
        return found;
    }
    for (DataIter it = dataQ.begin(); it != dataQ.end(); ++it) {
        if (it->seq == seq)
            return it;
    }
    return dataQ.end();
}

MemController::CtrIter
MemController::locateCtrEntry(std::uint64_t seq)
{
    if (cfg.useQueueIndex) {
        auto map_it = ctrBySeq.find(seq);
        CtrIter found =
            map_it == ctrBySeq.end() ? ctrQ.end() : map_it->second;
#ifndef NDEBUG
        CtrIter ref = ctrQ.begin();
        while (ref != ctrQ.end() && ref->seq != seq)
            ++ref;
        cnvm_assert(found == ref);
#endif
        return found;
    }
    for (CtrIter it = ctrQ.begin(); it != ctrQ.end(); ++it) {
        if (it->seq == seq)
            return it;
    }
    return ctrQ.end();
}

bool
MemController::dataQueueHas(Addr addr) const
{
    if (cfg.useQueueIndex) {
        bool found = dataByAddr.find(addr) != dataByAddr.end();
#ifndef NDEBUG
        bool ref = false;
        for (const DataEntry &entry : dataQ)
            ref = ref || entry.addr == addr;
        cnvm_assert(found == ref);
#endif
        return found;
    }
    for (const DataEntry &entry : dataQ) {
        if (entry.addr == addr)
            return true;
    }
    return false;
}

bool
MemController::ctrQueueHasIssued(Addr ctr_addr) const
{
    bool found = false;
    if (cfg.useQueueIndex) {
        auto vec_it = ctrByAddr.find(ctr_addr);
        if (vec_it != ctrByAddr.end()) {
            for (CtrIter it : vec_it->second)
                found = found || it->issued;
        }
#ifndef NDEBUG
        bool ref = false;
        for (const CtrEntry &entry : ctrQ)
            ref = ref || (entry.issued && entry.addr == ctr_addr);
        cnvm_assert(found == ref);
#endif
        return found;
    }
    for (const CtrEntry &entry : ctrQ) {
        if (entry.issued && entry.addr == ctr_addr)
            return true;
    }
    return false;
}

void
MemController::verifyIndexes() const
{
#ifndef NDEBUG
    cnvm_assert(dataBySeq.size() == dataQ.size());
    cnvm_assert(ctrBySeq.size() == ctrQ.size());
    std::unordered_map<Addr, std::size_t> cursor;
    for (auto it = dataQ.begin(); it != dataQ.end(); ++it) {
        auto seq_it = dataBySeq.find(it->seq);
        cnvm_assert(seq_it != dataBySeq.end()
                    && &*seq_it->second == &*it);
        // The per-address vector must list this address's entries in
        // queue (age) order; walk each vector with a cursor.
        auto vec_it = dataByAddr.find(it->addr);
        cnvm_assert(vec_it != dataByAddr.end());
        std::size_t pos = cursor[it->addr]++;
        cnvm_assert(pos < vec_it->second.size()
                    && &*vec_it->second[pos] == &*it);
    }
    for (const auto &[addr, vec] : dataByAddr)
        cnvm_assert(cursor[addr] == vec.size());
    cursor.clear();
    for (auto it = ctrQ.begin(); it != ctrQ.end(); ++it) {
        auto seq_it = ctrBySeq.find(it->seq);
        cnvm_assert(seq_it != ctrBySeq.end()
                    && &*seq_it->second == &*it);
        auto vec_it = ctrByAddr.find(it->addr);
        cnvm_assert(vec_it != ctrByAddr.end());
        std::size_t pos = cursor[it->addr]++;
        cnvm_assert(pos < vec_it->second.size()
                    && &*vec_it->second[pos] == &*it);
    }
    for (const auto &[addr, vec] : ctrByAddr)
        cnvm_assert(cursor[addr] == vec.size());
#endif
}

CounterLine
MemController::memoryViewCounters(Addr ctr_addr) const
{
    CounterLine values;
    {
        std::lock_guard<std::mutex> lock(nvm.imageMutex());
        values = nvm.persistedCounters(ctr_addr);
    }
    // Pending counter-queue entries and not-yet-queued evictions are
    // newer than the image; counters only grow, so merging by max
    // yields the youngest value per slot (and makes the merge order
    // irrelevant, which is why the indexed path can skip the scan).
    if (cfg.useQueueIndex) {
        auto vec_it = ctrByAddr.find(ctr_addr);
        if (vec_it != ctrByAddr.end()) {
            for (CtrIter it : vec_it->second) {
                for (unsigned s = 0; s < countersPerLine; ++s)
                    values[s] = std::max(values[s], it->values[s]);
            }
        }
    } else {
        for (const CtrEntry &entry : ctrQ) {
            if (entry.addr != ctr_addr)
                continue;
            for (unsigned s = 0; s < countersPerLine; ++s)
                values[s] = std::max(values[s], entry.values[s]);
        }
    }
    for (const CounterEviction &ev : pendingCcEvictions) {
        if (ev.addr != ctr_addr)
            continue;
        for (unsigned s = 0; s < countersPerLine; ++s)
            values[s] = std::max(values[s], ev.values[s]);
    }
    return values;
}

CounterLine
MemController::visibleCounters(Addr ctr_addr)
{
    if (counterCache != nullptr) {
        if (CounterCacheLine *line = counterCache->peek(ctr_addr))
            return line->values;
    }
    return memoryViewCounters(ctr_addr);
}

CounterLine
MemController::currentCounters(Addr ctr_addr) const
{
    CounterLine values{};
    std::uint64_t first_line =
        (ctr_addr - cfg.counterRegionBase) / lineBytes * countersPerLine;
    for (unsigned s = 0; s < countersPerLine; ++s) {
        Addr data_addr = first_line * lineBytes
                       + static_cast<Addr>(s) * lineBytes;
        auto it = currentCounter.find(data_addr);
        values[s] = it == currentCounter.end() ? 0 : it->second;
    }
    return values;
}

// ----------------------------------------------------------------------
// Read path
// ----------------------------------------------------------------------

void
MemController::finishRead(Tick when, ReadCallback done)
{
    ++outstandingReads;
    std::uint64_t epoch = pipelineEpoch;
    scheduleAt(eventq, when, [this, epoch, done = std::move(done)]() {
        // A power failure between scheduling and completion killed the
        // read with the rest of the volatile controller state; firing
        // anyway would decrement the freshly-zeroed counter.
        if (epoch != pipelineEpoch)
            return;
        cnvm_assert(outstandingReads > 0);
        --outstandingReads;
        done();
        kickDrain();
    });
}

void
MemController::issueRead(Addr addr, unsigned core_id, ReadCallback done)
{
    (void)core_id;
    addr = lineAlign(addr);
    Tick now = eventq.curTick();

    // Forward from a matching data write-queue entry — or from a write
    // still inside the encryption pipeline / landing buffer. The
    // latter matters: an accepted write is architecturally younger
    // than this read, so fetching the line from the device instead
    // would return stale data (and mis-time the read). Tracking
    // in-flight lines in pendingLineWrites closes that window.
    if (dataQueueHas(addr)
        || pendingLineWrites.find(addr) != pendingLineWrites.end()) {
        ++readForwards;
        finishRead(now + cfg.forwardLatency, std::move(done));
        return;
    }

    Tick data_arrival = nvm.scheduleRead(addr, now);

    switch (cfg.design) {
      case DesignPoint::NoEncryption:
        finishRead(data_arrival, std::move(done));
        return;

      case DesignPoint::Colocated:
        // No counter cache: the counter arrives with the data and
        // decryption is serialized behind the read (Figure 6a).
        finishRead(data_arrival + cfg.encLatency, std::move(done));
        return;

      case DesignPoint::ColocatedCC: {
        Addr ctr_addr = counterLineAddr(addr);
        if (counterCache->access(ctr_addr) != nullptr) {
            ++counterCache->readHits;
            // OTP generation overlaps the read (Figure 6b).
            finishRead(std::max(data_arrival, now + cfg.encLatency),
                       std::move(done));
        } else {
            ++counterCache->readMisses;
            // The counter rides with the data: decryption waits for
            // arrival, then the counter line is installed.
            Tick ready = data_arrival + cfg.encLatency;
            finishRead(ready, std::move(done));
            std::uint64_t epoch = pipelineEpoch;
            scheduleAt(eventq, ready, [this, epoch, ctr_addr]() {
                if (epoch != pipelineEpoch)
                    return; // fill died with the power failure
                if (counterCache->peek(ctr_addr) == nullptr) {
                    auto victim = counterCache->install(
                        ctr_addr, currentCounters(ctr_addr), 0);
                    if (victim)
                        handleCcEviction(*victim);
                }
            });
        }
        return;
      }

      default: {
        // Separate-counter designs: overlap OTP generation with the
        // data read on a counter hit; a miss fetches the counter line
        // from NVMM first (section 5.2.1, "Counter Cache Miss").
        Addr ctr_addr = counterLineAddr(addr);
        if (counterCache->access(ctr_addr) != nullptr) {
            ++counterCache->readHits;
            finishRead(std::max(data_arrival, now + cfg.encLatency),
                       std::move(done));
        } else {
            ++counterCache->readMisses;
            ++ccFillReads;
            Tick ctr_arrival = nvm.scheduleRead(ctr_addr, now);
            Tick ready = std::max(data_arrival,
                                  ctr_arrival + cfg.encLatency);
            finishRead(ready, std::move(done));
            CounterLine values = memoryViewCounters(ctr_addr);
            std::uint64_t epoch = pipelineEpoch;
            scheduleAt(eventq, ctr_arrival,
                       [this, epoch, ctr_addr, values]() {
                if (epoch != pipelineEpoch)
                    return; // fill died with the power failure
                if (counterCache->peek(ctr_addr) == nullptr) {
                    auto victim =
                        counterCache->install(ctr_addr, values, 0);
                    if (victim)
                        handleCcEviction(*victim);
                }
            });
        }
        return;
      }
    }
}

// ----------------------------------------------------------------------
// Write path
// ----------------------------------------------------------------------

bool
MemController::haveDataSlot() const
{
    return dataQ.size() < cfg.dataWqEntries;
}

bool
MemController::haveCtrSlot() const
{
    return ctrQ.size() < cfg.ctrWqEntries;
}

unsigned
MemController::dataQueueOccupancy() const
{
    return static_cast<unsigned>(dataQ.size());
}

unsigned
MemController::ctrQueueOccupancy() const
{
    return static_cast<unsigned>(ctrQ.size());
}

bool
MemController::writesIdle() const
{
    return dataQ.empty() && ctrQ.empty() && landingQ.empty()
        && pipelineWrites == 0 && inflightWrites == 0
        && pendingCcEvictions.empty();
}

MemController::CtrEntry *
MemController::findUnissuedCtr(Addr ctr_addr)
{
    if (cfg.useQueueIndex) {
        CtrEntry *found = nullptr;
        auto vec_it = ctrByAddr.find(ctr_addr);
        if (vec_it != ctrByAddr.end()) {
            for (CtrIter it : vec_it->second) {
                if (!it->issued) {
                    found = &*it;
                    break;
                }
            }
        }
#ifndef NDEBUG
        CtrEntry *ref = nullptr;
        for (CtrEntry &entry : ctrQ) {
            if (!entry.issued && entry.addr == ctr_addr) {
                ref = &entry;
                break;
            }
        }
        cnvm_assert(found == ref);
#endif
        return found;
    }
    for (CtrEntry &entry : ctrQ) {
        if (!entry.issued && entry.addr == ctr_addr)
            return &entry;
    }
    return nullptr;
}

MemController::DataEntry *
MemController::findUnissuedData(Addr addr)
{
    if (cfg.useQueueIndex) {
        DataEntry *found = nullptr;
        auto vec_it = dataByAddr.find(addr);
        if (vec_it != dataByAddr.end()) {
            for (DataIter it : vec_it->second) {
                if (!it->issued) {
                    found = &*it;
                    break;
                }
            }
        }
#ifndef NDEBUG
        DataEntry *ref = nullptr;
        for (DataEntry &entry : dataQ) {
            if (!entry.issued && entry.addr == addr) {
                ref = &entry;
                break;
            }
        }
        cnvm_assert(found == ref);
#endif
        return found;
    }
    for (DataEntry &entry : dataQ) {
        if (!entry.issued && entry.addr == addr)
            return &entry;
    }
    return nullptr;
}

bool
MemController::tryWrite(const WriteReq &req)
{
    cnvm_assert(isLineAligned(req.addr));

    // Does this write require the data/counter ready-bit pairing?
    bool pair = false;
    switch (cfg.design) {
      case DesignPoint::FCA:
        pair = true;                  // every write is counter-atomic
        break;
      case DesignPoint::SCA:
        pair = req.counterAtomic;     // only annotated writes
        break;
      default:
        pair = false;                 // no separate pairing
        break;
    }

    // Dependent-write blocking (Figure 7a): a counter-atomic write
    // whose counter line is being written to the device right now must
    // wait until that write completes — an in-flight transfer cannot
    // absorb new values. (A still-queued entry is no obstacle: the new
    // counter merges into it in the same atomic pairing action.)
    if (pair && ctrQueueHasIssued(counterLineAddr(req.addr))) {
        ++pairBlocks;
        return false;
    }

    // The controller input buffer in front of the encryption pipeline
    // is finite; refusal here is rare and only under severe backlog.
    if (landingQ.size() >= landingCapacity) {
        ++writeRejects;
        return false;
    }

    Tick now = eventq.curTick();
    std::uint64_t epoch = pipelineEpoch;
    std::uint64_t counter = 0;

    if (cfg.design != DesignPoint::NoEncryption) {
        // Assign a fresh counter from the global counter at engine
        // entry (section 5.2.1, write accesses); the ciphertext and
        // queue entries appear at pipeline exit.
        counter = ++globalCounter;
        currentCounter[req.addr] = counter;
        if (pair)
            ++atomicPairs;
    }

    Tick lat = cfg.design == DesignPoint::NoEncryption
        ? cfg.acceptLatency : cfg.encLatency;
    ++pipelineWrites;
    ++pendingLineWrites[req.addr];
    emitEvent(CtlEvent::PipelineEnter);
    scheduleAt(eventq, now + lat, [this, epoch, req, counter, pair]() {
        if (epoch != pipelineEpoch)
            return;
        --pipelineWrites;
        landingQ.push_back([this, req, counter, pair]() {
            if (!landDataWrite(req, counter, pair))
                return false;
            // The line is now visible through the data-queue index;
            // stop tracking it as in-pipeline.
            auto pending = pendingLineWrites.find(req.addr);
            cnvm_assert(pending != pendingLineWrites.end());
            if (--pending->second == 0)
                pendingLineWrites.erase(pending);
            return true;
        });
        processLandings();
    });
    return true;
}

void
MemController::processLandings()
{
    while (!landingQ.empty()) {
        if (!landingQ.front()())
            return; // head cannot claim a slot yet
        landingQ.pop_front();
    }
}

void
MemController::scheduleDrainKick()
{
    // Deferring the kick to the end of the current tick lets every
    // same-tick arrival land (and coalesce) before any entry issues.
    if (kickScheduled)
        return;
    kickScheduled = true;
    std::uint64_t epoch = pipelineEpoch;
    scheduleAt(eventq, eventq.curTick(), [this, epoch]() {
        if (epoch != pipelineEpoch)
            return; // crash() already reset kickScheduled
        kickScheduled = false;
        kickDrain();
    }, Event::MaxPriority);
}

bool
MemController::landDataWrite(const WriteReq &req, std::uint64_t counter,
                             bool pair)
{
    bool encrypted = cfg.design != DesignPoint::NoEncryption;
    bool colocated = encrypted && !designSeparateCounters(cfg.design);
    Addr ctr_addr = counterLineAddr(req.addr);
    unsigned slot = counterSlot(req.addr);

    // Claim the queue slots this write needs. Entering the write queue
    // is the ADR acceptance point the upstream fence waits on.
    DataEntry *entry =
        cfg.writeCombining ? findUnissuedData(req.addr) : nullptr;
    if (entry == nullptr && !haveDataSlot())
        return false;
    bool ctr_mergeable =
        cfg.writeCombining && findUnissuedCtr(ctr_addr) != nullptr;
    if (pair && !ctr_mergeable && !haveCtrSlot())
        return false;

    LineData cipher = encrypted
        ? ctrEngine.encrypt(req.addr, counter, req.data)
        : req.data;

    if (entry != nullptr) {
        // Write combining: a newer write to a still-queued line
        // replaces its ciphertext (and counter) in place.
        entry->cipher = cipher;
        entry->counter = counter;
        entry->counterAtomic |= pair;
        ++dataCoalesces;
    } else {
        dataQ.push_back(DataEntry{});
        entry = &dataQ.back();
        entry->seq = sequencer->acquire(eventq.curTick());
        entry->addr = req.addr;
        entry->cipher = cipher;
        entry->counter = counter;
        entry->counterAtomic = pair;
        entry->ready = true;
        entry->issued = false;
        entry->coreId = req.coreId;
        entry->busBytes =
            colocated ? lineBytes + counterBytes : lineBytes;
        ++dataInserts;
        indexDataEntry(std::prev(dataQ.end()));
    }

    if (pair) {
        // Atomic pairing action: the counter-line values (currently
        // visible values plus this write's counter) enter the counter
        // queue in the same step that the data entry becomes ready, so
        // neither side can persist without the other (section 5.2.2).
        CounterLine values = visibleCounters(ctr_addr);
        values[slot] = counter;
        // FCA writes the counter back at cache-line granularity, which
        // "unnecessarily increases the write traffic" (section 4.1);
        // SCA's enforcement hardware knows the dirty mask from the
        // counter cache and writes only the touched counters.
        std::uint8_t mask;
        if (cfg.design == DesignPoint::FCA) {
            mask = 0xff;
        } else {
            mask = static_cast<std::uint8_t>(1u << slot);
            if (counterCache != nullptr) {
                if (CounterCacheLine *line = counterCache->peek(ctr_addr))
                    mask |= line->dirtyMask;
            }
        }
        enqueueCtrValues(ctr_addr, values, mask);
        // Write-through: the counter cache copy is now clean — every
        // deferred value on the line just entered the counter queue.
        applyCounterToCache(req.addr, counter, false, true);
        if (counterCache != nullptr) {
            if (CounterCacheLine *line = counterCache->peek(ctr_addr)) {
                line->dirty = false;
                line->dirtyMask = 0;
            }
        }
        emitEvent(CtlEvent::PairAction);
    } else if (encrypted && counterCache != nullptr) {
        // Deferred counter persistence: the update is only dirty in
        // the counter cache (SCA/Unsafe), or persistence is free
        // (Ideal), or the counter rides with the data (ColocatedCC).
        bool dirty = cfg.design == DesignPoint::SCA
                  || cfg.design == DesignPoint::Unsafe;
        applyCounterToCache(req.addr, counter, dirty, true);
    }

    if (req.accepted) {
        if (pair) {
            // The ready-bit pairing handshake delays completion
            // (section 5.2.2 steps 5-7): the write is "complete" only
            // once both queues have cross-checked their entries.
            scheduleAfter(eventq, cfg.pairLatency, req.accepted);
        } else {
            req.accepted();
        }
    }
    scheduleDrainKick();
    verifyIndexes();
    return true;
}

void
MemController::enqueueCtrValues(Addr ctr_addr, const CounterLine &values,
                                std::uint8_t dirty_mask)
{
    CtrEntry *existing =
        cfg.writeCombining ? findUnissuedCtr(ctr_addr) : nullptr;
    if (existing != nullptr) {
        for (unsigned s = 0; s < countersPerLine; ++s)
            existing->values[s] = std::max(existing->values[s], values[s]);
        existing->dirtyMask |= dirty_mask;
        ++ctrCoalesces;
        return;
    }

    CtrEntry entry;
    entry.seq = sequencer->acquire(eventq.curTick());
    entry.addr = ctr_addr;
    entry.values = values;
    entry.ready = true;
    entry.issued = false;
    entry.pendingPartners = 0;
    entry.dirtyMask = dirty_mask;
    ctrQ.push_back(entry);
    ++ctrInserts;
    indexCtrEntry(std::prev(ctrQ.end()));
}

void
MemController::applyCounterToCache(Addr data_line_addr,
                                   std::uint64_t counter, bool make_dirty,
                                   bool charge_fill_on_miss)
{
    if (counterCache == nullptr)
        return;

    Addr ctr_addr = counterLineAddr(data_line_addr);
    unsigned slot = counterSlot(data_line_addr);

    if (CounterCacheLine *line = counterCache->access(ctr_addr)) {
        ++counterCache->writeHits;
        line->values[slot] = std::max(line->values[slot], counter);
        line->dirty |= make_dirty;
        if (make_dirty)
            line->dirtyMask |= static_cast<std::uint8_t>(1u << slot);
        return;
    }

    ++counterCache->writeMisses;
    // A write miss does not stall (section 5.2.1): the line is fetched
    // in the background. The fill read is charged for bus/bank
    // occupancy; the install happens immediately for simplicity.
    if (charge_fill_on_miss && designSeparateCounters(cfg.design)) {
        ++ccFillReads;
        nvm.scheduleRead(ctr_addr, eventq.curTick());
    }
    CounterLine values = designSeparateCounters(cfg.design)
        ? memoryViewCounters(ctr_addr)
        : currentCounters(ctr_addr);
    values[slot] = std::max(values[slot], counter);
    auto victim = counterCache->install(
        ctr_addr, values,
        make_dirty ? static_cast<std::uint8_t>(1u << slot) : 0);
    if (victim)
        handleCcEviction(*victim);
}

void
MemController::handleCcEviction(const CounterEviction &ev)
{
    emitEvent(CtlEvent::DirtyEviction);
    switch (cfg.design) {
      case DesignPoint::Ideal:
        // Counter persistence is free in the ideal design.
        {
            std::lock_guard<std::mutex> lock(nvm.imageMutex());
            nvm.drainCounters(ev.addr, ev.values);
        }
        noteCounterPersist(ev.addr);
        return;
      case DesignPoint::ColocatedCC:
        // Counters live with their data lines; the cache copy is just a
        // performance structure and needs no writeback of its own.
        return;
      default:
        break;
    }

    if (haveCtrSlot()) {
        enqueueCtrValues(ev.addr, ev.values, ev.dirtyMask);
        kickDrain();
    } else {
        pendingCcEvictions.push_back(ev);
    }
}

void
MemController::drainPendingCcEvictions()
{
    while (!pendingCcEvictions.empty() && haveCtrSlot()) {
        enqueueCtrValues(pendingCcEvictions.front().addr,
                         pendingCcEvictions.front().values,
                         pendingCcEvictions.front().dirtyMask);
        pendingCcEvictions.pop_front();
    }
}

void
MemController::noteCounterPersist(Addr ctr_line_addr)
{
    if (!cfg.integrityTree)
        return;
    const std::uint64_t leaf =
        (ctr_line_addr - cfg.counterRegionBase) / lineBytes;
    // The coalescing rule (Freij et al.): a leaf dirtied twice within
    // one epoch costs one write-back, not two.
    if (dirtyTreeLeaves.insert(leaf).second)
        ++treeLeafUpdates;
    else
        ++treeCoalesces;
    ++treeCtrPersists;
    if (cfg.treeEpochDrains > 0
        && treeCtrPersists % cfg.treeEpochDrains == 0)
        flushTreeEpoch();
}

void
MemController::flushTreeEpoch()
{
    if (dirtyTreeLeaves.empty())
        return;

    // The write-back set is the ancestor closure of the dirty leaves,
    // deduplicated level by level: leaves sharing a parent cost that
    // parent once. Each dirty counter-block leaf carries its 64 B
    // slot-hash line; every node above it (level 1 up to and including
    // the root) is an 8 B hash word.
    std::uint64_t bytes =
        std::uint64_t(lineBytes) * dirtyTreeLeaves.size();
    std::uint64_t nodes = 0;
    std::set<std::uint64_t> level = dirtyTreeLeaves;
    nodes += level.size();
    for (unsigned l = 1; l < treeRootLevel; ++l) {
        std::set<std::uint64_t> up;
        for (std::uint64_t index : level)
            up.insert(index / treeArity);
        level = std::move(up);
        nodes += level.size();
    }
    bytes += 8 * nodes;

    // One batched burst into the tree region above the counter store —
    // at this channel's own slot, so the flush occupies this channel's
    // bank group and bus, not channel 0's. The traffic (and the bank
    // time it occupies) is the overhead the tree_overhead bench rows
    // measure against MAC-only designs.
    nvm.scheduleWrite(cfg.counterRegionBase * 2
                          + Addr(cfg.channelId) * lineBytes,
                      eventq.curTick(), static_cast<unsigned>(bytes));
    treeNodeWrites += static_cast<double>(nodes);
    ++treeFlushes;
    dirtyTreeLeaves.clear();
}

bool
MemController::tryCtrWriteback(Addr data_line_addr,
                               std::function<void()> accepted)
{
    Tick now = eventq.curTick();

    auto accept_now = [this, now, accepted]() {
        if (accepted)
            scheduleAt(eventq, now + cfg.acceptLatency, accepted);
    };

    switch (cfg.design) {
      case DesignPoint::NoEncryption:
      case DesignPoint::Colocated:
      case DesignPoint::ColocatedCC:
      case DesignPoint::FCA:
        // Nothing deferred in these designs: counters are either
        // absent, co-located with data, or written through per write.
        ++ctrwbNoops;
        accept_now();
        return true;

      case DesignPoint::Ideal: {
        Addr ctr_addr = counterLineAddr(data_line_addr);
        if (CounterCacheLine *line = counterCache->peek(ctr_addr)) {
            {
                std::lock_guard<std::mutex> lock(nvm.imageMutex());
                nvm.drainCounters(ctr_addr, line->values);
            }
            noteCounterPersist(ctr_addr);
            line->dirty = false;
        }
        accept_now();
        return true;
      }

      case DesignPoint::SCA:
      case DesignPoint::Unsafe: {
        // The request flows through the controller pipeline and
        // snapshots the counter cache at landing, after any write that
        // preceded it in program order has updated its counters.
        if (landingQ.size() >= landingCapacity) {
            ++writeRejects;
            return false;
        }
        Addr ctr_addr = counterLineAddr(data_line_addr);
        std::uint64_t epoch = pipelineEpoch;
        scheduleAt(eventq, now + cfg.encLatency,
                   [this, epoch, ctr_addr,
                    accepted = std::move(accepted)]() {
            if (epoch != pipelineEpoch)
                return;
            landingQ.push_back([this, ctr_addr, accepted]() {
                CounterCacheLine *line = counterCache->peek(ctr_addr);
                if (line == nullptr || !line->dirty) {
                    // Clean or absent: the values are already
                    // persistent or in flight; nothing to write back.
                    ++ctrwbNoops;
                } else {
                    if (findUnissuedCtr(ctr_addr) == nullptr
                        && !haveCtrSlot())
                        return false;
                    enqueueCtrValues(ctr_addr, line->values,
                                     line->dirtyMask);
                    line->dirty = false;
                    line->dirtyMask = 0;
                }
                if (accepted)
                    accepted();
                scheduleDrainKick();
                return true;
            });
            processLandings();
        });
        return true;
      }
    }
    return false;
}

void
MemController::registerRetry(std::function<void()> retry)
{
    retryCallbacks.push_back(std::move(retry));
}

void
MemController::notifyRetries()
{
    if (retryCallbacks.empty())
        return;
    std::vector<std::function<void()>> pending;
    pending.swap(retryCallbacks);
    Tick now = eventq.curTick();
    for (auto &cb : pending)
        scheduleAt(eventq, now, std::move(cb));
}

// ----------------------------------------------------------------------
// Drain engine
// ----------------------------------------------------------------------

bool
MemController::drainAllowed() const
{
    // Writes drain opportunistically: the bank-free issue gate plus
    // PCM write pausing keep them off the read critical path, so there
    // is no reason to hold the queues back.
    return !(dataQ.empty() && ctrQ.empty());
}

void
MemController::kickDrain()
{
    while (inflightWrites < maxInflightWrites && drainAllowed()) {
        if (!issueOneWrite())
            break;
    }
}

bool
MemController::issueOneWrite()
{
    Tick now = eventq.curTick();

    DataEntry *data_pick = nullptr;
    CtrEntry *ctr_pick = nullptr;

    // Writes are only handed to the device once their bank is free —
    // reserving a busy bank would park the shared bus in the future
    // and block later reads. When every candidate's bank is busy, a
    // drain kick is scheduled for the earliest bank-free tick.
    //
    // All designs share the bank-aware scheduler: the oldest ready,
    // unpinned entry whose bank is free, from whichever queue is
    // fuller relative to its capacity. FCA's penalties are the
    // ready-bit pairing, the per-write counter traffic and the
    // counter-queue occupancy it induces (sections 3.2.2 and 4.1), not
    // an artificial drain order.
    Tick earliest_busy = maxTick;

    for (DataEntry &e : dataQ) {
        if (e.issued || !e.ready)
            continue;
        if (nvm.bankFree(e.addr, now)) {
            data_pick = &e;
            break;
        }
        earliest_busy = std::min(earliest_busy, nvm.bankFreeTick(e.addr));
    }
    for (CtrEntry &e : ctrQ) {
        if (e.issued || !e.ready || e.pendingPartners != 0)
            continue;
        if (nvm.bankFree(e.addr, now)) {
            ctr_pick = &e;
            break;
        }
        earliest_busy = std::min(earliest_busy, nvm.bankFreeTick(e.addr));
    }
    if (data_pick != nullptr && ctr_pick != nullptr) {
        double data_fill = static_cast<double>(dataQ.size())
                         / cfg.dataWqEntries;
        double ctr_fill = static_cast<double>(ctrQ.size())
                        / cfg.ctrWqEntries;
        if (ctr_fill > data_fill)
            data_pick = nullptr;
        else
            ctr_pick = nullptr;
    }

    if (data_pick == nullptr && ctr_pick == nullptr
        && earliest_busy != maxTick && !drainKickPending) {
        drainKickPending = true;
        std::uint64_t epoch = pipelineEpoch;
        scheduleAt(eventq, std::max(earliest_busy, now + 1),
                   [this, epoch]() {
            if (epoch != pipelineEpoch)
                return; // crash() already reset drainKickPending
            drainKickPending = false;
            kickDrain();
        });
    }

    // Burst-completion events carry the pipeline epoch: a power failure
    // empties the queues and zeroes inflightWrites, so a completion
    // scheduled before the failure must become a no-op, not decrement
    // the freshly-zeroed counter of the next epoch.
    if (data_pick != nullptr) {
        data_pick->issued = true;
        ++inflightWrites;
        Tick done = nvm.scheduleWrite(data_pick->addr, now,
                                      data_pick->busBytes);
        std::uint64_t seq = data_pick->seq;
        std::uint64_t epoch = pipelineEpoch;
        scheduleAt(eventq, done, [this, seq, epoch]() {
            if (epoch == pipelineEpoch)
                completeDataDrain(seq);
        });
        return true;
    }
    if (ctr_pick != nullptr) {
        ctr_pick->issued = true;
        ++inflightWrites;
        unsigned touched = std::popcount(ctr_pick->dirtyMask);
        if (touched == 0)
            touched = 1;
        Tick done = nvm.scheduleWrite(ctr_pick->addr, now,
                                      touched * counterBytes);
        std::uint64_t seq = ctr_pick->seq;
        std::uint64_t epoch = pipelineEpoch;
        scheduleAt(eventq, done, [this, seq, epoch]() {
            if (epoch == pipelineEpoch)
                completeCtrDrain(seq);
        });
        return true;
    }
    // Nothing eligible right now; a later completion or insertion will
    // kick the drain again.
    return false;
}

void
MemController::persistDataEntry(const DataEntry &entry)
{
    {
        std::lock_guard<std::mutex> lock(nvm.imageMutex());
        persistDataEntryTo(nvm.persistedState(), entry);
    }
    // The co-located and ideal designs persist the covering counter
    // word inside the data drain itself; mirror that into the tree.
    switch (cfg.design) {
      case DesignPoint::Colocated:
      case DesignPoint::ColocatedCC:
      case DesignPoint::Ideal:
        noteCounterPersist(counterLineAddr(entry.addr));
        break;
      default:
        break;
    }
}

void
MemController::persistDataEntryTo(PersistImage &img,
                                  const DataEntry &entry) const
{
    img.drainData(entry.addr, entry.cipher, entry.counter);
    // Integrity metadata rides the same burst in the ECC spare bits:
    // persisted atomically with the line, costing no extra traffic.
    if (cfg.integrityMac) {
        img.drainMac(entry.addr, ctrEngine.lineMac(entry.addr,
                                                   entry.counter,
                                                   entry.cipher));
    }

    // Designs whose counter persistence accompanies the data write.
    switch (cfg.design) {
      case DesignPoint::Colocated:
      case DesignPoint::ColocatedCC: {
        Addr ctr_addr = counterLineAddr(entry.addr);
        CounterLine values = img.persistedCounters(ctr_addr);
        values[counterSlot(entry.addr)] = entry.counter;
        img.drainCounters(ctr_addr, values);
        break;
      }
      case DesignPoint::Ideal: {
        Addr ctr_addr = counterLineAddr(entry.addr);
        CounterLine values = img.persistedCounters(ctr_addr);
        values[counterSlot(entry.addr)] =
            std::max(values[counterSlot(entry.addr)], entry.counter);
        img.drainCounters(ctr_addr, values);
        break;
      }
      default:
        break;
    }
}

unsigned
MemController::readyEntryCount() const
{
    unsigned n = 0;
    for (const DataEntry &entry : dataQ)
        n += entry.ready;
    for (const CtrEntry &entry : ctrQ)
        n += entry.ready && entry.pendingPartners == 0;
    return n;
}

std::vector<std::uint64_t>
MemController::readyDataSeqs() const
{
    std::vector<std::uint64_t> seqs;
    seqs.reserve(dataQ.size());
    for (const DataEntry &entry : dataQ) {
        if (entry.ready)
            seqs.push_back(entry.seq);
    }
    return seqs;
}

std::vector<std::uint64_t>
MemController::readyCtrSeqs() const
{
    std::vector<std::uint64_t> seqs;
    seqs.reserve(ctrQ.size());
    for (const CtrEntry &entry : ctrQ) {
        if (entry.ready && entry.pendingPartners == 0)
            seqs.push_back(entry.seq);
    }
    return seqs;
}

AdrCut
MemController::cutFor(unsigned adr_drop_tail) const
{
    unsigned ready_data = 0;
    for (const DataEntry &entry : dataQ)
        ready_data += entry.ready;
    unsigned ready_ctr = readyEntryCount() - ready_data;

    unsigned budget = ready_data + ready_ctr;
    budget -= std::min(adr_drop_tail, budget);

    AdrCut cut;
    cut.dataKeep = std::min(budget, ready_data);
    cut.ctrKeep = budget - cut.dataKeep;
    cut.flushTree = true;
    return cut;
}

void
MemController::captureCrashState(PersistImage &img,
                                 unsigned adr_drop_tail) const
{
    captureCrashStateWithCut(img, cutFor(adr_drop_tail));
}

void
MemController::captureCrashStateWithCut(PersistImage &img,
                                        const AdrCut &cut) const
{
    // Same ADR semantics and the same order as the crash path: every
    // kept ready data entry in queue (age) order, then every kept
    // fully-paired ready counter entry — the order matters for the
    // co-located designs, whose data drains read-modify-write the
    // counter store. An energy-exhaustion fault loses the tail of the
    // *global* drain order, which computeDrainKeeps has already
    // translated into the per-channel keep prefixes of @p cut.
    unsigned data_keep = cut.dataKeep;
    unsigned ctr_keep = cut.ctrKeep;
    for (const DataEntry &entry : dataQ) {
        if (entry.ready && data_keep > 0) {
            persistDataEntryTo(img, entry);
            --data_keep;
        }
    }
    for (const CtrEntry &entry : ctrQ) {
        if (entry.ready && entry.pendingPartners == 0 && ctr_keep > 0) {
            img.drainCounters(entry.addr, entry.values);
            --ctr_keep;
        }
    }

    // The ADR budget's last act: flush the integrity tree, root last.
    // The controller's volatile mirror is (by the noteCounterPersist
    // hooks) the tree of the persisted counter store, so the flush is
    // modeled as a rebuild from the image's own store — crucially
    // *after* the drain overlay above, and before the fault model gets
    // its turn, which is why a replayed counter word can never agree
    // with the persisted tree. Multi-channel callers clear flushTree
    // and rebuild once over the merged image after *every* channel has
    // drained, so the root is globally last.
    if (cut.flushTree && cfg.integrityTree)
        rebuildTree(img, cfg.counterRegionBase, 0, ~Addr(0));
}

void
MemController::completeDataDrain(std::uint64_t seq)
{
    DataIter it = locateDataEntry(seq);
    if (it != dataQ.end()) {
        persistDataEntry(*it);
        unindexDataEntry(it);
        dataQ.erase(it);
        verifyIndexes();
    }
    cnvm_assert(inflightWrites > 0);
    --inflightWrites;
    emitEvent(CtlEvent::DataDrain);
    drainPendingCcEvictions();
    processLandings();
    notifyRetries();
    // Defer the next issue to the end of the tick (MaxPriority) so the
    // retries notified above — same tick, DefaultPriority — run first.
    // Kicking synchronously here would let a steady supply of ready
    // counter writes re-issue the hot counter line before any blocked
    // writer gets its re-attempt in, starving pair-blocked writes
    // indefinitely under high core counts.
    scheduleDrainKick();
}

void
MemController::completeCtrDrain(std::uint64_t seq)
{
    CtrIter it = locateCtrEntry(seq);
    if (it != ctrQ.end()) {
        {
            std::lock_guard<std::mutex> lock(nvm.imageMutex());
            nvm.drainCounters(it->addr, it->values);
        }
        noteCounterPersist(it->addr);
        unindexCtrEntry(it);
        ctrQ.erase(it);
        verifyIndexes();
    }
    cnvm_assert(inflightWrites > 0);
    --inflightWrites;
    emitEvent(CtlEvent::CtrDrain);
    drainPendingCcEvictions();
    processLandings();
    notifyRetries();
    // Same ordering contract as completeDataDrain: retries first, then
    // the end-of-tick drain kick, so a completed counter-line write
    // opens a real admission window for pair-blocked writers.
    scheduleDrainKick();
}

void
MemController::initLine(Addr line_addr, const LineData &plaintext)
{
    cnvm_assert(isLineAligned(line_addr));

    if (cfg.design == DesignPoint::NoEncryption) {
        nvm.drainData(line_addr, plaintext);
        if (cfg.integrityMac) {
            nvm.persistedState().drainMac(
                line_addr, ctrEngine.lineMac(line_addr, 0, plaintext));
        }
        return;
    }

    std::uint64_t counter = ++globalCounter;
    currentCounter[line_addr] = counter;
    LineData cipher = ctrEngine.encrypt(line_addr, counter, plaintext);
    nvm.drainData(line_addr, cipher, counter);
    if (cfg.integrityMac) {
        nvm.persistedState().drainMac(
            line_addr, ctrEngine.lineMac(line_addr, counter, cipher));
    }

    Addr ctr_addr = counterLineAddr(line_addr);
    CounterLine values = nvm.persistedCounters(ctr_addr);
    values[counterSlot(line_addr)] = counter;
    nvm.drainCounters(ctr_addr, values);
}

void
MemController::warmCounterLine(Addr data_line_addr)
{
    if (counterCache == nullptr)
        return;
    Addr ctr_addr = counterLineAddr(data_line_addr);
    if (counterCache->peek(ctr_addr) != nullptr)
        return;
    CounterLine values = designSeparateCounters(cfg.design)
        ? memoryViewCounters(ctr_addr)
        : currentCounters(ctr_addr);
    auto victim = counterCache->install(ctr_addr, values, 0);
    // Warming installs clean lines only; victims are clean too.
    cnvm_assert(!victim.has_value());
}

// ----------------------------------------------------------------------
// Crash
// ----------------------------------------------------------------------

void
MemController::crash(unsigned adr_drop_tail)
{
    crashWithCut(cutFor(adr_drop_tail));
}

void
MemController::crashWithCut(const AdrCut &cut)
{
    // ADR: drain exactly the kept ready entries (section 5.2.2, steps
    // 4-5). An injected energy-exhaustion fault loses the tail of the
    // global drain order; this channel's lost entries count as dropped.
    unsigned data_keep = cut.dataKeep;
    unsigned ctr_keep = cut.ctrKeep;
    for (const DataEntry &entry : dataQ) {
        if (entry.ready && data_keep > 0) {
            // Raw persistence, not persistDataEntry(): the lazy tree
            // hooks stay out of the dying drain — the full tree flush
            // below covers everything, exactly as in
            // captureCrashState().
            persistDataEntryTo(nvm.persistedState(), entry);
            --data_keep;
        } else {
            ++crashDroppedData;
        }
    }
    for (const CtrEntry &entry : ctrQ) {
        if (entry.ready && entry.pendingPartners == 0 && ctr_keep > 0) {
            nvm.drainCounters(entry.addr, entry.values);
            --ctr_keep;
        } else {
            ++crashDroppedCtr;
        }
    }

    // The ADR budget's last act: flush the integrity tree, root last
    // (see captureCrashState for why this is a rebuild from the
    // post-drain store, and why it precedes any injected fault). The
    // multi-channel coordinator clears flushTree and rebuilds globally
    // once all channels have drained.
    if (cut.flushTree && cfg.integrityTree)
        rebuildTree(nvm.persistedState(), cfg.counterRegionBase, 0,
                    ~Addr(0));

    // In the ideal design every counter is persisted alongside its data
    // at drain time, so nothing in the counter cache can be lost; no
    // extra work is needed here.

    ++pipelineEpoch; // in-flight pipeline events become no-ops
    pipelineWrites = 0;
    landingQ.clear();
    dataQ.clear();
    ctrQ.clear();
    dataBySeq.clear();
    ctrBySeq.clear();
    dataByAddr.clear();
    ctrByAddr.clear();
    pendingLineWrites.clear();
    inflightWrites = 0;
    outstandingReads = 0;
    pendingCcEvictions.clear();
    retryCallbacks.clear();
    dirtyTreeLeaves.clear(); // flushed above; the mirror dies with us

    // The encryption engine's counter registers are volatile and die
    // with the power failure; what survives is the persisted counter
    // region. Model the recovery-time counter scan here (shared with
    // the resume-after-recovery path, which re-seeds a fresh system
    // from a recovered image the same way).
    reseedFromPersistedImage();

    cnvm_assert(writesIdle());
    cnvm_assert(outstandingReads == 0);
}

void
MemController::reseedFromPersistedImage()
{
    // Rebuild the per-line current counters from the persisted store
    // and restart the global counter strictly above every persisted
    // value, so a post-crash (or post-resume) write can never re-pair
    // a persisted counter with new ciphertext (see DESIGN.md,
    // "Counter state across a power failure").
    currentCounter.clear();
    globalCounter = 0;
    for (const auto &[ctr_addr, values] : nvm.persistedCounterLines()) {
        // The image is shared across channels; this channel's engine
        // only rebuilds the counters of the lines it owns.
        if (ctrLineChannel(ctr_addr) != cfg.channelId)
            continue;
        std::uint64_t first_line =
            (ctr_addr - cfg.counterRegionBase) / lineBytes
            * countersPerLine;
        for (unsigned s = 0; s < countersPerLine; ++s) {
            if (values[s] == 0)
                continue;
            currentCounter[(first_line + s) * lineBytes] = values[s];
            globalCounter = std::max(globalCounter, values[s]);
        }
    }
    // Pending kick events from before the failure are epoch-guarded
    // no-ops, so they will never clear these flags themselves; left
    // set, they would wedge the drain engine of the post-crash state.
    kickScheduled = false;
    drainKickPending = false;
    if (counterCache != nullptr)
        counterCache->reset();
}

} // namespace cnvm
