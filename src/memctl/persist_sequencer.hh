/**
 * @file
 * Cross-channel persist ordering (the multi-queue atomicity idiom).
 *
 * Every write-queue entry on every channel draws its sequence number
 * from one shared PersistSequencer, so program persist order is a
 * single global total order even though the entries live in N
 * independent per-channel queues. The ADR drain contract ("the K
 * oldest ready entries survive a power failure") is then defined over
 * that global order: computeDrainKeeps() turns a global drop count
 * into a per-channel keep *prefix* — a commit record enqueued on
 * channel 0 after its undo entries on channel 3 can never be kept
 * while the undo entries are dropped, because its sequence number is
 * strictly larger.
 *
 * The simulation is single-threaded (one event queue), so the
 * sequencer needs no synchronization; determinism comes from the
 * event order, which is already deterministic.
 */

#ifndef CNVM_MEMCTL_PERSIST_SEQUENCER_HH
#define CNVM_MEMCTL_PERSIST_SEQUENCER_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace cnvm
{

/** Shared monotonic sequence source for all channels' queue entries. */
class PersistSequencer
{
  public:
    std::uint64_t acquire() { return next++; }

    /** The next sequence number that acquire() would hand out. */
    std::uint64_t peek() const { return next; }

    void reset() { next = 1; }

  private:
    std::uint64_t next = 1;
};

/**
 * One channel's share of a global ADR cut: how many of its oldest
 * ready data entries and oldest ready (fully paired) counter entries
 * drain before power is lost. Keeps are always prefixes of the
 * per-channel ready lists in sequence order.
 */
struct AdrCut
{
    unsigned dataKeep = 0;
    unsigned ctrKeep = 0;

    /**
     * Whether the channel rebuilds the integrity tree over its image
     * after draining. Single-channel callers leave this set; the
     * multi-channel coordinator clears it and rebuilds the tree once,
     * globally, so the root is persisted last across *all* channels.
     */
    bool flushTree = true;
};

/** The ready (ADR-eligible) entries of one channel, by sequence. */
struct ChannelReady
{
    /** Sequence numbers of ready data entries, ascending. */
    std::vector<std::uint64_t> dataSeqs;

    /** Sequence numbers of ready, fully paired counter entries,
     *  ascending. */
    std::vector<std::uint64_t> ctrSeqs;
};

/**
 * Computes the per-channel keep prefixes for a global ADR drain that
 * loses the @p drop youngest ready entries.
 *
 * Matches the single-channel drain order exactly: all ready data
 * entries persist before any counter entry, each class in global
 * sequence order. The returned cuts have flushTree = false — the
 * caller owns the global tree rebuild.
 */
inline std::vector<AdrCut>
computeDrainKeeps(const std::vector<ChannelReady> &ready, unsigned drop)
{
    struct Tagged
    {
        std::uint64_t seq;
        unsigned channel;
    };

    std::vector<Tagged> data;
    std::vector<Tagged> ctr;
    for (unsigned c = 0; c < ready.size(); ++c) {
        for (std::size_t i = 0; i < ready[c].dataSeqs.size(); ++i) {
            cnvm_assert(i == 0 || ready[c].dataSeqs[i - 1]
                                      < ready[c].dataSeqs[i]);
            data.push_back({ready[c].dataSeqs[i], c});
        }
        for (std::size_t i = 0; i < ready[c].ctrSeqs.size(); ++i) {
            cnvm_assert(i == 0 || ready[c].ctrSeqs[i - 1]
                                      < ready[c].ctrSeqs[i]);
            ctr.push_back({ready[c].ctrSeqs[i], c});
        }
    }
    auto by_seq = [](const Tagged &a, const Tagged &b)
    { return a.seq < b.seq; };
    std::sort(data.begin(), data.end(), by_seq);
    std::sort(ctr.begin(), ctr.end(), by_seq);

    std::uint64_t total = data.size() + ctr.size();
    std::uint64_t budget = total - std::min<std::uint64_t>(drop, total);

    std::vector<AdrCut> cuts(ready.size());
    for (auto &cut : cuts)
        cut.flushTree = false;
    for (const Tagged &t : data) {
        if (budget == 0)
            break;
        ++cuts[t.channel].dataKeep;
        --budget;
    }
    for (const Tagged &t : ctr) {
        if (budget == 0)
            break;
        ++cuts[t.channel].ctrKeep;
        --budget;
    }
    return cuts;
}

} // namespace cnvm

#endif // CNVM_MEMCTL_PERSIST_SEQUENCER_HH
