/**
 * @file
 * Cross-channel persist ordering (the multi-queue atomicity idiom).
 *
 * Every write-queue entry on every channel draws its sequence number
 * from one shared PersistSequencer, so program persist order is a
 * single global total order even though the entries live in N
 * independent per-channel queues. The ADR drain contract ("the K
 * oldest ready entries survive a power failure") is then defined over
 * that global order: computeDrainKeeps() turns a global drop count
 * into a per-channel keep *prefix* — a commit record enqueued on
 * channel 0 after its undo entries on channel 3 can never be kept
 * while the undo entries are dropped, because its sequence number is
 * strictly larger.
 *
 * The classic kernel runs single-threaded (one event queue), so one
 * shared sequencer handing out next++ needs no synchronization;
 * determinism comes from the event order, which is already
 * deterministic.
 *
 * The partitioned kernel (--sim-jobs) runs each channel's event queue
 * on its own host thread, so a shared counter would make persist order
 * a race. There each channel owns a *stamped* sequencer instead: the
 * sequence number packs (simulated tick, channel id, per-tick index),
 * making global persist order a pure function of simulated time — the
 * same total order at any host-thread count. Program-ordered persists
 * on different channels are separated by fences (and thus by at least
 * one tick of simulated latency), so the tick field alone orders them;
 * the channel field only breaks ties between *concurrent* persists,
 * which have no program-order relation to preserve. Per-channel stamps
 * stay strictly ascending (the queues consume entries in issue order
 * at monotone ticks), so computeDrainKeeps() and the per-seq indexes
 * work unchanged on either stamp flavor.
 */

#ifndef CNVM_MEMCTL_PERSIST_SEQUENCER_HH
#define CNVM_MEMCTL_PERSIST_SEQUENCER_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace cnvm
{

/**
 * Monotonic sequence source for queue entries. Legacy mode (default):
 * a shared counter, one instance for all channels. Stamped mode: one
 * instance per channel, stamps encoding (tick, channel, per-tick
 * index) so that numeric order across channels equals simulated-time
 * order.
 */
class PersistSequencer
{
  public:
    /** Bits for the per-tick index (low) and the channel id (middle);
     *  the simulated tick occupies the remaining high 42 bits. */
    static constexpr unsigned localBits = 16;
    static constexpr unsigned channelBits = 6;

    /**
     * Switches this instance to tick-stamped mode for @p channel_id.
     * Must be called before the first acquire().
     */
    void
    enableStamped(unsigned channel_id)
    {
        cnvm_assert(channel_id < (1u << channelBits));
        stamped = true;
        channel = channel_id;
    }

    std::uint64_t
    acquire(Tick now)
    {
        if (!stamped)
            return next++;
        if (now != stampTick) {
            cnvm_assert(now > stampTick || stampLocal == 0);
            stampTick = now;
            stampLocal = 0;
        }
        cnvm_assert(now < (Tick(1) << (64 - channelBits - localBits)));
        cnvm_assert(stampLocal < (1u << localBits));
        return (now << (channelBits + localBits))
               | (std::uint64_t(channel) << localBits)
               | std::uint64_t(stampLocal++);
    }

    std::uint64_t
    acquire()
    {
        cnvm_assert(!stamped);
        return next++;
    }

    /** The next sequence number that acquire() would hand out
     *  (legacy mode only). */
    std::uint64_t peek() const { return next; }

    void
    reset()
    {
        next = 1;
        stampTick = 0;
        stampLocal = 0;
    }

  private:
    std::uint64_t next = 1;
    bool stamped = false;
    unsigned channel = 0;
    Tick stampTick = 0;
    std::uint32_t stampLocal = 0;
};

/**
 * One channel's share of a global ADR cut: how many of its oldest
 * ready data entries and oldest ready (fully paired) counter entries
 * drain before power is lost. Keeps are always prefixes of the
 * per-channel ready lists in sequence order.
 */
struct AdrCut
{
    unsigned dataKeep = 0;
    unsigned ctrKeep = 0;

    /**
     * Whether the channel rebuilds the integrity tree over its image
     * after draining. Single-channel callers leave this set; the
     * multi-channel coordinator clears it and rebuilds the tree once,
     * globally, so the root is persisted last across *all* channels.
     */
    bool flushTree = true;
};

/** The ready (ADR-eligible) entries of one channel, by sequence. */
struct ChannelReady
{
    /** Sequence numbers of ready data entries, ascending. */
    std::vector<std::uint64_t> dataSeqs;

    /** Sequence numbers of ready, fully paired counter entries,
     *  ascending. */
    std::vector<std::uint64_t> ctrSeqs;
};

/**
 * Computes the per-channel keep prefixes for a global ADR drain that
 * loses the @p drop youngest ready entries.
 *
 * Matches the single-channel drain order exactly: all ready data
 * entries persist before any counter entry, each class in global
 * sequence order. The returned cuts have flushTree = false — the
 * caller owns the global tree rebuild.
 */
inline std::vector<AdrCut>
computeDrainKeeps(const std::vector<ChannelReady> &ready, unsigned drop)
{
    struct Tagged
    {
        std::uint64_t seq;
        unsigned channel;
    };

    std::vector<Tagged> data;
    std::vector<Tagged> ctr;
    for (unsigned c = 0; c < ready.size(); ++c) {
        for (std::size_t i = 0; i < ready[c].dataSeqs.size(); ++i) {
            cnvm_assert(i == 0 || ready[c].dataSeqs[i - 1]
                                      < ready[c].dataSeqs[i]);
            data.push_back({ready[c].dataSeqs[i], c});
        }
        for (std::size_t i = 0; i < ready[c].ctrSeqs.size(); ++i) {
            cnvm_assert(i == 0 || ready[c].ctrSeqs[i - 1]
                                      < ready[c].ctrSeqs[i]);
            ctr.push_back({ready[c].ctrSeqs[i], c});
        }
    }
    auto by_seq = [](const Tagged &a, const Tagged &b)
    { return a.seq < b.seq; };
    std::sort(data.begin(), data.end(), by_seq);
    std::sort(ctr.begin(), ctr.end(), by_seq);

    std::uint64_t total = data.size() + ctr.size();
    std::uint64_t budget = total - std::min<std::uint64_t>(drop, total);

    std::vector<AdrCut> cuts(ready.size());
    for (auto &cut : cuts)
        cut.flushTree = false;
    for (const Tagged &t : data) {
        if (budget == 0)
            break;
        ++cuts[t.channel].dataKeep;
        --budget;
    }
    for (const Tagged &t : ctr) {
        if (budget == 0)
            break;
        ++cuts[t.channel].ctrKeep;
        --budget;
    }
    return cuts;
}

} // namespace cnvm

#endif // CNVM_MEMCTL_PERSIST_SEQUENCER_HH
