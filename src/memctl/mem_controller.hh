/**
 * @file
 * The encrypted-NVMM memory controller (paper section 5).
 *
 * Hosts the encryption engine, the counter cache, the read path, and the
 * two ADR-protected write queues (data and counter) with the ready-bit
 * pairing protocol that enforces counter-atomicity. One controller
 * instance implements all evaluated design points; the DesignPoint
 * selects the policy at each decision site.
 *
 * Key invariant (crash safety): a counter value may become eligible for
 * persistence (visible in the counter cache, or resident in a ready
 * counter-queue entry) only once the matching ciphertext is itself
 * ADR-protected, or in the same atomic ready-pairing action. The unsafe
 * direction — counter persisted ahead of its data — is exactly the
 * Figure-4 failure, and only the Unsafe design permits it.
 */

#ifndef CNVM_MEMCTL_MEM_CONTROLLER_HH
#define CNVM_MEMCTL_MEM_CONTROLLER_HH

#include <array>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "crypto/ctr_engine.hh"
#include "mem/mem_backend.hh"
#include "memctl/counter_cache.hh"
#include "memctl/design.hh"
#include "memctl/persist_sequencer.hh"
#include "nvm/nvm_device.hh"
#include "sim/eventq.hh"
#include "stats/stats.hh"

namespace cnvm
{

/**
 * Semantic controller events observable from outside the timing model.
 * The crash injector arms power failures at the Nth occurrence of one
 * of these ("crash mid-encryption-pipeline", "crash at the 40th counter
 * eviction"), which is how the sweep reaches controller states a
 * runtime-fraction crash point can never hit reliably.
 */
enum class CtlEvent : unsigned
{
    PipelineEnter = 0, //!< a write entered the encryption pipeline
    PairAction,        //!< a ready-bit data/counter pairing completed
    DirtyEviction,     //!< a dirty counter line left the counter cache
    DataDrain,         //!< a data write-queue entry drained to the device
    CtrDrain,          //!< a counter write-queue entry drained
};

constexpr unsigned numCtlEvents = 5;

inline const char *
ctlEventName(CtlEvent ev)
{
    switch (ev) {
      case CtlEvent::PipelineEnter: return "pipeline-enter";
      case CtlEvent::PairAction: return "pair-action";
      case CtlEvent::DirtyEviction: return "dirty-eviction";
      case CtlEvent::DataDrain: return "data-drain";
      case CtlEvent::CtrDrain: return "ctr-drain";
    }
    return "?";
}

/** Controller geometry and latencies (paper Table 2 defaults). */
struct MemCtlConfig
{
    DesignPoint design = DesignPoint::SCA;

    unsigned dataWqEntries = 64;
    unsigned ctrWqEntries = 16;

    /**
     * Counter-cache capacity of *this controller instance*. At the
     * System level MemCtlConfig::counterCacheBytes is the explicit
     * total across all channels (it no longer scales with core count);
     * System splits it evenly per channel before construction.
     */
    std::uint64_t counterCacheBytes = 1ull << 20;
    unsigned counterCacheAssoc = 16;

    /**
     * Multi-channel identity: how many channels shard the address
     * space, and which shard this controller owns. Every channel
     * registers under the canonical "memctl.chN.*" / "ctrcache.chN.*"
     * names; channel 0 additionally registers the legacy flat names
     * ("memctl.*", "ctrcache.*") as lookup aliases.
     */
    unsigned numChannels = 1;
    unsigned channelId = 0;

    /** AES engine latency for OTP generation (Table 2: 40 ns). */
    Tick encLatency = nsToTicks(40);

    /** Controller pipeline overhead for unencrypted acceptance. */
    Tick acceptLatency = nsToTicks(5);

    /**
     * Extra acceptance latency of a counter-atomic write: the NVM
     * coordinator and encryption engine cross-check both write queues
     * and set the ready bits (section 5.2.2, steps 5-7).
     */
    Tick pairLatency = nsToTicks(15);

    /** Latency of servicing a read from a matching write-queue entry. */
    Tick forwardLatency = nsToTicks(20);

    /** Base of the separate counter address space (above 8 GB data). */
    Addr counterRegionBase = Addr(1) << 33;

    /** Write-queue occupancy (percent) beyond which writes drain even
     *  while reads are outstanding. */
    unsigned hiWatermarkPct = 75;

    /**
     * Address-match write combining in the write queues. On by
     * default (standard controller behaviour); the ablation harness
     * turns it off to show why the paper's hot undo-log lines depend
     * on it.
     */
    bool writeCombining = true;

    /**
     * Selects the O(1)/O(log n) indexed lookups over the write queues
     * (address and sequence maps) instead of the reference linear
     * scans. Both paths are maintained and must be observably
     * identical; the reference path exists for the bench harness to
     * prove it (and as the arbiter when the debug cross-check fires).
     */
    bool useQueueIndex = true;

    /**
     * Per-line integrity metadata: a truncated MAC over (address,
     * counter, ciphertext) persisted in the line's ECC spare bits
     * atomically with its write burst, so it adds no bus traffic and
     * no timing. Recovery verifies it before trusting any decryption
     * (see RecoveredImage), which is what turns media faults from
     * silent garbage into detected — and often repairable —
     * corruption. Off by default: the baseline designs the paper
     * evaluates carry no integrity metadata, and the Unsafe design's
     * negative-control classifications depend on garbage going
     * undetected.
     */
    bool integrityMac = false;

    /**
     * Osiris-style repair bound: on a MAC mismatch, recovery trial-
     * verifies counters within this distance of the stored value
     * before declaring the line unrecoverable.
     */
    unsigned macRepairWindow = 64;

    /**
     * Bonsai Merkle Tree over the persisted counter store (see
     * integrity/integrity_tree.hh): the controller mirrors every
     * persisted counter into a volatile tree, writes dirty nodes back
     * lazily on epoch boundaries, and flushes the tree — root last —
     * through the ADR path at a power failure. Closes the replay hole
     * per-line MACs leave open, at the cost of tree-node write
     * traffic. Implies integrityMac (the tree authenticates counters;
     * the MAC still authenticates ciphertext).
     */
    bool integrityTree = false;

    /**
     * Lazy-update epoch: dirty tree nodes coalesce across this many
     * counter-store persists before one batched write-back (Freij et
     * al.). Larger epochs coalesce more and write less; the crash
     * flush covers whatever is still dirty either way.
     */
    unsigned treeEpochDrains = 8;

    /** AES-128 key used by the encryption engine. */
    std::array<std::uint8_t, 16> key{
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
};

class MemController : public MemBackend
{
  public:
    /**
     * @param sequencer shared cross-channel persist-order source; null
     *        (single-channel and unit-test construction) gives the
     *        controller a private sequencer with identical numbering.
     */
    MemController(EventQueue &eq, NvmDevice &nvm, const MemCtlConfig &cfg,
                  stats::StatRegistry *registry,
                  PersistSequencer *sequencer = nullptr);

    // ------------------------------------------------------------------
    // MemBackend interface (cache-side)
    // ------------------------------------------------------------------
    void issueRead(Addr addr, unsigned core_id, ReadCallback done) override;
    bool tryWrite(const WriteReq &req) override;
    bool tryCtrWriteback(Addr data_line_addr,
                         std::function<void()> accepted) override;
    void registerRetry(std::function<void()> retry) override;
    LineData functionalRead(Addr addr) const override;
    void functionalStore(Addr addr, unsigned size,
                         const std::uint8_t *bytes) override;

    // ------------------------------------------------------------------
    // Crash machinery
    // ------------------------------------------------------------------

    /**
     * Models a power failure: the ADR logic drains exactly the
     * ready-marked queue entries into the NVM image, then all volatile
     * controller state (counter cache, queues, pipeline) is lost
     * (paper section 5.2.2, "Steps During a System Failure").
     *
     * @param adr_drop_tail entries the dying energy budget fails to
     *        drain, taken off the *tail* of the drain order (data
     *        entries in age order, then counter entries) — the
     *        fault model's energy-exhaustion knob. 0 = the clean,
     *        fully-budgeted drain.
     */
    void crash(unsigned adr_drop_tail = 0);

    /**
     * The fork-capture half of crash(): applies the ADR drain of the
     * ready-marked queue entries to @p img — a *copy* of the device's
     * persisted state — instead of to the device itself, and tears
     * nothing down. After this overlay, @p img holds exactly what
     * recovery would find had the power failed at this instant, while
     * the live controller keeps running untouched. Deliberately
     * side-effect free: no stats counters (crashDroppedData/Ctr stay
     * put) and no queue or cache mutation, so a trunk run with any
     * number of captures is byte-identical to an unarmed run.
     *
     * @param adr_drop_tail as for crash(): ready entries lost off the
     *        drain tail.
     */
    void captureCrashState(PersistImage &img,
                           unsigned adr_drop_tail = 0) const;

    /**
     * The single-channel ADR cut for @p adr_drop_tail dropped entries:
     * all ready data entries first, then fully-paired ready counter
     * entries, losing the tail. crash()/captureCrashState() are
     * exactly crashWithCut(cutFor(n)) / captureCrashStateWithCut().
     */
    AdrCut cutFor(unsigned adr_drop_tail) const;

    /**
     * Multi-channel crash: drains the keep-prefixes of @p cut (as
     * computed globally by computeDrainKeeps over every channel's
     * ready entries) and tears down the volatile state of this
     * channel. With cut.flushTree cleared, the caller owns the global
     * integrity-tree rebuild over the merged image.
     */
    void crashWithCut(const AdrCut &cut);

    /** Fork-capture twin of crashWithCut(): overlay only, no
     *  teardown, no stats movement. */
    void captureCrashStateWithCut(PersistImage &img,
                                  const AdrCut &cut) const;

    /**
     * Rebuilds this channel's volatile counter state from the
     * device's persisted counter store: per-line current counters,
     * the global counter (restarted strictly above every persisted
     * value), drain-kick flags, and a cold counter cache. This is the
     * tail of crashWithCut(), exposed for the resume-after-recovery
     * path — a fresh system re-seeded from a recovered image installs
     * the image into the device and then calls this, making resumed
     * controller state equivalent to post-crash() rebuilt state by
     * construction (DESIGN.md section 4i).
     */
    void reseedFromPersistedImage();

    /** Sequence numbers of ready data entries, in queue (age) order —
     *  one channel's input to computeDrainKeeps(). */
    std::vector<std::uint64_t> readyDataSeqs() const;

    /** Sequence numbers of ready, fully paired counter entries, in
     *  queue order. */
    std::vector<std::uint64_t> readyCtrSeqs() const;

    /**
     * Ready-marked entries the ADR drain would persist right now
     * (ready data entries plus fully-paired ready counter entries) —
     * the population the fault model draws its energy-exhaustion drop
     * from.
     */
    unsigned readyEntryCount() const;

    /**
     * Zero-time setup helper: installs a line into the persisted image
     * (encrypted, with its counter persisted alongside), as a freshly
     * initialized system would hold it. Not part of the timing model.
     */
    void initLine(Addr line_addr, const LineData &plaintext);

    /**
     * Zero-time setup helper: pre-warms the counter cache with the
     * (clean) counter line covering @p data_line_addr, modelling a
     * steady-state region of interest rather than a cold machine.
     */
    void warmCounterLine(Addr data_line_addr);

    // ------------------------------------------------------------------
    // Address-space helpers (shared with the recovery engine)
    // ------------------------------------------------------------------

    /** Counter-line address covering @p data_line_addr. */
    Addr counterLineAddr(Addr data_line_addr) const;

    /** Slot of @p data_line_addr within its counter line. */
    unsigned counterSlot(Addr data_line_addr) const;

    const crypto::CtrEngine &engine() const { return ctrEngine; }
    DesignPoint design() const { return cfg.design; }
    const MemCtlConfig &config() const { return cfg; }

    /** Current occupancy of the data write queue (entries + reserved). */
    unsigned dataQueueOccupancy() const;
    /** Current occupancy of the counter write queue. */
    unsigned ctrQueueOccupancy() const;

    /** True when no write-queue entry or reservation is outstanding. */
    bool writesIdle() const;

    /** Writes parked behind the queues waiting for slots. */
    std::size_t landingDepth() const { return landingQ.size(); }

    /** Writes inside the encryption pipeline. */
    unsigned pipelineDepth() const { return pipelineWrites; }

    /** Writes handed to the device whose burst has not completed. */
    unsigned inflightDepth() const { return inflightWrites; }

    /** Reads issued to the controller whose data has not returned. */
    unsigned outstandingReadCount() const { return outstandingReads; }

    /**
     * Installs an observer invoked synchronously at each semantic
     * controller event. At most one observer; the crash injector and
     * the sweep's probe census are the intended users. The hook must
     * not re-enter the controller — defer any reaction (such as the
     * power failure itself) through the event queue.
     */
    void
    setEventHook(std::function<void(CtlEvent)> hook)
    {
        eventHook = std::move(hook);
    }

    // Exposed counters for tests and benches.
    stats::Scalar dataInserts;
    stats::Scalar ctrInserts;
    stats::Scalar ctrCoalesces;
    stats::Scalar dataCoalesces;
    stats::Scalar writeRejects;
    stats::Scalar readForwards;
    stats::Scalar atomicPairs;
    stats::Scalar pairBlocks;
    stats::Scalar ccFillReads;
    stats::Scalar crashDroppedData;
    stats::Scalar crashDroppedCtr;
    stats::Scalar ctrwbNoops;
    stats::Scalar treeLeafUpdates;
    stats::Scalar treeCoalesces;
    stats::Scalar treeNodeWrites;
    stats::Scalar treeFlushes;

  private:
    struct DataEntry
    {
        std::uint64_t seq;
        Addr addr;
        LineData cipher;
        std::uint64_t counter;
        bool counterAtomic;
        bool ready;
        bool issued;
        unsigned coreId;
        unsigned busBytes;
    };

    struct CtrEntry
    {
        std::uint64_t seq;
        Addr addr;              //!< counter-line address
        CounterLine values;
        bool ready;
        bool issued;
        /** Counter-atomic partners not yet queued (ready when zero). */
        unsigned pendingPartners;
        /** Which of the eight counters this write actually updates;
         *  the device is charged 8 B per touched counter. */
        std::uint8_t dirtyMask = 0xff;
    };

    EventQueue &eventq;
    NvmDevice &nvm;
    MemCtlConfig cfg;
    crypto::CtrEngine ctrEngine;
    std::unique_ptr<CounterCache> counterCache;

    std::list<DataEntry> dataQ;
    std::list<CtrEntry> ctrQ;

    /** Private fallback sequencer (single-channel construction). */
    PersistSequencer ownSequencer;

    /** Where queue entries draw their global persist order from. */
    PersistSequencer *sequencer;

    using DataIter = std::list<DataEntry>::iterator;
    using CtrIter = std::list<CtrEntry>::iterator;

    /**
     * Queue indexes. Hot paths — read forwarding, write combining,
     * pair blocking, drain completion — were linear scans over the
     * queues; these maps make them O(1) in the queue depth. The
     * per-address vectors hold iterators in insertion (age) order, so
     * "first unissued entry for this address" keeps its meaning. The
     * maps are maintained unconditionally; cfg.useQueueIndex only
     * selects which lookup algorithm answers queries.
     */
    std::unordered_map<std::uint64_t, DataIter> dataBySeq;
    std::unordered_map<std::uint64_t, CtrIter> ctrBySeq;
    std::unordered_map<Addr, std::vector<DataIter>> dataByAddr;
    std::unordered_map<Addr, std::vector<CtrIter>> ctrByAddr;

    /**
     * Line addresses of writes accepted by tryWrite() but not yet
     * landed in the data queue (still in the encryption pipeline or
     * the landing buffer), with multiplicity. Read forwarding must
     * consult these too: a read racing a write through the pipeline
     * would otherwise fetch stale data from the device.
     */
    std::unordered_map<Addr, unsigned> pendingLineWrites;

    /**
     * Writes that have left the encryption pipeline but found their
     * target queue full: they claim slots in FIFO order as drains free
     * space. Acceptance (the ADR point fences wait on) happens at the
     * actual landing.
     */
    std::deque<std::function<bool()>> landingQ;
    static constexpr std::size_t landingCapacity = 256;

    /** Writes inside the encryption pipeline (pre-landing). */
    unsigned pipelineWrites = 0;

    /** Writes scheduled on the device but whose burst has not ended. */
    unsigned inflightWrites = 0;
    unsigned maxInflightWrites;

    /** A wake-up for bank-busy drain candidates is already scheduled. */
    bool drainKickPending = false;

    /** An end-of-tick drain kick is already scheduled. */
    bool kickScheduled = false;

    /** Bumped at crash(): in-flight pipeline events from before the
     *  failure compare epochs and become no-ops. */
    std::uint64_t pipelineEpoch = 0;

    unsigned outstandingReads = 0;

    /** Monotonic counter source (paper section 5.2.1). */
    std::uint64_t globalCounter = 0;

    /** Engine's record of the counter each line was last encrypted with. */
    std::unordered_map<Addr, std::uint64_t> currentCounter;

    std::vector<std::function<void()>> retryCallbacks;

    /** Dirty counter-cache victims waiting for counter-queue space. */
    std::deque<CounterEviction> pendingCcEvictions;

    /**
     * Lazy integrity-tree update state (cfg.integrityTree): level-1
     * leaf indexes dirtied by counter persists since the last epoch
     * write-back. An ordered set — the write-back charges traffic in
     * index order, and determinism here is what keeps tree-enabled
     * sweep fingerprints identical across Replay/Fork modes.
     */
    std::set<std::uint64_t> dirtyTreeLeaves;

    /** Counter persists since simulation start (the epoch clock). */
    std::uint64_t treeCtrPersists = 0;

    /** Semantic-event observer (crash injector / sweep census). */
    std::function<void(CtlEvent)> eventHook;

    /** Fires the event hook, if any. */
    void
    emitEvent(CtlEvent ev)
    {
        if (eventHook)
            eventHook(ev);
    }

    // --- queue index maintenance ---
    void indexDataEntry(DataIter it);
    void unindexDataEntry(DataIter it);
    void indexCtrEntry(CtrIter it);
    void unindexCtrEntry(CtrIter it);
    DataIter locateDataEntry(std::uint64_t seq);
    CtrIter locateCtrEntry(std::uint64_t seq);
    bool dataQueueHas(Addr addr) const;
    bool ctrQueueHasIssued(Addr ctr_addr) const;
    /** Debug-build invariant: indexes mirror the queues exactly. */
    void verifyIndexes() const;

    // --- write path helpers ---
    bool haveDataSlot() const;
    bool haveCtrSlot() const;
    bool landDataWrite(const WriteReq &req, std::uint64_t counter,
                       bool pair);
    void processLandings();
    void scheduleDrainKick();
    CtrEntry *findUnissuedCtr(Addr ctr_addr);
    DataEntry *findUnissuedData(Addr addr);
    void enqueueCtrValues(Addr ctr_addr, const CounterLine &values,
                          std::uint8_t dirty_mask);
    void applyCounterToCache(Addr data_line_addr, std::uint64_t counter,
                             bool make_dirty, bool charge_fill_on_miss);
    void handleCcEviction(const CounterEviction &ev);
    void drainPendingCcEvictions();

    /**
     * Integrity-tree hook at every counter persist to the device
     * image: marks the covering leaf dirty and, on an epoch boundary,
     * writes the coalesced dirty set back (charging node traffic).
     * No-op when the tree is off.
     */
    void noteCounterPersist(Addr ctr_line_addr);

    /** The batched epoch write-back of the dirty tree-node set. */
    void flushTreeEpoch();

    /** The channel owning a counter line under the block interleave. */
    unsigned ctrLineChannel(Addr ctr_line_addr) const;

    /** Safe-to-persist counter values: persisted image overlaid with
     *  pending counter-queue entries in age order. */
    CounterLine memoryViewCounters(Addr ctr_addr) const;

    /** Counter values currently visible to a flush (cache else memory). */
    CounterLine visibleCounters(Addr ctr_addr);

    /** Engine-recorded current counters (co-located cache fills). */
    CounterLine currentCounters(Addr ctr_addr) const;

    // --- drain engine ---
    void kickDrain();
    bool drainAllowed() const;
    bool issueOneWrite();
    void completeDataDrain(std::uint64_t seq);
    void completeCtrDrain(std::uint64_t seq);
    void persistDataEntry(const DataEntry &entry);

    /** Drain-time persistence of one data entry, applied to an
     *  arbitrary persisted image (the device's own, or a fork's). */
    void persistDataEntryTo(PersistImage &img,
                            const DataEntry &entry) const;
    void notifyRetries();

    // --- read path ---
    void finishRead(Tick when, ReadCallback done);
};

} // namespace cnvm

#endif // CNVM_MEMCTL_MEM_CONTROLLER_HH
