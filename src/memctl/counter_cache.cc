#include "memctl/counter_cache.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace cnvm
{

CounterCache::CounterCache(std::uint64_t size_bytes, unsigned assoc,
                           stats::StatRegistry *registry,
                           const std::string &stat_prefix,
                           unsigned index_shift)
    : ways(assoc),
      indexShift(index_shift),
      readHits(stat_prefix + "read_hits", "counter cache read hits"),
      readMisses(stat_prefix + "read_misses", "counter cache read misses"),
      writeHits(stat_prefix + "write_hits", "counter cache write hits"),
      writeMisses(stat_prefix + "write_misses",
                  "counter cache write misses"),
      dirtyEvictions(stat_prefix + "dirty_evictions",
                     "dirty counter lines displaced")
{
    cnvm_assert(assoc > 0);
    cnvm_assert(size_bytes % (static_cast<std::uint64_t>(assoc) * lineBytes)
                == 0);
    numSets = size_bytes / (static_cast<std::uint64_t>(assoc) * lineBytes);
    if (!isPowerOf2(numSets))
        cnvm_fatal("counter cache: set count %llu is not a power of two",
                   static_cast<unsigned long long>(numSets));
    lines.resize(numSets * ways);

    if (registry != nullptr) {
        registry->registerStat(readHits);
        registry->registerStat(readMisses);
        registry->registerStat(writeHits);
        registry->registerStat(writeMisses);
        registry->registerStat(dirtyEvictions);
    }
}

std::uint64_t
CounterCache::setIndex(Addr addr) const
{
    return ((addr / lineBytes) >> indexShift) & (numSets - 1);
}

CounterCacheLine *
CounterCache::peek(Addr ctr_line_addr)
{
    CounterCacheLine *base = &lines[setIndex(ctr_line_addr) * ways];
    for (unsigned w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].addr == ctr_line_addr)
            return &base[w];
    }
    return nullptr;
}

CounterCacheLine *
CounterCache::access(Addr ctr_line_addr)
{
    CounterCacheLine *line = peek(ctr_line_addr);
    if (line != nullptr)
        line->lruStamp = nextStamp++;
    return line;
}

std::optional<CounterEviction>
CounterCache::install(Addr ctr_line_addr, const CounterLine &values,
                      std::uint8_t dirty_mask)
{
    cnvm_assert(peek(ctr_line_addr) == nullptr);

    CounterCacheLine *base = &lines[setIndex(ctr_line_addr) * ways];
    CounterCacheLine *victim = nullptr;
    for (unsigned w = 0; w < ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (victim == nullptr || base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }

    std::optional<CounterEviction> evicted;
    if (victim->valid && victim->dirty) {
        ++dirtyEvictions;
        evicted = CounterEviction{victim->addr, victim->dirtyMask,
                                  victim->values};
    }

    victim->addr = ctr_line_addr;
    victim->valid = true;
    victim->dirty = dirty_mask != 0;
    victim->dirtyMask = dirty_mask;
    victim->lruStamp = nextStamp++;
    victim->values = values;
    return evicted;
}

void
CounterCache::reset()
{
    for (CounterCacheLine &line : lines) {
        line.valid = false;
        line.dirty = false;
        line.dirtyMask = 0;
    }
    nextStamp = 1;
}

std::uint64_t
CounterCache::validCount() const
{
    std::uint64_t n = 0;
    for (const CounterCacheLine &line : lines)
        n += line.valid ? 1 : 0;
    return n;
}

std::uint64_t
CounterCache::dirtyCount() const
{
    std::uint64_t n = 0;
    for (const CounterCacheLine &line : lines)
        n += (line.valid && line.dirty) ? 1 : 0;
    return n;
}

} // namespace cnvm
