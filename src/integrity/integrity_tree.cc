#include "integrity/integrity_tree.hh"

#include <algorithm>
#include <map>
#include <vector>

#include "common/hash.hh"
#include "common/logging.hh"
#include "nvm/persist_image.hh"

namespace cnvm
{

std::uint64_t
treeSlotHash(std::uint64_t counter)
{
    return fnv1aU64(counter);
}

std::uint64_t
treeCombine(const std::uint64_t children[treeArity])
{
    std::uint64_t state = fnvOffsetBasis;
    for (unsigned c = 0; c < treeArity; ++c)
        state = fnv1aU64(children[c], state);
    return state;
}

std::uint64_t
treeZeroHash(unsigned level)
{
    cnvm_assert(level <= treeRootLevel);
    // A tiny table, but recomputing it per call would still be cheap;
    // memoization keeps the hot per-line checks allocation-free.
    static const auto table = [] {
        std::array<std::uint64_t, treeRootLevel + 1> t{};
        t[0] = treeSlotHash(0);
        for (unsigned l = 1; l <= treeRootLevel; ++l) {
            std::uint64_t children[treeArity];
            for (unsigned c = 0; c < treeArity; ++c)
                children[c] = t[l - 1];
            t[l] = treeCombine(children);
        }
        return t;
    }();
    return table[level];
}

namespace
{

/**
 * One 8-ary reduction step: the parents of @p level's nodes, absent
 * children standing in for their zero hash. Ordered maps keep the
 * grouping (and hence every caller's write order) deterministic.
 */
std::map<std::uint64_t, std::uint64_t>
reduceLevel(const std::map<std::uint64_t, std::uint64_t> &level,
            unsigned level_no)
{
    std::map<std::uint64_t, std::uint64_t> up;
    auto it = level.begin();
    while (it != level.end()) {
        const std::uint64_t parent = it->first / treeArity;
        std::uint64_t children[treeArity];
        for (unsigned c = 0; c < treeArity; ++c)
            children[c] = treeZeroHash(level_no);
        while (it != level.end() && it->first / treeArity == parent) {
            children[it->first % treeArity] = it->second;
            ++it;
        }
        up[parent] = treeCombine(children);
    }
    return up;
}

/** Level-1 hash of one persisted counter line. */
std::uint64_t
counterLineHash(const CounterLine &values)
{
    std::uint64_t slots[treeArity];
    static_assert(countersPerLine == treeArity);
    for (unsigned s = 0; s < countersPerLine; ++s)
        slots[s] = treeSlotHash(values[s]);
    return treeCombine(slots);
}

/** Root of a level-1 node map, reduced all the way up. */
std::uint64_t
rootOf(std::map<std::uint64_t, std::uint64_t> level)
{
    for (unsigned l = 1; l < treeRootLevel; ++l)
        level = reduceLevel(level, l);
    if (level.empty())
        return treeZeroHash(treeRootLevel);
    cnvm_assert(level.size() == 1 && level.begin()->first == 0);
    return level.begin()->second;
}

} // anonymous namespace

std::uint64_t
computeTreeRoot(const PersistSource &src, Addr counter_region_base)
{
    std::map<std::uint64_t, std::uint64_t> leaves;
    for (Addr addr : src.counterLineAddrs()) {
        cnvm_assert(addr >= counter_region_base);
        const std::uint64_t index = (addr - counter_region_base)
            / lineBytes;
        leaves[index] = counterLineHash(src.persistedCounters(addr));
    }
    return rootOf(std::move(leaves));
}

std::uint64_t
rebuildTree(PersistImage &img, Addr counter_region_base, Addr ctr_lo,
            Addr ctr_hi, const std::function<void()> &leaf_visited)
{
    // Phase 1 — the region's leaves, from the store itself: per-slot
    // level-0 nodes plus the level-1 counter-block node, one counter
    // line at a time in address order. Each line is an interruption
    // point for the recovery-crash sweep.
    for (Addr addr : img.counterLineAddrs()) {
        if (addr < ctr_lo || addr >= ctr_hi)
            continue;
        cnvm_assert(addr >= counter_region_base);
        const std::uint64_t index = (addr - counter_region_base)
            / lineBytes;
        const CounterLine values = img.persistedCounters(addr);
        std::uint64_t slots[treeArity];
        for (unsigned s = 0; s < countersPerLine; ++s) {
            slots[s] = treeSlotHash(values[s]);
            img.drainTreeNode(0, index * countersPerLine + s, slots[s]);
        }
        img.drainTreeNode(1, index, treeCombine(slots));
        if (leaf_visited)
            leaf_visited();
    }

    // Phase 2 — the interior, from the *persisted* level-1 nodes (not
    // the store): leaves outside [ctr_lo, ctr_hi) keep whatever was
    // persisted for them, so a regional rebuild cannot bless another
    // region's not-yet-recovered replay evidence.
    std::map<std::uint64_t, std::uint64_t> level;
    for (std::uint64_t index : img.persistedTreeLeafIndices())
        level[index] = *img.persistedTreeNode(1, index);
    for (unsigned l = 1; l < treeRootLevel; ++l) {
        level = reduceLevel(level, l);
        if (l + 1 < treeRootLevel)
            for (const auto &[index, hash] : level)
                img.drainTreeNode(l + 1, index, hash);
    }
    const std::uint64_t root = level.empty()
        ? treeZeroHash(treeRootLevel)
        : level.begin()->second;

    // The root is written strictly last: an interrupted rebuild leaves
    // the stale root in place, so the next attempt still sees the
    // mismatch and re-runs the reconstruction.
    img.drainTreeRoot(root);
    return root;
}

std::optional<std::uint64_t>
repairCounterWindow(std::uint64_t stored, std::uint64_t window,
                    const std::function<bool(std::uint64_t)> &verifies,
                    const std::function<bool(std::uint64_t)> &confirms)
{
    const std::uint64_t up =
        std::min<std::uint64_t>(window, ~std::uint64_t(0) - stored);
    const std::uint64_t down = std::min<std::uint64_t>(window, stored);

    // Nearest-first, +d before -d — the order the single-match case
    // has always used, now collecting *all* matches instead of
    // stopping at the first.
    std::vector<std::uint64_t> matches;
    for (std::uint64_t d = 1; d <= std::max(up, down); ++d) {
        if (d <= up && verifies(stored + d))
            matches.push_back(stored + d);
        if (d <= down && verifies(stored - d))
            matches.push_back(stored - d);
    }

    if (matches.empty())
        return std::nullopt;
    if (matches.size() == 1)
        return matches.front();
    if (confirms)
        for (std::uint64_t candidate : matches)
            if (confirms(candidate))
                return candidate;
    return std::nullopt; // ambiguous: quarantine beats guessing
}

} // namespace cnvm
