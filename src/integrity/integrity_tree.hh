/**
 * @file
 * Bonsai Merkle Tree over the persisted counter store.
 *
 * Per-line MACs (PR-5) authenticate each (addr, counter, ciphertext)
 * triple in isolation, which leaves them blind to the persistence-based
 * replay attack: restore a *complete* stale triple — old ciphertext,
 * old counter-store word, old MAC — and every per-line check passes
 * while the system silently consumes rolled-back state. The classic
 * defense (Rogers et al., "Bonsai Merkle Trees") hashes the counter
 * store into a tree whose root lives inside the trusted boundary; a
 * replayed counter word changes a leaf, the leaf changes the root, and
 * the persisted root no longer matches what the store hashes to.
 *
 * Shape. The tree is 8-ary over counter *slots*:
 *
 *   level 0   one node per counter slot = per data line
 *             (index = line address / 64), hash of the slot's value;
 *   level 1   one node per counter line (8 slots), the "counter-block
 *             hash" leaf a BMT stores;
 *   level L   8-ary reduction of level L-1, up to
 *   level 9   the single root (covers line indexes < 2^27, i.e. every
 *             data address below the 8 GB counter-region base).
 *
 * Subtrees with no persisted counters hash to a level-indexed constant
 * (treeZeroHash), so the tree is as sparse as the store itself and a
 * tampered slot never implicates untouched neighbors. The hash is
 * FNV-1a — this models *where* integrity metadata lives and *when* it
 * is checked, not cryptographic strength, exactly as CtrEngine's
 * truncated MAC does.
 *
 * Persistence. The controller batches dirty tree nodes and writes them
 * back lazily on epoch boundaries (Freij et al., "Streamlining
 * Integrity Tree Updates"); on a crash the ADR energy budget flushes
 * the dirty set with the root written *last*, modeled as a full
 * rebuild of the persisted nodes from the post-drain counter store
 * (the volatile mirror is, by construction, the tree of the persisted
 * store, so the flush and the rebuild are the same function). Media
 * faults and replay doses are applied *after* that flush — a replayed
 * counter word therefore always disagrees with the persisted tree.
 *
 * Recovery. Phoenix-style: recompute the root bottom-up from the
 * persisted counter store and compare against the persisted root. On a
 * mismatch, per-line level-0 comparisons pinpoint the stale slots; the
 * write-back path then reconstructs the persisted nodes region by
 * region (root last) so an interrupted reconstruction is re-runnable.
 */

#ifndef CNVM_INTEGRITY_INTEGRITY_TREE_HH
#define CNVM_INTEGRITY_INTEGRITY_TREE_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "common/types.hh"

namespace cnvm
{

class PersistImage;
class PersistSource;

/** Children per interior tree node. */
constexpr unsigned treeArity = 8;

/** Level of the single root node (see the layout table above). */
constexpr unsigned treeRootLevel = 9;

/** Level-0 node: hash of one counter slot's value. */
std::uint64_t treeSlotHash(std::uint64_t counter);

/** Interior node: hash of its (up to) eight children, in slot order. */
std::uint64_t treeCombine(const std::uint64_t children[treeArity]);

/** Hash of an all-absent subtree rooted at @p level. */
std::uint64_t treeZeroHash(unsigned level);

/**
 * Recomputes the root bottom-up from @p src's persisted counter store
 * — the verify-root-first step of recovery. Pure: touches no persisted
 * tree nodes, so it is safe from the shared-source pre-scan shards.
 */
std::uint64_t computeTreeRoot(const PersistSource &src,
                              Addr counter_region_base);

/**
 * Rewrites the persisted tree nodes of @p img from its own counter
 * store: level-0/1 nodes for every persisted counter line in
 * [@p ctr_lo, @p ctr_hi), then the interior levels from the *persisted*
 * level-1 nodes, the root strictly last. Returns the new root.
 *
 * Two callers, one function:
 *  - the controller's crash flush rebuilds everything (full address
 *    range) — afterwards the persisted tree is exactly the tree of the
 *    persisted store;
 *  - recovery's reconstruction rebuilds only the counter lines backing
 *    the recovered region, leaving other regions' leaves alone so a
 *    not-yet-recovered region's replay evidence survives.
 *
 * @p leaf_visited fires once per rebuilt counter line (in address
 * order) and may throw — that is the crash-during-reconstruction
 * injection point. Writing the root last keeps an interrupted rebuild
 * detectable: the stale root still mismatches, so the next recovery
 * attempt re-verifies and finishes the job.
 */
std::uint64_t rebuildTree(PersistImage &img, Addr counter_region_base,
                          Addr ctr_lo, Addr ctr_hi,
                          const std::function<void()> &leaf_visited = {});

/**
 * Osiris-style counter-recovery window search, multi-match aware.
 *
 * Tries counters outward from @p stored (distance 1..@p window, +d
 * before -d) and collects *every* candidate @p verifies accepts —
 * with a truncated MAC, two window counters can collide, and taking
 * the first match silently repairs to the wrong counter. A single
 * match is returned as-is. On multiple matches the nearest candidate
 * @p confirms accepts (the integrity tree's vote) wins; with no
 * confirmation available — tree off, or no candidate confirmed — the
 * search is ambiguous and returns nullopt, which quarantines the line
 * instead of guessing.
 */
std::optional<std::uint64_t>
repairCounterWindow(std::uint64_t stored, std::uint64_t window,
                    const std::function<bool(std::uint64_t)> &verifies,
                    const std::function<bool(std::uint64_t)> &confirms);

} // namespace cnvm

#endif // CNVM_INTEGRITY_INTEGRITY_TREE_HH
