/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * The workloads use this instead of std::mt19937 so that a given seed
 * produces an identical operation stream on every platform, which keeps
 * the crash-consistency regression tests reproducible.
 */

#ifndef CNVM_COMMON_RANDOM_HH
#define CNVM_COMMON_RANDOM_HH

#include <cstdint>

namespace cnvm
{

/**
 * xoshiro256** generator (public-domain algorithm by Blackman & Vigna).
 * Deterministic across platforms for a given seed.
 */
class Random
{
  public:
    /** Seeds the generator; a zero seed is remapped to a fixed constant. */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Returns the next raw 64-bit value. */
    std::uint64_t next();

    /** Returns a uniformly distributed value in [0, bound). */
    std::uint64_t below(std::uint64_t bound);

    /** Returns a uniformly distributed value in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Returns true with probability @p percent / 100. */
    bool chancePct(unsigned percent);

  private:
    std::uint64_t s[4];
};

} // namespace cnvm

#endif // CNVM_COMMON_RANDOM_HH
