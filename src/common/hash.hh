/**
 * @file
 * FNV-1a hashing, used for log checksums and structure digests.
 */

#ifndef CNVM_COMMON_HASH_HH
#define CNVM_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>

namespace cnvm
{

constexpr std::uint64_t fnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t fnvPrime = 0x100000001b3ull;

/** Incrementally folds @p len bytes into an FNV-1a state. */
inline std::uint64_t
fnv1a(const void *data, std::size_t len,
      std::uint64_t state = fnvOffsetBasis)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        state ^= bytes[i];
        state *= fnvPrime;
    }
    return state;
}

/** Folds one 64-bit value into an FNV-1a state. */
inline std::uint64_t
fnv1aU64(std::uint64_t value, std::uint64_t state = fnvOffsetBasis)
{
    return fnv1a(&value, sizeof(value), state);
}

} // namespace cnvm

#endif // CNVM_COMMON_HASH_HH
