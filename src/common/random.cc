#include "common/random.hh"

#include "common/logging.hh"

namespace cnvm
{

namespace
{

/** splitmix64: expands one seed into the four xoshiro state words. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Random::Random(std::uint64_t seed)
{
    if (seed == 0)
        seed = 0x9e3779b97f4a7c15ull;
    for (auto &word : s)
        word = splitmix64(seed);
}

std::uint64_t
Random::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Random::below(std::uint64_t bound)
{
    cnvm_assert(bound != 0);
    // Rejection sampling removes modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Random::range(std::uint64_t lo, std::uint64_t hi)
{
    cnvm_assert(lo <= hi);
    return lo + below(hi - lo + 1);
}

bool
Random::chancePct(unsigned percent)
{
    cnvm_assert(percent <= 100);
    return below(100) < percent;
}

} // namespace cnvm
