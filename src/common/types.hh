/**
 * @file
 * Fundamental scalar types shared by every cnvm module.
 *
 * The simulator measures time in ticks of one picosecond, which lets a
 * 4 GHz core clock (250 ticks) and DDR-style memory timings expressed in
 * nanoseconds coexist without rounding.
 */

#ifndef CNVM_COMMON_TYPES_HH
#define CNVM_COMMON_TYPES_HH

#include <array>
#include <cstdint>

namespace cnvm
{

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** A physical address in the simulated machine. */
using Addr = std::uint64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** An invalid / not-yet-assigned tick. */
constexpr Tick maxTick = ~Tick(0);

/** One nanosecond worth of ticks. */
constexpr Tick ticksPerNs = 1000;

/** Converts a (possibly fractional) nanosecond figure to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(ticksPerNs));
}

/** Size of a cache line of data, in bytes (paper: 64 B). */
constexpr unsigned lineBytes = 64;

/** Size of one encryption counter, in bytes (paper: 8 B). */
constexpr unsigned counterBytes = 8;

/** Number of counters packed into one counter cache line (64 / 8). */
constexpr unsigned countersPerLine = lineBytes / counterBytes;

/** One full cache line of bytes. */
using LineData = std::array<std::uint8_t, lineBytes>;

/** Returns the cache-line-aligned base of an address. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~Addr(lineBytes - 1);
}

/** Returns true if the address is cache-line aligned. */
constexpr bool
isLineAligned(Addr addr)
{
    return (addr & Addr(lineBytes - 1)) == 0;
}

} // namespace cnvm

#endif // CNVM_COMMON_TYPES_HH
