/**
 * @file
 * Small integer-math helpers used throughout the simulator.
 */

#ifndef CNVM_COMMON_INTMATH_HH
#define CNVM_COMMON_INTMATH_HH

#include <cstdint>

namespace cnvm
{

/** Returns true if @p n is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** Floor of log2(n); n must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    unsigned result = 0;
    while (n >>= 1)
        ++result;
    return result;
}

/** Ceiling of log2(n); n must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t n)
{
    return isPowerOf2(n) ? floorLog2(n) : floorLog2(n) + 1;
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Rounds @p n up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t n, std::uint64_t align)
{
    return (n + align - 1) & ~(align - 1);
}

/** Rounds @p n down to the previous multiple of @p align (a power of two). */
constexpr std::uint64_t
roundDown(std::uint64_t n, std::uint64_t align)
{
    return n & ~(align - 1);
}

} // namespace cnvm

#endif // CNVM_COMMON_INTMATH_HH
