#include "common/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdint>

namespace cnvm
{

namespace
{

// Atomics: the parallel crash sweep runs Systems on pool workers, and
// any of them may warn or consult the quiet flag concurrently.
std::atomic<std::uint64_t> warnCounter{0};
std::atomic<bool> quietMode{false};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Panic: return "panic";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Warn: return "warn";
      case LogLevel::Inform: return "info";
    }
    return "?";
}

} // anonymous namespace

namespace detail
{

void
logMessage(LogLevel level, const char *file, int line, const char *fmt, ...)
{
    if (level == LogLevel::Warn)
        warnCounter.fetch_add(1, std::memory_order_relaxed);

    bool is_error = level == LogLevel::Panic || level == LogLevel::Fatal;
    if (quietMode.load(std::memory_order_relaxed) && !is_error)
        return;

    std::FILE *out = is_error ? stderr : stdout;
    std::fprintf(out, "%s: ", levelName(level));

    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(out, fmt, args);
    va_end(args);

    if (is_error)
        std::fprintf(out, " @ %s:%d", file, line);
    std::fprintf(out, "\n");
    std::fflush(out);

    if (level == LogLevel::Panic)
        std::abort();
    if (level == LogLevel::Fatal)
        std::exit(1);
}

} // namespace detail

std::uint64_t
warnCount()
{
    return warnCounter.load(std::memory_order_relaxed);
}

void
setQuiet(bool quiet)
{
    quietMode.store(quiet, std::memory_order_relaxed);
}

} // namespace cnvm
