/**
 * @file
 * Error and status reporting, in the spirit of gem5's base/logging.hh.
 *
 * panic()  — an internal invariant of the simulator was violated (a bug).
 * fatal()  — the user asked for something impossible (bad configuration).
 * warn()   — something is suspicious but the simulation can continue.
 * inform() — a purely informational status message.
 */

#ifndef CNVM_COMMON_LOGGING_HH
#define CNVM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace cnvm
{

/** Severity classes used by the logging backend. */
enum class LogLevel { Panic, Fatal, Warn, Inform };

namespace detail
{

/**
 * Formats and emits one log record; terminates the process for
 * Panic (abort) and Fatal (exit(1)).
 *
 * @param level severity class
 * @param file  source file of the call site
 * @param line  source line of the call site
 * @param fmt   printf-style format string
 */
[[gnu::format(printf, 4, 5)]]
void logMessage(LogLevel level, const char *file, int line,
                const char *fmt, ...);

} // namespace detail

/**
 * Counts warnings emitted so far; tests use this to assert that a
 * scenario does or does not warn.
 */
std::uint64_t warnCount();

/** Suppresses (true) or re-enables (false) warn/inform output. */
void setQuiet(bool quiet);

} // namespace cnvm

#define cnvm_panic(...) \
    ::cnvm::detail::logMessage(::cnvm::LogLevel::Panic, __FILE__, __LINE__, \
                               __VA_ARGS__)

#define cnvm_fatal(...) \
    ::cnvm::detail::logMessage(::cnvm::LogLevel::Fatal, __FILE__, __LINE__, \
                               __VA_ARGS__)

#define cnvm_warn(...) \
    ::cnvm::detail::logMessage(::cnvm::LogLevel::Warn, __FILE__, __LINE__, \
                               __VA_ARGS__)

#define cnvm_inform(...) \
    ::cnvm::detail::logMessage(::cnvm::LogLevel::Inform, __FILE__, __LINE__, \
                               __VA_ARGS__)

/** Panics when an internal invariant does not hold. */
#define cnvm_assert(cond)                                               \
    do {                                                                \
        if (!(cond))                                                    \
            cnvm_panic("assertion '%s' failed", #cond);                 \
    } while (0)

#endif // CNVM_COMMON_LOGGING_HH
