#include "txn/undo_log.hh"

#include <algorithm>

#include "common/hash.hh"
#include "common/logging.hh"

namespace cnvm
{

UndoTx::UndoTx(ShadowMem &shadow, const LogLayout &log)
    : shadow(shadow), log(log)
{
    cnvm_assert(log.maxLines > 0);
    cnvm_assert(isLineAligned(log.base));
}

void
UndoTx::begin(std::uint64_t txn_id)
{
    cnvm_assert(!active);
    active = true;
    txnId = txn_id;
    pendingBytes.clear();
    lines.clear();
    lineSet.clear();
    loadedLines.clear();
    preOps.clear();
}

void
UndoTx::emitLoad(Addr addr)
{
    Addr line_addr = lineAlign(addr);
    if (loadedLines.insert(line_addr).second)
        preOps.push_back(Op::load(line_addr));
}

void
UndoTx::read(Addr addr, unsigned size, void *out)
{
    cnvm_assert(active);
    shadow.read(addr, size, out);
    // Read-your-writes: overlay deferred bytes.
    auto *dst = static_cast<std::uint8_t *>(out);
    for (unsigned i = 0; i < size; ++i) {
        auto it = pendingBytes.find(addr + i);
        if (it != pendingBytes.end())
            dst[i] = it->second;
    }
    // Timing: one load per line per transaction.
    for (Addr a = lineAlign(addr); a <= lineAlign(addr + size - 1);
         a += lineBytes)
        emitLoad(a);
}

std::uint64_t
UndoTx::readU64(Addr addr)
{
    std::uint64_t v = 0;
    read(addr, sizeof(v), &v);
    return v;
}

void
UndoTx::touchLine(Addr line_addr)
{
    if (lineSet.insert(line_addr).second) {
        lines.push_back(line_addr);
        if (lines.size() > log.maxLines)
            cnvm_fatal("transaction exceeds the undo log capacity "
                       "(%u lines)", log.maxLines);
    }
}

void
UndoTx::write(Addr addr, const void *data, unsigned size)
{
    cnvm_assert(active);
    const auto *src = static_cast<const std::uint8_t *>(data);
    for (unsigned i = 0; i < size; ++i)
        pendingBytes[addr + i] = src[i];
    for (Addr a = lineAlign(addr); a <= lineAlign(addr + size - 1);
         a += lineBytes)
        touchLine(a);
}

void
UndoTx::writeU64(Addr addr, std::uint64_t v)
{
    write(addr, &v, sizeof(v));
}

void
UndoTx::compute(Cycles cycles)
{
    cnvm_assert(active);
    preOps.push_back(Op::compute(cycles));
}

LineData
UndoTx::mergedLine(Addr line_addr) const
{
    LineData data = shadow.line(line_addr);
    auto it = pendingBytes.lower_bound(line_addr);
    while (it != pendingBytes.end() && it->first < line_addr + lineBytes) {
        data[it->first - line_addr] = it->second;
        ++it;
    }
    return data;
}

void
UndoTx::barrier(std::vector<Op> &out, const std::vector<Addr> &line_addrs)
{
    for (Addr a : line_addrs)
        out.push_back(Op::clwb(a));

    // counter_cache_writeback() per distinct counter line: eight data
    // lines share a counter line, so deduplicate by that granularity.
    std::set<Addr> ctr_groups;
    for (Addr a : line_addrs) {
        Addr group = (a / lineBytes) / countersPerLine;
        if (ctr_groups.insert(group).second)
            out.push_back(Op::ctrwb(a));
    }

    out.push_back(Op::fence());
}

void
UndoTx::commit(std::vector<Op> &out)
{
    cnvm_assert(active);
    active = false;

    // Accumulated loads / compute first (they happened in program order
    // before the transaction's persist stages).
    out.insert(out.end(), preOps.begin(), preOps.end());

    std::uint64_t count = lines.size();

    // ------------------------------------------------------------------
    // Stage 1 — Prepare: build the log entry (Table 1: the backup is
    // inconsistent while being written, the data still is consistent,
    // so no write here needs counter-atomicity except the header line
    // carrying the CounterAtomic `valid` field).
    // ------------------------------------------------------------------
    std::vector<Addr> log_lines;
    log_lines.push_back(log.headerAddr());

    // Descriptors, grouped into line-sized stores.
    for (unsigned i = 0; i < count; ++i)
        shadow.writeU64(log.descAddr(i), lines[i]);
    for (Addr a = lineAlign(log.descBase());
         a < log.descBase() + count * 8; a += lineBytes) {
        unsigned span = static_cast<unsigned>(
            std::min<Addr>(lineBytes, log.descBase() + count * 8 - a));
        LineData content = shadow.line(a);
        out.push_back(Op::store(a, content.data(), span));
        log_lines.push_back(a);
    }

    // Whole-line backups of the pre-transaction content.
    for (unsigned i = 0; i < count; ++i) {
        LineData backup = shadow.line(lines[i]);
        Addr dst = log.backupAddr(i);
        shadow.write(dst, backup.data(), lineBytes);
        out.push_back(Op::store(dst, backup.data(), lineBytes));
        log_lines.push_back(dst);
    }

    // Header: magic | valid | txnId | count | checksum. The store is
    // CounterAtomic: `valid` switches whether recovery trusts the log.
    std::uint64_t checksum = logChecksum(shadow, log, txnId, count);
    struct
    {
        std::uint64_t magic, valid, txn_id, count, checksum;
    } header{LogLayout::kMagic, LogLayout::kValid, txnId, count, checksum};
    shadow.write(log.headerAddr(), &header, sizeof(header));
    out.push_back(Op::store(log.headerAddr(), &header, sizeof(header),
                            /*ca=*/true));

    barrier(out, log_lines);

    // ------------------------------------------------------------------
    // Stage 2 — Mutate: apply the deferred writes in place. The log
    // holds the consistent version; these writes never need strict
    // counter-atomicity.
    // ------------------------------------------------------------------
    for (Addr line_addr : lines) {
        LineData merged = mergedLine(line_addr);
        // Store only the modified span of the line.
        auto first = pendingBytes.lower_bound(line_addr);
        cnvm_assert(first != pendingBytes.end()
                    && first->first < line_addr + lineBytes);
        Addr lo = first->first;
        Addr hi = lo;
        for (auto it = first;
             it != pendingBytes.end() && it->first < line_addr + lineBytes;
             ++it)
            hi = it->first;
        unsigned offset = static_cast<unsigned>(lo - line_addr);
        unsigned span = static_cast<unsigned>(hi - lo + 1);
        out.push_back(Op::store(lo, merged.data() + offset, span));
        shadow.write(line_addr, merged.data(), lineBytes);
    }

    barrier(out, lines);

    // ------------------------------------------------------------------
    // Stage 3 — Commit: one CounterAtomic store invalidates the backup,
    // atomically moving the consistent version from the log to the
    // in-place data (Figure 9, line 17).
    // ------------------------------------------------------------------
    std::uint64_t invalid = LogLayout::kInvalid;
    shadow.writeU64(log.validAddr(), invalid);
    out.push_back(Op::store(log.validAddr(), &invalid, sizeof(invalid),
                            /*ca=*/true));
    out.push_back(Op::clwb(log.headerAddr()));
    out.push_back(Op::fence());

    pendingBytes.clear();
}

std::uint64_t
logChecksum(const ByteReader &reader, const LogLayout &log,
            std::uint64_t txn_id, std::uint64_t count)
{
    std::uint64_t state = fnv1aU64(txn_id);
    state = fnv1aU64(count, state);
    for (unsigned i = 0; i < count; ++i) {
        std::uint64_t desc = reader.readU64(log.descAddr(i));
        state = fnv1aU64(desc, state);
        std::uint8_t backup[lineBytes];
        reader.read(log.backupAddr(i), lineBytes, backup);
        state = fnv1a(backup, lineBytes, state);
    }
    return state;
}

} // namespace cnvm
