/**
 * @file
 * Host-side plaintext mirror of a persistent region.
 *
 * The workload's source of truth while generating operation streams:
 * every transactional write updates the shadow at emission time, and
 * undo-log backups snapshot pre-transaction shadow content. After a
 * simulated crash, the recovered structure is compared against digests
 * taken from this shadow at commit points.
 */

#ifndef CNVM_TXN_SHADOW_MEM_HH
#define CNVM_TXN_SHADOW_MEM_HH

#include <unordered_map>

#include "txn/byte_reader.hh"

namespace cnvm
{

class ShadowMem : public ByteReader
{
  public:
    void read(Addr addr, unsigned size, void *out) const override;

    /** Writes @p size bytes at @p addr; may cross lines. */
    void write(Addr addr, const void *data, unsigned size);

    void
    writeU64(Addr addr, std::uint64_t v)
    {
        write(addr, &v, sizeof(v));
    }

    /** Full line content (zeros if untouched). */
    LineData line(Addr line_addr) const;

    std::size_t touchedLines() const { return lines.size(); }

    /** Visits every touched line (order unspecified). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (const auto &[addr, data] : lines)
            fn(addr, data);
    }

  private:
    std::unordered_map<Addr, LineData> lines;
};

} // namespace cnvm

#endif // CNVM_TXN_SHADOW_MEM_HH
