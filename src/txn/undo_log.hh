/**
 * @file
 * Undo-logging transactions with the paper's selective counter-atomicity
 * primitives (sections 4.2, 4.3, Figure 9, Table 1).
 *
 * A transaction proceeds in three stages separated by persist barriers:
 *
 *   Prepare — the touched lines are backed up into the per-thread log
 *     (header + descriptors + whole-line backups, protected by a
 *     checksum); the writes are ordinary stores followed by clwb,
 *     counter_cache_writeback() and an sfence. The header's `valid`
 *     field is a CounterAtomic variable: the store that publishes it is
 *     annotated so its line writes back counter-atomically.
 *
 *   Mutate — the data structure is modified in place; again ordinary
 *     stores + clwb + counter_cache_writeback() + sfence. Torn lines in
 *     this stage are harmless: recovery rolls them back from the log.
 *
 *   Commit — a single CounterAtomic store flips `valid` to the invalid
 *     marker, atomically switching the recoverable version from the log
 *     to the in-place data. This is the only write whose
 *     counter-atomicity the SCA design must strictly enforce.
 */

#ifndef CNVM_TXN_UNDO_LOG_HH
#define CNVM_TXN_UNDO_LOG_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/intmath.hh"
#include "cpu/op.hh"
#include "txn/shadow_mem.hh"

namespace cnvm
{

/**
 * Placement of one per-thread undo log inside the persistent region.
 *
 * Layout:
 *   base + 0                         header line
 *   base + 64                        descriptor area (maxLines * 8 B,
 *                                    line-aligned)
 *   base + 64 + descBytes            backup area (maxLines lines)
 */
struct LogLayout
{
    /** Header field identifying an initialized log. */
    static constexpr std::uint64_t kMagic = 0x314741564d4e4331ull;
    /** `valid` marker: a backed-up transaction may be in flight. */
    static constexpr std::uint64_t kValid = 0x21212144494c4156ull;
    /** `valid` marker: no transaction holds a live backup. */
    static constexpr std::uint64_t kInvalid = 0x0044494c41564e49ull;

    Addr base = 0;
    unsigned maxLines = 0;

    Addr headerAddr() const { return base; }
    Addr magicAddr() const { return base; }
    Addr validAddr() const { return base + 8; }
    Addr txnIdAddr() const { return base + 16; }
    Addr countAddr() const { return base + 24; }
    Addr checksumAddr() const { return base + 32; }

    Addr descBase() const { return base + lineBytes; }
    Addr descAddr(unsigned i) const { return descBase() + i * 8; }
    std::uint64_t
    descBytes() const
    {
        return roundUp(static_cast<std::uint64_t>(maxLines) * 8, lineBytes);
    }

    Addr backupBase() const { return descBase() + descBytes(); }
    Addr backupAddr(unsigned i) const
    { return backupBase() + static_cast<Addr>(i) * lineBytes; }

    /** Total footprint of the log. */
    std::uint64_t
    sizeBytes() const
    {
        return lineBytes + descBytes()
             + static_cast<std::uint64_t>(maxLines) * lineBytes;
    }
};

/**
 * One undo-logging transaction: collects reads (for timing), deferred
 * writes, then emits the staged operation stream at commit().
 */
class UndoTx
{
  public:
    /**
     * @param shadow the thread's live program-order state
     * @param log    the thread's log placement
     */
    UndoTx(ShadowMem &shadow, const LogLayout &log);

    /** Starts a transaction with the given id (monotonic per thread). */
    void begin(std::uint64_t txn_id);

    /** Read with read-your-writes semantics; emits a timing load once
     *  per line per transaction. */
    void read(Addr addr, unsigned size, void *out);
    std::uint64_t readU64(Addr addr);

    /** Deferred transactional write (applied to shadow at commit). */
    void write(Addr addr, const void *data, unsigned size);
    void writeU64(Addr addr, std::uint64_t v);

    /** Adds application compute time to the transaction. */
    void compute(Cycles cycles);

    /**
     * Emits the complete staged op stream for this transaction into
     * @p out and applies the deferred writes to the shadow.
     */
    void commit(std::vector<Op> &out);

    /** Lines that will be (were) logged by this transaction. */
    unsigned touchedLines() const
    { return static_cast<unsigned>(lines.size()); }

  private:
    ShadowMem &shadow;
    LogLayout log;

    std::uint64_t txnId = 0;
    bool active = false;

    /** Deferred byte-granularity writes, program order preserved by
     *  last-writer-wins per byte. */
    std::map<Addr, std::uint8_t> pendingBytes;

    /** Touched (to-be-logged) data lines in first-touch order. */
    std::vector<Addr> lines;
    std::set<Addr> lineSet;

    /** Lines already charged with a timing load this transaction. */
    std::set<Addr> loadedLines;

    /** Ops accumulated before commit (loads, compute). */
    std::vector<Op> preOps;

    void touchLine(Addr line_addr);
    void emitLoad(Addr addr);

    /** Merged (shadow + pending) content of a touched line. */
    LineData mergedLine(Addr line_addr) const;

    /** Emits clwb for @p line_addrs, counter_cache_writeback for their
     *  counter lines (deduplicated), then an sfence. */
    static void barrier(std::vector<Op> &out,
                        const std::vector<Addr> &line_addrs);
};

/**
 * Computes the log checksum over (txn id, count, descriptors, backups)
 * as read through @p reader. Shared by commit-time generation and
 * recovery-time verification.
 */
std::uint64_t logChecksum(const ByteReader &reader, const LogLayout &log,
                          std::uint64_t txn_id, std::uint64_t count);

} // namespace cnvm

#endif // CNVM_TXN_UNDO_LOG_HH
