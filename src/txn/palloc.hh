/**
 * @file
 * Crash-consistent bump allocator.
 *
 * The allocation cursor lives in a persistent meta line and is advanced
 * inside the caller's transaction, so an aborted transaction rolls the
 * cursor back together with the structural pointers that referenced the
 * new object — no leaks, no dangling pointers after recovery.
 */

#ifndef CNVM_TXN_PALLOC_HH
#define CNVM_TXN_PALLOC_HH

#include "common/intmath.hh"
#include "common/logging.hh"
#include "txn/undo_log.hh"

namespace cnvm
{

class PersistentAllocator
{
  public:
    /**
     * @param cursor_addr persistent location of the 8 B cursor
     * @param pool_base   first allocatable address
     * @param pool_limit  one past the last allocatable address
     */
    PersistentAllocator(Addr cursor_addr, Addr pool_base, Addr pool_limit)
        : cursorAddr(cursor_addr), poolBase(pool_base),
          poolLimit(pool_limit)
    {
        cnvm_assert(pool_base <= pool_limit);
    }

    /** Setup-time initialization of the cursor (outside any txn). */
    template <typename InitWriter>
    void
    initialize(InitWriter &&write)
    {
        std::uint64_t base = poolBase;
        write(cursorAddr, &base, sizeof(base));
    }

    /**
     * Allocates @p bytes within the caller's transaction.
     * @return the new object's address, or 0 when the pool is full.
     */
    Addr
    alloc(UndoTx &tx, std::uint64_t bytes, std::uint64_t align = lineBytes)
    {
        Addr cursor = tx.readU64(cursorAddr);
        Addr aligned = roundUp(cursor, align);
        if (aligned + bytes > poolLimit)
            return 0;
        tx.writeU64(cursorAddr, aligned + bytes);
        return aligned;
    }

    /** Pool capacity left given the current cursor (via @p reader). */
    std::uint64_t
    remaining(const ByteReader &reader) const
    {
        Addr cursor = reader.readU64(cursorAddr);
        return cursor >= poolLimit ? 0 : poolLimit - cursor;
    }

    Addr poolStart() const { return poolBase; }
    Addr poolEnd() const { return poolLimit; }
    Addr cursorLocation() const { return cursorAddr; }

  private:
    Addr cursorAddr;
    Addr poolBase;
    Addr poolLimit;
};

} // namespace cnvm

#endif // CNVM_TXN_PALLOC_HH
