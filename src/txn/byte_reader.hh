/**
 * @file
 * Abstract byte-addressable view of persistent memory.
 *
 * Implemented by ShadowMem (the live program-order state used while
 * generating transactions) and by RecoveredImage (the decrypted
 * post-crash state), so that a workload's digest and invariant-checking
 * code runs identically against both.
 */

#ifndef CNVM_TXN_BYTE_READER_HH
#define CNVM_TXN_BYTE_READER_HH

#include <cstdint>
#include <cstring>

#include "common/types.hh"

namespace cnvm
{

class ByteReader
{
  public:
    virtual ~ByteReader() = default;

    /** Copies @p size bytes at @p addr into @p out; may cross lines. */
    virtual void read(Addr addr, unsigned size, void *out) const = 0;

    /** Convenience: one little-endian 64-bit value. */
    std::uint64_t
    readU64(Addr addr) const
    {
        std::uint64_t v = 0;
        read(addr, sizeof(v), &v);
        return v;
    }
};

} // namespace cnvm

#endif // CNVM_TXN_BYTE_READER_HH
