#include "txn/shadow_mem.hh"

#include "common/logging.hh"

namespace cnvm
{

void
ShadowMem::read(Addr addr, unsigned size, void *out) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (size > 0) {
        Addr line_addr = lineAlign(addr);
        unsigned offset = static_cast<unsigned>(addr - line_addr);
        unsigned chunk = std::min(size, lineBytes - offset);

        auto it = lines.find(line_addr);
        if (it == lines.end())
            std::memset(dst, 0, chunk);
        else
            std::memcpy(dst, it->second.data() + offset, chunk);

        dst += chunk;
        addr += chunk;
        size -= chunk;
    }
}

void
ShadowMem::write(Addr addr, const void *data, unsigned size)
{
    const auto *src = static_cast<const std::uint8_t *>(data);
    while (size > 0) {
        Addr line_addr = lineAlign(addr);
        unsigned offset = static_cast<unsigned>(addr - line_addr);
        unsigned chunk = std::min(size, lineBytes - offset);
        std::memcpy(lines[line_addr].data() + offset, src, chunk);
        src += chunk;
        addr += chunk;
        size -= chunk;
    }
}

LineData
ShadowMem::line(Addr line_addr) const
{
    cnvm_assert(isLineAligned(line_addr));
    auto it = lines.find(line_addr);
    return it == lines.end() ? LineData{} : it->second;
}

} // namespace cnvm
