/**
 * @file
 * Queue workload: random enqueue/dequeue on a persistent circular
 * buffer (paper section 6.2).
 */

#ifndef CNVM_WORKLOADS_QUEUE_HH
#define CNVM_WORKLOADS_QUEUE_HH

#include "workloads/workload.hh"

namespace cnvm
{

class QueueWorkload : public Workload
{
  public:
    explicit QueueWorkload(const WorkloadParams &params);

    const char *name() const override { return "Queue"; }

    std::uint64_t digest(const ByteReader &reader) const override;
    ValidationResult validate(const ByteReader &reader) const override;

    std::uint64_t capacity() const { return slots; }

  protected:
    void doSetup() override;
    void buildTxn(UndoTx &tx) override;

  private:
    unsigned itemBytes = 0;
    std::uint64_t slots = 0;
    Addr metaAddr = 0;
    Addr slotsBase = 0;

    Addr headAddr() const { return metaAddr; }
    Addr tailAddr() const { return metaAddr + 8; }
    Addr countAddr() const { return metaAddr + 16; }
    Addr nextValAddr() const { return metaAddr + 24; }
    Addr slotAddr(std::uint64_t s) const
    { return slotsBase + s * itemBytes; }

    void enqueue(UndoTx &tx);
    void dequeue(UndoTx &tx);
};

} // namespace cnvm

#endif // CNVM_WORKLOADS_QUEUE_HH
