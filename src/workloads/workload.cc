#include "workloads/workload.hh"

#include "common/logging.hh"

namespace cnvm
{

Workload::Workload(const WorkloadParams &params)
    : params(params), rng(params.seed)
{
    logLayout.base = params.regionBase;
    logLayout.maxLines = params.logLines;
    if (logLayout.sizeBytes() + lineBytes > params.regionBytes)
        cnvm_fatal("workload region (%llu B) too small for the undo log",
                   static_cast<unsigned long long>(params.regionBytes));
    staticCursor = roundUp(params.regionBase + logLayout.sizeBytes(),
                           lineBytes);
}

RegionPart
Workload::classifyAddr(Addr addr) const
{
    if (!inRegion(addr))
        return RegionPart::Outside;
    if (addr < logLayout.descBase())
        return RegionPart::LogHeader;
    if (addr < logLayout.backupBase())
        return RegionPart::LogDesc;
    if (addr < logLayout.backupAddr(logLayout.maxLines))
        return RegionPart::LogBackup;
    return RegionPart::Structure;
}

void
Workload::initWrite(Addr addr, const void *data, unsigned size)
{
    cnvm_assert(writer != nullptr);
    shadow.write(addr, data, size);
    writer(addr, data, size);
}

void
Workload::initWriteU64(Addr addr, std::uint64_t v)
{
    initWrite(addr, &v, sizeof(v));
}

Addr
Workload::allocStatic(std::uint64_t bytes, std::uint64_t align)
{
    Addr addr = roundUp(staticCursor, align);
    if (addr + bytes > regionEnd())
        cnvm_fatal("workload '%s': region exhausted during setup "
                   "(need %llu more bytes)", name(),
                   static_cast<unsigned long long>(
                       addr + bytes - regionEnd()));
    staticCursor = addr + bytes;
    return addr;
}

void
Workload::setup(InitWriter init_writer)
{
    writer = std::move(init_writer);

    // Initialize the undo log header: present but holding no live
    // backup, as after a clean shutdown.
    struct
    {
        std::uint64_t magic, valid, txn_id, count, checksum;
    } header{LogLayout::kMagic, LogLayout::kInvalid, 0, 0, 0};
    initWrite(logLayout.headerAddr(), &header, sizeof(header));

    doSetup();

    if (params.recordDigests)
        digestLog.push_back(digest(shadow));
}

bool
Workload::next(std::vector<Op> &out)
{
    if (issued >= params.txnTarget)
        return false;

    UndoTx tx(shadow, logLayout);
    tx.begin(issued + 1);
    if (params.computePerTxn > 0)
        tx.compute(params.computePerTxn);
    buildTxn(tx);
    linesLogged += tx.touchedLines();
    tx.commit(out);

    ++issued;
    if (params.recordDigests)
        digestLog.push_back(digest(shadow));
    return true;
}

} // namespace cnvm
