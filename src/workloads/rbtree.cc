#include "workloads/rbtree.hh"

#include <functional>

#include "common/hash.hh"
#include "workloads/mem_io.hh"
#include "common/logging.hh"

namespace cnvm
{

RbTreeWorkload::RbTreeWorkload(const WorkloadParams &params)
    : Workload(params)
{
}

void
RbTreeWorkload::doSetup()
{
    metaAddr = allocStatic(lineBytes);
    Addr pool_base = allocStatic(0);
    alloc = std::make_unique<PersistentAllocator>(cursorAddr(), pool_base,
                                                  regionEnd());
    alloc->initialize([this](Addr a, const void *d, unsigned s) {
        initWrite(a, d, s);
    });
    initWriteU64(rootPtrAddr(), 0); // empty tree

    // Pre-populate: the measured transactions should traverse a deep,
    // memory-resident tree, not grow a tiny one from scratch.
    std::uint64_t pool_nodes =
        (regionEnd() - pool_base) / lineBytes;
    std::uint64_t target = static_cast<std::uint64_t>(
        pool_nodes * params.setupFill);
    SetupIo io(shadow,
               [this](Addr a, std::uint64_t v) { initWriteU64(a, v); },
               cursorAddr(), regionEnd());
    Random setup_rng(params.seed ^ 0x5e7f111ull);
    for (std::uint64_t i = 0; i < target; ++i) {
        std::uint64_t key = setup_rng.next();
        insert(io, key);
    }
}

void
RbTreeWorkload::rotateLeft(MemIo &io, Addr x)
{
    Addr y = io.readU64(fRight(x));
    Addr yl = io.readU64(fLeft(y));

    io.writeU64(fRight(x), yl);
    if (yl != 0)
        io.writeU64(fParent(yl), x);

    Addr xp = io.readU64(fParent(x));
    io.writeU64(fParent(y), xp);
    if (xp == 0)
        io.writeU64(rootPtrAddr(), y);
    else if (io.readU64(fLeft(xp)) == x)
        io.writeU64(fLeft(xp), y);
    else
        io.writeU64(fRight(xp), y);

    io.writeU64(fLeft(y), x);
    io.writeU64(fParent(x), y);
}

void
RbTreeWorkload::rotateRight(MemIo &io, Addr x)
{
    Addr y = io.readU64(fLeft(x));
    Addr yr = io.readU64(fRight(y));

    io.writeU64(fLeft(x), yr);
    if (yr != 0)
        io.writeU64(fParent(yr), x);

    Addr xp = io.readU64(fParent(x));
    io.writeU64(fParent(y), xp);
    if (xp == 0)
        io.writeU64(rootPtrAddr(), y);
    else if (io.readU64(fRight(xp)) == x)
        io.writeU64(fRight(xp), y);
    else
        io.writeU64(fLeft(xp), y);

    io.writeU64(fRight(y), x);
    io.writeU64(fParent(x), y);
}

void
RbTreeWorkload::fixup(MemIo &io, Addr z)
{
    while (true) {
        Addr zp = io.readU64(fParent(z));
        if (zp == 0 || io.readU64(fColor(zp)) != red)
            break;
        Addr zpp = io.readU64(fParent(zp));
        cnvm_assert(zpp != 0); // a red node always has a parent

        if (zp == io.readU64(fLeft(zpp))) {
            Addr uncle = io.readU64(fRight(zpp));
            if (uncle != 0 && io.readU64(fColor(uncle)) == red) {
                io.writeU64(fColor(zp), black);
                io.writeU64(fColor(uncle), black);
                io.writeU64(fColor(zpp), red);
                z = zpp;
            } else {
                if (z == io.readU64(fRight(zp))) {
                    z = zp;
                    rotateLeft(io, z);
                    zp = io.readU64(fParent(z));
                    zpp = io.readU64(fParent(zp));
                }
                io.writeU64(fColor(zp), black);
                io.writeU64(fColor(zpp), red);
                rotateRight(io, zpp);
            }
        } else {
            Addr uncle = io.readU64(fLeft(zpp));
            if (uncle != 0 && io.readU64(fColor(uncle)) == red) {
                io.writeU64(fColor(zp), black);
                io.writeU64(fColor(uncle), black);
                io.writeU64(fColor(zpp), red);
                z = zpp;
            } else {
                if (z == io.readU64(fLeft(zp))) {
                    z = zp;
                    rotateRight(io, z);
                    zp = io.readU64(fParent(z));
                    zpp = io.readU64(fParent(zp));
                }
                io.writeU64(fColor(zp), black);
                io.writeU64(fColor(zpp), red);
                rotateLeft(io, zpp);
            }
        }
    }
    Addr root = io.readU64(rootPtrAddr());
    io.writeU64(fColor(root), black);
}

void
RbTreeWorkload::insert(MemIo &io, std::uint64_t key)
{
    Addr parent = 0;
    Addr cur = io.readU64(rootPtrAddr());
    while (cur != 0) {
        parent = cur;
        cur = key < io.readU64(fKey(cur)) ? io.readU64(fLeft(cur))
                                          : io.readU64(fRight(cur));
    }

    Addr z = io.allocNode(lineBytes, lineBytes);
    cnvm_assert(z != 0); // guaranteed by the pool-low precheck
    io.writeU64(fKey(z), key);
    io.writeU64(fLeft(z), 0);
    io.writeU64(fRight(z), 0);
    io.writeU64(fParent(z), parent);
    io.writeU64(fColor(z), red);

    if (parent == 0)
        io.writeU64(rootPtrAddr(), z);
    else if (key < io.readU64(fKey(parent)))
        io.writeU64(fLeft(parent), z);
    else
        io.writeU64(fRight(parent), z);

    fixup(io, z);
}

void
RbTreeWorkload::searchOnly(MemIo &io, std::uint64_t key)
{
    Addr cur = io.readU64(rootPtrAddr());
    while (cur != 0) {
        std::uint64_t k = io.readU64(fKey(cur));
        if (k == key)
            return;
        cur = key < k ? io.readU64(fLeft(cur)) : io.readU64(fRight(cur));
    }
}

void
RbTreeWorkload::buildTxn(UndoTx &tx)
{
    TxIo io(tx, *alloc);
    for (unsigned k = 0; k < params.batch; ++k) {
        std::uint64_t key = rng.next();
        if (!poolLow && alloc->remaining(shadow) < 8 * lineBytes)
            poolLow = true;
        if (poolLow)
            searchOnly(io, key);
        else
            insert(io, key);
    }
}

bool
RbTreeWorkload::nodeAddrValid(Addr node, Addr cursor) const
{
    return node >= alloc->poolStart() && node + lineBytes <= cursor
        && isLineAligned(node);
}

std::uint64_t
RbTreeWorkload::digest(const ByteReader &reader) const
{
    Addr cursor = reader.readU64(cursorAddr());
    std::uint64_t budget =
        (regionEnd() - alloc->poolStart()) / lineBytes + 1;
    std::uint64_t state = fnv1aU64(0x52);

    std::function<void(Addr)> walk = [&](Addr node) {
        if (node == 0)
            return;
        if (budget == 0 || !nodeAddrValid(node, cursor)) {
            state = fnv1aU64(0xbadbadbad, state);
            return;
        }
        --budget;
        walk(reader.readU64(fLeft(node)));
        state = fnv1aU64(reader.readU64(fKey(node)), state);
        walk(reader.readU64(fRight(node)));
    };
    walk(reader.readU64(rootPtrAddr()));
    return state;
}

ValidationResult
RbTreeWorkload::validate(const ByteReader &reader) const
{
    Addr cursor = reader.readU64(cursorAddr());
    if (cursor < alloc->poolStart() || cursor > regionEnd()
        || cursor % lineBytes != 0)
        return ValidationResult::fail("allocator cursor corrupted");

    std::uint64_t allocated = (cursor - alloc->poolStart()) / lineBytes;
    std::uint64_t visited = 0;
    std::string why;

    // Returns the black-height of the subtree, or -1 on violation.
    std::function<int(Addr, Addr, bool, std::uint64_t, bool,
                      std::uint64_t)> check =
        [&](Addr node, Addr parent, bool has_lo, std::uint64_t lo,
            bool has_hi, std::uint64_t hi) -> int {
        if (node == 0)
            return 0;
        if (!nodeAddrValid(node, cursor)) {
            why = "node pointer out of pool";
            return -1;
        }
        if (++visited > allocated) {
            why = "more reachable nodes than allocated (cycle?)";
            return -1;
        }
        if (reader.readU64(fParent(node)) != parent) {
            why = "parent pointer mismatch";
            return -1;
        }
        std::uint64_t key = reader.readU64(fKey(node));
        if ((has_lo && key < lo) || (has_hi && key > hi)) {
            why = "BST ordering violated";
            return -1;
        }
        std::uint64_t color = reader.readU64(fColor(node));
        if (color != red && color != black) {
            why = "invalid color value (undecryptable line?)";
            return -1;
        }
        if (color == red && parent != 0
            && reader.readU64(fColor(parent)) == red) {
            why = "red node with red parent";
            return -1;
        }
        int lh = check(reader.readU64(fLeft(node)), node, has_lo, lo,
                       true, key);
        if (lh < 0)
            return -1;
        int rh = check(reader.readU64(fRight(node)), node, true, key,
                       has_hi, hi);
        if (rh < 0)
            return -1;
        if (lh != rh) {
            why = "black heights differ";
            return -1;
        }
        return lh + (color == black ? 1 : 0);
    };

    Addr root = reader.readU64(rootPtrAddr());
    if (root != 0 && reader.readU64(fColor(root)) != black)
        return ValidationResult::fail("root is not black");
    if (check(root, 0, false, 0, false, 0) < 0)
        return ValidationResult::fail(why);
    if (visited != allocated)
        return ValidationResult::fail("unreachable allocated nodes");
    return ValidationResult::pass();
}

} // namespace cnvm
