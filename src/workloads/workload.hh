/**
 * @file
 * Base class for the five evaluated workloads (paper section 6.2).
 *
 * A workload owns a per-thread persistent region laid out as
 * [undo log | meta | structure...], generates one undo-logging
 * transaction per next() batch, and knows how to digest and validate its
 * structure through any ByteReader — both the live shadow (at commit
 * points, for later comparison) and the decrypted post-crash image.
 */

#ifndef CNVM_WORKLOADS_WORKLOAD_HH
#define CNVM_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "common/random.hh"
#include "cpu/op.hh"
#include "txn/palloc.hh"
#include "txn/shadow_mem.hh"
#include "txn/undo_log.hh"

namespace cnvm
{

/** Parameters shared by all workloads. */
struct WorkloadParams
{
    /** Base of this thread's persistent region (set by the System). */
    Addr regionBase = Addr(64) * 1024 * 1024;

    /** Region size; bounds the structure footprint. */
    std::uint64_t regionBytes = 8ull * 1024 * 1024;

    /** Number of transactions to execute. */
    unsigned txnTarget = 500;

    /** Basic mutations (swaps / inserts / queue ops) per transaction. */
    unsigned batch = 1;

    /** Item size in cache lines (array and queue workloads). */
    unsigned itemLines = 1;

    /** Application compute time charged per transaction. */
    Cycles computePerTxn = 1000;

    std::uint64_t seed = 1;

    /** Undo-log capacity in lines (max lines one txn may touch). */
    unsigned logLines = 128;

    /**
     * Fraction of the structure's pool to pre-populate during setup,
     * so that transactions traverse a realistically deep structure
     * from the first operation (trees and the hash table).
     */
    double setupFill = 0.5;

    /**
     * Record a digest of the shadow after every commit, enabling
     * post-crash committed-prefix verification. Off for benches (the
     * digest walk is host-side work proportional to the footprint).
     */
    bool recordDigests = false;
};

/**
 * Which functional part of a workload's region an address belongs to.
 * The crash oracle uses this to attribute a counter/data mismatch: a
 * garbage log header loses the whole region, a garbage structure line
 * is recoverable as long as the log still holds its backup.
 */
enum class RegionPart
{
    LogHeader,  //!< the undo log's header line (magic/valid/checksum)
    LogDesc,    //!< undo log descriptor area
    LogBackup,  //!< undo log backup lines
    Structure,  //!< metadata and structure storage
    Outside,    //!< not in this workload's region
};

inline const char *
regionPartName(RegionPart part)
{
    switch (part) {
      case RegionPart::LogHeader: return "log-header";
      case RegionPart::LogDesc: return "log-desc";
      case RegionPart::LogBackup: return "log-backup";
      case RegionPart::Structure: return "structure";
      case RegionPart::Outside: return "outside";
    }
    return "?";
}

/** Outcome of validating a recovered (or live) structure. */
struct ValidationResult
{
    bool ok = false;
    std::string why;

    static ValidationResult pass() { return {true, ""}; }
    static ValidationResult
    fail(std::string reason)
    {
        return {false, std::move(reason)};
    }
};

/**
 * Uniform persistent-memory I/O used by structure algorithms so the
 * same insertion code runs both transactionally (during the measured
 * run) and against the shadow (during setup pre-population).
 */
class MemIo
{
  public:
    virtual ~MemIo() = default;
    virtual std::uint64_t readU64(Addr addr) = 0;
    virtual void writeU64(Addr addr, std::uint64_t v) = 0;

    /** Allocates from the structure's pool; 0 when exhausted. */
    virtual Addr allocNode(std::uint64_t bytes, std::uint64_t align) = 0;
};

class Workload : public OpSource
{
  public:
    using InitWriter =
        std::function<void(Addr, const void *, unsigned)>;

    explicit Workload(const WorkloadParams &params);
    ~Workload() override = default;

    virtual const char *name() const = 0;

    /**
     * Builds the initial persistent state. @p writer installs bytes
     * consistently into the simulated NVM (data, counters and live
     * view), as a freshly booted system would find them.
     */
    void setup(InitWriter writer);

    /** OpSource: emits one transaction per call. */
    bool next(std::vector<Op> &out) final;

    /** Folds the structure's logical content into one 64-bit digest. */
    virtual std::uint64_t digest(const ByteReader &reader) const = 0;

    /** Checks every structural invariant, defensively (a corrupted
     *  image must produce a failure, never a hang or a crash). */
    virtual ValidationResult validate(const ByteReader &reader) const = 0;

    const LogLayout &log() const { return logLayout; }
    ShadowMem &shadowMem() { return shadow; }
    const ShadowMem &shadowMem() const { return shadow; }

    /** digests()[k] is the digest after k committed transactions. */
    const std::vector<std::uint64_t> &digests() const { return digestLog; }

    std::uint64_t txnsIssued() const { return issued; }

    /** Total lines logged (= mutated) across all issued transactions. */
    std::uint64_t totalLinesLogged() const { return linesLogged; }
    unsigned txnTarget() const { return params.txnTarget; }
    Addr regionBase() const { return params.regionBase; }
    Addr regionEnd() const
    { return params.regionBase + params.regionBytes; }

    /** True if @p addr lies inside this workload's region. */
    bool
    inRegion(Addr addr) const
    {
        return addr >= regionBase() && addr < regionEnd();
    }

    /** Functional part of the region @p addr falls into. */
    RegionPart classifyAddr(Addr addr) const;

  protected:
    /** Subclass hook: lay out and initialize the structure. */
    virtual void doSetup() = 0;

    /** Subclass hook: issue the reads/writes of one transaction. */
    virtual void buildTxn(UndoTx &tx) = 0;

    /** Setup-time write: updates the shadow and the simulated NVM. */
    void initWrite(Addr addr, const void *data, unsigned size);
    void initWriteU64(Addr addr, std::uint64_t v);

    /** Claims @p bytes of region space during setup. */
    Addr allocStatic(std::uint64_t bytes,
                     std::uint64_t align = lineBytes);

    WorkloadParams params;
    ShadowMem shadow;
    LogLayout logLayout;
    Random rng;

  private:
    InitWriter writer;
    Addr staticCursor = 0;
    std::uint64_t issued = 0;
    std::uint64_t linesLogged = 0;
    std::vector<std::uint64_t> digestLog;
};

} // namespace cnvm

#endif // CNVM_WORKLOADS_WORKLOAD_HH
