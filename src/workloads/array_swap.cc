#include "workloads/array_swap.hh"

#include <vector>

#include "common/logging.hh"
#include "workloads/item_pattern.hh"

namespace cnvm
{

ArraySwapWorkload::ArraySwapWorkload(const WorkloadParams &params)
    : Workload(params)
{
}

void
ArraySwapWorkload::doSetup()
{
    itemBytes = params.itemLines * lineBytes;
    Addr avail_base = allocStatic(0);
    std::uint64_t avail = regionEnd() - avail_base;
    items = avail / itemBytes;
    if (items < 2)
        cnvm_fatal("ArraySwap: region too small for two items");
    arrayBase = allocStatic(items * itemBytes);

    std::vector<std::uint8_t> buf(itemBytes);
    for (std::uint64_t i = 0; i < items; ++i) {
        fillItemPattern(i, itemBytes, buf.data());
        initWrite(itemAddr(i), buf.data(), itemBytes);
    }
}

void
ArraySwapWorkload::buildTxn(UndoTx &tx)
{
    std::vector<std::uint8_t> a(itemBytes), b(itemBytes);
    for (unsigned k = 0; k < params.batch; ++k) {
        std::uint64_t i = rng.below(items);
        std::uint64_t j = rng.below(items - 1);
        if (j >= i)
            ++j;

        tx.read(itemAddr(i), itemBytes, a.data());
        tx.read(itemAddr(j), itemBytes, b.data());
        tx.write(itemAddr(i), b.data(), itemBytes);
        tx.write(itemAddr(j), a.data(), itemBytes);
    }
}

std::uint64_t
ArraySwapWorkload::digest(const ByteReader &reader) const
{
    std::uint64_t state = fnv1aU64(items);
    for (std::uint64_t i = 0; i < items; ++i)
        state = fnv1aU64(reader.readU64(itemAddr(i)), state);
    return state;
}

ValidationResult
ArraySwapWorkload::validate(const ByteReader &reader) const
{
    // The multiset of values must still be {0..items-1}; swaps permute
    // but never create or destroy. Checked with order-independent
    // moments, plus a full pattern check per item.
    std::uint64_t sum = 0, sum_sq = 0, xors = 0;
    std::uint64_t expect_sum = 0, expect_sq = 0, expect_xor = 0;
    std::vector<std::uint8_t> buf(itemBytes);

    for (std::uint64_t i = 0; i < items; ++i) {
        reader.read(itemAddr(i), itemBytes, buf.data());
        std::uint64_t v;
        std::memcpy(&v, buf.data(), sizeof(v));
        if (v >= items)
            return ValidationResult::fail(
                "item value out of range (undecryptable line?)");
        if (!checkItemPattern(v, itemBytes, buf.data()))
            return ValidationResult::fail("item payload mismatch");
        sum += v;
        sum_sq += v * v;
        xors ^= v;
        expect_sum += i;
        expect_sq += i * i;
        expect_xor ^= i;
    }
    if (sum != expect_sum || sum_sq != expect_sq || xors != expect_xor)
        return ValidationResult::fail("value multiset corrupted");
    return ValidationResult::pass();
}

} // namespace cnvm
