/**
 * @file
 * Deterministic item payloads for the array and queue workloads.
 *
 * An item's entire byte content is derived from a single 64-bit value,
 * so that (a) validation can detect any torn or garbled byte, and
 * (b) digests need to fold only the value.
 */

#ifndef CNVM_WORKLOADS_ITEM_PATTERN_HH
#define CNVM_WORKLOADS_ITEM_PATTERN_HH

#include <cstring>
#include <vector>

#include "common/hash.hh"
#include "common/types.hh"

namespace cnvm
{

/**
 * Fills @p item_bytes bytes: word 0 is the value itself, word i > 0 is
 * a hash chain seeded by the value.
 */
inline void
fillItemPattern(std::uint64_t value, unsigned item_bytes, std::uint8_t *out)
{
    std::memcpy(out, &value, sizeof(value));
    std::uint64_t state = fnv1aU64(value);
    for (unsigned off = 8; off + 8 <= item_bytes; off += 8) {
        state = fnv1aU64(state);
        std::memcpy(out + off, &state, sizeof(state));
    }
}

/** Checks that @p bytes is exactly fillItemPattern(value). */
inline bool
checkItemPattern(std::uint64_t value, unsigned item_bytes,
                 const std::uint8_t *bytes)
{
    std::vector<std::uint8_t> expect(item_bytes);
    fillItemPattern(value, item_bytes, expect.data());
    return std::memcmp(bytes, expect.data(), item_bytes) == 0;
}

} // namespace cnvm

#endif // CNVM_WORKLOADS_ITEM_PATTERN_HH
