/**
 * @file
 * Red-Black Tree workload: inserts random keys into a persistent
 * red-black tree (paper section 6.2).
 *
 * Node layout (one cache line):
 *   node + 0   key
 *   node + 8   left child (0 = nil)
 *   node + 16  right child
 *   node + 24  parent (0 for root)
 *   node + 32  color (1 = red, 0 = black)
 */

#ifndef CNVM_WORKLOADS_RBTREE_HH
#define CNVM_WORKLOADS_RBTREE_HH

#include <memory>

#include "workloads/workload.hh"

namespace cnvm
{

class RbTreeWorkload : public Workload
{
  public:
    explicit RbTreeWorkload(const WorkloadParams &params);

    const char *name() const override { return "RB-Tree"; }

    std::uint64_t digest(const ByteReader &reader) const override;
    ValidationResult validate(const ByteReader &reader) const override;

  protected:
    void doSetup() override;
    void buildTxn(UndoTx &tx) override;

  private:
    Addr metaAddr = 0;
    std::unique_ptr<PersistentAllocator> alloc;
    bool poolLow = false;

    Addr rootPtrAddr() const { return metaAddr; }
    Addr cursorAddr() const { return metaAddr + 8; }

    static Addr fKey(Addr n) { return n; }
    static Addr fLeft(Addr n) { return n + 8; }
    static Addr fRight(Addr n) { return n + 16; }
    static Addr fParent(Addr n) { return n + 24; }
    static Addr fColor(Addr n) { return n + 32; }

    static constexpr std::uint64_t red = 1;
    static constexpr std::uint64_t black = 0;

    void insert(MemIo &io, std::uint64_t key);
    void searchOnly(MemIo &io, std::uint64_t key);
    void rotateLeft(MemIo &io, Addr x);
    void rotateRight(MemIo &io, Addr x);
    void fixup(MemIo &io, Addr z);

    bool nodeAddrValid(Addr node, Addr cursor) const;
};

} // namespace cnvm

#endif // CNVM_WORKLOADS_RBTREE_HH
