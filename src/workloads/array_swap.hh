/**
 * @file
 * Array Swap workload: swaps random items in a persistent array
 * (paper section 6.2).
 */

#ifndef CNVM_WORKLOADS_ARRAY_SWAP_HH
#define CNVM_WORKLOADS_ARRAY_SWAP_HH

#include "workloads/workload.hh"

namespace cnvm
{

class ArraySwapWorkload : public Workload
{
  public:
    explicit ArraySwapWorkload(const WorkloadParams &params);

    const char *name() const override { return "Array"; }

    std::uint64_t digest(const ByteReader &reader) const override;
    ValidationResult validate(const ByteReader &reader) const override;

    std::uint64_t numItems() const { return items; }
    Addr itemAddr(std::uint64_t i) const
    { return arrayBase + i * itemBytes; }

  protected:
    void doSetup() override;
    void buildTxn(UndoTx &tx) override;

  private:
    unsigned itemBytes = 0;
    std::uint64_t items = 0;
    Addr arrayBase = 0;
};

} // namespace cnvm

#endif // CNVM_WORKLOADS_ARRAY_SWAP_HH
