#include "workloads/btree.hh"

#include <functional>

#include "common/hash.hh"
#include "workloads/mem_io.hh"
#include "common/logging.hh"

namespace cnvm
{

BTreeWorkload::BTreeWorkload(const WorkloadParams &params)
    : Workload(params)
{
}

void
BTreeWorkload::doSetup()
{
    metaAddr = allocStatic(lineBytes);
    // Nodes are two lines and node-aligned; the pool base must be too
    // (per-core regions are only line-aligned).
    Addr pool_base = allocStatic(0, nodeBytes);
    alloc = std::make_unique<PersistentAllocator>(cursorAddr(), pool_base,
                                                  regionEnd());
    alloc->initialize([this](Addr a, const void *d, unsigned s) {
        initWrite(a, d, s);
    });

    // Initial empty root: a leaf with zero keys, allocated statically.
    Addr root = pool_base;
    initWriteU64(cursorAddr(), pool_base + nodeBytes);
    initWriteU64(nodeMeta(root), packMeta(true, 0));
    initWriteU64(rootPtrAddr(), root);

    // Pre-populate so the measured transactions traverse a deep tree.
    std::uint64_t pool_nodes = (regionEnd() - pool_base) / nodeBytes;
    std::uint64_t target = static_cast<std::uint64_t>(
        pool_nodes * params.setupFill) * (maxKeys / 2);
    SetupIo io(shadow,
               [this](Addr a, std::uint64_t v) { initWriteU64(a, v); },
               cursorAddr(), regionEnd());
    Random setup_rng(params.seed ^ 0xb7ee111ull);
    for (std::uint64_t i = 0; i < target; ++i)
        insert(io, setup_rng.next());
}

Addr
BTreeWorkload::newNode(MemIo &io, bool leaf)
{
    Addr node = io.allocNode(nodeBytes, nodeBytes);
    cnvm_assert(node != 0); // guaranteed by the pool-low precheck
    io.writeU64(nodeMeta(node), packMeta(leaf, 0));
    return node;
}

void
BTreeWorkload::splitChild(MemIo &io, Addr parent, unsigned index)
{
    Addr y = io.readU64(nodeChild(parent, index));
    std::uint64_t y_meta = io.readU64(nodeMeta(y));
    bool leaf = metaLeaf(y_meta);
    cnvm_assert(metaN(y_meta) == maxKeys);

    Addr z = newNode(io, leaf);

    // Upper minDegree-1 keys (and children) move to the new sibling.
    for (unsigned i = 0; i < minDegree - 1; ++i) {
        io.writeU64(nodeKey(z, i),
                    io.readU64(nodeKey(y, i + minDegree)));
    }
    if (!leaf) {
        for (unsigned i = 0; i < minDegree; ++i) {
            io.writeU64(nodeChild(z, i),
                        io.readU64(nodeChild(y, i + minDegree)));
        }
    }
    io.writeU64(nodeMeta(z), packMeta(leaf, minDegree - 1));
    io.writeU64(nodeMeta(y), packMeta(leaf, minDegree - 1));

    // Shift the parent's keys/children right of `index` and hoist the
    // median key.
    std::uint64_t p_meta = io.readU64(nodeMeta(parent));
    unsigned pn = metaN(p_meta);
    for (unsigned i = pn; i > index; --i) {
        io.writeU64(nodeKey(parent, i),
                    io.readU64(nodeKey(parent, i - 1)));
        io.writeU64(nodeChild(parent, i + 1),
                    io.readU64(nodeChild(parent, i)));
    }
    io.writeU64(nodeKey(parent, index),
                io.readU64(nodeKey(y, minDegree - 1)));
    io.writeU64(nodeChild(parent, index + 1), z);
    io.writeU64(nodeMeta(parent), packMeta(metaLeaf(p_meta), pn + 1));
}

void
BTreeWorkload::insert(MemIo &io, std::uint64_t key)
{
    Addr root = io.readU64(rootPtrAddr());
    if (metaN(io.readU64(nodeMeta(root))) == maxKeys) {
        Addr s = newNode(io, false);
        io.writeU64(nodeChild(s, 0), root);
        splitChild(io, s, 0);
        io.writeU64(rootPtrAddr(), s);
        root = s;
    }

    Addr x = root;
    for (;;) {
        std::uint64_t x_meta = io.readU64(nodeMeta(x));
        unsigned n = metaN(x_meta);

        if (metaLeaf(x_meta)) {
            // Shift larger keys right, insert in place.
            unsigned i = n;
            while (i > 0 && io.readU64(nodeKey(x, i - 1)) > key) {
                io.writeU64(nodeKey(x, i), io.readU64(nodeKey(x, i - 1)));
                --i;
            }
            io.writeU64(nodeKey(x, i), key);
            io.writeU64(nodeMeta(x), packMeta(true, n + 1));
            return;
        }

        unsigned i = 0;
        while (i < n && key > io.readU64(nodeKey(x, i)))
            ++i;
        Addr c = io.readU64(nodeChild(x, i));
        if (metaN(io.readU64(nodeMeta(c))) == maxKeys) {
            splitChild(io, x, i);
            if (key > io.readU64(nodeKey(x, i)))
                ++i;
            c = io.readU64(nodeChild(x, i));
        }
        x = c;
    }
}

void
BTreeWorkload::searchOnly(MemIo &io, std::uint64_t key)
{
    Addr x = io.readU64(rootPtrAddr());
    for (;;) {
        std::uint64_t x_meta = io.readU64(nodeMeta(x));
        unsigned n = metaN(x_meta);
        unsigned i = 0;
        while (i < n && key > io.readU64(nodeKey(x, i)))
            ++i;
        if (i < n && io.readU64(nodeKey(x, i)) == key)
            return;
        if (metaLeaf(x_meta))
            return;
        x = io.readU64(nodeChild(x, i));
    }
}

void
BTreeWorkload::buildTxn(UndoTx &tx)
{
    TxIo io(tx, *alloc);
    for (unsigned k = 0; k < params.batch; ++k) {
        std::uint64_t key = rng.next();
        if (!poolLow && alloc->remaining(shadow) < 64 * nodeBytes)
            poolLow = true;
        if (poolLow)
            searchOnly(io, key);
        else
            insert(io, key);
    }
}

bool
BTreeWorkload::nodeAddrValid(Addr node, Addr cursor) const
{
    return node >= alloc->poolStart() && node + nodeBytes <= cursor
        && node % nodeBytes == 0;
}

std::uint64_t
BTreeWorkload::foldInOrder(const ByteReader &reader, Addr node,
                           std::uint64_t state, std::uint64_t &budget,
                           Addr cursor) const
{
    if (budget == 0)
        return fnv1aU64(0xbadbadbad, state);
    --budget;
    if (!nodeAddrValid(node, cursor))
        return fnv1aU64(0xbadbadbad, state);

    std::uint64_t meta = reader.readU64(nodeMeta(node));
    unsigned n = metaN(meta);
    if (n > maxKeys)
        return fnv1aU64(0xbadbadbad, state);

    for (unsigned i = 0; i < n; ++i) {
        if (!metaLeaf(meta)) {
            state = foldInOrder(reader,
                                reader.readU64(nodeChild(node, i)),
                                state, budget, cursor);
        }
        state = fnv1aU64(reader.readU64(nodeKey(node, i)), state);
    }
    if (!metaLeaf(meta)) {
        state = foldInOrder(reader, reader.readU64(nodeChild(node, n)),
                            state, budget, cursor);
    }
    return state;
}

std::uint64_t
BTreeWorkload::digest(const ByteReader &reader) const
{
    Addr cursor = reader.readU64(cursorAddr());
    Addr root = reader.readU64(rootPtrAddr());
    std::uint64_t budget =
        (regionEnd() - alloc->poolStart()) / nodeBytes + 1;
    return foldInOrder(reader, root, fnv1aU64(0x42), budget, cursor);
}

std::uint64_t
BTreeWorkload::keyCount(const ByteReader &reader) const
{
    Addr cursor = reader.readU64(cursorAddr());
    std::uint64_t count = 0;
    std::uint64_t budget =
        (regionEnd() - alloc->poolStart()) / nodeBytes + 1;

    std::function<void(Addr)> walk = [&](Addr node) {
        if (budget == 0 || !nodeAddrValid(node, cursor))
            return;
        --budget;
        std::uint64_t meta = reader.readU64(nodeMeta(node));
        unsigned n = std::min(metaN(meta), maxKeys);
        count += n;
        if (!metaLeaf(meta)) {
            for (unsigned i = 0; i <= n; ++i)
                walk(reader.readU64(nodeChild(node, i)));
        }
    };
    walk(reader.readU64(rootPtrAddr()));
    return count;
}

ValidationResult
BTreeWorkload::validate(const ByteReader &reader) const
{
    Addr cursor = reader.readU64(cursorAddr());
    if (cursor < alloc->poolStart() || cursor > regionEnd()
        || cursor % nodeBytes != 0)
        return ValidationResult::fail("allocator cursor corrupted");

    std::uint64_t allocated = (cursor - alloc->poolStart()) / nodeBytes;
    std::uint64_t visited = 0;
    int leaf_depth = -1;
    std::string why;

    // Recursive structural check: key ordering, bounds, uniform leaf
    // depth, node counts. Defensive against corrupted pointers.
    std::function<bool(Addr, std::uint64_t, std::uint64_t, bool, bool,
                       int)> check =
        [&](Addr node, std::uint64_t lo, std::uint64_t hi, bool has_lo,
            bool has_hi, int depth) -> bool {
        if (!nodeAddrValid(node, cursor)) {
            why = "node pointer out of pool";
            return false;
        }
        if (++visited > allocated) {
            why = "more reachable nodes than allocated";
            return false;
        }
        std::uint64_t meta = reader.readU64(nodeMeta(node));
        unsigned n = metaN(meta);
        if (n > maxKeys) {
            why = "node key count out of range";
            return false;
        }
        for (unsigned i = 0; i < n; ++i) {
            std::uint64_t key = reader.readU64(nodeKey(node, i));
            if (i > 0 && key < reader.readU64(nodeKey(node, i - 1))) {
                why = "keys out of order within node";
                return false;
            }
            if ((has_lo && key < lo) || (has_hi && key > hi)) {
                why = "key violates subtree bounds";
                return false;
            }
        }
        if (metaLeaf(meta)) {
            if (leaf_depth == -1)
                leaf_depth = depth;
            else if (leaf_depth != depth) {
                why = "leaves at differing depths";
                return false;
            }
            return true;
        }
        for (unsigned i = 0; i <= n; ++i) {
            std::uint64_t clo = lo, chi = hi;
            bool h_lo = has_lo, h_hi = has_hi;
            if (i > 0) {
                clo = reader.readU64(nodeKey(node, i - 1));
                h_lo = true;
            }
            if (i < n) {
                chi = reader.readU64(nodeKey(node, i));
                h_hi = true;
            }
            if (!check(reader.readU64(nodeChild(node, i)), clo, chi,
                       h_lo, h_hi, depth + 1))
                return false;
        }
        return true;
    };

    Addr root_addr = reader.readU64(rootPtrAddr());
    if (!check(root_addr, 0, 0, false, false, 0))
        return ValidationResult::fail(why);
    if (visited != allocated)
        return ValidationResult::fail("unreachable allocated nodes");
    return ValidationResult::pass();
}

} // namespace cnvm
