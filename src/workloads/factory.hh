/**
 * @file
 * Workload construction by name.
 */

#ifndef CNVM_WORKLOADS_FACTORY_HH
#define CNVM_WORKLOADS_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace cnvm
{

/** Identifiers of the five evaluated workloads. */
enum class WorkloadKind
{
    ArraySwap,
    Queue,
    HashTable,
    BTree,
    RbTree,
};

/** All five, in the paper's figure order. */
const std::vector<WorkloadKind> &allWorkloadKinds();

/** Display name matching the paper ("Array", "Queue", ...). */
const char *workloadKindName(WorkloadKind kind);

/** Parses a name (case-insensitive); fatal on unknown names. */
WorkloadKind workloadKindFromName(const std::string &name);

/** Builds a workload of the given kind. */
std::unique_ptr<Workload> makeWorkload(WorkloadKind kind,
                                       const WorkloadParams &params);

} // namespace cnvm

#endif // CNVM_WORKLOADS_FACTORY_HH
