#include "workloads/queue.hh"

#include <vector>

#include "common/logging.hh"
#include "workloads/item_pattern.hh"

namespace cnvm
{

QueueWorkload::QueueWorkload(const WorkloadParams &params)
    : Workload(params)
{
}

void
QueueWorkload::doSetup()
{
    itemBytes = params.itemLines * lineBytes;
    metaAddr = allocStatic(lineBytes);

    std::uint64_t avail = regionEnd() - allocStatic(0);
    slots = avail / itemBytes;
    if (slots < 2)
        cnvm_fatal("Queue: region too small for two slots");
    slotsBase = allocStatic(slots * itemBytes);

    // Pre-fill so dequeues stream through a large resident region
    // rather than ping-ponging over a handful of cached lines.
    std::uint64_t fill = static_cast<std::uint64_t>(
        slots * params.setupFill);
    std::vector<std::uint8_t> buf(itemBytes);
    for (std::uint64_t i = 0; i < fill; ++i) {
        fillItemPattern(i, itemBytes, buf.data());
        initWrite(slotAddr(i), buf.data(), itemBytes);
    }
    initWriteU64(headAddr(), 0);
    initWriteU64(tailAddr(), fill % slots);
    initWriteU64(countAddr(), fill);
    initWriteU64(nextValAddr(), fill);
}

void
QueueWorkload::enqueue(UndoTx &tx)
{
    std::uint64_t tail = tx.readU64(tailAddr());
    std::uint64_t count = tx.readU64(countAddr());
    std::uint64_t next_val = tx.readU64(nextValAddr());
    cnvm_assert(count < slots);

    std::vector<std::uint8_t> buf(itemBytes);
    fillItemPattern(next_val, itemBytes, buf.data());
    tx.write(slotAddr(tail), buf.data(), itemBytes);
    tx.writeU64(tailAddr(), (tail + 1) % slots);
    tx.writeU64(countAddr(), count + 1);
    tx.writeU64(nextValAddr(), next_val + 1);
}

void
QueueWorkload::dequeue(UndoTx &tx)
{
    std::uint64_t head = tx.readU64(headAddr());
    std::uint64_t count = tx.readU64(countAddr());
    cnvm_assert(count > 0);

    // The consumer reads the departing item.
    std::vector<std::uint8_t> buf(itemBytes);
    tx.read(slotAddr(head), itemBytes, buf.data());

    tx.writeU64(headAddr(), (head + 1) % slots);
    tx.writeU64(countAddr(), count - 1);
}

void
QueueWorkload::buildTxn(UndoTx &tx)
{
    for (unsigned k = 0; k < params.batch; ++k) {
        std::uint64_t count = tx.readU64(countAddr());
        if (count == 0)
            enqueue(tx);
        else if (count == slots)
            dequeue(tx);
        else if (rng.chancePct(50))
            enqueue(tx);
        else
            dequeue(tx);
    }
}

std::uint64_t
QueueWorkload::digest(const ByteReader &reader) const
{
    std::uint64_t head = reader.readU64(headAddr());
    std::uint64_t count = reader.readU64(countAddr());
    std::uint64_t state = fnv1aU64(count);
    if (head >= slots || count > slots)
        return fnv1aU64(state, 0xdead); // corrupted meta: distinct digest
    for (std::uint64_t k = 0; k < count; ++k) {
        std::uint64_t s = (head + k) % slots;
        state = fnv1aU64(reader.readU64(slotAddr(s)), state);
    }
    return state;
}

ValidationResult
QueueWorkload::validate(const ByteReader &reader) const
{
    std::uint64_t head = reader.readU64(headAddr());
    std::uint64_t tail = reader.readU64(tailAddr());
    std::uint64_t count = reader.readU64(countAddr());
    std::uint64_t next_val = reader.readU64(nextValAddr());

    if (head >= slots || tail >= slots)
        return ValidationResult::fail("head/tail index out of range");
    if (count > slots)
        return ValidationResult::fail("count exceeds capacity");
    if ((head + count) % slots != tail)
        return ValidationResult::fail("head/tail/count disagree");
    if (next_val < count)
        return ValidationResult::fail("value counter behind queue size");

    // Queue contents must be the last `count` enqueued values, FIFO.
    std::vector<std::uint8_t> buf(itemBytes);
    for (std::uint64_t k = 0; k < count; ++k) {
        std::uint64_t s = (head + k) % slots;
        reader.read(slotAddr(s), itemBytes, buf.data());
        std::uint64_t v;
        std::memcpy(&v, buf.data(), sizeof(v));
        if (v != next_val - count + k)
            return ValidationResult::fail("queue item value out of order");
        if (!checkItemPattern(v, itemBytes, buf.data()))
            return ValidationResult::fail("queue item payload mismatch");
    }
    return ValidationResult::pass();
}

} // namespace cnvm
