/**
 * @file
 * MemIo implementations: transactional (measured run) and setup-time
 * (pre-population against the shadow).
 */

#ifndef CNVM_WORKLOADS_MEM_IO_HH
#define CNVM_WORKLOADS_MEM_IO_HH

#include <functional>

#include "common/intmath.hh"
#include "workloads/workload.hh"

namespace cnvm
{

/** Runs structure code inside an undo-logging transaction. */
class TxIo : public MemIo
{
  public:
    TxIo(UndoTx &tx, PersistentAllocator &alloc) : tx(tx), alloc(alloc) {}

    std::uint64_t readU64(Addr addr) override { return tx.readU64(addr); }
    void writeU64(Addr addr, std::uint64_t v) override
    { tx.writeU64(addr, v); }

    Addr
    allocNode(std::uint64_t bytes, std::uint64_t align) override
    {
        return alloc.alloc(tx, bytes, align);
    }

  private:
    UndoTx &tx;
    PersistentAllocator &alloc;
};

/**
 * Runs structure code at setup time: reads come from the shadow and
 * writes go through the workload's init writer, so the pre-populated
 * structure lands consistently in the simulated NVM. The allocation
 * cursor is the same persistent field the transactional allocator uses.
 */
class SetupIo : public MemIo
{
  public:
    using WriteFn = std::function<void(Addr, std::uint64_t)>;

    SetupIo(const ShadowMem &shadow, WriteFn write, Addr cursor_addr,
            Addr pool_limit)
        : shadow(shadow), writeFn(std::move(write)),
          cursorAddr(cursor_addr), poolLimit(pool_limit)
    {}

    std::uint64_t readU64(Addr addr) override
    { return shadow.readU64(addr); }

    void writeU64(Addr addr, std::uint64_t v) override
    { writeFn(addr, v); }

    Addr
    allocNode(std::uint64_t bytes, std::uint64_t align) override
    {
        Addr cursor = shadow.readU64(cursorAddr);
        Addr aligned = roundUp(cursor, align);
        if (aligned + bytes > poolLimit)
            return 0;
        writeFn(cursorAddr, aligned + bytes);
        return aligned;
    }

  private:
    const ShadowMem &shadow;
    WriteFn writeFn;
    Addr cursorAddr;
    Addr poolLimit;
};

} // namespace cnvm

#endif // CNVM_WORKLOADS_MEM_IO_HH
