/**
 * @file
 * Hash Table workload: inserts random keys into a persistent chained
 * hash table (paper section 6.2).
 */

#ifndef CNVM_WORKLOADS_HASH_TABLE_HH
#define CNVM_WORKLOADS_HASH_TABLE_HH

#include <memory>

#include "workloads/workload.hh"

namespace cnvm
{

class HashTableWorkload : public Workload
{
  public:
    explicit HashTableWorkload(const WorkloadParams &params);

    const char *name() const override { return "Hash"; }

    std::uint64_t digest(const ByteReader &reader) const override;
    ValidationResult validate(const ByteReader &reader) const override;

    std::uint64_t bucketCount() const { return buckets; }

  protected:
    void doSetup() override;
    void buildTxn(UndoTx &tx) override;

  private:
    std::uint64_t buckets = 0;
    Addr metaAddr = 0;
    Addr bucketsBase = 0;
    std::unique_ptr<PersistentAllocator> alloc;

    Addr bucketAddr(std::uint64_t b) const { return bucketsBase + b * 8; }
    std::uint64_t bucketOf(std::uint64_t key) const;

    /** Node layout within one line: key(8) | next(8). */
    static Addr keyAddr(Addr node) { return node; }
    static Addr nextAddr(Addr node) { return node + 8; }

    bool nodeAddrValid(Addr node, Addr cursor) const;
};

} // namespace cnvm

#endif // CNVM_WORKLOADS_HASH_TABLE_HH
