#include "workloads/factory.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"
#include "workloads/array_swap.hh"
#include "workloads/btree.hh"
#include "workloads/hash_table.hh"
#include "workloads/queue.hh"
#include "workloads/rbtree.hh"

namespace cnvm
{

const std::vector<WorkloadKind> &
allWorkloadKinds()
{
    static const std::vector<WorkloadKind> kinds = {
        WorkloadKind::ArraySwap, WorkloadKind::Queue,
        WorkloadKind::HashTable, WorkloadKind::BTree,
        WorkloadKind::RbTree,
    };
    return kinds;
}

const char *
workloadKindName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::ArraySwap: return "Array";
      case WorkloadKind::Queue: return "Queue";
      case WorkloadKind::HashTable: return "Hash";
      case WorkloadKind::BTree: return "B-Tree";
      case WorkloadKind::RbTree: return "RB-Tree";
    }
    return "?";
}

WorkloadKind
workloadKindFromName(const std::string &name)
{
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "array" || lower == "arrayswap" || lower == "array-swap")
        return WorkloadKind::ArraySwap;
    if (lower == "queue")
        return WorkloadKind::Queue;
    if (lower == "hash" || lower == "hashtable" || lower == "hash-table")
        return WorkloadKind::HashTable;
    if (lower == "btree" || lower == "b-tree")
        return WorkloadKind::BTree;
    if (lower == "rbtree" || lower == "rb-tree")
        return WorkloadKind::RbTree;
    cnvm_fatal("unknown workload '%s'", name.c_str());
    return WorkloadKind::ArraySwap; // unreachable
}

std::unique_ptr<Workload>
makeWorkload(WorkloadKind kind, const WorkloadParams &params)
{
    switch (kind) {
      case WorkloadKind::ArraySwap:
        return std::make_unique<ArraySwapWorkload>(params);
      case WorkloadKind::Queue:
        return std::make_unique<QueueWorkload>(params);
      case WorkloadKind::HashTable:
        return std::make_unique<HashTableWorkload>(params);
      case WorkloadKind::BTree:
        return std::make_unique<BTreeWorkload>(params);
      case WorkloadKind::RbTree:
        return std::make_unique<RbTreeWorkload>(params);
    }
    cnvm_panic("bad workload kind");
    return nullptr;
}

} // namespace cnvm
