#include "workloads/hash_table.hh"

#include "common/hash.hh"
#include "common/intmath.hh"
#include "common/logging.hh"

namespace cnvm
{

HashTableWorkload::HashTableWorkload(const WorkloadParams &params)
    : Workload(params)
{
}

std::uint64_t
HashTableWorkload::bucketOf(std::uint64_t key) const
{
    return fnv1aU64(key) & (buckets - 1);
}

void
HashTableWorkload::doSetup()
{
    // Size the bucket array at roughly 1/8 of the free space (power of
    // two), leaving the rest as the node pool.
    std::uint64_t avail = regionEnd() - allocStatic(0) - lineBytes;
    std::uint64_t want = avail / 8 / 8; // bucket pointers
    buckets = std::uint64_t(1) << floorLog2(std::max<std::uint64_t>(
        want, 8));

    metaAddr = allocStatic(lineBytes);
    bucketsBase = allocStatic(buckets * 8);
    Addr pool_base = allocStatic(0);
    alloc = std::make_unique<PersistentAllocator>(metaAddr, pool_base,
                                                  regionEnd());

    alloc->initialize([this](Addr a, const void *d, unsigned s) {
        initWrite(a, d, s);
    });
    for (std::uint64_t b = 0; b < buckets; ++b)
        initWriteU64(bucketAddr(b), 0);

    // Pre-populate so the measured inserts walk realistic chains.
    std::uint64_t pool_nodes =
        (regionEnd() - pool_base) / lineBytes;
    std::uint64_t target = static_cast<std::uint64_t>(
        pool_nodes * params.setupFill);
    Random setup_rng(params.seed ^ 0x4a54111ull);
    for (std::uint64_t i = 0; i < target; ++i) {
        std::uint64_t key = setup_rng.next();
        Addr bucket = bucketAddr(bucketOf(key));
        Addr head = shadow.readU64(bucket);
        Addr cursor = shadow.readU64(metaAddr);
        if (cursor + lineBytes > regionEnd())
            break;
        initWriteU64(metaAddr, cursor + lineBytes);
        initWriteU64(keyAddr(cursor), key);
        initWriteU64(nextAddr(cursor), head);
        initWriteU64(bucket, cursor);
    }
}

void
HashTableWorkload::buildTxn(UndoTx &tx)
{
    for (unsigned k = 0; k < params.batch; ++k) {
        std::uint64_t key = rng.next();
        Addr bucket = bucketAddr(bucketOf(key));
        Addr head = tx.readU64(bucket);

        // Duplicate-check walk (bounded): generates the pointer-chase
        // reads a real insert performs.
        Addr node = head;
        unsigned walked = 0;
        bool duplicate = false;
        while (node != 0 && walked < 32) {
            if (tx.readU64(keyAddr(node)) == key) {
                duplicate = true;
                break;
            }
            node = tx.readU64(nextAddr(node));
            ++walked;
        }
        if (duplicate)
            continue;

        Addr fresh = alloc->alloc(tx, lineBytes);
        if (fresh == 0)
            continue; // pool exhausted: the walk above still happened
        tx.writeU64(keyAddr(fresh), key);
        tx.writeU64(nextAddr(fresh), head);
        tx.writeU64(bucket, fresh);
    }
}

bool
HashTableWorkload::nodeAddrValid(Addr node, Addr cursor) const
{
    return node >= alloc->poolStart() && node + lineBytes <= cursor
        && isLineAligned(node);
}

std::uint64_t
HashTableWorkload::digest(const ByteReader &reader) const
{
    Addr cursor = reader.readU64(metaAddr);
    std::uint64_t state = fnv1aU64(cursor);
    std::uint64_t max_nodes =
        (regionEnd() - alloc->poolStart()) / lineBytes + 1;

    for (std::uint64_t b = 0; b < buckets; ++b) {
        Addr node = reader.readU64(bucketAddr(b));
        std::uint64_t walked = 0;
        while (node != 0 && walked <= max_nodes) {
            if (!nodeAddrValid(node, cursor)) {
                state = fnv1aU64(0xbadbadbad, state);
                break;
            }
            state = fnv1aU64(reader.readU64(keyAddr(node)), state);
            node = reader.readU64(nextAddr(node));
            ++walked;
        }
        state = fnv1aU64(b ^ walked, state);
    }
    return state;
}

ValidationResult
HashTableWorkload::validate(const ByteReader &reader) const
{
    Addr cursor = reader.readU64(metaAddr);
    if (cursor < alloc->poolStart() || cursor > regionEnd()
        || cursor % lineBytes != 0)
        return ValidationResult::fail("allocator cursor corrupted");

    std::uint64_t allocated = (cursor - alloc->poolStart()) / lineBytes;
    std::uint64_t reachable = 0;

    for (std::uint64_t b = 0; b < buckets; ++b) {
        Addr node = reader.readU64(bucketAddr(b));
        std::uint64_t walked = 0;
        while (node != 0) {
            if (!nodeAddrValid(node, cursor))
                return ValidationResult::fail("chain pointer out of pool");
            if (++walked > allocated)
                return ValidationResult::fail("chain cycle detected");
            std::uint64_t key = reader.readU64(keyAddr(node));
            if (bucketOf(key) != b)
                return ValidationResult::fail("key hashed to wrong bucket");
            node = reader.readU64(nextAddr(node));
        }
        reachable += walked;
    }

    if (reachable != allocated)
        return ValidationResult::fail(
            "allocated node count does not match reachable nodes");
    return ValidationResult::pass();
}

} // namespace cnvm
