/**
 * @file
 * B-Tree workload: inserts random keys into a persistent B-tree
 * (paper section 6.2).
 *
 * Minimum degree 4 (up to 7 keys / 8 children per node); each node
 * occupies two cache lines:
 *
 *   node + 0   meta word: n | (leaf ? 1<<32 : 0)
 *   node + 8   keys[7]
 *   node + 64  children[8]
 *
 * Inserts use preemptive splitting (full children split on the way
 * down), so a single downward pass suffices.
 */

#ifndef CNVM_WORKLOADS_BTREE_HH
#define CNVM_WORKLOADS_BTREE_HH

#include <memory>

#include "workloads/workload.hh"

namespace cnvm
{

class BTreeWorkload : public Workload
{
  public:
    explicit BTreeWorkload(const WorkloadParams &params);

    const char *name() const override { return "B-Tree"; }

    std::uint64_t digest(const ByteReader &reader) const override;
    ValidationResult validate(const ByteReader &reader) const override;

    /** Number of keys stored (walks the tree through @p reader). */
    std::uint64_t keyCount(const ByteReader &reader) const;

    static constexpr unsigned minDegree = 4;
    static constexpr unsigned maxKeys = 2 * minDegree - 1;
    static constexpr unsigned nodeBytes = 2 * lineBytes;

  protected:
    void doSetup() override;
    void buildTxn(UndoTx &tx) override;

  private:
    Addr metaAddr = 0;
    std::unique_ptr<PersistentAllocator> alloc;
    bool poolLow = false;

    Addr rootPtrAddr() const { return metaAddr; }
    Addr cursorAddr() const { return metaAddr + 8; }

    static Addr nodeMeta(Addr node) { return node; }
    static Addr nodeKey(Addr node, unsigned i) { return node + 8 + 8 * i; }
    static Addr nodeChild(Addr node, unsigned i)
    { return node + lineBytes + 8 * i; }

    static std::uint64_t packMeta(bool leaf, unsigned n)
    { return (leaf ? (std::uint64_t(1) << 32) : 0) | n; }
    static bool metaLeaf(std::uint64_t m) { return (m >> 32) & 1; }
    static unsigned metaN(std::uint64_t m)
    { return static_cast<unsigned>(m & 0xffffffffu); }

    void insert(MemIo &io, std::uint64_t key);
    void searchOnly(MemIo &io, std::uint64_t key);
    Addr newNode(MemIo &io, bool leaf);
    void splitChild(MemIo &io, Addr parent, unsigned index);

    bool nodeAddrValid(Addr node, Addr cursor) const;

    struct WalkStats
    {
        std::uint64_t nodes = 0;
        bool corrupted = false;
    };
    std::uint64_t foldInOrder(const ByteReader &reader, Addr node,
                              std::uint64_t state, std::uint64_t &budget,
                              Addr cursor) const;
};

} // namespace cnvm

#endif // CNVM_WORKLOADS_BTREE_HH
