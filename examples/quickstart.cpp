/**
 * @file
 * Quickstart: build an encrypted, crash-consistent NVMM system with
 * selective counter-atomicity, run a workload, and read the metrics.
 *
 *   ./quickstart [design] [workload] [txns]
 *
 * e.g. ./quickstart SCA btree 500
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/system.hh"

using namespace cnvm;

namespace
{

DesignPoint
parseDesign(const std::string &name)
{
    for (DesignPoint d : {DesignPoint::NoEncryption, DesignPoint::Ideal,
                          DesignPoint::Colocated, DesignPoint::ColocatedCC,
                          DesignPoint::FCA, DesignPoint::SCA,
                          DesignPoint::Unsafe}) {
        if (name == designName(d))
            return d;
    }
    if (name == "Colocated")
        return DesignPoint::Colocated;
    if (name == "ColocatedCC")
        return DesignPoint::ColocatedCC;
    std::fprintf(stderr,
                 "unknown design '%s' (try SCA, FCA, Ideal, "
                 "NoEncryption, Colocated, ColocatedCC, Unsafe)\n",
                 name.c_str());
    std::exit(1);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // 1. Configure the system. Everything defaults to the paper's
    //    Table 2: 4 GHz cores, 64 KB L1 + 2 MB L2, a 1 MB counter
    //    cache, 64/16-entry data/counter write queues, and PCM timing.
    SystemConfig cfg;
    cfg.design = argc > 1 ? parseDesign(argv[1]) : DesignPoint::SCA;
    cfg.workload = argc > 2 ? workloadKindFromName(argv[2])
                            : WorkloadKind::BTree;
    cfg.wl.txnTarget = argc > 3 ? std::atoi(argv[3]) : 300;
    cfg.wl.regionBytes = 6ull << 20;

    // 2. Build and run. The workload executes undo-logging
    //    transactions using the paper's primitives: CounterAtomic
    //    stores for the log's valid flag and counter_cache_writeback()
    //    before each persist barrier.
    System sys(cfg);
    std::printf("running: %s\n", sys.describe().c_str());
    RunResult result = sys.run();

    // 3. Read the metrics.
    std::printf("\ntransactions: %llu\n",
                static_cast<unsigned long long>(result.txnsIssued));
    std::printf("simulated time: %.1f us\n", sys.runtimeNs() / 1000.0);
    std::printf("throughput: %.0f txn/s\n", sys.throughputTxnPerSec());
    std::printf("NVM traffic: %.1f KB written, %.1f KB read\n",
                sys.nvmBytesWritten() / 1024.0,
                sys.nvmBytesRead() / 1024.0);
    std::printf("counter cache miss rate: %.1f%%\n",
                sys.counterCacheMissRate() * 100.0);

    // 4. Dump the full stat registry for anything else.
    std::printf("\nselected stats:\n");
    for (const char *name :
         {"memctl.atomic_pairs", "memctl.ctr_inserts",
          "memctl.data_inserts", "memctl.data_coalesces",
          "core0.fences", "core0.fence_stall_ticks"}) {
        const stats::Stat *stat = sys.statsRegistry().find(name);
        if (stat != nullptr)
            std::printf("  %-28s %.0f\n", name, stat->value());
    }
    return 0;
}
