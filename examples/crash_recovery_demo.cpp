/**
 * @file
 * Crash-recovery demonstration: the paper's Figure 3/4 story, end to
 * end, with real AES-CTR ciphertext.
 *
 * A persistent B-tree runs under three designs. At a random point, the
 * power fails: caches and unready write-queue entries are lost, the
 * ADR logic drains the ready entries, and recovery software decrypts
 * the surviving image with the persisted counters and replays the undo
 * log.
 *
 *   - SCA (the proposal)        -> recovers at every crash point
 *   - FCA (all writes atomic)   -> recovers at every crash point
 *   - Unsafe (no atomicity)     -> decryption fails: the counter for
 *     the log's CounterAtomic valid flag was still in the (volatile)
 *     counter cache when the power failed.
 */

#include <cstdio>

#include "core/system.hh"

using namespace cnvm;

namespace
{

void
demonstrate(DesignPoint design, Tick total_runtime)
{
    std::printf("== %s ==\n", designName(design));

    SystemConfig cfg;
    cfg.design = design;
    cfg.workload = WorkloadKind::BTree;
    cfg.wl.regionBytes = 512 << 10;
    cfg.wl.txnTarget = 40;
    cfg.wl.recordDigests = true;

    unsigned consistent = 0, inconsistent = 0, rollbacks = 0;
    const int points = 10;
    for (int i = 1; i <= points; ++i) {
        System sys(cfg);
        Tick crash_at = total_runtime * i / (points + 1);
        RunResult result = sys.runWithCrashAt(crash_at);
        if (!result.crashed)
            continue;

        auto reports = sys.recoverAll();
        const RecoveryReport &report = reports.at(0);
        if (report.consistent) {
            ++consistent;
            rollbacks += report.rolledBack ? 1 : 0;
            std::printf("  crash @%6.1f us -> recovered to txn %llu/%llu"
                        "%s\n",
                        static_cast<double>(crash_at) / 1e6,
                        static_cast<unsigned long long>(
                            report.committedTxns),
                        static_cast<unsigned long long>(
                            sys.workload(0).txnsIssued()),
                        report.rolledBack ? " (undo log rolled back)"
                                          : "");
        } else {
            ++inconsistent;
            std::printf("  crash @%6.1f us -> INCONSISTENT: %s\n",
                        static_cast<double>(crash_at) / 1e6,
                        report.detail.c_str());
        }
    }
    std::printf("  summary: %u consistent, %u inconsistent, "
                "%u rollbacks\n\n",
                consistent, inconsistent, rollbacks);
}

} // anonymous namespace

int
main()
{
    std::printf("Crash consistency in encrypted NVMM: counter-mode "
                "encryption needs counter-atomicity.\n");
    std::printf("(paper sections 2.2 and 3: a line whose data and "
                "counter persist out of sync decrypts to garbage)\n\n");

    // Learn the total runtime once so crash points span the execution.
    SystemConfig probe;
    probe.workload = WorkloadKind::BTree;
    probe.wl.regionBytes = 512 << 10;
    probe.wl.txnTarget = 40;
    probe.design = DesignPoint::SCA;
    Tick total = System(probe).run().endTick;

    demonstrate(DesignPoint::SCA, total);
    demonstrate(DesignPoint::FCA, total);
    demonstrate(DesignPoint::Unsafe, total);

    std::printf("The Unsafe design shows the Figure-4 failure: the "
                "commit record's data reached NVMM but its counter\n"
                "was lost with the counter cache, so recovery decrypts "
                "the log header with a stale counter and fails.\n");
    return 0;
}
