/**
 * @file
 * Design-space explorer: sweep the controller's architectural knobs —
 * counter cache size, write-queue depths, encryption latency, PCM
 * write pausing — and report how each moves SCA's performance. This is
 * the kind of study the library enables beyond the paper's figures.
 *
 *   ./design_space_explorer [workload]
 */

#include <cstdio>
#include <vector>

#include "core/system.hh"

using namespace cnvm;

namespace
{

SystemConfig
baseConfig(WorkloadKind workload)
{
    SystemConfig cfg;
    cfg.design = DesignPoint::SCA;
    cfg.workload = workload;
    cfg.wl.regionBytes = 6ull << 20;
    cfg.wl.txnTarget = 200;
    return cfg;
}

double
runtimeOf(const SystemConfig &cfg)
{
    System sys(cfg);
    sys.run();
    return sys.runtimeNs();
}

void
sweepHeader(const char *title)
{
    std::printf("\n%s\n", title);
    std::printf("%-28s %12s %10s\n", "setting", "runtime(us)", "vs base");
    std::printf("%.*s\n", 52,
                "----------------------------------------------------");
}

void
reportPoint(const char *label, double runtime_ns, double base_ns)
{
    std::printf("%-28s %12.1f %9.3fx\n", label, runtime_ns / 1000.0,
                runtime_ns / base_ns);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    WorkloadKind workload = argc > 1 ? workloadKindFromName(argv[1])
                                     : WorkloadKind::HashTable;
    SystemConfig base = baseConfig(workload);
    double base_ns = runtimeOf(base);
    std::printf("base: %s, %.1f us\n",
                System(base).describe().c_str(), base_ns / 1000.0);

    sweepHeader("counter cache size (per core)");
    for (std::uint64_t kb : {64, 256, 1024, 4096}) {
        SystemConfig cfg = base;
        cfg.memctl.counterCacheBytes = kb << 10;
        cfg.warmCounterCache = false;
        std::string label = std::to_string(kb) + " KB (cold)";
        reportPoint(label.c_str(), runtimeOf(cfg), base_ns);
    }

    sweepHeader("counter write queue depth");
    for (unsigned entries : {4, 8, 16, 32, 64}) {
        SystemConfig cfg = base;
        cfg.memctl.ctrWqEntries = entries;
        std::string label = std::to_string(entries) + " entries";
        reportPoint(label.c_str(), runtimeOf(cfg), base_ns);
    }

    sweepHeader("data write queue depth");
    for (unsigned entries : {16, 32, 64, 128}) {
        SystemConfig cfg = base;
        cfg.memctl.dataWqEntries = entries;
        std::string label = std::to_string(entries) + " entries";
        reportPoint(label.c_str(), runtimeOf(cfg), base_ns);
    }

    sweepHeader("encryption engine latency");
    for (double ns : {10.0, 20.0, 40.0, 80.0}) {
        SystemConfig cfg = base;
        cfg.memctl.encLatency = nsToTicks(ns);
        std::string label = std::to_string(static_cast<int>(ns)) + " ns";
        reportPoint(label.c_str(), runtimeOf(cfg), base_ns);
    }

    sweepHeader("PCM write pausing (ablation)");
    {
        SystemConfig cfg = base;
        cfg.nvm.writePause = true;
        reportPoint("enabled (default)", runtimeOf(cfg), base_ns);
        cfg.nvm.writePause = false;
        reportPoint("disabled", runtimeOf(cfg), base_ns);
    }

    sweepHeader("NVM bank parallelism");
    for (unsigned banks : {8, 16, 32, 64}) {
        SystemConfig cfg = base;
        cfg.nvm.numBanks = banks;
        std::string label = std::to_string(banks) + " banks";
        reportPoint(label.c_str(), runtimeOf(cfg), base_ns);
    }

    return 0;
}
