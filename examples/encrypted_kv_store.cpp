/**
 * @file
 * Encrypted persistent key-value store: a small application built
 * directly on the library's transaction layer, showing how a user (not
 * one of the built-in workloads) programs against the selective
 * counter-atomicity interface.
 *
 * The store is a persistent hash table with update-in-place semantics.
 * Every put() runs as an undo-logging transaction whose staged op
 * stream (paper Figure 9) executes on the simulated encrypted NVMM.
 * At the end, the demo pulls the power mid-put, recovers the image,
 * and verifies that every committed put survived.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "common/hash.hh"
#include "core/system.hh"
#include "workloads/mem_io.hh"

using namespace cnvm;

namespace
{

/**
 * A fixed-bucket persistent KV store that doubles as a Workload so it
 * can run on the simulated system. Keys and values are 64-bit.
 */
class KvStoreWorkload : public Workload
{
  public:
    explicit KvStoreWorkload(const WorkloadParams &params)
        : Workload(params)
    {}

    const char *name() const override { return "KVStore"; }

    /** Host-visible model of the committed store, kept in lockstep. */
    const std::map<std::uint64_t, std::uint64_t> &model() const
    { return committed; }

    std::uint64_t
    digest(const ByteReader &reader) const override
    {
        std::uint64_t state = fnv1aU64(reader.readU64(cursorAddr()));
        for (std::uint64_t b = 0; b < kBuckets; ++b) {
            Addr node = reader.readU64(bucketAddr(b));
            unsigned hops = 0;
            while (node != 0 && hops++ < 10000
                   && inRegion(node) && isLineAligned(node)) {
                state = fnv1aU64(reader.readU64(node), state);
                state = fnv1aU64(reader.readU64(node + 8), state);
                node = reader.readU64(node + 16);
            }
        }
        return state;
    }

    ValidationResult
    validate(const ByteReader &reader) const override
    {
        for (std::uint64_t b = 0; b < kBuckets; ++b) {
            Addr node = reader.readU64(bucketAddr(b));
            unsigned hops = 0;
            while (node != 0) {
                if (!inRegion(node) || !isLineAligned(node))
                    return ValidationResult::fail("bad chain pointer");
                if (++hops > 100000)
                    return ValidationResult::fail("chain cycle");
                node = reader.readU64(node + 16);
            }
        }
        return ValidationResult::pass();
    }

    /** Reads the committed value of @p key from a recovered image. */
    bool
    lookup(const ByteReader &reader, std::uint64_t key,
           std::uint64_t &value) const
    {
        Addr node = reader.readU64(bucketAddr(bucketOf(key)));
        unsigned hops = 0;
        while (node != 0 && inRegion(node) && hops++ < 100000) {
            if (reader.readU64(node) == key) {
                value = reader.readU64(node + 8);
                return true;
            }
            node = reader.readU64(node + 16);
        }
        return false;
    }

    /** Puts committed so far (for prefix verification). */
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> &
    history() const
    {
        return puts;
    }

  protected:
    void
    doSetup() override
    {
        metaAddr = allocStatic(lineBytes);
        bucketsBase = allocStatic(kBuckets * 8);
        Addr pool = allocStatic(0);
        alloc = std::make_unique<PersistentAllocator>(cursorAddr(), pool,
                                                      regionEnd());
        alloc->initialize([this](Addr a, const void *d, unsigned s) {
            initWrite(a, d, s);
        });
        for (std::uint64_t b = 0; b < kBuckets; ++b)
            initWriteU64(bucketAddr(b), 0);
    }

    void
    buildTxn(UndoTx &tx) override
    {
        // One put() per transaction: insert-or-update.
        std::uint64_t key = rng.below(200); // small key space: updates!
        std::uint64_t value = rng.next();
        puts.emplace_back(key, value);

        Addr bucket = bucketAddr(bucketOf(key));
        Addr node = tx.readU64(bucket);
        while (node != 0) {
            if (tx.readU64(node) == key) {
                tx.writeU64(node + 8, value); // update in place
                committed[key] = value;
                return;
            }
            node = tx.readU64(node + 16);
        }
        TxIo io(tx, *alloc);
        Addr fresh = io.allocNode(lineBytes, lineBytes);
        if (fresh == 0)
            return;
        tx.writeU64(fresh, key);
        tx.writeU64(fresh + 8, value);
        tx.writeU64(fresh + 16, tx.readU64(bucket));
        tx.writeU64(bucket, fresh);
        committed[key] = value;
    }

  private:
    static constexpr std::uint64_t kBuckets = 256;

    Addr metaAddr = 0;
    Addr bucketsBase = 0;
    std::unique_ptr<PersistentAllocator> alloc;
    std::map<std::uint64_t, std::uint64_t> committed;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> puts;

    Addr cursorAddr() const { return metaAddr; }
    Addr bucketAddr(std::uint64_t b) const { return bucketsBase + b * 8; }
    std::uint64_t bucketOf(std::uint64_t key) const
    { return fnv1aU64(key) & (kBuckets - 1); }
};

} // anonymous namespace

int
main()
{
    std::printf("Encrypted persistent KV store on SCA hardware\n\n");

    // The System owns workload construction; plug the custom workload
    // in by running it directly on a System built around it. For a
    // custom OpSource, the simplest route is the components API:
    // EventQueue + NvmDevice + MemController + CoreMemPath + Core.
    SystemConfig cfg;
    cfg.design = DesignPoint::SCA;
    cfg.wl.regionBytes = 1 << 20;
    cfg.wl.txnTarget = 120;
    cfg.wl.recordDigests = true;

    EventQueue eq;
    stats::StatRegistry registry;
    NvmDevice nvm(cfg.nvm, &registry);
    MemCtlConfig mc = cfg.memctl;
    mc.design = cfg.design;
    MemController ctl(eq, nvm, mc, &registry);

    WorkloadParams wl = cfg.wl;
    wl.regionBase = cfg.dataRegionBase;
    KvStoreWorkload store(wl);
    store.setup([&](Addr a, const void *d, unsigned s) {
        nvm.livePlainStore(a, s, static_cast<const std::uint8_t *>(d));
    });
    store.shadowMem().forEachLine([&](Addr a, const LineData &data) {
        ctl.initLine(a, data);
    });
    // Warm in a second pass: warming while neighbours are still being
    // installed would capture stale counter lines.
    store.shadowMem().forEachLine(
        [&](Addr a, const LineData &) { ctl.warmCounterLine(a); });

    CoreMemPath path(eq, ClockDomain(250), ctl, cfg.cache, 0, &registry);
    Core core(eq, ClockDomain(250), path, store, 0, &registry);
    core.start();

    // Pull the power roughly mid-run.
    bool crashed = false;
    EventFunctionWrapper crash([&]() {
        crashed = true;
        core.halt();
        path.dropAll();
        ctl.crash();
        eq.requestStop();
    }, "power-failure");
    eq.schedule(crash, nsToTicks(60000));
    eq.run();

    std::printf("power failed after %llu of %u puts\n",
                static_cast<unsigned long long>(store.txnsIssued()),
                wl.txnTarget);

    // Recover: decrypt the image, roll back the undo log, verify.
    RecoveryEngine engine(nvm, ctl);
    RecoveryReport report = engine.recover(store);
    if (!report.consistent) {
        std::printf("RECOVERY FAILED: %s\n", report.detail.c_str());
        return 1;
    }
    std::printf("recovered consistently to %llu committed puts%s\n",
                static_cast<unsigned long long>(report.committedTxns),
                report.rolledBack ? " (rolled one back)" : "");

    // Every put in the committed prefix must be readable with the
    // value it had at that point in history.
    RecoveredImage image(nvm, ctl);
    std::map<std::uint64_t, std::uint64_t> expect;
    for (std::size_t i = 0; i < report.committedTxns; ++i)
        expect[store.history()[i].first] = store.history()[i].second;
    unsigned verified = 0;
    for (const auto &[key, value] : expect) {
        std::uint64_t got = 0;
        if (!store.lookup(image, key, got) || got != value) {
            std::printf("MISSING/WRONG key %llu after recovery\n",
                        static_cast<unsigned long long>(key));
            return 1;
        }
        ++verified;
    }
    std::printf("verified %u distinct keys against the committed "
                "history\n", verified);
    return 0;
}
