/**
 * @file
 * Unit tests for the five workloads: setup invariants, transaction
 * generation, digest determinism/sensitivity, and validation against
 * the live shadow after many operations.
 */

#include <gtest/gtest.h>

#include "workloads/array_swap.hh"
#include "workloads/btree.hh"
#include "workloads/factory.hh"
#include "workloads/hash_table.hh"
#include "workloads/item_pattern.hh"
#include "workloads/queue.hh"
#include "workloads/rbtree.hh"

namespace cnvm
{
namespace
{

WorkloadParams
smallParams(unsigned txns = 50)
{
    WorkloadParams p;
    p.regionBase = 1 << 20;
    p.regionBytes = 256 << 10;
    p.txnTarget = txns;
    p.batch = 1;
    p.computePerTxn = 0;
    p.seed = 12345;
    p.setupFill = 0.3;
    return p;
}

/** Sets up a workload against a discard init-writer and runs all txns
 *  host-side (the op streams are generated but not simulated). */
void
runAll(Workload &wl)
{
    wl.setup([](Addr, const void *, unsigned) {});
    std::vector<Op> ops;
    while (wl.next(ops))
        ops.clear();
}

// --- factory ---------------------------------------------------------------

TEST(Factory, AllFiveKinds)
{
    EXPECT_EQ(allWorkloadKinds().size(), 5u);
    for (WorkloadKind kind : allWorkloadKinds()) {
        auto wl = makeWorkload(kind, smallParams());
        ASSERT_NE(wl, nullptr);
        EXPECT_STREQ(wl->name(), workloadKindName(kind));
    }
}

TEST(Factory, NamesRoundTrip)
{
    EXPECT_EQ(workloadKindFromName("array"), WorkloadKind::ArraySwap);
    EXPECT_EQ(workloadKindFromName("Queue"), WorkloadKind::Queue);
    EXPECT_EQ(workloadKindFromName("HASH"), WorkloadKind::HashTable);
    EXPECT_EQ(workloadKindFromName("b-tree"), WorkloadKind::BTree);
    EXPECT_EQ(workloadKindFromName("rbtree"), WorkloadKind::RbTree);
}

// --- item pattern ------------------------------------------------------------

TEST(ItemPattern, RoundTrip)
{
    std::uint8_t buf[256];
    fillItemPattern(42, sizeof(buf), buf);
    EXPECT_TRUE(checkItemPattern(42, sizeof(buf), buf));
    EXPECT_FALSE(checkItemPattern(43, sizeof(buf), buf));
    buf[100] ^= 1;
    EXPECT_FALSE(checkItemPattern(42, sizeof(buf), buf));
}

TEST(ItemPattern, FirstWordIsValue)
{
    std::uint8_t buf[64];
    fillItemPattern(0x1122334455667788ull, sizeof(buf), buf);
    std::uint64_t v;
    std::memcpy(&v, buf, 8);
    EXPECT_EQ(v, 0x1122334455667788ull);
}

// --- generic per-workload properties ---------------------------------------

class WorkloadParam : public ::testing::TestWithParam<WorkloadKind>
{};

TEST_P(WorkloadParam, ValidatesCleanAfterSetup)
{
    auto wl = makeWorkload(GetParam(), smallParams());
    wl->setup([](Addr, const void *, unsigned) {});
    ValidationResult result = wl->validate(wl->shadowMem());
    EXPECT_TRUE(result.ok) << result.why;
}

TEST_P(WorkloadParam, ValidatesCleanAfterManyTxns)
{
    auto wl = makeWorkload(GetParam(), smallParams(100));
    runAll(*wl);
    EXPECT_EQ(wl->txnsIssued(), 100u);
    ValidationResult result = wl->validate(wl->shadowMem());
    EXPECT_TRUE(result.ok) << result.why;
}

TEST_P(WorkloadParam, DigestIsDeterministic)
{
    auto a = makeWorkload(GetParam(), smallParams());
    auto b = makeWorkload(GetParam(), smallParams());
    runAll(*a);
    runAll(*b);
    EXPECT_EQ(a->digest(a->shadowMem()), b->digest(b->shadowMem()));
}

TEST_P(WorkloadParam, DigestChangesWithSeed)
{
    auto a = makeWorkload(GetParam(), smallParams());
    WorkloadParams p2 = smallParams();
    p2.seed = 999;
    auto b = makeWorkload(GetParam(), p2);
    runAll(*a);
    runAll(*b);
    EXPECT_NE(a->digest(a->shadowMem()), b->digest(b->shadowMem()));
}

TEST_P(WorkloadParam, DigestEvolvesAcrossCommits)
{
    WorkloadParams p = smallParams(10);
    p.recordDigests = true;
    auto wl = makeWorkload(GetParam(), p);
    runAll(*wl);
    const auto &digests = wl->digests();
    ASSERT_EQ(digests.size(), 11u); // initial + one per txn
    // Digests are not all identical (the structure changes).
    bool any_change = false;
    for (std::size_t i = 1; i < digests.size(); ++i)
        any_change |= digests[i] != digests[i - 1];
    EXPECT_TRUE(any_change);
}

TEST_P(WorkloadParam, TransactionsEmitStagedOps)
{
    auto wl = makeWorkload(GetParam(), smallParams(5));
    wl->setup([](Addr, const void *, unsigned) {});
    std::vector<Op> ops;
    ASSERT_TRUE(wl->next(ops));
    unsigned fences = 0, stores = 0, ca_stores = 0;
    for (const Op &op : ops) {
        fences += op.type == OpType::Fence ? 1 : 0;
        if (op.type == OpType::Store) {
            ++stores;
            ca_stores += op.counterAtomic ? 1 : 0;
        }
    }
    EXPECT_EQ(fences, 3u);      // prepare, mutate, commit
    EXPECT_GE(stores, 3u);
    EXPECT_GE(ca_stores, 2u);   // header valid=true and valid=false
}

TEST_P(WorkloadParam, StopsAtTarget)
{
    auto wl = makeWorkload(GetParam(), smallParams(7));
    wl->setup([](Addr, const void *, unsigned) {});
    std::vector<Op> ops;
    unsigned batches = 0;
    while (wl->next(ops)) {
        ++batches;
        ops.clear();
    }
    EXPECT_EQ(batches, 7u);
    EXPECT_FALSE(wl->next(ops));
}

TEST_P(WorkloadParam, AllWritesStayInRegion)
{
    auto wl = makeWorkload(GetParam(), smallParams(20));
    wl->setup([](Addr, const void *, unsigned) {});
    std::vector<Op> ops;
    while (wl->next(ops)) {
        for (const Op &op : ops) {
            if (op.type == OpType::Store || op.type == OpType::Clwb
                || op.type == OpType::Load) {
                ASSERT_TRUE(wl->inRegion(op.addr))
                    << "op outside region at " << std::hex << op.addr;
            }
        }
        ops.clear();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadParam,
    ::testing::ValuesIn(allWorkloadKinds()),
    [](const ::testing::TestParamInfo<WorkloadKind> &info) {
        std::string name = workloadKindName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// --- workload-specific checks ------------------------------------------------

TEST(ArraySwap, MultisetPreservedAfterSwaps)
{
    WorkloadParams p = smallParams(200);
    ArraySwapWorkload wl(p);
    runAll(wl);
    EXPECT_TRUE(wl.validate(wl.shadowMem()).ok);
    EXPECT_GT(wl.numItems(), 100u);
}

TEST(ArraySwap, ItemLinesScaleItemSize)
{
    WorkloadParams p = smallParams(10);
    p.itemLines = 4;
    ArraySwapWorkload wl(p);
    wl.setup([](Addr, const void *, unsigned) {});
    EXPECT_EQ(wl.itemAddr(1) - wl.itemAddr(0), 4u * lineBytes);
}

TEST(Queue, PrefilledToSetupFill)
{
    WorkloadParams p = smallParams(0);
    p.setupFill = 0.5;
    QueueWorkload wl(p);
    wl.setup([](Addr, const void *, unsigned) {});
    // The validator checks item content against the FIFO contract.
    EXPECT_TRUE(wl.validate(wl.shadowMem()).ok);
    EXPECT_GT(wl.capacity(), 0u);
}

TEST(Queue, SurvivesFillAndDrainCycles)
{
    WorkloadParams p = smallParams(500);
    p.regionBytes = 64 << 10; // small: forces wrap-around
    p.setupFill = 0.9;
    QueueWorkload wl(p);
    runAll(wl);
    EXPECT_TRUE(wl.validate(wl.shadowMem()).ok);
}

TEST(HashTable, ChainsConsistentAfterInserts)
{
    WorkloadParams p = smallParams(300);
    HashTableWorkload wl(p);
    runAll(wl);
    ValidationResult result = wl.validate(wl.shadowMem());
    EXPECT_TRUE(result.ok) << result.why;
}

TEST(BTree, InvariantsHoldThroughSplits)
{
    WorkloadParams p = smallParams(400);
    p.setupFill = 0.2;
    BTreeWorkload wl(p);
    runAll(wl);
    ValidationResult result = wl.validate(wl.shadowMem());
    EXPECT_TRUE(result.ok) << result.why;
    EXPECT_GT(wl.keyCount(wl.shadowMem()), 400u);
}

TEST(BTree, KeyCountGrowsWithInserts)
{
    WorkloadParams p = smallParams(50);
    p.setupFill = 0.1;
    BTreeWorkload wl(p);
    wl.setup([](Addr, const void *, unsigned) {});
    std::uint64_t before = wl.keyCount(wl.shadowMem());
    std::vector<Op> ops;
    while (wl.next(ops))
        ops.clear();
    EXPECT_EQ(wl.keyCount(wl.shadowMem()), before + 50);
}

TEST(RbTree, InvariantsHoldThroughRotations)
{
    WorkloadParams p = smallParams(400);
    p.setupFill = 0.2;
    RbTreeWorkload wl(p);
    runAll(wl);
    ValidationResult result = wl.validate(wl.shadowMem());
    EXPECT_TRUE(result.ok) << result.why;
}

TEST(RbTree, DetectsCorruptedColor)
{
    WorkloadParams p = smallParams(50);
    RbTreeWorkload wl(p);
    runAll(wl);
    // The root pointer lives in the meta line directly after the log
    // (RbTreeWorkload::doSetup layout); corrupt the root's color.
    ShadowMem &shadow = wl.shadowMem();
    Addr meta = roundUp(wl.regionBase() + wl.log().sizeBytes(),
                        lineBytes);
    Addr root = shadow.readU64(meta);
    ASSERT_NE(root, 0u);
    shadow.writeU64(root + 32, 0x4242424242424242ull);
    EXPECT_FALSE(wl.validate(shadow).ok);
}

TEST(HashTable, DetectsCorruptedAllocatorCursor)
{
    WorkloadParams p = smallParams(100);
    HashTableWorkload wl(p);
    runAll(wl);
    // The allocator cursor lives in the meta line directly after the
    // undo log (see HashTableWorkload::doSetup layout).
    Addr meta = roundUp(wl.regionBase() + wl.log().sizeBytes(),
                        lineBytes);
    wl.shadowMem().writeU64(meta, wl.regionEnd() + 0x1001); // garbage
    EXPECT_FALSE(wl.validate(wl.shadowMem()).ok);
}

} // anonymous namespace
} // namespace cnvm
