/**
 * @file
 * End-to-end system tests: whole-stack runs per design, metric sanity,
 * multi-core completion, and the performance orderings the paper's
 * evaluation rests on.
 */

#include <gtest/gtest.h>

#include "core/system.hh"

namespace cnvm
{
namespace
{

SystemConfig
smallConfig(DesignPoint design,
            WorkloadKind kind = WorkloadKind::ArraySwap,
            unsigned cores = 1, unsigned txns = 40)
{
    SystemConfig cfg;
    cfg.design = design;
    cfg.workload = kind;
    cfg.numCores = cores;
    cfg.wl.regionBytes = 512 << 10;
    cfg.wl.txnTarget = txns;
    cfg.wl.computePerTxn = 200;
    return cfg;
}

TEST(System, RunsToCompletion)
{
    System sys(smallConfig(DesignPoint::SCA));
    RunResult result = sys.run();
    EXPECT_FALSE(result.crashed);
    EXPECT_EQ(result.txnsIssued, 40u);
    EXPECT_GT(result.endTick, 0u);
    EXPECT_GT(sys.runtimeNs(), 0.0);
    EXPECT_GT(sys.throughputTxnPerSec(), 0.0);
}

TEST(System, EveryDesignCompletesEveryWorkload)
{
    for (DesignPoint d : {DesignPoint::NoEncryption, DesignPoint::Ideal,
                          DesignPoint::Colocated, DesignPoint::ColocatedCC,
                          DesignPoint::FCA, DesignPoint::SCA,
                          DesignPoint::Unsafe}) {
        for (WorkloadKind w : allWorkloadKinds()) {
            System sys(smallConfig(d, w, 1, 10));
            RunResult result = sys.run();
            EXPECT_EQ(result.txnsIssued, 10u)
                << designName(d) << " / " << workloadKindName(w);
        }
    }
}

TEST(System, MultiCoreAllCoresFinish)
{
    System sys(smallConfig(DesignPoint::SCA, WorkloadKind::Queue, 4, 20));
    RunResult result = sys.run();
    EXPECT_EQ(result.txnsIssued, 4u * 20u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(sys.workload(i).txnsIssued(), 20u);
}

TEST(System, CoresUseDisjointRegions)
{
    System sys(smallConfig(DesignPoint::SCA, WorkloadKind::ArraySwap, 4,
                           5));
    for (unsigned i = 0; i < 4; ++i) {
        for (unsigned j = i + 1; j < 4; ++j) {
            Addr i_base = sys.workload(i).regionBase();
            Addr i_end = sys.workload(i).regionEnd();
            Addr j_base = sys.workload(j).regionBase();
            Addr j_end = sys.workload(j).regionEnd();
            EXPECT_TRUE(i_end <= j_base || j_end <= i_base);
        }
    }
}

TEST(System, DeterministicRuntimeForSameSeed)
{
    System a(smallConfig(DesignPoint::SCA));
    System b(smallConfig(DesignPoint::SCA));
    EXPECT_EQ(a.run().endTick, b.run().endTick);
}

TEST(System, SeedChangesExecution)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    System a(cfg);
    cfg.wl.seed = 777;
    System b(cfg);
    EXPECT_NE(a.run().endTick, b.run().endTick);
}

TEST(System, EncryptionCostsTime)
{
    // Any encrypted design is at least as slow as no encryption.
    Tick base = 0;
    {
        System sys(smallConfig(DesignPoint::NoEncryption));
        base = sys.run().endTick;
    }
    for (DesignPoint d : {DesignPoint::Ideal, DesignPoint::SCA,
                          DesignPoint::FCA, DesignPoint::Colocated}) {
        System sys(smallConfig(d));
        EXPECT_GE(sys.run().endTick, base) << designName(d);
    }
}

TEST(System, ScaNotSlowerThanColocatedOnReadHeavyWorkload)
{
    // The headline Figure-12 relation on a pointer-chasing workload:
    // serialized decryption makes the co-located design slower.
    SystemConfig sca = smallConfig(DesignPoint::SCA, WorkloadKind::BTree,
                                   1, 60);
    sca.wl.regionBytes = 4 << 20;
    SystemConfig colo = sca;
    colo.design = DesignPoint::Colocated;
    Tick sca_time = System(sca).run().endTick;
    Tick colo_time = System(colo).run().endTick;
    EXPECT_LT(sca_time, colo_time);
}

TEST(System, FcaWritesMoreBytesThanSca)
{
    // Figure 14: FCA's line-granular counter updates inflate traffic.
    SystemConfig base = smallConfig(DesignPoint::SCA,
                                    WorkloadKind::ArraySwap, 1, 60);
    System sca(base);
    sca.run();
    base.design = DesignPoint::FCA;
    System fca(base);
    fca.run();
    EXPECT_GT(fca.nvmBytesWritten(), sca.nvmBytesWritten());
}

TEST(System, EncryptedDesignsWriteMoreThanPlain)
{
    SystemConfig base = smallConfig(DesignPoint::NoEncryption);
    System plain(base);
    plain.run();
    base.design = DesignPoint::SCA;
    System sca(base);
    sca.run();
    EXPECT_GT(sca.nvmBytesWritten(), plain.nvmBytesWritten());
}

TEST(System, CounterCacheMissRateSane)
{
    System sys(smallConfig(DesignPoint::SCA));
    sys.run();
    double rate = sys.counterCacheMissRate();
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
    // No counter cache at all:
    System plain(smallConfig(DesignPoint::NoEncryption));
    plain.run();
    EXPECT_EQ(plain.counterCacheMissRate(), 0.0);
}

TEST(System, CrashStopsExecution)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    Tick total = System(cfg).run().endTick;
    System sys(cfg);
    RunResult result = sys.runWithCrashAt(total / 2);
    EXPECT_TRUE(result.crashed);
    EXPECT_EQ(result.endTick, total / 2);
    EXPECT_LT(result.txnsIssued, 40u);
}

TEST(System, CrashAfterCompletionNeverFires)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    Tick total = System(cfg).run().endTick;
    System sys(cfg);
    RunResult result = sys.runWithCrashAt(total * 10);
    EXPECT_FALSE(result.crashed);
    EXPECT_EQ(result.txnsIssued, 40u);
}

TEST(System, LiveShadowMatchesLivePlainAfterRun)
{
    // The workload's host shadow and the simulator's live plaintext
    // view must agree byte-for-byte once execution quiesces: the
    // functional paths through cache and controller are consistent.
    System sys(smallConfig(DesignPoint::SCA, WorkloadKind::RbTree, 1,
                           30));
    sys.run();
    const ShadowMem &shadow = sys.workload(0).shadowMem();
    bool all_equal = true;
    shadow.forEachLine([&](Addr addr, const LineData &expect) {
        if (sys.nvm().livePlainRead(addr) != expect)
            all_equal = false;
    });
    EXPECT_TRUE(all_equal);
}

TEST(System, StatsRegistryPopulated)
{
    System sys(smallConfig(DesignPoint::SCA));
    sys.run();
    auto &reg = sys.statsRegistry();
    EXPECT_NE(reg.find("nvm.bytes_written"), nullptr);
    EXPECT_NE(reg.find("memctl.data_inserts"), nullptr);
    EXPECT_NE(reg.find("core0.loads"), nullptr);
    EXPECT_GT(reg.lookup("core0.loads"), 0.0);
    EXPECT_GT(reg.lookup("core0.fences"), 0.0);
}

TEST(System, DescribeMentionsDesignAndWorkload)
{
    System sys(smallConfig(DesignPoint::FCA, WorkloadKind::BTree));
    std::string desc = sys.describe();
    EXPECT_NE(desc.find("FCA"), std::string::npos);
    EXPECT_NE(desc.find("B-Tree"), std::string::npos);
}

TEST(System, NvmLatencyScalingSlowsRuns)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    Tick base = System(cfg).run().endTick;
    cfg.nvm = NvmTiming::pcm().scaled(5.0, 5.0);
    Tick slow = System(cfg).run().endTick;
    EXPECT_GT(slow, base);
}

} // anonymous namespace
} // namespace cnvm
