/**
 * @file
 * Unit tests for the NVM device: PCM timing (latencies, bank conflicts,
 * write pausing, bus turnaround) and the functional image views.
 */

#include <gtest/gtest.h>

#include "nvm/nvm_device.hh"

namespace cnvm
{
namespace
{

NvmTiming
simpleTiming()
{
    NvmTiming t = NvmTiming::pcm();
    return t;
}

LineData
lineOf(std::uint8_t v)
{
    LineData d;
    d.fill(v);
    return d;
}

TEST(NvmTiming, Defaults)
{
    NvmTiming t = NvmTiming::pcm();
    EXPECT_EQ(t.tRCD, nsToTicks(48));
    EXPECT_EQ(t.tCL, nsToTicks(15));
    EXPECT_EQ(t.tCWD, nsToTicks(13));
    EXPECT_EQ(t.tWR, nsToTicks(300));
    EXPECT_EQ(t.tBurst, nsToTicks(7.5));
    EXPECT_GT(t.numBanks, 0u);
}

TEST(NvmTiming, Scaling)
{
    NvmTiming t = NvmTiming::pcm().scaled(2.0, 0.5);
    EXPECT_EQ(t.tRCD, nsToTicks(96));
    EXPECT_EQ(t.tCL, nsToTicks(30));
    EXPECT_EQ(t.tWR, nsToTicks(150));
    EXPECT_EQ(t.tCWD, nsToTicks(6.5));
    // Burst and turnaround are interface properties, not scaled.
    EXPECT_EQ(t.tBurst, nsToTicks(7.5));
}

TEST(NvmDevice, IdleReadLatency)
{
    NvmDevice nvm(simpleTiming(), nullptr);
    Tick done = nvm.scheduleRead(0x0, 0);
    // tRCD + tCL + tBurst = 48 + 15 + 7.5 ns.
    EXPECT_EQ(done, nsToTicks(70.5));
}

TEST(NvmDevice, IdleWriteDrainPoint)
{
    NvmDevice nvm(simpleTiming(), nullptr);
    Tick done = nvm.scheduleWrite(0x0, 0, lineBytes);
    // tCWD + tBurst = 13 + 7.5 ns; recovery happens after.
    EXPECT_EQ(done, nsToTicks(20.5));
}

TEST(NvmDevice, WriteRecoveryBlocksSameBankWrite)
{
    NvmDevice nvm(simpleTiming(), nullptr);
    Tick first = nvm.scheduleWrite(0x0, 0, lineBytes);
    // Same line, same bank: must wait for the full tWR recovery.
    Tick second = nvm.scheduleWrite(0x0, first, lineBytes);
    EXPECT_GE(second, first + nvm.timing().tWR);
}

TEST(NvmDevice, DifferentBanksOverlap)
{
    NvmDevice nvm(simpleTiming(), nullptr);
    Tick w0 = nvm.scheduleWrite(0x0, 0, lineBytes);
    Tick w1 = nvm.scheduleWrite(0x40, 0, lineBytes); // next bank
    // The second write's burst starts right after the first's on the
    // shared bus; no 300 ns recovery wait.
    EXPECT_LT(w1, w0 + nvm.timing().tWR);
}

TEST(NvmDevice, PartialWriteRecoveryScales)
{
    NvmDevice nvm(simpleTiming(), nullptr);
    Tick burst_end = nvm.scheduleWrite(0x0, 0, counterBytes); // 8 B
    // Next same-bank access: recovery is tWR/8, not full tWR.
    Tick next = nvm.scheduleWrite(0x0, burst_end, lineBytes);
    EXPECT_LT(next, burst_end + nvm.timing().tWR / 4);
    EXPECT_GE(next, burst_end + nvm.timing().tWR / 8);
}

TEST(NvmDevice, WritePauseLetsReadPreempt)
{
    NvmTiming t = simpleTiming();
    t.writePause = true;
    NvmDevice nvm(t, nullptr);
    Tick wdone = nvm.scheduleWrite(0x0, 0, lineBytes);
    // A read to the same bank right after the burst: with pausing it
    // completes long before the 300 ns recovery would allow.
    Tick rdone = nvm.scheduleRead(0x0, wdone);
    EXPECT_LT(rdone, wdone + nsToTicks(100));
}

TEST(NvmDevice, NoWritePauseSerializesRead)
{
    NvmTiming t = simpleTiming();
    t.writePause = false;
    NvmDevice nvm(t, nullptr);
    Tick wdone = nvm.scheduleWrite(0x0, 0, lineBytes);
    Tick rdone = nvm.scheduleRead(0x0, wdone);
    EXPECT_GE(rdone, wdone + t.tWR);
}

TEST(NvmDevice, PausedRecoveryResumesAfterRead)
{
    NvmTiming t = simpleTiming();
    t.writePause = true;
    NvmDevice nvm(t, nullptr);
    Tick wdone = nvm.scheduleWrite(0x0, 0, lineBytes);
    Tick rdone = nvm.scheduleRead(0x0, wdone);
    // The interrupted programming still owes its time: another
    // same-bank access must wait out the extended recovery.
    Tick w2 = nvm.scheduleWrite(0x0, rdone, lineBytes);
    EXPECT_GE(w2, wdone + t.tWR);
}

TEST(NvmDevice, SecondPausingReadPaysReentryDelay)
{
    // Regression: the paused path used to leave pausableFrom at its
    // pre-read value, so a second read issued while the same write
    // recovery was still owed could pause it again "for free" and
    // complete a burst after the first (hiding the array access
    // entirely). Pausing re-entry must be re-armed from the end of the
    // preempting read.
    NvmTiming t = simpleTiming();
    t.writePause = true;
    NvmDevice nvm(t, nullptr);
    Tick wdone = nvm.scheduleWrite(0x0, 0, lineBytes);
    Tick r1 = nvm.scheduleRead(0x0, wdone);
    Tick r2 = nvm.scheduleRead(0x0, wdone);
    // The second read pauses the resumed programming no earlier than
    // tPause after the first read ends, then pays the full array
    // access again.
    EXPECT_GE(r2, r1 + t.tPause + t.tRCD + t.tCL);
}

TEST(NvmDevice, WriteToReadTurnaround)
{
    // With the array latencies zeroed, the read's burst contends with
    // the write burst directly and the bus turnaround is visible.
    NvmTiming fast = simpleTiming();
    fast.tRCD = 0;
    fast.tCL = 0;
    NvmTiming no_turnaround = fast;
    no_turnaround.tWTR = 0;

    NvmDevice with(fast, nullptr), without(no_turnaround, nullptr);
    with.scheduleWrite(0x0, 0, lineBytes);
    without.scheduleWrite(0x0, 0, lineBytes);
    Tick r_with = with.scheduleRead(0x40, 0);
    Tick r_without = without.scheduleRead(0x40, 0);
    EXPECT_EQ(r_with, r_without + fast.tWTR);
}

TEST(NvmDevice, TrafficAccounting)
{
    NvmDevice nvm(simpleTiming(), nullptr);
    nvm.scheduleRead(0x0, 0);
    nvm.scheduleWrite(0x40, 0, lineBytes);
    nvm.scheduleWrite(0x80, 0, 16);
    EXPECT_EQ(nvm.bytesRead(), 64u);
    EXPECT_EQ(nvm.bytesWritten(), 80u);
}

TEST(NvmDevice, BankFreeQueries)
{
    NvmDevice nvm(simpleTiming(), nullptr);
    EXPECT_TRUE(nvm.bankFree(0x0, 0));
    Tick done = nvm.scheduleWrite(0x0, 0, lineBytes);
    EXPECT_FALSE(nvm.bankFree(0x0, done));
    EXPECT_TRUE(nvm.bankFree(0x0, done + nvm.timing().tWR));
    EXPECT_EQ(nvm.bankFreeTick(0x0), done + nvm.timing().tWR);
}

// --- functional views ----------------------------------------------------

TEST(NvmDevice, LivePlainDefaultsToZero)
{
    NvmDevice nvm(simpleTiming(), nullptr);
    EXPECT_EQ(nvm.livePlainRead(0x1000), LineData{});
}

TEST(NvmDevice, LivePlainPartialStores)
{
    NvmDevice nvm(simpleTiming(), nullptr);
    std::uint8_t bytes[4] = {1, 2, 3, 4};
    nvm.livePlainStore(0x1010, 4, bytes);
    LineData line = nvm.livePlainRead(0x1000);
    EXPECT_EQ(line[0x10], 1);
    EXPECT_EQ(line[0x13], 4);
    EXPECT_EQ(line[0x14], 0);
}

TEST(NvmDevice, PersistedImageSeparateFromLive)
{
    NvmDevice nvm(simpleTiming(), nullptr);
    std::uint8_t b = 9;
    nvm.livePlainStore(0x1000, 1, &b);
    EXPECT_EQ(nvm.persistedLine(0x1000), nullptr);
    nvm.drainData(0x1000, lineOf(7));
    ASSERT_NE(nvm.persistedLine(0x1000), nullptr);
    EXPECT_EQ(*nvm.persistedLine(0x1000), lineOf(7));
    // Live view unchanged by the drain.
    EXPECT_EQ(nvm.livePlainRead(0x1000)[0], 9);
}

TEST(NvmDevice, CounterStore)
{
    NvmDevice nvm(simpleTiming(), nullptr);
    CounterLine zeros{};
    EXPECT_EQ(nvm.persistedCounters(0x2000), zeros);
    CounterLine values{1, 2, 3, 4, 5, 6, 7, 8};
    nvm.drainCounters(0x2000, values);
    EXPECT_EQ(nvm.persistedCounters(0x2000), values);
}

TEST(NvmDevice, DrainOverwritesPriorImage)
{
    NvmDevice nvm(simpleTiming(), nullptr);
    nvm.drainData(0x0, lineOf(1));
    nvm.drainData(0x0, lineOf(2));
    EXPECT_EQ(*nvm.persistedLine(0x0), lineOf(2));
    EXPECT_EQ(nvm.persistedLineCount(), 1u);
}

} // anonymous namespace
} // namespace cnvm
