/**
 * @file
 * Unit tests for the selective counter-atomicity primitives
 * (paper section 4.3) and the end-to-end semantics they carry through
 * the simulated system.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "persist/primitives.hh"

namespace cnvm
{
namespace
{

TEST(Primitives, CounterAtomicStoreCarriesAnnotation)
{
    std::uint64_t v = 42;
    Op op = persist::counterAtomicStore(0x1000, &v, sizeof(v));
    EXPECT_EQ(op.type, OpType::Store);
    EXPECT_TRUE(op.counterAtomic);
    EXPECT_EQ(op.addr, 0x1000u);
    EXPECT_EQ(op.size, 8u);
}

TEST(Primitives, CounterCacheWritebackTargetsAddress)
{
    Op op = persist::counterCacheWriteback(0x12345);
    EXPECT_EQ(op.type, OpType::CtrWb);
    EXPECT_EQ(op.addr, 0x12345u);
}

TEST(Primitives, PersistBarrierShape)
{
    std::vector<Op> ops;
    persist::persistBarrier(ops, {0x1000, 0x2000, 0x3000});
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_EQ(ops[0].type, OpType::Clwb);
    EXPECT_EQ(ops[1].type, OpType::Clwb);
    EXPECT_EQ(ops[2].type, OpType::Clwb);
    EXPECT_EQ(ops[3].type, OpType::Fence);
}

TEST(Primitives, SelectiveBarrierDeduplicatesCounterLines)
{
    std::vector<Op> ops;
    // Three lines, two of which share a 512 B counter group.
    persist::selectiveBarrier(ops, {0x1000, 0x1040, 0x20000});
    unsigned clwbs = 0, ctrwbs = 0, fences = 0;
    for (const Op &op : ops) {
        clwbs += op.type == OpType::Clwb ? 1 : 0;
        ctrwbs += op.type == OpType::CtrWb ? 1 : 0;
        fences += op.type == OpType::Fence ? 1 : 0;
    }
    EXPECT_EQ(clwbs, 3u);
    EXPECT_EQ(ctrwbs, 2u); // one per distinct counter line
    EXPECT_EQ(fences, 1u);
}

TEST(Primitives, SelectiveBarrierOrdering)
{
    std::vector<Op> ops;
    persist::selectiveBarrier(ops, {0x1000});
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0].type, OpType::Clwb);
    EXPECT_EQ(ops[1].type, OpType::CtrWb);
    EXPECT_EQ(ops[2].type, OpType::Fence);
}

TEST(Op, StoreRejectsLineCrossing)
{
    // A store may not cross a cache line (checked by assertion); a
    // maximal legal store touches exactly one full line.
    std::uint8_t buf[lineBytes] = {};
    Op op = Op::store(0x1000, buf, lineBytes);
    EXPECT_EQ(op.size, lineBytes);
}

TEST(DesignTraits, EncryptionAndCacheFlags)
{
    EXPECT_FALSE(designEncrypts(DesignPoint::NoEncryption));
    EXPECT_TRUE(designEncrypts(DesignPoint::SCA));
    EXPECT_TRUE(designEncrypts(DesignPoint::Unsafe));

    EXPECT_FALSE(designHasCounterCache(DesignPoint::NoEncryption));
    EXPECT_FALSE(designHasCounterCache(DesignPoint::Colocated));
    EXPECT_TRUE(designHasCounterCache(DesignPoint::ColocatedCC));
    EXPECT_TRUE(designHasCounterCache(DesignPoint::SCA));

    EXPECT_FALSE(designSeparateCounters(DesignPoint::Colocated));
    EXPECT_TRUE(designSeparateCounters(DesignPoint::FCA));

    EXPECT_TRUE(designCrashConsistent(DesignPoint::SCA));
    EXPECT_FALSE(designCrashConsistent(DesignPoint::Unsafe));
}

TEST(DesignTraits, NamesAreUnique)
{
    std::set<std::string> names;
    for (DesignPoint d : {DesignPoint::NoEncryption, DesignPoint::Ideal,
                          DesignPoint::Colocated, DesignPoint::ColocatedCC,
                          DesignPoint::FCA, DesignPoint::SCA,
                          DesignPoint::Unsafe})
        names.insert(designName(d));
    EXPECT_EQ(names.size(), 7u);
}

/**
 * End-to-end: a hand-written "program" using the raw primitives (the
 * paper's Figure 9 pattern, without the UndoTx library) is crash
 * consistent under SCA.
 */
class RawPrimitiveSource : public OpSource
{
  public:
    bool
    next(std::vector<Op> &out) override
    {
        if (delivered)
            return false;
        delivered = true;

        // "Prepare": write a backup value, flush data + counters.
        std::uint64_t backup = 0x0123456789abcdefull;
        out.push_back(Op::store(kLog, &backup, 8));
        persist::selectiveBarrier(out, {kLog});

        // "Mutate": update the data in place.
        std::uint64_t value = 0xfeedfacecafebeefull;
        out.push_back(Op::store(kData, &value, 8));
        persist::selectiveBarrier(out, {kData});

        // "Commit": one CounterAtomic store flips the valid flag.
        std::uint64_t invalid = 0;
        out.push_back(persist::counterAtomicStore(kValid, &invalid, 8));
        out.push_back(Op::clwb(kValid));
        out.push_back(Op::fence());
        return true;
    }

    static constexpr Addr kLog = 0x100000;
    static constexpr Addr kData = 0x200000;
    static constexpr Addr kValid = 0x100040;

  private:
    bool delivered = false;
};

TEST(Primitives, RawFigure9PatternPersistsUnderSca)
{
    EventQueue eq;
    NvmDevice nvm(NvmTiming::pcm(), nullptr);
    MemCtlConfig mc;
    mc.design = DesignPoint::SCA;
    MemController ctl(eq, nvm, mc, nullptr);
    CachePathConfig cache;
    CoreMemPath path(eq, ClockDomain(250), ctl, cache, 0, nullptr);
    RawPrimitiveSource program;
    Core core(eq, ClockDomain(250), path, program, 0, nullptr);
    core.start();
    eq.run();
    ASSERT_TRUE(core.finished());

    // Power failure after completion: every stage's lines decrypt.
    ctl.crash();
    RecoveredImage image(nvm, ctl);
    EXPECT_EQ(image.readU64(RawPrimitiveSource::kLog),
              0x0123456789abcdefull);
    EXPECT_EQ(image.readU64(RawPrimitiveSource::kData),
              0xfeedfacecafebeefull);
    EXPECT_EQ(image.readU64(RawPrimitiveSource::kValid), 0u);
}

TEST(Primitives, RawPatternWithoutCtrwbTearsUnderSca)
{
    // The same program minus the counter_cache_writeback() calls: the
    // mutate-stage line's counter never persists, so after a crash the
    // data line is torn. This is exactly the programmer obligation the
    // paper's section 4.3 discussion assigns to the primitives.
    class NoCtrwbSource : public OpSource
    {
      public:
        bool
        next(std::vector<Op> &out) override
        {
            if (delivered)
                return false;
            delivered = true;
            std::uint64_t value = 0xfeedfacecafebeefull;
            out.push_back(Op::store(0x200000, &value, 8));
            out.push_back(Op::clwb(0x200000));
            out.push_back(Op::fence());
            return true;
        }

      private:
        bool delivered = false;
    };

    EventQueue eq;
    NvmDevice nvm(NvmTiming::pcm(), nullptr);
    MemCtlConfig mc;
    mc.design = DesignPoint::SCA;
    MemController ctl(eq, nvm, mc, nullptr);
    CachePathConfig cache;
    CoreMemPath path(eq, ClockDomain(250), ctl, cache, 0, nullptr);
    NoCtrwbSource program;
    Core core(eq, ClockDomain(250), path, program, 0, nullptr);
    core.start();
    eq.run();
    ASSERT_TRUE(core.finished());

    ctl.crash();
    RecoveredImage image(nvm, ctl);
    EXPECT_NE(image.readU64(0x200000), 0xfeedfacecafebeefull);
}

} // anonymous namespace
} // namespace cnvm
