/**
 * @file
 * Unit tests for the structural set-associative cache.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace cnvm
{
namespace
{

LineData
lineOf(std::uint8_t v)
{
    LineData d;
    d.fill(v);
    return d;
}

TEST(Cache, Geometry)
{
    Cache c("t", 64 * 1024, 8);
    EXPECT_EQ(c.sizeBytes(), 64u * 1024);
    EXPECT_EQ(c.associativity(), 8u);
    EXPECT_EQ(c.sets(), 128u);
    EXPECT_EQ(c.validCount(), 0u);
}

TEST(Cache, MissThenHit)
{
    Cache c("t", 4096, 4);
    EXPECT_EQ(c.access(0x1000), nullptr);
    c.allocate(0x1000, lineOf(7));
    CacheLine *line = c.access(0x1000);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->data, lineOf(7));
    EXPECT_FALSE(line->dirty);
    EXPECT_FALSE(line->counterAtomic);
}

TEST(Cache, UnalignedAddressesMapToLine)
{
    Cache c("t", 4096, 4);
    c.allocate(0x1000, lineOf(1));
    EXPECT_NE(c.access(0x1017), nullptr);
    EXPECT_NE(c.peek(0x103f), nullptr);
    EXPECT_EQ(c.peek(0x1040), nullptr);
}

TEST(Cache, LruEvictsOldest)
{
    // 2-way, single set via tiny geometry: 128 B total.
    Cache c("t", 128, 2);
    ASSERT_EQ(c.sets(), 1u);
    c.allocate(0x0, lineOf(1));
    c.allocate(0x40, lineOf(2));
    // Touch 0x0 so 0x40 becomes LRU.
    c.access(0x0);
    auto victim = c.allocate(0x80, lineOf(3));
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 0x40u);
    EXPECT_NE(c.peek(0x0), nullptr);
    EXPECT_EQ(c.peek(0x40), nullptr);
}

TEST(Cache, PeekDoesNotTouchLru)
{
    Cache c("t", 128, 2);
    c.allocate(0x0, lineOf(1));
    c.allocate(0x40, lineOf(2));
    c.peek(0x0); // must NOT refresh 0x0
    auto victim = c.allocate(0x80, lineOf(3));
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 0x0u); // still the oldest
}

TEST(Cache, EvictionCarriesDirtyStateAndData)
{
    Cache c("t", 128, 2);
    c.allocate(0x0, lineOf(1));
    CacheLine *line = c.access(0x0);
    line->dirty = true;
    line->counterAtomic = true;
    line->data = lineOf(9);
    c.allocate(0x40, lineOf(2));
    auto victim = c.allocate(0x80, lineOf(3));
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 0x0u);
    EXPECT_TRUE(victim->dirty);
    EXPECT_TRUE(victim->counterAtomic);
    EXPECT_EQ(victim->data, lineOf(9));
}

TEST(Cache, CleanEvictionReportedWithoutDirty)
{
    Cache c("t", 128, 2);
    c.allocate(0x0, lineOf(1));
    c.allocate(0x40, lineOf(2));
    auto victim = c.allocate(0x80, lineOf(3));
    ASSERT_TRUE(victim.has_value());
    EXPECT_FALSE(victim->dirty);
}

TEST(Cache, InvalidateReturnsContent)
{
    Cache c("t", 4096, 4);
    c.allocate(0x200, lineOf(5));
    c.access(0x200)->dirty = true;
    auto inv = c.invalidate(0x200);
    ASSERT_TRUE(inv.has_value());
    EXPECT_TRUE(inv->dirty);
    EXPECT_EQ(inv->data, lineOf(5));
    EXPECT_EQ(c.peek(0x200), nullptr);
    EXPECT_FALSE(c.invalidate(0x200).has_value());
}

TEST(Cache, DistinctSetsDoNotConflict)
{
    Cache c("t", 512, 2); // 4 sets
    // These map to different sets and never evict each other.
    c.allocate(0x0, lineOf(0));
    c.allocate(0x40, lineOf(1));
    c.allocate(0x80, lineOf(2));
    c.allocate(0xc0, lineOf(3));
    EXPECT_EQ(c.validCount(), 4u);
    for (Addr a : {0x0ull, 0x40ull, 0x80ull, 0xc0ull})
        EXPECT_NE(c.peek(a), nullptr);
}

TEST(Cache, ResetDropsEverything)
{
    Cache c("t", 4096, 4);
    c.allocate(0x100, lineOf(1));
    c.allocate(0x140, lineOf(2));
    c.reset();
    EXPECT_EQ(c.validCount(), 0u);
    EXPECT_EQ(c.peek(0x100), nullptr);
}

/** Parameterized: geometry sweep keeps LRU/indexing invariants. */
class CacheGeometry
    : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>>
{};

TEST_P(CacheGeometry, FillToCapacityThenEvict)
{
    auto [size, assoc] = GetParam();
    Cache c("t", size, assoc);
    std::uint64_t lines = size / lineBytes;

    // Fill completely: no evictions expected.
    for (std::uint64_t i = 0; i < lines; ++i)
        ASSERT_FALSE(c.allocate(i * lineBytes, lineOf(1)).has_value());
    EXPECT_EQ(c.validCount(), lines);

    // One more allocation per set must evict exactly one line.
    for (std::uint64_t i = 0; i < c.sets(); ++i) {
        auto victim = c.allocate((lines + i) * lineBytes, lineOf(2));
        ASSERT_TRUE(victim.has_value());
    }
    EXPECT_EQ(c.validCount(), lines);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometry,
    ::testing::Values(std::make_pair(std::uint64_t(1024), 1u),
                      std::make_pair(std::uint64_t(2048), 2u),
                      std::make_pair(std::uint64_t(4096), 4u),
                      std::make_pair(std::uint64_t(64 * 1024), 8u),
                      std::make_pair(std::uint64_t(512 * 1024), 16u)));

} // anonymous namespace
} // namespace cnvm
