/**
 * @file
 * Equivalence tests for the memory controller's write-queue indexes.
 *
 * The controller keeps address and sequence maps over its two write
 * queues so the hot lookups (read forwarding, write combining, pair
 * blocking, drain completion) run in O(1); cfg.useQueueIndex selects
 * the indexed lookups or the reference linear scans. Both must be
 * observably identical: these tests drive two controllers — one per
 * path — through identical randomized sequences of writes, reads,
 * counter writebacks, drains and crashes, and require every externally
 * visible outcome (stats, occupancies, device traffic, the persisted
 * image and counter store, simulated time) to match exactly. In debug
 * builds, the controller additionally cross-checks every indexed
 * lookup against a fresh linear scan internally.
 */

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "memctl/mem_controller.hh"
#include "stats/stats.hh"

namespace cnvm
{
namespace
{

LineData
lineOf(std::uint8_t v)
{
    LineData d;
    d.fill(v);
    return d;
}

/** One controller-under-test with its own clock, device and stats. */
struct Rig
{
    explicit Rig(DesignPoint design, bool use_index)
    {
        MemCtlConfig cfg;
        cfg.design = design;
        cfg.useQueueIndex = use_index;
        nvm = std::make_unique<NvmDevice>(NvmTiming::pcm(), &registry);
        ctl = std::make_unique<MemController>(eq, *nvm, cfg, &registry);
    }

    EventQueue eq;
    stats::StatRegistry registry;
    std::unique_ptr<NvmDevice> nvm;
    std::unique_ptr<MemController> ctl;
};

/** Full externally visible state, rendered comparable. */
std::string
observableState(Rig &rig, const std::vector<Addr> &lines)
{
    std::ostringstream os;
    rig.registry.dump(os);
    os << "tick=" << rig.eq.curTick() << "\n"
       << "dataQ=" << rig.ctl->dataQueueOccupancy()
       << " ctrQ=" << rig.ctl->ctrQueueOccupancy()
       << " landing=" << rig.ctl->landingDepth()
       << " pipeline=" << rig.ctl->pipelineDepth()
       << " inflight=" << rig.ctl->inflightDepth()
       << " reads=" << rig.ctl->outstandingReadCount()
       << " idle=" << rig.ctl->writesIdle() << "\n"
       << "imageLines=" << rig.nvm->persistedLineCount() << "\n";
    for (Addr addr : lines) {
        os << std::hex << addr << std::dec << ": ";
        if (const LineData *cipher = rig.nvm->persistedLine(addr)) {
            for (std::uint8_t b : *cipher)
                os << static_cast<unsigned>(b) << ",";
        } else {
            os << "-";
        }
        os << " cc=" << rig.nvm->persistedCipherCounter(addr);
        CounterLine ctrs =
            rig.nvm->persistedCounters(rig.ctl->counterLineAddr(addr));
        os << " ctr=" << ctrs[rig.ctl->counterSlot(addr)] << "\n";
    }
    return os.str();
}

/**
 * Drives both rigs through the same op and asserts identical
 * acceptance. Ops exercise every index mutation: insert, coalesce,
 * issue (via drains), complete, and crash.
 */
void
runMirroredSequence(DesignPoint design, std::uint32_t seed)
{
    Rig indexed(design, true);
    Rig reference(design, false);
    std::mt19937 rng(seed);

    // A small footprint keeps the queues hot and forces coalescing and
    // pair-blocking; the distinct counter lines exercise the address
    // maps with both singleton and multi-entry vectors.
    std::vector<Addr> lines;
    for (unsigned i = 0; i < 24; ++i)
        lines.push_back(0x40000 + static_cast<Addr>(i) * lineBytes);

    auto random_line = [&]() {
        return lines[rng() % lines.size()];
    };

    for (unsigned op = 0; op < 600; ++op) {
        unsigned kind = rng() % 100;
        if (kind < 55) {
            WriteReq req;
            req.addr = random_line();
            req.data = lineOf(static_cast<std::uint8_t>(rng() % 251));
            req.counterAtomic = rng() % 2 == 0;
            bool a = indexed.ctl->tryWrite(req);
            bool b = reference.ctl->tryWrite(req);
            ASSERT_EQ(a, b) << "op " << op;
        } else if (kind < 70) {
            Addr addr = random_line();
            indexed.ctl->issueRead(addr, 0, []() {});
            reference.ctl->issueRead(addr, 0, []() {});
        } else if (kind < 80) {
            Addr addr = random_line();
            bool a = indexed.ctl->tryCtrWriteback(addr, nullptr);
            bool b = reference.ctl->tryCtrWriteback(addr, nullptr);
            ASSERT_EQ(a, b) << "op " << op;
        } else if (kind < 97) {
            // Let simulated time advance a random number of events so
            // entries land, issue, and complete between ops.
            unsigned steps = rng() % 24;
            for (unsigned s = 0; s < steps; ++s) {
                bool a = indexed.eq.step();
                bool b = reference.eq.step();
                ASSERT_EQ(a, b) << "op " << op;
            }
        } else {
            indexed.ctl->crash();
            reference.ctl->crash();
        }
    }
    indexed.eq.run();
    reference.eq.run();

    EXPECT_EQ(observableState(indexed, lines),
              observableState(reference, lines));
}

TEST(QueueIndex, MirroredRandomSequenceSca)
{
    for (std::uint32_t seed : {1u, 2u, 3u, 4u})
        runMirroredSequence(DesignPoint::SCA, seed);
}

TEST(QueueIndex, MirroredRandomSequenceFca)
{
    // FCA pairs every write: maximal counter-queue pressure, frequent
    // pair blocking, and multi-entry address vectors.
    for (std::uint32_t seed : {5u, 6u, 7u, 8u})
        runMirroredSequence(DesignPoint::FCA, seed);
}

TEST(QueueIndex, MirroredRandomSequenceUnsafe)
{
    for (std::uint32_t seed : {9u, 10u})
        runMirroredSequence(DesignPoint::Unsafe, seed);
}

TEST(QueueIndex, MirroredRandomSequenceNoEncryption)
{
    for (std::uint32_t seed : {11u, 12u})
        runMirroredSequence(DesignPoint::NoEncryption, seed);
}

} // anonymous namespace
} // namespace cnvm
