/**
 * @file
 * Tests for the media-fault injection layer and the integrity-verified
 * recovery built on it: the FaultSpec/FaultModel determinism contract,
 * directed MAC detect/repair/quarantine behavior, and the sweep-level
 * headline invariant — with integrity metadata armed, no injected
 * fault is ever silent; without it, the same doses demonstrably are.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/crash_sweep.hh"
#include "core/recovery.hh"
#include "core/system.hh"
#include "nvm/fault_model.hh"

namespace cnvm
{
namespace
{

SystemConfig
smallConfig(DesignPoint design, unsigned txns = 25)
{
    SystemConfig cfg;
    cfg.design = design;
    cfg.workload = WorkloadKind::ArraySwap;
    cfg.wl.regionBytes = 256 << 10;
    cfg.wl.txnTarget = txns;
    cfg.wl.computePerTxn = 100;
    cfg.wl.recordDigests = true;
    cfg.wl.setupFill = 0.3;
    cfg.memctl.counterCacheBytes = 16 << 10;
    return cfg;
}

/** First initialized data line of core 0 that is outside its log. */
Addr
pickDataLine(const System &sys, LineData *content = nullptr)
{
    const Workload &wl = sys.workload(0);
    const LogLayout &log = wl.log();
    Addr found = 0;
    LineData data{};
    wl.shadowMem().forEachLine([&](Addr a, const LineData &d) {
        bool in_log = a >= log.base && a < log.base + log.sizeBytes();
        if (found == 0 && !in_log) {
            found = a;
            data = d;
        }
    });
    EXPECT_NE(found, 0u);
    if (content != nullptr)
        *content = data;
    return found;
}

// --- FaultSpec ------------------------------------------------------------

TEST(FaultSpec, AnyAndDescribe)
{
    FaultSpec none;
    EXPECT_FALSE(none.any());
    EXPECT_EQ(none.describe(), "");

    FaultSpec dose = FaultSpec::allKinds(9);
    EXPECT_TRUE(dose.any());
    std::string d = dose.describe();
    EXPECT_NE(d.find("+f("), std::string::npos);
    EXPECT_NE(d.find("s9"), std::string::npos);
}

TEST(FaultSpec, PerPointSeedsAreDeterministicAndDistinct)
{
    FaultSpec base = FaultSpec::allKinds(5);
    FaultSpec p3 = base.forPoint(3);
    EXPECT_EQ(p3.seed, base.forPoint(3).seed);
    EXPECT_NE(p3.seed, base.forPoint(4).seed);
    EXPECT_NE(p3.seed, base.seed);
    // The dose itself carries over unchanged.
    EXPECT_EQ(p3.tornWrites, base.tornWrites);
    EXPECT_EQ(p3.bitFlips, base.bitFlips);
    EXPECT_EQ(p3.counterFaults, base.counterFaults);
    EXPECT_EQ(p3.adrDrops, base.adrDrops);
}

// --- FaultModel -----------------------------------------------------------

TEST(FaultModel, SameSeedSameCorruption)
{
    System sys(smallConfig(DesignPoint::SCA, 0));
    Addr ctr_base = sys.controller().config().counterRegionBase;

    PersistImage images[2] = {sys.nvm().persistedState(),
                              sys.nvm().persistedState()};
    for (PersistImage &img : images) {
        FaultModel fm(FaultSpec::allKinds(11), ctr_base);
        fm.adrDropCount(10);
        fm.applyMediaFaults(img);
    }

    ASSERT_GT(images[0].faultedLineCount(), 0u);
    EXPECT_EQ(images[0].faultedLineCount(), images[1].faultedLineCount());
    for (Addr a : images[0].dataLineAddrs()) {
        EXPECT_EQ(images[0].lineFaulted(a), images[1].lineFaulted(a));
        ASSERT_NE(images[0].persistedLine(a), nullptr);
        ASSERT_NE(images[1].persistedLine(a), nullptr);
        EXPECT_EQ(*images[0].persistedLine(a), *images[1].persistedLine(a))
            << std::hex << a;
    }
}

TEST(FaultModel, DifferentSeedDifferentCorruption)
{
    System sys(smallConfig(DesignPoint::SCA, 0));
    Addr ctr_base = sys.controller().config().counterRegionBase;

    PersistImage a = sys.nvm().persistedState();
    PersistImage b = sys.nvm().persistedState();
    FaultModel(FaultSpec::allKinds(1), ctr_base).applyMediaFaults(a);
    FaultModel(FaultSpec::allKinds(2), ctr_base).applyMediaFaults(b);

    bool differ = false;
    for (Addr addr : a.dataLineAddrs()) {
        if (a.lineFaulted(addr) != b.lineFaulted(addr)
            || *a.persistedLine(addr) != *b.persistedLine(addr))
            differ = true;
    }
    EXPECT_TRUE(differ) << "two seeds produced the identical dose";
}

TEST(FaultModel, AdrDropCountIsBoundedByReadyEntries)
{
    FaultSpec spec;
    spec.adrDrops = 8;
    spec.seed = 3;
    FaultModel fm(spec, 0x10000000);
    for (int i = 0; i < 32; ++i)
        EXPECT_LE(fm.adrDropCount(2), 2u);
}

// --- directed MAC behavior ------------------------------------------------

TEST(IntegrityMac, CounterRollbackIsRepairedByWindowSearch)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA, 0);
    cfg.memctl.integrityMac = true;
    System sys(cfg);
    MemController &ctl = sys.controller();
    NvmDevice &nvm = sys.nvm();

    LineData expect;
    Addr addr = pickDataLine(sys, &expect);

    // A counter-store fault: roll the persisted counter back below the
    // value the line's MAC was minted with.
    Addr ctr_line = ctl.counterLineAddr(addr);
    unsigned slot = ctl.counterSlot(addr);
    CounterLine ctrs = nvm.persistedCounters(ctr_line);
    ASSERT_GE(ctrs[slot], 1u);
    ctrs[slot] -= 1;
    nvm.drainCounters(ctr_line, ctrs);

    // Osiris-style repair: the MAC mismatch triggers a bounded trial
    // re-decryption that lands on the true counter.
    RecoveredImage image(nvm, ctl);
    EXPECT_EQ(image.line(addr), expect);
    EXPECT_EQ(image.detectedCorruptions(), 1u);
    EXPECT_EQ(image.windowRepairs(), 1u);
    EXPECT_EQ(image.quarantinedCount(), 0u);
}

TEST(IntegrityMac, CorruptCiphertextIsQuarantined)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA, 0);
    cfg.memctl.integrityMac = true;
    System sys(cfg);

    Addr addr = pickDataLine(sys);
    LineData garbage;
    garbage.fill(0x5a);
    sys.nvm().persistedState().corruptDataLine(addr, garbage);

    // No counter in the window authenticates corrupted ciphertext, so
    // the line degrades gracefully: quarantined, reads as zeros.
    RecoveredImage image(sys.nvm(), sys.controller());
    EXPECT_EQ(image.line(addr), LineData{});
    EXPECT_EQ(image.detectedCorruptions(), 1u);
    EXPECT_EQ(image.windowRepairs(), 0u);
    EXPECT_EQ(image.quarantinedCount(), 1u);
    EXPECT_TRUE(image.isQuarantined(addr));
}

TEST(IntegrityMac, QuarantinedLineFailsRecoveryWithReason)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA, 5);
    cfg.memctl.integrityMac = true;
    System sys(cfg);
    sys.run();
    sys.controller().crash();

    Addr addr = pickDataLine(sys);
    LineData garbage;
    garbage.fill(0xa7);
    sys.nvm().persistedState().corruptDataLine(addr, garbage);

    RecoveryEngine engine(sys.nvm(), sys.controller());
    RecoveryReport report = engine.recover(sys.workload(0));
    EXPECT_FALSE(report.consistent);
    EXPECT_EQ(report.reason, RecoveryFailure::QuarantinedLines);
    EXPECT_EQ(report.detectedCorruptions, 1u);
    EXPECT_EQ(report.unrecoverableLines, 1u);
    EXPECT_EQ(report.repairedLines, 0u);
}

TEST(IntegrityMac, WithoutMacsTheSameCorruptionIsInvisible)
{
    // The control for the quarantine test: integrity off, identical
    // corruption — recovery never notices a thing.
    SystemConfig cfg = smallConfig(DesignPoint::SCA, 5);
    System sys(cfg);
    sys.run();
    sys.controller().crash();

    Addr addr = pickDataLine(sys);
    LineData garbage;
    garbage.fill(0xa7);
    sys.nvm().persistedState().corruptDataLine(addr, garbage);

    RecoveryEngine engine(sys.nvm(), sys.controller());
    RecoveryReport report = engine.recover(sys.workload(0));
    EXPECT_EQ(report.detectedCorruptions, 0u);
    EXPECT_EQ(report.unrecoverableLines, 0u);
}

// --- sweep-level invariants -----------------------------------------------

TEST(FaultSweep, FingerprintIdenticalAcrossModesAndJobs)
{
    // Satellite contract: the fault dose is a pure function of the
    // base seed and the plan index, so the same sweep fingerprints
    // byte-identically in Replay and Fork mode at any job count.
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    cfg.memctl.integrityMac = true;

    SweepOptions ref_opt;
    ref_opt.points = 8;
    ref_opt.faults = FaultSpec::allKinds(42);
    std::string ref = runSweep(cfg, ref_opt).fingerprint();
    ASSERT_FALSE(ref.empty());
    EXPECT_NE(ref.find("+f("), std::string::npos);

    for (SweepMode mode : {SweepMode::Replay, SweepMode::Fork}) {
        for (unsigned jobs : {1u, 4u}) {
            SweepOptions opt = ref_opt;
            opt.mode = mode;
            opt.jobs = jobs;
            EXPECT_EQ(runSweep(cfg, opt).fingerprint(), ref)
                << sweepModeName(mode) << " jobs=" << jobs;
        }
    }
}

TEST(FaultSweep, CleanSweepFingerprintCarriesNoFaultAnnotations)
{
    // Historical fingerprints must survive the fault layer: a sweep
    // without a dose describes and classifies exactly as before.
    SweepResult clean = runSweep(smallConfig(DesignPoint::SCA), 6);
    EXPECT_EQ(clean.fingerprint().find("+f("), std::string::npos);
    EXPECT_EQ(clean.fingerprint().find("/f"), std::string::npos);
    EXPECT_EQ(clean.totalOf(&SweepPoint::faultedLines), 0u);
    EXPECT_EQ(clean.totalOf(&SweepPoint::detectedCorruptions), 0u);
}

TEST(FaultSweep, IntegrityOnNothingIsSilent)
{
    // The headline invariant over every crash-handling design: with
    // integrity metadata armed, an injected fault either masks
    // (consistent recovery) or is detected — never silent. And any
    // recovery failure of a crash-consistent design under media faults
    // must be a detected one, not a miscarried rollback.
    for (DesignPoint d : {DesignPoint::ColocatedCC, DesignPoint::FCA,
                          DesignPoint::SCA, DesignPoint::Unsafe}) {
        SystemConfig cfg = smallConfig(d);
        cfg.memctl.integrityMac = true;

        SweepOptions opt;
        opt.points = 8;
        opt.mode = SweepMode::Fork;
        opt.jobs = 4;
        opt.faults = FaultSpec::allKinds(1);
        SweepResult result = runSweep(cfg, opt);

        EXPECT_EQ(result.silentPoints(), 0u) << designName(d);
        EXPECT_GT(result.totalOf(&SweepPoint::faultedLines), 0u)
            << designName(d) << ": the dose never landed";
        if (designCrashConsistent(d))
            EXPECT_EQ(result.inconsistentPoints(),
                      result.countOf(CrashClass::DetectedCorruption))
                << designName(d);
        // Per-point accounting: every detection is either repaired or
        // quarantined, nothing vanishes.
        for (const SweepPoint &p : result.points) {
            if (!p.crashed)
                continue;
            EXPECT_EQ(p.detectedCorruptions,
                      p.repairedLines + p.unrecoverableLines)
                << designName(d) << " " << p.spec.describe();
        }
    }
}

TEST(FaultSweep, IntegrityOffProducesSilentCorruption)
{
    // The negative control: the same dose without integrity metadata
    // must corrupt silently somewhere — recovery fails (or worse,
    // passes) with zero detections.
    SystemConfig cfg = smallConfig(DesignPoint::SCA);

    SweepOptions opt;
    opt.points = 10;
    opt.mode = SweepMode::Fork;
    opt.jobs = 4;
    opt.faults = FaultSpec::allKinds(1);
    SweepResult result = runSweep(cfg, opt);

    EXPECT_GE(result.silentPoints(), 1u);
    EXPECT_EQ(result.totalOf(&SweepPoint::detectedCorruptions), 0u);
}

TEST(FaultSweep, AdrDropsAloneAreNotMediaFaults)
{
    // Energy-budget exhaustion loses queued persists; that is a
    // legitimate crash shape, not corruption, so no line is marked
    // faulted and nothing can classify as silent corruption.
    SystemConfig cfg = smallConfig(DesignPoint::SCA);

    SweepOptions opt;
    opt.points = 8;
    FaultSpec dose;
    dose.adrDrops = 4;
    dose.seed = 2;
    opt.faults = dose;
    SweepResult result = runSweep(cfg, opt);

    EXPECT_EQ(result.totalOf(&SweepPoint::faultedLines), 0u);
    EXPECT_EQ(result.silentPoints(), 0u);
    EXPECT_EQ(result.countOf(CrashClass::DetectedCorruption), 0u);
}

TEST(FaultSweep, NoEncryptionSkipsCounterFaults)
{
    // The counter store does not exist without encryption; a dose that
    // asks for counter faults must not fabricate one (or crash).
    SystemConfig cfg = smallConfig(DesignPoint::NoEncryption);

    SweepOptions opt;
    opt.points = 6;
    FaultSpec dose;
    dose.counterFaults = 2;
    dose.seed = 4;
    opt.faults = dose;
    SweepResult result = runSweep(cfg, opt);
    EXPECT_EQ(result.totalOf(&SweepPoint::faultedLines), 0u);
}

TEST(CrashClassNames, IncludeTheFaultClasses)
{
    EXPECT_STREQ(crashClassName(CrashClass::DetectedCorruption),
                 "detected-corruption");
    EXPECT_STREQ(crashClassName(CrashClass::SilentCorruption),
                 "silent-corruption");
}

} // anonymous namespace
} // namespace cnvm
