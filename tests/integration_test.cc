/**
 * @file
 * Cross-module integration and property tests:
 *
 *  - the recovered (decrypted) image after a clean shutdown equals the
 *    workload shadow, for every design — the functional paths through
 *    cache, encryption, queues and recovery agree end to end;
 *  - a torn-state fuzzer builds random partial-persist states directly
 *    against the NVM API and checks the recovery engine's decisions;
 *  - simulations are deterministic and design-independent functionally
 *    (the same seed produces the same committed data under every
 *    design);
 *  - an 8-core stress run with a tiny counter write queue completes
 *    and stays consistent under backpressure.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/system.hh"
#include "txn/undo_log.hh"

namespace cnvm
{
namespace
{

SystemConfig
smallConfig(DesignPoint design, WorkloadKind kind, unsigned txns = 25)
{
    SystemConfig cfg;
    cfg.design = design;
    cfg.workload = kind;
    cfg.wl.regionBytes = 256 << 10;
    cfg.wl.txnTarget = txns;
    cfg.wl.computePerTxn = 100;
    cfg.wl.setupFill = 0.3;
    return cfg;
}

// ---------------------------------------------------------------------
// Clean-shutdown equivalence: shadow == decrypted image, all designs.
// ---------------------------------------------------------------------

class CleanShutdown
    : public ::testing::TestWithParam<std::pair<DesignPoint, WorkloadKind>>
{};

TEST_P(CleanShutdown, RecoveredImageEqualsShadow)
{
    auto [design, workload] = GetParam();
    System sys(smallConfig(design, workload));
    sys.run();

    // A clean shutdown flushes everything: emulate by writing back the
    // remaining counter-cache state through the paper's primitive,
    // then crash. All committed state must decrypt to the shadow
    // bytes exactly.
    for (Addr group = sys.workload(0).regionBase();
         group < sys.workload(0).regionEnd();
         group += lineBytes * countersPerLine) {
        ASSERT_TRUE(sys.controller().tryCtrWriteback(group, nullptr));
        sys.eventQueue().run();
    }
    sys.eventQueue().run();
    sys.controller().crash();

    RecoveredImage image(sys.nvm(), sys.controller());
    const ShadowMem &shadow = sys.workload(0).shadowMem();
    std::size_t mismatches = 0;
    shadow.forEachLine([&](Addr addr, const LineData &expect) {
        if (image.line(addr) != expect)
            ++mismatches;
    });
    EXPECT_EQ(mismatches, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    DesignsXWorkloads, CleanShutdown,
    ::testing::Values(
        std::make_pair(DesignPoint::NoEncryption, WorkloadKind::Queue),
        std::make_pair(DesignPoint::Ideal, WorkloadKind::HashTable),
        std::make_pair(DesignPoint::Colocated, WorkloadKind::BTree),
        std::make_pair(DesignPoint::ColocatedCC, WorkloadKind::RbTree),
        std::make_pair(DesignPoint::FCA, WorkloadKind::ArraySwap),
        std::make_pair(DesignPoint::SCA, WorkloadKind::BTree)),
    [](const auto &info) {
        std::string n = std::string(designName(info.param.first)) + "_"
                      + workloadKindName(info.param.second);
        for (char &c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

// ---------------------------------------------------------------------
// Functional design-independence: committed data does not depend on
// the timing design, only on the workload seed.
// ---------------------------------------------------------------------

TEST(Integration, CommittedStateIsDesignIndependent)
{
    std::uint64_t reference = 0;
    bool first = true;
    for (DesignPoint d : {DesignPoint::NoEncryption, DesignPoint::SCA,
                          DesignPoint::FCA, DesignPoint::Colocated}) {
        System sys(smallConfig(d, WorkloadKind::RbTree));
        sys.run();
        std::uint64_t digest =
            sys.workload(0).digest(sys.workload(0).shadowMem());
        if (first) {
            reference = digest;
            first = false;
        } else {
            EXPECT_EQ(digest, reference) << designName(d);
        }
    }
}

TEST(Integration, RunsAreReproducibleTickForTick)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA, WorkloadKind::BTree);
    System a(cfg), b(cfg);
    RunResult ra = a.run(), rb = b.run();
    EXPECT_EQ(ra.endTick, rb.endTick);
    EXPECT_EQ(a.nvmBytesWritten(), b.nvmBytesWritten());
    EXPECT_EQ(a.nvmBytesRead(), b.nvmBytesRead());
}

// ---------------------------------------------------------------------
// Torn-state fuzzer: random partial-persist states, built directly.
// ---------------------------------------------------------------------

class TornStateFuzzer : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(TornStateFuzzer, RecoveryNeverMisjudgesManufacturedStates)
{
    // Start from a cleanly committed system, then corrupt the image in
    // randomized but *typed* ways and check the recovery verdicts:
    //  - regressing a data line's counter (stale counter) must be
    //    caught by structure validation or the digest check;
    //  - a log in the kValid state with a matching checksum must roll
    //    back; with a broken checksum it must not.
    Random rng(GetParam());
    SystemConfig cfg = smallConfig(DesignPoint::SCA,
                                   WorkloadKind::ArraySwap, 10);
    cfg.wl.recordDigests = true;
    System sys(cfg);
    sys.run();
    sys.controller().crash();

    MemController &ctl = sys.controller();
    NvmDevice &nvm = sys.nvm();
    Workload &wl = sys.workload(0);

    // Sanity: the untouched state recovers.
    {
        RecoveryEngine engine(nvm, ctl);
        ASSERT_TRUE(engine.recover(wl).consistent);
    }

    // Corruption 1: regress the persisted counter of a random array
    // line (the Figure 3(b) direction).
    Addr victim = 0;
    {
        // Pick a random persisted line inside the region.
        for (int tries = 0; tries < 1000; ++tries) {
            Addr candidate = lineAlign(
                wl.regionBase()
                + rng.below(wl.regionEnd() - wl.regionBase()));
            if (nvm.persistedLine(candidate) != nullptr) {
                victim = candidate;
                break;
            }
        }
        ASSERT_NE(victim, 0u);
        Addr ctr_addr = ctl.counterLineAddr(victim);
        CounterLine values = nvm.persistedCounters(ctr_addr);
        unsigned slot = ctl.counterSlot(victim);
        ASSERT_GT(values[slot], 0u);
        values[slot] -= 1; // stale
        nvm.drainCounters(ctr_addr, values);

        RecoveryEngine engine(nvm, ctl);
        RecoveryReport report = engine.recover(wl);
        EXPECT_FALSE(report.consistent)
            << "stale counter on " << std::hex << victim
            << " went undetected";

        values[slot] += 1; // repair
        nvm.drainCounters(ctr_addr, values);
        ASSERT_TRUE(engine.recover(wl).consistent);
    }

    // Corruption 2: flip random bits in a random *backup* line of the
    // log while the log is invalid — recovery must ignore the log and
    // stay consistent.
    {
        const LogLayout &log = wl.log();
        Addr backup = log.backupAddr(
            static_cast<unsigned>(rng.below(log.maxLines)));
        std::uint64_t counter =
            nvm.persistedCounters(ctl.counterLineAddr(backup))
                [ctl.counterSlot(backup)];
        const LineData *cipher = nvm.persistedLine(backup);
        if (cipher != nullptr) {
            LineData garbled = *cipher;
            garbled[rng.below(lineBytes)] ^=
                static_cast<std::uint8_t>(1 + rng.below(255));
            nvm.drainData(backup, garbled);
            (void)counter;
            RecoveryEngine engine(nvm, ctl);
            EXPECT_TRUE(engine.recover(wl).consistent)
                << "garbage in an inactive log backup must be ignored";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TornStateFuzzer,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------
// Backpressure stress: tiny counter queue, many cores.
// ---------------------------------------------------------------------

TEST(Integration, EightCoreStressWithTinyCounterQueue)
{
    SystemConfig cfg = smallConfig(DesignPoint::FCA,
                                   WorkloadKind::HashTable, 8);
    cfg.numCores = 8;
    cfg.memctl.ctrWqEntries = 2; // brutal backpressure
    cfg.memctl.dataWqEntries = 8;
    System sys(cfg);
    RunResult result = sys.run();
    EXPECT_EQ(result.txnsIssued, 8u * 8u);

    sys.controller().crash();
    std::string why;
    EXPECT_TRUE(sys.recoveredConsistently(&why)) << why;
}

TEST(Integration, ScaStressWithTinyQueuesStaysConsistentUnderCrash)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA,
                                   WorkloadKind::Queue, 12);
    cfg.numCores = 4;
    cfg.memctl.ctrWqEntries = 2;
    cfg.memctl.dataWqEntries = 8;
    cfg.wl.recordDigests = true;

    Tick total = System(cfg).run().endTick;
    for (int i = 1; i <= 5; ++i) {
        System sys(cfg);
        RunResult result = sys.runWithCrashAt(total * i / 6);
        if (!result.crashed)
            continue;
        std::string why;
        ASSERT_TRUE(sys.recoveredConsistently(&why))
            << "point " << i << ": " << why;
    }
}

// ---------------------------------------------------------------------
// Randomized UndoTx property: arbitrary interleavings of reads and
// writes, committed through ops, always leave shadow == merged view.
// ---------------------------------------------------------------------

class UndoTxProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(UndoTxProperty, ShadowMatchesReferenceModel)
{
    Random rng(GetParam());
    ShadowMem shadow;
    LogLayout log{0x10000, 64};
    std::map<Addr, std::uint64_t> model;

    const Addr data_base = 0x100000;
    for (int txn = 0; txn < 50; ++txn) {
        UndoTx tx(shadow, log);
        tx.begin(txn + 1);
        unsigned writes = 1 + static_cast<unsigned>(rng.below(10));
        for (unsigned w = 0; w < writes; ++w) {
            Addr addr = data_base + rng.below(64) * 8;
            if (rng.chancePct(30)) {
                // Read-modify-write through the transaction.
                std::uint64_t v = tx.readU64(addr) + 1;
                tx.writeU64(addr, v);
                model[addr] = model.count(addr) ? model[addr] + 1 : 1;
            } else {
                std::uint64_t v = rng.next();
                tx.writeU64(addr, v);
                model[addr] = v;
            }
        }
        std::vector<Op> ops;
        tx.commit(ops);
        EXPECT_FALSE(ops.empty());
    }

    for (const auto &[addr, value] : model)
        ASSERT_EQ(shadow.readU64(addr), value) << std::hex << addr;
}

INSTANTIATE_TEST_SUITE_P(Seeds, UndoTxProperty,
                         ::testing::Values(101, 202, 303, 404));

} // anonymous namespace
} // namespace cnvm
