/**
 * @file
 * The paper's central correctness property, as a parameterized sweep:
 * for every crash-consistent design and every workload, a power failure
 * at ANY point of execution leaves a state that recovers to a committed
 * prefix of the transaction history. The Unsafe negative control (no
 * counter-atomicity) must fail for some crash points — that failure is
 * the Figure 3/4 inconsistency that motivates the whole paper.
 */

#include <gtest/gtest.h>

#include "core/crash_sweep.hh"
#include "core/system.hh"

namespace cnvm
{
namespace
{

struct SweepCase
{
    DesignPoint design;
    WorkloadKind workload;
};

std::string
caseName(const ::testing::TestParamInfo<SweepCase> &info)
{
    std::string name = std::string(designName(info.param.design)) + "_"
                     + workloadKindName(info.param.workload);
    std::string out;
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += c;
        else
            out += '_';
    }
    return out;
}

SystemConfig
sweepConfig(const SweepCase &c)
{
    SystemConfig cfg;
    cfg.design = c.design;
    cfg.workload = c.workload;
    cfg.wl.regionBytes = 256 << 10;
    cfg.wl.txnTarget = 30;
    cfg.wl.computePerTxn = 100;
    cfg.wl.recordDigests = true;
    cfg.wl.setupFill = 0.3;
    return cfg;
}

class CrashSweep : public ::testing::TestWithParam<SweepCase>
{};

TEST_P(CrashSweep, EveryCrashPointRecoversConsistently)
{
    SystemConfig cfg = sweepConfig(GetParam());
    Tick total = System(cfg).run().endTick;

    const int points = 12;
    for (int i = 1; i <= points; ++i) {
        System sys(cfg);
        RunResult result = sys.runWithCrashAt(total * i / (points + 1));
        if (!result.crashed)
            continue;
        std::string why;
        ASSERT_TRUE(sys.recoveredConsistently(&why))
            << "crash at point " << i << "/" << points << ": " << why;
    }
}

std::vector<SweepCase>
consistentCases()
{
    std::vector<SweepCase> cases;
    for (DesignPoint d : {DesignPoint::NoEncryption, DesignPoint::Ideal,
                          DesignPoint::Colocated, DesignPoint::ColocatedCC,
                          DesignPoint::FCA, DesignPoint::SCA}) {
        for (WorkloadKind w : allWorkloadKinds())
            cases.push_back({d, w});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllDesignsAllWorkloads, CrashSweep,
                         ::testing::ValuesIn(consistentCases()),
                         caseName);

/** Multi-core variant on the proposal itself. */
class MultiCoreCrashSweep : public ::testing::TestWithParam<WorkloadKind>
{};

TEST_P(MultiCoreCrashSweep, ScaRecoversAllRegions)
{
    SystemConfig cfg = sweepConfig({DesignPoint::SCA, GetParam()});
    cfg.numCores = 2;
    cfg.wl.txnTarget = 15;
    Tick total = System(cfg).run().endTick;

    for (int i = 1; i <= 6; ++i) {
        System sys(cfg);
        RunResult result = sys.runWithCrashAt(total * i / 7);
        if (!result.crashed)
            continue;
        std::string why;
        ASSERT_TRUE(sys.recoveredConsistently(&why))
            << "crash point " << i << ": " << why;
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, MultiCoreCrashSweep,
                         ::testing::ValuesIn(allWorkloadKinds()),
                         [](const auto &info) {
                             std::string n = workloadKindName(info.param);
                             for (char &c : n)
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             return n;
                         });

TEST(CrashSweepNegative, UnsafeDesignViolatesConsistency)
{
    // Without counter-atomicity, counter-mode encryption loses data
    // across failures (paper sections 2.2.2-2.2.3). The sweep must
    // find inconsistent recoveries.
    SystemConfig cfg = sweepConfig(
        {DesignPoint::Unsafe, WorkloadKind::ArraySwap});
    Tick total = System(cfg).run().endTick;

    unsigned failures = 0;
    for (int i = 1; i <= 12; ++i) {
        System sys(cfg);
        RunResult result = sys.runWithCrashAt(total * i / 13);
        if (!result.crashed)
            continue;
        std::string why;
        if (!sys.recoveredConsistently(&why))
            ++failures;
    }
    EXPECT_GT(failures, 0u)
        << "the Unsafe design should tear counter-atomic windows";
}

/**
 * Directed semantic crash points: instead of sampling runtime
 * fractions, arm the failure at controller states a tick can only hit
 * by luck — a write inside the encryption pipeline, writes parked in
 * the landing queue behind full write queues, a dirty counter
 * eviction in flight. Every crash-consistent design must recover from
 * each of them.
 */
class SemanticCrashPoints : public ::testing::TestWithParam<DesignPoint>
{
  protected:
    SystemConfig
    config()
    {
        SystemConfig cfg = sweepConfig({GetParam(), WorkloadKind::Queue});
        cfg.wl.txnTarget = 20;
        // Tiny write queues: the landing queue backs up, so the crash
        // hits states with writes parked outside the ADR domain.
        cfg.memctl.dataWqEntries = 4;
        cfg.memctl.ctrWqEntries = 4;
        // Small counter cache: dirty evictions actually happen.
        cfg.memctl.counterCacheBytes = 16 << 10;
        return cfg;
    }
};

TEST_P(SemanticCrashPoints, CrashInsidePipelineRecovers)
{
    SystemConfig cfg = config();
    SweepProbe probe = probeRun(cfg);
    std::uint64_t total = probe.countOf(CtlEvent::PipelineEnter);
    ASSERT_GT(total, 0u) << "every design funnels writes through the "
                            "controller pipeline";

    unsigned mid_pipeline = 0;
    for (std::uint64_t nth : {std::uint64_t(1), total / 2, total}) {
        SweepPoint p = runSweepPoint(
            cfg, CrashSpec::atEvent(CrashTriggerKind::PipelineEnter, nth));
        if (!p.crashed)
            continue;
        EXPECT_GE(p.snapshot.pipeline, 1u) << p.spec.describe();
        mid_pipeline += p.snapshot.pipeline >= 1;
        ASSERT_EQ(p.cls, CrashClass::Consistent)
            << p.spec.describe() << ": " << p.detail;
    }
    EXPECT_GT(mid_pipeline, 0u);
}

TEST_P(SemanticCrashPoints, CrashWithBackedUpQueuesRecovers)
{
    SystemConfig cfg = config();
    SweepProbe probe = probeRun(cfg);
    std::uint64_t total = probe.countOf(CtlEvent::DataDrain);
    ASSERT_GT(total, 0u);

    unsigned busy_points = 0;
    for (std::uint64_t nth :
         {total / 4, total / 2, 3 * total / 4, total}) {
        if (nth == 0)
            continue;
        SweepPoint p = runSweepPoint(
            cfg, CrashSpec::atEvent(CrashTriggerKind::DataDrain, nth));
        if (!p.crashed)
            continue;
        busy_points += p.snapshot.dataQueue > 0 || p.snapshot.landing > 0
            || p.snapshot.pipeline > 0;
        ASSERT_EQ(p.cls, CrashClass::Consistent)
            << p.spec.describe() << ": " << p.detail;
    }
    // With 4-entry queues, some sampled drain must catch more work
    // still in flight behind it.
    EXPECT_GT(busy_points, 0u);
}

TEST_P(SemanticCrashPoints, CrashAtDirtyEvictionRecovers)
{
    SystemConfig cfg = config();
    // SCA cleans deferred counters at every commit writeback, so
    // evictions need real pressure: wide transactions dirtying more
    // counter lines than a 4 KB cache holds before the commit point.
    cfg.workload = WorkloadKind::ArraySwap;
    cfg.wl.batch = 48;
    cfg.memctl.counterCacheBytes = 4 << 10;
    SweepProbe probe = probeRun(cfg);
    std::uint64_t total = probe.countOf(CtlEvent::DirtyEviction);
    if (total == 0)
        GTEST_SKIP() << "design has no dirty counter evictions";

    for (std::uint64_t nth : {std::uint64_t(1), total / 2, total}) {
        if (nth == 0)
            continue;
        SweepPoint p = runSweepPoint(
            cfg, CrashSpec::atEvent(CrashTriggerKind::DirtyEviction, nth));
        if (!p.crashed)
            continue;
        ASSERT_EQ(p.cls, CrashClass::Consistent)
            << p.spec.describe() << ": " << p.detail;
    }
}

TEST_P(SemanticCrashPoints, CrashAtPairingRecovers)
{
    SystemConfig cfg = config();
    SweepProbe probe = probeRun(cfg);
    std::uint64_t total = probe.countOf(CtlEvent::PairAction);
    if (total == 0)
        GTEST_SKIP() << "design performs no ready-bit pairing";

    for (std::uint64_t nth : {std::uint64_t(1), total / 2, total}) {
        if (nth == 0)
            continue;
        SweepPoint p = runSweepPoint(
            cfg, CrashSpec::atEvent(CrashTriggerKind::PairAction, nth));
        if (!p.crashed)
            continue;
        ASSERT_EQ(p.cls, CrashClass::Consistent)
            << p.spec.describe() << ": " << p.detail;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConsistentDesigns, SemanticCrashPoints,
    ::testing::Values(DesignPoint::NoEncryption, DesignPoint::Ideal,
                      DesignPoint::Colocated, DesignPoint::ColocatedCC,
                      DesignPoint::FCA, DesignPoint::SCA),
    [](const auto &info) {
        std::string n = designName(info.param);
        for (char &c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(CrashSweepTiming, CrashInsideEncryptionPipelineIsSafe)
{
    // Sub-tick precision: crashes offset by sub-40ns amounts around a
    // barrier still recover (entries in the encryption pipeline are
    // simply lost, never half-persisted).
    SystemConfig cfg = sweepConfig(
        {DesignPoint::SCA, WorkloadKind::Queue});
    Tick total = System(cfg).run().endTick;
    for (Tick offset : {Tick(0), nsToTicks(5), nsToTicks(17),
                        nsToTicks(39), nsToTicks(41)}) {
        System sys(cfg);
        RunResult result = sys.runWithCrashAt(total / 2 + offset);
        if (!result.crashed)
            continue;
        std::string why;
        ASSERT_TRUE(sys.recoveredConsistently(&why))
            << "offset " << offset << ": " << why;
    }
}

} // anonymous namespace
} // namespace cnvm
