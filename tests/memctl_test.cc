/**
 * @file
 * Unit tests for the memory controller: per-design read paths, write
 * acceptance and coalescing, the counter-atomic pairing protocol, the
 * counter_cache_writeback() primitive, ADR crash draining, and the
 * decryptability of the persisted image afterwards.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "memctl/mem_controller.hh"
#include "sim/one_shot.hh"

namespace cnvm
{
namespace
{

LineData
lineOf(std::uint8_t v)
{
    LineData d;
    d.fill(v);
    return d;
}

class MemCtlTest : public ::testing::Test
{
  protected:
    void
    build(DesignPoint design)
    {
        MemCtlConfig cfg;
        cfg.design = design;
        nvm = std::make_unique<NvmDevice>(NvmTiming::pcm(), nullptr);
        ctl = std::make_unique<MemController>(eq, *nvm, cfg, nullptr);
    }

    /** Issues a read and returns its latency. */
    Tick
    readLatency(Addr addr)
    {
        Tick start = eq.curTick();
        Tick done = 0;
        ctl->issueRead(addr, 0, [&]() { done = eq.curTick(); });
        eq.run();
        return done - start;
    }

    /** Issues a write, runs to quiescence, returns acceptance tick. */
    Tick
    writeAndDrain(Addr addr, const LineData &data, bool ca = false)
    {
        Tick accepted_at = 0;
        WriteReq req;
        req.addr = addr;
        req.data = data;
        req.counterAtomic = ca;
        req.accepted = [&]() { accepted_at = eq.curTick(); };
        EXPECT_TRUE(ctl->tryWrite(req));
        eq.run();
        return accepted_at;
    }

    /** Decrypts the persisted image for a line with the stored counter. */
    LineData
    recoverLine(Addr addr)
    {
        const LineData *cipher = nvm->persistedLine(addr);
        if (ctl->design() == DesignPoint::NoEncryption)
            return cipher != nullptr ? *cipher : LineData{};
        LineData bytes = cipher != nullptr
            ? *cipher
            : ctl->engine().encrypt(addr, 0, LineData{});
        std::uint64_t counter =
            nvm->persistedCounters(ctl->counterLineAddr(addr))
                [ctl->counterSlot(addr)];
        return ctl->engine().decrypt(addr, counter, bytes);
    }

    EventQueue eq;
    std::unique_ptr<NvmDevice> nvm;
    std::unique_ptr<MemController> ctl;
};

// --- address-space helpers ----------------------------------------------

TEST_F(MemCtlTest, CounterLineMapping)
{
    build(DesignPoint::SCA);
    Addr base = ctl->config().counterRegionBase;
    EXPECT_EQ(ctl->counterLineAddr(0x0), base);
    EXPECT_EQ(ctl->counterLineAddr(0x1c0), base); // line 7, same group
    EXPECT_EQ(ctl->counterLineAddr(0x200), base + 64); // line 8
    EXPECT_EQ(ctl->counterSlot(0x0), 0u);
    EXPECT_EQ(ctl->counterSlot(0x1c0), 7u);
    EXPECT_EQ(ctl->counterSlot(0x200), 0u);
}

// --- read path latencies (paper Figures 2 and 6) -------------------------

TEST_F(MemCtlTest, NoEncryptionReadIsRawDeviceLatency)
{
    build(DesignPoint::NoEncryption);
    EXPECT_EQ(readLatency(0x40000), nsToTicks(70.5));
}

TEST_F(MemCtlTest, ColocatedSerializesDecryption)
{
    // Figure 6a: read + 40 ns decryption, every time.
    build(DesignPoint::Colocated);
    EXPECT_EQ(readLatency(0x40000), nsToTicks(70.5 + 40));
    EXPECT_EQ(readLatency(0x80000), nsToTicks(70.5 + 40));
}

TEST_F(MemCtlTest, ColocatedCCOverlapsOnHit)
{
    // Figure 6b: first access misses the counter cache (serialized),
    // the next hit overlaps OTP generation with the read.
    build(DesignPoint::ColocatedCC);
    EXPECT_EQ(readLatency(0x40000), nsToTicks(70.5 + 40));
    EXPECT_EQ(readLatency(0x40040), nsToTicks(70.5)); // same ctr line
}

TEST_F(MemCtlTest, SeparateCounterMissFetchesCounterLine)
{
    // Section 5.2.1: a counter miss stalls and fetches the counter
    // line from NVMM; the next access to the same group hits.
    build(DesignPoint::SCA);
    Tick cold = readLatency(0x40000);
    EXPECT_GT(cold, nsToTicks(70.5 + 40)); // counter fetch serialized
    EXPECT_EQ(readLatency(0x40040), nsToTicks(70.5)); // warm hit
}

TEST_F(MemCtlTest, WarmCounterLineAvoidsColdMiss)
{
    build(DesignPoint::SCA);
    ctl->warmCounterLine(0x40000);
    EXPECT_EQ(readLatency(0x40000), nsToTicks(70.5));
}

TEST_F(MemCtlTest, ReadForwardsFromWriteQueue)
{
    build(DesignPoint::SCA);
    WriteReq req;
    req.addr = 0x40000;
    req.data = lineOf(1);
    ASSERT_TRUE(ctl->tryWrite(req));
    // While the write sits in the pipeline/queue, a read to the same
    // line is served by forwarding, far faster than the device.
    scheduleAfter(eq, ctl->config().encLatency, [&]() {
        Tick start = eq.curTick();
        ctl->issueRead(0x40000, 0, [&, start]() {
            EXPECT_EQ(eq.curTick() - start, ctl->config().forwardLatency);
        });
    });
    eq.run();
    EXPECT_EQ(ctl->readForwards.value(), 1.0);
}

TEST_F(MemCtlTest, ReadForwardsFromInPipelineWrite)
{
    // Regression: forwarding used to consult only the data write
    // queue, so a read racing a just-accepted write through the
    // 40 ns encryption pipeline went to the device for stale data.
    build(DesignPoint::SCA);
    WriteReq req;
    req.addr = 0x40000;
    req.data = lineOf(1);
    ASSERT_TRUE(ctl->tryWrite(req));
    // Same tick: the write is in the pipeline, not yet in any queue.
    Tick start = eq.curTick();
    Tick done = 0;
    ctl->issueRead(0x40000, 0, [&]() { done = eq.curTick(); });
    eq.run();
    EXPECT_EQ(done - start, ctl->config().forwardLatency);
    EXPECT_EQ(ctl->readForwards.value(), 1.0);
    // The write still lands and drains normally afterwards.
    EXPECT_TRUE(ctl->writesIdle());
}

// --- write path -----------------------------------------------------------

TEST_F(MemCtlTest, AcceptanceWaitsForEncryptionPipeline)
{
    build(DesignPoint::SCA);
    Tick accepted = writeAndDrain(0x40000, lineOf(1));
    EXPECT_EQ(accepted, ctl->config().encLatency);
}

TEST_F(MemCtlTest, NoEncryptionAcceptanceIsFast)
{
    build(DesignPoint::NoEncryption);
    Tick accepted = writeAndDrain(0x40000, lineOf(1));
    EXPECT_EQ(accepted, ctl->config().acceptLatency);
}

TEST_F(MemCtlTest, DrainedWriteReachesImage)
{
    // SCA is excluded on purpose: its plain writes defer the counter
    // to the counter cache, so the persisted image alone is not
    // decryptable until a counter_cache_writeback() — see
    // CtrWritebackMakesDeferredWriteDurable.
    for (DesignPoint d : {DesignPoint::NoEncryption, DesignPoint::Ideal,
                          DesignPoint::Colocated, DesignPoint::ColocatedCC,
                          DesignPoint::FCA}) {
        build(d);
        writeAndDrain(0x40000, lineOf(0x3c));
        EXPECT_TRUE(ctl->writesIdle()) << designName(d);
        EXPECT_EQ(recoverLine(0x40000), lineOf(0x3c)) << designName(d);
    }
}

TEST_F(MemCtlTest, EncryptedImageIsNotPlaintext)
{
    build(DesignPoint::SCA);
    writeAndDrain(0x40000, lineOf(0x3c));
    ASSERT_NE(nvm->persistedLine(0x40000), nullptr);
    EXPECT_NE(*nvm->persistedLine(0x40000), lineOf(0x3c));
}

TEST_F(MemCtlTest, WriteCombiningCoalesces)
{
    // FCA persists counters with every write, so the coalesced result
    // is directly decryptable from the image.
    build(DesignPoint::FCA);
    WriteReq req;
    req.addr = 0x40000;
    req.data = lineOf(1);
    ASSERT_TRUE(ctl->tryWrite(req));
    req.data = lineOf(2);
    ASSERT_TRUE(ctl->tryWrite(req));
    eq.run();
    EXPECT_GE(ctl->dataCoalesces.value(), 1.0);
    EXPECT_EQ(recoverLine(0x40000), lineOf(2)); // newest wins
}

TEST_F(MemCtlTest, CounterMonotonicallyIncreasesAcrossWrites)
{
    build(DesignPoint::SCA);
    writeAndDrain(0x40000, lineOf(1));
    CounterLine after_first =
        nvm->persistedCounters(ctl->counterLineAddr(0x40000));
    writeAndDrain(0x40000, lineOf(2), /*ca=*/true); // pair persists ctr
    eq.run();
    CounterLine after_second =
        nvm->persistedCounters(ctl->counterLineAddr(0x40000));
    EXPECT_GT(after_second[0], after_first[0]);
}

// --- counter-atomicity (paper sections 3 and 5.2.2) -----------------------

TEST_F(MemCtlTest, UnsafeLosesDeferredCounterAtCrash)
{
    // The Figure 3/4 failure: data drains, the counter stays dirty in
    // the (volatile) counter cache, the crash loses it, and the line
    // no longer decrypts.
    build(DesignPoint::Unsafe);
    writeAndDrain(0x40000, lineOf(0x7e), /*ca=*/true); // annotation ignored
    ctl->crash();
    EXPECT_NE(recoverLine(0x40000), lineOf(0x7e));
}

TEST_F(MemCtlTest, ScaCounterAtomicWriteSurvivesCrash)
{
    // Same scenario, SCA: the CounterAtomic annotation pairs the data
    // and counter writes, so the crash preserves both.
    build(DesignPoint::SCA);
    writeAndDrain(0x40000, lineOf(0x7e), /*ca=*/true);
    ctl->crash();
    EXPECT_EQ(recoverLine(0x40000), lineOf(0x7e));
}

TEST_F(MemCtlTest, ScaNonAtomicWriteIsTornWithoutWriteback)
{
    // A non-annotated SCA write defers its counter: crash before any
    // counter_cache_writeback() and the line is torn (by design: the
    // recovery path rolls such lines back from the undo log).
    build(DesignPoint::SCA);
    writeAndDrain(0x40000, lineOf(0x11), /*ca=*/false);
    ctl->crash();
    EXPECT_NE(recoverLine(0x40000), lineOf(0x11));
}

TEST_F(MemCtlTest, CtrWritebackMakesDeferredWriteDurable)
{
    // The paper's counter_cache_writeback() primitive: after it is
    // accepted, the deferred counter is in the ADR domain and the
    // earlier plain write survives a crash.
    build(DesignPoint::SCA);
    writeAndDrain(0x40000, lineOf(0x11), /*ca=*/false);
    bool accepted = false;
    ASSERT_TRUE(ctl->tryCtrWriteback(0x40000, [&]() { accepted = true; }));
    eq.run();
    EXPECT_TRUE(accepted);
    ctl->crash();
    EXPECT_EQ(recoverLine(0x40000), lineOf(0x11));
}

TEST_F(MemCtlTest, CtrWritebackIsNoopWhenClean)
{
    build(DesignPoint::SCA);
    writeAndDrain(0x40000, lineOf(1), /*ca=*/true); // written through
    double noops_before = ctl->ctrwbNoops.value();
    ASSERT_TRUE(ctl->tryCtrWriteback(0x40000, nullptr));
    eq.run();
    EXPECT_EQ(ctl->ctrwbNoops.value(), noops_before + 1);
}

TEST_F(MemCtlTest, FcaTreatsEveryWriteAsAtomic)
{
    build(DesignPoint::FCA);
    writeAndDrain(0x40000, lineOf(0x22), /*ca=*/false);
    ctl->crash();
    EXPECT_EQ(recoverLine(0x40000), lineOf(0x22));
    EXPECT_GE(ctl->atomicPairs.value(), 1.0);
}

TEST_F(MemCtlTest, FcaCtrWritebackIsNoop)
{
    build(DesignPoint::FCA);
    double noops = ctl->ctrwbNoops.value();
    ASSERT_TRUE(ctl->tryCtrWriteback(0x40000, nullptr));
    eq.run();
    EXPECT_EQ(ctl->ctrwbNoops.value(), noops + 1);
}

TEST_F(MemCtlTest, IdealCounterPersistenceIsFree)
{
    build(DesignPoint::Ideal);
    writeAndDrain(0x40000, lineOf(0x33), /*ca=*/false);
    ctl->crash();
    EXPECT_EQ(recoverLine(0x40000), lineOf(0x33));
    EXPECT_EQ(ctl->ctrInserts.value(), 0.0); // no counter write traffic
}

TEST_F(MemCtlTest, ColocatedAlwaysAtomic)
{
    for (DesignPoint d : {DesignPoint::Colocated,
                          DesignPoint::ColocatedCC}) {
        build(d);
        writeAndDrain(0x40000, lineOf(0x44), /*ca=*/false);
        ctl->crash();
        EXPECT_EQ(recoverLine(0x40000), lineOf(0x44)) << designName(d);
        EXPECT_EQ(ctl->ctrInserts.value(), 0.0) << designName(d);
    }
}

TEST_F(MemCtlTest, CrashBeforeLandingLosesWriteEntirely)
{
    // A write still in the encryption pipeline at the failure is not
    // in the ADR domain: neither data nor counter may persist.
    build(DesignPoint::SCA);
    WriteReq req;
    req.addr = 0x40000;
    req.data = lineOf(0x55);
    req.counterAtomic = true;
    ASSERT_TRUE(ctl->tryWrite(req));
    ctl->crash(); // before the encLatency landing
    eq.run();
    EXPECT_EQ(nvm->persistedLine(0x40000), nullptr);
    EXPECT_EQ(recoverLine(0x40000), LineData{}); // still "never written"
}

TEST_F(MemCtlTest, CrashDrainsAcceptedButUnissuedEntries)
{
    // ADR: anything accepted into the queues persists even if the
    // device never got to it before the failure.
    build(DesignPoint::SCA);
    bool accepted = false;
    WriteReq req;
    req.addr = 0x40000;
    req.data = lineOf(0x66);
    req.counterAtomic = true;
    req.accepted = [&]() { accepted = true; };
    ASSERT_TRUE(ctl->tryWrite(req));
    // Run only until acceptance (encryption pipeline plus the
    // ready-bit pairing handshake), not until the drain completes.
    eq.run(ctl->config().encLatency + ctl->config().pairLatency);
    ASSERT_TRUE(accepted);
    ctl->crash();
    EXPECT_EQ(recoverLine(0x40000), lineOf(0x66));
}

TEST_F(MemCtlTest, InitLineInstallsDecryptableState)
{
    for (DesignPoint d : {DesignPoint::NoEncryption, DesignPoint::SCA,
                          DesignPoint::FCA, DesignPoint::Colocated}) {
        build(d);
        ctl->initLine(0x40000, lineOf(0x5a));
        EXPECT_EQ(recoverLine(0x40000), lineOf(0x5a)) << designName(d);
    }
}

TEST_F(MemCtlTest, PerWorkWriteTrafficAccounting)
{
    // SCA: one plain write is one 64 B data write; its deferred
    // counter adds 8 B when flushed.
    build(DesignPoint::SCA);
    writeAndDrain(0x40000, lineOf(1));
    EXPECT_EQ(nvm->bytesWritten(), 64u);
    ASSERT_TRUE(ctl->tryCtrWriteback(0x40000, nullptr));
    eq.run();
    EXPECT_EQ(nvm->bytesWritten(), 64u + 8u);
}

TEST_F(MemCtlTest, FcaCounterTrafficIsLineGranular)
{
    // Section 4.1: FCA updates the counter at cache-line granularity.
    build(DesignPoint::FCA);
    writeAndDrain(0x40000, lineOf(1));
    EXPECT_EQ(nvm->bytesWritten(), 64u + 64u);
}

TEST_F(MemCtlTest, ColocatedBusCarries72Bytes)
{
    build(DesignPoint::Colocated);
    writeAndDrain(0x40000, lineOf(1));
    EXPECT_EQ(nvm->bytesWritten(), 72u);
}

// --- post-crash epoch hygiene (regression tests) --------------------------

TEST_F(MemCtlTest, CrashWithReadsInFlightDoesNotUnderflow)
{
    // Read completions scheduled before the failure must die with it:
    // un-guarded, they would decrement the freshly-zeroed outstanding
    // count (underflow) and invoke dead callbacks.
    build(DesignPoint::SCA);
    unsigned completions = 0;
    for (unsigned i = 0; i < 4; ++i)
        ctl->issueRead(0x40000 + i * lineBytes, 0,
                       [&]() { ++completions; });
    EXPECT_EQ(ctl->outstandingReadCount(), 4u);
    ctl->crash();
    EXPECT_EQ(ctl->outstandingReadCount(), 0u);
    eq.run(); // pre-crash completion events fire as epoch-guarded no-ops
    EXPECT_EQ(completions, 0u);
    EXPECT_EQ(ctl->outstandingReadCount(), 0u);

    // The post-crash controller still serves reads normally.
    bool done = false;
    ctl->issueRead(0x40000, 0, [&]() { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(ctl->outstandingReadCount(), 0u);
}

TEST_F(MemCtlTest, CrashResetsDrainKickStateAndWritesFlowAgain)
{
    // Crash between acceptance and drain: the pending kick and drain
    // completion events are epoch-guarded no-ops, so crash() itself
    // must clear kickScheduled/drainKickPending — left set, they would
    // wedge the post-crash drain engine forever.
    build(DesignPoint::SCA);
    WriteReq req;
    req.addr = 0x40000;
    req.data = lineOf(0x77);
    req.counterAtomic = true;
    ASSERT_TRUE(ctl->tryWrite(req));
    eq.run(ctl->config().encLatency + ctl->config().pairLatency);
    ctl->crash();
    eq.run();
    EXPECT_TRUE(ctl->writesIdle());

    writeAndDrain(0x80000, lineOf(0x78), /*ca=*/true);
    EXPECT_TRUE(ctl->writesIdle());
    EXPECT_EQ(recoverLine(0x80000), lineOf(0x78));
}

TEST_F(MemCtlTest, CrashRebuildsCounterStateFromPersistedStore)
{
    // Regression: crash() used to carry globalCounter/currentCounter
    // across the failure — volatile encryption-engine state surviving
    // a power loss. The controller now rebuilds both from the
    // persisted counter region (what recovery's counter scan knows),
    // so post-crash writes stay consistent with the surviving image.
    build(DesignPoint::SCA);
    writeAndDrain(0x40000, lineOf(0x11), /*ca=*/true); // counter 1
    writeAndDrain(0x80000, lineOf(0x22), /*ca=*/true); // counter 2
    std::uint64_t before =
        nvm->persistedCipherCounter(0x40000);
    EXPECT_EQ(before, 1u);
    ctl->crash();

    // A post-crash rewrite must draw a counter strictly above every
    // persisted value — never re-pairing a persisted counter with new
    // ciphertext — and the oracle's consistency condition must hold:
    // persisted cipher counter == persisted counter-store slot.
    writeAndDrain(0x40000, lineOf(0x33), /*ca=*/true);
    std::uint64_t cipher_ctr = nvm->persistedCipherCounter(0x40000);
    std::uint64_t stored_ctr =
        nvm->persistedCounters(ctl->counterLineAddr(0x40000))
            [ctl->counterSlot(0x40000)];
    EXPECT_EQ(cipher_ctr, stored_ctr);
    EXPECT_EQ(cipher_ctr, 3u); // rebuilt global = 2, next write = 3
    EXPECT_EQ(recoverLine(0x40000), lineOf(0x33));
    // The untouched line still decrypts with its pre-crash counter.
    EXPECT_EQ(recoverLine(0x80000), lineOf(0x22));
}

TEST_F(MemCtlTest, CrashWithUnpersistedCountersRestartsLow)
{
    // An SCA plain write whose counter never left the (volatile)
    // counter cache: the crash loses the counter, and the rebuilt
    // global counter must reflect only what persisted — the engine
    // cannot "remember" values the failure destroyed.
    build(DesignPoint::SCA);
    writeAndDrain(0x40000, lineOf(0x11), /*ca=*/false); // ctr 1, deferred
    ctl->crash();
    // Nothing reached the counter store, so the rebuild starts empty
    // and the next write draws counter 1 again; the oracle condition
    // holds for the new pairing.
    writeAndDrain(0x80000, lineOf(0x22), /*ca=*/true);
    EXPECT_EQ(nvm->persistedCipherCounter(0x80000), 1u);
    EXPECT_EQ(recoverLine(0x80000), lineOf(0x22));
    // The torn pre-crash line stays torn (Figure 4 semantics).
    EXPECT_NE(recoverLine(0x40000), lineOf(0x11));
}

TEST_F(MemCtlTest, SemanticEventsFireAlongTheWritePath)
{
    build(DesignPoint::SCA);
    std::array<unsigned, numCtlEvents> counts{};
    ctl->setEventHook([&](CtlEvent ev) {
        ++counts[static_cast<unsigned>(ev)];
    });
    writeAndDrain(0x40000, lineOf(1), /*ca=*/true);
    EXPECT_GE(counts[static_cast<unsigned>(CtlEvent::PipelineEnter)], 1u);
    EXPECT_GE(counts[static_cast<unsigned>(CtlEvent::PairAction)], 1u);
    EXPECT_GE(counts[static_cast<unsigned>(CtlEvent::DataDrain)], 1u);
    EXPECT_GE(counts[static_cast<unsigned>(CtlEvent::CtrDrain)], 1u);
}

TEST_F(MemCtlTest, QueueOccupancyDrainsToZero)
{
    build(DesignPoint::FCA);
    for (unsigned i = 0; i < 8; ++i) {
        WriteReq req;
        req.addr = 0x40000 + i * lineBytes;
        req.data = lineOf(static_cast<std::uint8_t>(i));
        ASSERT_TRUE(ctl->tryWrite(req));
    }
    EXPECT_FALSE(ctl->writesIdle());
    eq.run();
    EXPECT_TRUE(ctl->writesIdle());
    EXPECT_EQ(ctl->dataQueueOccupancy(), 0u);
    EXPECT_EQ(ctl->ctrQueueOccupancy(), 0u);
}

} // anonymous namespace
} // namespace cnvm
