/**
 * @file
 * Unit and property tests for the wear-tracking and Start-Gap wear
 * leveling module (the lifetime extension of paper section 6.3.3).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.hh"
#include "nvm/wear_leveling.hh"

namespace cnvm
{
namespace
{

TEST(WearTracker, CountsPerLine)
{
    WearTracker tracker;
    tracker.record(0x1000);
    tracker.record(0x1010); // same line
    tracker.record(0x2000);
    EXPECT_EQ(tracker.writesTo(0x1000), 2u);
    EXPECT_EQ(tracker.writesTo(0x2000), 1u);
    EXPECT_EQ(tracker.writesTo(0x3000), 0u);
}

TEST(WearTracker, Stats)
{
    WearTracker tracker;
    for (int i = 0; i < 10; ++i)
        tracker.record(0x1000);
    tracker.record(0x2000);
    tracker.record(0x3000);
    WearStats s = tracker.stats();
    EXPECT_EQ(s.linesTouched, 3u);
    EXPECT_EQ(s.totalWrites, 12u);
    EXPECT_EQ(s.maxWrites, 10u);
    EXPECT_DOUBLE_EQ(s.meanWrites, 4.0);
    EXPECT_DOUBLE_EQ(s.uniformity(), 0.4);
}

TEST(WearTracker, EmptyStatsSafe)
{
    WearTracker tracker;
    WearStats s = tracker.stats();
    EXPECT_EQ(s.linesTouched, 0u);
    EXPECT_EQ(s.uniformity(), 1.0);
}

TEST(StartGap, TranslationIsBijective)
{
    const std::uint64_t lines = 17;
    StartGapRemapper map(0x10000, lines, 4);
    // At any point in time, distinct logical lines map to distinct
    // physical frames within the region.
    for (int round = 0; round < 100; ++round) {
        std::set<Addr> physical;
        for (std::uint64_t l = 0; l < lines; ++l) {
            Addr p = map.translate(0x10000 + l * lineBytes);
            EXPECT_GE(p, 0x10000u);
            EXPECT_LT(p, 0x10000 + (lines + 1) * lineBytes);
            EXPECT_TRUE(physical.insert(p).second)
                << "collision at round " << round << " line " << l;
        }
        // Advance the gap by a few writes.
        map.translateWrite(0x10000);
    }
}

TEST(StartGap, GapMovesEveryInterval)
{
    StartGapRemapper map(0x0, 8, 3);
    std::uint64_t gap0 = map.gapPosition();
    map.translateWrite(0x0);
    map.translateWrite(0x0);
    EXPECT_EQ(map.gapPosition(), gap0); // 2 writes: not yet
    map.translateWrite(0x0);
    EXPECT_NE(map.gapPosition(), gap0); // 3rd write moves it
}

TEST(StartGap, FullRotationAdvancesStart)
{
    const std::uint64_t lines = 4;
    StartGapRemapper map(0x0, lines, 1); // gap moves every write
    EXPECT_EQ(map.startOffset(), 0u);
    // The gap needs lines+1 moves to complete one rotation.
    for (std::uint64_t i = 0; i <= lines; ++i)
        map.translateWrite(0x0);
    EXPECT_EQ(map.rotations(), 1u);
    EXPECT_EQ(map.startOffset(), 1u);
}

TEST(StartGap, HotLineSpreadsAcrossFrames)
{
    // The whole point: a single hot logical line (an undo-log header)
    // visits many physical frames as the gap rotates.
    const std::uint64_t lines = 16;
    StartGapRemapper map(0x0, lines, 1);
    std::set<Addr> frames;
    for (int w = 0; w < 2000; ++w)
        frames.insert(map.translateWrite(0x0));
    EXPECT_EQ(frames.size(), lines + 1);
}

TEST(StartGap, UniformityImprovesForSkewedTrace)
{
    // 90% of writes hit one line; compare wear with and without
    // Start-Gap over a long trace.
    const std::uint64_t lines = 32;
    Random rng(42);
    StartGapRemapper map(0x0, lines, 16);
    WearTracker raw, leveled;

    for (int w = 0; w < 200000; ++w) {
        Addr logical = rng.chancePct(90)
            ? 0x0
            : lineAlign(rng.below(lines) * lineBytes);
        raw.record(logical);
        leveled.record(map.translateWrite(logical));
    }

    double raw_uniformity = raw.stats().uniformity();
    double leveled_uniformity = leveled.stats().uniformity();
    EXPECT_LT(raw_uniformity, 0.1);
    EXPECT_GT(leveled_uniformity, 10 * raw_uniformity);
}

TEST(StartGap, ReadsDoNotMoveTheGap)
{
    StartGapRemapper map(0x0, 8, 1);
    std::uint64_t gap0 = map.gapPosition();
    for (int i = 0; i < 10; ++i)
        map.translate(0x0);
    EXPECT_EQ(map.gapPosition(), gap0);
}

TEST(StartGap, ReadAndWriteTranslationAgree)
{
    StartGapRemapper map(0x40000, 8, 100);
    for (std::uint64_t l = 0; l < 8; ++l) {
        Addr logical = 0x40000 + l * lineBytes;
        EXPECT_EQ(map.translate(logical), map.translate(logical));
    }
    Addr before = map.translate(0x40000);
    Addr via_write = map.translateWrite(0x40000);
    EXPECT_EQ(before, via_write);
}

} // anonymous namespace
} // namespace cnvm
