/**
 * @file
 * Unit tests for the transaction layer: ShadowMem, the undo-log layout,
 * the staged op emission of UndoTx (paper Figure 9), checksums, and the
 * crash-consistent bump allocator.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "txn/palloc.hh"
#include "txn/shadow_mem.hh"
#include "txn/undo_log.hh"

namespace cnvm
{
namespace
{

// --- ShadowMem -----------------------------------------------------------

TEST(ShadowMem, DefaultsToZero)
{
    ShadowMem shadow;
    EXPECT_EQ(shadow.readU64(0x1234), 0u);
    EXPECT_EQ(shadow.line(0x1000), LineData{});
}

TEST(ShadowMem, WriteReadRoundTrip)
{
    ShadowMem shadow;
    shadow.writeU64(0x1008, 0xdeadbeefcafef00dull);
    EXPECT_EQ(shadow.readU64(0x1008), 0xdeadbeefcafef00dull);
    EXPECT_EQ(shadow.readU64(0x1000), 0u);
}

TEST(ShadowMem, CrossLineAccess)
{
    ShadowMem shadow;
    std::uint8_t data[128];
    for (unsigned i = 0; i < 128; ++i)
        data[i] = static_cast<std::uint8_t>(i);
    shadow.write(0x1020, data, 128); // spans three lines
    std::uint8_t back[128];
    shadow.read(0x1020, 128, back);
    EXPECT_EQ(std::memcmp(data, back, 128), 0);
    EXPECT_EQ(shadow.touchedLines(), 3u);
}

TEST(ShadowMem, ForEachLineVisitsAllTouched)
{
    ShadowMem shadow;
    shadow.writeU64(0x1000, 1);
    shadow.writeU64(0x2000, 2);
    unsigned visited = 0;
    shadow.forEachLine([&](Addr, const LineData &) { ++visited; });
    EXPECT_EQ(visited, 2u);
}

// --- LogLayout -----------------------------------------------------------

TEST(LogLayout, AddressesAreDisjointAndOrdered)
{
    LogLayout log{0x10000, 32};
    EXPECT_EQ(log.headerAddr(), 0x10000u);
    EXPECT_EQ(log.descBase(), 0x10040u);
    EXPECT_EQ(log.descBytes(), 256u); // 32 * 8, line aligned
    EXPECT_EQ(log.backupBase(), log.descBase() + log.descBytes());
    EXPECT_EQ(log.backupAddr(0), log.backupBase());
    EXPECT_EQ(log.backupAddr(31), log.backupBase() + 31 * lineBytes);
    EXPECT_EQ(log.sizeBytes(),
              lineBytes + log.descBytes() + 32 * lineBytes);
}

TEST(LogLayout, HeaderFieldOffsets)
{
    LogLayout log{0x10000, 8};
    EXPECT_EQ(log.magicAddr(), 0x10000u);
    EXPECT_EQ(log.validAddr(), 0x10008u);
    EXPECT_EQ(log.txnIdAddr(), 0x10010u);
    EXPECT_EQ(log.countAddr(), 0x10018u);
    EXPECT_EQ(log.checksumAddr(), 0x10020u);
}

TEST(LogLayout, MarkersAreDistinct)
{
    EXPECT_NE(LogLayout::kValid, LogLayout::kInvalid);
    EXPECT_NE(LogLayout::kValid, LogLayout::kMagic);
    EXPECT_NE(LogLayout::kInvalid, LogLayout::kMagic);
}

// --- UndoTx --------------------------------------------------------------

class UndoTxTest : public ::testing::Test
{
  protected:
    UndoTxTest() : log{0x10000, 16}, tx(shadow, log) {}

    /** Ops of given type within [first, last). */
    static unsigned
    countOps(const std::vector<Op> &ops, OpType type)
    {
        unsigned n = 0;
        for (const Op &op : ops)
            n += op.type == type ? 1 : 0;
        return n;
    }

    ShadowMem shadow;
    LogLayout log;
    UndoTx tx;
};

TEST_F(UndoTxTest, ReadYourWrites)
{
    shadow.writeU64(0x20000, 5);
    tx.begin(1);
    EXPECT_EQ(tx.readU64(0x20000), 5u);
    tx.writeU64(0x20000, 9);
    EXPECT_EQ(tx.readU64(0x20000), 9u);  // sees own deferred write
    EXPECT_EQ(shadow.readU64(0x20000), 5u); // shadow unchanged until commit
}

TEST_F(UndoTxTest, CommitAppliesWritesToShadow)
{
    tx.begin(1);
    tx.writeU64(0x20000, 42);
    std::vector<Op> ops;
    tx.commit(ops);
    EXPECT_EQ(shadow.readU64(0x20000), 42u);
}

TEST_F(UndoTxTest, EmitsThreeStagesWithBarriers)
{
    tx.begin(1);
    tx.writeU64(0x20000, 1);
    tx.writeU64(0x20100, 2);
    std::vector<Op> ops;
    tx.commit(ops);

    // Three fences: prepare, mutate, commit.
    EXPECT_EQ(countOps(ops, OpType::Fence), 3u);
    // Counter writebacks appear in prepare and mutate stages.
    EXPECT_GE(countOps(ops, OpType::CtrWb), 2u);
    // Stores: header + descriptors + 2 backups + 2 mutations + commit.
    EXPECT_GE(countOps(ops, OpType::Store), 6u);
}

TEST_F(UndoTxTest, StageOrdering)
{
    tx.begin(1);
    tx.writeU64(0x20000, 1);
    std::vector<Op> ops;
    tx.commit(ops);

    // Find the three fences; the mutation store of 0x20000 must be
    // after the first fence (prepare) and before the second (mutate).
    int fence1 = -1, fence2 = -1;
    int mutate_store = -1;
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
        if (ops[i].type == OpType::Fence) {
            if (fence1 < 0)
                fence1 = i;
            else if (fence2 < 0)
                fence2 = i;
        }
        if (ops[i].type == OpType::Store
            && lineAlign(ops[i].addr) == 0x20000)
            mutate_store = i;
    }
    ASSERT_GE(fence1, 0);
    ASSERT_GE(fence2, 0);
    ASSERT_GE(mutate_store, 0);
    EXPECT_GT(mutate_store, fence1);
    EXPECT_LT(mutate_store, fence2);
}

TEST_F(UndoTxTest, CommitStoreIsCounterAtomic)
{
    tx.begin(1);
    tx.writeU64(0x20000, 1);
    std::vector<Op> ops;
    tx.commit(ops);

    // The last store is the `valid = invalid` flip and must carry the
    // CounterAtomic annotation (paper Figure 9 line 17).
    const Op *last_store = nullptr;
    for (const Op &op : ops)
        if (op.type == OpType::Store)
            last_store = &op;
    ASSERT_NE(last_store, nullptr);
    EXPECT_EQ(last_store->addr, log.validAddr());
    EXPECT_TRUE(last_store->counterAtomic);
    std::uint64_t v;
    std::memcpy(&v, last_store->bytes.data(), 8);
    EXPECT_EQ(v, LogLayout::kInvalid);
}

TEST_F(UndoTxTest, HeaderStoreIsCounterAtomic)
{
    tx.begin(7);
    tx.writeU64(0x20000, 1);
    std::vector<Op> ops;
    tx.commit(ops);
    bool found = false;
    for (const Op &op : ops) {
        if (op.type == OpType::Store && op.addr == log.headerAddr()) {
            EXPECT_TRUE(op.counterAtomic);
            found = true;
            break;
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(UndoTxTest, BackupSnapshotsPreTxnContent)
{
    shadow.writeU64(0x20000, 0xaaaa);
    tx.begin(1);
    tx.writeU64(0x20000, 0xbbbb);
    std::vector<Op> ops;
    tx.commit(ops);
    // After commit, the shadow's backup slot 0 holds the OLD value.
    EXPECT_EQ(shadow.readU64(log.backupAddr(0)), 0xaaaaull);
    EXPECT_EQ(shadow.readU64(log.descAddr(0)), 0x20000ull);
    EXPECT_EQ(shadow.readU64(0x20000), 0xbbbbull);
}

TEST_F(UndoTxTest, ChecksumVerifiesAfterCommit)
{
    tx.begin(3);
    tx.writeU64(0x20000, 1);
    tx.writeU64(0x20100, 2);
    std::vector<Op> ops;
    tx.commit(ops);
    std::uint64_t stored = shadow.readU64(log.checksumAddr());
    std::uint64_t count = shadow.readU64(log.countAddr());
    EXPECT_EQ(count, 2u);
    EXPECT_EQ(logChecksum(shadow, log, 3, count), stored);
}

TEST_F(UndoTxTest, ChecksumDetectsCorruptedBackup)
{
    tx.begin(3);
    tx.writeU64(0x20000, 1);
    std::vector<Op> ops;
    tx.commit(ops);
    std::uint64_t stored = shadow.readU64(log.checksumAddr());
    shadow.writeU64(log.backupAddr(0) + 16, 0x1234); // corrupt
    EXPECT_NE(logChecksum(shadow, log, 3, 1), stored);
}

TEST_F(UndoTxTest, LoadsEmittedOncePerLine)
{
    shadow.writeU64(0x20000, 1);
    tx.begin(1);
    tx.readU64(0x20000);
    tx.readU64(0x20008); // same line: no second load
    tx.readU64(0x20040); // new line
    tx.writeU64(0x30000, 1);
    std::vector<Op> ops;
    tx.commit(ops);
    unsigned loads = 0;
    for (const Op &op : ops)
        loads += op.type == OpType::Load ? 1 : 0;
    EXPECT_EQ(loads, 2u);
}

TEST_F(UndoTxTest, CtrwbDeduplicatedPerCounterLine)
{
    tx.begin(1);
    // Two lines in the same 512 B counter group.
    tx.writeU64(0x20000, 1);
    tx.writeU64(0x20040, 2);
    std::vector<Op> ops;
    tx.commit(ops);
    // Mutate-stage ctrwbs: one should cover both lines. Count ctrwbs
    // whose target is in the mutate group.
    unsigned mutate_group_ctrwbs = 0;
    for (const Op &op : ops) {
        if (op.type == OpType::CtrWb
            && lineAlign(op.addr) / lineBytes / countersPerLine
               == 0x20000 / lineBytes / countersPerLine)
            ++mutate_group_ctrwbs;
    }
    EXPECT_EQ(mutate_group_ctrwbs, 1u);
}

TEST_F(UndoTxTest, TouchedLinesCountsDistinctLines)
{
    tx.begin(1);
    tx.writeU64(0x20000, 1);
    tx.writeU64(0x20008, 2); // same line
    tx.writeU64(0x20040, 3);
    EXPECT_EQ(tx.touchedLines(), 2u);
}

TEST_F(UndoTxTest, ComputeOpsPassThrough)
{
    tx.begin(1);
    tx.compute(123);
    tx.writeU64(0x20000, 1);
    std::vector<Op> ops;
    tx.commit(ops);
    ASSERT_GE(ops.size(), 1u);
    bool found = false;
    for (const Op &op : ops)
        if (op.type == OpType::Compute && op.cycles == 123)
            found = true;
    EXPECT_TRUE(found);
}

TEST_F(UndoTxTest, SequentialTransactionsReuseLog)
{
    for (std::uint64_t id = 1; id <= 3; ++id) {
        tx.begin(id);
        tx.writeU64(0x20000 + id * 0x100, id);
        std::vector<Op> ops;
        tx.commit(ops);
        EXPECT_EQ(shadow.readU64(log.txnIdAddr()), id);
        EXPECT_EQ(shadow.readU64(log.validAddr()), LogLayout::kInvalid);
    }
}

// --- PersistentAllocator ---------------------------------------------------

TEST(PersistentAllocator, AllocatesSequentially)
{
    ShadowMem shadow;
    LogLayout log{0x10000, 8};
    PersistentAllocator alloc(0x20000, 0x21000, 0x22000);
    alloc.initialize([&](Addr a, const void *d, unsigned s) {
        shadow.write(a, d, s);
    });
    EXPECT_EQ(shadow.readU64(0x20000), 0x21000u);

    UndoTx tx(shadow, log);
    tx.begin(1);
    Addr first = alloc.alloc(tx, 64);
    Addr second = alloc.alloc(tx, 64);
    EXPECT_EQ(first, 0x21000u);
    EXPECT_EQ(second, 0x21040u);
    std::vector<Op> ops;
    tx.commit(ops);
    EXPECT_EQ(shadow.readU64(0x20000), 0x21080u);
}

TEST(PersistentAllocator, RespectsAlignment)
{
    ShadowMem shadow;
    LogLayout log{0x10000, 8};
    PersistentAllocator alloc(0x20000, 0x21000, 0x22000);
    alloc.initialize([&](Addr a, const void *d, unsigned s) {
        shadow.write(a, d, s);
    });
    UndoTx tx(shadow, log);
    tx.begin(1);
    alloc.alloc(tx, 8, 8);
    Addr aligned = alloc.alloc(tx, 128, 128);
    EXPECT_EQ(aligned % 128, 0u);
}

TEST(PersistentAllocator, ReturnsZeroWhenExhausted)
{
    ShadowMem shadow;
    LogLayout log{0x10000, 8};
    PersistentAllocator alloc(0x20000, 0x21000, 0x21080); // 2 lines
    alloc.initialize([&](Addr a, const void *d, unsigned s) {
        shadow.write(a, d, s);
    });
    UndoTx tx(shadow, log);
    tx.begin(1);
    EXPECT_NE(alloc.alloc(tx, 64), 0u);
    EXPECT_NE(alloc.alloc(tx, 64), 0u);
    EXPECT_EQ(alloc.alloc(tx, 64), 0u);
}

TEST(PersistentAllocator, UncommittedCursorNotVisibleToShadow)
{
    // The cursor advance is a transactional write: before commit the
    // shadow still holds the old cursor (and so would recovery).
    ShadowMem shadow;
    LogLayout log{0x10000, 8};
    PersistentAllocator alloc(0x20000, 0x21000, 0x22000);
    alloc.initialize([&](Addr a, const void *d, unsigned s) {
        shadow.write(a, d, s);
    });
    UndoTx tx(shadow, log);
    tx.begin(1);
    alloc.alloc(tx, 64);
    EXPECT_EQ(shadow.readU64(0x20000), 0x21000u);
    EXPECT_EQ(alloc.remaining(shadow), 0x1000u);
}

} // anonymous namespace
} // namespace cnvm
