/**
 * @file
 * Unit tests for the counter cache.
 */

#include <gtest/gtest.h>

#include "memctl/counter_cache.hh"

namespace cnvm
{
namespace
{

CounterLine
valuesOf(std::uint64_t base)
{
    CounterLine v;
    for (unsigned i = 0; i < countersPerLine; ++i)
        v[i] = base + i;
    return v;
}

TEST(CounterCache, InstallAndAccess)
{
    CounterCache cc(64 * 1024, 16, nullptr);
    EXPECT_EQ(cc.access(0x1000), nullptr);
    cc.install(0x1000, valuesOf(100), 0);
    CounterCacheLine *line = cc.access(0x1000);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->values, valuesOf(100));
    EXPECT_FALSE(line->dirty);
    EXPECT_EQ(line->dirtyMask, 0);
}

TEST(CounterCache, DirtyInstallKeepsExactMask)
{
    // The mask an install carries is authoritative: the controller
    // passes exactly the slots the triggering write dirtied, and a
    // later flush persists only those. (Installing 0xff and patching
    // via peek() was the old, bug-prone protocol.)
    CounterCache cc(64 * 1024, 16, nullptr);
    cc.install(0x1000, valuesOf(1), 0x04);
    CounterCacheLine *line = cc.peek(0x1000);
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->dirty);
    EXPECT_EQ(line->dirtyMask, 0x04);
}

TEST(CounterCache, DirtyEvictionSurfacesValuesAndMask)
{
    // One set of two ways.
    CounterCache cc(128, 2, nullptr);
    cc.install(0x0, valuesOf(1), 0x0f);
    cc.install(0x40, valuesOf(2), 0);
    auto victim = cc.install(0x80, valuesOf(3), 0);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 0x0u);
    EXPECT_EQ(victim->values, valuesOf(1));
    EXPECT_EQ(victim->dirtyMask, 0x0f);
    EXPECT_EQ(cc.dirtyEvictions.value(), 1.0);
}

TEST(CounterCache, CleanEvictionIsSilent)
{
    CounterCache cc(128, 2, nullptr);
    cc.install(0x0, valuesOf(1), 0);
    cc.install(0x40, valuesOf(2), 0);
    EXPECT_FALSE(cc.install(0x80, valuesOf(3), 0).has_value());
    EXPECT_EQ(cc.dirtyEvictions.value(), 0.0);
}

TEST(CounterCache, LruPrefersUntouched)
{
    CounterCache cc(128, 2, nullptr);
    cc.install(0x0, valuesOf(1), 0x01);
    cc.install(0x40, valuesOf(2), 0x01);
    cc.access(0x0); // refresh
    auto victim = cc.install(0x80, valuesOf(3), 0);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 0x40u);
}

TEST(CounterCache, CountsValidAndDirty)
{
    CounterCache cc(64 * 1024, 16, nullptr);
    cc.install(0x0, valuesOf(0), 0);
    cc.install(0x40, valuesOf(1), 0x01);
    cc.install(0x80, valuesOf(2), 0x02);
    EXPECT_EQ(cc.validCount(), 3u);
    EXPECT_EQ(cc.dirtyCount(), 2u);
}

TEST(CounterCache, ResetLosesEverything)
{
    CounterCache cc(64 * 1024, 16, nullptr);
    cc.install(0x0, valuesOf(0), 0xff);
    cc.reset();
    EXPECT_EQ(cc.validCount(), 0u);
    EXPECT_EQ(cc.peek(0x0), nullptr);
}

TEST(CounterCache, StatsRegistered)
{
    stats::StatRegistry reg;
    CounterCache cc(64 * 1024, 16, &reg);
    EXPECT_NE(reg.find("ctrcache.read_hits"), nullptr);
    EXPECT_NE(reg.find("ctrcache.read_misses"), nullptr);
    EXPECT_NE(reg.find("ctrcache.write_hits"), nullptr);
    EXPECT_NE(reg.find("ctrcache.write_misses"), nullptr);
    EXPECT_NE(reg.find("ctrcache.dirty_evictions"), nullptr);
}

} // anonymous namespace
} // namespace cnvm
